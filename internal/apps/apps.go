// Package apps provides executable behaviour models of the applications
// the paper evaluates Mirage with: MySQL, PHP, Apache, Firefox and
// SlimServer. Each model runs against a simulated machine, emits the
// system-call trace the real instrumented application would emit (library
// loads, configuration reads, getenv calls, data access, log writes,
// network output), and reproduces the published upgrade failure:
//
//   - PHP 4 compiled with MySQL support crashes against libmysqlclient 5
//     after a MySQL 4→5 upgrade (broken dependency, paper ref [24]);
//   - MySQL 5 fails on machines with a legacy user configuration file
//     $HOME/.my.cnf (incompatibility with legacy configurations);
//   - Apache 1.3.26 fails to start when the configuration pulls an access
//     control list through an Include directive (paper ref [3]);
//   - Firefox 2.0 behaves erratically when preference files carried over
//     from 1.0.x are present (paper ref [11]);
//   - SlimServer 6.5.1 will not start because the package omitted the
//     database upgrade (improper packaging).
//
// The models are deterministic functions of the machine environment, which
// is exactly the property Mirage's clustering exploits: machines with the
// same environment behave the same under an upgrade.
package apps

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/trace"
)

// App is one application behaviour model.
type App interface {
	// Name is the package name of the application.
	Name() string
	// ExecPath is the application's executable path on a machine.
	ExecPath() string
	// Run executes the application on m with the given workload inputs
	// (queries, script paths, URLs — app-specific) and returns its trace.
	Run(m *machine.Machine, inputs []string) *trace.Trace
}

// Registry maps application names to models, so the testing subsystem can
// find the model for an application affected by an upgrade.
var registry = map[string]App{}

// Register installs an app model; later registrations replace earlier ones.
func Register(a App) { registry[a.Name()] = a }

// Lookup returns the model for name, or nil.
func Lookup(name string) App { return registry[name] }

// Names returns all registered app names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(MySQL{})
	Register(PHP{})
	Register(Apache{})
	Register(Firefox{})
	Register(SlimServer{})
}

// version returns the Version metadata of the file at path, or "".
func version(m *machine.Machine, path string) string {
	if f := m.ReadFile(path); f != nil {
		return f.Version
	}
	return ""
}

// major returns the leading integer of a version string, or 0.
func major(v string) int {
	n := 0
	for _, r := range v {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// openIfPresent opens path read-only and records it if the file exists.
func openIfPresent(tr *trace.Trace, m *machine.Machine, path string) bool {
	if m.ReadFile(path) == nil {
		return false
	}
	tr.Open(path, trace.ModeRead)
	return true
}

// openDir opens every file under prefix (sorted) with the given mode and
// returns the paths. Models use it for library directories, charset
// directories, document roots, and database directories.
func openDir(tr *trace.Trace, m *machine.Machine, prefix string, mode trace.Mode) []string {
	var out []string
	for _, p := range m.Paths() {
		if strings.HasPrefix(p, prefix) {
			tr.Open(p, mode)
			out = append(out, p)
		}
	}
	return out
}

// crash terminates the trace with a crash status and message payload.
func crash(tr *trace.Trace, msg string) *trace.Trace {
	tr.Write("/dev/stderr", []byte(msg))
	tr.Exit("crash")
	return tr
}

// MySQL models the MySQL server. Versions are read from the mysqld binary.
type MySQL struct{}

// MySQLExec is the path of the mysqld binary.
const MySQLExec = "/usr/sbin/mysqld"

func (MySQL) Name() string     { return "mysql" }
func (MySQL) ExecPath() string { return MySQLExec }

// Run starts mysqld and serves the inputs as queries. Initialization loads
// libc, the server binary, the system and user configuration files and the
// shared error-message/charset files; the database directory under
// /var/lib/mysql is then opened read-write.
func (MySQL) Run(m *machine.Machine, inputs []string) *trace.Trace {
	tr := trace.New("mysqld", inputs...)
	tr.Open("/lib/libc.so", trace.ModeRead)
	tr.Open(MySQLExec, trace.ModeRead)
	openIfPresent(tr, m, "/etc/mysql/my.cnf")
	home, _ := m.Getenv("HOME")
	tr.Getenv("HOME", home)
	userCnf := home + "/.my.cnf"
	hasUserCnf := openIfPresent(tr, m, userCnf)
	openDir(tr, m, "/usr/share/mysql/", trace.ModeRead)

	v := version(m, MySQLExec)
	// The legacy-configuration problem: MySQL 5 rejects option syntax
	// carried in old user configuration files. A corrected upgrade can
	// ship a migration that rewrites the file (adding the marker below).
	if major(v) >= 5 && hasUserCnf &&
		!strings.Contains(string(m.ReadFile(userCnf).Data), "migrated-for-5") {
		return crash(tr, "mysqld: unknown option in "+userCnf)
	}

	openDir(tr, m, "/var/lib/mysql/", trace.ModeReadWrite)
	for _, q := range inputs {
		tr.NetSend([]byte("mysql: result(" + q + ")"))
	}
	tr.Write("/var/log/mysql.log", []byte("queries="+fmt.Sprint(len(inputs))))
	tr.Exit("ok")
	return tr
}

// PHP models the PHP interpreter; the scripts it runs are the inputs.
type PHP struct{}

// PHPExec is the path of the php binary.
const PHPExec = "/usr/bin/php"

// LibMySQLPath is the client library php links against when compiled with
// MySQL support.
const LibMySQLPath = "/usr/lib/libmysqlclient.so"

func (PHP) Name() string     { return "php" }
func (PHP) ExecPath() string { return PHPExec }

// Run executes each input path as a PHP script. If php was compiled with
// MySQL support (the client library is present), initialization binds to
// libmysqlclient — and PHP 4 crashes against version 5 of the library,
// reproducing the post-MySQL-upgrade failure.
func (PHP) Run(m *machine.Machine, inputs []string) *trace.Trace {
	tr := trace.New("php", inputs...)
	tr.Open("/lib/libc.so", trace.ModeRead)
	tr.Open(PHPExec, trace.ModeRead)
	openIfPresent(tr, m, "/etc/php/php.ini")
	withMySQL := openIfPresent(tr, m, LibMySQLPath)

	phpVer := version(m, PHPExec)
	if withMySQL {
		libVer := version(m, LibMySQLPath)
		// PHP 4 needs the old client symbols; a corrected library build
		// that retains them (the "php4-compat" marker) does not crash.
		if major(phpVer) == 4 && major(libVer) >= 5 &&
			!strings.Contains(string(m.ReadFile(LibMySQLPath).Data), "php4-compat") {
			return crash(tr, "php: undefined symbol mysql_connect (libmysqlclient "+libVer+")")
		}
	}
	for _, script := range inputs {
		if !openIfPresent(tr, m, script) {
			tr.NetSend([]byte("php: no such file " + script))
			continue
		}
		tr.NetSend([]byte("php: output(" + script + ")"))
	}
	tr.Exit("ok")
	return tr
}

// Apache models the Apache HTTP server; inputs are request paths relative
// to the document root.
type Apache struct{}

// ApacheExec is the path of the httpd binary.
const ApacheExec = "/usr/sbin/httpd"

// ApacheConf is the main server configuration file.
const ApacheConf = "/etc/apache/httpd.conf"

// DocRoot is the document root the request workload reads from.
const DocRoot = "/srv/www/"

func (Apache) Name() string     { return "apache" }
func (Apache) ExecPath() string { return ApacheExec }

// Run starts httpd and serves the inputs. Initialization loads libc, the
// binary, modules under /usr/lib/apache/, and the configuration; a
// configuration that routes an access control list through an Include
// directive makes version 1.3.26 fail at startup.
func (Apache) Run(m *machine.Machine, inputs []string) *trace.Trace {
	tr := trace.New("httpd", inputs...)
	tr.Open("/lib/libc.so", trace.ModeRead)
	tr.Open(ApacheExec, trace.ModeRead)
	openDir(tr, m, "/usr/lib/apache/", trace.ModeRead)
	conf := m.ReadFile(ApacheConf)
	if conf != nil {
		tr.Open(ApacheConf, trace.ModeRead)
	}

	v := version(m, ApacheExec)
	if conf != nil && strings.Contains(string(conf.Data), "Include ") {
		// Open the included file the way 1.3.24 did.
		for _, line := range strings.Split(string(conf.Data), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "Include "); ok {
				openIfPresent(tr, m, strings.TrimSpace(rest))
			}
		}
		if v == "1.3.26" {
			return crash(tr, "httpd: Include directive with access control list not permitted")
		}
	}

	for _, req := range inputs {
		path := DocRoot + strings.TrimPrefix(req, "/")
		if openIfPresent(tr, m, path) {
			tr.NetSend([]byte("HTTP/1.0 200 " + req))
		} else {
			tr.NetSend([]byte("HTTP/1.0 404 " + req))
		}
	}
	tr.Write("/var/log/apache/access.log", []byte(fmt.Sprintf("requests=%d", len(inputs))))
	tr.Exit("ok")
	return tr
}

// Firefox models the Firefox browser; inputs are URLs to render.
type Firefox struct{}

// FirefoxExec is the path of the firefox binary.
const FirefoxExec = "/usr/lib/firefox/firefox-bin"

// Preference files carried over from the 1.0.x profile; their presence
// after an upgrade to 2.0 causes the erratic behaviour of paper ref [11].
const (
	FirefoxPrefs      = "/home/user/.mozilla/firefox/prefs.js"
	FirefoxLocalstore = "/home/user/.mozilla/firefox/localstore.rdf"
)

func (Firefox) Name() string     { return "firefox" }
func (Firefox) ExecPath() string { return FirefoxExec }

// Run starts the browser and renders the input URLs. Initialization loads
// the libraries bundled under /usr/lib/firefox/ plus the profile
// preference files; themes, extensions and fonts load lazily, only when a
// rendered page needs them — which is why the identification heuristic
// misses them without a vendor rule (Table 1).
func (Firefox) Run(m *machine.Machine, inputs []string) *trace.Trace {
	tr := trace.New("firefox-bin", inputs...)
	tr.Open("/lib/libc.so", trace.ModeRead)
	tr.Open(FirefoxExec, trace.ModeRead)
	openDir(tr, m, "/usr/lib/firefox/lib", trace.ModeRead)
	home, _ := m.Getenv("HOME")
	tr.Getenv("HOME", home)
	legacyPrefs := 0
	if openIfPresent(tr, m, FirefoxPrefs) {
		if strings.Contains(string(m.ReadFile(FirefoxPrefs).Data), "1.0") {
			legacyPrefs++
		}
	}
	if openIfPresent(tr, m, FirefoxLocalstore) {
		if strings.Contains(string(m.ReadFile(FirefoxLocalstore).Data), "1.0") {
			legacyPrefs++
		}
	}

	v := version(m, FirefoxExec)
	if major(v) >= 2 && legacyPrefs == 2 {
		// Both legacy preference files present: erratic behaviour. The
		// browser does not crash — its outputs are wrong, which is exactly
		// the class of failure only I/O comparison catches.
		for _, url := range inputs {
			tr.NetSend([]byte("render(about:blank) [expected " + url + "]"))
		}
		tr.Exit("ok")
		return tr
	}

	// Lazy loading: each URL pulls in one extension/theme/font file if
	// installed, in round-robin order.
	lazy := lazyResources(m)
	for i, url := range inputs {
		if len(lazy) > 0 {
			tr.Open(lazy[i%len(lazy)], trace.ModeRead)
		}
		tr.NetSend([]byte("render(" + url + ")"))
	}
	tr.Exit("ok")
	return tr
}

// lazyResources lists the late-bound profile resources: extensions, themes
// and fonts.
func lazyResources(m *machine.Machine) []string {
	var out []string
	for _, p := range m.Paths() {
		if strings.HasPrefix(p, "/home/user/.mozilla/firefox/extensions/") ||
			strings.HasPrefix(p, "/usr/lib/firefox/themes/") ||
			strings.HasPrefix(p, "/usr/share/fonts/") {
			out = append(out, p)
		}
	}
	return out
}

// SlimServer models the SlimServer music server, the paper's improper-
// packaging example: the 6.5.1 package forgot to upgrade the database, so
// the server refuses to start against the old database format.
type SlimServer struct{}

// SlimServerExec is the path of the slimserver binary.
const SlimServerExec = "/usr/sbin/slimserver"

// SlimServerDB is the version marker of the server's database.
const SlimServerDB = "/var/lib/slimserver/db.version"

func (SlimServer) Name() string     { return "slimserver" }
func (SlimServer) ExecPath() string { return SlimServerExec }

// Run starts the server and streams the inputs as track requests.
func (SlimServer) Run(m *machine.Machine, inputs []string) *trace.Trace {
	tr := trace.New("slimserver", inputs...)
	tr.Open("/lib/libc.so", trace.ModeRead)
	tr.Open(SlimServerExec, trace.ModeRead)
	v := version(m, SlimServerExec)
	if db := m.ReadFile(SlimServerDB); db != nil {
		tr.Open(SlimServerDB, trace.ModeRead)
		if v != "" && string(db.Data) != v {
			return crash(tr, "slimserver: database format "+string(db.Data)+" incompatible with "+v)
		}
	}
	for _, track := range inputs {
		tr.NetSend([]byte("stream(" + track + ")"))
	}
	tr.Exit("ok")
	return tr
}
