package apps

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

func baseMachine() *machine.Machine {
	m := machine.New("m")
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(&machine.File{Path: "/lib/libc.so", Type: machine.TypeSharedLib, Data: []byte("libc"), Version: "2.4"})
	return m
}

func installExec(m *machine.Machine, path, version string) {
	m.WriteFile(&machine.File{Path: path, Type: machine.TypeExecutable,
		Data: []byte(path + "-" + version), Version: version})
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"mysql", "php", "apache", "firefox", "slimserver"} {
		if Lookup(name) == nil {
			t.Errorf("app %q not registered", name)
		}
	}
	if Lookup("nope") != nil {
		t.Fatal("phantom app")
	}
	names := Names()
	if len(names) != 5 {
		t.Fatalf("Names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

func TestMySQLHappyPath(t *testing.T) {
	m := baseMachine()
	installExec(m, MySQLExec, "4.1.22")
	m.WriteFile(&machine.File{Path: "/etc/mysql/my.cnf", Type: machine.TypeConfig, Data: []byte("[mysqld]\nport=3306\n")})
	m.WriteFile(&machine.File{Path: "/var/lib/mysql/users.frm", Type: machine.TypeBinary, Data: []byte("table")})

	tr := (MySQL{}).Run(m, []string{"SELECT 1"})
	if tr.ExitStatus() != "ok" {
		t.Fatalf("exit = %q", tr.ExitStatus())
	}
	outs := tr.Outputs()
	if len(outs) < 2 || !strings.Contains(string(outs[0].Data), "result(SELECT 1)") {
		t.Fatalf("outputs = %v", outs)
	}
	// Trace must show config read and data dir rw.
	if !tr.AccessedPaths()["/etc/mysql/my.cnf"] {
		t.Fatal("my.cnf not opened")
	}
	if tr.ReadOnlyPaths()["/var/lib/mysql/users.frm"] {
		t.Fatal("database opened read-only")
	}
}

func TestMySQL5LegacyUserConfigCrash(t *testing.T) {
	m := baseMachine()
	installExec(m, MySQLExec, "5.0.22")
	m.WriteFile(&machine.File{Path: "/home/user/.my.cnf", Type: machine.TypeConfig, Data: []byte("[client]\nold-option=1\n")})
	tr := (MySQL{}).Run(m, []string{"SELECT 1"})
	if tr.ExitStatus() != "crash" {
		t.Fatalf("MySQL 5 with legacy ~/.my.cnf: exit = %q, want crash", tr.ExitStatus())
	}
	// MySQL 4 on the same machine works.
	installExec(m, MySQLExec, "4.1.22")
	if got := (MySQL{}).Run(m, nil).ExitStatus(); got != "ok" {
		t.Fatalf("MySQL 4 with ~/.my.cnf: exit = %q", got)
	}
	// MySQL 5 without the user config works.
	m.RemoveFile("/home/user/.my.cnf")
	installExec(m, MySQLExec, "5.0.22")
	if got := (MySQL{}).Run(m, nil).ExitStatus(); got != "ok" {
		t.Fatalf("MySQL 5 without ~/.my.cnf: exit = %q", got)
	}
}

func TestPHPBrokenDependency(t *testing.T) {
	m := baseMachine()
	installExec(m, PHPExec, "4.4.6")
	m.WriteFile(&machine.File{Path: LibMySQLPath, Type: machine.TypeSharedLib, Data: []byte("libmysql4"), Version: "4.1"})
	m.WriteFile(&machine.File{Path: "/srv/www/index.php", Type: machine.TypeText, Data: []byte("<?php ?>")})

	if got := (PHP{}).Run(m, []string{"/srv/www/index.php"}).ExitStatus(); got != "ok" {
		t.Fatalf("php4 + libmysql4: exit = %q", got)
	}
	// Upgrade the client library to 5 (what the MySQL upgrade drags in).
	m.WriteFile(&machine.File{Path: LibMySQLPath, Type: machine.TypeSharedLib, Data: []byte("libmysql5"), Version: "5.0"})
	tr := (PHP{}).Run(m, []string{"/srv/www/index.php"})
	if tr.ExitStatus() != "crash" {
		t.Fatalf("php4 + libmysql5: exit = %q, want crash", tr.ExitStatus())
	}
	// PHP 5 copes with the new library.
	installExec(m, PHPExec, "5.0.0")
	if got := (PHP{}).Run(m, []string{"/srv/www/index.php"}).ExitStatus(); got != "ok" {
		t.Fatalf("php5 + libmysql5: exit = %q", got)
	}
	// PHP without MySQL support never links the library.
	m.RemoveFile(LibMySQLPath)
	installExec(m, PHPExec, "4.4.6")
	if got := (PHP{}).Run(m, nil).ExitStatus(); got != "ok" {
		t.Fatalf("php4 without libmysql: exit = %q", got)
	}
}

func TestPHPMissingScript(t *testing.T) {
	m := baseMachine()
	installExec(m, PHPExec, "4.4.6")
	tr := (PHP{}).Run(m, []string{"/nope.php"})
	if tr.ExitStatus() != "ok" {
		t.Fatal("missing script crashed interpreter")
	}
	if !strings.Contains(string(tr.Outputs()[0].Data), "no such file") {
		t.Fatalf("outputs = %v", tr.Outputs())
	}
}

func TestApacheIncludeDirectiveProblem(t *testing.T) {
	m := baseMachine()
	installExec(m, ApacheExec, "1.3.24")
	m.WriteFile(&machine.File{Path: ApacheConf, Type: machine.TypeConfig,
		Data: []byte("ServerRoot /etc/apache\nInclude /etc/apache/acl.conf\n")})
	m.WriteFile(&machine.File{Path: "/etc/apache/acl.conf", Type: machine.TypeConfig, Data: []byte("Allow from all\n")})
	m.WriteFile(&machine.File{Path: "/srv/www/index.html", Type: machine.TypeData, Data: []byte("<html>")})

	tr := (Apache{}).Run(m, []string{"/index.html"})
	if tr.ExitStatus() != "ok" {
		t.Fatalf("apache 1.3.24 with Include: exit = %q", tr.ExitStatus())
	}
	if !tr.AccessedPaths()["/etc/apache/acl.conf"] {
		t.Fatal("included ACL file not opened")
	}

	installExec(m, ApacheExec, "1.3.26")
	if got := (Apache{}).Run(m, []string{"/index.html"}).ExitStatus(); got != "crash" {
		t.Fatalf("apache 1.3.26 with Include: exit = %q, want crash", got)
	}

	// Moving the ACL contents into the main file (the documented fix)
	// makes 1.3.26 work.
	m.WriteFile(&machine.File{Path: ApacheConf, Type: machine.TypeConfig,
		Data: []byte("ServerRoot /etc/apache\nAllow from all\n")})
	if got := (Apache{}).Run(m, []string{"/index.html"}).ExitStatus(); got != "ok" {
		t.Fatalf("apache 1.3.26 inlined ACL: exit = %q", got)
	}
}

func TestApacheServesAndLogs(t *testing.T) {
	m := baseMachine()
	installExec(m, ApacheExec, "1.3.24")
	m.WriteFile(&machine.File{Path: "/srv/www/a.html", Type: machine.TypeData, Data: []byte("A")})
	tr := (Apache{}).Run(m, []string{"/a.html", "/missing.html"})
	outs := tr.Outputs()
	if !strings.Contains(string(outs[0].Data), "200") || !strings.Contains(string(outs[1].Data), "404") {
		t.Fatalf("responses = %q %q", outs[0].Data, outs[1].Data)
	}
	if tr.ReadOnlyPaths()["/var/log/apache/access.log"] {
		t.Fatal("access log classified read-only")
	}
}

func firefoxMachine(version string, legacy bool) *machine.Machine {
	m := machine.New("ff")
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(&machine.File{Path: "/lib/libc.so", Type: machine.TypeSharedLib, Data: []byte("libc"), Version: "2.4"})
	installExec(m, FirefoxExec, version)
	m.WriteFile(&machine.File{Path: "/usr/lib/firefox/libxul.so", Type: machine.TypeSharedLib, Data: []byte("xul"), Version: version})
	marker := "fresh"
	if legacy {
		marker = "migrated-from-1.0.4"
	}
	m.WriteFile(&machine.File{Path: FirefoxPrefs, Type: machine.TypeConfig, Data: []byte("profile=" + marker)})
	m.WriteFile(&machine.File{Path: FirefoxLocalstore, Type: machine.TypeConfig, Data: []byte("state=" + marker)})
	return m
}

func TestFirefoxLegacyPrefsErraticOutput(t *testing.T) {
	fresh := firefoxMachine("2.0", false)
	urls := []string{"http://example.org"}
	good := (Firefox{}).Run(fresh, urls)
	if good.ExitStatus() != "ok" || !strings.Contains(string(good.Outputs()[0].Data), "example.org") {
		t.Fatalf("fresh firefox 2.0 run = %v", good.Outputs())
	}

	legacy := firefoxMachine("2.0", true)
	bad := (Firefox{}).Run(legacy, urls)
	if bad.ExitStatus() != "ok" {
		t.Fatalf("legacy prefs should not crash, got %q", bad.ExitStatus())
	}
	if string(bad.Outputs()[0].Data) == string(good.Outputs()[0].Data) {
		t.Fatal("legacy prefs produced identical output; erratic behaviour not modelled")
	}

	// Firefox 1.5 with the same legacy prefs is fine — the problem is
	// specific to the 2.0 upgrade.
	legacy15 := firefoxMachine("1.5.0.7", true)
	ok15 := (Firefox{}).Run(legacy15, urls)
	if !strings.Contains(string(ok15.Outputs()[0].Data), "example.org") {
		t.Fatalf("firefox 1.5 legacy output = %q", ok15.Outputs()[0].Data)
	}
}

func TestFirefoxLazyLoading(t *testing.T) {
	m := firefoxMachine("1.5.0.7", false)
	m.WriteFile(&machine.File{Path: "/usr/share/fonts/dejavu.ttf", Type: machine.TypeBinary, Data: []byte("font")})
	tr := (Firefox{}).Run(m, []string{"a", "b"})
	if !tr.AccessedPaths()["/usr/share/fonts/dejavu.ttf"] {
		t.Fatal("font not lazily loaded")
	}
	// The font is loaded after init: it must not be in the common prefix
	// with a run that renders nothing.
	tr2 := (Firefox{}).Run(m, nil)
	prefix := trace.CommonPrefix([]*trace.Trace{tr, tr2})
	for _, p := range prefix {
		if p == "/usr/share/fonts/dejavu.ttf" {
			t.Fatal("lazy resource in init prefix")
		}
	}
}

func TestSlimServerImproperPackaging(t *testing.T) {
	m := baseMachine()
	installExec(m, SlimServerExec, "6.5.0")
	m.WriteFile(&machine.File{Path: SlimServerDB, Type: machine.TypeBinary, Data: []byte("6.5.0")})
	if got := (SlimServer{}).Run(m, []string{"track1"}).ExitStatus(); got != "ok" {
		t.Fatalf("slimserver 6.5.0: exit = %q", got)
	}
	// The 6.5.1 package upgrades the binary but forgets the database.
	installExec(m, SlimServerExec, "6.5.1")
	if got := (SlimServer{}).Run(m, nil).ExitStatus(); got != "crash" {
		t.Fatalf("slimserver 6.5.1 old db: exit = %q, want crash", got)
	}
	// Proper packaging would have upgraded the database too.
	m.WriteFile(&machine.File{Path: SlimServerDB, Type: machine.TypeBinary, Data: []byte("6.5.1")})
	if got := (SlimServer{}).Run(m, nil).ExitStatus(); got != "ok" {
		t.Fatalf("slimserver 6.5.1 new db: exit = %q", got)
	}
}

func TestDeterministicTraces(t *testing.T) {
	m := baseMachine()
	installExec(m, MySQLExec, "4.1.22")
	a := (MySQL{}).Run(m, []string{"q"})
	b := (MySQL{}).Run(m, []string{"q"})
	if len(a.Events) != len(b.Events) {
		t.Fatal("traces differ across identical runs")
	}
	for i := range a.Events {
		if a.Events[i].Op != b.Events[i].Op || a.Events[i].Path != b.Events[i].Path {
			t.Fatalf("event %d differs", i)
		}
	}
}
