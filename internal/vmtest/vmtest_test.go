package vmtest

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
	"repro/internal/trace"
)

// fixture builds a machine running mysql 4.1.22 and php 4.4.6 (compiled
// with MySQL support), plus a repository holding the mysql 5.0.22 upgrade
// that also ships libmysqlclient 5.0.
type fixture struct {
	m       *machine.Machine
	repo    *pkgmgr.Repository
	store   *Store
	v       *Validator
	mysql5  *pkgmgr.Upgrade
	upEmpty *pkgmgr.Upgrade
}

func lib(path, version string) *machine.File {
	return &machine.File{Path: path, Type: machine.TypeSharedLib, Data: []byte(path + version), Version: version}
}

func exe(path, version string) *machine.File {
	return &machine.File{Path: path, Type: machine.TypeExecutable, Data: []byte(path + version), Version: version}
}

func newFixture(t *testing.T, withUserCnf bool) *fixture {
	t.Helper()
	m := machine.New("user-machine")
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(lib("/lib/libc.so", "2.4"))
	m.WriteFile(exe(apps.MySQLExec, "4.1.22"))
	m.WriteFile(lib(apps.LibMySQLPath, "4.1"))
	m.WriteFile(exe(apps.PHPExec, "4.4.6"))
	m.WriteFile(&machine.File{Path: "/srv/www/index.php", Type: machine.TypeText, Data: []byte("<?php ?>")})
	if withUserCnf {
		m.WriteFile(&machine.File{Path: "/home/user/.my.cnf", Type: machine.TypeConfig, Data: []byte("[client]\nlegacy=1\n")})
	}
	m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"}, []string{apps.MySQLExec, apps.LibMySQLPath})
	m.InstallPackage(machine.PackageRef{Name: "php", Version: "4.4.6"}, []string{apps.PHPExec})

	repo := pkgmgr.NewRepository()
	mysql5pkg := &pkgmgr.Package{
		Name: "mysql", Version: "5.0.22",
		Files: []*machine.File{exe(apps.MySQLExec, "5.0.22"), lib(apps.LibMySQLPath, "5.0")},
	}
	repo.Add(mysql5pkg)

	store := NewStore()
	v := NewValidator(m, repo, store)
	v.ResourcesByApp = map[string][]string{
		"mysql": {apps.MySQLExec, apps.LibMySQLPath, "/etc/mysql/my.cnf"},
		"php":   {apps.PHPExec, apps.LibMySQLPath, "/etc/php/php.ini"},
	}
	return &fixture{
		m: m, repo: repo, store: store, v: v,
		mysql5: &pkgmgr.Upgrade{ID: "mysql-4to5", Pkg: mysql5pkg, Replaces: "4.1.22"},
	}
}

func TestStoreRecordAndLookup(t *testing.T) {
	f := newFixture(t, false)
	rec := f.store.Record(apps.MySQL{}, f.m, []string{"SELECT 1"})
	if rec.Trace.ExitStatus() != "ok" {
		t.Fatalf("baseline run failed: %v", rec.Trace.ExitStatus())
	}
	if len(f.store.Recordings("mysql")) != 1 {
		t.Fatal("recording not stored")
	}
	if got := f.store.Apps(); len(got) != 1 || got[0] != "mysql" {
		t.Fatalf("Apps = %v", got)
	}
}

func TestAffectedApps(t *testing.T) {
	f := newFixture(t, false)
	got := AffectedApps(f.mysql5, f.v.ResourcesByApp)
	// The upgrade touches mysqld and libmysqlclient: both mysql (same
	// package) and php (shares the library resource) are affected.
	if len(got) != 2 || got[0] != "mysql" || got[1] != "php" {
		t.Fatalf("AffectedApps = %v", got)
	}

	unrelated := &pkgmgr.Upgrade{ID: "x", Pkg: &pkgmgr.Package{
		Name: "editor", Version: "1", Files: []*machine.File{exe("/usr/bin/ed", "1")},
	}}
	if got := AffectedApps(unrelated, f.v.ResourcesByApp); len(got) != 0 {
		t.Fatalf("unrelated upgrade affects %v", got)
	}
}

func TestValidateCatchesPHPBreakage(t *testing.T) {
	f := newFixture(t, false)
	f.store.Record(apps.MySQL{}, f.m, []string{"SELECT 1"})
	f.store.Record(apps.PHP{}, f.m, []string{"/srv/www/index.php"})

	report, err := f.v.Validate(f.mysql5)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("validation passed despite PHP breakage")
	}
	failed := report.FailedApps()
	if len(failed) != 1 || failed[0] != "php" {
		t.Fatalf("failed apps = %v (mysql itself works on this machine)", failed)
	}
	for _, v := range report.Verdicts {
		if v.App == "php" && !strings.Contains(v.Reason, "crash") {
			t.Fatalf("php verdict reason = %q", v.Reason)
		}
	}
}

func TestValidateCatchesLegacyConfigCrash(t *testing.T) {
	f := newFixture(t, true) // machine has ~/.my.cnf
	f.store.Record(apps.MySQL{}, f.m, []string{"SELECT 1"})

	report, err := f.v.Validate(f.mysql5)
	if err != nil {
		t.Fatal(err)
	}
	failed := report.FailedApps()
	found := false
	for _, a := range failed {
		if a == "mysql" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mysql legacy-config crash not caught; failed = %v", failed)
	}
}

func TestValidatePassesOnCleanMachine(t *testing.T) {
	f := newFixture(t, false)
	// A machine running php5 is unaffected by the library bump.
	f.m.WriteFile(exe(apps.PHPExec, "5.0.0"))
	f.store.Record(apps.MySQL{}, f.m, []string{"SELECT 1"})
	f.store.Record(apps.PHP{}, f.m, []string{"/srv/www/index.php"})

	report, err := f.v.Validate(f.mysql5)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("clean machine failed validation: %+v", report.Verdicts)
	}
}

func TestValidateDoesNotTouchProduction(t *testing.T) {
	f := newFixture(t, false)
	f.store.Record(apps.MySQL{}, f.m, nil)
	if _, err := f.v.Validate(f.mysql5); err != nil {
		t.Fatal(err)
	}
	// Production machine still runs 4.1.22: the upgrade happened only in
	// the sandbox.
	if got := f.m.ReadFile(apps.MySQLExec).Version; got != "4.1.22" {
		t.Fatalf("production mysqld version = %s", got)
	}
	if ref, _ := f.m.Package("mysql"); ref.Version != "4.1.22" {
		t.Fatalf("production package = %s", ref.Version)
	}
}

func TestValidateSandboxHoldsUpgradedState(t *testing.T) {
	f := newFixture(t, false)
	f.store.Record(apps.MySQL{}, f.m, nil)
	report, err := f.v.Validate(f.mysql5)
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Sandbox.ReadFile(apps.MySQLExec).Version; got != "5.0.22" {
		t.Fatalf("sandbox mysqld version = %s", got)
	}
}

func TestValidateIntegrationOnlyWithoutTraces(t *testing.T) {
	f := newFixture(t, false)
	// No recordings at all: affected apps get integration checks only.
	report, err := f.v.Validate(f.mysql5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range report.Verdicts {
		if !strings.Contains(v.Reason, "integration check") {
			t.Fatalf("verdict without traces = %+v", v)
		}
	}
	// php4 + libmysql5 crashes even the integration check.
	if report.OK() {
		t.Fatal("integration check missed php crash")
	}
}

func TestValidateUnsatisfiableUpgradeReportsIntegrationFailure(t *testing.T) {
	f := newFixture(t, false)
	bad := &pkgmgr.Upgrade{ID: "bad", Pkg: &pkgmgr.Package{
		Name: "mysql", Version: "6.0",
		Dependencies: []pkgmgr.Dependency{{Name: "libfuture", MinVersion: "9"}},
	}}
	report, err := f.v.Validate(bad)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() || !strings.Contains(report.Verdicts[0].Reason, "failed to integrate") {
		t.Fatalf("report = %+v", report.Verdicts)
	}
}

func TestCompareOutputs(t *testing.T) {
	mk := func(outs ...string) *trace.Trace {
		tr := trace.New("app")
		for _, o := range outs {
			tr.NetSend([]byte(o))
		}
		tr.Exit("ok")
		return tr
	}
	if diffs := CompareOutputs(mk("a", "b"), mk("a", "b")); len(diffs) != 0 {
		t.Fatalf("identical traces diff: %v", diffs)
	}
	if diffs := CompareOutputs(mk("a", "b"), mk("a", "X")); len(diffs) != 1 {
		t.Fatalf("one change, diffs = %v", diffs)
	}
	if diffs := CompareOutputs(mk("a", "b"), mk("a")); len(diffs) == 0 {
		t.Fatal("missing output not detected")
	}
	if diffs := CompareOutputs(mk("a"), mk("a", "extra")); len(diffs) == 0 {
		t.Fatal("extra output not detected")
	}

	// A write that moves to a different path is a behaviour change.
	w1 := trace.New("app")
	w1.Write("/out/a", []byte("x"))
	w1.Exit("ok")
	w2 := trace.New("app")
	w2.Write("/out/b", []byte("x"))
	w2.Exit("ok")
	if diffs := CompareOutputs(w1, w2); len(diffs) != 1 || !strings.Contains(diffs[0], "/out/b") {
		t.Fatalf("path change diffs = %v", diffs)
	}
}

func TestCompareOutputsExitStatusChange(t *testing.T) {
	okTr := trace.New("app")
	okTr.Exit("ok")
	crashTr := trace.New("app")
	crashTr.Exit("crash")
	if diffs := CompareOutputs(okTr, crashTr); len(diffs) == 0 {
		t.Fatal("exit status change not detected")
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{App: "php", OK: false, Reason: "crash"}
	if !strings.Contains(v.String(), "FAIL") {
		t.Fatalf("String = %q", v.String())
	}
	v.OK = true
	if !strings.Contains(v.String(), "PASS") {
		t.Fatalf("String = %q", v.String())
	}
}

func TestMaxDiffsBounded(t *testing.T) {
	f := newFixture(t, false)
	f.v.MaxDiffs = 2
	// Record a firefox-style many-output baseline using mysql queries.
	inputs := []string{"q1", "q2", "q3", "q4", "q5", "q6"}
	f.store.Record(apps.MySQL{}, f.m, inputs)
	// Make the upgrade crash mysql on this machine.
	f.m.WriteFile(&machine.File{Path: "/home/user/.my.cnf", Type: machine.TypeConfig, Data: []byte("x")})
	report, err := f.v.Validate(f.mysql5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range report.Verdicts {
		if len(v.Diffs) > 2 {
			t.Fatalf("diffs not bounded: %d", len(v.Diffs))
		}
	}
}
