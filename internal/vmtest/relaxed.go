package vmtest

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Relaxed output comparison: the paper's replay tolerates benign
// non-determinism ("Mirage maps the recorded file inputs to the
// appropriate file operations, even if they are executed in a different
// order than in the trace"). CompareOutputsRelaxed extends the same
// tolerance to outputs: file writes are matched as a multiset of
// (path, content) pairs — an application that flushes its files in a
// different order is not a failed upgrade — while network sends, whose
// order is visible to remote peers, and the exit status remain
// order-sensitive.

// CompareOutputsRelaxed returns a bounded list of differences between the
// baseline and replayed outputs under relaxed file-write matching; empty
// means behaviourally identical.
func CompareOutputsRelaxed(baseline, replayed *trace.Trace) []string {
	var diffs []string

	// Order-sensitive stream: network sends and exit.
	var bStream, rStream []trace.Event
	bWrites := map[string][][]byte{}
	rWrites := map[string][][]byte{}
	split := func(tr *trace.Trace, stream *[]trace.Event, writes map[string][][]byte) {
		for _, e := range tr.Outputs() {
			if e.Op == trace.OpWrite {
				writes[e.Path] = append(writes[e.Path], e.Data)
				continue
			}
			*stream = append(*stream, e)
		}
	}
	split(baseline, &bStream, bWrites)
	split(replayed, &rStream, rWrites)

	n := len(bStream)
	if len(rStream) < n {
		n = len(rStream)
	}
	for i := 0; i < n; i++ {
		if bStream[i].Op != rStream[i].Op || !bytes.Equal(bStream[i].Data, rStream[i].Data) {
			diffs = append(diffs, fmt.Sprintf("stream output %d: %q became %q",
				i, clip(bStream[i].Data), clip(rStream[i].Data)))
		}
	}
	for i := n; i < len(bStream); i++ {
		diffs = append(diffs, fmt.Sprintf("stream output %d (%v) missing after upgrade", i, bStream[i].Op))
	}
	for i := n; i < len(rStream); i++ {
		diffs = append(diffs, fmt.Sprintf("unexpected stream output %d (%v) after upgrade", i, rStream[i].Op))
	}

	// File writes: per-path multiset comparison, order-insensitive across
	// paths AND within a path (repeated identical writes collapse).
	paths := make(map[string]bool)
	for p := range bWrites {
		paths[p] = true
	}
	for p := range rWrites {
		paths[p] = true
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	for _, p := range sorted {
		if !sameWriteMultiset(bWrites[p], rWrites[p]) {
			diffs = append(diffs, fmt.Sprintf("writes to %s differ after upgrade", p))
		}
	}
	return diffs
}

func sameWriteMultiset(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = string(a[i])
		bs[i] = string(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
