// Package vmtest implements Mirage's user-machine testing subsystem
// (paper §3.3): the dependence subsystem that determines which applications
// an upgrade can affect, the trace-collection store holding pre-upgrade
// input/output recordings, and the upgrade-validation subsystem that
// applies the upgrade inside an isolated environment, replays the recorded
// inputs, silently drops (but records) network outputs, and compares the
// observed outputs with the recorded ones.
//
// The paper builds the isolated environment with a modified User-Mode
// Linux booted copy-on-write from the host filesystem. Here the sandbox is
// a copy-on-write snapshot of the simulated machine — the same contract:
// the upgraded application sees exactly the production filesystem state,
// and nothing it does escapes the sandbox.
package vmtest

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
	"repro/internal/trace"
)

// Recording is one traced pre-upgrade run of an application.
type Recording struct {
	App    string
	Inputs []string
	Trace  *trace.Trace
}

// Store holds the traces collected on a machine, per application. The
// dependence subsystem triggers collection; storage is bounded in practice
// by not recording input file contents (replay re-reads them from the
// snapshot), which this model shares.
type Store struct {
	recordings map[string][]Recording
}

// NewStore returns an empty trace store.
func NewStore() *Store {
	return &Store{recordings: make(map[string][]Recording)}
}

// Record runs app on m with the given inputs and stores the trace as the
// baseline for future upgrade validation. It returns the recording.
func (s *Store) Record(app apps.App, m *machine.Machine, inputs []string) Recording {
	rec := Recording{App: app.Name(), Inputs: append([]string(nil), inputs...), Trace: app.Run(m, inputs)}
	s.recordings[app.Name()] = append(s.recordings[app.Name()], rec)
	return rec
}

// Recordings returns the stored traces for an application.
func (s *Store) Recordings(app string) []Recording {
	return s.recordings[app]
}

// Apps returns the applications with at least one recording, sorted.
func (s *Store) Apps() []string {
	out := make([]string, 0, len(s.recordings))
	for a := range s.recordings {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// AffectedApps implements the dependence subsystem: given the environmental
// resources of each installed application (from the envid identification,
// shared with the clustering pipeline) and the file set an upgrade touches,
// it returns the applications whose resources overlap the upgrade — the
// applications that must be re-validated.
func AffectedApps(upgrade *pkgmgr.Upgrade, resourcesByApp map[string][]string) []string {
	touched := make(map[string]bool)
	for _, f := range upgrade.Pkg.Files {
		touched[f.Path] = true
	}
	var out []string
	for app, resources := range resourcesByApp {
		if app == upgrade.Pkg.Name {
			out = append(out, app)
			continue
		}
		for _, r := range resources {
			if touched[r] {
				out = append(out, app)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Verdict is the validation outcome for one application.
type Verdict struct {
	App    string
	OK     bool
	Reason string
	// Diffs lists human-readable output mismatches (bounded).
	Diffs []string
}

func (v Verdict) String() string {
	status := "PASS"
	if !v.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("%s: %s (%s)", v.App, status, v.Reason)
}

// Report is the result of validating one upgrade on one machine.
type Report struct {
	UpgradeID string
	Machine   string
	Verdicts  []Verdict
	// Sandbox is the post-upgrade isolated machine state; on failure it is
	// the paper's "report image" that lets the vendor reproduce the
	// problem. Discarding it discards the upgrade.
	Sandbox *machine.Machine
}

// OK reports whether every affected application passed.
func (r *Report) OK() bool {
	for _, v := range r.Verdicts {
		if !v.OK {
			return false
		}
	}
	return true
}

// FailedApps lists the applications that failed validation.
func (r *Report) FailedApps() []string {
	var out []string
	for _, v := range r.Verdicts {
		if !v.OK {
			out = append(out, v.App)
		}
	}
	return out
}

// Validator validates upgrades on one machine.
type Validator struct {
	M     *machine.Machine
	Repo  *pkgmgr.Repository
	Store *Store
	// ResourcesByApp is the dependence information: environmental
	// resources per installed application.
	ResourcesByApp map[string][]string
	// MaxDiffs bounds the recorded output mismatches per app (default 5).
	MaxDiffs int
}

// NewValidator returns a validator for machine m.
func NewValidator(m *machine.Machine, repo *pkgmgr.Repository, store *Store) *Validator {
	return &Validator{M: m, Repo: repo, Store: store, ResourcesByApp: make(map[string][]string), MaxDiffs: 5}
}

// Validate applies the upgrade in an isolated snapshot of the machine and
// tests every affected application by replaying its recorded inputs and
// comparing outputs. The production machine is never modified; the caller
// integrates the sandbox (or the upgrade transaction) only on success.
func (v *Validator) Validate(up *pkgmgr.Upgrade) (*Report, error) {
	sandbox := v.M.Snapshot("validate:" + up.ID)
	mgr := pkgmgr.NewManager(sandbox, v.Repo)
	if _, err := mgr.Apply(up); err != nil {
		return &Report{
			UpgradeID: up.ID,
			Machine:   v.M.Name,
			Verdicts: []Verdict{{
				App:    up.Pkg.Name,
				OK:     false,
				Reason: "upgrade failed to integrate: " + err.Error(),
			}},
			Sandbox: sandbox,
		}, nil
	}

	report := &Report{UpgradeID: up.ID, Machine: v.M.Name, Sandbox: sandbox}
	for _, appName := range AffectedApps(up, v.ResourcesByApp) {
		model := apps.Lookup(appName)
		if model == nil {
			report.Verdicts = append(report.Verdicts, Verdict{
				App: appName, OK: false, Reason: "no behaviour model for affected application",
			})
			continue
		}
		recs := v.Store.Recordings(appName)
		if len(recs) == 0 {
			// Applications without traces can only be checked for
			// integration and crashing problems (paper §3.3).
			tr := model.Run(sandbox, nil)
			ok := tr.ExitStatus() == "ok"
			reason := "integration check: started cleanly (no traces recorded)"
			if !ok {
				reason = "integration check: " + crashDetail(tr)
			}
			report.Verdicts = append(report.Verdicts, Verdict{App: appName, OK: ok, Reason: reason})
			continue
		}
		verdict := Verdict{App: appName, OK: true, Reason: fmt.Sprintf("replayed %d trace(s), outputs identical", len(recs))}
		for _, rec := range recs {
			replayed := model.Run(sandbox, rec.Inputs)
			if diffs := CompareOutputs(rec.Trace, replayed); len(diffs) > 0 {
				verdict.OK = false
				verdict.Reason = "output divergence during replay"
				if replayed.ExitStatus() != "ok" {
					verdict.Reason = crashDetail(replayed)
				}
				for _, d := range diffs {
					if len(verdict.Diffs) >= v.MaxDiffs {
						break
					}
					verdict.Diffs = append(verdict.Diffs, d)
				}
			}
		}
		report.Verdicts = append(report.Verdicts, verdict)
	}
	return report, nil
}

func crashDetail(tr *trace.Trace) string {
	for _, e := range tr.Outputs() {
		if e.Op == trace.OpWrite && e.Path == "/dev/stderr" {
			return "crash: " + string(e.Data)
		}
	}
	return "crash during replay"
}

// CompareOutputs compares the observable outputs (file writes, network
// sends, exit status) of a baseline and a replayed trace and returns a
// bounded list of human-readable differences; empty means identical
// behaviour. Network outputs of the replay were dropped rather than sent —
// they exist only in the trace — so comparing them is side-effect free.
func CompareOutputs(baseline, replayed *trace.Trace) []string {
	var diffs []string
	b, r := baseline.Outputs(), replayed.Outputs()
	n := len(b)
	if len(r) < n {
		n = len(r)
	}
	for i := 0; i < n; i++ {
		be, re := b[i], r[i]
		switch {
		case be.Op != re.Op:
			diffs = append(diffs, fmt.Sprintf("output %d: %v became %v", i, be.Op, re.Op))
		case be.Op == trace.OpWrite && be.Path != re.Path:
			diffs = append(diffs, fmt.Sprintf("output %d: write to %s became write to %s", i, be.Path, re.Path))
		case !bytes.Equal(be.Data, re.Data):
			diffs = append(diffs, fmt.Sprintf("output %d (%v): %q became %q", i, be.Op, clip(be.Data), clip(re.Data)))
		}
	}
	for i := n; i < len(b); i++ {
		diffs = append(diffs, fmt.Sprintf("output %d (%v) missing after upgrade", i, b[i].Op))
	}
	for i := n; i < len(r); i++ {
		diffs = append(diffs, fmt.Sprintf("unexpected output %d (%v) after upgrade", i, r[i].Op))
	}
	return diffs
}

func clip(data []byte) string {
	const max = 64
	s := string(data)
	if len(s) > max {
		s = s[:max] + "..."
	}
	return strings.ToValidUTF8(s, "?")
}
