package vmtest

import (
	"testing"

	"repro/internal/trace"
)

func mkRelaxed(netsends []string, writes map[string]string, exit string) *trace.Trace {
	tr := trace.New("app")
	// Interleave: writes first half, sends, writes second half — callers
	// of this helper control only the sets, matching relaxed semantics.
	for p, d := range writes {
		tr.Write(p, []byte(d))
	}
	for _, s := range netsends {
		tr.NetSend([]byte(s))
	}
	tr.Exit(exit)
	return tr
}

func TestRelaxedAcceptsReorderedWrites(t *testing.T) {
	a := trace.New("app")
	a.Write("/out/x", []byte("1"))
	a.Write("/out/y", []byte("2"))
	a.Exit("ok")
	b := trace.New("app")
	b.Write("/out/y", []byte("2"))
	b.Write("/out/x", []byte("1"))
	b.Exit("ok")

	if diffs := CompareOutputs(a, b); len(diffs) == 0 {
		t.Fatal("strict comparison unexpectedly tolerant")
	}
	if diffs := CompareOutputsRelaxed(a, b); len(diffs) != 0 {
		t.Fatalf("relaxed comparison rejected reordered writes: %v", diffs)
	}
}

func TestRelaxedCatchesContentChange(t *testing.T) {
	a := mkRelaxed([]string{"r1"}, map[string]string{"/out": "good"}, "ok")
	b := mkRelaxed([]string{"r1"}, map[string]string{"/out": "bad"}, "ok")
	if diffs := CompareOutputsRelaxed(a, b); len(diffs) != 1 {
		t.Fatalf("diffs = %v", diffs)
	}
}

func TestRelaxedCatchesMissingWrite(t *testing.T) {
	a := mkRelaxed(nil, map[string]string{"/out": "x"}, "ok")
	b := mkRelaxed(nil, map[string]string{}, "ok")
	if diffs := CompareOutputsRelaxed(a, b); len(diffs) == 0 {
		t.Fatal("missing write not detected")
	}
}

func TestRelaxedNetworkOrderStillMatters(t *testing.T) {
	a := mkRelaxed([]string{"r1", "r2"}, nil, "ok")
	b := mkRelaxed([]string{"r2", "r1"}, nil, "ok")
	if diffs := CompareOutputsRelaxed(a, b); len(diffs) == 0 {
		t.Fatal("network reorder not detected (peers observe order)")
	}
}

func TestRelaxedExitStatusMatters(t *testing.T) {
	a := mkRelaxed(nil, nil, "ok")
	b := mkRelaxed(nil, nil, "crash")
	if diffs := CompareOutputsRelaxed(a, b); len(diffs) == 0 {
		t.Fatal("exit change not detected")
	}
}

func TestRelaxedRepeatedWrites(t *testing.T) {
	a := trace.New("app")
	a.Write("/log", []byte("line"))
	a.Write("/log", []byte("line"))
	a.Exit("ok")
	b := trace.New("app")
	b.Write("/log", []byte("line"))
	b.Exit("ok")
	if diffs := CompareOutputsRelaxed(a, b); len(diffs) == 0 {
		t.Fatal("dropped repeated write not detected")
	}
}

func TestRelaxedIdenticalTraces(t *testing.T) {
	a := mkRelaxed([]string{"r"}, map[string]string{"/f": "d"}, "ok")
	b := mkRelaxed([]string{"r"}, map[string]string{"/f": "d"}, "ok")
	if diffs := CompareOutputsRelaxed(a, b); len(diffs) != 0 {
		t.Fatalf("identical traces diff: %v", diffs)
	}
}
