package resource

import (
	"testing"
	"testing/quick"
)

func item(key string, h uint64) Item  { return Item{Key: key, Hash: h, Kind: Parsed} }
func citem(key string, h uint64) Item { return Item{Key: key, Hash: h, Kind: Content} }

func TestItemID(t *testing.T) {
	a := item("libc.2.4", 1)
	b := item("libc.2.4", 2)
	if a.ID() == b.ID() {
		t.Fatal("items with different hashes share an ID")
	}
	if a.ID() != item("libc.2.4", 1).ID() {
		t.Fatal("identical items have different IDs")
	}
}

func TestItemPrefix(t *testing.T) {
	it := item("libc.2.4", 9)
	for _, tc := range []struct {
		prefix string
		want   bool
	}{
		{"", true},
		{"libc", true},
		{"libc.2", true},
		{"libc.2.4", true},
		{"libc.2.4.5", false},
		{"libc.24", false},
		{"lib", false},
		{"glibc", false},
	} {
		if got := it.Prefix(tc.prefix); got != tc.want {
			t.Errorf("Prefix(%q) = %v, want %v", tc.prefix, got, tc.want)
		}
	}
}

func TestNewParsedJoinsComponents(t *testing.T) {
	it := NewParsed(5, "my.cnf", "mysqld", "port")
	if it.Key != "my.cnf.mysqld.port" {
		t.Fatalf("key = %q", it.Key)
	}
	if it.Kind != Parsed {
		t.Fatalf("kind = %v", it.Kind)
	}
}

func TestNewContentKind(t *testing.T) {
	it := NewContent("data.bin", 7)
	if it.Kind != Content || it.Key != "data.bin" {
		t.Fatalf("unexpected content item %+v", it)
	}
}

func TestSetAddContains(t *testing.T) {
	s := NewSet(0)
	it := item("a", 1)
	if s.Contains(it) {
		t.Fatal("empty set contains item")
	}
	s.Add(it)
	s.Add(it) // idempotent
	if !s.Contains(it) || s.Len() != 1 {
		t.Fatalf("set after double add: len=%d", s.Len())
	}
}

func TestSetZeroValueUsable(t *testing.T) {
	var s Set
	s.Add(item("x", 1))
	if !s.Contains(item("x", 1)) {
		t.Fatal("zero-value Set unusable")
	}
}

func TestSetItemsSorted(t *testing.T) {
	s := NewSet(0)
	s.Add(item("b", 1))
	s.Add(item("a", 2))
	s.Add(item("c", 3))
	items := s.Items()
	for i := 1; i < len(items); i++ {
		if items[i-1].ID() >= items[i].ID() {
			t.Fatal("Items() not sorted")
		}
	}
}

func TestDiffSymmetric(t *testing.T) {
	a := NewSet(0)
	b := NewSet(0)
	a.Add(item("shared", 1))
	b.Add(item("shared", 1))
	a.Add(item("only-a", 2))
	b.Add(item("only-b", 3))

	d := a.Diff(b)
	if d.Len() != 2 {
		t.Fatalf("diff len = %d, want 2", d.Len())
	}
	if !d.Contains(item("only-a", 2)) || !d.Contains(item("only-b", 3)) {
		t.Fatal("diff missing one-sided items")
	}
	if d.Contains(item("shared", 1)) {
		t.Fatal("diff contains shared item")
	}
}

func TestDiffSameHashDifferentValue(t *testing.T) {
	// Same key, different hash: both versions appear in the diff (the
	// machine has one, the vendor the other).
	a := NewSet(0)
	b := NewSet(0)
	a.Add(item("libc.2.4", 100))
	b.Add(item("libc.2.4", 200))
	if d := a.Diff(b); d.Len() != 2 {
		t.Fatalf("diff len = %d, want 2", d.Len())
	}
}

func TestEqual(t *testing.T) {
	a, b := NewSet(0), NewSet(0)
	if !a.Equal(b) {
		t.Fatal("two empty sets not equal")
	}
	a.Add(item("x", 1))
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.Add(item("x", 1))
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
}

func TestWithoutPrefix(t *testing.T) {
	s := NewSet(0)
	s.Add(item("my.cnf.mysqld.port", 1))
	s.Add(item("my.cnf.client.socket", 2))
	s.Add(item("libc.2.4", 3))
	trimmed := s.WithoutPrefix("my.cnf")
	if trimmed.Len() != 1 || !trimmed.Contains(item("libc.2.4", 3)) {
		t.Fatalf("WithoutPrefix kept %d items: %v", trimmed.Len(), trimmed.Items())
	}
	// Original untouched.
	if s.Len() != 3 {
		t.Fatal("WithoutPrefix mutated receiver")
	}
}

func TestOfKind(t *testing.T) {
	s := NewSet(0)
	s.Add(item("p", 1))
	s.Add(citem("c", 2))
	if got := s.OfKind(Parsed).Len(); got != 1 {
		t.Fatalf("parsed subset len = %d", got)
	}
	if got := s.OfKind(Content).Len(); got != 1 {
		t.Fatalf("content subset len = %d", got)
	}
}

func TestSignatureOrderIndependent(t *testing.T) {
	a, b := NewSet(0), NewSet(0)
	a.Add(item("x", 1))
	a.Add(item("y", 2))
	b.Add(item("y", 2))
	b.Add(item("x", 1))
	if a.Signature() != b.Signature() {
		t.Fatal("signature depends on insertion order")
	}
	b.Add(item("z", 3))
	if a.Signature() == b.Signature() {
		t.Fatal("signature ignores added item")
	}
}

func TestManhattanDistance(t *testing.T) {
	a, b := NewSet(0), NewSet(0)
	if ManhattanDistance(a, b) != 0 {
		t.Fatal("distance between empty sets != 0")
	}
	a.Add(citem("f1", 1))
	a.Add(citem("f2", 2))
	b.Add(citem("f2", 2))
	b.Add(citem("f3", 3))
	if d := ManhattanDistance(a, b); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
	if ManhattanDistance(a, b) != ManhattanDistance(b, a) {
		t.Fatal("distance not symmetric")
	}
}

func TestManhattanDistanceNilSafe(t *testing.T) {
	s := NewSet(0)
	s.Add(citem("f", 1))
	if d := ManhattanDistance(nil, s); d != 1 {
		t.Fatalf("distance(nil, s) = %d, want 1", d)
	}
	if d := ManhattanDistance(s, nil); d != 1 {
		t.Fatalf("distance(s, nil) = %d, want 1", d)
	}
}

// Properties: diff with self is empty; diff is symmetric in content;
// distance satisfies identity of indiscernibles on our set model.
func TestSetProperties(t *testing.T) {
	mk := func(keys []string) *Set {
		s := NewSet(len(keys))
		for _, k := range keys {
			if k == "" {
				continue
			}
			s.Add(item(k, uint64(len(k))))
		}
		return s
	}
	selfDiff := func(keys []string) bool {
		s := mk(keys)
		return s.Diff(s).Len() == 0
	}
	if err := quick.Check(selfDiff, nil); err != nil {
		t.Error(err)
	}
	symmetric := func(xs, ys []string) bool {
		a, b := mk(xs), mk(ys)
		return a.Diff(b).Equal(b.Diff(a)) && ManhattanDistance(a, b) == a.Diff(b).Len()
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
}
