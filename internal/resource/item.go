// Package resource defines the item model at the heart of Mirage's
// clustering (paper §3.2.3). A resource's fingerprint is a hierarchical set
// of keys and values ("items"). Parsers emit items such as
// "libc.2.4.<hash>" or "my.cnf.mysqld.port.<hash>"; the content-based
// fallback emits "filename.<chunk-hash>" items. Machines exchange item
// *sets* with the vendor and the clustering algorithm operates on the
// symmetric difference between each machine's set and the vendor's.
package resource

import (
	"sort"
	"strings"

	"repro/internal/fingerprint"
)

// Kind distinguishes how an item was produced. Phase 1 of the clustering
// algorithm (exact grouping) uses only parsed items; phase 2 (diameter
// clustering) uses only content items.
type Kind int

const (
	// Parsed items come from a Mirage-supplied or vendor-supplied parser
	// and carry precise semantic structure.
	Parsed Kind = iota
	// Content items come from Rabin content-defined chunking and are
	// imprecise: one item per chunk, no semantic meaning.
	Content
)

func (k Kind) String() string {
	switch k {
	case Parsed:
		return "parsed"
	case Content:
		return "content"
	default:
		return "unknown"
	}
}

// Item is one element of a resource fingerprint: a hierarchical key
// (dot-separated path components, e.g. "my.cnf.mysqld.port") together with
// a value hash. Items compare by full identity: two machines share an item
// only if both key and hash match.
type Item struct {
	Key  string
	Hash uint64
	Kind Kind
}

// ID returns the canonical string identity of the item, used for set
// membership and for labelling clusters with their differing items.
func (it Item) ID() string {
	return it.Key + "." + fingerprint.FormatHash(it.Hash)
}

// Prefix reports whether the item's key starts with the given hierarchical
// prefix (whole components only: "libc.2" is a prefix of "libc.2.4" but
// not of "libc.24").
func (it Item) Prefix(prefix string) bool {
	if prefix == "" {
		return true
	}
	if !strings.HasPrefix(it.Key, prefix) {
		return false
	}
	return len(it.Key) == len(prefix) || it.Key[len(prefix)] == '.'
}

// NewParsed builds a parsed item from key components and a value hash.
func NewParsed(hash uint64, components ...string) Item {
	return Item{Key: strings.Join(components, "."), Hash: hash, Kind: Parsed}
}

// NewContent builds a content item (one Rabin chunk of a file).
func NewContent(filename string, chunkHash uint64) Item {
	return Item{Key: filename, Hash: chunkHash, Kind: Content}
}

// Set is a collection of items keyed by identity. The zero value is an
// empty set ready to use via the methods below; NewSet pre-sizes it.
type Set struct {
	items map[string]Item
}

// NewSet returns an empty set with capacity for n items.
func NewSet(n int) *Set {
	return &Set{items: make(map[string]Item, n)}
}

// Add inserts an item; re-adding an identical item is a no-op.
func (s *Set) Add(it Item) {
	if s.items == nil {
		s.items = make(map[string]Item)
	}
	s.items[it.ID()] = it
}

// Remove deletes an item by identity; removing an absent item is a no-op.
func (s *Set) Remove(it Item) {
	if s != nil && s.items != nil {
		delete(s.items, it.ID())
	}
}

// AddAll inserts every item of other.
func (s *Set) AddAll(other *Set) {
	for _, it := range other.items {
		s.Add(it)
	}
}

// Contains reports membership by full identity.
func (s *Set) Contains(it Item) bool {
	if s == nil || s.items == nil {
		return false
	}
	_, ok := s.items[it.ID()]
	return ok
}

// Len returns the number of items.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.items)
}

// Items returns the items sorted by identity, for deterministic iteration.
func (s *Set) Items() []Item {
	if s == nil {
		return nil
	}
	out := make([]Item, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Filter returns a new set holding only items for which keep returns true.
func (s *Set) Filter(keep func(Item) bool) *Set {
	out := NewSet(s.Len())
	for _, it := range s.items {
		if keep(it) {
			out.Add(it)
		}
	}
	return out
}

// OfKind returns the subset of items with the given kind.
func (s *Set) OfKind(k Kind) *Set {
	return s.Filter(func(it Item) bool { return it.Kind == k })
}

// WithoutPrefix returns a new set with every item under the hierarchical
// prefix removed. This implements the vendor control described in the
// paper: "the vendor can create bigger clusters by removing those items
// from the set of differing items of each machine", including discarding
// only a suffix of hierarchical items.
func (s *Set) WithoutPrefix(prefix string) *Set {
	return s.Filter(func(it Item) bool { return !it.Prefix(prefix) })
}

// Diff returns the symmetric difference between this set and the vendor
// reference: items present here but not at the vendor, and vice versa.
// This is exactly the list each user machine sends back to the vendor
// after comparing fingerprints (paper §3.2.3, "Resource fingerprinting").
func (s *Set) Diff(vendor *Set) *Set {
	out := NewSet(0)
	for _, it := range s.items {
		if !vendor.Contains(it) {
			out.Add(it)
		}
	}
	if vendor != nil {
		for _, it := range vendor.items {
			if !s.Contains(it) {
				out.Add(it)
			}
		}
	}
	return out
}

// Equal reports whether both sets contain exactly the same items.
func (s *Set) Equal(other *Set) bool {
	if s.Len() != other.Len() {
		return false
	}
	for _, it := range s.items {
		if !other.Contains(it) {
			return false
		}
	}
	return true
}

// Signature returns a single stable hash over the whole set, independent of
// insertion order. The paper's privacy extension (§3.5) has each machine
// communicate only this hash of its differing items to the vendor.
func (s *Set) Signature() uint64 {
	ids := make([]string, 0, s.Len())
	for id := range s.items {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return fingerprint.HashString(strings.Join(ids, "\n"))
}

// ManhattanDistance counts items present in exactly one of the two sets.
// It is the distance metric of the QT diameter clustering phase: "the
// number of different items associated with the resources for which there
// are no parsers".
func ManhattanDistance(a, b *Set) int {
	d := 0
	if a != nil {
		for _, it := range a.items {
			if !b.Contains(it) {
				d++
			}
		}
	}
	if b != nil {
		for _, it := range b.items {
			if !a.Contains(it) {
				d++
			}
		}
	}
	return d
}
