package simulator

import "testing"

// Late-arrival behaviour (§4.3: "some machines may stay offline for long
// periods of time; it would be impractical to wait for all these machines
// to pass testing before moving to the next cluster").

func offlineScenario(threshold float64, offline int, returnTime float64) (Params, []ClusterSpec) {
	p := DefaultParams()
	p.Threshold = threshold
	specs := testScenario(10, 100, 2, true)
	specs[0].Offline = offline
	specs[0].ReturnTime = returnTime
	return p, specs
}

func TestOfflineMachinesDoNotDelayCluster(t *testing.T) {
	p, specs := offlineScenario(0.9, 5, 10_000) // 5/99 offline, threshold 90%
	res := Balanced(p, specs)
	base := Balanced(DefaultParams(), testScenario(10, 100, 2, true))
	// The first cluster's latency is unchanged: the threshold lets it
	// advance without the offline machines.
	if res.Latency[specs[0].Name] != base.Latency[specs[0].Name] {
		t.Fatalf("offline machines delayed the cluster: %v vs %v",
			res.Latency[specs[0].Name], base.Latency[specs[0].Name])
	}
	if res.LateTests != 5 {
		t.Fatalf("late tests = %d, want 5", res.LateTests)
	}
}

func TestLateArrivalsTestAfterReturn(t *testing.T) {
	p, specs := offlineScenario(0.9, 5, 10_000)
	res := Balanced(p, specs)
	// The simulation runs until the late arrivals have tested: the engine
	// processes events past their return time.
	if res.Events == 0 {
		t.Fatal("no events")
	}
	// Makespan reflects cluster completions only, not late arrivals.
	if res.Makespan > 5000 {
		t.Fatalf("late arrivals inflated makespan: %v", res.Makespan)
	}
}

func TestBelowThresholdWaitsForLateArrivals(t *testing.T) {
	// 60 of 99 non-reps offline with threshold 0.5: online fraction
	// 39/99 < 0.5, so the cluster must wait for the return.
	p, specs := offlineScenario(0.5, 60, 2_000)
	res := Balanced(p, specs)
	if res.Latency[specs[0].Name] < 2_000 {
		t.Fatalf("cluster advanced below threshold at %v", res.Latency[specs[0].Name])
	}
	// Subsequent clusters are pushed back behind the gate.
	if res.Latency[specs[1].Name] < 2_000 {
		t.Fatalf("next cluster started before the gate: %v", res.Latency[specs[1].Name])
	}
}

func TestLateArrivalOnProblemClusterRetries(t *testing.T) {
	// Offline machines in a problem cluster return before the fix exists:
	// they fail, report, and retry — counted as overhead like any tester.
	p := DefaultParams()
	p.Threshold = 0.5
	specs := testScenario(10, 100, 2, false) // problems in first clusters
	specs[0].Offline = 10
	specs[0].ReturnTime = 0 // return immediately
	res := Balanced(p, specs)
	// Overhead: the representative plus possibly the early-returning late
	// arrivals that raced the fix. At minimum the rep of each problem.
	if res.Overhead < 3 {
		t.Fatalf("overhead = %d", res.Overhead)
	}
	if res.LateTests == 0 {
		t.Fatal("late arrivals never tested")
	}
}

func TestNoStagingWithOffline(t *testing.T) {
	p := DefaultParams()
	specs := testScenario(10, 100, 2, true)
	specs[3].Offline = 20
	specs[3].ReturnTime = 5_000
	res := NoStaging(p, specs)
	if res.LateTests != 20 {
		t.Fatalf("late tests = %d", res.LateTests)
	}
	// The cluster still completed on the normal schedule.
	if res.Latency[specs[3].Name] != p.RoundTrip() {
		t.Fatalf("clean cluster latency = %v", res.Latency[specs[3].Name])
	}
}

func TestOfflineZeroIsNoop(t *testing.T) {
	p := DefaultParams()
	a := Balanced(p, testScenario(10, 100, 2, true))
	specs := testScenario(10, 100, 2, true)
	for i := range specs {
		specs[i].Offline = 0
	}
	b := Balanced(p, specs)
	if a.Makespan != b.Makespan || a.Overhead != b.Overhead || b.LateTests != 0 {
		t.Fatal("zero offline changed behaviour")
	}
}
