package simulator

import "repro/internal/staging"

// This file is the event-driven executor for the shared staged-deployment
// plans of internal/staging. The protocol semantics of §4.3 — which
// cluster group tests when, what gates what — live in the plan; this
// executor owns only the mechanism: scheduling download+test round trips
// on the event engine, retrying after fixes ship, honoring the
// non-representative threshold, and handling offline machines as late
// arrivals.
//
// Common structure preserved from the paper: representatives of a cluster
// always test before the cluster's non-representatives; the vendor's
// debugging pipeline is serial; machines that fail testing retry one
// download+test round-trip after the relevant fix ships.

// Refs converts simulator cluster specs into the planner's cluster refs.
func Refs(clusters []ClusterSpec) []staging.ClusterRef {
	refs := make([]staging.ClusterRef, len(clusters))
	for i, c := range clusters {
		refs[i] = staging.ClusterRef{Name: c.Name, Distance: c.Distance}
	}
	return refs
}

// PlanFor returns the deployment plan the simulator executes for policy
// over the given clusters — the very plan internal/deploy runs against
// real nodes, which is what makes simulated and live rollouts of the same
// fleet follow the same schedule.
func PlanFor(policy staging.Policy, clusters []ClusterSpec, seed uint64) *staging.Plan {
	return staging.BuildPlan(policy, Refs(clusters), seed)
}

// Run simulates policy over the clusters with the given parameters.
func Run(p Params, policy staging.Policy, clusters []ClusterSpec, seed uint64) *Result {
	s := NewSim(p, policy.String())
	ex := &simExecutor{s: s, specs: make(map[string]*ClusterSpec, len(clusters)), clean: make(map[string]bool)}
	for i := range clusters {
		ex.specs[clusters[i].Name] = &clusters[i]
	}
	staging.Execute(PlanFor(policy, clusters, seed), ex)
	return s.Finish()
}

// NoStaging places all machines into a single concurrent stage and treats
// them all as representatives: everyone downloads and tests immediately.
// Fast, with upgrade overhead equal to the total number of problematic
// machines. The paper positions it for simple, urgent upgrades such as
// security patches.
func NoStaging(p Params, clusters []ClusterSpec) *Result {
	return Run(p, staging.PolicyNoStaging, clusters, 0)
}

// Balanced deploys cluster by cluster, starting from the cluster most
// similar to the vendor's installation: representatives of the cluster
// test first, then its non-representatives, then deployment advances.
// It reduces upgrade overhead to (roughly) the number of problems while
// letting many machines upgrade before all debugging completes.
func Balanced(p Params, clusters []ClusterSpec) *Result {
	return Run(p, staging.PolicyBalanced, clusters, 0)
}

// RandomStaging is Balanced with a random deployment order; the paper uses
// it to isolate the benefit of staging itself from that of intelligent
// cluster ordering. The shuffle is seeded for reproducibility.
func RandomStaging(p Params, clusters []ClusterSpec, seed uint64) *Result {
	return Run(p, staging.PolicyRandomStaging, clusters, seed)
}

// FrontLoading front-loads the vendor's debugging effort: phase 1 notifies
// the representatives of all clusters in parallel and repeats
// test-and-debug rounds until no representative reports a problem; phase 2
// then deploys to non-representatives one cluster at a time, most
// dissimilar cluster first. Per-cluster latency is dominated by the
// debug cycles of phase 1, but phase 2 needs no representative step, so
// the last cluster finishes earlier than under the other staged protocols.
func FrontLoading(p Params, clusters []ClusterSpec) *Result {
	return Run(p, staging.PolicyFrontLoading, clusters, 0)
}

// Adaptive is Balanced with early promotion: when a cluster's
// representatives pass without a single failure, its non-representatives
// test in the background while deployment advances to the next cluster
// immediately. Problem clusters still gate exactly like Balanced, so the
// overhead guarantee is unchanged while clean fleets finish in roughly
// half the time.
func Adaptive(p Params, clusters []ClusterSpec) *Result {
	return Run(p, staging.PolicyAdaptive, clusters, 0)
}

// simExecutor implements staging.Executor on the discrete-event engine.
type simExecutor struct {
	s     *Sim
	specs map[string]*ClusterSpec
	// clean records whether a cluster's representative wave has converged
	// without observing any failure — PolicyAdaptive's promotion signal.
	clean map[string]bool
}

func (e *simExecutor) RunStage(st staging.Stage, done func()) {
	if st.RetryAll {
		e.runJointRepsStage(st, done)
		return
	}
	remaining := len(st.Waves)
	if remaining == 0 {
		done()
		return
	}
	converged := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	for _, w := range st.Waves {
		c := e.specs[w.Cluster]
		switch w.Group {
		case staging.GroupAll:
			e.runAllWave(c, converged)
		case staging.GroupReps:
			e.runRepsWave(c, converged)
		default: // staging.GroupOthers
			if st.Promote(w, e.clean) {
				// Zero failures at the representatives: promote the
				// non-representatives — their wave proceeds in the
				// background while the plan advances.
				e.runOthersWave(c, func() {})
				converged()
			} else {
				e.runOthersWave(c, converged)
			}
		}
	}
}

// runAllWave deploys to the whole cluster at once (NoStaging): the online
// machines download and test immediately, failing machines retry one
// round-trip after the fix ships, and the cluster completes when its last
// online machine passes.
func (e *simExecutor) runAllWave(c *ClusterSpec, done func()) {
	s := e.s
	var attempt func()
	attempt = func() {
		out := s.TestGroup(c, c.Size-c.Offline, false)
		if out.Failed == 0 {
			s.MarkDone(c)
			scheduleLateArrivals(s, c)
			done()
			return
		}
		s.At(out.FixReady+s.P.RoundTrip(), "all-retry:"+c.Name, attempt)
	}
	s.After(s.P.RoundTrip(), "all-test:"+c.Name, attempt)
}

// runRepsWave tests the cluster's representatives, retrying after fixes
// until no failures remain.
func (e *simExecutor) runRepsWave(c *ClusterSpec, done func()) {
	s := e.s
	e.clean[c.Name] = true
	var attempt func()
	attempt = func() {
		out := s.TestGroup(c, c.Reps, true)
		if out.Failed > 0 {
			e.clean[c.Name] = false
			s.At(out.FixReady+s.P.RoundTrip(), "rep-retry:"+c.Name, attempt)
			return
		}
		done()
	}
	s.After(s.P.RoundTrip(), "rep-test:"+c.Name, attempt)
}

// runOthersWave deploys to the cluster's non-representatives. Only the
// online non-representatives test now; the cluster advances once the
// threshold fraction of non-representatives has passed and no failures
// are outstanding. Offline machines are handled as late arrivals and
// never gate deployment progress (provided the online fraction meets the
// threshold; otherwise deployment must wait for them to return).
func (e *simExecutor) runOthersWave(c *ClusterSpec, done func()) {
	s := e.s
	online := c.NonReps() - c.Offline
	onlineFraction := 1.0
	if c.NonReps() > 0 {
		onlineFraction = float64(online) / float64(c.NonReps())
	}

	complete := func() {
		if onlineFraction >= s.P.Threshold {
			s.MarkDone(c)
			scheduleLateArrivals(s, c)
			done()
			return
		}
		// Below threshold: the cluster cannot advance until the late
		// arrivals return and pass.
		ret := c.ReturnTime
		if ret < s.Now() {
			ret = s.Now()
		}
		var lateGate func()
		lateGate = func() {
			s.Res.LateTests += c.Offline
			out := s.TestGroup(c, c.Offline, false)
			if out.Failed > 0 {
				s.At(out.FixReady+s.P.RoundTrip(), "late-gate-retry:"+c.Name, lateGate)
				return
			}
			s.MarkDone(c)
			done()
		}
		s.At(ret+s.P.RoundTrip(), "late-gate:"+c.Name, lateGate)
	}

	var retry func()
	first := func() {
		out := s.TestGroup(c, online, false)
		if out.Failed == 0 {
			complete()
			return
		}
		// Machines that passed integrate the upgrade now (they may later
		// be notified of a corrected version); the failing machines —
		// misplaced ones, or the whole group when clustering let an
		// unfixed problem through — retry after the fix.
		s.At(out.FixReady+s.P.RoundTrip(), "nonrep-retry:"+c.Name, retry)
	}
	retry = func() {
		// Only the previously failing machines re-test: passing n=0
		// re-evaluates the cluster problem and the misplaced machines.
		out := s.TestGroup(c, 0, false)
		if out.Failed == 0 {
			complete()
			return
		}
		s.At(out.FixReady+s.P.RoundTrip(), "nonrep-retry:"+c.Name, retry)
	}
	s.After(s.P.RoundTrip(), "nonrep-test:"+c.Name, first)
}

// runJointRepsStage executes a RetryAll stage (FrontLoading phase 1):
// all representatives of all clusters test concurrently; whenever any
// fail, every representative is re-notified once the vendor has corrected
// every reported problem, until a full round passes cleanly.
func (e *simExecutor) runJointRepsStage(st staging.Stage, done func()) {
	s := e.s
	var round func()
	round = func() {
		anyFailed := false
		var latestFix float64
		for _, w := range st.Waves {
			c := e.specs[w.Cluster]
			out := s.TestGroup(c, c.Reps, true)
			if out.Failed > 0 {
				anyFailed = true
				e.clean[c.Name] = false
				if out.FixReady > latestFix {
					latestFix = out.FixReady
				}
			}
		}
		if anyFailed {
			s.At(latestFix+s.P.RoundTrip(), "phase1-round", round)
			return
		}
		done()
	}
	s.After(s.P.RoundTrip(), "phase1-round", round)
}

// scheduleLateArrivals handles the machines that were offline when their
// cluster deployed: when they return, they download, test and report on
// the upgrades they missed (paper §4.3, the "late arrivals"). By then the
// relevant fixes have usually shipped, so they pass; if not, they retry
// like everyone else. Late arrivals never delay cluster completion — that
// is the point of the vendor-defined threshold.
func scheduleLateArrivals(s *Sim, c *ClusterSpec) {
	if c.Offline <= 0 {
		return
	}
	ret := c.ReturnTime
	if ret < s.Now() {
		ret = s.Now()
	}
	var attempt func()
	attempt = func() {
		s.Res.LateTests += c.Offline
		out := s.TestGroup(c, c.Offline, false)
		if out.Failed > 0 {
			s.At(out.FixReady+s.P.RoundTrip(), "late-retry:"+c.Name, attempt)
		}
	}
	s.At(ret+s.P.RoundTrip(), "late-arrival:"+c.Name, attempt)
}
