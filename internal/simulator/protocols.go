package simulator

import "sort"

// This file implements the deployment protocols of §4.3 on top of the
// event engine: the two Mirage staged protocols (FrontLoading and
// Balanced) and the two baselines (NoStaging and RandomStaging).
//
// Common structure: representatives of a cluster always test before the
// cluster's non-representatives; the vendor's debugging pipeline is
// serial; machines that fail testing retry one download+test round-trip
// after the relevant fix ships.

// orderByDistance returns the clusters sorted by ascending (or descending)
// distance to the vendor, ties broken by name for determinism.
func orderByDistance(clusters []ClusterSpec, descending bool) []*ClusterSpec {
	out := make([]*ClusterSpec, len(clusters))
	for i := range clusters {
		out[i] = &clusters[i]
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			if descending {
				return out[i].Distance > out[j].Distance
			}
			return out[i].Distance < out[j].Distance
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// NoStaging places all machines into a single cluster and treats them all
// as representatives: everyone downloads and tests immediately. Fast, with
// upgrade overhead equal to the total number of problematic machines. The
// paper positions it for simple, urgent upgrades such as security patches.
func NoStaging(p Params, clusters []ClusterSpec) *Result {
	s := NewSim(p, "NoStaging")
	specs := orderByDistance(clusters, false)
	for _, c := range specs {
		c := c
		var attempt func()
		attempt = func() {
			out := s.TestGroup(c, c.Size-c.Offline, false)
			if out.Failed == 0 {
				s.MarkDone(c)
				scheduleLateArrivals(s, c)
				return
			}
			// Failed machines retry one round-trip after the fix ships;
			// the cluster completes when its last machine passes.
			s.At(out.FixReady+p.RoundTrip(), "nostaging-retry:"+c.Name, attempt)
		}
		s.At(p.RoundTrip(), "nostaging-test:"+c.Name, attempt)
	}
	return s.Finish()
}

// scheduleLateArrivals handles the machines that were offline when their
// cluster deployed: when they return, they download, test and report on
// the upgrades they missed (paper §4.3, the "late arrivals"). By then the
// relevant fixes have usually shipped, so they pass; if not, they retry
// like everyone else. Late arrivals never delay cluster completion — that
// is the point of the vendor-defined threshold.
func scheduleLateArrivals(s *Sim, c *ClusterSpec) {
	if c.Offline <= 0 {
		return
	}
	ret := c.ReturnTime
	if ret < s.Now() {
		ret = s.Now()
	}
	var attempt func()
	attempt = func() {
		s.Res.LateTests += c.Offline
		out := s.TestGroup(c, c.Offline, false)
		if out.Failed > 0 {
			s.At(out.FixReady+s.P.RoundTrip(), "late-retry:"+c.Name, attempt)
		}
	}
	s.At(ret+s.P.RoundTrip(), "late-arrival:"+c.Name, attempt)
}

// runCluster deploys one cluster: representatives first (unless skipReps),
// then non-representatives, retrying after fixes until no failures remain,
// then calls next. It is shared by Balanced, RandomStaging and
// FrontLoading's second phase.
func runCluster(s *Sim, c *ClusterSpec, skipReps bool, next func()) {
	var repPhase, nonRepPhase, nonRepRetry func()

	repPhase = func() {
		out := s.TestGroup(c, c.Reps, true)
		if out.Failed > 0 {
			s.At(out.FixReady+s.P.RoundTrip(), "rep-retry:"+c.Name, repPhase)
			return
		}
		s.After(s.P.RoundTrip(), "nonrep-test:"+c.Name, nonRepPhase)
	}

	// Only the online non-representatives test now; the cluster advances
	// once the threshold fraction of non-representatives has passed and no
	// failures are outstanding. Offline machines are handled as late
	// arrivals and never gate deployment progress (provided the online
	// fraction meets the threshold; otherwise deployment must wait for
	// them to return).
	online := c.NonReps() - c.Offline
	onlineFraction := 1.0
	if c.NonReps() > 0 {
		onlineFraction = float64(online) / float64(c.NonReps())
	}

	complete := func() {
		if onlineFraction >= s.P.Threshold {
			s.MarkDone(c)
			scheduleLateArrivals(s, c)
			next()
			return
		}
		// Below threshold: the cluster cannot advance until the late
		// arrivals return and pass.
		ret := c.ReturnTime
		if ret < s.Now() {
			ret = s.Now()
		}
		var lateGate func()
		lateGate = func() {
			s.Res.LateTests += c.Offline
			out := s.TestGroup(c, c.Offline, false)
			if out.Failed > 0 {
				s.At(out.FixReady+s.P.RoundTrip(), "late-gate-retry:"+c.Name, lateGate)
				return
			}
			s.MarkDone(c)
			next()
		}
		s.At(ret+s.P.RoundTrip(), "late-gate:"+c.Name, lateGate)
	}

	nonRepPhase = func() {
		out := s.TestGroup(c, online, false)
		if out.Failed == 0 {
			complete()
			return
		}
		// Machines that passed integrate the upgrade now (they may later
		// be notified of a corrected version); the failing machines —
		// misplaced ones, or the whole group when clustering let an
		// unfixed problem through — retry after the fix.
		s.At(out.FixReady+s.P.RoundTrip(), "nonrep-retry:"+c.Name, nonRepRetry)
	}

	nonRepRetry = func() {
		// Only the previously failing machines re-test: passing n=0
		// re-evaluates the cluster problem and the misplaced machines.
		out := s.TestGroup(c, 0, false)
		if out.Failed == 0 {
			complete()
			return
		}
		s.At(out.FixReady+s.P.RoundTrip(), "nonrep-retry:"+c.Name, nonRepRetry)
	}

	if skipReps {
		s.After(s.P.RoundTrip(), "nonrep-test:"+c.Name, nonRepPhase)
	} else {
		s.After(s.P.RoundTrip(), "rep-test:"+c.Name, repPhase)
	}
}

// runSequential deploys the given clusters one after another.
func runSequential(s *Sim, order []*ClusterSpec, skipReps bool) {
	var deploy func(i int)
	deploy = func(i int) {
		if i >= len(order) {
			return
		}
		runCluster(s, order[i], skipReps, func() { deploy(i + 1) })
	}
	deploy(0)
}

// Balanced deploys cluster by cluster, starting from the cluster most
// similar to the vendor's installation: representatives of the cluster
// test first, then its non-representatives, then deployment advances.
// It reduces upgrade overhead to (roughly) the number of problems while
// letting many machines upgrade before all debugging completes.
func Balanced(p Params, clusters []ClusterSpec) *Result {
	s := NewSim(p, "Balanced")
	runSequential(s, orderByDistance(clusters, false), false)
	return s.Finish()
}

// RandomStaging is Balanced with a random deployment order; the paper uses
// it to isolate the benefit of staging itself from that of intelligent
// cluster ordering. The shuffle is seeded for reproducibility.
func RandomStaging(p Params, clusters []ClusterSpec, seed uint64) *Result {
	s := NewSim(p, "RandomStaging")
	order := orderByDistance(clusters, false)
	// Deterministic Fisher-Yates using an xorshift generator, so results
	// are stable across runs and platforms.
	state := seed
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := len(order) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	runSequential(s, order, false)
	return s.Finish()
}

// FrontLoading front-loads the vendor's debugging effort: phase 1 notifies
// the representatives of all clusters in parallel and repeats
// test-and-debug rounds until no representative reports a problem; phase 2
// then deploys to non-representatives one cluster at a time, most
// dissimilar cluster first. Per-cluster latency is dominated by the
// debug cycles of phase 1, but phase 2 needs no representative step, so
// the last cluster finishes earlier than under the other staged protocols.
func FrontLoading(p Params, clusters []ClusterSpec) *Result {
	s := NewSim(p, "FrontLoading")
	specs := orderByDistance(clusters, true) // farthest first for phase 2

	var phase1 func()
	phase1 = func() {
		anyFailed := false
		var latestFix float64
		for _, c := range specs {
			out := s.TestGroup(c, c.Reps, true)
			if out.Failed > 0 {
				anyFailed = true
				if out.FixReady > latestFix {
					latestFix = out.FixReady
				}
			}
		}
		if anyFailed {
			// All representatives are re-notified once the vendor has
			// corrected every reported problem.
			s.At(latestFix+p.RoundTrip(), "phase1-round", phase1)
			return
		}
		runSequential(s, specs, true)
	}
	s.At(p.RoundTrip(), "phase1-round", phase1)
	return s.Finish()
}
