package simulator

import (
	"math"
	"testing"
)

// testScenario builds a small version of the paper's §4.3 scenario:
// nClusters equal clusters, one representative each; the prevalent problem
// affects prevClusters clusters; two non-prevalent problems affect one
// cluster each. Problem placement in the distance order is controlled by
// problemsLast (best case for Balanced) or first (worst case).
func testScenario(nClusters, size, prevClusters int, problemsLast bool) []ClusterSpec {
	specs := make([]ClusterSpec, nClusters)
	problems := make([]string, 0, prevClusters+2)
	for i := 0; i < prevClusters; i++ {
		problems = append(problems, "prevalent")
	}
	problems = append(problems, "nonprev-1", "nonprev-2")
	for i := range specs {
		specs[i] = ClusterSpec{
			Name:     clusterName(i),
			Size:     size,
			Reps:     1,
			Distance: i + 1,
		}
	}
	if problemsLast {
		for i, p := range problems {
			specs[nClusters-1-i].Problem = p
		}
	} else {
		for i, p := range problems {
			specs[i].Problem = p
		}
	}
	return specs
}

func clusterName(i int) string {
	return "c" + string(rune('A'+i/10)) + string(rune('0'+i%10))
}

func totalProblemMachines(specs []ClusterSpec) int {
	m := 0
	for _, c := range specs {
		if c.Problem != "" {
			m += c.Size
		}
		m += len(c.Misplaced)
	}
	return m
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(5, "b", func() { got = append(got, "b") })
	e.At(3, "a", func() { got = append(got, "a") })
	e.At(5, "c", func() { got = append(got, "c") })
	end := e.Run()
	if end != 5 {
		t.Fatalf("end time = %v", end)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order = %v (same-time events must run in schedule order)", got)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, "past", func() {})
	})
	e.Run()
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			e.After(10, "tick", tick)
		}
	}
	e.After(10, "tick", tick)
	if end := e.Run(); end != 50 || ticks != 5 {
		t.Fatalf("end=%v ticks=%d", end, ticks)
	}
}

func TestVendorSerialDebugging(t *testing.T) {
	s := NewSim(DefaultParams(), "test")
	var f1, f2, f1again float64
	s.At(15, "r", func() {
		f1 = s.Report("p1", 1)
		f2 = s.Report("p2", 1)
		f1again = s.Report("p1", 3)
	})
	s.Run()
	if f1 != 515 {
		t.Fatalf("first fix at %v, want 515", f1)
	}
	if f2 != 1015 {
		t.Fatalf("second fix at %v, want 1015 (serial pipeline)", f2)
	}
	if f1again != f1 {
		t.Fatal("re-reporting a problem scheduled a second fix")
	}
	if s.Res.Fixes != 2 || s.Res.Reports != 5 {
		t.Fatalf("fixes=%d reports=%d", s.Res.Fixes, s.Res.Reports)
	}
}

func TestFixedVisibilityOverTime(t *testing.T) {
	s := NewSim(DefaultParams(), "test")
	s.At(0, "report", func() { s.Report("p", 1) })
	s.At(100, "check-early", func() {
		if s.Fixed("p") {
			t.Error("problem fixed before fix time elapsed")
		}
	})
	s.At(600, "check-late", func() {
		if !s.Fixed("p") {
			t.Error("problem not fixed after fix time")
		}
	})
	s.Run()
}

func TestNoStagingSound(t *testing.T) {
	specs := testScenario(20, 5000, 3, true)
	res := NoStaging(DefaultParams(), specs)

	// Overhead: every problematic machine tests the faulty upgrade.
	if want := totalProblemMachines(specs); res.Overhead != want {
		t.Fatalf("overhead = %d, want %d", res.Overhead, want)
	}
	// 75% of clusters pass right away at download+test time.
	if got := res.FractionByTime(15); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("fraction at t=15 = %v, want 0.75", got)
	}
	// Three problems, fixed serially: last cluster done at 1515+15.
	if res.Makespan != 1530 {
		t.Fatalf("makespan = %v, want 1530", res.Makespan)
	}
}

func TestBalancedSoundOverheadIsP(t *testing.T) {
	for _, last := range []bool{true, false} {
		specs := testScenario(20, 5000, 3, last)
		res := Balanced(DefaultParams(), specs)
		// Overhead = p: only the first representative to hit each problem
		// fails (the prevalent problem is fixed once, later clusters pass).
		if res.Overhead != 3 {
			t.Fatalf("problemsLast=%v: overhead = %d, want 3", last, res.Overhead)
		}
		if res.Fixes != 3 {
			t.Fatalf("fixes = %d, want 3", res.Fixes)
		}
	}
}

func TestBalancedBestVsWorstLatency(t *testing.T) {
	p := DefaultParams()
	best := Balanced(p, testScenario(20, 5000, 3, true))
	worst := Balanced(p, testScenario(20, 5000, 3, false))

	// Best case: clean clusters complete quickly (30 units each).
	if got := best.FractionByTime(450); got < 0.74 {
		t.Fatalf("best-case fraction at 450 = %v, want >= 0.75", got)
	}
	// Worst case: the first three clusters each burn a debug cycle before
	// any progress, so almost nothing completes early.
	if got := worst.FractionByTime(450); got > 0.10 {
		t.Fatalf("worst-case fraction at 450 = %v, want ~0", got)
	}
	// Median cluster finishes far sooner in the best case.
	if bm, wm := medianLatency(best), medianLatency(worst); bm >= wm {
		t.Fatalf("median best %v >= median worst %v", bm, wm)
	}
}

func medianLatency(r *Result) float64 {
	cdf := r.CDF()
	return cdf[len(cdf)/2].Time
}

func TestFrontLoadingSound(t *testing.T) {
	specs := testScenario(20, 5000, 3, true)
	res := FrontLoading(DefaultParams(), specs)

	// Overhead = p + Cp: all five problem-cluster representatives fail in
	// the parallel phase 1 (3 share the prevalent problem).
	if res.Overhead != 5 {
		t.Fatalf("overhead = %d, want 5", res.Overhead)
	}
	if res.Fixes != 3 {
		t.Fatalf("fixes = %d, want 3", res.Fixes)
	}
	// Phase 1: test(15) + three serial fixes (1515) + retest(15) = 1530.
	// No cluster completes before phase 1 ends.
	if got := res.FractionByTime(1529); got != 0 {
		t.Fatalf("fraction before phase 1 end = %v, want 0", got)
	}
	// Phase 2: 20 sequential non-rep rounds of 15 each.
	if res.Makespan != 1530+20*15 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, 1530+20*15.0)
	}
}

func TestFrontLoadingFinishesLastClusterBeforeBalanced(t *testing.T) {
	p := DefaultParams()
	fl := FrontLoading(p, testScenario(20, 5000, 3, true))
	bw := Balanced(p, testScenario(20, 5000, 3, false))
	bb := Balanced(p, testScenario(20, 5000, 3, true))
	// The paper: "the last cluster applies the upgrade sooner under
	// FrontLoading than the other staged protocols".
	if fl.Makespan >= bb.Makespan || fl.Makespan >= bw.Makespan {
		t.Fatalf("FrontLoading makespan %v not sooner than Balanced best %v / worst %v",
			fl.Makespan, bb.Makespan, bw.Makespan)
	}
}

func TestBalancedBestBeatsFrontLoadingEarly(t *testing.T) {
	p := DefaultParams()
	fl := FrontLoading(p, testScenario(20, 5000, 3, true))
	bb := Balanced(p, testScenario(20, 5000, 3, true))
	// Balanced (best) upgrades a large fraction of machines well before
	// FrontLoading upgrades any.
	if got := bb.FractionByTime(1000); got < 0.5 {
		t.Fatalf("Balanced best at t=1000 = %v", got)
	}
	if got := fl.FractionByTime(1000); got != 0 {
		t.Fatalf("FrontLoading at t=1000 = %v, want 0", got)
	}
}

func TestRandomStagingBetweenBestAndWorst(t *testing.T) {
	p := DefaultParams()
	best := Balanced(p, testScenario(20, 5000, 3, true))
	worst := Balanced(p, testScenario(20, 5000, 3, false))
	rnd := RandomStaging(p, testScenario(20, 5000, 3, true), 1)

	if rnd.Overhead != 3 {
		t.Fatalf("RandomStaging overhead = %d, want 3", rnd.Overhead)
	}
	bm, wm, rm := medianLatency(best), medianLatency(worst), medianLatency(rnd)
	if rm < bm || rm > wm {
		t.Fatalf("RandomStaging median %v outside [best %v, worst %v]", rm, bm, wm)
	}
}

func TestRandomStagingDeterministicPerSeed(t *testing.T) {
	p := DefaultParams()
	a := RandomStaging(p, testScenario(10, 100, 2, true), 7)
	b := RandomStaging(p, testScenario(10, 100, 2, true), 7)
	if a.Makespan != b.Makespan || a.Overhead != b.Overhead {
		t.Fatal("same seed, different results")
	}
	for name, lat := range a.Latency {
		if b.Latency[name] != lat {
			t.Fatalf("latency of %s differs across identical runs", name)
		}
	}
}

// Imperfect clustering: one misplaced problematic machine injected into the
// first or last cluster of the deployment order (Figure 11).
func misplacedScenario(first bool) []ClusterSpec {
	specs := testScenario(20, 5000, 3, true) // problems in last 5 clusters
	// Clean clusters are at the front of the distance order; inject into
	// the first or the last CLEAN cluster so the misplaced machine's
	// problem is a new, distinct one.
	idx := 0
	if !first {
		idx = len(specs) - 6 // last clean cluster in Balanced order
	}
	specs[idx].Misplaced = []string{"misplaced-problem"}
	return specs
}

func TestImperfectClusteringOverheadPlusOne(t *testing.T) {
	p := DefaultParams()
	sound := Balanced(p, testScenario(20, 5000, 3, true))
	imp := Balanced(p, misplacedScenario(true))
	if imp.Overhead != sound.Overhead+1 {
		t.Fatalf("imperfect overhead = %d, want %d", imp.Overhead, sound.Overhead+1)
	}
	// NoStaging is merely one machine worse.
	nsSound := NoStaging(p, testScenario(20, 5000, 3, true))
	nsImp := NoStaging(p, misplacedScenario(true))
	if nsImp.Overhead != nsSound.Overhead+1 {
		t.Fatalf("NoStaging imperfect overhead = %d, want %d", nsImp.Overhead, nsSound.Overhead+1)
	}
}

func TestImpactOfMisplacedPosition(t *testing.T) {
	p := DefaultParams()
	firstHit := Balanced(p, misplacedScenario(true))
	lastHit := Balanced(p, misplacedScenario(false))
	sound := Balanced(p, testScenario(20, 5000, 3, true))

	// Misplaced machine in the first cluster delays the median cluster by
	// roughly a debug cycle; in the last clean cluster, the median is
	// barely affected.
	mSound, mFirst, mLast := medianLatency(sound), medianLatency(firstHit), medianLatency(lastHit)
	if mFirst < mSound+p.FixTime/2 {
		t.Fatalf("first-cluster misplacement median %v vs sound %v: no delay", mFirst, mSound)
	}
	if mLast > mSound+p.FixTime/2 {
		t.Fatalf("last-cluster misplacement median %v vs sound %v: too much delay", mLast, mSound)
	}
}

func TestNoStagingUnaffectedByMisplacement(t *testing.T) {
	p := DefaultParams()
	sound := NoStaging(p, testScenario(20, 5000, 3, true))
	imp := NoStaging(p, misplacedScenario(true))
	// Latency structure unchanged for clusters other than the one holding
	// the misplaced machine (its problem queues one more fix).
	if sound.FractionByTime(15) > imp.FractionByTime(15)+0.051 {
		t.Fatalf("NoStaging early fraction changed: %v vs %v",
			sound.FractionByTime(15), imp.FractionByTime(15))
	}
}

func TestCDFMonotonic(t *testing.T) {
	res := Balanced(DefaultParams(), testScenario(20, 100, 3, true))
	cdf := res.CDF()
	if len(cdf) != 20 {
		t.Fatalf("CDF has %d points", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Time < cdf[i-1].Time || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("CDF not monotonic at %d: %+v %+v", i, cdf[i-1], cdf[i])
		}
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Fatal("CDF does not reach 1.0")
	}
}

func TestThresholdDefaulting(t *testing.T) {
	s := NewSim(Params{DownloadTime: 1, TestTime: 1, FixTime: 1}, "x")
	if s.P.Threshold != 1.0 {
		t.Fatalf("threshold = %v", s.P.Threshold)
	}
}

func TestMarkDoneTwicePanics(t *testing.T) {
	s := NewSim(DefaultParams(), "x")
	c := &ClusterSpec{Name: "c"}
	s.MarkDone(c)
	defer func() {
		if recover() == nil {
			t.Fatal("double MarkDone did not panic")
		}
	}()
	s.MarkDone(c)
}

func TestResultString(t *testing.T) {
	res := Balanced(DefaultParams(), testScenario(5, 10, 1, true))
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}
