package simulator

import (
	"fmt"
	"sort"
)

// Params are the timing parameters of the simulated deployment (paper
// §4.3.1: download 5, test 10, fix 500 time units; the download+test to
// debugging ratio mimics tens of minutes vs. at least one day).
type Params struct {
	DownloadTime float64
	TestTime     float64
	FixTime      float64
	// Threshold is the fraction of non-representatives that must pass
	// before deployment advances to the next cluster (vendor-defined; the
	// paper waits for "a large fraction" to tolerate offline machines).
	Threshold float64
}

// DefaultParams returns the paper's example scenario timings.
func DefaultParams() Params {
	return Params{DownloadTime: 5, TestTime: 10, FixTime: 500, Threshold: 1.0}
}

// RoundTrip is the time for one download+test cycle.
func (p Params) RoundTrip() float64 { return p.DownloadTime + p.TestTime }

// ClusterSpec describes one cluster of deployment as the simulator sees it.
type ClusterSpec struct {
	Name string
	Size int // total machines, including representatives
	Reps int // representatives (>= 1 for staged protocols)
	// Problem names the upgrade problem every machine of this cluster
	// exhibits ("" for none). Sound clustering means all machines of the
	// cluster share this behaviour.
	Problem string
	// Misplaced lists problems of individually misplaced non-representative
	// machines (imperfect clustering), one entry per machine.
	Misplaced []string
	// Distance to the vendor's environment; staged protocols order
	// clusters by it.
	Distance int
	// Offline is the number of non-representative machines offline when
	// deployment reaches the cluster. Staged protocols advance once the
	// vendor-defined threshold fraction of non-representatives has passed;
	// offline machines are "late arrivals" that test whatever upgrade is
	// current when they return at ReturnTime.
	Offline int
	// ReturnTime is the absolute time offline machines come back online.
	ReturnTime float64
}

// NonReps returns the number of non-representative machines.
func (c ClusterSpec) NonReps() int { return c.Size - c.Reps }

// Result collects the outcome of one simulated deployment.
type Result struct {
	Protocol string
	// Latency maps cluster name to the time at which the cluster completed
	// deployment (threshold reached and no outstanding failures).
	Latency map[string]float64
	// Overhead is the number of machines that tested a faulty upgrade —
	// the paper's definition of upgrade overhead.
	Overhead int
	// Reports is the number of failure reports received by the vendor.
	Reports int
	// Fixes is the number of debugging cycles the vendor performed.
	Fixes int
	// Makespan is the time the last cluster completed.
	Makespan float64
	// Events is the number of simulator events processed.
	Events int
	// LateTests counts tests performed by late arrivals after their
	// cluster had already advanced.
	LateTests int
}

// CDFPoint is one step of the per-cluster latency CDF.
type CDFPoint struct {
	Time     float64
	Fraction float64
}

// CDF returns the cumulative distribution of per-cluster latency, the curve
// plotted in Figures 10 and 11.
func (r *Result) CDF() []CDFPoint {
	times := make([]float64, 0, len(r.Latency))
	for _, t := range r.Latency {
		times = append(times, t)
	}
	sort.Float64s(times)
	points := make([]CDFPoint, len(times))
	for i, t := range times {
		points[i] = CDFPoint{Time: t, Fraction: float64(i+1) / float64(len(times))}
	}
	return points
}

// FractionByTime returns the fraction of clusters complete at time t.
func (r *Result) FractionByTime(t float64) float64 {
	n := 0
	for _, lt := range r.Latency {
		if lt <= t {
			n++
		}
	}
	return float64(n) / float64(len(r.Latency))
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: makespan=%.0f overhead=%d reports=%d fixes=%d",
		r.Protocol, r.Makespan, r.Overhead, r.Reports, r.Fixes)
}

// Sim drives one deployment simulation: an Engine plus the vendor's serial
// debugging pipeline and the global set of fixed problems.
type Sim struct {
	*Engine
	P Params
	// fixDone maps a problem to the absolute time its fix is (or will be)
	// available; problems not present are unfixed and unreported.
	fixDone    map[string]float64
	vendorFree float64
	Res        *Result
}

// NewSim returns a simulation with the given parameters.
func NewSim(p Params, protocol string) *Sim {
	if p.Threshold <= 0 {
		p.Threshold = 1.0
	}
	return &Sim{
		Engine:  NewEngine(),
		P:       p,
		fixDone: make(map[string]float64),
		Res:     &Result{Protocol: protocol, Latency: make(map[string]float64)},
	}
}

// Fixed reports whether problem's fix is available at the current time.
func (s *Sim) Fixed(problem string) bool {
	t, ok := s.fixDone[problem]
	return ok && t <= s.Now()
}

// Report delivers failure reports for problem from n machines at the
// current time and returns the absolute time the fix will be available.
// The vendor debugs serially: concurrent problems queue behind each other
// (the paper's 500-unit fix time is the entire debugging cycle at the
// vendor). Reporting an already-queued problem adds reports but no new fix.
func (s *Sim) Report(problem string, n int) float64 {
	s.Res.Reports += n
	if t, ok := s.fixDone[problem]; ok {
		return t
	}
	start := s.Now()
	if s.vendorFree > start {
		start = s.vendorFree
	}
	done := start + s.P.FixTime
	s.vendorFree = done
	s.fixDone[problem] = done
	s.Res.Fixes++
	return done
}

// TestOutcome describes one group test round.
type TestOutcome struct {
	Passed int
	Failed int
	// FixReady is the latest fix-availability time among the problems the
	// failing machines hit; meaningful only when Failed > 0.
	FixReady float64
}

// TestGroup simulates n machines of cluster c downloading and testing the
// upgrade, finishing at the current time (the caller schedules the call at
// notify time + RoundTrip). Machines whose problem is unfixed fail, are
// counted in overhead, and report. reps says whether this group is the
// representative group (which tests cluster-wide problems) or the
// non-representative group (which additionally includes the misplaced
// machines).
func (s *Sim) TestGroup(c *ClusterSpec, n int, reps bool) TestOutcome {
	var out TestOutcome
	if c.Problem != "" && !s.Fixed(c.Problem) {
		out.Failed += n
		s.Res.Overhead += n
		done := s.Report(c.Problem, n)
		if done > out.FixReady {
			out.FixReady = done
		}
		return out
	}
	out.Passed = n
	if !reps {
		for _, mp := range c.Misplaced {
			if s.Fixed(mp) {
				continue
			}
			out.Failed++
			out.Passed--
			s.Res.Overhead++
			done := s.Report(mp, 1)
			if done > out.FixReady {
				out.FixReady = done
			}
		}
	}
	return out
}

// MarkDone records cluster completion at the current time.
func (s *Sim) MarkDone(c *ClusterSpec) {
	if _, dup := s.Res.Latency[c.Name]; dup {
		panic("simulator: cluster completed twice: " + c.Name)
	}
	s.Res.Latency[c.Name] = s.Now()
}

// Finish runs the engine to completion and finalizes the result.
func (s *Sim) Finish() *Result {
	s.Run()
	for _, t := range s.Res.Latency {
		if t > s.Res.Makespan {
			s.Res.Makespan = t
		}
	}
	s.Res.Events = s.Events
	return s.Res
}
