// Package simulator provides the deterministic event-driven simulator used
// to evaluate Mirage's staged deployment protocols (paper §4.3.1): it
// models a vendor with a serial debugging pipeline, clusters of user
// machines with one or more representatives, download/test/fix latencies,
// upgrade problems (prevalent and non-prevalent), and misplaced machines.
package simulator

import "container/heap"

// event is one scheduled callback.
type event struct {
	at   float64
	seq  int // tie-break: schedule order, for determinism
	name string
	fn   func()
}

// eventHeap is a min-heap ordered by time then schedule order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event execution core: schedule callbacks at absolute
// simulated times, then Run to execute them in order.
type Engine struct {
	now    float64
	seq    int
	queue  eventHeap
	Events int // total events executed, for diagnostics
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t float64, name string, fn func()) {
	if t < e.now {
		panic("simulator: scheduling event in the past: " + name)
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, name: name, fn: fn})
}

// After schedules fn to run d time units from now.
func (e *Engine) After(d float64, name string, fn func()) {
	e.At(e.now+d, name, fn)
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.Events++
		ev.fn()
	}
	return e.now
}
