package simulator

import "testing"

// PolicyAdaptive: Balanced's ordering and overhead guarantees, but a
// cluster whose representatives pass without failures releases its
// non-representatives from the barrier — deployment advances while they
// test in the background.

func TestAdaptiveCleanFleetHalvesMakespan(t *testing.T) {
	p := DefaultParams()
	specs := testScenario(20, 5000, 0, true)
	for i := range specs {
		specs[i].Problem = "" // fully clean fleet
	}
	bal := Balanced(p, specs)
	ada := Adaptive(p, specs)
	// Balanced: each cluster costs two gated round trips (reps, others).
	if want := 2 * p.RoundTrip() * 20; bal.Makespan != want {
		t.Fatalf("balanced makespan = %v, want %v", bal.Makespan, want)
	}
	// Adaptive: only the reps chain gates; the last others wave finishes
	// one round trip after the last reps wave.
	if want := p.RoundTrip() * 21; ada.Makespan != want {
		t.Fatalf("adaptive makespan = %v, want %v", ada.Makespan, want)
	}
	if ada.Overhead != 0 || bal.Overhead != 0 {
		t.Fatalf("clean fleet produced overhead %d/%d", ada.Overhead, bal.Overhead)
	}
}

func TestAdaptiveKeepsBalancedOverhead(t *testing.T) {
	p := DefaultParams()
	bal := Balanced(p, testScenario(20, 5000, 3, true))
	ada := Adaptive(p, testScenario(20, 5000, 3, true))
	// Problem clusters are not promoted, so representatives still shield
	// non-representatives: overhead = p, exactly as Balanced.
	if ada.Overhead != bal.Overhead {
		t.Fatalf("adaptive overhead = %d, balanced = %d", ada.Overhead, bal.Overhead)
	}
	if ada.Fixes != bal.Fixes {
		t.Fatalf("adaptive fixes = %d, balanced = %d", ada.Fixes, bal.Fixes)
	}
	if ada.Makespan >= bal.Makespan {
		t.Fatalf("adaptive makespan %v not better than balanced %v", ada.Makespan, bal.Makespan)
	}
	// Every cluster still completes exactly once (MarkDone panics on
	// duplicates), and the CDF is complete.
	if len(ada.Latency) != 20 {
		t.Fatalf("completed clusters = %d", len(ada.Latency))
	}
}

func TestAdaptiveDirtyClusterStillGates(t *testing.T) {
	p := DefaultParams()
	// Problems in the FIRST clusters: the dirty clusters must hold the
	// plan back exactly like Balanced (no promotion on failures).
	bal := Balanced(p, testScenario(10, 100, 2, false))
	ada := Adaptive(p, testScenario(10, 100, 2, false))
	if ada.Overhead != bal.Overhead {
		t.Fatalf("overhead %d != %d", ada.Overhead, bal.Overhead)
	}
	// The first (dirty) cluster's completion time is identical: its
	// non-representatives waited for the fix either way.
	specs := testScenario(10, 100, 2, false)
	if ada.Latency[specs[0].Name] != bal.Latency[specs[0].Name] {
		t.Fatalf("dirty cluster latency %v != %v", ada.Latency[specs[0].Name], bal.Latency[specs[0].Name])
	}
}

func TestAdaptiveWithMisplacedMachineConverges(t *testing.T) {
	p := DefaultParams()
	// A promoted others wave can still fail (misplaced machine). The
	// deployment must converge in the background without gating, and the
	// misplaced machine's test still counts as overhead.
	specs := testScenario(10, 100, 0, true)
	for i := range specs {
		specs[i].Problem = ""
	}
	specs[0].Misplaced = []string{"misplaced-problem"}
	res := Adaptive(p, specs)
	if res.Overhead != 1 {
		t.Fatalf("overhead = %d, want 1 (the misplaced machine)", res.Overhead)
	}
	if len(res.Latency) != 10 {
		t.Fatalf("completed clusters = %d", len(res.Latency))
	}
	// Promotion means the clean clusters behind it were not delayed by
	// the misplaced machine's debug cycle.
	if res.Latency[specs[1].Name] >= p.FixTime {
		t.Fatalf("cluster 1 delayed to %v by a promoted wave's failure", res.Latency[specs[1].Name])
	}
}

func TestAdaptiveThresholdGatePreserved(t *testing.T) {
	// A promoted cluster below the online threshold still completes only
	// after its late arrivals return — the threshold is mechanism, shared
	// by every policy.
	p, specs := offlineScenario(0.5, 60, 2_000)
	res := Adaptive(p, specs)
	if res.Latency[specs[0].Name] < 2_000 {
		t.Fatalf("below-threshold cluster completed at %v", res.Latency[specs[0].Name])
	}
	// But — unlike Balanced — the NEXT cluster was not held behind the
	// late-arrival gate: promotion released it.
	if res.Latency[specs[1].Name] >= 2_000 {
		t.Fatalf("adaptive still gated the next cluster: %v", res.Latency[specs[1].Name])
	}
}
