// Package report implements Mirage's reporting subsystem (paper §3.4): the
// Upgrade Report Repository (URR) that collects success/failure results
// from all machines and clusters. Each report stores (1) the cluster of
// deployment, (2) the succinct test results, and (3) a report image that
// lets the vendor reproduce the problem — in the paper, the entire upgraded
// virtual-machine state; here, the full state of the simulated sandbox,
// which Materialize turns back into a runnable machine.
package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/machine"
)

// FileState is one file captured in a report image.
type FileState struct {
	Path    string
	Type    machine.FileType
	Version string
	Data    []byte
}

// PackageState is one installed package captured in a report image.
type PackageState struct {
	Name    string
	Version string
	Files   []string
}

// Image is a reproducible snapshot of a machine: the paper's report image.
type Image struct {
	MachineName string
	Files       []FileState
	Env         map[string]string
	Packages    []PackageState
}

// CaptureImage snapshots the full state of m.
func CaptureImage(m *machine.Machine) *Image {
	img := &Image{MachineName: m.Name, Env: m.AllEnv()}
	for _, f := range m.Files() {
		img.Files = append(img.Files, FileState{
			Path: f.Path, Type: f.Type, Version: f.Version,
			Data: append([]byte(nil), f.Data...),
		})
	}
	for _, ref := range m.Packages() {
		img.Packages = append(img.Packages, PackageState{
			Name: ref.Name, Version: ref.Version, Files: m.PackageFiles(ref.Name),
		})
	}
	return img
}

// Materialize reconstructs a runnable machine from the image, letting the
// vendor reproduce the reported problem locally.
func (img *Image) Materialize() *machine.Machine {
	m := machine.New(img.MachineName)
	for _, f := range img.Files {
		m.WriteFile(&machine.File{
			Path: f.Path, Type: f.Type, Version: f.Version,
			Data: append([]byte(nil), f.Data...),
		})
	}
	for k, v := range img.Env {
		m.SetEnv(k, v)
	}
	for _, p := range img.Packages {
		m.InstallPackage(machine.PackageRef{Name: p.Name, Version: p.Version}, p.Files)
	}
	return m
}

// Report is one upgrade test result deposited in the URR.
type Report struct {
	ID        int // assigned by the URR
	UpgradeID string
	Machine   string
	Cluster   string // cluster of deployment
	Success   bool
	// FailedApps and Reasons summarise the failure succinctly; empty on
	// success.
	FailedApps []string
	Reasons    []string
	// Image is attached on failure so the vendor can reproduce the
	// problem; successful reports omit it to save repository space.
	Image *Image
	// Seq is a logical receipt timestamp assigned by the URR.
	Seq int
}

// Signature is a stable identity for the failure mode: upgrade plus failed
// applications plus reasons. The vendor uses it to collapse the redundant
// reports the survey complains about.
func (r *Report) Signature() string {
	if r.Success {
		return r.UpgradeID + "|success"
	}
	return r.UpgradeID + "|" + strings.Join(r.FailedApps, ",") + "|" + strings.Join(r.Reasons, ";")
}

func (r *Report) String() string {
	status := "success"
	if !r.Success {
		status = "FAILURE " + strings.Join(r.FailedApps, ",")
	}
	return fmt.Sprintf("report#%d upgrade=%s machine=%s cluster=%s: %s",
		r.ID, r.UpgradeID, r.Machine, r.Cluster, status)
}

// URR is the Upgrade Report Repository. The current implementation
// co-locates it with the vendor, as in the paper; it is safe for
// concurrent use by the transport layer.
type URR struct {
	mu      sync.Mutex
	reports []*Report
	nextSeq int
}

// New returns an empty repository.
func New() *URR {
	return &URR{}
}

// Deposit stores a report, assigning its ID and sequence, and returns the ID.
func (u *URR) Deposit(r *Report) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	r.ID = len(u.reports)
	r.Seq = u.nextSeq
	u.nextSeq++
	u.reports = append(u.reports, r)
	return r.ID
}

// Len returns the number of deposited reports.
func (u *URR) Len() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.reports)
}

// Get returns report by ID, or nil.
func (u *URR) Get(id int) *Report {
	u.mu.Lock()
	defer u.mu.Unlock()
	if id < 0 || id >= len(u.reports) {
		return nil
	}
	return u.reports[id]
}

// ForUpgrade returns all reports for one upgrade, in deposit order.
func (u *URR) ForUpgrade(upgradeID string) []*Report {
	u.mu.Lock()
	defer u.mu.Unlock()
	var out []*Report
	for _, r := range u.reports {
		if r.UpgradeID == upgradeID {
			out = append(out, r)
		}
	}
	return out
}

// Failures returns the failed reports for one upgrade.
func (u *URR) Failures(upgradeID string) []*Report {
	var out []*Report
	for _, r := range u.ForUpgrade(upgradeID) {
		if !r.Success {
			out = append(out, r)
		}
	}
	return out
}

// FailureGroup is a set of reports sharing one failure signature.
type FailureGroup struct {
	Signature string
	Clusters  []string
	Reports   []*Report
	// Representative is the first report of the group — the one the
	// vendor debugs; the rest are the redundancy Mirage's clustering is
	// designed to minimise.
	Representative *Report
}

// GroupFailures collapses an upgrade's failures by signature, the
// de-duplication view of the repository.
func (u *URR) GroupFailures(upgradeID string) []FailureGroup {
	groups := make(map[string]*FailureGroup)
	var order []string
	for _, r := range u.Failures(upgradeID) {
		sig := r.Signature()
		g, ok := groups[sig]
		if !ok {
			g = &FailureGroup{Signature: sig, Representative: r}
			groups[sig] = g
			order = append(order, sig)
		}
		g.Reports = append(g.Reports, r)
		g.Clusters = append(g.Clusters, r.Cluster)
	}
	out := make([]FailureGroup, 0, len(groups))
	for _, sig := range order {
		g := groups[sig]
		sort.Strings(g.Clusters)
		g.Clusters = dedupe(g.Clusters)
		out = append(out, *g)
	}
	return out
}

// Summary counts successes and failures for an upgrade.
func (u *URR) Summary(upgradeID string) (successes, failures int) {
	for _, r := range u.ForUpgrade(upgradeID) {
		if r.Success {
			successes++
		} else {
			failures++
		}
	}
	return
}

// SuccessesInCluster counts successful reports for upgrade from a cluster;
// deployment protocols use it to decide when to advance to the next stage.
func (u *URR) SuccessesInCluster(upgradeID, cluster string) int {
	n := 0
	for _, r := range u.ForUpgrade(upgradeID) {
		if r.Success && r.Cluster == cluster {
			n++
		}
	}
	return n
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
