package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// Persistence for the Upgrade Report Repository. The paper's URR is a
// queryable store co-located with the vendor; real deployments need it to
// survive vendor restarts, so the repository serializes to a stable JSON
// document (report images included — they are what make failures
// reproducible later).

// urrDocument is the serialized form.
type urrDocument struct {
	Version int       `json:"version"`
	NextSeq int       `json:"next_seq"`
	Reports []*Report `json:"reports"`
}

// documentVersion guards against reading future formats.
const documentVersion = 1

// Save writes the repository to w as JSON.
func (u *URR) Save(w io.Writer) error {
	u.mu.Lock()
	doc := urrDocument{Version: documentVersion, NextSeq: u.nextSeq, Reports: u.reports}
	u.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("report: saving URR: %w", err)
	}
	return nil
}

// LoadURR reads a repository previously written by Save.
func LoadURR(r io.Reader) (*URR, error) {
	var doc urrDocument
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("report: loading URR: %w", err)
	}
	if doc.Version != documentVersion {
		return nil, fmt.Errorf("report: unsupported URR document version %d", doc.Version)
	}
	u := New()
	u.nextSeq = doc.NextSeq
	u.reports = doc.Reports
	// Re-derive IDs defensively: they are positional.
	for i, rep := range u.reports {
		rep.ID = i
	}
	return u, nil
}
