package report

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/machine"
)

func sampleMachine() *machine.Machine {
	m := machine.New("m1")
	m.WriteFile(&machine.File{Path: "/bin/app", Type: machine.TypeExecutable, Data: []byte("bin"), Version: "2.0"})
	m.WriteFile(&machine.File{Path: "/etc/app.conf", Type: machine.TypeConfig, Data: []byte("k=v")})
	m.SetEnv("HOME", "/root")
	m.InstallPackage(machine.PackageRef{Name: "app", Version: "2.0"}, []string{"/bin/app"})
	return m
}

func TestImageRoundTrip(t *testing.T) {
	m := sampleMachine()
	img := CaptureImage(m)
	clone := img.Materialize()

	if clone.Name != "m1" {
		t.Fatalf("name = %q", clone.Name)
	}
	f := clone.ReadFile("/bin/app")
	if f == nil || string(f.Data) != "bin" || f.Version != "2.0" || f.Type != machine.TypeExecutable {
		t.Fatalf("file = %+v", f)
	}
	if v, _ := clone.Getenv("HOME"); v != "/root" {
		t.Fatalf("env = %q", v)
	}
	if ref, ok := clone.Package("app"); !ok || ref.Version != "2.0" {
		t.Fatalf("package = %v %v", ref, ok)
	}
	// The image is a deep copy: mutating the clone leaves the original.
	clone.ReadFile("/bin/app").Data[0] = 'X'
	if m.ReadFile("/bin/app").Data[0] == 'X' {
		t.Fatal("image aliases the original machine")
	}
}

func TestImageCapturesSnapshotLayers(t *testing.T) {
	m := sampleMachine()
	snap := m.Snapshot("sandbox")
	snap.WriteFile(&machine.File{Path: "/bin/app", Type: machine.TypeExecutable, Data: []byte("v3"), Version: "3.0"})
	img := CaptureImage(snap)
	clone := img.Materialize()
	if got := clone.ReadFile("/bin/app").Version; got != "3.0" {
		t.Fatalf("snapshot layer lost: version = %s", got)
	}
	if got := clone.ReadFile("/etc/app.conf"); got == nil {
		t.Fatal("parent layer lost")
	}
}

func TestDepositAssignsIDs(t *testing.T) {
	u := New()
	r1 := &Report{UpgradeID: "up1", Machine: "m1", Success: true}
	r2 := &Report{UpgradeID: "up1", Machine: "m2", Success: false, FailedApps: []string{"php"}}
	if id := u.Deposit(r1); id != 0 {
		t.Fatalf("first id = %d", id)
	}
	if id := u.Deposit(r2); id != 1 {
		t.Fatalf("second id = %d", id)
	}
	if u.Len() != 2 {
		t.Fatalf("len = %d", u.Len())
	}
	if u.Get(1) != r2 || u.Get(99) != nil || u.Get(-1) != nil {
		t.Fatal("Get broken")
	}
	if r1.Seq >= r2.Seq {
		t.Fatal("sequence not monotone")
	}
}

func TestQueries(t *testing.T) {
	u := New()
	u.Deposit(&Report{UpgradeID: "up1", Machine: "m1", Cluster: "c1", Success: true})
	u.Deposit(&Report{UpgradeID: "up1", Machine: "m2", Cluster: "c2", Success: false,
		FailedApps: []string{"php"}, Reasons: []string{"crash: undefined symbol"}})
	u.Deposit(&Report{UpgradeID: "up2", Machine: "m1", Cluster: "c1", Success: true})

	if got := len(u.ForUpgrade("up1")); got != 2 {
		t.Fatalf("ForUpgrade = %d", got)
	}
	if got := len(u.Failures("up1")); got != 1 {
		t.Fatalf("Failures = %d", got)
	}
	s, f := u.Summary("up1")
	if s != 1 || f != 1 {
		t.Fatalf("Summary = %d %d", s, f)
	}
	if got := u.SuccessesInCluster("up1", "c1"); got != 1 {
		t.Fatalf("SuccessesInCluster = %d", got)
	}
	if got := u.SuccessesInCluster("up1", "c2"); got != 0 {
		t.Fatalf("SuccessesInCluster(c2) = %d", got)
	}
}

func TestGroupFailuresDeduplicates(t *testing.T) {
	u := New()
	for i, m := range []string{"m1", "m2", "m3"} {
		cluster := "c1"
		if i == 2 {
			cluster = "c2"
		}
		u.Deposit(&Report{UpgradeID: "up1", Machine: m, Cluster: cluster, Success: false,
			FailedApps: []string{"php"}, Reasons: []string{"crash: undefined symbol"}})
	}
	u.Deposit(&Report{UpgradeID: "up1", Machine: "m4", Cluster: "c3", Success: false,
		FailedApps: []string{"mysql"}, Reasons: []string{"crash: unknown option"}})

	groups := u.GroupFailures("up1")
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 distinct failure modes", len(groups))
	}
	php := groups[0]
	if len(php.Reports) != 3 || len(php.Clusters) != 2 {
		t.Fatalf("php group: %d reports across %v", len(php.Reports), php.Clusters)
	}
	if php.Representative.Machine != "m1" {
		t.Fatalf("representative = %s", php.Representative.Machine)
	}
}

func TestSignature(t *testing.T) {
	ok := &Report{UpgradeID: "u", Success: true}
	bad := &Report{UpgradeID: "u", Success: false, FailedApps: []string{"a"}, Reasons: []string{"r"}}
	bad2 := &Report{UpgradeID: "u", Success: false, FailedApps: []string{"a"}, Reasons: []string{"r"}}
	if ok.Signature() == bad.Signature() {
		t.Fatal("success and failure share signature")
	}
	if bad.Signature() != bad2.Signature() {
		t.Fatal("identical failures differ in signature")
	}
}

func TestReportString(t *testing.T) {
	r := &Report{UpgradeID: "u", Machine: "m", Cluster: "c", Success: false, FailedApps: []string{"php"}}
	if !strings.Contains(r.String(), "FAILURE") {
		t.Fatalf("String = %q", r.String())
	}
}

func TestConcurrentDeposits(t *testing.T) {
	u := New()
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			u.Deposit(&Report{UpgradeID: "up", Success: true})
		}()
	}
	wg.Wait()
	if u.Len() != n {
		t.Fatalf("len = %d, want %d", u.Len(), n)
	}
	ids := make(map[int]bool)
	for _, r := range u.ForUpgrade("up") {
		if ids[r.ID] {
			t.Fatal("duplicate report ID")
		}
		ids[r.ID] = true
	}
}
