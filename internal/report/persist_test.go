package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	u := New()
	u.Deposit(&Report{UpgradeID: "up1", Machine: "m1", Cluster: "c1", Success: true})
	m := sampleMachine()
	u.Deposit(&Report{
		UpgradeID: "up1", Machine: "m2", Cluster: "c2", Success: false,
		FailedApps: []string{"php"}, Reasons: []string{"crash"},
		Image: CaptureImage(m),
	})

	var buf bytes.Buffer
	if err := u.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadURR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d reports", loaded.Len())
	}
	s, f := loaded.Summary("up1")
	if s != 1 || f != 1 {
		t.Fatalf("summary = %d/%d", s, f)
	}
	// The failure image survives and still materializes.
	fail := loaded.Failures("up1")[0]
	if fail.Image == nil {
		t.Fatal("image lost")
	}
	clone := fail.Image.Materialize()
	if f := clone.ReadFile("/bin/app"); f == nil || string(f.Data) != "bin" || f.Type != machine.TypeExecutable {
		t.Fatalf("materialized file = %+v", f)
	}
	// Deposits continue with fresh sequence numbers.
	id := loaded.Deposit(&Report{UpgradeID: "up2", Success: true})
	if id != 2 {
		t.Fatalf("next id = %d", id)
	}
	if loaded.Get(2).Seq <= loaded.Get(1).Seq {
		t.Fatal("sequence not monotone after reload")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := LoadURR(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadURR(strings.NewReader(`{"version": 99, "reports": []}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestSaveEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadURR(&buf)
	if err != nil || loaded.Len() != 0 {
		t.Fatalf("empty round trip: %v, %d", err, loaded.Len())
	}
}
