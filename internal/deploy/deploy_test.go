package deploy

import (
	"context"
	"errors"
	"testing"

	"repro/internal/pkgmgr"
	"repro/internal/report"
)

// fakeNode fails validation while the upgrade ID is in failOn.
type fakeNode struct {
	name       string
	failOn     map[string]string // upgrade ID -> failure reason
	integrated []string
	tests      int
}

func (f *fakeNode) Name() string { return f.name }

func (f *fakeNode) TestUpgrade(_ context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	f.tests++
	if reason, bad := f.failOn[up.ID]; bad {
		return &report.Report{UpgradeID: up.ID, Machine: f.name, Success: false,
			FailedApps: []string{"app"}, Reasons: []string{reason}}, nil
	}
	return &report.Report{UpgradeID: up.ID, Machine: f.name, Success: true}, nil
}

func (f *fakeNode) Integrate(_ context.Context, up *pkgmgr.Upgrade) error {
	f.integrated = append(f.integrated, up.ID)
	return nil
}

// erringNode returns a transport-style error.
type erringNode struct{ fakeNode }

func (e *erringNode) TestUpgrade(context.Context, *pkgmgr.Upgrade) (*report.Report, error) {
	return nil, errors.New("connection refused")
}

func up(id string) *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{ID: id, Pkg: &pkgmgr.Package{Name: "app", Version: id}}
}

// fixer produces v2 from v1, and gives up beyond that.
func fixerChain(t *testing.T, chain map[string]string) Fixer {
	return func(u *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		t.Helper()
		if len(failures) == 0 {
			t.Fatal("fixer called without failures")
		}
		next, ok := chain[u.ID]
		if !ok {
			return nil, false
		}
		return up(next), true
	}
}

func twoClusters(badNodes map[string]map[string]string) []*Cluster {
	mk := func(name string) *fakeNode {
		return &fakeNode{name: name, failOn: badNodes[name]}
	}
	return []*Cluster{
		{ID: "near", Distance: 1,
			Representatives: []Node{mk("near-rep")},
			Others:          []Node{mk("near-1"), mk("near-2")}},
		{ID: "far", Distance: 9,
			Representatives: []Node{mk("far-rep")},
			Others:          []Node{mk("far-1"), mk("far-2")}},
	}
}

func TestBalancedCleanDeployment(t *testing.T) {
	urr := report.New()
	ctl := NewController(urr, nil)
	clusters := twoClusters(nil)
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 6 || out.Overhead != 0 || out.Rounds != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if s, f := urr.Summary("v1"); s != 6 || f != 0 {
		t.Fatalf("URR summary = %d/%d", s, f)
	}
	if out.FinalID != "v1" || out.Abandoned {
		t.Fatalf("final = %q abandoned=%v", out.FinalID, out.Abandoned)
	}
}

func TestBalancedRepShieldsCluster(t *testing.T) {
	// The far cluster's machines all fail v1; only its representative may
	// test the faulty version.
	bad := map[string]map[string]string{
		"far-rep": {"v1": "crash"},
		"far-1":   {"v1": "crash"},
		"far-2":   {"v1": "crash"},
	}
	urr := report.New()
	ctl := NewController(urr, fixerChain(t, map[string]string{"v1": "v2"}))
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	// Overhead 1: only far-rep tested the faulty upgrade.
	if out.Overhead != 1 {
		t.Fatalf("overhead = %d, want 1", out.Overhead)
	}
	if out.Rounds != 1 || out.FinalID != "v2" {
		t.Fatalf("rounds=%d final=%s", out.Rounds, out.FinalID)
	}
	// Everyone integrated something; far nodes integrated v2.
	if out.Integrated() != 6 {
		t.Fatalf("integrated = %d", out.Integrated())
	}
	if got := out.Nodes["far-1"].UpgradeID; got != "v2" {
		t.Fatalf("far-1 integrated %q", got)
	}
	// Nodes that integrated v1 before the fix existed are later notified
	// of the corrected upgrade and converge on it too (§4.3).
	if got := out.Nodes["near-1"].UpgradeID; got != "v2" {
		t.Fatalf("near-1 finished on %q, want the corrected v2", got)
	}
	if got := out.FinalID; got != "v2" {
		t.Fatalf("final = %q", got)
	}
}

func TestBalancedOrderNearestFirst(t *testing.T) {
	urr := report.New()
	ctl := NewController(urr, nil)
	clusters := twoClusters(nil)
	if _, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters); err != nil {
		t.Fatal(err)
	}
	reports := urr.ForUpgrade("v1")
	// First deposited report must come from the near cluster.
	if reports[0].Cluster != "near" {
		t.Fatalf("first report from %s", reports[0].Cluster)
	}
	if reports[len(reports)-1].Cluster != "far" {
		t.Fatalf("last report from %s", reports[len(reports)-1].Cluster)
	}
}

func TestFrontLoadingPhase1CatchesAllReps(t *testing.T) {
	bad := map[string]map[string]string{
		"near-rep": {"v1": "crash-a"},
		"far-rep":  {"v1": "crash-b"},
	}
	urr := report.New()
	ctl := NewController(urr, fixerChain(t, map[string]string{"v1": "v2"}))
	out, err := ctl.Deploy(context.Background(), PolicyFrontLoading, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	// Both representatives tested faulty v1 in parallel phase 1: the
	// front-loaded picture of all problems at once.
	if out.Overhead != 2 {
		t.Fatalf("overhead = %d, want 2", out.Overhead)
	}
	if out.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (both failures fixed in one round)", out.Rounds)
	}
	if out.Integrated() != 6 {
		t.Fatalf("integrated = %d", out.Integrated())
	}
}

func TestFrontLoadingPhase2FarthestFirst(t *testing.T) {
	urr := report.New()
	ctl := NewController(urr, nil)
	if _, err := ctl.Deploy(context.Background(), PolicyFrontLoading, up("v1"), twoClusters(nil)); err != nil {
		t.Fatal(err)
	}
	var nonRepClusters []string
	for _, r := range urr.ForUpgrade("v1") {
		if r.Machine == "far-1" || r.Machine == "near-1" {
			nonRepClusters = append(nonRepClusters, r.Cluster)
		}
	}
	if len(nonRepClusters) != 2 || nonRepClusters[0] != "far" {
		t.Fatalf("phase-2 order = %v, want far first", nonRepClusters)
	}
}

func TestNoStagingEveryoneTests(t *testing.T) {
	bad := map[string]map[string]string{
		"far-rep": {"v1": "crash"},
		"far-1":   {"v1": "crash"},
		"far-2":   {"v1": "crash"},
	}
	urr := report.New()
	ctl := NewController(urr, fixerChain(t, map[string]string{"v1": "v2"}))
	out, err := ctl.Deploy(context.Background(), PolicyNoStaging, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	// All three problematic machines tested the faulty upgrade.
	if out.Overhead != 3 {
		t.Fatalf("overhead = %d, want 3", out.Overhead)
	}
	if out.Integrated() != 6 {
		t.Fatalf("integrated = %d", out.Integrated())
	}
}

func TestUrgentBypassesStaging(t *testing.T) {
	urr := report.New()
	ctl := NewController(urr, nil)
	u := up("sec-patch")
	u.Urgent = true
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, u, twoClusters(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Policy != PolicyNoStaging {
		t.Fatalf("urgent upgrade used %v", out.Policy)
	}
}

func TestVendorGivesUp(t *testing.T) {
	bad := map[string]map[string]string{
		"near-rep": {"v1": "crash"},
	}
	urr := report.New()
	ctl := NewController(urr, func(*pkgmgr.Upgrade, []*report.Report) (*pkgmgr.Upgrade, bool) {
		return nil, false
	})
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned {
		t.Fatal("deployment not marked abandoned")
	}
	// Nothing after the failing representative deployed.
	if got := out.Nodes["near-1"].UpgradeID; got != "" {
		t.Fatalf("near-1 integrated %q after abandonment", got)
	}
}

func TestMaxRoundsBound(t *testing.T) {
	// A node that fails every version forces the round limit.
	bad := map[string]map[string]string{
		"near-rep": {"v1": "crash", "v2": "crash", "v3": "crash"},
	}
	urr := report.New()
	ctl := NewController(urr, fixerChain(t, map[string]string{"v1": "v2", "v2": "v3", "v3": "v3"}))
	ctl.MaxRounds = 2
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned || out.Rounds != 2 {
		t.Fatalf("rounds=%d abandoned=%v", out.Rounds, out.Abandoned)
	}
}

func TestNodeErrorPropagates(t *testing.T) {
	urr := report.New()
	ctl := NewController(urr, nil)
	clusters := []*Cluster{{
		ID: "c", Distance: 1,
		Representatives: []Node{&erringNode{fakeNode{name: "broken"}}},
	}}
	if _, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters); err == nil {
		t.Fatal("node error swallowed")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyBalanced.String() != "Balanced" || PolicyFrontLoading.String() != "FrontLoading" ||
		PolicyNoStaging.String() != "NoStaging" {
		t.Fatal("policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy empty")
	}
}
