package deploy

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pkgmgr"
	"repro/internal/report"
)

func TestBudgetNilIsUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 100; i++ {
		if err := b.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		b.Release()
	}
	if b.Cap() != 0 || b.InFlight() != 0 || b.HighWater() != 0 {
		t.Fatal("nil budget reported non-zero accounting")
	}
	if NewBudget(0) != nil || NewBudget(-1) != nil {
		t.Fatal("NewBudget(<=0) must return the unlimited nil budget")
	}
}

func TestBudgetBlocksAtCap(t *testing.T) {
	b := NewBudget(2)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := b.Acquire(ctx); err == nil {
		t.Fatal("third Acquire on a 2-slot budget succeeded")
	}
	b.Release()
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	b.Release()
	b.Release()
	if got := b.InFlight(); got != 0 {
		t.Fatalf("in-flight = %d after releases, want 0", got)
	}
	if got := b.HighWater(); got != 2 {
		t.Fatalf("high water = %d, want 2", got)
	}
}

// meteredNode counts how many validations/integrations run concurrently
// across ALL instances, recording the maximum ever observed.
type meteredNode struct {
	name               string
	inFlight, maxSeen  *atomic.Int64
	tested, integrated *atomic.Int64
}

func (n *meteredNode) enter() {
	cur := n.inFlight.Add(1)
	for {
		max := n.maxSeen.Load()
		if cur <= max || n.maxSeen.CompareAndSwap(max, cur) {
			return
		}
	}
}

func (n *meteredNode) Name() string { return n.name }

func (n *meteredNode) TestUpgrade(_ context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	n.enter()
	defer n.inFlight.Add(-1)
	time.Sleep(time.Millisecond)
	n.tested.Add(1)
	return &report.Report{UpgradeID: up.ID, Machine: n.name, Success: true}, nil
}

func (n *meteredNode) Integrate(context.Context, *pkgmgr.Upgrade) error {
	n.enter()
	defer n.inFlight.Add(-1)
	time.Sleep(time.Millisecond)
	n.integrated.Add(1)
	return nil
}

// TestDeployRespectsBudget runs a wide wave through a controller whose
// pool is far wider than the worker budget and asserts the nodes never
// observe more concurrent RPCs than the budget allows.
func TestDeployRespectsBudget(t *testing.T) {
	var inFlight, maxSeen, tested, integrated atomic.Int64
	const members = 32
	budget := NewBudget(3)
	cl := &Cluster{ID: "budget-c0", Distance: 1}
	for i := 0; i < members; i++ {
		n := &meteredNode{name: fmt.Sprintf("budget-%02d", i),
			inFlight: &inFlight, maxSeen: &maxSeen, tested: &tested, integrated: &integrated}
		if i == 0 {
			cl.Representatives = append(cl.Representatives, n)
		} else {
			cl.Others = append(cl.Others, n)
		}
	}
	ctl := NewController(report.New(), nil)
	ctl.Parallelism = 16
	ctl.Budget = budget
	up := &pkgmgr.Upgrade{ID: "v-budget", Pkg: &pkgmgr.Package{Name: "app", Version: "2"}}
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up, []*Cluster{cl})
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != members {
		t.Fatalf("integrated %d/%d", out.Integrated(), members)
	}
	if got := maxSeen.Load(); got > 3 {
		t.Fatalf("nodes observed %d concurrent RPCs, budget allows 3", got)
	}
	if got := budget.HighWater(); got > 3 {
		t.Fatalf("budget high water = %d, cap 3", got)
	}
	if got := budget.InFlight(); got != 0 {
		t.Fatalf("budget in-flight = %d after deploy, want 0", got)
	}
	if tested.Load() == 0 || integrated.Load() != members {
		t.Fatalf("tested %d / integrated %d, want >0 / %d", tested.Load(), integrated.Load(), members)
	}
}
