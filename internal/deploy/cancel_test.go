package deploy

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/pkgmgr"
	"repro/internal/report"
)

// alwaysGoneNode fails every call with a transient error — the controller
// would normally sleep out its whole doubling-backoff budget on it.
type alwaysGoneNode struct {
	name    string
	attempt chan struct{} // one send per call
}

func (n *alwaysGoneNode) Name() string { return n.name }

func (n *alwaysGoneNode) TestUpgrade(context.Context, *pkgmgr.Upgrade) (*report.Report, error) {
	select {
	case n.attempt <- struct{}{}:
	default:
	}
	return nil, fmt.Errorf("gone: %w", ErrTransient)
}

func (n *alwaysGoneNode) Integrate(context.Context, *pkgmgr.Upgrade) error {
	return fmt.Errorf("gone: %w", ErrTransient)
}

// TestCancelCutsRetryBackoffShort: a rollout cancelled while the
// controller sleeps in its transient-retry backoff returns promptly —
// not after the backoff budget — records the abandoned event, and does
// not quarantine the member for the operator's abort.
func TestCancelCutsRetryBackoffShort(t *testing.T) {
	node := &alwaysGoneNode{name: "gone-rep", attempt: make(chan struct{}, 1)}
	clusters := []*Cluster{{
		ID: "c0", Distance: 1,
		Representatives: []Node{node},
	}}
	obs := &captureObs{}
	ctl := NewController(report.New(), nil)
	ctl.Observer = obs
	// 4 retries at 1s doubling = 15s of sleep; the abort must not wait it.
	ctl.RetryBackoff = time.Second
	ctl.TransientRetries = 4

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var out *Outcome
	var err error
	go func() {
		defer close(done)
		out, err = ctl.Deploy(ctx, PolicyBalanced, up("v1"), clusters)
	}()
	<-node.attempt // the first attempt failed; the backoff sleep follows
	t0 := time.Now()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Deploy still running after cancel")
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("cancel took %v to unwind, backoff budget is 15s", d)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Deploy err = %v, want context.Canceled", err)
	}
	if len(out.Quarantined) != 0 {
		t.Fatalf("abort quarantined %v", out.Quarantined)
	}
	last := obs.events[len(obs.events)-1]
	if last.Type != EventAbandoned || last.Reason == "" {
		t.Fatalf("last event = %+v, want reasoned EventAbandoned", last)
	}
}

// TestCancelBeforeStageStartsIsStillAbandoned: cancellation between
// stages (at the gate) also journals the abandoned record exactly once.
func TestCancelBeforeStageStartsIsStillAbandoned(t *testing.T) {
	obs := &captureObs{}
	ctl := NewController(report.New(), nil)
	ctl.Observer = obs
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ctl.Deploy(ctx, PolicyBalanced, up("v1"), twoClusters(nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	abandoned := 0
	for _, ev := range obs.events {
		if ev.Type == EventAbandoned {
			abandoned++
		}
	}
	if abandoned != 1 {
		t.Fatalf("recorded %d abandoned events, want exactly 1 (events: %+v)", abandoned, obs.events)
	}
}

// TestStageGateErrorHaltsPlan: a gate returning a non-context error halts
// the plan without inventing an abandonment.
func TestStageGateErrorHaltsPlan(t *testing.T) {
	obs := &captureObs{}
	ctl := NewController(report.New(), nil)
	ctl.Observer = obs
	boom := errors.New("operator says no")
	ctl.StageGate = func(ctx context.Context, stage int) error {
		if stage == 1 {
			return boom
		}
		return nil
	}
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), twoClusters(nil))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the gate's", err)
	}
	for _, ev := range obs.events {
		if ev.Type == EventAbandoned {
			t.Fatalf("gate error recorded as abandonment: %+v", ev)
		}
	}
	// Stage 0 (first cluster's reps) completed; stage 1 never started.
	if out.Integrated() == 0 {
		t.Fatal("stage 0 did not run before the gate halt")
	}
	for _, ev := range obs.events {
		if ev.Type == EventStageStarted && ev.Stage == 1 {
			t.Fatal("stage 1 started despite its gate erroring")
		}
	}
}
