package deploy

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/pkgmgr"
	"repro/internal/report"
)

// PolicyAdaptive on the live controller: clusters whose representatives
// pass clean release their non-representatives from the barrier; the
// promoted waves run as one merged parallel wave at the end of the plan.

func depositOrder(urr *report.URR, id string) []string {
	var out []string
	for _, r := range urr.ForUpgrade(id) {
		out = append(out, r.Machine)
	}
	return out
}

func TestAdaptivePromotesCleanClusters(t *testing.T) {
	urr := report.New()
	ctl := NewController(urr, nil)
	out, err := ctl.Deploy(context.Background(), PolicyAdaptive, up("v1"), twoClusters(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 6 || out.Overhead != 0 || out.Rounds != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	// Clean fleet: all representative waves run first (they alone gate),
	// then the promoted non-representatives in one merged wave.
	want := []string{"near-rep", "far-rep", "near-1", "near-2", "far-1", "far-2"}
	if got := depositOrder(urr, "v1"); !reflect.DeepEqual(got, want) {
		t.Fatalf("deposit order = %v, want %v", got, want)
	}
}

func TestAdaptiveDirtyClusterFallsBackToBalanced(t *testing.T) {
	bad := map[string]map[string]string{
		"far-rep": {"v1": "crash"},
		"far-1":   {"v1": "crash"},
		"far-2":   {"v1": "crash"},
	}
	urr := report.New()
	ctl := NewController(urr, fixerChain(t, map[string]string{"v1": "v2"}))
	out, err := ctl.Deploy(context.Background(), PolicyAdaptive, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	// Representatives still shield: only far-rep tested faulty v1.
	if out.Overhead != 1 || out.Rounds != 1 {
		t.Fatalf("overhead=%d rounds=%d", out.Overhead, out.Rounds)
	}
	if out.Integrated() != 6 || out.FinalID != "v2" {
		t.Fatalf("outcome = %+v", out)
	}
	// The promoted near non-representatives tested the corrected upgrade
	// directly — one validation run each, no notifyFinal second pass.
	for _, n := range []string{"near-1", "near-2"} {
		st := out.Nodes[n]
		if st.UpgradeID != "v2" || st.Tests != 1 {
			t.Fatalf("%s: integrated %q after %d tests, want v2 after 1", n, st.UpgradeID, st.Tests)
		}
	}
	// v1 saw only the representatives; the dirty far cluster converged
	// inline on v2, then the promoted near others, then notifyFinal
	// brought near-rep (which had integrated v1) up to v2.
	if got, want := depositOrder(urr, "v1"), []string{"near-rep", "far-rep"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 deposit order = %v, want %v", got, want)
	}
	wantV2 := []string{"far-rep", "far-1", "far-2", "near-1", "near-2", "near-rep"}
	if got := depositOrder(urr, "v2"); !reflect.DeepEqual(got, wantV2) {
		t.Fatalf("v2 deposit order = %v, want %v", got, wantV2)
	}
}

func TestAdaptiveAbandonmentSkipsPromotedWaves(t *testing.T) {
	bad := map[string]map[string]string{
		"far-rep": {"v1": "crash"},
	}
	urr := report.New()
	ctl := NewController(urr, func(*pkgmgr.Upgrade, []*report.Report) (*pkgmgr.Upgrade, bool) { return nil, false })
	out, err := ctl.Deploy(context.Background(), PolicyAdaptive, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned {
		t.Fatal("not abandoned")
	}
	// The promoted near non-representatives never deployed: nothing runs
	// after abandonment.
	for _, n := range []string{"near-1", "near-2"} {
		if st := out.Nodes[n]; st.Tests != 0 || st.UpgradeID != "" {
			t.Fatalf("%s ran after abandonment: %+v", n, st)
		}
	}
}

// Worker-pool coverage: outcomes and URR contents must be identical at
// any pool size, including under the race detector.

func bigFleet(nClusters, nodesPer int, bad map[string]map[string]string) []*Cluster {
	var clusters []*Cluster
	for c := 0; c < nClusters; c++ {
		cl := &Cluster{ID: fmt.Sprintf("c%02d", c), Distance: c + 1}
		for n := 0; n < nodesPer; n++ {
			name := fmt.Sprintf("c%02d-n%02d", c, n)
			node := &fakeNode{name: name, failOn: bad[name]}
			if n == 0 {
				cl.Representatives = append(cl.Representatives, node)
			} else {
				cl.Others = append(cl.Others, node)
			}
		}
		clusters = append(clusters, cl)
	}
	return clusters
}

func TestWorkerPoolMatchesSerialOutcome(t *testing.T) {
	bad := map[string]map[string]string{
		"c02-n00": {"v1": "crash"}, // a representative
		"c01-n03": {"v1": "crash"}, // a misplaced non-representative
		"c03-n05": {"v1": "crash"},
	}
	run := func(parallelism int, policy Policy) ([]string, *Outcome) {
		urr := report.New()
		ctl := NewController(urr, fixerChain(t, map[string]string{"v1": "v2"}))
		ctl.Parallelism = parallelism
		out, err := ctl.Deploy(context.Background(), policy, up("v1"), bigFleet(4, 8, bad))
		if err != nil {
			t.Fatal(err)
		}
		var seq []string
		for _, id := range []string{"v1", "v2"} {
			seq = append(seq, depositOrder(urr, id)...)
		}
		return seq, out
	}
	for _, policy := range []Policy{PolicyBalanced, PolicyFrontLoading, PolicyNoStaging, PolicyAdaptive} {
		serialSeq, serialOut := run(1, policy)
		poolSeq, poolOut := run(8, policy)
		if !reflect.DeepEqual(serialSeq, poolSeq) {
			t.Fatalf("%v: deposit sequence diverged between pool sizes:\nserial %v\npool   %v",
				policy, serialSeq, poolSeq)
		}
		if serialOut.Overhead != poolOut.Overhead || serialOut.Rounds != poolOut.Rounds ||
			serialOut.Integrated() != poolOut.Integrated() || serialOut.FinalID != poolOut.FinalID {
			t.Fatalf("%v: outcome diverged: serial %+v pool %+v", policy, serialOut, poolOut)
		}
	}
}

func TestFinalIDNamesDeployedVersionOnAbandonment(t *testing.T) {
	// v1 fails, the v2 fix also fails, vendor runs out of rounds: FinalID
	// must name the version that actually reached nodes (v1, integrated
	// by the near cluster), never the fix no node integrated.
	bad := map[string]map[string]string{
		"far-rep": {"v1": "crash", "v2": "crash", "v3": "crash"},
	}
	urr := report.New()
	ctl := NewController(urr, fixerChain(t, map[string]string{"v1": "v2", "v2": "v3", "v3": "v3"}))
	ctl.MaxRounds = 2
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned {
		t.Fatal("not abandoned")
	}
	if out.FinalID != "v1" {
		t.Fatalf("FinalID = %q, want v1 (the only version any node integrated)", out.FinalID)
	}
}

func TestWorkerPoolKeepsReportsOnNodeError(t *testing.T) {
	// One node errors while others in the same pooled wave complete —
	// including one that failed validation. The completed work must be
	// deposited and booked before the error halts the deployment.
	urr := report.New()
	ctl := NewController(urr, nil)
	ctl.Parallelism = 4
	clusters := []*Cluster{{
		ID: "c", Distance: 1,
		Representatives: []Node{&fakeNode{name: "rep"}},
		Others: []Node{
			&fakeNode{name: "n1"},
			&erringNode{fakeNode{name: "broken"}},
			&fakeNode{name: "n3", failOn: map[string]string{"v1": "crash"}},
		},
	}}
	out, err := ctl.Deploy(context.Background(), PolicyNoStaging, up("v1"), clusters)
	if err == nil {
		t.Fatal("node error swallowed")
	}
	if st := out.Nodes["n3"]; st.Tests != 1 || st.Failures != 1 {
		t.Fatalf("n3 bookkeeping lost: %+v", st)
	}
	if out.Overhead != 1 {
		t.Fatalf("overhead = %d, want 1", out.Overhead)
	}
	if s, f := urr.Summary("v1"); s != 2 || f != 1 {
		t.Fatalf("URR summary = %d/%d, want 2 passes and 1 failure deposited", s, f)
	}
}

func TestWorkerPoolLargerThanWave(t *testing.T) {
	urr := report.New()
	ctl := NewController(urr, nil)
	ctl.Parallelism = 64 // more workers than nodes in any wave
	out, err := ctl.Deploy(context.Background(), PolicyNoStaging, up("v1"), bigFleet(3, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 12 {
		t.Fatalf("integrated = %d", out.Integrated())
	}
}
