package deploy

import (
	"context"
	"testing"

	"repro/internal/pkgmgr"
	"repro/internal/report"
)

func TestRandomStagingDeploysEveryone(t *testing.T) {
	urr := report.New()
	ctl := NewController(urr, nil)
	ctl.Seed = 7
	out, err := ctl.Deploy(context.Background(), PolicyRandomStaging, up("v1"), twoClusters(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 6 || out.Overhead != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Policy != PolicyRandomStaging {
		t.Fatalf("policy = %v", out.Policy)
	}
}

func TestRandomStagingStillShieldsNonReps(t *testing.T) {
	bad := map[string]map[string]string{
		"far-rep": {"v1": "crash"},
		"far-1":   {"v1": "crash"},
		"far-2":   {"v1": "crash"},
	}
	urr := report.New()
	ctl := NewController(urr, fixerChain(t, map[string]string{"v1": "v2"}))
	ctl.Seed = 99
	out, err := ctl.Deploy(context.Background(), PolicyRandomStaging, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	// Representatives-first still holds under random ordering: only the
	// far representative tested the faulty version.
	if out.Overhead != 1 {
		t.Fatalf("overhead = %d, want 1", out.Overhead)
	}
	if out.Integrated() != 6 {
		t.Fatalf("integrated = %d", out.Integrated())
	}
}

func TestRandomStagingDeterministicPerSeed(t *testing.T) {
	runOnce := func(seed uint64) []int {
		urr := report.New()
		ctl := NewController(urr, nil)
		ctl.Seed = seed
		if _, err := ctl.Deploy(context.Background(), PolicyRandomStaging, up("v1"), twoClusters(nil)); err != nil {
			t.Fatal(err)
		}
		var seqs []int
		for _, r := range urr.ForUpgrade("v1") {
			seqs = append(seqs, r.Seq)
			_ = r
		}
		return seqs
	}
	a := runOnce(5)
	b := runOnce(5)
	if len(a) != len(b) {
		t.Fatal("different report counts for same seed")
	}

	// Different seeds can produce a different deposit order; at minimum
	// the deployment remains complete and correct.
	c := runOnce(123456)
	if len(c) != len(a) {
		t.Fatal("seed changed the amount of work")
	}
}

func TestRandomStagingAbandonment(t *testing.T) {
	bad := map[string]map[string]string{
		"near-rep": {"v1": "crash"},
		"far-rep":  {"v1": "crash"},
	}
	urr := report.New()
	ctl := NewController(urr, func(*pkgmgr.Upgrade, []*report.Report) (*pkgmgr.Upgrade, bool) {
		return nil, false
	})
	out, err := ctl.Deploy(context.Background(), PolicyRandomStaging, up("v1"), twoClusters(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned {
		t.Fatal("not abandoned")
	}
}
