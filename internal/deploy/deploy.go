// Package deploy implements Mirage's deployment subsystem over real
// (simulated) machines: the three abstractions of §3.2.1 — clusters of
// deployment, representatives, and vendor-to-cluster distance — plus a
// controller that executes staged deployment plans end to end,
// coordinating user-machine testing and reporting.
//
// The protocol semantics (which group of which cluster tests when) live
// in internal/staging; this package is the live executor of those plans.
// The simulator package runs the identical plans on its event engine to
// answer "what latency/overhead would this schedule have at scale"; this
// package actually performs the waves: nodes download upgrades, validate
// them in isolation — concurrently within a wave, on a bounded worker
// pool — deposit reports in the URR, and integrate on success, while the
// vendor debugs reported failures and re-releases corrected upgrades.
package deploy

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/staging"
	"repro/internal/telemetry"
)

// ErrTransient marks a node error as transient: the machine is (for now)
// unreachable, not failing validation. Transport-layer errors wrap this
// sentinel (transport.ErrAgentGone, transport.ErrAgentReplaced); the
// controller retries transient errors per member with bounded backoff and
// quarantines members that stay unreachable, instead of killing the whole
// rollout. Errors not wrapping ErrTransient — a validator crash, a
// malformed upgrade — remain terminal for the plan.
var ErrTransient = errors.New("transient node error")

// IsTransient reports whether err is a transient node error (wraps
// ErrTransient anywhere in its chain).
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Node is one managed user machine.
type Node interface {
	// Name identifies the machine.
	Name() string
	// TestUpgrade downloads the upgrade, validates it in an isolated
	// environment, and returns the resulting report (not yet deposited).
	// The controller may call TestUpgrade on different nodes concurrently;
	// implementations must not share mutable state across nodes. The
	// context carries the rollout's cancellation: implementations doing
	// I/O (a transport RPC, a long validation) should abort promptly when
	// it is done and return ctx.Err() (possibly wrapped).
	TestUpgrade(ctx context.Context, up *pkgmgr.Upgrade) (*report.Report, error)
	// Integrate applies the upgrade to the production system. Called only
	// after the node's own validation succeeded, never concurrently.
	Integrate(ctx context.Context, up *pkgmgr.Upgrade) error
}

// Cluster is a cluster of deployment: representatives test first.
type Cluster struct {
	ID              string
	Distance        int
	Representatives []Node
	Others          []Node
}

// Size returns the total number of nodes.
func (c *Cluster) Size() int { return len(c.Representatives) + len(c.Others) }

// Fixer is the vendor's debugging loop: given the failure reports for an
// upgrade, it returns a corrected upgrade. ok=false means the vendor could
// not produce a fix and deployment of the upgrade is abandoned.
type Fixer func(up *pkgmgr.Upgrade, failures []*report.Report) (fixed *pkgmgr.Upgrade, ok bool)

// Policy selects the staged deployment protocol. It is an alias for the
// shared staging.Policy, so plans, the simulator and the live controller
// all speak the same vocabulary.
type Policy = staging.Policy

const (
	// PolicyBalanced deploys nearest cluster first, representatives before
	// non-representatives (paper §4.3, "Balanced").
	PolicyBalanced = staging.PolicyBalanced
	// PolicyFrontLoading tests all representatives in parallel and debugs
	// everything up front, then deploys non-representatives farthest
	// cluster first (paper §4.3, "FrontLoading").
	PolicyFrontLoading = staging.PolicyFrontLoading
	// PolicyNoStaging deploys to every node at once; for urgent upgrades.
	PolicyNoStaging = staging.PolicyNoStaging
	// PolicyRandomStaging is Balanced with a randomized cluster order; the
	// paper uses it to isolate the benefit of staging from that of
	// distance-based ordering. Seeded deterministically via Controller.Seed.
	PolicyRandomStaging = staging.PolicyRandomStaging
	// PolicyAdaptive is Balanced with early promotion: clusters whose
	// representatives pass without failures release their
	// non-representatives from the barrier; the promoted waves run as one
	// merged parallel wave at the end of the plan, by which time any
	// problems found downstream have been debugged — so promoted nodes
	// usually test the corrected upgrade directly.
	PolicyAdaptive = staging.PolicyAdaptive
)

// TransferStats summarises the bytes a deployment moved over the node
// transport. The live controller has no opinion about how nodes receive
// their payloads — it records whatever cumulative counters the configured
// Transfer source reports, as a before/after delta.
type TransferStats struct {
	Frames      int64 // request frames sent
	Bytes       int64 // total bytes on the wire
	ChunkBytes  int64 // content-addressed chunk payload bytes
	ChunkHits   int64 // manifest chunks already held by agents
	ChunkMisses int64 // manifest chunks that had to be transferred

	// Peer tier counters: chunk traffic that moved agent-to-agent instead
	// of over the vendor uplink, plus the chunks the vendor pushed only
	// after the peer tier missed them.
	PeerBytes       int64 // chunk bytes served peer-to-peer
	PeerHits        int64 // chunks the peer tier satisfied
	VendorFallbacks int64 // chunks pushed by the vendor after peers missed

	// Robustness counters: manifest chunks resolved while restoring
	// members to the baseline version, and transport faults the chaos
	// injector fired during the rollout.
	ChunksRolledBack int64
	FaultsInjected   int64
}

// Sub returns the counter delta t−o.
func (t TransferStats) Sub(o TransferStats) TransferStats {
	return TransferStats{
		Frames:           t.Frames - o.Frames,
		Bytes:            t.Bytes - o.Bytes,
		ChunkBytes:       t.ChunkBytes - o.ChunkBytes,
		ChunkHits:        t.ChunkHits - o.ChunkHits,
		ChunkMisses:      t.ChunkMisses - o.ChunkMisses,
		PeerBytes:        t.PeerBytes - o.PeerBytes,
		PeerHits:         t.PeerHits - o.PeerHits,
		VendorFallbacks:  t.VendorFallbacks - o.VendorFallbacks,
		ChunksRolledBack: t.ChunksRolledBack - o.ChunksRolledBack,
		FaultsInjected:   t.FaultsInjected - o.FaultsInjected,
	}
}

// Add returns the counter sum t+o — how a rollback's own transfer delta
// folds into the outcome the deployment already booked.
func (t TransferStats) Add(o TransferStats) TransferStats {
	return TransferStats{
		Frames:           t.Frames + o.Frames,
		Bytes:            t.Bytes + o.Bytes,
		ChunkBytes:       t.ChunkBytes + o.ChunkBytes,
		ChunkHits:        t.ChunkHits + o.ChunkHits,
		ChunkMisses:      t.ChunkMisses + o.ChunkMisses,
		PeerBytes:        t.PeerBytes + o.PeerBytes,
		PeerHits:         t.PeerHits + o.PeerHits,
		VendorFallbacks:  t.VendorFallbacks + o.VendorFallbacks,
		ChunksRolledBack: t.ChunksRolledBack + o.ChunksRolledBack,
		FaultsInjected:   t.FaultsInjected + o.FaultsInjected,
	}
}

// NodeStatus records the final state of one node.
type NodeStatus struct {
	Node      string
	Cluster   string
	UpgradeID string // the upgrade version the node integrated ("" if none)
	Tests     int    // validation runs performed on this node
	Failures  int    // validation runs that failed
	// Quarantined marks a member that stayed unreachable through the
	// controller's transient-retry budget. Quarantine is sticky for the
	// rollout: the member is excluded from later waves and from final
	// notification, and its cluster counts as unclean for gate purposes
	// (a quarantined representative is a failure, not a pass).
	Quarantined bool
}

// Outcome summarises a deployment.
type Outcome struct {
	Policy    Policy
	FinalID   string // ID of the upgrade version that ultimately deployed
	Rounds    int    // vendor debugging rounds
	Overhead  int    // nodes that tested a faulty upgrade (paper's metric)
	Nodes     map[string]*NodeStatus
	Abandoned bool // vendor gave up fixing
	// Quarantined lists (sorted) the members that stayed unreachable and
	// were left behind so their waves could converge without them.
	Quarantined []string
	// Transfer is the wire traffic this deployment caused, when the
	// controller has a Transfer source configured (zero otherwise).
	Transfer TransferStats
	// RolledBack is set once a rollback pass has driven the integrated
	// members back to the baseline version; Rollback holds its summary.
	RolledBack bool
	Rollback   *RollbackOutcome
}

// Integrated counts nodes that integrated some version of the upgrade.
func (o *Outcome) Integrated() int {
	n := 0
	for _, st := range o.Nodes {
		if st.UpgradeID != "" {
			n++
		}
	}
	return n
}

// DefaultParallelism is the worker-pool size NewController configures for
// node testing within a wave.
const DefaultParallelism = 4

// Defaults for the transient-error retry budget. Four retries at a 25ms
// doubling backoff give a disconnected agent roughly 375ms to redial
// before its member is quarantined — generous against reconnect loops
// that start at tens of milliseconds, small enough that a permanently
// dead machine does not stall its wave noticeably.
const (
	DefaultTransientRetries = 4
	DefaultRetryBackoff     = 25 * time.Millisecond
)

// EventType enumerates deployment state transitions. The stream of events
// is the write-ahead deployment journal's input (internal/rollout); every
// transition that Resume must be able to replay appears here.
type EventType int

const (
	// EventStageStarted fires when a plan stage begins executing.
	EventStageStarted EventType = iota
	// EventTested fires after a member's validation report is deposited.
	EventTested
	// EventIntegrated fires after a member integrates an upgrade version.
	EventIntegrated
	// EventQuarantined fires when a member exhausts the transient-retry
	// budget and is left behind.
	EventQuarantined
	// EventFixReleased fires when the vendor ships a corrected upgrade;
	// UpgradeID is the new version, PrevID the superseded one.
	EventFixReleased
	// EventGatePassed fires when a stage's gate releases the next stage.
	EventGatePassed
	// EventAbandoned fires when the vendor gives up on the upgrade.
	EventAbandoned
	// EventRollbackStarted fires before any member is reverted; UpgradeID
	// is the baseline being restored, PrevID the version rolled back. Its
	// durability is what makes a crash mid-rollback resumable.
	EventRollbackStarted
	// EventRolledBack fires after a member is restored to the baseline;
	// UpgradeID is the baseline, PrevID the version the member left.
	EventRolledBack
	// EventRollbackSkipped fires when rollback leaves a member behind
	// (quarantined, or unreachable through the retry budget) — Reason says
	// why. A skipped member never blocks rollback completion.
	EventRollbackSkipped
	// EventRollbackCompleted fires when the rollback pass is done; with
	// EventRollbackStarted it brackets the journal's rollback records.
	EventRollbackCompleted
)

// Event is one deployment state transition.
type Event struct {
	Type EventType
	// Stage is the plan stage index, or -1 for post-plan work (promoted
	// adaptive waves, final-version notification).
	Stage     int
	Node      string
	Cluster   string
	UpgradeID string // upgrade version current at the transition
	PrevID    string // EventFixReleased: the superseded version
	Success   bool   // EventTested: validation verdict
	Round     int    // EventFixReleased / EventAbandoned: debugging round
	Reason    string // EventQuarantined / EventRollbackSkipped: why
}

// Observer receives every deployment state transition, in order. A
// journaling observer that cannot persist an event returns an error, and
// the controller halts the plan — write-ahead discipline: progress that
// cannot be recorded must not continue, or a crash would replay it.
type Observer interface {
	OnEvent(Event) error
}

// Cursor tells Deploy what a previous run of the same plan already
// accomplished, so a resumed rollout skips completed work instead of
// redoing it. internal/rollout builds cursors by replaying a deployment
// journal against a hash-checked freshly built plan.
type Cursor struct {
	// DoneStages is the count of leading plan stages whose gate passed;
	// Deploy releases them immediately without re-running their waves.
	DoneStages int
	// Rounds restores the vendor debugging round counter.
	Rounds int
	// UpgradeID is the upgrade version that was current when the journal
	// ended (advanced past the original by recorded fix releases). The
	// caller is responsible for passing Deploy the matching upgrade.
	UpgradeID string
	// FinalID restores the last upgrade version the journal records as
	// actually integrated on a node, so a resumed outcome that performs
	// no new integrations still names the version that deployed.
	FinalID string
	// Overhead restores the faulty-test counter (the paper's metric).
	Overhead int
	// Integrated maps node name to the upgrade version it already
	// integrated. Such members are never re-tested or re-integrated in
	// waves; members holding a superseded version are brought to the
	// final version by the usual §4.3 late notification.
	Integrated map[string]string
	// Quarantined lists members already quarantined; quarantine is sticky.
	Quarantined map[string]bool
	// Unclean lists clusters with recorded failures or quarantines, so
	// adaptive gate promotion stays exactly as conservative on resume as
	// it was in the interrupted run.
	Unclean map[string]bool
	// NodeTests and NodeFailures restore the per-node validation counters.
	NodeTests, NodeFailures map[string]int
}

// Controller executes deployments.
type Controller struct {
	URR *report.URR
	Fix Fixer
	// MaxRounds bounds vendor debugging iterations (default 10).
	MaxRounds int
	// Seed drives the PolicyRandomStaging shuffle, for reproducibility.
	Seed uint64
	// Parallelism bounds how many nodes of a wave test concurrently
	// (<= 1 means serial). Outcomes and URR contents are identical at any
	// pool size: reports are deposited and nodes integrated in
	// deterministic wave order after the pool drains.
	Parallelism int
	// Budget, when set, is the vendor-wide cap on concurrently in-flight
	// member RPCs shared by every rollout (the orchestrator owns one and
	// installs it on each controller it starts). A slot is acquired per
	// test/integrate attempt and released before any retry backoff.
	// Determinism is unaffected: the budget only throttles when attempts
	// run, and outcomes are booked in member order after the pool drains.
	Budget *Budget
	// Transfer, when set, reports the transport's cumulative transfer
	// counters (e.g. transport.Server.TransferSnapshot). Deploy snapshots
	// it around the rollout and records the delta in Outcome.Transfer.
	Transfer func() TransferStats
	// GatedMembers, when set, receives the sorted names of a stage's
	// integrated, non-quarantined members each time the stage's gate
	// passes (e.g. transport.Server.MarkPeerEligible). A gated member
	// holds the full validated upgrade, which is exactly what clears it
	// to serve chunks to later waves over the peer tier.
	GatedMembers func(names []string)
	// Gate is the statistical canary gate applied to every stage's
	// validations. The zero value is disabled: classic binary gating,
	// where one representative failure sends the vendor debugging.
	Gate staging.GatePolicy
	// RollbackMode, when set, is flipped on around a fleet rollback (e.g.
	// transport.Server.SetRollbackMode) so the transport books chunks
	// moved while restoring members as ChunksRolledBack.
	RollbackMode func(on bool)
	// Telemetry, when set, records member test/integrate/rollback
	// durations, budget-acquire wait and transient-retry counts. Like
	// Budget it is installed by the orchestrator (one registry across
	// every rollout); nil disables the instrumentation. Set it before
	// deploying: the member hot path caches its family handles on
	// first use.
	Telemetry *telemetry.Registry

	// telemOnce caches the member hot-path families so each member RPC
	// skips the registry's by-name lookup (a global mutex).
	telemOnce  sync.Once
	memberDur  *telemetry.Family
	budgetWait *telemetry.Family
	retriesTot *telemetry.CounterFamily

	// TransientRetries bounds how many times a member's test or integrate
	// is retried after a transient error before the member is quarantined
	// (0 means DefaultTransientRetries, negative means no retries).
	TransientRetries int
	// RetryBackoff is the delay before the first transient retry; it
	// doubles per attempt (0 means DefaultRetryBackoff).
	RetryBackoff time.Duration
	// Sleep, when set, replaces time.Sleep for retry backoff — a hook for
	// tests and fault injection.
	Sleep func(time.Duration)

	// Observer, when set, receives every deployment state transition (the
	// deployment journal's input). An observer error halts the plan.
	Observer Observer
	// Cursor, when set, resumes a previous run of the same plan: leading
	// DoneStages release immediately and members the cursor records as
	// integrated or quarantined are skipped.
	Cursor *Cursor
	// StageGate, when set, is consulted before each stage begins executing
	// (and before the post-plan promoted flush, with stage -1) — the hook
	// the rollout orchestrator uses to hold a rollout at a stage barrier
	// (Pause/Resume). It must block until the plan may proceed, watching
	// ctx; a non-nil return halts the plan. Stages a resume cursor records
	// as done release without consulting the gate.
	StageGate func(ctx context.Context, stage int) error
}

// NewController returns a controller depositing into urr and debugging
// with fix.
func NewController(urr *report.URR, fix Fixer) *Controller {
	return &Controller{
		URR: urr, Fix: fix, MaxRounds: 10, Parallelism: DefaultParallelism,
		TransientRetries: DefaultTransientRetries, RetryBackoff: DefaultRetryBackoff,
	}
}

// initTelem caches the member hot-path families once per controller.
func (ctl *Controller) initTelem() {
	ctl.telemOnce.Do(func() {
		ctl.memberDur = ctl.Telemetry.Histogram("mirage_member_duration_seconds",
			"Member operation duration by op (test, integrate, rollback), retries included.", "op", 1e-9)
		ctl.budgetWait = ctl.Telemetry.Histogram("mirage_budget_wait_seconds",
			"Wait for a worker-budget slot by op.", "op", 1e-9)
		ctl.retriesTot = ctl.Telemetry.Counter("mirage_transient_retries_total",
			"Transient member-RPC errors retried after backoff.", "")
	})
}

// memberHist is the per-member operation duration family (full duration
// of a test/integrate/rollback attempt loop, retries included).
func (ctl *Controller) memberHist() *telemetry.Family {
	ctl.initTelem()
	return ctl.memberDur
}

// budgetHist is the budget-acquire wait family: how long member RPCs
// queued for a worker-budget slot (~0 with no budget installed).
func (ctl *Controller) budgetHist() *telemetry.Family {
	ctl.initTelem()
	return ctl.budgetWait
}

// retries resolves the configured transient-retry budget.
func (ctl *Controller) retries() int {
	if ctl.TransientRetries < 0 {
		return 0
	}
	if ctl.TransientRetries == 0 {
		return DefaultTransientRetries
	}
	return ctl.TransientRetries
}

// pause sleeps for the backoff duration, via the Sleep hook when set. The
// sleep is cut short when ctx is cancelled: an abort must never wait out
// the retry-backoff budget.
func (ctl *Controller) pause(ctx context.Context, d time.Duration) {
	if ctl.Sleep != nil {
		ctl.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// backoff returns the delay before retry attempt (0-based, doubling).
func (ctl *Controller) backoff(attempt int) time.Duration {
	base := ctl.RetryBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	return base << attempt
}

// retryTransient runs op, retrying transient errors on the bounded
// doubling backoff, and returns the last error — the one retry loop both
// member testing and integration use. A cancelled context stops the loop
// immediately (mid-backoff included) and surfaces ctx.Err(), which is not
// transient, so no member is quarantined for an operator abort.
// node names the member for the retry counter and backoff spans.
func (ctl *Controller) retryTransient(ctx context.Context, node string, op func(context.Context) error) error {
	err := op(ctx)
	for attempt := 0; err != nil && IsTransient(err) && attempt < ctl.retries(); attempt++ {
		ctl.initTelem()
		ctl.retriesTot.With("").Inc()
		_, endBackoff := telemetry.StartSpan(ctx, "backoff", "", node)
		ctl.pause(ctx, ctl.backoff(attempt))
		endBackoff(err)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = op(ctx)
	}
	if err != nil && ctx.Err() != nil {
		// An I/O failure observed during teardown is the abort, not a
		// machine problem.
		return ctx.Err()
	}
	return err
}

// ClusterName is the canonical deployment-cluster name for a clustering
// ID. Plan ordering breaks distance ties lexicographically by name, so
// every producer of Cluster values must use this one scheme.
func ClusterName(id int) string { return fmt.Sprintf("cluster%d", id) }

// Refs converts deploy clusters into the planner's cluster refs.
func Refs(clusters []*Cluster) []staging.ClusterRef {
	refs := make([]staging.ClusterRef, len(clusters))
	for i, c := range clusters {
		refs[i] = staging.ClusterRef{Name: c.ID, Distance: c.Distance}
	}
	return refs
}

// PlanFor returns the wave schedule Deploy would execute for policy over
// the clusters — the very plan internal/simulator runs on its event
// engine, which is what makes simulated and live rollouts of the same
// fleet follow the same schedule.
func (ctl *Controller) PlanFor(policy Policy, clusters []*Cluster) *staging.Plan {
	return staging.BuildPlan(policy, Refs(clusters), ctl.Seed)
}

// Deploy runs the upgrade across the clusters under the given policy and
// returns the outcome. Urgent upgrades bypass staging regardless of policy,
// as the paper allows ("it may bypass the entire cluster infrastructure").
//
// Cancelling ctx aborts the rollout promptly — mid-wave, mid-backoff or at
// a stage barrier: no new member test starts after cancellation, retry
// sleeps are cut short, and the abort is journaled as an abandoned record
// (an aborted rollout is not resumable — resuming it would be an operator
// mistake worth naming). Deploy then returns the partial outcome plus an
// error wrapping ctx.Err().
func (ctl *Controller) Deploy(ctx context.Context, policy Policy, up *pkgmgr.Upgrade, clusters []*Cluster) (*Outcome, error) {
	out := &Outcome{Policy: policy, Nodes: make(map[string]*NodeStatus), FinalID: up.ID}
	if ctl.Transfer != nil {
		before := ctl.Transfer()
		defer func() { out.Transfer = ctl.Transfer().Sub(before) }()
	}
	byID := make(map[string]*Cluster, len(clusters))
	for _, c := range clusters {
		byID[c.ID] = c
		for _, n := range append(append([]Node(nil), c.Representatives...), c.Others...) {
			out.Nodes[n.Name()] = &NodeStatus{Node: n.Name(), Cluster: c.ID}
		}
	}
	if up.Urgent {
		policy = PolicyNoStaging
		out.Policy = PolicyNoStaging
	}

	r := &waveRunner{ctx: ctx, spanCtx: ctx, ctl: ctl, up: up, out: out, clusters: byID, clean: make(map[string]bool), unclean: make(map[string]bool)}
	if cur := ctl.Cursor; cur != nil {
		r.skipStages = cur.DoneStages
		out.Rounds = cur.Rounds
		out.Overhead = cur.Overhead
		if cur.FinalID != "" {
			out.FinalID = cur.FinalID
		}
		for name, id := range cur.Integrated {
			if st := out.Nodes[name]; st != nil {
				st.UpgradeID = id
			}
		}
		for name := range cur.Quarantined {
			if st := out.Nodes[name]; st != nil {
				st.Quarantined = true
			}
		}
		for name, n := range cur.NodeTests {
			if st := out.Nodes[name]; st != nil {
				st.Tests = n
			}
		}
		for name, n := range cur.NodeFailures {
			if st := out.Nodes[name]; st != nil {
				st.Failures = n
			}
		}
		for c := range cur.Unclean {
			r.unclean[c] = true
		}
	}
	staging.Execute(ctl.PlanFor(policy, clusters), r)
	if r.err == nil && !out.Abandoned {
		r.flushPromoted()
	}
	out.collectQuarantined()
	if r.err != nil || out.Abandoned {
		return out, r.err
	}
	// Nodes that integrated an earlier version of the upgrade before a
	// problem elsewhere forced a correction are "later notified of a new
	// upgrade fixing the problems" (§4.3): validate and integrate the
	// final version on them now.
	err := ctl.notifyFinal(ctx, r.up, clusters, out)
	out.collectQuarantined()
	return out, err
}

// collectQuarantined rebuilds the sorted quarantine list from node status.
func (o *Outcome) collectQuarantined() {
	o.Quarantined = o.Quarantined[:0]
	for name, st := range o.Nodes {
		if st.Quarantined {
			o.Quarantined = append(o.Quarantined, name)
		}
	}
	sort.Strings(o.Quarantined)
}

// waveRunner is the live executor of staging plans: within a stage all
// waves merge into one test group, and within a group node tests run on
// the controller's bounded worker pool.
type waveRunner struct {
	ctx context.Context
	// spanCtx is the context member work derives telemetry spans from:
	// the rollout context at rest, the current stage span inside a
	// stage, the current wave span inside a wave. Only the runner's own
	// goroutine writes it, and always before spawning pool workers.
	spanCtx  context.Context
	ctl      *Controller
	up       *pkgmgr.Upgrade // current upgrade version; advances as fixes ship
	out      *Outcome
	clusters map[string]*Cluster
	// clean records whether a cluster has seen zero failures so far —
	// PolicyAdaptive's promotion signal.
	clean map[string]bool
	// unclean is the sticky complement fed by quarantines and, on resume,
	// by the cursor: once a cluster is unclean it can never be promoted,
	// even if its members pass on a later attempt.
	unclean map[string]bool
	// promoted holds elastic waves released past their barrier; they run
	// as one merged parallel wave at the end of the plan.
	promoted []staging.Wave
	// stage counts RunStage invocations (the plan stage index); stages
	// below skipStages were completed by a previous run (journal resume)
	// and release their gate without re-running.
	stage, skipStages int
	// halted is set when the observer can no longer record transitions:
	// from that moment no new side effect (integration, quarantine) may
	// be performed, or a crash-resume would not know it happened.
	halted bool
	err    error
}

// member pairs a node with the cluster it deploys under, so merged waves
// keep per-cluster report attribution.
type member struct {
	node    Node
	cluster string
}

func (r *waveRunner) members(waves []staging.Wave) []member {
	var ms []member
	add := func(n Node, cluster string) {
		// Members a previous run already integrated (any version — a
		// superseded one catches up via final notification) and members
		// under quarantine stay out of wave testing.
		if st := r.out.Nodes[n.Name()]; st != nil && (st.UpgradeID != "" || st.Quarantined) {
			return
		}
		ms = append(ms, member{n, cluster})
	}
	for _, w := range waves {
		c := r.clusters[w.Cluster]
		if c == nil {
			continue
		}
		if w.Group != staging.GroupOthers {
			for _, n := range c.Representatives {
				add(n, c.ID)
			}
		}
		if w.Group != staging.GroupReps {
			for _, n := range c.Others {
				add(n, c.ID)
			}
		}
	}
	return ms
}

// checkAbort notices a cancelled context and records it as the plan's
// terminal state: the first call after cancellation sets the runner error
// to one wrapping ctx.Err() (so callers can tell an operator abort from a
// node failure) and journals an abandoned record whose Reason names the
// abort — an aborted rollout must refuse to resume, exactly like a
// vendor-abandoned one. It reports whether the plan is aborted.
func (r *waveRunner) checkAbort(stage int) bool {
	cerr := r.ctx.Err()
	if cerr == nil {
		return false
	}
	if r.err == nil {
		r.err = fmt.Errorf("deploy: rollout aborted: %w", cerr)
		r.emit(Event{Type: EventAbandoned, Stage: stage, UpgradeID: r.up.ID,
			Round: r.out.Rounds, Reason: "rollout aborted: " + cerr.Error()})
	}
	return true
}

// gate holds the plan at a stage barrier when the controller has a
// StageGate installed (the orchestrator's Pause/Resume hook), then checks
// for cancellation — a rollout aborted while paused must not start the
// stage. It reports whether the plan must halt.
func (r *waveRunner) gate(stage int) bool {
	if gate := r.ctl.StageGate; gate != nil {
		if err := gate(r.ctx, stage); err != nil {
			if r.checkAbort(stage) {
				return true
			}
			if r.err == nil {
				r.err = fmt.Errorf("deploy: stage %d gate: %w", stage, err)
			}
			return true
		}
	}
	return r.checkAbort(stage)
}

// emit delivers one event to the observer. An observer that cannot record
// the transition halts the plan: a journal the rollout has outrun is no
// longer a journal.
func (r *waveRunner) emit(ev Event) {
	if r.ctl.Observer == nil {
		return
	}
	if err := r.ctl.Observer.OnEvent(ev); err != nil {
		r.halted = true
		if r.err == nil {
			r.err = fmt.Errorf("deploy: recording state transition: %w", err)
		}
	}
}

// RunStage implements staging.Executor. A stage that fails terminally —
// vendor abandonment or a node error — does not release its gate, which
// halts the plan. Stages a resume cursor records as gated release
// immediately, without re-running or re-journaling their waves.
func (r *waveRunner) RunStage(st staging.Stage, done func()) {
	idx := r.stage
	r.stage++
	if r.err != nil || r.out.Abandoned {
		return
	}
	if idx < r.skipStages {
		// A gated stage may still owe work: an elastic stage's gate
		// releases while its promoted waves wait for the end of the plan,
		// so a crash after the gate but before the promoted flush must
		// re-collect the members not yet integrated. Converged stages gate
		// only once every member integrated or was quarantined, so this
		// collects nothing for them.
		for _, w := range st.Waves {
			if len(r.members([]staging.Wave{w})) > 0 {
				r.promoted = append(r.promoted, w)
			}
		}
		// Members this stage integrated on the previous run are gated
		// again: peer eligibility must survive a journal resume.
		r.notifyGated(st)
		done()
		return
	}
	if r.gate(idx) {
		return
	}
	sctx, endStage := telemetry.StartSpan(r.ctx, "stage", fmt.Sprintf("stage %d", idx), "")
	r.spanCtx = sctx
	defer func() { r.spanCtx = r.ctx; endStage(r.err) }()
	r.emit(Event{Type: EventStageStarted, Stage: idx, UpgradeID: r.up.ID})
	var waves []staging.Wave
	for _, w := range st.Waves {
		if st.Promote(w, r.clean) {
			// Zero failures at the representatives: promote this
			// cluster's non-representatives past the barrier.
			r.promoted = append(r.promoted, w)
			continue
		}
		waves = append(waves, w)
	}
	r.converge(idx, waves, st.RetryAll)
	if r.err != nil || r.out.Abandoned {
		return
	}
	r.emit(Event{Type: EventGatePassed, Stage: idx, UpgradeID: r.up.ID})
	if r.err != nil {
		// The gate record could not be journaled; releasing the gate
		// anyway would let the plan outrun its journal.
		return
	}
	r.notifyGated(st)
	done()
}

// notifyGated reports a gated stage's integrated, non-quarantined members
// to the controller's GatedMembers hook, sorted for determinism. Promoted
// members are deliberately absent: they have not integrated yet, only
// been released past the barrier.
func (r *waveRunner) notifyGated(st staging.Stage) {
	if r.ctl.GatedMembers == nil {
		return
	}
	seen := make(map[string]bool)
	var names []string
	consider := func(n Node) {
		name := n.Name()
		if seen[name] {
			return
		}
		seen[name] = true
		if nst := r.out.Nodes[name]; nst != nil && nst.UpgradeID != "" && !nst.Quarantined {
			names = append(names, name)
		}
	}
	for _, w := range st.Waves {
		c := r.clusters[w.Cluster]
		if c == nil {
			continue
		}
		if w.Group != staging.GroupOthers {
			for _, n := range c.Representatives {
				consider(n)
			}
		}
		if w.Group != staging.GroupReps {
			for _, n := range c.Others {
				consider(n)
			}
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	r.ctl.GatedMembers(names)
}

// flushPromoted runs the waves promoted past their barriers as one merged
// parallel wave. The post-plan flush is a stage barrier like any other:
// a paused rollout holds here too, and an abort skips the flush.
func (r *waveRunner) flushPromoted() {
	if len(r.promoted) == 0 {
		return
	}
	if r.gate(-1) {
		return
	}
	sctx, endStage := telemetry.StartSpan(r.ctx, "stage", "promoted flush", "")
	r.spanCtx = sctx
	defer func() { r.spanCtx = r.ctx; endStage(r.err) }()
	waves := r.promoted
	r.promoted = nil
	r.converge(-1, waves, false)
}

// converge repeatedly tests-and-debugs until every member of the waves
// passes or is quarantined, the vendor abandons the upgrade, or an error
// occurs. Normally only the previously failing members re-test after a
// fix; with retryAll (FrontLoading's phase-1 regime) every member
// re-tests each round until a full round passes without failures.
func (r *waveRunner) converge(stage int, waves []staging.Wave, retryAll bool) {
	for _, w := range waves {
		if w.Group != staging.GroupOthers {
			// A cluster starts clean unless something — a recorded
			// failure, a quarantine — already poisoned it.
			r.clean[w.Cluster] = !r.unclean[w.Cluster]
		}
	}
	all := r.members(waves)
	if r.ctl.Gate.Enabled {
		r.canaryConverge(stage, all)
		return
	}
	pending := all
	for wave := 0; len(pending) > 0; wave++ {
		if r.checkAbort(stage) {
			return
		}
		prev := r.spanCtx
		sctx, endWave := telemetry.StartSpan(prev, "wave", fmt.Sprintf("wave %d (%d members)", wave, len(pending)), "")
		r.spanCtx = sctx
		failed, _ := r.testMembers(stage, pending, true)
		r.spanCtx = prev
		endWave(r.err)
		if r.err != nil || len(failed) == 0 {
			return
		}
		if !r.debug(stage) {
			return
		}
		if retryAll {
			pending = r.alive(all)
		} else {
			pending = failed
		}
	}
}

// canaryConverge is convergence under a statistical canary gate: instead
// of one failure sending the vendor debugging, validation verdicts
// accumulate (without integrating anyone) until the gate has MinSamples
// of evidence, then the observed failure rate decides. Above threshold
// the stage fails into the usual debug loop — and the corrected version
// starts a fresh canary, because the old evidence is about the version
// it replaced. Within tolerance the stage promotes: every member whose
// latest verdict passed integrates, while tolerated failures are simply
// left on the old version, so no machine is ever stranded on a
// half-trusted upgrade.
func (r *waveRunner) canaryConverge(stage int, all []member) {
	if len(all) == 0 {
		return
	}
	samples, failures := 0, 0
	for round := 0; ; round++ {
		if r.checkAbort(stage) {
			return
		}
		ms := r.alive(all)
		if len(ms) == 0 {
			return // everyone quarantined; the stage converges empty
		}
		prev := r.spanCtx
		sctx, endWave := telemetry.StartSpan(prev, "wave", fmt.Sprintf("canary round %d (%d members)", round, len(ms)), "")
		r.spanCtx = sctx
		failed, tested := r.testMembers(stage, ms, false)
		r.spanCtx = prev
		endWave(r.err)
		if r.err != nil || r.halted {
			return
		}
		samples += tested
		failures += len(failed)
		switch r.ctl.Gate.Evaluate(samples, failures) {
		case staging.GateNeedMore:
			continue
		case staging.GateFail:
			if !r.debug(stage) {
				return
			}
			samples, failures = 0, 0
		default: // GatePass: promote on the latest round's verdicts
			failedNow := make(map[string]bool, len(failed))
			for _, m := range failed {
				failedNow[m.node.Name()] = true
			}
			for _, m := range r.alive(ms) {
				if failedNow[m.node.Name()] {
					continue // tolerated failure: stays on version N
				}
				r.integrateMember(stage, m)
				if r.err != nil || r.halted || r.checkAbort(stage) {
					return
				}
			}
			return
		}
	}
}

// alive filters members quarantined since the list was built.
func (r *waveRunner) alive(ms []member) []member {
	out := make([]member, 0, len(ms))
	for _, m := range ms {
		if st := r.out.Nodes[m.node.Name()]; st != nil && st.Quarantined {
			continue
		}
		out = append(out, m)
	}
	return out
}

// debug invokes the vendor fixer on the current failures and advances the
// runner to the corrected upgrade, or marks the outcome abandoned when
// the vendor gives up or rounds are exhausted.
func (r *waveRunner) debug(stage int) bool {
	ctl, out := r.ctl, r.out
	max := ctl.MaxRounds
	if max == 0 {
		max = 10
	}
	if out.Rounds >= max || ctl.Fix == nil {
		out.Abandoned = true
		r.emit(Event{Type: EventAbandoned, Stage: stage, UpgradeID: r.up.ID, Round: out.Rounds})
		return false
	}
	out.Rounds++
	fixed, ok := ctl.Fix(r.up, ctl.URR.Failures(r.up.ID))
	if !ok {
		out.Abandoned = true
		r.emit(Event{Type: EventAbandoned, Stage: stage, UpgradeID: r.up.ID, Round: out.Rounds})
		return false
	}
	prev := r.up.ID
	r.up = fixed
	r.emit(Event{Type: EventFixReleased, Stage: stage, UpgradeID: fixed.ID, PrevID: prev, Round: out.Rounds})
	return true
}

// testWithRetry validates the current upgrade on one node, retrying
// transient errors on the controller's bounded doubling backoff. It
// returns the last error when the budget is exhausted. ctx carries the
// enclosing wave span (r.spanCtx at call time — passed explicitly
// because pool workers must not race the runner's spanCtx writes).
func (r *waveRunner) testWithRetry(ctx context.Context, n Node) (*report.Report, error) {
	sctx, end := telemetry.StartSpan(ctx, "test", n.Name(), n.Name())
	endTimer := r.ctl.memberHist().With("test").Time()
	var rep *report.Report
	err := r.ctl.retryTransient(sctx, n.Name(), func(ctx context.Context) error {
		t0 := time.Now()
		if err := r.ctl.Budget.Acquire(ctx); err != nil {
			return err
		}
		r.ctl.budgetHist().With("test").ObserveSince(t0)
		defer r.ctl.Budget.Release()
		var e error
		rep, e = n.TestUpgrade(ctx, r.up)
		return e
	})
	endTimer()
	end(err)
	return rep, err
}

// quarantine marks a member persistently unreachable: it leaves the wave
// (which converges without it), never reappears in later waves, and its
// cluster counts as unclean — a quarantined representative is a failure
// for gate purposes, not a pass.
func (r *waveRunner) quarantine(stage int, m member, reason string) {
	st := r.out.Nodes[m.node.Name()]
	st.Quarantined = true
	r.clean[m.cluster] = false
	r.unclean[m.cluster] = true
	r.emit(Event{Type: EventQuarantined, Stage: stage, Node: m.node.Name(),
		Cluster: m.cluster, UpgradeID: r.up.ID, Reason: reason})
}

// testMembers validates the current upgrade on every member. Node tests
// run concurrently on the worker pool bounded by Controller.Parallelism,
// each with its own transient-retry budget; reports are then deposited
// and passing nodes integrated strictly in member order, so URR contents
// and the outcome are identical at any pool size. Members whose retries
// exhaust are quarantined; non-transient errors halt the plan. It returns
// the members that failed validation and how many verdicts were booked.
// With integrate false (canary gating) passing members are left on their
// current version — the gate decides promotion later.
func (r *waveRunner) testMembers(stage int, ms []member, integrate bool) (failed []member, tested int) {
	reports := make([]*report.Report, len(ms))
	errs := make([]error, len(ms))
	workers := r.ctl.Parallelism
	if workers > len(ms) {
		workers = len(ms)
	}
	sctx := r.spanCtx // read once, before any worker goroutine exists
	if sctx == nil {
		sctx = r.ctx
	}
	if workers <= 1 {
		for i, m := range ms {
			if r.ctx.Err() != nil {
				break // abort: start no further member test
			}
			reports[i], errs[i] = r.testWithRetry(sctx, m.node)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if r.ctx.Err() != nil {
						continue // abort: drain without starting new tests
					}
					reports[i], errs[i] = r.testWithRetry(sctx, ms[i].node)
				}
			}()
		}
		for i := range ms {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Even when a node errors, every report the pool already produced is
	// deposited and booked in member order — evidence of validation work
	// performed on real machines must not be discarded. Transient errors
	// that survived their retry budget quarantine the member; the first
	// non-transient error (in member order) halts the plan after this
	// accounting pass. A journal failure is different: it stops the pass
	// immediately, because side effects the journal cannot record must
	// not happen. So does an abort: once the abandoned record is down,
	// nothing may be journaled after it — reports produced in the abort
	// window are deliberately dropped.
	for i, m := range ms {
		if r.halted || r.checkAbort(stage) {
			break
		}
		if errs[i] != nil {
			if IsTransient(errs[i]) {
				r.quarantine(stage, m, errs[i].Error())
				continue
			}
			// A cancellation that surfaced as this member's error is the
			// abort, not a node failure — record it as such (once).
			if r.checkAbort(stage) {
				break
			}
			if r.err == nil {
				r.err = fmt.Errorf("deploy: testing %s on %s: %w", r.up.ID, m.node.Name(), errs[i])
			}
			continue
		}
		rep := reports[i]
		rep.Cluster = m.cluster
		r.ctl.URR.Deposit(rep)
		st := r.out.Nodes[m.node.Name()]
		st.Tests++
		tested++
		r.emit(Event{Type: EventTested, Stage: stage, Node: m.node.Name(),
			Cluster: m.cluster, UpgradeID: r.up.ID, Success: rep.Success})
		if r.halted {
			break
		}
		if !rep.Success {
			st.Failures++
			r.out.Overhead++
			r.clean[m.cluster] = false
			r.unclean[m.cluster] = true
			failed = append(failed, m)
			continue
		}
		if integrate {
			r.integrateMember(stage, m)
		}
	}
	return failed, tested
}

// notifyFinal brings nodes that integrated a superseded version up to the
// final corrected upgrade. Each such node re-validates before integrating;
// the re-validations run on the same worker pool as wave testing. Nodes
// that fail the final version keep their earlier working upgrade.
func (ctl *Controller) notifyFinal(ctx context.Context, final *pkgmgr.Upgrade, clusters []*Cluster, out *Outcome) error {
	var ms []member
	for _, c := range clusters {
		for _, n := range append(append([]Node(nil), c.Representatives...), c.Others...) {
			st := out.Nodes[n.Name()]
			if st.UpgradeID == "" || st.UpgradeID == final.ID || st.Quarantined {
				continue
			}
			ms = append(ms, member{n, c.ID})
		}
	}
	if len(ms) == 0 {
		return nil
	}
	sctx, endStage := telemetry.StartSpan(ctx, "stage", "final notification", "")
	r := &waveRunner{ctx: ctx, spanCtx: sctx, ctl: ctl, up: final, out: out, clean: make(map[string]bool), unclean: make(map[string]bool)}
	r.testMembers(-1, ms, true)
	endStage(r.err)
	return r.err
}

// integrateMember applies the validated upgrade on the node, retrying
// transient errors on the same bounded backoff as testing — a member that
// validated successfully but lost its connection before integrating gets
// the same chance to come back. FinalID advances here — when a version
// actually reaches a node — so that on abandonment the outcome names the
// last version that deployed, never a fix that no node integrated.
func (r *waveRunner) integrateMember(stage int, m member) {
	sctx, end := telemetry.StartSpan(r.spanCtx, "integrate", m.node.Name(), m.node.Name())
	endTimer := r.ctl.memberHist().With("integrate").Time()
	err := r.ctl.retryTransient(sctx, m.node.Name(), func(ctx context.Context) error {
		t0 := time.Now()
		if err := r.ctl.Budget.Acquire(ctx); err != nil {
			return err
		}
		r.ctl.budgetHist().With("integrate").ObserveSince(t0)
		defer r.ctl.Budget.Release()
		return m.node.Integrate(ctx, r.up)
	})
	endTimer()
	end(err)
	if err != nil {
		if IsTransient(err) {
			r.quarantine(stage, m, err.Error())
			return
		}
		if r.checkAbort(stage) {
			return
		}
		if r.err == nil {
			r.err = fmt.Errorf("deploy: integrating %s on %s: %w", r.up.ID, m.node.Name(), err)
		}
		return
	}
	r.out.Nodes[m.node.Name()].UpgradeID = r.up.ID
	r.out.FinalID = r.up.ID
	r.emit(Event{Type: EventIntegrated, Stage: stage, Node: m.node.Name(),
		Cluster: m.cluster, UpgradeID: r.up.ID})
}
