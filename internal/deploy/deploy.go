// Package deploy implements Mirage's deployment subsystem over real
// (simulated) machines: the three abstractions of §3.2.1 — clusters of
// deployment, representatives, and vendor-to-cluster distance — plus a
// controller that executes staged deployment plans end to end,
// coordinating user-machine testing and reporting.
//
// The protocol semantics (which group of which cluster tests when) live
// in internal/staging; this package is the live executor of those plans.
// The simulator package runs the identical plans on its event engine to
// answer "what latency/overhead would this schedule have at scale"; this
// package actually performs the waves: nodes download upgrades, validate
// them in isolation — concurrently within a wave, on a bounded worker
// pool — deposit reports in the URR, and integrate on success, while the
// vendor debugs reported failures and re-releases corrected upgrades.
package deploy

import (
	"fmt"
	"sync"

	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/staging"
)

// Node is one managed user machine.
type Node interface {
	// Name identifies the machine.
	Name() string
	// TestUpgrade downloads the upgrade, validates it in an isolated
	// environment, and returns the resulting report (not yet deposited).
	// The controller may call TestUpgrade on different nodes concurrently;
	// implementations must not share mutable state across nodes.
	TestUpgrade(up *pkgmgr.Upgrade) (*report.Report, error)
	// Integrate applies the upgrade to the production system. Called only
	// after the node's own validation succeeded, never concurrently.
	Integrate(up *pkgmgr.Upgrade) error
}

// Cluster is a cluster of deployment: representatives test first.
type Cluster struct {
	ID              string
	Distance        int
	Representatives []Node
	Others          []Node
}

// Size returns the total number of nodes.
func (c *Cluster) Size() int { return len(c.Representatives) + len(c.Others) }

// Fixer is the vendor's debugging loop: given the failure reports for an
// upgrade, it returns a corrected upgrade. ok=false means the vendor could
// not produce a fix and deployment of the upgrade is abandoned.
type Fixer func(up *pkgmgr.Upgrade, failures []*report.Report) (fixed *pkgmgr.Upgrade, ok bool)

// Policy selects the staged deployment protocol. It is an alias for the
// shared staging.Policy, so plans, the simulator and the live controller
// all speak the same vocabulary.
type Policy = staging.Policy

const (
	// PolicyBalanced deploys nearest cluster first, representatives before
	// non-representatives (paper §4.3, "Balanced").
	PolicyBalanced = staging.PolicyBalanced
	// PolicyFrontLoading tests all representatives in parallel and debugs
	// everything up front, then deploys non-representatives farthest
	// cluster first (paper §4.3, "FrontLoading").
	PolicyFrontLoading = staging.PolicyFrontLoading
	// PolicyNoStaging deploys to every node at once; for urgent upgrades.
	PolicyNoStaging = staging.PolicyNoStaging
	// PolicyRandomStaging is Balanced with a randomized cluster order; the
	// paper uses it to isolate the benefit of staging from that of
	// distance-based ordering. Seeded deterministically via Controller.Seed.
	PolicyRandomStaging = staging.PolicyRandomStaging
	// PolicyAdaptive is Balanced with early promotion: clusters whose
	// representatives pass without failures release their
	// non-representatives from the barrier; the promoted waves run as one
	// merged parallel wave at the end of the plan, by which time any
	// problems found downstream have been debugged — so promoted nodes
	// usually test the corrected upgrade directly.
	PolicyAdaptive = staging.PolicyAdaptive
)

// TransferStats summarises the bytes a deployment moved over the node
// transport. The live controller has no opinion about how nodes receive
// their payloads — it records whatever cumulative counters the configured
// Transfer source reports, as a before/after delta.
type TransferStats struct {
	Frames      int64 // request frames sent
	Bytes       int64 // total bytes on the wire
	ChunkBytes  int64 // content-addressed chunk payload bytes
	ChunkHits   int64 // manifest chunks already held by agents
	ChunkMisses int64 // manifest chunks that had to be transferred
}

// Sub returns the counter delta t−o.
func (t TransferStats) Sub(o TransferStats) TransferStats {
	return TransferStats{
		Frames:      t.Frames - o.Frames,
		Bytes:       t.Bytes - o.Bytes,
		ChunkBytes:  t.ChunkBytes - o.ChunkBytes,
		ChunkHits:   t.ChunkHits - o.ChunkHits,
		ChunkMisses: t.ChunkMisses - o.ChunkMisses,
	}
}

// NodeStatus records the final state of one node.
type NodeStatus struct {
	Node      string
	Cluster   string
	UpgradeID string // the upgrade version the node integrated ("" if none)
	Tests     int    // validation runs performed on this node
	Failures  int    // validation runs that failed
}

// Outcome summarises a deployment.
type Outcome struct {
	Policy    Policy
	FinalID   string // ID of the upgrade version that ultimately deployed
	Rounds    int    // vendor debugging rounds
	Overhead  int    // nodes that tested a faulty upgrade (paper's metric)
	Nodes     map[string]*NodeStatus
	Abandoned bool // vendor gave up fixing
	// Transfer is the wire traffic this deployment caused, when the
	// controller has a Transfer source configured (zero otherwise).
	Transfer TransferStats
}

// Integrated counts nodes that integrated some version of the upgrade.
func (o *Outcome) Integrated() int {
	n := 0
	for _, st := range o.Nodes {
		if st.UpgradeID != "" {
			n++
		}
	}
	return n
}

// DefaultParallelism is the worker-pool size NewController configures for
// node testing within a wave.
const DefaultParallelism = 4

// Controller executes deployments.
type Controller struct {
	URR *report.URR
	Fix Fixer
	// MaxRounds bounds vendor debugging iterations (default 10).
	MaxRounds int
	// Seed drives the PolicyRandomStaging shuffle, for reproducibility.
	Seed uint64
	// Parallelism bounds how many nodes of a wave test concurrently
	// (<= 1 means serial). Outcomes and URR contents are identical at any
	// pool size: reports are deposited and nodes integrated in
	// deterministic wave order after the pool drains.
	Parallelism int
	// Transfer, when set, reports the transport's cumulative transfer
	// counters (e.g. transport.Server.TransferSnapshot). Deploy snapshots
	// it around the rollout and records the delta in Outcome.Transfer.
	Transfer func() TransferStats
}

// NewController returns a controller depositing into urr and debugging
// with fix.
func NewController(urr *report.URR, fix Fixer) *Controller {
	return &Controller{URR: urr, Fix: fix, MaxRounds: 10, Parallelism: DefaultParallelism}
}

// ClusterName is the canonical deployment-cluster name for a clustering
// ID. Plan ordering breaks distance ties lexicographically by name, so
// every producer of Cluster values must use this one scheme.
func ClusterName(id int) string { return fmt.Sprintf("cluster%d", id) }

// Refs converts deploy clusters into the planner's cluster refs.
func Refs(clusters []*Cluster) []staging.ClusterRef {
	refs := make([]staging.ClusterRef, len(clusters))
	for i, c := range clusters {
		refs[i] = staging.ClusterRef{Name: c.ID, Distance: c.Distance}
	}
	return refs
}

// PlanFor returns the wave schedule Deploy would execute for policy over
// the clusters — the very plan internal/simulator runs on its event
// engine, which is what makes simulated and live rollouts of the same
// fleet follow the same schedule.
func (ctl *Controller) PlanFor(policy Policy, clusters []*Cluster) *staging.Plan {
	return staging.BuildPlan(policy, Refs(clusters), ctl.Seed)
}

// Deploy runs the upgrade across the clusters under the given policy and
// returns the outcome. Urgent upgrades bypass staging regardless of policy,
// as the paper allows ("it may bypass the entire cluster infrastructure").
func (ctl *Controller) Deploy(policy Policy, up *pkgmgr.Upgrade, clusters []*Cluster) (*Outcome, error) {
	out := &Outcome{Policy: policy, Nodes: make(map[string]*NodeStatus), FinalID: up.ID}
	if ctl.Transfer != nil {
		before := ctl.Transfer()
		defer func() { out.Transfer = ctl.Transfer().Sub(before) }()
	}
	byID := make(map[string]*Cluster, len(clusters))
	for _, c := range clusters {
		byID[c.ID] = c
		for _, n := range append(append([]Node(nil), c.Representatives...), c.Others...) {
			out.Nodes[n.Name()] = &NodeStatus{Node: n.Name(), Cluster: c.ID}
		}
	}
	if up.Urgent {
		policy = PolicyNoStaging
		out.Policy = PolicyNoStaging
	}

	r := &waveRunner{ctl: ctl, up: up, out: out, clusters: byID, clean: make(map[string]bool)}
	staging.Execute(ctl.PlanFor(policy, clusters), r)
	if r.err == nil && !out.Abandoned {
		r.flushPromoted()
	}
	if r.err != nil || out.Abandoned {
		return out, r.err
	}
	// Nodes that integrated an earlier version of the upgrade before a
	// problem elsewhere forced a correction are "later notified of a new
	// upgrade fixing the problems" (§4.3): validate and integrate the
	// final version on them now.
	return out, ctl.notifyFinal(r.up, clusters, out)
}

// waveRunner is the live executor of staging plans: within a stage all
// waves merge into one test group, and within a group node tests run on
// the controller's bounded worker pool.
type waveRunner struct {
	ctl      *Controller
	up       *pkgmgr.Upgrade // current upgrade version; advances as fixes ship
	out      *Outcome
	clusters map[string]*Cluster
	// clean records whether a cluster has seen zero failures so far —
	// PolicyAdaptive's promotion signal.
	clean map[string]bool
	// promoted holds elastic waves released past their barrier; they run
	// as one merged parallel wave at the end of the plan.
	promoted []staging.Wave
	err      error
}

// member pairs a node with the cluster it deploys under, so merged waves
// keep per-cluster report attribution.
type member struct {
	node    Node
	cluster string
}

func (r *waveRunner) members(waves []staging.Wave) []member {
	var ms []member
	for _, w := range waves {
		c := r.clusters[w.Cluster]
		if c == nil {
			continue
		}
		if w.Group != staging.GroupOthers {
			for _, n := range c.Representatives {
				ms = append(ms, member{n, c.ID})
			}
		}
		if w.Group != staging.GroupReps {
			for _, n := range c.Others {
				ms = append(ms, member{n, c.ID})
			}
		}
	}
	return ms
}

// RunStage implements staging.Executor. A stage that fails terminally —
// vendor abandonment or a node error — does not release its gate, which
// halts the plan.
func (r *waveRunner) RunStage(st staging.Stage, done func()) {
	if r.err != nil || r.out.Abandoned {
		return
	}
	var waves []staging.Wave
	for _, w := range st.Waves {
		if st.Promote(w, r.clean) {
			// Zero failures at the representatives: promote this
			// cluster's non-representatives past the barrier.
			r.promoted = append(r.promoted, w)
			continue
		}
		waves = append(waves, w)
	}
	r.converge(waves, st.RetryAll)
	if r.err != nil || r.out.Abandoned {
		return
	}
	done()
}

// flushPromoted runs the waves promoted past their barriers as one merged
// parallel wave.
func (r *waveRunner) flushPromoted() {
	if len(r.promoted) == 0 {
		return
	}
	waves := r.promoted
	r.promoted = nil
	r.converge(waves, false)
}

// converge repeatedly tests-and-debugs until every member of the waves
// passes, the vendor abandons the upgrade, or an error occurs. Normally
// only the previously failing members re-test after a fix; with retryAll
// (FrontLoading's phase-1 regime) every member re-tests each round until
// a full round passes without failures.
func (r *waveRunner) converge(waves []staging.Wave, retryAll bool) {
	for _, w := range waves {
		if w.Group != staging.GroupOthers {
			r.clean[w.Cluster] = true
		}
	}
	all := r.members(waves)
	pending := all
	for len(pending) > 0 {
		failed := r.testMembers(pending)
		if r.err != nil || len(failed) == 0 {
			return
		}
		if !r.debug() {
			return
		}
		if retryAll {
			pending = all
		} else {
			pending = failed
		}
	}
}

// debug invokes the vendor fixer on the current failures and advances the
// runner to the corrected upgrade, or marks the outcome abandoned when
// the vendor gives up or rounds are exhausted.
func (r *waveRunner) debug() bool {
	ctl, out := r.ctl, r.out
	max := ctl.MaxRounds
	if max == 0 {
		max = 10
	}
	if out.Rounds >= max || ctl.Fix == nil {
		out.Abandoned = true
		return false
	}
	out.Rounds++
	fixed, ok := ctl.Fix(r.up, ctl.URR.Failures(r.up.ID))
	if !ok {
		out.Abandoned = true
		return false
	}
	r.up = fixed
	return true
}

// testMembers validates the current upgrade on every member. Node tests
// run concurrently on the worker pool bounded by Controller.Parallelism;
// reports are then deposited and passing nodes integrated strictly in
// member order, so URR contents and the outcome are identical at any
// pool size. It returns the members that failed validation.
func (r *waveRunner) testMembers(ms []member) []member {
	reports := make([]*report.Report, len(ms))
	errs := make([]error, len(ms))
	workers := r.ctl.Parallelism
	if workers > len(ms) {
		workers = len(ms)
	}
	if workers <= 1 {
		for i, m := range ms {
			reports[i], errs[i] = m.node.TestUpgrade(r.up)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					reports[i], errs[i] = ms[i].node.TestUpgrade(r.up)
				}
			}()
		}
		for i := range ms {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Even when a node errors, every report the pool already produced is
	// deposited and booked in member order — evidence of validation work
	// performed on real machines must not be discarded. The first error
	// (in member order) halts the plan after this accounting pass.
	var failed []member
	for i, m := range ms {
		if errs[i] != nil {
			if r.err == nil {
				r.err = fmt.Errorf("deploy: testing %s on %s: %w", r.up.ID, m.node.Name(), errs[i])
			}
			continue
		}
		rep := reports[i]
		rep.Cluster = m.cluster
		r.ctl.URR.Deposit(rep)
		st := r.out.Nodes[m.node.Name()]
		st.Tests++
		if !rep.Success {
			st.Failures++
			r.out.Overhead++
			r.clean[m.cluster] = false
			failed = append(failed, m)
			continue
		}
		if err := r.ctl.integrate(m.node, r.up, r.out); err != nil {
			if r.err == nil {
				r.err = err
			}
		}
	}
	return failed
}

// notifyFinal brings nodes that integrated a superseded version up to the
// final corrected upgrade. Each such node re-validates before integrating;
// the re-validations run on the same worker pool as wave testing. Nodes
// that fail the final version keep their earlier working upgrade.
func (ctl *Controller) notifyFinal(final *pkgmgr.Upgrade, clusters []*Cluster, out *Outcome) error {
	var ms []member
	for _, c := range clusters {
		for _, n := range append(append([]Node(nil), c.Representatives...), c.Others...) {
			st := out.Nodes[n.Name()]
			if st.UpgradeID == "" || st.UpgradeID == final.ID {
				continue
			}
			ms = append(ms, member{n, c.ID})
		}
	}
	if len(ms) == 0 {
		return nil
	}
	r := &waveRunner{ctl: ctl, up: final, out: out, clean: make(map[string]bool)}
	r.testMembers(ms)
	return r.err
}

// integrate applies the validated upgrade on the node. FinalID advances
// here — when a version actually reaches a node — so that on abandonment
// the outcome names the last version that deployed, never a fix that no
// node integrated.
func (ctl *Controller) integrate(n Node, up *pkgmgr.Upgrade, out *Outcome) error {
	if err := n.Integrate(up); err != nil {
		return fmt.Errorf("deploy: integrating %s on %s: %w", up.ID, n.Name(), err)
	}
	out.Nodes[n.Name()].UpgradeID = up.ID
	out.FinalID = up.ID
	return nil
}
