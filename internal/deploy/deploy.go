// Package deploy implements Mirage's deployment subsystem over real
// (simulated) machines: the three abstractions of §3.2.1 — clusters of
// deployment, representatives, and vendor-to-cluster distance — plus a
// controller that executes staged deployment protocols end to end,
// coordinating user-machine testing and reporting.
//
// The simulator package answers "what latency/overhead would a protocol
// have at scale"; this package actually performs deployments: nodes
// download upgrades, validate them in isolation, deposit reports in the
// URR, and integrate on success, while the vendor debugs reported failures
// and re-releases corrected upgrades.
package deploy

import (
	"fmt"
	"sort"

	"repro/internal/pkgmgr"
	"repro/internal/report"
)

// Node is one managed user machine.
type Node interface {
	// Name identifies the machine.
	Name() string
	// TestUpgrade downloads the upgrade, validates it in an isolated
	// environment, and returns the resulting report (not yet deposited).
	TestUpgrade(up *pkgmgr.Upgrade) (*report.Report, error)
	// Integrate applies the upgrade to the production system. Called only
	// after the node's own validation succeeded.
	Integrate(up *pkgmgr.Upgrade) error
}

// Cluster is a cluster of deployment: representatives test first.
type Cluster struct {
	ID              string
	Distance        int
	Representatives []Node
	Others          []Node
}

// Size returns the total number of nodes.
func (c *Cluster) Size() int { return len(c.Representatives) + len(c.Others) }

// Fixer is the vendor's debugging loop: given the failure reports for an
// upgrade, it returns a corrected upgrade. ok=false means the vendor could
// not produce a fix and deployment of the upgrade is abandoned.
type Fixer func(up *pkgmgr.Upgrade, failures []*report.Report) (fixed *pkgmgr.Upgrade, ok bool)

// Policy selects the staged deployment protocol.
type Policy int

const (
	// PolicyBalanced deploys nearest cluster first, representatives before
	// non-representatives (paper §4.3, "Balanced").
	PolicyBalanced Policy = iota
	// PolicyFrontLoading tests all representatives in parallel and debugs
	// everything up front, then deploys non-representatives farthest
	// cluster first (paper §4.3, "FrontLoading").
	PolicyFrontLoading
	// PolicyNoStaging deploys to every node at once; for urgent upgrades.
	PolicyNoStaging
	// PolicyRandomStaging is Balanced with a randomized cluster order; the
	// paper uses it to isolate the benefit of staging from that of
	// distance-based ordering. Seeded deterministically via Controller.Seed.
	PolicyRandomStaging
)

func (p Policy) String() string {
	switch p {
	case PolicyBalanced:
		return "Balanced"
	case PolicyFrontLoading:
		return "FrontLoading"
	case PolicyNoStaging:
		return "NoStaging"
	case PolicyRandomStaging:
		return "RandomStaging"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// NodeStatus records the final state of one node.
type NodeStatus struct {
	Node      string
	Cluster   string
	UpgradeID string // the upgrade version the node integrated ("" if none)
	Tests     int    // validation runs performed on this node
	Failures  int    // validation runs that failed
}

// Outcome summarises a deployment.
type Outcome struct {
	Policy    Policy
	FinalID   string // ID of the upgrade version that ultimately deployed
	Rounds    int    // vendor debugging rounds
	Overhead  int    // nodes that tested a faulty upgrade (paper's metric)
	Nodes     map[string]*NodeStatus
	Abandoned bool // vendor gave up fixing
}

// Integrated counts nodes that integrated some version of the upgrade.
func (o *Outcome) Integrated() int {
	n := 0
	for _, st := range o.Nodes {
		if st.UpgradeID != "" {
			n++
		}
	}
	return n
}

// Controller executes deployments.
type Controller struct {
	URR *report.URR
	Fix Fixer
	// MaxRounds bounds vendor debugging iterations (default 10).
	MaxRounds int
	// Seed drives the PolicyRandomStaging shuffle, for reproducibility.
	Seed uint64
}

// NewController returns a controller depositing into urr and debugging
// with fix.
func NewController(urr *report.URR, fix Fixer) *Controller {
	return &Controller{URR: urr, Fix: fix, MaxRounds: 10}
}

// Deploy runs the upgrade across the clusters under the given policy and
// returns the outcome. Urgent upgrades bypass staging regardless of policy,
// as the paper allows ("it may bypass the entire cluster infrastructure").
func (ctl *Controller) Deploy(policy Policy, up *pkgmgr.Upgrade, clusters []*Cluster) (*Outcome, error) {
	out := &Outcome{Policy: policy, Nodes: make(map[string]*NodeStatus)}
	for _, c := range clusters {
		for _, n := range append(append([]Node(nil), c.Representatives...), c.Others...) {
			out.Nodes[n.Name()] = &NodeStatus{Node: n.Name(), Cluster: c.ID}
		}
	}
	if up.Urgent {
		policy = PolicyNoStaging
		out.Policy = PolicyNoStaging
	}

	var final *pkgmgr.Upgrade
	var err error
	switch policy {
	case PolicyNoStaging:
		final, err = ctl.deployNoStaging(up, clusters, out)
	case PolicyFrontLoading:
		final, err = ctl.deployFrontLoading(up, clusters, out)
	case PolicyRandomStaging:
		final, err = ctl.deployRandom(up, clusters, out)
	default:
		final, err = ctl.deployBalanced(up, clusters, out)
	}
	if err != nil || out.Abandoned {
		return out, err
	}
	// Nodes that integrated an earlier version of the upgrade before a
	// problem elsewhere forced a correction are "later notified of a new
	// upgrade fixing the problems" (§4.3): validate and integrate the
	// final version on them now.
	err = ctl.notifyFinal(final, clusters, out)
	return out, err
}

// notifyFinal brings nodes that integrated a superseded version up to the
// final corrected upgrade. Each such node re-validates before integrating.
func (ctl *Controller) notifyFinal(final *pkgmgr.Upgrade, clusters []*Cluster, out *Outcome) error {
	for _, c := range clusters {
		for _, n := range append(append([]Node(nil), c.Representatives...), c.Others...) {
			st := out.Nodes[n.Name()]
			if st.UpgradeID == "" || st.UpgradeID == final.ID {
				continue
			}
			ok, err := ctl.testNode(n, c.ID, final, out)
			if err != nil {
				return err
			}
			if ok {
				if err := ctl.integrate(n, final, out); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// testNode validates up on node n, deposits the report, updates bookkeeping
// and returns whether validation passed.
func (ctl *Controller) testNode(n Node, cluster string, up *pkgmgr.Upgrade, out *Outcome) (bool, error) {
	rep, err := n.TestUpgrade(up)
	if err != nil {
		return false, fmt.Errorf("deploy: testing %s on %s: %w", up.ID, n.Name(), err)
	}
	rep.Cluster = cluster
	ctl.URR.Deposit(rep)
	st := out.Nodes[n.Name()]
	st.Tests++
	if !rep.Success {
		st.Failures++
		out.Overhead++
		return false, nil
	}
	return true, nil
}

// integrate applies the validated upgrade on the node.
func (ctl *Controller) integrate(n Node, up *pkgmgr.Upgrade, out *Outcome) error {
	if err := n.Integrate(up); err != nil {
		return fmt.Errorf("deploy: integrating %s on %s: %w", up.ID, n.Name(), err)
	}
	out.Nodes[n.Name()].UpgradeID = up.ID
	return nil
}

// debug invokes the vendor fixer on the current failures and returns the
// corrected upgrade, or ok=false when the vendor gives up or rounds are
// exhausted.
func (ctl *Controller) debug(up *pkgmgr.Upgrade, out *Outcome) (*pkgmgr.Upgrade, bool) {
	max := ctl.MaxRounds
	if max == 0 {
		max = 10
	}
	if out.Rounds >= max || ctl.Fix == nil {
		out.Abandoned = true
		return nil, false
	}
	out.Rounds++
	fixed, ok := ctl.Fix(up, ctl.URR.Failures(up.ID))
	if !ok {
		out.Abandoned = true
		return nil, false
	}
	return fixed, true
}

// testGroup tests the upgrade on every node of the group; nodes that pass
// integrate immediately. It returns the names of failing nodes.
func (ctl *Controller) testGroup(nodes []Node, cluster string, up *pkgmgr.Upgrade, out *Outcome) ([]Node, error) {
	var failed []Node
	for _, n := range nodes {
		ok, err := ctl.testNode(n, cluster, up, out)
		if err != nil {
			return nil, err
		}
		if !ok {
			failed = append(failed, n)
			continue
		}
		if err := ctl.integrate(n, up, out); err != nil {
			return nil, err
		}
	}
	return failed, nil
}

// convergeGroup repeatedly tests-and-debugs until every node of the group
// passes, the vendor abandons the upgrade, or an error occurs. It returns
// the (possibly corrected) upgrade in force afterwards.
func (ctl *Controller) convergeGroup(nodes []Node, cluster string, up *pkgmgr.Upgrade, out *Outcome) (*pkgmgr.Upgrade, error) {
	pending := nodes
	for len(pending) > 0 {
		failed, err := ctl.testGroup(pending, cluster, up, out)
		if err != nil {
			return up, err
		}
		if len(failed) == 0 {
			break
		}
		fixed, ok := ctl.debug(up, out)
		if !ok {
			return up, nil
		}
		up = fixed
		pending = failed
	}
	return up, nil
}

func byDistance(clusters []*Cluster, descending bool) []*Cluster {
	out := append([]*Cluster(nil), clusters...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			if descending {
				return out[i].Distance > out[j].Distance
			}
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (ctl *Controller) deployNoStaging(up *pkgmgr.Upgrade, clusters []*Cluster, out *Outcome) (*pkgmgr.Upgrade, error) {
	out.FinalID = up.ID
	for _, c := range byDistance(clusters, false) {
		all := append(append([]Node(nil), c.Representatives...), c.Others...)
		final, err := ctl.convergeGroup(all, c.ID, up, out)
		if err != nil {
			return up, err
		}
		if out.Abandoned {
			return up, nil
		}
		up = final
		out.FinalID = up.ID
	}
	return up, nil
}

func (ctl *Controller) deployBalanced(up *pkgmgr.Upgrade, clusters []*Cluster, out *Outcome) (*pkgmgr.Upgrade, error) {
	out.FinalID = up.ID
	for _, c := range byDistance(clusters, false) {
		// Representatives first, then the rest of the cluster.
		final, err := ctl.convergeGroup(c.Representatives, c.ID, up, out)
		if err != nil {
			return up, err
		}
		if out.Abandoned {
			return up, nil
		}
		final, err = ctl.convergeGroup(c.Others, c.ID, final, out)
		if err != nil {
			return up, err
		}
		if out.Abandoned {
			return up, nil
		}
		up = final
		out.FinalID = up.ID
	}
	return up, nil
}

// deployRandom is Balanced over a deterministically shuffled order.
func (ctl *Controller) deployRandom(up *pkgmgr.Upgrade, clusters []*Cluster, out *Outcome) (*pkgmgr.Upgrade, error) {
	order := byDistance(clusters, false)
	state := ctl.Seed
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := len(order) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	out.FinalID = up.ID
	for _, c := range order {
		final, err := ctl.convergeGroup(c.Representatives, c.ID, up, out)
		if err != nil {
			return up, err
		}
		if out.Abandoned {
			return up, nil
		}
		final, err = ctl.convergeGroup(c.Others, c.ID, final, out)
		if err != nil {
			return up, err
		}
		if out.Abandoned {
			return up, nil
		}
		up = final
		out.FinalID = up.ID
	}
	return up, nil
}

func (ctl *Controller) deployFrontLoading(up *pkgmgr.Upgrade, clusters []*Cluster, out *Outcome) (*pkgmgr.Upgrade, error) {
	out.FinalID = up.ID
	order := byDistance(clusters, true)

	// Phase 1: all representatives of all clusters, repeatedly, until no
	// representative reports a problem.
	for {
		anyFailed := false
		for _, c := range order {
			failed, err := ctl.testGroup(c.Representatives, c.ID, up, out)
			if err != nil {
				return up, err
			}
			if len(failed) > 0 {
				anyFailed = true
			}
		}
		if !anyFailed {
			break
		}
		fixed, ok := ctl.debug(up, out)
		if !ok {
			return up, nil
		}
		up = fixed
		out.FinalID = up.ID
	}

	// Phase 2: non-representatives, one cluster at a time, most dissimilar
	// first. Problems here mean imperfect clustering or testing; they are
	// debugged before moving on.
	for _, c := range order {
		final, err := ctl.convergeGroup(c.Others, c.ID, up, out)
		if err != nil {
			return up, err
		}
		if out.Abandoned {
			return up, nil
		}
		up = final
		out.FinalID = up.ID
	}
	return up, nil
}
