package deploy

import (
	"context"
	"fmt"
	"time"

	"repro/internal/pkgmgr"
	"repro/internal/telemetry"
)

// RollbackOutcome summarises a rollback pass.
type RollbackOutcome struct {
	// BaselineID is the version the fleet was driven back to.
	BaselineID string
	// Reverted lists (in cluster/node order) the members restored to the
	// baseline, including members a resume cursor reported already done.
	Reverted []string
	// Skipped maps member name to the reason it was left behind —
	// quarantined members and members whose transient-retry budget
	// exhausted mid-revert. A skipped member never blocks completion.
	Skipped map[string]string
	// Transfer is the wire traffic the rollback itself caused, when the
	// controller has a Transfer source configured.
	Transfer TransferStats
}

// Rollback drives every member that integrated some version of the
// abandoned upgrade back to the baseline, through the same chunk
// machinery in reverse — the agents' self-seeded caches still hold the
// baseline's chunks, so the reverse manifests resolve nearly for free.
//
// Write-ahead discipline mirrors the forward path: EventRollbackStarted
// must be durable before the first member reverts, every revert is
// journaled after it lands (so a crash re-reverts at most the one member
// in flight — integration of the baseline is idempotent), and members
// already recorded by a resume (done) are never touched again. A
// quarantined or unreachable member is skipped with a journaled reason
// rather than blocking completion; EventRollbackCompleted seals the pass.
func (ctl *Controller) Rollback(ctx context.Context, baseline *pkgmgr.Upgrade, clusters []*Cluster, out *Outcome, done map[string]bool) (*RollbackOutcome, error) {
	ro := &RollbackOutcome{BaselineID: baseline.ID, Skipped: map[string]string{}}
	emit := func(ev Event) error {
		if ctl.Observer == nil {
			return nil
		}
		if err := ctl.Observer.OnEvent(ev); err != nil {
			return fmt.Errorf("deploy: rollback observer: %w", err)
		}
		return nil
	}
	var before TransferStats
	if ctl.Transfer != nil {
		before = ctl.Transfer()
	}
	if err := emit(Event{Type: EventRollbackStarted, Stage: -1,
		UpgradeID: baseline.ID, PrevID: out.FinalID}); err != nil {
		return nil, err
	}
	if ctl.RollbackMode != nil {
		ctl.RollbackMode(true)
		defer ctl.RollbackMode(false)
	}
	for _, c := range clusters {
		for _, n := range append(append([]Node(nil), c.Representatives...), c.Others...) {
			name := n.Name()
			st := out.Nodes[name]
			if done[name] {
				// A previous run already journaled this member's revert
				// (a resumed cursor may even have folded it back to the
				// baseline already); reflect it in the outcome without
				// touching the machine again.
				if st != nil {
					st.UpgradeID = baseline.ID
				}
				ro.Reverted = append(ro.Reverted, name)
				continue
			}
			if st == nil || st.UpgradeID == "" || st.UpgradeID == baseline.ID {
				continue // never left the baseline: nothing to undo
			}
			if st.Quarantined {
				ro.Skipped[name] = "quarantined"
				if err := emit(Event{Type: EventRollbackSkipped, Stage: -1, Node: name,
					Cluster: c.ID, UpgradeID: baseline.ID, Reason: "quarantined"}); err != nil {
					return nil, err
				}
				continue
			}
			sctx, end := telemetry.StartSpan(ctx, "rollback", name, name)
			endTimer := ctl.memberHist().With("rollback").Time()
			err := ctl.retryTransient(sctx, name, func(ctx context.Context) error {
				t0 := time.Now()
				if err := ctl.Budget.Acquire(ctx); err != nil {
					return err
				}
				ctl.budgetHist().With("rollback").ObserveSince(t0)
				defer ctl.Budget.Release()
				return n.Integrate(ctx, baseline)
			})
			endTimer()
			end(err)
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err() // abort: resumable from the journal
				}
				if !IsTransient(err) {
					return nil, fmt.Errorf("deploy: rolling back %s to %s: %w", name, baseline.ID, err)
				}
				// Unreachable through the whole retry budget: leave it
				// behind (journaled) so the fleet's rollback completes.
				st.Quarantined = true
				ro.Skipped[name] = err.Error()
				if err := emit(Event{Type: EventRollbackSkipped, Stage: -1, Node: name,
					Cluster: c.ID, UpgradeID: baseline.ID, Reason: err.Error()}); err != nil {
					return nil, err
				}
				continue
			}
			prev := st.UpgradeID
			st.UpgradeID = baseline.ID
			ro.Reverted = append(ro.Reverted, name)
			if err := emit(Event{Type: EventRolledBack, Stage: -1, Node: name,
				Cluster: c.ID, UpgradeID: baseline.ID, PrevID: prev}); err != nil {
				return nil, err
			}
		}
	}
	if err := emit(Event{Type: EventRollbackCompleted, Stage: -1, UpgradeID: baseline.ID}); err != nil {
		return nil, err
	}
	if ctl.Transfer != nil {
		ro.Transfer = ctl.Transfer().Sub(before)
		out.Transfer = out.Transfer.Add(ro.Transfer)
	}
	out.RolledBack = true
	out.Rollback = ro
	return ro, nil
}
