package deploy

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/pkgmgr"
	"repro/internal/report"
)

// flakyNode fails with a transient error for the first failTests
// validations and failInts integrations, then behaves like its fakeNode.
type flakyNode struct {
	fakeNode
	failTests, failInts int
}

func (n *flakyNode) TestUpgrade(ctx context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	if n.failTests > 0 {
		n.failTests--
		return nil, fmt.Errorf("dial tcp 10.0.0.1: %w", ErrTransient)
	}
	return n.fakeNode.TestUpgrade(ctx, up)
}

func (n *flakyNode) Integrate(ctx context.Context, up *pkgmgr.Upgrade) error {
	if n.failInts > 0 {
		n.failInts--
		return fmt.Errorf("dial tcp 10.0.0.1: %w", ErrTransient)
	}
	return n.fakeNode.Integrate(ctx, up)
}

// captureObs records events and can simulate a journal that fails after a
// budget of appends.
type captureObs struct {
	events    []Event
	failAfter int // 0 = never fail
}

func (c *captureObs) OnEvent(ev Event) error {
	if c.failAfter > 0 && len(c.events) >= c.failAfter {
		return errors.New("journal disk full")
	}
	c.events = append(c.events, ev)
	return nil
}

// fastRetry makes retry backoff instant and counts the pauses.
func fastRetry(ctl *Controller) *int {
	n := new(int)
	ctl.RetryBackoff = time.Nanosecond
	ctl.Sleep = func(time.Duration) { *n++ }
	return n
}

func TestTransientTestErrorRetriedInPlace(t *testing.T) {
	flaky := &flakyNode{fakeNode: fakeNode{name: "flaky-rep"}, failTests: 2}
	clusters := []*Cluster{{
		ID: "c", Distance: 1,
		Representatives: []Node{flaky},
		Others:          []Node{&fakeNode{name: "c-1"}},
	}}
	ctl := NewController(report.New(), nil)
	pauses := fastRetry(ctl)
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 2 || len(out.Quarantined) != 0 {
		t.Fatalf("integrated=%d quarantined=%v", out.Integrated(), out.Quarantined)
	}
	if *pauses < 2 {
		t.Fatalf("retries did not back off (%d pauses)", *pauses)
	}
	// The transient hiccups are invisible to the outcome: one clean test.
	if st := out.Nodes["flaky-rep"]; st.Tests != 1 || st.Failures != 0 {
		t.Fatalf("flaky-rep status = %+v", st)
	}
}

func TestTransientIntegrateErrorRetriedInPlace(t *testing.T) {
	flaky := &flakyNode{fakeNode: fakeNode{name: "flaky"}, failInts: 2}
	clusters := []*Cluster{{ID: "c", Distance: 1, Representatives: []Node{flaky}}}
	ctl := NewController(report.New(), nil)
	fastRetry(ctl)
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 1 || len(out.Quarantined) != 0 {
		t.Fatalf("integrated=%d quarantined=%v", out.Integrated(), out.Quarantined)
	}
	if got := flaky.integrated; len(got) != 1 || got[0] != "v1" {
		t.Fatalf("integrations = %v", got)
	}
}

func TestPersistentlyUnreachableMemberQuarantined(t *testing.T) {
	dead := &flakyNode{fakeNode: fakeNode{name: "near-1"}, failTests: 1 << 30}
	clusters := []*Cluster{
		{ID: "near", Distance: 1,
			Representatives: []Node{&fakeNode{name: "near-rep"}},
			Others:          []Node{dead, &fakeNode{name: "near-2"}}},
		{ID: "far", Distance: 9,
			Representatives: []Node{&fakeNode{name: "far-rep"}},
			Others:          []Node{&fakeNode{name: "far-1"}}},
	}
	ctl := NewController(report.New(), nil)
	fastRetry(ctl)
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	// The wave converged without the dead member; everyone else upgraded.
	if out.Integrated() != 4 {
		t.Fatalf("integrated = %d, want 4", out.Integrated())
	}
	if len(out.Quarantined) != 1 || out.Quarantined[0] != "near-1" {
		t.Fatalf("quarantined = %v", out.Quarantined)
	}
	st := out.Nodes["near-1"]
	if !st.Quarantined || st.UpgradeID != "" || st.Tests != 0 {
		t.Fatalf("near-1 status = %+v", st)
	}
}

func TestQuarantinedRepIsGateFailureNotPass(t *testing.T) {
	// Under PolicyAdaptive a cluster whose representatives pass clean has
	// its non-representatives promoted past the barrier (they run in the
	// merged post-plan wave, stage -1). A quarantined representative must
	// count as a failure: its cluster stays unpromoted.
	deadRep := &flakyNode{fakeNode: fakeNode{name: "near-rep"}, failTests: 1 << 30}
	clusters := []*Cluster{
		{ID: "near", Distance: 1,
			Representatives: []Node{deadRep},
			Others:          []Node{&fakeNode{name: "near-1"}}},
		{ID: "far", Distance: 9,
			Representatives: []Node{&fakeNode{name: "far-rep"}},
			Others:          []Node{&fakeNode{name: "far-1"}}},
	}
	ctl := NewController(report.New(), nil)
	fastRetry(ctl)
	obs := &captureObs{}
	ctl.Observer = obs
	out, err := ctl.Deploy(context.Background(), PolicyAdaptive, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 3 || len(out.Quarantined) != 1 {
		t.Fatalf("integrated=%d quarantined=%v", out.Integrated(), out.Quarantined)
	}
	stageOf := make(map[string]int)
	for _, ev := range obs.events {
		if ev.Type == EventTested {
			stageOf[ev.Node] = ev.Stage
		}
	}
	// far's reps passed clean: far-1 was promoted into the post-plan wave.
	if got := stageOf["far-1"]; got != -1 {
		t.Fatalf("far-1 tested at stage %d, want promoted (-1)", got)
	}
	// near's rep was quarantined: near-1 must NOT have been promoted.
	if got := stageOf["near-1"]; got < 0 {
		t.Fatalf("near-1 was promoted past a quarantined representative (stage %d)", got)
	}
}

func TestObserverWriteFailureHaltsPlan(t *testing.T) {
	clusters := twoClusters(nil)
	ctl := NewController(report.New(), nil)
	obs := &captureObs{failAfter: 5}
	ctl.Observer = obs
	_, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err == nil {
		t.Fatal("deployment outran a failing journal")
	}
	if !strings.Contains(err.Error(), "recording state transition") {
		t.Fatalf("err = %v", err)
	}
}

func TestCursorResumesPromotedWaveMembers(t *testing.T) {
	// Adaptive crash window: a cluster's reps passed clean, its elastic
	// others-stage gated with the wave promoted to the end of the plan,
	// then the vendor died before the promoted flush. Resuming must still
	// deliver the upgrade to the promoted members — a gated elastic stage
	// may owe work.
	clusters := twoClusters(nil)
	ctl := NewController(report.New(), nil)
	// Plan: stage0 near/reps, stage1 near/others (elastic), stage2
	// far/reps, stage3 far/others (elastic). The journal gated stages 0-1
	// with only the near rep integrated: near's others were promoted, not
	// run.
	ctl.Cursor = &Cursor{
		DoneStages: 2,
		FinalID:    "v1",
		Integrated: map[string]string{"near-rep": "v1"},
	}
	out, err := ctl.Deploy(context.Background(), PolicyAdaptive, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 6 {
		t.Fatalf("integrated = %d, want 6 — promoted members lost on resume", out.Integrated())
	}
	for _, name := range []string{"near-1", "near-2"} {
		st := out.Nodes[name]
		if st.UpgradeID != "v1" || st.Tests != 1 {
			t.Fatalf("%s = %+v, want tested once and integrated", name, st)
		}
	}
}

func TestCursorSkipsCompletedStagesAndMembers(t *testing.T) {
	clusters := twoClusters(nil)
	// The journal of the interrupted run: both near stages gated (stages 0
	// and 1), far-rep already integrated mid-stage-2.
	ctl := NewController(report.New(), nil)
	ctl.Cursor = &Cursor{
		DoneStages: 2,
		Integrated: map[string]string{
			"near-rep": "v1", "near-1": "v1", "near-2": "v1", "far-rep": "v1",
		},
	}
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 6 {
		t.Fatalf("integrated = %d", out.Integrated())
	}
	// Members the cursor records as integrated were not re-tested.
	for _, c := range clusters {
		for _, n := range append(append([]Node(nil), c.Representatives...), c.Others...) {
			fn := n.(*fakeNode)
			wantTests := 0
			if fn.name == "far-1" || fn.name == "far-2" {
				wantTests = 1 // the only members with work left
			}
			if fn.tests != wantTests {
				t.Fatalf("%s tested %d times, want %d", fn.name, fn.tests, wantTests)
			}
		}
	}
}
