package deploy

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/staging"
)

// gate returns an enabled canary gate policy.
func gate(baseline, excess float64, minSamples int) staging.GatePolicy {
	return staging.GatePolicy{Enabled: true, BaselineFailureRate: baseline,
		MaxExcessRate: excess, MinSamples: minSamples}
}

// oneCluster builds a single cluster with one representative and the
// named others, returning the nodes by name for later inspection.
func oneCluster(others []string, badNodes map[string]map[string]string) ([]*Cluster, map[string]*fakeNode) {
	nodes := map[string]*fakeNode{}
	mk := func(name string) *fakeNode {
		n := &fakeNode{name: name, failOn: badNodes[name]}
		nodes[name] = n
		return n
	}
	c := &Cluster{ID: "c0", Distance: 1, Representatives: []Node{mk("rep")}}
	for _, name := range others {
		c.Others = append(c.Others, mk(name))
	}
	return []*Cluster{c}, nodes
}

// TestCanaryGateToleratesFailures: failures inside the tolerated excess
// do not send the vendor debugging — the gate passes, passing members
// integrate, and the failing members stay on version N unharmed (not
// integrated, not quarantined).
func TestCanaryGateToleratesFailures(t *testing.T) {
	bad := map[string]map[string]string{
		"m-1": {"v1": "crash"},
		"m-2": {"v1": "crash"},
	}
	clusters, nodes := oneCluster([]string{"m-1", "m-2", "m-3", "m-4", "m-5", "m-6"}, bad)
	ctl := NewController(report.New(), nil)
	ctl.Gate = gate(0.5, 0, 6) // up to half the fleet may fail
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Abandoned {
		t.Fatalf("abandoned under a gate tolerating 50%%: %+v", out)
	}
	if out.FinalID != "v1" {
		t.Fatalf("final = %q", out.FinalID)
	}
	for _, name := range []string{"m-1", "m-2"} {
		if len(nodes[name].integrated) != 0 {
			t.Fatalf("%s integrated %v despite failing validation", name, nodes[name].integrated)
		}
		st := out.Nodes[name]
		if st.UpgradeID != "" || st.Quarantined {
			t.Fatalf("%s status = %+v, want untouched on version N", name, st)
		}
	}
	for _, name := range []string{"rep", "m-3", "m-4", "m-5", "m-6"} {
		if got := out.Nodes[name].UpgradeID; got != "v1" {
			t.Fatalf("%s integrated %q, want v1", name, got)
		}
	}
}

// TestCanaryGateFailureDebugsAndResets: a failure rate beyond the
// threshold sends the vendor debugging, and the corrected version runs a
// fresh canary — the old samples must not poison the new version's gate.
func TestCanaryGateFailureDebugsAndResets(t *testing.T) {
	bad := map[string]map[string]string{
		"m-1": {"v1": "crash"},
		"m-2": {"v1": "crash"},
	}
	clusters, _ := oneCluster([]string{"m-1", "m-2", "m-3", "m-4"}, bad)
	ctl := NewController(report.New(), fixerChain(t, map[string]string{"v1": "v2"}))
	ctl.Gate = gate(0, 0.2, 4) // half the wave failing is far beyond tolerance
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Abandoned || out.FinalID != "v2" || out.Rounds != 1 {
		t.Fatalf("outcome = %+v, want corrected v2 after one debug round", out)
	}
	for name, st := range out.Nodes {
		if st.UpgradeID != "v2" {
			t.Fatalf("%s finished on %q, want v2", name, st.UpgradeID)
		}
	}
}

// TestCanaryGateAbandonsWhenUnfixable: gate failure with no fixer
// abandons the rollout like binary gating does.
func TestCanaryGateAbandonsWhenUnfixable(t *testing.T) {
	bad := map[string]map[string]string{"m-1": {"v1": "crash"}, "m-2": {"v1": "crash"}}
	clusters, _ := oneCluster([]string{"m-1", "m-2", "m-3"}, bad)
	ctl := NewController(report.New(), nil)
	ctl.Gate = gate(0, 0.1, 3)
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned {
		t.Fatalf("outcome = %+v, want abandoned", out)
	}
}

// eventLog records every observed event type in order.
type eventLog struct{ types []EventType }

func (l *eventLog) OnEvent(ev Event) error {
	l.types = append(l.types, ev.Type)
	return nil
}

// TestRollbackRevertsIntegratedMembers: after an abandoned rollout,
// Rollback drives exactly the members that integrated back to the
// baseline via their normal Integrate path, and books the outcome.
func TestRollbackRevertsIntegratedMembers(t *testing.T) {
	// far cluster all fails v1 with no fix: near cluster integrates v1
	// (its stages run first), then the rollout is abandoned.
	bad := map[string]map[string]string{
		"far-rep": {"v1": "crash"}, "far-1": {"v1": "crash"}, "far-2": {"v1": "crash"},
	}
	clusters := twoClusters(bad)
	ctl := NewController(report.New(), nil)
	log := &eventLog{}
	ctl.Observer = log
	out, err := ctl.Deploy(context.Background(), PolicyBalanced, up("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned {
		t.Fatalf("outcome = %+v, want abandoned", out)
	}
	var integrated []string
	for name, st := range out.Nodes {
		if st.UpgradeID != "" {
			integrated = append(integrated, name)
		}
	}
	sort.Strings(integrated)
	if len(integrated) == 0 {
		t.Fatal("nothing integrated before abandonment; the test is vacuous")
	}

	rollbackOn := 0
	ctl.RollbackMode = func(on bool) {
		if on {
			rollbackOn++
		}
	}
	ro, err := ctl.Rollback(context.Background(), up("v0"), clusters, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rollbackOn != 1 {
		t.Fatalf("RollbackMode flipped on %d times, want 1", rollbackOn)
	}
	if got := append([]string(nil), ro.Reverted...); !equalStrings(sorted(got), integrated) {
		t.Fatalf("reverted %v, want %v", got, integrated)
	}
	if !out.RolledBack || out.Rollback != ro || ro.BaselineID != "v0" {
		t.Fatalf("rollback bookkeeping: %+v", ro)
	}
	for _, name := range integrated {
		st := out.Nodes[name]
		if st.UpgradeID != "v0" {
			t.Fatalf("%s left on %q after rollback", name, st.UpgradeID)
		}
		n := nodeByName(clusters, name).(*fakeNode)
		if last := n.integrated[len(n.integrated)-1]; last != "v0" {
			t.Fatalf("%s last integrate was %q, want baseline v0", name, last)
		}
	}
	// Observer saw the rollback lifecycle in order: started, per-member
	// reverts, completed.
	var seq []EventType
	for _, et := range log.types {
		switch et {
		case EventRollbackStarted, EventRolledBack, EventRollbackSkipped, EventRollbackCompleted:
			seq = append(seq, et)
		}
	}
	if len(seq) < 3 || seq[0] != EventRollbackStarted || seq[len(seq)-1] != EventRollbackCompleted {
		t.Fatalf("rollback event sequence = %v", seq)
	}
}

// brokenIntegrateNode integrates fine during the rollout and fails with
// a transient error forever after arm() — a member that died between
// the abandonment and the rollback.
type brokenIntegrateNode struct {
	fakeNode
	broken bool
}

func (b *brokenIntegrateNode) Integrate(ctx context.Context, u *pkgmgr.Upgrade) error {
	if b.broken {
		return fmt.Errorf("dial %s: %w", b.name, ErrTransient)
	}
	return b.fakeNode.Integrate(ctx, u)
}

// TestRollbackSkipsUnreachableAndQuarantined: a member that cannot be
// reverted is skipped with a journaled reason and quarantined — it must
// never block rollback completion — and an already-quarantined member is
// not even attempted.
func TestRollbackSkipsUnreachableAndQuarantined(t *testing.T) {
	dead := &brokenIntegrateNode{fakeNode: fakeNode{name: "near-1"}, broken: true}
	rep := &fakeNode{name: "near-rep"}
	okNode := &fakeNode{name: "near-2"}
	qNode := &fakeNode{name: "near-3"}
	clusters := []*Cluster{{ID: "near", Distance: 1,
		Representatives: []Node{rep},
		Others:          []Node{dead, okNode, qNode}}}
	// Synthesized abandoned outcome: everyone integrated v1, near-3 was
	// quarantined along the way.
	out := &Outcome{FinalID: "v1", Abandoned: true, Nodes: map[string]*NodeStatus{
		"near-rep": {Node: "near-rep", Cluster: "near", UpgradeID: "v1"},
		"near-1":   {Node: "near-1", Cluster: "near", UpgradeID: "v1"},
		"near-2":   {Node: "near-2", Cluster: "near", UpgradeID: "v1"},
		"near-3":   {Node: "near-3", Cluster: "near", UpgradeID: "v1", Quarantined: true},
	}}
	ctl := NewController(report.New(), nil)
	ctl.Sleep = func(time.Duration) {}
	ctl.TransientRetries = 1
	ro, err := ctl.Rollback(context.Background(), up("v0"), clusters, out, nil)
	if err != nil {
		t.Fatalf("an unreachable member must not block rollback completion: %v", err)
	}
	if !equalStrings(sorted(append([]string(nil), ro.Reverted...)), []string{"near-2", "near-rep"}) {
		t.Fatalf("reverted = %v", ro.Reverted)
	}
	if _, hit := ro.Skipped["near-1"]; !hit {
		t.Fatalf("unreachable near-1 missing from skips: %v", ro.Skipped)
	}
	if reason := ro.Skipped["near-3"]; reason != "quarantined" {
		t.Fatalf("near-3 skip reason = %q", reason)
	}
	if len(dead.integrated) != 0 {
		t.Fatalf("unreachable member was integrated: %v", dead.integrated)
	}
	if !out.Nodes["near-1"].Quarantined {
		t.Fatal("exhausted member not quarantined in the outcome")
	}
	// A quarantined member is skipped without a single RPC attempt; the
	// reachable members were driven back to the baseline.
	if len(qNode.integrated) != 0 {
		t.Fatalf("quarantined member was touched: %v", qNode.integrated)
	}
	for _, n := range []*fakeNode{rep, okNode} {
		if len(n.integrated) != 1 || n.integrated[0] != "v0" {
			t.Fatalf("%s integrations = %v, want [v0]", n.name, n.integrated)
		}
	}
}

func sorted(s []string) []string { sort.Strings(s); return s }

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func nodeByName(clusters []*Cluster, name string) Node {
	for _, c := range clusters {
		for _, n := range append(append([]Node(nil), c.Representatives...), c.Others...) {
			if n.Name() == name {
				return n
			}
		}
	}
	return nil
}
