package deploy

import (
	"context"
	"sync/atomic"
)

// Budget is a vendor-wide weighted semaphore bounding how many member
// RPCs (test or integrate attempts) are in flight at once across every
// concurrent rollout. Per-rollout Parallelism sizes one rollout's worker
// pool; the Budget is the box-level cap that keeps ten concurrent
// rollouts from oversubscribing the vendor. It is owned by the
// orchestrator and installed on each controller it starts.
//
// A slot is held only while an RPC attempt runs — never across retry
// backoff sleeps — so a fleet of quarantining members cannot starve
// healthy rollouts. Acquisition respects the caller's context, and a
// cancelled wait surfaces ctx.Err() (non-transient), which is exactly the
// abort path the controller already handles.
//
// A nil *Budget is valid and unlimited: every method is nil-safe, so the
// controller wires calls unconditionally.
type Budget struct {
	sem chan struct{}

	inFlight  atomic.Int64
	highWater atomic.Int64
}

// NewBudget creates a budget of n concurrent member RPCs; n <= 0 returns
// nil (unlimited).
func NewBudget(n int) *Budget {
	if n <= 0 {
		return nil
	}
	return &Budget{sem: make(chan struct{}, n)}
}

// Acquire takes one slot, blocking until one frees or ctx is cancelled.
func (b *Budget) Acquire(ctx context.Context) error {
	if b == nil {
		return nil
	}
	select {
	case b.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	n := b.inFlight.Add(1)
	for {
		hw := b.highWater.Load()
		if n <= hw || b.highWater.CompareAndSwap(hw, n) {
			return nil
		}
	}
}

// Release returns a slot taken by Acquire.
func (b *Budget) Release() {
	if b == nil {
		return
	}
	b.inFlight.Add(-1)
	<-b.sem
}

// Cap returns the budget size (0 when unlimited).
func (b *Budget) Cap() int {
	if b == nil {
		return 0
	}
	return cap(b.sem)
}

// InFlight returns the number of slots currently held.
func (b *Budget) InFlight() int64 {
	if b == nil {
		return 0
	}
	return b.inFlight.Load()
}

// HighWater returns the maximum concurrently held slots ever observed —
// the number a budget-enforcement test asserts never exceeds Cap.
func (b *Budget) HighWater() int64 {
	if b == nil {
		return 0
	}
	return b.highWater.Load()
}
