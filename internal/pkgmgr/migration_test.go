package pkgmgr

import (
	"testing"

	"repro/internal/machine"
)

func migFixture(t *testing.T) (*machine.Machine, *Manager, *Package) {
	t.Helper()
	repo := NewRepository()
	p := mkpkg("mysql", "5.0.22", nil, "/usr/sbin/mysqld")
	repo.Add(p)
	m := machine.New("m")
	m.WriteFile(&machine.File{Path: "/home/user/.my.cnf", Type: machine.TypeConfig, Data: []byte("[client]\nlegacy=1\n")})
	return m, NewManager(m, repo), p
}

func TestMigrationAppend(t *testing.T) {
	m, mgr, p := migFixture(t)
	tx, err := mgr.Apply(&Upgrade{ID: "up", Pkg: p, Migrations: []FileEdit{
		{Path: "/home/user/.my.cnf", Append: []byte("# migrated-for-5\n")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := string(m.ReadFile("/home/user/.my.cnf").Data)
	if got != "[client]\nlegacy=1\n# migrated-for-5\n" {
		t.Fatalf("appended content = %q", got)
	}
	tx.Rollback()
	if got := string(m.ReadFile("/home/user/.my.cnf").Data); got != "[client]\nlegacy=1\n" {
		t.Fatalf("rollback content = %q", got)
	}
}

func TestMigrationAppendMissingFileNoop(t *testing.T) {
	m, mgr, p := migFixture(t)
	m.RemoveFile("/home/user/.my.cnf")
	if _, err := mgr.Apply(&Upgrade{ID: "up", Pkg: p, Migrations: []FileEdit{
		{Path: "/home/user/.my.cnf", Append: []byte("x")},
	}}); err != nil {
		t.Fatal(err)
	}
	if m.ReadFile("/home/user/.my.cnf") != nil {
		t.Fatal("append created a file")
	}
}

func TestMigrationSetDataCreatesAndRollsBack(t *testing.T) {
	m, mgr, p := migFixture(t)
	tx, err := mgr.Apply(&Upgrade{ID: "up", Pkg: p, Migrations: []FileEdit{
		{Path: "/etc/mysql/compat.cnf", SetData: []byte("compat=1")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if f := m.ReadFile("/etc/mysql/compat.cnf"); f == nil || string(f.Data) != "compat=1" {
		t.Fatalf("created file = %+v", f)
	}
	tx.Rollback()
	if m.ReadFile("/etc/mysql/compat.cnf") != nil {
		t.Fatal("rollback kept migration-created file")
	}
}

func TestMigrationSetDataPreservesMetadata(t *testing.T) {
	m, mgr, p := migFixture(t)
	if _, err := mgr.Apply(&Upgrade{ID: "up", Pkg: p, Migrations: []FileEdit{
		{Path: "/home/user/.my.cnf", SetData: []byte("new")},
	}}); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadFile("/home/user/.my.cnf").Type; got != machine.TypeConfig {
		t.Fatalf("type = %v", got)
	}
}

func TestMigrationRemoveAndRollback(t *testing.T) {
	m, mgr, p := migFixture(t)
	tx, err := mgr.Apply(&Upgrade{ID: "up", Pkg: p, Migrations: []FileEdit{
		{Path: "/home/user/.my.cnf", Remove: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if m.ReadFile("/home/user/.my.cnf") != nil {
		t.Fatal("file survives Remove migration")
	}
	tx.Rollback()
	if m.ReadFile("/home/user/.my.cnf") == nil {
		t.Fatal("rollback did not restore removed file")
	}
}
