package pkgmgr

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestCompareVersions(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"4.1.22", "5.0", -1},
		{"5.0", "4.1.22", 1},
		{"5.0", "5.0", 0},
		{"5.0", "5.0.1", -1},
		{"1.5.0.9", "1.5.0.10", -1},
		{"2.0", "2.0.0", 0},
		{"1.3.24", "1.3.26", -1},
		{"1.0", "1.0-beta", -1},
		{"1.0-alpha", "1.0-beta", -1},
		{"", "1", -1},
	}
	for _, c := range cases {
		if got := CompareVersions(c.a, c.b); got != c.want {
			t.Errorf("CompareVersions(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareVersionsAntisymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return CompareVersions(a, b) == -CompareVersions(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mkpkg(name, version string, deps []Dependency, paths ...string) *Package {
	p := &Package{Name: name, Version: version, Dependencies: deps}
	for _, path := range paths {
		p.Files = append(p.Files, &machine.File{
			Path: path, Type: machine.TypeExecutable,
			Data: []byte(name + "-" + version + ":" + path), Version: version,
		})
	}
	return p
}

func TestRepositoryVersions(t *testing.T) {
	r := NewRepository()
	r.Add(mkpkg("mysql", "5.0.22", nil, "/bin/mysqld"))
	r.Add(mkpkg("mysql", "4.1.22", nil, "/bin/mysqld"))
	if got := r.Latest("mysql").Version; got != "5.0.22" {
		t.Fatalf("Latest = %q", got)
	}
	if r.Get("mysql", "4.1.22") == nil {
		t.Fatal("Get missed existing version")
	}
	if r.Get("mysql", "9.9") != nil || r.Latest("nope") != nil {
		t.Fatal("phantom packages")
	}
	if got := r.Find(Dependency{Name: "mysql", MinVersion: "5.0"}).Version; got != "5.0.22" {
		t.Fatalf("Find = %q", got)
	}
	if r.Find(Dependency{Name: "mysql", MinVersion: "6.0"}) != nil {
		t.Fatal("Find satisfied impossible constraint")
	}
}

func TestInstallWithDependencies(t *testing.T) {
	repo := NewRepository()
	repo.Add(mkpkg("libmysql", "4.1", nil, "/lib/libmysql.so"))
	repo.Add(mkpkg("php", "4.4.6", []Dependency{{Name: "libmysql", MinVersion: "4.0"}}, "/bin/php"))

	m := machine.New("m")
	mgr := NewManager(m, repo)
	installed, err := mgr.Install(repo.Latest("php"))
	if err != nil {
		t.Fatal(err)
	}
	if len(installed) != 2 || installed[0].Name != "libmysql" || installed[1].Name != "php" {
		t.Fatalf("install order = %v", installed)
	}
	if m.ReadFile("/lib/libmysql.so") == nil || m.ReadFile("/bin/php") == nil {
		t.Fatal("files not written")
	}
	if _, ok := m.Package("libmysql"); !ok {
		t.Fatal("dependency not registered")
	}
}

func TestInstallSkipsSatisfiedDeps(t *testing.T) {
	repo := NewRepository()
	repo.Add(mkpkg("libmysql", "4.1", nil, "/lib/libmysql.so"))
	repo.Add(mkpkg("libmysql", "5.0", nil, "/lib/libmysql.so"))
	repo.Add(mkpkg("php", "4.4.6", []Dependency{{Name: "libmysql", MinVersion: "4.0"}}, "/bin/php"))

	m := machine.New("m")
	mgr := NewManager(m, repo)
	if _, err := mgr.Install(repo.Get("libmysql", "4.1")); err != nil {
		t.Fatal(err)
	}
	installed, err := mgr.Install(repo.Latest("php"))
	if err != nil {
		t.Fatal(err)
	}
	if len(installed) != 1 {
		t.Fatalf("re-installed satisfied dep: %v", installed)
	}
	// Crucially, libmysql stays at 4.1: the constraint is already met.
	if ref, _ := m.Package("libmysql"); ref.Version != "4.1" {
		t.Fatalf("libmysql silently upgraded to %s", ref.Version)
	}
}

func TestInstallUnsatisfiableDependency(t *testing.T) {
	repo := NewRepository()
	repo.Add(mkpkg("php", "5.0", []Dependency{{Name: "libmysql", MinVersion: "5.0"}}, "/bin/php"))
	mgr := NewManager(machine.New("m"), repo)
	_, err := mgr.Install(repo.Latest("php"))
	var depErr *DependencyError
	if !errors.As(err, &depErr) {
		t.Fatalf("err = %v, want DependencyError", err)
	}
	if depErr.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestInstallCycleDetected(t *testing.T) {
	repo := NewRepository()
	repo.Add(mkpkg("a", "1", []Dependency{{Name: "b"}}, "/a"))
	repo.Add(mkpkg("b", "1", []Dependency{{Name: "a"}}, "/b"))
	if _, err := NewManager(machine.New("m"), repo).Install(repo.Latest("a")); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestApplyUpgradeReplacesAndRemoves(t *testing.T) {
	repo := NewRepository()
	v4 := mkpkg("mysql", "4.1.22", nil, "/bin/mysqld", "/share/mysql/legacy.sql")
	v5 := mkpkg("mysql", "5.0.22", nil, "/bin/mysqld", "/share/mysql/new.sql")
	repo.Add(v4)
	repo.Add(v5)

	m := machine.New("m")
	mgr := NewManager(m, repo)
	if _, err := mgr.Install(v4); err != nil {
		t.Fatal(err)
	}
	tx, err := mgr.Apply(&Upgrade{ID: "mysql-4to5", Pkg: v5, Replaces: "4.1.22"})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(m.ReadFile("/bin/mysqld").Data); got != "mysql-5.0.22:/bin/mysqld" {
		t.Fatalf("binary not upgraded: %q", got)
	}
	if m.ReadFile("/share/mysql/legacy.sql") != nil {
		t.Fatal("obsolete file not removed")
	}
	if m.ReadFile("/share/mysql/new.sql") == nil {
		t.Fatal("new file missing")
	}
	if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
		t.Fatalf("package version = %s", ref.Version)
	}

	tx.Rollback()
	if got := string(m.ReadFile("/bin/mysqld").Data); got != "mysql-4.1.22:/bin/mysqld" {
		t.Fatalf("rollback lost binary: %q", got)
	}
	if m.ReadFile("/share/mysql/legacy.sql") == nil {
		t.Fatal("rollback lost removed file")
	}
	if m.ReadFile("/share/mysql/new.sql") != nil {
		t.Fatal("rollback kept new file")
	}
	if ref, _ := m.Package("mysql"); ref.Version != "4.1.22" {
		t.Fatalf("rollback package version = %s", ref.Version)
	}
}

func TestApplyFreshInstallRollback(t *testing.T) {
	repo := NewRepository()
	p := mkpkg("tool", "1.0", nil, "/bin/tool")
	repo.Add(p)
	m := machine.New("m")
	mgr := NewManager(m, repo)
	tx, err := mgr.Apply(&Upgrade{ID: "tool-1.0", Pkg: p})
	if err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if m.ReadFile("/bin/tool") != nil {
		t.Fatal("rollback of fresh install left files")
	}
	if _, ok := m.Package("tool"); ok {
		t.Fatal("rollback of fresh install left package record")
	}
}

func TestApplyPullsNewerDependencyBreakingOthers(t *testing.T) {
	// The broken-dependency scenario: upgrading app AZ pulls libmysql 5,
	// which AX (php, built against 4) silently depends on. The package
	// manager reports success — the breakage is runtime-only.
	repo := NewRepository()
	lib4 := mkpkg("libmysql", "4.1", nil, "/lib/libmysql.so")
	lib5 := mkpkg("libmysql", "5.0", nil, "/lib/libmysql.so")
	php := mkpkg("php", "4.4.6", []Dependency{{Name: "libmysql", MinVersion: "4.0"}}, "/bin/php")
	appz5 := mkpkg("appz", "2.0", []Dependency{{Name: "libmysql", MinVersion: "5.0"}}, "/bin/appz")
	repo.Add(lib4)
	repo.Add(lib5)
	repo.Add(php)
	repo.Add(appz5)

	m := machine.New("m")
	mgr := NewManager(m, repo)
	if _, err := mgr.Install(lib4); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Install(php); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Apply(&Upgrade{ID: "appz-2.0", Pkg: appz5}); err != nil {
		t.Fatal(err)
	}
	// libmysql is now 5.0 under php's feet.
	if ref, _ := m.Package("libmysql"); ref.Version != "5.0" {
		t.Fatalf("libmysql = %s, want 5.0", ref.Version)
	}
	if got := string(m.ReadFile("/lib/libmysql.so").Data); got != "libmysql-5.0:/lib/libmysql.so" {
		t.Fatalf("library content = %q", got)
	}
}

func TestRemove(t *testing.T) {
	repo := NewRepository()
	p := mkpkg("tool", "1.0", nil, "/bin/tool")
	repo.Add(p)
	m := machine.New("m")
	mgr := NewManager(m, repo)
	if _, err := mgr.Install(p); err != nil {
		t.Fatal(err)
	}
	if !mgr.Remove("tool") {
		t.Fatal("Remove returned false")
	}
	if m.ReadFile("/bin/tool") != nil {
		t.Fatal("files survive removal")
	}
	if mgr.Remove("tool") {
		t.Fatal("double remove returned true")
	}
}

func TestInstallWritesClones(t *testing.T) {
	repo := NewRepository()
	p := mkpkg("tool", "1.0", nil, "/bin/tool")
	repo.Add(p)
	m := machine.New("m")
	if _, err := NewManager(m, repo).Install(p); err != nil {
		t.Fatal(err)
	}
	m.ReadFile("/bin/tool").Data[0] = 'X'
	if p.Files[0].Data[0] == 'X' {
		t.Fatal("machine file aliases repository package data")
	}
}
