package pkgmgr

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// Dependency is a declared requirement on another package.
type Dependency struct {
	Name string
	// MinVersion is the lowest acceptable version ("" for any).
	MinVersion string
}

// Satisfied reports whether an installed ref meets the dependency.
func (d Dependency) Satisfied(ref machine.PackageRef, ok bool) bool {
	if !ok {
		return false
	}
	return d.MinVersion == "" || CompareVersions(ref.Version, d.MinVersion) >= 0
}

// Package is one installable unit: files plus metadata.
type Package struct {
	Name         string
	Version      string
	Files        []*machine.File
	Dependencies []Dependency
}

// Ref returns the package's name/version reference.
func (p *Package) Ref() machine.PackageRef {
	return machine.PackageRef{Name: p.Name, Version: p.Version}
}

// FilePaths returns the paths the package owns, sorted.
func (p *Package) FilePaths() []string {
	out := make([]string, len(p.Files))
	for i, f := range p.Files {
		out[i] = f.Path
	}
	sort.Strings(out)
	return out
}

// FileEdit is a migration step bundled with an upgrade: corrected upgrades
// often must transform machine-local state the package itself does not own
// (rewrite a legacy user configuration, regenerate preference files). At
// most one of SetData, Append and Remove applies, checked in that order.
type FileEdit struct {
	Path    string
	SetData []byte // replace (or create) the file contents
	Append  []byte // append to the file if it exists
	Remove  bool   // delete the file if it exists
}

// Upgrade is the unit Mirage distributes: a new package version, the
// version it replaces, optional environment migrations, and metadata the
// deployment protocol can inspect (urgency).
type Upgrade struct {
	ID       string // stable identifier, e.g. "mysql-4.1.22-to-5.0.22"
	Pkg      *Package
	Replaces string // version being replaced ("" for fresh installs)
	Urgent   bool   // urgent upgrades may bypass staging entirely
	// Migrations run after the package files are written.
	Migrations []FileEdit
}

// Repository is the vendor-side package store.
type Repository struct {
	packages map[string][]*Package // name -> versions, ascending
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{packages: make(map[string][]*Package)}
}

// Add registers a package version.
func (r *Repository) Add(p *Package) {
	vs := r.packages[p.Name]
	vs = append(vs, p)
	sort.Slice(vs, func(i, j int) bool {
		return CompareVersions(vs[i].Version, vs[j].Version) < 0
	})
	r.packages[p.Name] = vs
}

// Latest returns the newest version of name, or nil.
func (r *Repository) Latest(name string) *Package {
	vs := r.packages[name]
	if len(vs) == 0 {
		return nil
	}
	return vs[len(vs)-1]
}

// Get returns a specific version, or nil.
func (r *Repository) Get(name, version string) *Package {
	for _, p := range r.packages[name] {
		if p.Version == version {
			return p
		}
	}
	return nil
}

// Find returns the newest version of name satisfying dep, or nil.
func (r *Repository) Find(dep Dependency) *Package {
	vs := r.packages[dep.Name]
	for i := len(vs) - 1; i >= 0; i-- {
		if dep.MinVersion == "" || CompareVersions(vs[i].Version, dep.MinVersion) >= 0 {
			return vs[i]
		}
	}
	return nil
}

// DependencyError reports an unsatisfiable dependency.
type DependencyError struct {
	Pkg string
	Dep Dependency
}

func (e *DependencyError) Error() string {
	return fmt.Sprintf("pkgmgr: %s requires %s >= %q, not available", e.Pkg, e.Dep.Name, e.Dep.MinVersion)
}

// Manager installs, upgrades and removes packages on one machine.
type Manager struct {
	M    *machine.Machine
	Repo *Repository
}

// NewManager returns a manager for machine m drawing from repo.
func NewManager(m *machine.Machine, repo *Repository) *Manager {
	return &Manager{M: m, Repo: repo}
}

// resolve returns the closure of packages that must be installed for p,
// in dependency-first order, skipping already-satisfied dependencies.
func (mgr *Manager) resolve(p *Package, visiting map[string]bool, out *[]*Package) error {
	if visiting[p.Name] {
		return fmt.Errorf("pkgmgr: dependency cycle through %s", p.Name)
	}
	visiting[p.Name] = true
	defer delete(visiting, p.Name)

	for _, dep := range p.Dependencies {
		ref, ok := mgr.M.Package(dep.Name)
		if dep.Satisfied(ref, ok) {
			continue
		}
		cand := mgr.Repo.Find(dep)
		if cand == nil {
			return &DependencyError{Pkg: p.Name, Dep: dep}
		}
		if err := mgr.resolve(cand, visiting, out); err != nil {
			return err
		}
	}
	*out = append(*out, p)
	return nil
}

// Install installs p and any missing dependencies. It returns the list of
// packages actually installed, dependency-first. Note the paper's central
// caveat: installing a dependency at a NEWER version than an existing
// application was built against succeeds here — the package manager sees
// satisfied constraints — yet may break that application at runtime.
func (mgr *Manager) Install(p *Package) ([]*Package, error) {
	var plan []*Package
	if err := mgr.resolve(p, make(map[string]bool), &plan); err != nil {
		return nil, err
	}
	installed := make([]*Package, 0, len(plan))
	seen := make(map[string]bool)
	for _, q := range plan {
		if seen[q.Name] {
			continue
		}
		seen[q.Name] = true
		mgr.writePackage(q)
		installed = append(installed, q)
	}
	return installed, nil
}

func (mgr *Manager) writePackage(p *Package) {
	for _, f := range p.Files {
		mgr.M.WriteFile(f.Clone())
	}
	mgr.M.InstallPackage(p.Ref(), p.FilePaths())
}

// Transaction records the machine state an upgrade replaced, enabling
// rollback. Mirage performs upgrades in an isolated environment first; on
// the production system, the transaction is the rollback path the survey's
// respondents asked for.
type Transaction struct {
	mgr          *Manager
	pkgName      string
	ref          machine.PackageRef // package state before ("" version if absent)
	hadPkg       bool
	replaced     []*machine.File // prior contents of files the upgrade touched
	created      []string        // paths that did not exist before
	removedFiles []*machine.File // files the upgrade removed (old version owned, new does not)
	oldFiles     []string
	migrated     []*machine.File // pre-migration contents of edited files
	migCreated   []string        // files migrations created from nothing
}

// Apply installs upgrade on the machine and returns a rollback transaction.
// Files owned by the replaced version but absent from the new one are
// removed — unless the packaging "forgets" them, which is modelled by the
// upgrade's package simply shipping without them (improper packaging).
func (mgr *Manager) Apply(up *Upgrade) (*Transaction, error) {
	for _, dep := range up.Pkg.Dependencies {
		ref, ok := mgr.M.Package(dep.Name)
		if !dep.Satisfied(ref, ok) {
			if cand := mgr.Repo.Find(dep); cand != nil {
				// Pulling in the dependency may itself upgrade a package
				// other applications rely on — the broken-dependency class.
				if _, err := mgr.Install(cand); err != nil {
					return nil, err
				}
			} else {
				return nil, &DependencyError{Pkg: up.Pkg.Name, Dep: dep}
			}
		}
	}

	tx := &Transaction{mgr: mgr, pkgName: up.Pkg.Name}
	tx.ref, tx.hadPkg = mgr.M.Package(up.Pkg.Name)
	tx.oldFiles = mgr.M.PackageFiles(up.Pkg.Name)

	newPaths := make(map[string]bool)
	for _, f := range up.Pkg.Files {
		newPaths[f.Path] = true
		if old := mgr.M.ReadFile(f.Path); old != nil {
			tx.replaced = append(tx.replaced, old.Clone())
		} else {
			tx.created = append(tx.created, f.Path)
		}
	}
	for _, p := range tx.oldFiles {
		if !newPaths[p] {
			if old := mgr.M.ReadFile(p); old != nil {
				tx.removedFiles = append(tx.removedFiles, old.Clone())
			}
		}
	}

	// Write the new version.
	for _, f := range up.Pkg.Files {
		mgr.M.WriteFile(f.Clone())
	}
	for _, f := range tx.removedFiles {
		mgr.M.RemoveFile(f.Path)
	}
	mgr.M.InstallPackage(up.Pkg.Ref(), up.Pkg.FilePaths())

	// Environment migrations bundled with the upgrade.
	for _, ed := range up.Migrations {
		prior := mgr.M.ReadFile(ed.Path)
		if prior != nil {
			tx.migrated = append(tx.migrated, prior.Clone())
		} else {
			tx.migCreated = append(tx.migCreated, ed.Path)
		}
		switch {
		case ed.SetData != nil:
			nf := &machine.File{Path: ed.Path, Type: machine.TypeConfig, Data: append([]byte(nil), ed.SetData...)}
			if prior != nil {
				nf.Type, nf.Version = prior.Type, prior.Version
			}
			mgr.M.WriteFile(nf)
		case ed.Append != nil:
			if prior != nil {
				mgr.M.MutateFile(ed.Path, func(f *machine.File) {
					f.Data = append(f.Data, ed.Append...)
				})
			}
		case ed.Remove:
			mgr.M.RemoveFile(ed.Path)
		}
	}
	return tx, nil
}

// Rollback restores the pre-upgrade state.
func (tx *Transaction) Rollback() {
	for _, p := range tx.migCreated {
		tx.mgr.M.RemoveFile(p)
	}
	for _, f := range tx.migrated {
		tx.mgr.M.WriteFile(f.Clone())
	}
	for _, p := range tx.created {
		tx.mgr.M.RemoveFile(p)
	}
	for _, f := range tx.replaced {
		tx.mgr.M.WriteFile(f.Clone())
	}
	for _, f := range tx.removedFiles {
		tx.mgr.M.WriteFile(f.Clone())
	}
	if tx.hadPkg {
		tx.mgr.M.InstallPackage(tx.ref, tx.oldFiles)
	} else {
		tx.mgr.M.RemovePackage(tx.pkgName)
	}
}

// Remove uninstalls a package and its files. Dependents are not checked —
// as in real package managers, removing a library out from under an
// application is possible and is one source of upgrade problems.
func (mgr *Manager) Remove(name string) bool {
	ref, ok := mgr.M.Package(name)
	if !ok {
		return false
	}
	for _, p := range mgr.M.PackageFiles(ref.Name) {
		mgr.M.RemoveFile(p)
	}
	mgr.M.RemovePackage(name)
	return true
}
