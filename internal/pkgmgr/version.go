// Package pkgmgr is the package-management substrate under Mirage: package
// and upgrade objects, a vendor-side repository, dependency resolution, and
// transactional install/upgrade/remove with rollback on simulated machines.
//
// The survey in the paper reports that 86% of administrators install
// upgrades through the system's package manager, and that dependency
// enforcement "only tries to enforce that the right packages are in place"
// — it neither tests behaviour nor reports problems. This package
// reproduces exactly that contract: declared dependencies are enforced at
// install time, but runtime linkage breakage (the PHP-against-libmysql
// story) is invisible to it and only surfaces in user-machine testing.
package pkgmgr

import (
	"strconv"
	"strings"
)

// CompareVersions compares dotted version strings numerically component by
// component ("4.1.22" < "5.0" < "5.0.1"). Non-numeric components compare
// lexicographically after numeric ones. Returns -1, 0 or 1.
func CompareVersions(a, b string) int {
	as, bs := strings.Split(a, "."), strings.Split(b, ".")
	for i := 0; i < len(as) || i < len(bs); i++ {
		ac, bc := "0", "0" // missing components count as zero: 5.0 == 5.0.0
		if i < len(as) && as[i] != "" {
			ac = as[i]
		}
		if i < len(bs) && bs[i] != "" {
			bc = bs[i]
		}
		if ac == bc {
			continue
		}
		an, aerr := strconv.Atoi(ac)
		bn, berr := strconv.Atoi(bc)
		switch {
		case aerr == nil && berr == nil:
			if an < bn {
				return -1
			}
			if an > bn {
				return 1
			}
		case aerr == nil:
			return -1 // numeric sorts before non-numeric
		case berr == nil:
			return 1
		default:
			if ac < bc {
				return -1
			}
			return 1
		}
	}
	return 0
}
