// Package fleetwatch is Mirage's live-fleet drift layer: it keeps the
// vendor's clustering continuously true as the fleet churns, instead of
// trusting the one-shot snapshot taken at rollout launch.
//
// Agents re-fingerprint themselves periodically (mirage-agent -watch) and
// push profile *deltas* — the few items that changed, CDC-chunk digests for
// content — over the OpProfileDelta RPC. The Monitor folds each delta into
// a cluster.Snapshot via its incremental Update (the weighted-QT structure,
// so a fold costs candidate-clusters × distinct-profiles, not O(fleet)),
// classifies the move, bumps a version counter, and exposes the result as a
// FleetView the profile pipeline and the orchestrator read instead of the
// launch-time snapshot.
//
// Classification is about representative validity (paper §3.2.3: a cluster
// representative's test verdict vouches only for machines that still look
// like it):
//
//   - stable: the machine was re-placed in its old cluster — the change was
//     within the diameter bound and invalidates nothing.
//   - migrated: the machine moved to another (or a new) cluster that has
//     not passed a gate, and it was not a representative others depend on.
//   - drifted: rep-invalidating — the machine left a cluster whose
//     representative already passed a gate (its verdict no longer vouches
//     for the leaver), or the machine itself was a still-pending cluster's
//     representative and left members behind that it no longer resembles.
//
// The orchestrator subscribes to these events and applies a DriftPolicy:
// journal-and-continue, hold the rollout at its next stage barrier, or
// re-stage the remaining plan from the current FleetView.
package fleetwatch

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/profile"
	"repro/internal/resource"
	"repro/internal/telemetry"
)

// Class is the drift classification of one fold.
type Class string

const (
	// ClassStable: re-placed in its old cluster; nothing invalidated.
	ClassStable Class = "stable"
	// ClassMigrated: moved clusters, but no gated verdict depends on it.
	ClassMigrated Class = "migrated"
	// ClassDrifted: rep-invalidating (see the package comment).
	ClassDrifted Class = "drifted"
)

// Event is one folded fleet change.
type Event struct {
	Machine string
	From    string // cluster name before the fold ("" if new or unclustered)
	To      string // cluster name after the fold ("" if removed)
	Class   Class
	Version uint64 // FleetView version after the fold
}

// FleetView is a consistent, versioned copy of the current clustering.
// Version increases on every fold that changes the fleet; readers compare
// versions to detect staleness.
type FleetView struct {
	Version  uint64
	Machines int
	Clusters []ViewCluster
	Drifted  []string // machines currently flagged drift (sorted)
}

// ViewCluster is one cluster in a FleetView.
type ViewCluster struct {
	ID       int
	Name     string
	Distance int
	Machines []string
	Gated    bool
}

// ErrResync is returned by ApplyDelta when a delta cannot be folded — the
// base fingerprint is unknown or the post-delta signature does not match.
// The agent answers a resync by re-sending its full profile.
type ErrResync struct{ Machine, Reason string }

func (e *ErrResync) Error() string {
	return fmt.Sprintf("fleetwatch: %s needs resync: %s", e.Machine, e.Reason)
}

// Monitor folds agent profile deltas into a live clustering. All methods
// are safe for concurrent use.
type Monitor struct {
	mu      sync.Mutex
	snap    *cluster.Snapshot
	version uint64
	gated   map[*cluster.Cluster]bool
	reps    map[string]bool  // machines serving as representatives in an active plan
	drifted map[string]Event // machines currently flagged drifted
	subs    []func(Event)

	reclusterSec *telemetry.Family
	deltaBytes   *telemetry.Family
	driftTotal   *telemetry.CounterFamily
}

// NewMonitor wraps a launch-time snapshot. reg may be nil (no telemetry).
func NewMonitor(snap *cluster.Snapshot, reg *telemetry.Registry) *Monitor {
	m := &Monitor{
		snap:    snap,
		version: 1,
		gated:   make(map[*cluster.Cluster]bool),
		reps:    make(map[string]bool),
		drifted: make(map[string]Event),
	}
	m.reclusterSec = reg.Histogram("mirage_recluster_seconds",
		"Latency of folding one profile delta into the clustering.", "op", 1e-9)
	m.deltaBytes = reg.Histogram("mirage_delta_bytes",
		"Bytes on the wire per profile delta push.", "kind", 1)
	m.driftTotal = reg.Counter("mirage_drift_members_total",
		"Fleet members classified after a profile change.", "class")
	return m
}

// Subscribe registers fn to receive every future drift event. fn runs
// outside the monitor's lock, on the goroutine that folded the delta.
func (m *Monitor) Subscribe(fn func(Event)) {
	m.mu.Lock()
	m.subs = append(m.subs, fn)
	m.mu.Unlock()
}

// SetRepresentatives records the machines acting as cluster representatives
// in the active deployment plan; a representative leaving a still-populated
// cluster is rep-invalidating.
func (m *Monitor) SetRepresentatives(clusters []*deploy.Cluster) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reps = make(map[string]bool)
	for _, c := range clusters {
		for _, n := range c.Representatives {
			m.reps[n.Name()] = true
		}
	}
}

// MarkGated records that the cluster(s) containing the named members passed
// a stage gate. Shaped to compose with deploy.Controller.GatedMembers.
func (m *Monitor) MarkGated(names []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range names {
		if c := m.snap.ClusterOf(name); c != nil {
			m.gated[c] = true
		}
	}
}

// ObserveDeltaBytes meters the wire size of one delta push.
func (m *Monitor) ObserveDeltaBytes(n int, full bool) {
	kind := "delta"
	if full {
		kind = "full"
	}
	m.deltaBytes.Observe(kind, int64(n))
}

// ApplyDelta folds one agent push. added and removed are the items that
// changed in the machine's diff-against-vendor since its last acknowledged
// profile; sig is the signature of the complete post-change diff set, used
// to detect divergence. full means added IS the complete diff (removed
// ignored) — sent on first contact and after a resync. It returns the
// classification event and whether the fold changed the fleet view.
func (m *Monitor) ApplyDelta(machine, appSet string, added, removed []resource.Item, sig uint64, full bool) (Event, error) {
	m.mu.Lock()

	next := resource.NewSet(len(added))
	if full {
		for _, it := range added {
			next.Add(it)
		}
	} else {
		old, ok := m.snap.Fingerprints[machine]
		if !ok {
			m.mu.Unlock()
			return Event{}, &ErrResync{Machine: machine, Reason: "unknown machine"}
		}
		next.AddAll(old.ParsedDiff)
		next.AddAll(old.ContentDiff)
		for _, it := range removed {
			next.Remove(it)
		}
		for _, it := range added {
			next.Add(it)
		}
	}
	if got := next.Signature(); got != sig {
		m.mu.Unlock()
		return Event{}, &ErrResync{Machine: machine, Reason: "signature mismatch after delta"}
	}

	mf := cluster.MachineFingerprint{
		Name:        machine,
		ParsedDiff:  next.OfKind(resource.Parsed),
		ContentDiff: next.OfKind(resource.Content),
		AppSet:      appSet,
	}

	// Unchanged profile: the common case a watch-mode agent never even
	// sends (it compares signatures locally), but deltas can still arrive
	// that fold to the same placement.
	before := m.snap.ClusterOf(machine)
	fromName := nameOf(before) // IDs are reassigned by the fold; name it now
	if old, ok := m.snap.Fingerprints[machine]; ok &&
		old.AppSet == appSet &&
		old.ParsedDiff.Equal(mf.ParsedDiff) && old.ContentDiff.Equal(mf.ContentDiff) {
		ev := Event{Machine: machine, From: fromName, To: fromName, Class: ClassStable, Version: m.version}
		m.mu.Unlock()
		return ev, nil
	}

	t0 := time.Now()
	after := m.snap.Update(mf)
	m.reclusterSec.With("update").ObserveSince(t0)

	ev := m.classifyLocked(machine, fromName, before, after)
	if before != nil && len(before.Machines) == 0 {
		delete(m.gated, before) // cluster emptied and was dropped
	}
	m.version++
	ev.Version = m.version
	if ev.Class == ClassDrifted {
		m.drifted[machine] = ev
	} else {
		delete(m.drifted, machine)
	}
	m.driftTotal.With(string(ev.Class)).Inc()
	subs := append([]func(Event){}, m.subs...)
	m.mu.Unlock()

	for _, fn := range subs {
		fn(ev)
	}
	return ev, nil
}

// classifyLocked decides stable/migrated/drifted for a machine that moved
// from cluster `before` to cluster `after` (pointer identity). fromName is
// the old cluster's name captured before the fold reassigned IDs.
func (m *Monitor) classifyLocked(machine, fromName string, before, after *cluster.Cluster) Event {
	ev := Event{Machine: machine, From: fromName, To: nameOf(after)}
	switch {
	case before == after && before != nil:
		ev.Class = ClassStable
	case before == nil:
		ev.Class = ClassMigrated // new machine joining the fleet
	case m.gated[before]:
		// Left a cluster whose representative already passed a gate: the
		// verdict no longer vouches for this machine.
		ev.Class = ClassDrifted
	case m.reps[machine] && len(before.Machines) > 0:
		// A pending cluster's representative left members behind it no
		// longer resembles: its eventual verdict would vouch for nothing.
		ev.Class = ClassDrifted
	default:
		ev.Class = ClassMigrated
	}
	return ev
}

// Remove drops a decommissioned machine from the fleet.
func (m *Monitor) Remove(machine string) Event {
	m.mu.Lock()
	before := m.snap.ClusterOf(machine)
	fromName := nameOf(before)
	t0 := time.Now()
	m.snap.Remove(machine)
	m.reclusterSec.With("remove").ObserveSince(t0)
	ev := Event{Machine: machine, From: fromName, Class: ClassMigrated, Version: m.version}
	if before != nil && (m.gated[before] || (m.reps[machine] && len(before.Machines) > 0)) {
		ev.Class = ClassDrifted
	}
	if before != nil && len(before.Machines) == 0 {
		delete(m.gated, before)
	}
	m.version++
	ev.Version = m.version
	delete(m.drifted, machine)
	if ev.Class == ClassDrifted {
		m.drifted[machine] = ev
	}
	m.driftTotal.With(string(ev.Class)).Inc()
	subs := append([]func(Event){}, m.subs...)
	m.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
	return ev
}

// Refresh replaces the clustering wholesale from a fresh full
// re-fingerprint of the fleet (POST /fleet/refresh). Drift flags and gate
// marks are cleared — the new view is ground truth — and the version jumps.
func (m *Monitor) Refresh(machines []cluster.MachineFingerprint) FleetView {
	m.mu.Lock()
	cfg := m.snap.Config
	t0 := time.Now()
	m.snap = cluster.BuildSnapshot(cfg, machines)
	m.reclusterSec.With("refresh").ObserveSince(t0)
	m.gated = make(map[*cluster.Cluster]bool)
	m.drifted = make(map[string]Event)
	m.version++
	v := m.viewLocked()
	m.mu.Unlock()
	return v
}

// ClearDrift forgets current drift flags (e.g. after a re-stage recomputed
// the plan from the live view, which makes the flags moot).
func (m *Monitor) ClearDrift() {
	m.mu.Lock()
	m.drifted = make(map[string]Event)
	m.mu.Unlock()
}

// Version returns the current fleet view version.
func (m *Monitor) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Drifted returns the machines currently flagged drift, sorted.
func (m *Monitor) Drifted() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, 0, len(m.drifted))
	for _, ev := range m.drifted {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// View returns a consistent copy of the current clustering.
func (m *Monitor) View() FleetView {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

func (m *Monitor) viewLocked() FleetView {
	v := FleetView{
		Version:  m.version,
		Machines: len(m.snap.Fingerprints),
		Clusters: make([]ViewCluster, 0, len(m.snap.Clusters)),
	}
	for _, c := range m.snap.Clusters {
		v.Clusters = append(v.Clusters, ViewCluster{
			ID:       c.ID,
			Name:     deploy.ClusterName(c.ID),
			Distance: c.Distance,
			Machines: append([]string(nil), c.Machines...),
			Gated:    m.gated[c],
		})
	}
	for name := range m.drifted {
		v.Drifted = append(v.Drifted, name)
	}
	sort.Strings(v.Drifted)
	return v
}

// DeployClusters assembles clusters of deployment from the *current* fleet
// view — what a re-stage launches instead of the stale plan. node resolves
// a member name to its deployment node, as in profile.Assemble.
func (m *Monitor) DeployClusters(repsPerCluster int, node func(name string) deploy.Node) ([]*deploy.Cluster, error) {
	m.mu.Lock()
	clusters := make([]*cluster.Cluster, len(m.snap.Clusters))
	copy(clusters, m.snap.Clusters)
	m.mu.Unlock()
	return profile.Assemble(clusters, repsPerCluster, node)
}

func nameOf(c *cluster.Cluster) string {
	if c == nil {
		return ""
	}
	return deploy.ClusterName(c.ID)
}
