package fleetwatch

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/benchjson"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/resource"
	"repro/internal/telemetry"
)

type fakeNode string

func (n fakeNode) Name() string { return string(n) }
func (n fakeNode) TestUpgrade(context.Context, *pkgmgr.Upgrade) (*report.Report, error) {
	return nil, nil
}
func (n fakeNode) Integrate(context.Context, *pkgmgr.Upgrade) error { return nil }

func parsedSet(keys ...string) *resource.Set {
	s := resource.NewSet(len(keys))
	for _, k := range keys {
		s.Add(resource.Item{Key: k, Hash: 1, Kind: resource.Parsed})
	}
	return s
}

func contentSet(keys ...string) *resource.Set {
	s := resource.NewSet(len(keys))
	for _, k := range keys {
		s.Add(resource.Item{Key: k, Hash: 2, Kind: resource.Content})
	}
	return s
}

func mkfp(name string, parsed, content *resource.Set) cluster.MachineFingerprint {
	if parsed == nil {
		parsed = resource.NewSet(0)
	}
	if content == nil {
		content = resource.NewSet(0)
	}
	return cluster.MachineFingerprint{Name: name, ParsedDiff: parsed, ContentDiff: content, AppSet: "app"}
}

// union returns the combined diff set an agent would push.
func union(mf cluster.MachineFingerprint) *resource.Set {
	s := resource.NewSet(mf.ParsedDiff.Len() + mf.ContentDiff.Len())
	s.AddAll(mf.ParsedDiff)
	s.AddAll(mf.ContentDiff)
	return s
}

// push folds mf into the monitor the way a watch-mode agent would: a delta
// against the monitor's current base, or a full profile when base is nil.
func push(t *testing.T, m *Monitor, base *resource.Set, mf cluster.MachineFingerprint) Event {
	t.Helper()
	next := union(mf)
	var added, removed []resource.Item
	full := base == nil
	if full {
		added = next.Items()
	} else {
		for _, it := range next.Items() {
			if !base.Contains(it) {
				added = append(added, it)
			}
		}
		for _, it := range base.Items() {
			if !next.Contains(it) {
				removed = append(removed, it)
			}
		}
	}
	ev, err := m.ApplyDelta(mf.Name, mf.AppSet, added, removed, next.Signature(), full)
	if err != nil {
		t.Fatalf("ApplyDelta(%s): %v", mf.Name, err)
	}
	return ev
}

func watchedFleet(t *testing.T) (*Monitor, map[string]cluster.MachineFingerprint) {
	t.Helper()
	machines := []cluster.MachineFingerprint{
		mkfp("a1", parsedSet("libc.2.5"), contentSet("x")),
		mkfp("a2", parsedSet("libc.2.5"), contentSet("x")),
		mkfp("a3", parsedSet("libc.2.5"), contentSet("x")),
		mkfp("b1", parsedSet("php.5"), contentSet("y")),
		mkfp("b2", parsedSet("php.5"), contentSet("y")),
	}
	snap := cluster.BuildSnapshot(cluster.Config{Diameter: 2}, machines)
	fps := make(map[string]cluster.MachineFingerprint, len(machines))
	for _, m := range machines {
		fps[m.Name] = m
	}
	return NewMonitor(snap, telemetry.NewRegistry()), fps
}

func TestClassifyStable(t *testing.T) {
	m, fps := watchedFleet(t)
	// One extra content chunk: within the diameter, same cluster.
	next := mkfp("a2", parsedSet("libc.2.5"), contentSet("x", "x2"))
	ev := push(t, m, union(fps["a2"]), next)
	if ev.Class != ClassStable {
		t.Fatalf("class = %s, want stable (event %+v)", ev.Class, ev)
	}
	if ev.From != ev.To || ev.From == "" {
		t.Fatalf("stable event moved clusters: %+v", ev)
	}
	if len(m.Drifted()) != 0 {
		t.Fatalf("stable change flagged drift: %v", m.Drifted())
	}
}

func TestClassifyMigrated(t *testing.T) {
	m, fps := watchedFleet(t)
	// a2 now looks like the b cluster; nothing is gated, a2 is no rep.
	next := mkfp("a2", parsedSet("php.5"), contentSet("y"))
	ev := push(t, m, union(fps["a2"]), next)
	if ev.Class != ClassMigrated {
		t.Fatalf("class = %s, want migrated", ev.Class)
	}
	if ev.From == ev.To {
		t.Fatalf("migrated event did not move: %+v", ev)
	}
}

func TestClassifyDriftedFromGatedCluster(t *testing.T) {
	m, fps := watchedFleet(t)
	m.MarkGated([]string{"a1", "a2", "a3"}) // the a-cluster passed its gate
	next := mkfp("a2", parsedSet("php.5"), contentSet("y"))
	ev := push(t, m, union(fps["a2"]), next)
	if ev.Class != ClassDrifted {
		t.Fatalf("class = %s, want drifted", ev.Class)
	}
	drifted := m.Drifted()
	if len(drifted) != 1 || drifted[0].Machine != "a2" {
		t.Fatalf("Drifted() = %v", drifted)
	}
	if v := m.View(); len(v.Drifted) != 1 || v.Drifted[0] != "a2" {
		t.Fatalf("View().Drifted = %v", v.Drifted)
	}
}

func TestClassifyDriftedPendingRepresentative(t *testing.T) {
	m, fps := watchedFleet(t)
	m.SetRepresentatives([]*deploy.Cluster{
		{ID: "cluster0", Representatives: []deploy.Node{fakeNode("a1")}, Others: []deploy.Node{fakeNode("a2"), fakeNode("a3")}},
	})
	// The pending cluster's representative changes and leaves a2/a3 behind.
	next := mkfp("a1", parsedSet("php.5"), contentSet("y"))
	ev := push(t, m, union(fps["a1"]), next)
	if ev.Class != ClassDrifted {
		t.Fatalf("class = %s, want drifted (rep invalidated)", ev.Class)
	}
}

func TestLoneMachineMoveIsMigration(t *testing.T) {
	m, fps := watchedFleet(t)
	m.SetRepresentatives([]*deploy.Cluster{
		{ID: "cluster1", Representatives: []deploy.Node{fakeNode("b1")}},
	})
	// b2 leaves; then b1 — a rep — moves but leaves nobody behind once b2
	// is gone too: the final move strands no one, so it is a migration.
	push(t, m, union(fps["b2"]), mkfp("b2", parsedSet("libc.2.5"), contentSet("x")))
	ev := push(t, m, union(fps["b1"]), mkfp("b1", parsedSet("libc.2.5"), contentSet("x")))
	if ev.Class != ClassMigrated {
		t.Fatalf("class = %s, want migrated (cluster emptied)", ev.Class)
	}
}

func TestApplyDeltaResync(t *testing.T) {
	m, fps := watchedFleet(t)
	// Unknown machine without full: resync.
	if _, err := m.ApplyDelta("ghost", "app", nil, nil, 0, false); err == nil {
		t.Fatal("unknown machine accepted without full profile")
	} else if _, ok := err.(*ErrResync); !ok {
		t.Fatalf("err = %T, want *ErrResync", err)
	}
	// Signature mismatch: resync, and the fleet must be untouched.
	before := m.Version()
	extra := resource.Item{Key: "x9", Hash: 2, Kind: resource.Content}
	if _, err := m.ApplyDelta("a2", "app", []resource.Item{extra}, nil, 12345, false); err == nil {
		t.Fatal("bad signature accepted")
	}
	if m.Version() != before {
		t.Fatal("failed delta bumped the version")
	}
	_ = fps
}

func TestFullPushAddsMachine(t *testing.T) {
	m, _ := watchedFleet(t)
	ev := push(t, m, nil, mkfp("c1", parsedSet("ssl.1"), contentSet("z")))
	if ev.Class != ClassMigrated || ev.From != "" || ev.To == "" {
		t.Fatalf("new machine event = %+v", ev)
	}
	if v := m.View(); v.Machines != 6 {
		t.Fatalf("fleet size after join = %d", v.Machines)
	}
}

func TestRefreshResetsDrift(t *testing.T) {
	m, fps := watchedFleet(t)
	m.MarkGated([]string{"a1"})
	push(t, m, union(fps["a2"]), mkfp("a2", parsedSet("php.5"), contentSet("y")))
	if len(m.Drifted()) != 1 {
		t.Fatalf("expected one drifted member, got %v", m.Drifted())
	}
	before := m.Version()
	fresh := []cluster.MachineFingerprint{
		mkfp("a1", parsedSet("libc.2.5"), contentSet("x")),
		mkfp("a2", parsedSet("php.5"), contentSet("y")),
	}
	v := m.Refresh(fresh)
	if v.Version <= before {
		t.Fatalf("refresh did not bump version: %d -> %d", before, v.Version)
	}
	if len(v.Drifted) != 0 || len(m.Drifted()) != 0 {
		t.Fatal("refresh kept stale drift flags")
	}
	if v.Machines != 2 {
		t.Fatalf("refreshed fleet size = %d", v.Machines)
	}
}

func TestSubscribeSeesEvents(t *testing.T) {
	m, fps := watchedFleet(t)
	var got []Event
	m.Subscribe(func(ev Event) { got = append(got, ev) })
	push(t, m, union(fps["a2"]), mkfp("a2", parsedSet("php.5"), contentSet("y")))
	if len(got) != 1 || got[0].Machine != "a2" {
		t.Fatalf("subscriber saw %v", got)
	}
	if got[0].Version != m.Version() {
		t.Fatalf("event version %d != monitor version %d", got[0].Version, m.Version())
	}
}

func TestDeployClustersFromLiveView(t *testing.T) {
	m, fps := watchedFleet(t)
	push(t, m, union(fps["a3"]), mkfp("a3", parsedSet("ssl.1"), contentSet("z")))
	dcs, err := m.DeployClusters(1, func(name string) deploy.Node { return fakeNode(name) })
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != 3 {
		t.Fatalf("deploy clusters = %d, want 3", len(dcs))
	}
	total := 0
	for _, dc := range dcs {
		if len(dc.Representatives) != 1 {
			t.Fatalf("cluster %s reps = %d", dc.ID, len(dc.Representatives))
		}
		total += dc.Size()
	}
	if total != 5 {
		t.Fatalf("deploy cluster members = %d, want 5", total)
	}
}

// TestMonitorParityWithRun is the PR's parity proof: fold well over 100
// random churn events through ApplyDelta and verify the final live view
// honors every invariant a from-scratch cluster.Run guarantees — identical
// parsed diffs and uniform app sets within each cluster, content diameter
// bounded, every machine in exactly one cluster — and that a from-scratch
// Run over the same final fingerprints clusters the identical universe.
func TestMonitorParityWithRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := cluster.Config{Diameter: 2}

	parsedPool := [][]string{nil, {"libc.2.5"}, {"libc.2.5", "php.5"}, {"ssl.1"}}
	contentPool := []string{"a", "b", "c", "d", "e"}
	randFP := func(name string) cluster.MachineFingerprint {
		var content []string
		for _, k := range contentPool {
			if rng.Intn(2) == 0 {
				content = append(content, k)
			}
		}
		return mkfp(name, parsedSet(parsedPool[rng.Intn(len(parsedPool))]...), contentSet(content...))
	}

	cur := make(map[string]cluster.MachineFingerprint)
	var machines []cluster.MachineFingerprint
	for i := 0; i < 50; i++ {
		mf := randFP(fmt.Sprintf("seed%02d", i))
		machines = append(machines, mf)
		cur[mf.Name] = mf
	}
	m := NewMonitor(cluster.BuildSnapshot(cfg, machines), telemetry.NewRegistry())

	names := func() []string {
		out := make([]string, 0, len(cur))
		for n := range cur {
			out = append(out, n)
		}
		return out
	}

	const events = 120
	for ev := 0; ev < events; ev++ {
		switch op := rng.Intn(10); {
		case op < 5: // change
			ns := names()
			name := ns[rng.Intn(len(ns))]
			next := randFP(name)
			push(t, m, union(cur[name]), next)
			cur[name] = next
		case op < 8: // join
			mf := randFP(fmt.Sprintf("new%03d", ev))
			push(t, m, nil, mf)
			cur[mf.Name] = mf
		default: // decommission
			ns := names()
			name := ns[rng.Intn(len(ns))]
			m.Remove(name)
			delete(cur, name)
		}
	}

	v := m.View()
	if v.Machines != len(cur) {
		t.Fatalf("view machines = %d, want %d", v.Machines, len(cur))
	}
	seen := make(map[string]bool)
	for _, c := range v.Clusters {
		if len(c.Machines) == 0 {
			t.Fatal("empty cluster in live view")
		}
		for _, name := range c.Machines {
			if seen[name] {
				t.Fatalf("%s in two clusters", name)
			}
			seen[name] = true
		}
		for i := 0; i < len(c.Machines); i++ {
			for j := i + 1; j < len(c.Machines); j++ {
				a, b := cur[c.Machines[i]], cur[c.Machines[j]]
				if !a.ParsedDiff.Equal(b.ParsedDiff) {
					t.Fatalf("cluster %v mixes parsed diffs", c.Machines)
				}
				if a.AppSet != b.AppSet {
					t.Fatalf("cluster %v mixes app sets", c.Machines)
				}
				if d := resource.ManhattanDistance(a.ContentDiff, b.ContentDiff); d > cfg.Diameter {
					t.Fatalf("cluster %v violates diameter: %d", c.Machines, d)
				}
			}
		}
	}
	for name := range cur {
		if !seen[name] {
			t.Fatalf("%s lost from live view", name)
		}
	}

	// From-scratch Run over the same final fleet clusters the same universe
	// under the same invariants (it may merge more aggressively).
	var final []cluster.MachineFingerprint
	for _, mf := range cur {
		final = append(final, mf)
	}
	full := cluster.Run(cfg, final)
	fullSeen := 0
	for _, c := range full {
		fullSeen += len(c.Machines)
	}
	if fullSeen != len(cur) {
		t.Fatalf("from-scratch run clustered %d machines, want %d", fullSeen, len(cur))
	}
	if len(full) > len(v.Clusters) {
		t.Fatalf("incremental view merged MORE aggressively than Run: %d vs %d clusters",
			len(v.Clusters), len(full))
	}
}

// syntheticFleet builds n machines in 100 parsed groups × 5 content bands:
// 500 distinct profiles, so both the full run and the incremental fold have
// real clustering work to do.
func syntheticFleet(n int) []cluster.MachineFingerprint {
	out := make([]cluster.MachineFingerprint, n)
	for i := range out {
		g := i % 100
		band := (i / 100) % 5
		parsed := resource.NewSet(4)
		for p := 0; p <= g%3; p++ {
			parsed.Add(resource.NewParsed(uint64(g), "pkg", fmt.Sprintf("lib%d", g), fmt.Sprintf("v%d", p)))
		}
		content := resource.NewSet(8)
		for c := 0; c < 6; c++ {
			content.Add(resource.NewContent(fmt.Sprintf("data%d.bin", band*10+c), uint64(g*1000+band)))
		}
		out[i] = cluster.MachineFingerprint{
			Name:        fmt.Sprintf("m%05d", i),
			ParsedDiff:  parsed,
			ContentDiff: content,
			AppSet:      "app",
		}
	}
	return out
}

// BenchmarkDrift measures one incremental delta fold against a from-scratch
// 10k-machine re-clustering and asserts the fold is ≥50x cheaper. Results
// land in BENCH_drift.json when MIRAGE_BENCH_DRIFT_JSON is set.
func BenchmarkDrift(b *testing.B) {
	const fleet = 10_000
	cfg := cluster.Config{Diameter: 4}
	machines := syntheticFleet(fleet)

	const fullRuns = 3
	t0 := time.Now()
	for i := 0; i < fullRuns; i++ {
		cluster.Run(cfg, machines)
	}
	fullPer := time.Since(t0) / fullRuns

	mon := NewMonitor(cluster.BuildSnapshot(cfg, machines), nil)
	cur := make(map[string]*resource.Set, fleet)
	for _, mf := range machines {
		cur[mf.Name] = union(mf)
	}
	lastChurn := make(map[string]resource.Item, fleet)

	rng := rand.New(rand.NewSource(42))
	fold := func(i int) {
		name := machines[rng.Intn(fleet)].Name
		set := cur[name]
		var removed []resource.Item
		if old, ok := lastChurn[name]; ok {
			set.Remove(old)
			removed = append(removed, old)
		}
		next := resource.NewContent("churn.bin", uint64(1_000_000+i))
		set.Add(next)
		lastChurn[name] = next
		if _, err := mon.ApplyDelta(name, "app", []resource.Item{next}, removed, set.Signature(), false); err != nil {
			b.Fatal(err)
		}
	}
	// The snapshot's incremental index builds lazily on the first fold;
	// that is launch-time cost, so pay it outside the timed region.
	fold(0)
	b.ResetTimer()
	start := time.Now()
	for i := 1; i <= b.N; i++ {
		fold(i)
	}
	incPer := time.Since(start) / time.Duration(b.N)
	b.StopTimer()

	speedup := float64(fullPer) / float64(incPer)
	b.ReportMetric(speedup, "x_speedup")
	b.ReportMetric(float64(incPer.Nanoseconds()), "ns/fold")
	if speedup < 50 {
		b.Fatalf("incremental fold only %.1fx cheaper than full re-run (%v vs %v), want ≥50x",
			speedup, incPer, fullPer)
	}
	if _, err := benchjson.WriteEnv("MIRAGE_BENCH_DRIFT_JSON", []benchjson.Result{{
		Name: "BenchmarkDrift", N: fleet,
		Metrics: map[string]float64{
			"full_run_ms":   float64(fullPer.Microseconds()) / 1000,
			"fold_us":       float64(incPer.Nanoseconds()) / 1000,
			"x_speedup":     speedup,
			"folds_sampled": float64(b.N),
		},
	}}); err != nil {
		b.Fatal(err)
	}
}
