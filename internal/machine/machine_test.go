package machine

import (
	"reflect"
	"testing"
)

func file(path string, typ FileType, data string) *File {
	return &File{Path: path, Type: typ, Data: []byte(data)}
}

func TestWriteReadFile(t *testing.T) {
	m := New("m1")
	m.WriteFile(file("/etc/my.cnf", TypeConfig, "[mysqld]\nport=3306\n"))
	f := m.ReadFile("/etc/my.cnf")
	if f == nil || string(f.Data) != "[mysqld]\nport=3306\n" {
		t.Fatalf("ReadFile = %+v", f)
	}
	if m.ReadFile("/missing") != nil {
		t.Fatal("ReadFile of missing path returned a file")
	}
}

func TestWriteFileEmptyPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty path")
		}
	}()
	New("m").WriteFile(&File{})
}

func TestRemoveFile(t *testing.T) {
	m := New("m")
	m.WriteFile(file("/a", TypeData, "x"))
	m.RemoveFile("/a")
	if m.ReadFile("/a") != nil {
		t.Fatal("file survives removal")
	}
	m.RemoveFile("/a") // no-op, must not panic
}

func TestFileClone(t *testing.T) {
	f := file("/bin/mysqld", TypeExecutable, "ELF")
	f.Version = "4.1.22"
	c := f.Clone()
	c.Data[0] = 'X'
	if string(f.Data) != "ELF" {
		t.Fatal("Clone shares data with original")
	}
	if c.Version != "4.1.22" || c.Path != f.Path || c.Type != f.Type {
		t.Fatal("Clone dropped metadata")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	base := New("base")
	base.WriteFile(file("/etc/conf", TypeConfig, "orig"))
	base.SetEnv("HOME", "/root")

	snap := base.Snapshot("snap")
	// Reads fall through.
	if f := snap.ReadFile("/etc/conf"); f == nil || string(f.Data) != "orig" {
		t.Fatalf("snapshot read = %+v", f)
	}
	if v, ok := snap.Getenv("HOME"); !ok || v != "/root" {
		t.Fatalf("snapshot env = %q %v", v, ok)
	}
	// Writes stay in the snapshot.
	snap.WriteFile(file("/etc/conf", TypeConfig, "upgraded"))
	if string(base.ReadFile("/etc/conf").Data) != "orig" {
		t.Fatal("snapshot write leaked into base")
	}
	if string(snap.ReadFile("/etc/conf").Data) != "upgraded" {
		t.Fatal("snapshot lost its own write")
	}
	// Deletes stay in the snapshot.
	snap.RemoveFile("/etc/conf")
	if snap.ReadFile("/etc/conf") != nil {
		t.Fatal("snapshot delete ineffective")
	}
	if base.ReadFile("/etc/conf") == nil {
		t.Fatal("snapshot delete leaked into base")
	}
}

func TestSnapshotPathsReflectDeletes(t *testing.T) {
	base := New("base")
	base.WriteFile(file("/a", TypeData, "1"))
	base.WriteFile(file("/b", TypeData, "2"))
	snap := base.Snapshot("s")
	snap.RemoveFile("/a")
	snap.WriteFile(file("/c", TypeData, "3"))
	want := []string{"/b", "/c"}
	if got := snap.Paths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Paths = %v, want %v", got, want)
	}
	if got := base.Paths(); !reflect.DeepEqual(got, []string{"/a", "/b"}) {
		t.Fatalf("base Paths = %v", got)
	}
}

func TestMutateFileCOW(t *testing.T) {
	base := New("base")
	base.WriteFile(file("/etc/conf", TypeConfig, "v1"))
	snap := base.Snapshot("s")
	ok := snap.MutateFile("/etc/conf", func(f *File) { f.Data = []byte("v2") })
	if !ok {
		t.Fatal("MutateFile reported missing file")
	}
	if string(base.ReadFile("/etc/conf").Data) != "v1" {
		t.Fatal("MutateFile through snapshot touched base")
	}
	if string(snap.ReadFile("/etc/conf").Data) != "v2" {
		t.Fatal("MutateFile lost the change")
	}
	if snap.MutateFile("/missing", func(*File) {}) {
		t.Fatal("MutateFile invented a file")
	}
}

func TestWriteAfterDeleteResurrects(t *testing.T) {
	base := New("base")
	base.WriteFile(file("/a", TypeData, "1"))
	snap := base.Snapshot("s")
	snap.RemoveFile("/a")
	snap.WriteFile(file("/a", TypeData, "2"))
	if f := snap.ReadFile("/a"); f == nil || string(f.Data) != "2" {
		t.Fatalf("resurrected file = %+v", f)
	}
}

func TestEnvOverride(t *testing.T) {
	base := New("base")
	base.SetEnv("PATH", "/usr/bin")
	snap := base.Snapshot("s")
	snap.SetEnv("PATH", "/opt/bin")
	if v, _ := snap.Getenv("PATH"); v != "/opt/bin" {
		t.Fatalf("snapshot env = %q", v)
	}
	if v, _ := base.Getenv("PATH"); v != "/usr/bin" {
		t.Fatalf("base env = %q", v)
	}
	if _, ok := base.Getenv("NOPE"); ok {
		t.Fatal("unset variable reported as set")
	}
}

func TestPackages(t *testing.T) {
	m := New("m")
	m.InstallPackage(PackageRef{"mysql", "4.1.22"}, []string{"/bin/mysqld", "/etc/my.cnf"})
	m.InstallPackage(PackageRef{"apache", "1.3.9"}, []string{"/bin/httpd"})

	if ref, ok := m.Package("mysql"); !ok || ref.Version != "4.1.22" {
		t.Fatalf("Package(mysql) = %v %v", ref, ok)
	}
	pkgs := m.Packages()
	if len(pkgs) != 2 || pkgs[0].Name != "apache" || pkgs[1].Name != "mysql" {
		t.Fatalf("Packages = %v", pkgs)
	}
	if got := m.PackageFiles("mysql"); !reflect.DeepEqual(got, []string{"/bin/mysqld", "/etc/my.cnf"}) {
		t.Fatalf("PackageFiles = %v", got)
	}
	if m.AppSetKey() != "apache,mysql" {
		t.Fatalf("AppSetKey = %q", m.AppSetKey())
	}
	m.RemovePackage("apache")
	if _, ok := m.Package("apache"); ok {
		t.Fatal("package survives removal")
	}
}

func TestPackageFilesCopy(t *testing.T) {
	m := New("m")
	files := []string{"/a"}
	m.InstallPackage(PackageRef{"p", "1"}, files)
	files[0] = "/mutated"
	if got := m.PackageFiles("p"); got[0] != "/a" {
		t.Fatal("InstallPackage aliases caller slice")
	}
	got := m.PackageFiles("p")
	got[0] = "/mutated"
	if m.PackageFiles("p")[0] != "/a" {
		t.Fatal("PackageFiles exposes internal slice")
	}
}

func TestSnapshotInheritsPackages(t *testing.T) {
	base := New("base")
	base.InstallPackage(PackageRef{"php", "4.4.6"}, []string{"/bin/php"})
	snap := base.Snapshot("s")
	if _, ok := snap.Package("php"); !ok {
		t.Fatal("snapshot lost packages")
	}
	snap.InstallPackage(PackageRef{"php", "5.0.0"}, []string{"/bin/php"})
	if ref, _ := base.Package("php"); ref.Version != "4.4.6" {
		t.Fatal("snapshot install leaked into base")
	}
}

func TestFileTypeString(t *testing.T) {
	if TypeConfig.String() != "config" || TypeLog.String() != "log" {
		t.Fatal("FileType.String broken")
	}
	if FileType(99).String() == "" {
		t.Fatal("unknown FileType has empty String")
	}
}
