// Package machine models the user machines Mirage manages: a filesystem
// tree, environment variables, and an installed-package set.
//
// The paper evaluates Mirage on real Fedora and Ubuntu installations. This
// package is the simulated substitute: it reproduces exactly the aspects of
// a machine that Mirage observes — file contents and types (for
// fingerprinting), file access (for tracing), environment variables (for
// getenv interception), and package metadata (for the dependency
// heuristic). Machines support cheap copy-on-write snapshots, which the
// vmtest package uses to build the isolated validation environment the
// paper implements with a modified User-Mode Linux.
package machine

import (
	"fmt"
	"sort"
	"strings"
)

// FileType classifies a file for parser selection and for the "files of
// certain types" part of the identification heuristic (§3.2.3). On a real
// system this comes from magic numbers and paths; here it is explicit.
type FileType int

const (
	TypeData       FileType = iota // application data (not an environmental resource)
	TypeExecutable                 // program binaries
	TypeSharedLib                  // shared libraries (libc, libmysqlclient, ...)
	TypeConfig                     // structured configuration files (INI-style)
	TypeText                       // plain text resources (scripts, .php pages)
	TypeBinary                     // opaque binary resources (fonts, databases)
	TypeLog                        // logs (never environmental)
)

var fileTypeNames = map[FileType]string{
	TypeData:       "data",
	TypeExecutable: "executable",
	TypeSharedLib:  "sharedlib",
	TypeConfig:     "config",
	TypeText:       "text",
	TypeBinary:     "binary",
	TypeLog:        "log",
}

func (t FileType) String() string {
	if s, ok := fileTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("filetype(%d)", int(t))
}

// File is one file on a simulated machine.
type File struct {
	Path string
	Type FileType
	Data []byte
	// Version is free-form version metadata carried by executables and
	// libraries ("2.4", "5.0.22"); parsers embed it in item keys.
	Version string
}

// Clone returns a deep copy of the file.
func (f *File) Clone() *File {
	data := make([]byte, len(f.Data))
	copy(data, f.Data)
	return &File{Path: f.Path, Type: f.Type, Data: data, Version: f.Version}
}

// PackageRef names an installed package at a specific version.
type PackageRef struct {
	Name    string
	Version string
}

func (p PackageRef) String() string { return p.Name + "-" + p.Version }

// Machine is a simulated user machine.
type Machine struct {
	Name string

	files    map[string]*File
	env      map[string]string
	packages map[string]PackageRef // name -> installed ref
	// pkgFiles records which files each installed package owns, mirroring
	// the package-manager database the heuristic's fourth part consults.
	pkgFiles map[string][]string

	// parent supports copy-on-write snapshots: lookups fall through to the
	// parent until the path is written locally. deleted marks paths
	// removed in this layer.
	parent  *Machine
	deleted map[string]bool
}

// New returns an empty machine with the given name.
func New(name string) *Machine {
	return &Machine{
		Name:     name,
		files:    make(map[string]*File),
		env:      make(map[string]string),
		packages: make(map[string]PackageRef),
		pkgFiles: make(map[string][]string),
		deleted:  make(map[string]bool),
	}
}

// Snapshot returns a copy-on-write child of m. Reads see m's state; writes
// affect only the snapshot. This is the isolation primitive behind upgrade
// validation: the paper boots UML copy-on-write from the host filesystem so
// the isolated environment is "built from the same file system state".
func (m *Machine) Snapshot(name string) *Machine {
	s := New(name)
	s.parent = m
	// Environment and package tables are small; copy them eagerly.
	for k, v := range m.AllEnv() {
		s.env[k] = v
	}
	for _, ref := range m.Packages() {
		s.packages[ref.Name] = ref
	}
	for pkg, files := range m.allPkgFiles() {
		s.pkgFiles[pkg] = append([]string(nil), files...)
	}
	return s
}

// WriteFile creates or replaces a file.
func (m *Machine) WriteFile(f *File) {
	if f.Path == "" {
		panic("machine: empty file path")
	}
	delete(m.deleted, f.Path)
	m.files[f.Path] = f
}

// ReadFile returns the file at path, or nil if absent.
func (m *Machine) ReadFile(path string) *File {
	if m.deleted[path] {
		return nil
	}
	if f, ok := m.files[path]; ok {
		return f
	}
	if m.parent != nil {
		if f := m.parent.ReadFile(path); f != nil {
			return f
		}
	}
	return nil
}

// RemoveFile deletes path. Removing an absent file is a no-op.
func (m *Machine) RemoveFile(path string) {
	delete(m.files, path)
	if m.parent != nil && m.parent.ReadFile(path) != nil {
		m.deleted[path] = true
	}
}

// MutateFile applies fn to a private copy of the file at path, honouring
// copy-on-write semantics, and reports whether the file existed.
func (m *Machine) MutateFile(path string, fn func(*File)) bool {
	f := m.ReadFile(path)
	if f == nil {
		return false
	}
	c := f.Clone()
	fn(c)
	c.Path = path
	m.WriteFile(c)
	return true
}

// Paths returns every file path on the machine, sorted.
func (m *Machine) Paths() []string {
	// Walk layers root-first so that deletions in child layers win over
	// files present in ancestors.
	var chain []*Machine
	for cur := m; cur != nil; cur = cur.parent {
		chain = append(chain, cur)
	}
	seen := make(map[string]bool)
	for i := len(chain) - 1; i >= 0; i-- {
		layer := chain[i]
		for p := range layer.files {
			seen[p] = true
		}
		for p := range layer.deleted {
			delete(seen, p)
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Files returns every file, sorted by path.
func (m *Machine) Files() []*File {
	paths := m.Paths()
	out := make([]*File, 0, len(paths))
	for _, p := range paths {
		if f := m.ReadFile(p); f != nil {
			out = append(out, f)
		}
	}
	return out
}

// SetEnv sets an environment variable.
func (m *Machine) SetEnv(key, value string) { m.env[key] = value }

// Getenv returns the value of an environment variable and whether it is set.
func (m *Machine) Getenv(key string) (string, bool) {
	v, ok := m.env[key]
	if !ok && m.parent != nil {
		return m.parent.Getenv(key)
	}
	return v, ok
}

// AllEnv returns a copy of the full environment.
func (m *Machine) AllEnv() map[string]string {
	out := make(map[string]string)
	if m.parent != nil {
		for k, v := range m.parent.AllEnv() {
			out[k] = v
		}
	}
	for k, v := range m.env {
		out[k] = v
	}
	return out
}

// InstallPackage records pkg as installed and owning the given files.
// The files themselves must be written separately (the package manager in
// internal/pkgmgr does both).
func (m *Machine) InstallPackage(ref PackageRef, files []string) {
	m.packages[ref.Name] = ref
	m.pkgFiles[ref.Name] = append([]string(nil), files...)
}

// RemovePackage forgets an installed package. Its files are not touched.
func (m *Machine) RemovePackage(name string) {
	delete(m.packages, name)
	delete(m.pkgFiles, name)
}

// Package returns the installed ref for name, if any.
func (m *Machine) Package(name string) (PackageRef, bool) {
	ref, ok := m.packages[name]
	return ref, ok
}

// Packages lists installed packages sorted by name.
func (m *Machine) Packages() []PackageRef {
	out := make([]PackageRef, 0, len(m.packages))
	for _, ref := range m.packages {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PackageFiles returns the files owned by an installed package.
func (m *Machine) PackageFiles(name string) []string {
	return append([]string(nil), m.pkgFiles[name]...)
}

func (m *Machine) allPkgFiles() map[string][]string {
	out := make(map[string][]string)
	for k, v := range m.pkgFiles {
		out[k] = v
	}
	return out
}

// ApplicationNames returns the names of installed packages, sorted. The
// clustering algorithm splits clusters whose machines run different
// application sets with overlapping environmental resources; this is the
// application-set identity it compares.
func (m *Machine) ApplicationNames() []string {
	out := make([]string, 0, len(m.packages))
	for name := range m.packages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AppSetKey is a canonical string for the installed application set.
func (m *Machine) AppSetKey() string {
	return strings.Join(m.ApplicationNames(), ",")
}
