package scenario

import (
	"fmt"

	"repro/internal/envid"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Table 1 of the paper evaluates the identification heuristic on four
// applications. This file reconstructs the four trace populations with the
// same structure the real applications exhibited:
//
//	App      Files  Env  FP   FN  Rules
//	firefox    907  839   1   23      7
//	apache     400  251 133    0      2
//	php        215  206   0    0      0
//	mysql      286  250   0   33      1
//
// The misclassification *mechanisms* are the ones the paper reports:
// MySQL's database directory lives under /var (default-excluded) yet holds
// configuration; Apache reads its access log during initialization and its
// document root read-only on every run; Firefox loads extensions, themes
// and fonts lazily, after initialization; PHP needs no correction at all.

// Table1Population is one application's reconstructed workload.
type Table1Population struct {
	App     string
	Machine *machine.Machine
	Traces  []*trace.Trace
	// Truth is the ground-truth set of environmental file resources.
	Truth map[string]bool
	// Rules are the vendor rules that perfect the classification.
	Rules []envid.Rule
}

// Table1Row is one row of the reproduced table.
type Table1Row struct {
	App            string
	FilesTotal     int
	EnvResources   int
	FalsePositives int
	FalseNegatives int
	VendorRules    int
}

func (r Table1Row) String() string {
	return fmt.Sprintf("%-8s files=%4d env=%4d FP=%3d FN=%3d rules=%d",
		r.App, r.FilesTotal, r.EnvResources, r.FalsePositives, r.FalseNegatives, r.VendorRules)
}

// file writes a file of the given type and returns its path.
func addFile(m *machine.Machine, path string, t machine.FileType) string {
	m.WriteFile(&machine.File{Path: path, Type: t, Data: []byte("content of " + path)})
	return path
}

// addMany writes n numbered files under prefix and returns their paths.
func addMany(m *machine.Machine, prefix string, n int, t machine.FileType) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = addFile(m, fmt.Sprintf("%s%03d", prefix, i), t)
	}
	return out
}

func openAll(tr *trace.Trace, paths []string, mode trace.Mode) {
	for _, p := range paths {
		tr.Open(p, mode)
	}
}

// MySQLTable1 reconstructs the MySQL population: 286 files accessed, 250
// environmental, 33 of which live in the /var database directory and are
// missed until one include rule is added.
func MySQLTable1() *Table1Population {
	m := machine.New("table1-mysql")
	libs := []string{
		addFile(m, "/lib/libc.so", machine.TypeSharedLib),
		addFile(m, "/lib/libpthread.so", machine.TypeSharedLib),
		addFile(m, "/lib/libm.so", machine.TypeSharedLib),
	}
	exe := addFile(m, "/usr/sbin/mysqld", machine.TypeExecutable)
	cnf := addFile(m, "/etc/mysql/my.cnf", machine.TypeConfig)
	share := addMany(m, "/usr/share/mysql/charset-", 212, machine.TypeText)
	db := addMany(m, "/var/lib/mysql/table-", 33, machine.TypeBinary)
	logs := addMany(m, "/var/log/mysql/log-", 30, machine.TypeLog)
	tmp := addMany(m, "/tmp/mysql-tmp-", 6, machine.TypeData)

	mkTrace := func(queries int) *trace.Trace {
		tr := trace.New("mysqld")
		openAll(tr, libs, trace.ModeRead)
		tr.Open(exe, trace.ModeRead)
		tr.Open(cnf, trace.ModeRead)
		openAll(tr, share, trace.ModeRead)
		openAll(tr, db, trace.ModeReadWrite)
		openAll(tr, logs, trace.ModeWrite)
		openAll(tr, tmp, trace.ModeReadWrite)
		tr.Exit("ok")
		_ = queries
		return tr
	}

	truth := make(map[string]bool)
	for _, p := range libs {
		truth[p] = true
	}
	truth[exe] = true
	truth[cnf] = true
	for _, p := range share {
		truth[p] = true
	}
	for _, p := range db {
		truth[p] = true // the paper: the database directory "also contain[s] configuration data"
	}

	return &Table1Population{
		App:     "mysql",
		Machine: m,
		Traces:  []*trace.Trace{mkTrace(1), mkTrace(2)},
		Truth:   truth,
		Rules:   []envid.Rule{envid.IncludePattern(`^/var/lib/mysql/`)},
	}
}

// ApacheTable1 reconstructs the Apache population: the access log (opened
// during initialization) and 132 document-root HTML files (read-only on
// every run) are false positives until two exclude rules are added.
func ApacheTable1() *Table1Population {
	m := machine.New("table1-apache")
	libs := []string{
		addFile(m, "/lib/libc.so", machine.TypeSharedLib),
		addFile(m, "/lib/libpthread.so", machine.TypeSharedLib),
		addFile(m, "/lib/libssl.so", machine.TypeSharedLib),
	}
	exe := addFile(m, "/usr/sbin/httpd", machine.TypeExecutable)
	conf := addFile(m, "/etc/apache/httpd.conf", machine.TypeConfig)
	acl := addFile(m, "/etc/apache/acl.conf", machine.TypeConfig)
	modules := addMany(m, "/usr/lib/apache/mod-", 245, machine.TypeSharedLib)
	accessLog := addFile(m, "/usr/local/apache/logs/access_log", machine.TypeLog)
	html := addMany(m, "/srv/www/page-", 132, machine.TypeData)
	cgiA := addMany(m, "/srv/cgi-data/a-", 8, machine.TypeData)
	cgiB := addMany(m, "/srv/cgi-data/b-", 8, machine.TypeData)

	mkTrace := func(cgi []string) *trace.Trace {
		tr := trace.New("httpd")
		openAll(tr, libs, trace.ModeRead)
		tr.Open(exe, trace.ModeRead)
		tr.Open(conf, trace.ModeRead)
		tr.Open(acl, trace.ModeRead)
		openAll(tr, modules, trace.ModeRead)
		// The log is opened while initialization is still common to all
		// runs — exactly why the heuristic flags it.
		tr.Open(accessLog, trace.ModeWrite)
		// Request-specific files break the common prefix here.
		openAll(tr, cgi, trace.ModeRead)
		// The document root is read read-only by every run.
		openAll(tr, html, trace.ModeRead)
		tr.Exit("ok")
		return tr
	}

	truth := make(map[string]bool)
	for _, p := range libs {
		truth[p] = true
	}
	truth[exe] = true
	truth[conf] = true
	truth[acl] = true
	for _, p := range modules {
		truth[p] = true
	}

	return &Table1Population{
		App:     "apache",
		Machine: m,
		Traces:  []*trace.Trace{mkTrace(cgiA), mkTrace(cgiB)},
		Truth:   truth,
		Rules: []envid.Rule{
			envid.ExcludePattern(`^/usr/local/apache/logs/`),
			envid.ExcludePattern(`^/srv/www/`),
		},
	}
}

// PHPTable1 reconstructs the PHP population: the heuristic is perfect with
// no vendor rules.
func PHPTable1() *Table1Population {
	m := machine.New("table1-php")
	libs := []string{
		addFile(m, "/lib/libc.so", machine.TypeSharedLib),
		addFile(m, "/lib/libxml2.so", machine.TypeSharedLib),
		addFile(m, "/lib/libz.so", machine.TypeSharedLib),
	}
	exe := addFile(m, "/usr/bin/php", machine.TypeExecutable)
	ini := addFile(m, "/etc/php/php.ini", machine.TypeConfig)
	ext := addMany(m, "/usr/lib/php/ext-", 201, machine.TypeSharedLib)
	scriptsA := addMany(m, "/srv/www/app/a-", 5, machine.TypeText)
	scriptsB := addMany(m, "/srv/www/app/b-", 4, machine.TypeText)

	mkTrace := func(scripts []string) *trace.Trace {
		tr := trace.New("php")
		openAll(tr, libs, trace.ModeRead)
		tr.Open(exe, trace.ModeRead)
		tr.Open(ini, trace.ModeRead)
		openAll(tr, ext, trace.ModeRead)
		openAll(tr, scripts, trace.ModeRead)
		tr.Exit("ok")
		return tr
	}

	truth := make(map[string]bool)
	for _, p := range libs {
		truth[p] = true
	}
	truth[exe] = true
	truth[ini] = true
	for _, p := range ext {
		truth[p] = true
	}

	return &Table1Population{
		App:     "php",
		Machine: m,
		Traces:  []*trace.Trace{mkTrace(scriptsA), mkTrace(scriptsB)},
		Truth:   truth,
		Rules:   nil,
	}
}

// FirefoxTable1 reconstructs the Firefox population: 23 lazily loaded
// extension/theme/font/plugin files are missed (seven include/exclude
// rules fix everything), and one cache file read during initialization is
// the single false positive.
func FirefoxTable1() *Table1Population {
	m := machine.New("table1-firefox")
	libs := []string{
		addFile(m, "/lib/libc.so", machine.TypeSharedLib),
		addFile(m, "/lib/libgtk.so", machine.TypeSharedLib),
		addFile(m, "/lib/libX11.so", machine.TypeSharedLib),
	}
	exe := addFile(m, "/usr/lib/firefox/firefox-bin", machine.TypeExecutable)
	prefs := addFile(m, "/home/user/.mozilla/firefox/prefs.js", machine.TypeConfig)
	localstore := addFile(m, "/home/user/.mozilla/firefox/localstore.rdf", machine.TypeConfig)
	bundled := addMany(m, "/usr/lib/firefox/res-", 810, machine.TypeSharedLib)
	cacheIndex := addFile(m, "/home/user/.mozilla/firefox/cache/_CACHE_001_", machine.TypeBinary)

	// The 23 lazily-loaded resources, grouped as the seven rule targets.
	extensions := addMany(m, "/home/user/.mozilla/firefox/extensions/ext-", 8, machine.TypeBinary)
	themes := addMany(m, "/usr/lib/firefox/themes/theme-", 5, machine.TypeBinary)
	fonts := addMany(m, "/usr/share/fonts/font-", 4, machine.TypeBinary)
	plugins := addMany(m, "/usr/lib/firefox/plugins/plugin-", 3, machine.TypeBinary)
	searchplugins := addMany(m, "/usr/lib/firefox/searchplugins/sp-", 2, machine.TypeBinary)
	dictionaries := addMany(m, "/usr/lib/firefox/dictionaries/dict-", 1, machine.TypeBinary)
	lazy := concat(extensions, themes, fonts, plugins, searchplugins, dictionaries)

	pagesA := addMany(m, "/home/user/.mozilla/firefox/cache/page-a", 34, machine.TypeData)
	pagesB := addMany(m, "/home/user/.mozilla/firefox/cache/page-b", 33, machine.TypeData)

	mkTrace := func(lazySubset, pages []string) *trace.Trace {
		tr := trace.New("firefox-bin")
		openAll(tr, libs, trace.ModeRead)
		tr.Open(exe, trace.ModeRead)
		tr.Getenv("HOME", "/home/user")
		tr.Open(prefs, trace.ModeRead)
		tr.Open(localstore, trace.ModeRead)
		openAll(tr, bundled, trace.ModeRead)
		// The cache index is consulted during initialization: the single
		// false positive.
		tr.Open(cacheIndex, trace.ModeRead)
		// Per-run page rendering: lazy resources and written cache pages.
		for i := range pages {
			if i < len(lazySubset) {
				tr.Open(lazySubset[i], trace.ModeRead)
			}
			tr.Open(pages[i], trace.ModeReadWrite)
		}
		tr.Exit("ok")
		return tr
	}

	truth := make(map[string]bool)
	for _, p := range libs {
		truth[p] = true
	}
	truth[exe] = true
	truth[prefs] = true
	truth[localstore] = true
	for _, p := range bundled {
		truth[p] = true
	}
	for _, p := range lazy {
		truth[p] = true
	}

	return &Table1Population{
		App:     "firefox",
		Machine: m,
		Traces: []*trace.Trace{
			mkTrace(lazy[:12], pagesA),
			mkTrace(lazy[12:], pagesB),
		},
		Truth: truth,
		Rules: []envid.Rule{
			envid.ExcludePattern(`^/home/user/\.mozilla/firefox/cache/`),
			envid.IncludePattern(`^/home/user/\.mozilla/firefox/extensions/`),
			envid.IncludePattern(`^/usr/lib/firefox/themes/`),
			envid.IncludePattern(`^/usr/share/fonts/`),
			envid.IncludePattern(`^/usr/lib/firefox/plugins/`),
			envid.IncludePattern(`^/usr/lib/firefox/searchplugins/`),
			envid.IncludePattern(`^/usr/lib/firefox/dictionaries/`),
		},
	}
}

func concat(groups ...[]string) []string {
	var out []string
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// Table1Populations returns all four populations in the paper's row order.
func Table1Populations() []*Table1Population {
	return []*Table1Population{FirefoxTable1(), ApacheTable1(), PHPTable1(), MySQLTable1()}
}

// EvaluateTable1 runs the heuristic on a population, without and then with
// the vendor rules, and returns the table row (heuristic-only FP/FN plus
// the rule count needed for a perfect classification).
func EvaluateTable1(p *Table1Population) (Table1Row, envid.Evaluation) {
	bare := (&envid.Identifier{}).Identify(p.Machine, p.Traces, p.App)
	bareEval := envid.Evaluate(bare, p.Truth)

	withRules := (&envid.Identifier{Rules: p.Rules}).Identify(p.Machine, p.Traces, p.App)
	ruledEval := envid.Evaluate(withRules, p.Truth)

	row := Table1Row{
		App:            p.App,
		FilesTotal:     bareEval.FilesTotal,
		EnvResources:   bareEval.EnvResources,
		FalsePositives: bareEval.FalsePositives,
		FalseNegatives: bareEval.FalseNegatives,
		VendorRules:    len(p.Rules),
	}
	return row, ruledEval
}
