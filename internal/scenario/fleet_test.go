package scenario

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/parser"
)

func TestLargeFleetClusterStructure(t *testing.T) {
	const n = 210 // 10 copies of each Table 2 variant
	fleet := LargeFleet(n)
	if len(fleet) != n {
		t.Fatalf("fleet size = %d", len(fleet))
	}

	fp := parser.NewFingerprinter(MySQLFullRegistry())
	refs := MySQLResourceRefs()
	vendorSet := fp.Fingerprint(MySQLVendorReference(), refs)
	var fps []cluster.MachineFingerprint
	for _, m := range fleet {
		fps = append(fps, cluster.NewMachineFingerprint(m.Name, fp.Fingerprint(m, refs), vendorSet, m.AppSetKey()))
	}

	clusters := cluster.Run(cluster.Config{Diameter: 3}, fps)
	// Noise must not fragment the clustering: same structure as Table 2
	// itself (15 clusters under full parsers).
	if len(clusters) != 15 {
		t.Fatalf("clusters = %d, want 15 (fleet noise leaked into fingerprints)", len(clusters))
	}
	// Every cluster has 10x the Table 2 membership: equal-sized copies.
	for _, c := range clusters {
		if c.Size()%10 != 0 {
			t.Fatalf("cluster %v size %d not a multiple of 10", c.Machines[:3], c.Size())
		}
	}

	behavior := cluster.Behavior(FleetBehavior(fleet))
	q := cluster.Evaluate(clusters, behavior)
	if !q.Sound() {
		t.Fatalf("fleet clustering not sound: w=%d %v", q.W, q.Misplaced)
	}
	// 10x the problem machines of Table 2: 50 php, 20 my.cnf.
	probs := MachinesByProblem(behavior)
	if len(probs[MySQLProblemPHP]) != 50 || len(probs[MySQLProblemMyCnf]) != 20 {
		t.Fatalf("problem counts = %d/%d", len(probs[MySQLProblemPHP]), len(probs[MySQLProblemMyCnf]))
	}
}

func TestFleetBehaviorSuffixHandling(t *testing.T) {
	fleet := LargeFleet(42)
	behavior := FleetBehavior(fleet)
	if len(behavior) != 42 {
		t.Fatalf("behaviour entries = %d", len(behavior))
	}
	// Spot checks: machine 1 is the second Table 2 variant (php4).
	if behavior[fleet[1].Name] != MySQLProblemPHP {
		t.Fatalf("machine %s behaviour = %q", fleet[1].Name, behavior[fleet[1].Name])
	}
	if behavior[fleet[0].Name] != "" {
		t.Fatalf("machine %s behaviour = %q", fleet[0].Name, behavior[fleet[0].Name])
	}
}

func TestLargeFleetDeterministic(t *testing.T) {
	a, b := LargeFleet(30), LargeFleet(30)
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("fleet generation not deterministic")
		}
		fa := a[i].ReadFile("/etc/hostname")
		fb := b[i].ReadFile("/etc/hostname")
		if string(fa.Data) != string(fb.Data) {
			t.Fatal("noise files differ across generations")
		}
	}
}
