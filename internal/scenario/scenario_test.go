package scenario

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/simulator"
)

func TestTable2Has21Machines(t *testing.T) {
	specs := MySQLTable2()
	if len(specs) != 21 {
		t.Fatalf("Table 2 machines = %d, want 21", len(specs))
	}
	names := make(map[string]bool)
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate machine name %q", s.Name)
		}
		names[s.Name] = true
	}
}

func TestMySQLBehaviorMatchesExecution(t *testing.T) {
	// The hand-labelled behaviour column of Table 2 must agree with what
	// actually happens when the upgrade is applied to the app models.
	want := MySQLBehavior()
	got := VerifyMySQLBehavior()
	for name, wb := range want {
		if got[name] != wb {
			t.Errorf("%s: labelled %q, observed %q", name, wb, got[name])
		}
	}
	// Sanity: 5 PHP-problem machines, 2 my.cnf-problem machines.
	byProb := MachinesByProblem(want)
	if len(byProb[MySQLProblemPHP]) != 5 {
		t.Fatalf("php-problem machines = %v", byProb[MySQLProblemPHP])
	}
	if len(byProb[MySQLProblemMyCnf]) != 2 {
		t.Fatalf("mycnf-problem machines = %v", byProb[MySQLProblemMyCnf])
	}
}

// Figure 6: clustering with application-specific parsers for all
// environmental resources is sound (w=0) with C=12 (15 clusters for the
// two problems).
func TestFigure6FullParsers(t *testing.T) {
	clusters := cluster.Run(cluster.Config{Diameter: 3}, MySQLFingerprints(MySQLFullRegistry()))
	q := cluster.Evaluate(clusters, MySQLBehavior())
	if !q.Sound() {
		t.Fatalf("not sound: misplaced %v", q.Misplaced)
	}
	if q.Clusters != 15 {
		t.Fatalf("clusters = %d, want 15\n%s", q.Clusters, FormatClusters(clusters, MySQLBehavior()))
	}
	if q.C != 12 {
		t.Fatalf("C = %d, want 12", q.C)
	}
	// The comment variants merge with withconfig (parsers ignore comments).
	byMachine := clusterIndex(clusters)
	if byMachine["ubt-ms4-withconfig"] != byMachine["ubt-ms4-comment-added"] ||
		byMachine["ubt-ms4-withconfig"] != byMachine["ubt-ms4-comment-deleted"] {
		t.Fatal("comment-only variants not merged with withconfig")
	}
	// Identical machines merge.
	if byMachine["ubt-ms4"] != byMachine["ubt-ms4-2"] {
		t.Fatal("identical machines split")
	}
	// The problem machines sit alone with their own problems.
	if byMachine["ubt-ms4-userconfig"] == byMachine["ubt-ms4-withconfig"] {
		t.Fatal("userconfig merged with withconfig")
	}
}

// The vendor-side regrouping discussed with Figure 6: discarding my.cnf
// items merges the configuration-variant clusters (4,5,6 and 9,10,11),
// while keeping the problematic configurations apart.
func TestFigure6DiscardPrefixes(t *testing.T) {
	cfg := cluster.Config{Diameter: 3, DiscardPrefixes: []string{"/etc/mysql/my.cnf"}}
	clusters := cluster.Run(cfg, MySQLFingerprints(MySQLFullRegistry()))
	q := cluster.Evaluate(clusters, MySQLBehavior())
	if !q.Sound() {
		t.Fatalf("regrouped clustering not sound: %v", q.Misplaced)
	}
	if q.Clusters >= 15 {
		t.Fatalf("discarding my.cnf items did not merge clusters: %d", q.Clusters)
	}
	byMachine := clusterIndex(clusters)
	if byMachine["ubt-ms4-withconfig"] != byMachine["ubt-ms4-confdirective-added"] {
		t.Fatal("config-variant clusters not merged")
	}
	if byMachine["ubt-ms4-userconfig"] == byMachine["ubt-ms4-withconfig"] {
		t.Fatal("regrouping merged the problematic configuration")
	}
}

// Figure 7: Mirage-supplied parsers only, diameter 3: the PHP-problem
// machines still cluster correctly, but the my.cnf-problem machines mix
// with healthy machines (w=2).
func TestFigure7MirageParsersOnly(t *testing.T) {
	clusters := cluster.Run(cluster.Config{Diameter: 3}, MySQLFingerprints(MySQLMirageRegistry()))
	behavior := MySQLBehavior()
	q := cluster.Evaluate(clusters, behavior)
	if q.W != 2 {
		t.Fatalf("w = %d, want 2 (misplaced: %v)\n%s", q.W, q.Misplaced,
			FormatClusters(clusters, behavior))
	}
	for _, m := range q.Misplaced {
		if behavior[m] != MySQLProblemMyCnf {
			t.Fatalf("misplaced machine %s has problem %q, want my.cnf problem", m, behavior[m])
		}
	}
	// PHP-problem machines are still grouped only with PHP-problem machines.
	byMachine := clusterIndex(clusters)
	for _, c := range clusters {
		probs := make(map[string]bool)
		for _, m := range c.Machines {
			probs[behavior[m]] = true
		}
		if probs[MySQLProblemPHP] && (probs[""] || probs[MySQLProblemMyCnf]) {
			t.Fatalf("php-problem machines mixed: %v", c.Machines)
		}
	}
	_ = byMachine
}

// Diameter 0 would separate the my.cnf problem but explode benign comment
// variants into separate clusters — the trade-off §4.2.1 discusses.
func TestFigure7DiameterZeroTradeoff(t *testing.T) {
	d0 := cluster.Run(cluster.Config{Diameter: 0}, MySQLFingerprints(MySQLMirageRegistry()))
	q0 := cluster.Evaluate(d0, MySQLBehavior())
	if !q0.Sound() {
		t.Fatalf("diameter 0 not sound: %v", q0.Misplaced)
	}
	d3 := cluster.Run(cluster.Config{Diameter: 3}, MySQLFingerprints(MySQLMirageRegistry()))
	if len(d0) <= len(d3) {
		t.Fatalf("diameter 0 should create more clusters: %d vs %d", len(d0), len(d3))
	}
}

// Figure 8: Firefox with full parsers: sound, C=2 (4 clusters, 1 problem).
func TestFigure8FirefoxFullParsers(t *testing.T) {
	clusters := cluster.Run(cluster.Config{Diameter: 3}, FirefoxFingerprints(FirefoxFullRegistry()))
	behavior := FirefoxBehavior()
	q := cluster.Evaluate(clusters, behavior)
	if !q.Sound() {
		t.Fatalf("not sound: %v\n%s", q.Misplaced, FormatClusters(clusters, behavior))
	}
	if q.Clusters != 4 || q.C != 2 {
		t.Fatalf("clusters=%d C=%d, want 4 and 2\n%s", q.Clusters, q.C,
			FormatClusters(clusters, behavior))
	}
	byMachine := clusterIndex(clusters)
	if byMachine["firefox15-fresh"] != byMachine["firefox15-fresh-2"] {
		t.Fatal("identical fresh machines split")
	}
	if byMachine["firefox15-from10"] != byMachine["firefox15-from10-2"] {
		t.Fatal("identical from10 machines split")
	}
	if byMachine["firefox15-fresh"] == byMachine["firefox15-fresh-nojava"] {
		t.Fatal("nojava machine merged with fresh (java settings are relevant)")
	}
}

// Figure 9 left: Mirage parsers only, diameter 4: ideal clustering (w=0,
// C=0 — exactly problem vs non-problem).
func TestFigure9Diameter4Ideal(t *testing.T) {
	clusters := cluster.Run(cluster.Config{Diameter: 4}, FirefoxFingerprints(FirefoxMirageRegistry()))
	q := cluster.Evaluate(clusters, FirefoxBehavior())
	if !q.Ideal() {
		t.Fatalf("not ideal: clusters=%d C=%d w=%d\n%s", q.Clusters, q.C, q.W,
			FormatClusters(clusters, FirefoxBehavior()))
	}
	if q.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", q.Clusters)
	}
}

// Figure 9 right: diameter 6: imperfect, w=3 — the problematic machines
// are clustered with the healthy ones.
func TestFigure9Diameter6Imperfect(t *testing.T) {
	clusters := cluster.Run(cluster.Config{Diameter: 6}, FirefoxFingerprints(FirefoxMirageRegistry()))
	q := cluster.Evaluate(clusters, FirefoxBehavior())
	if q.W != 3 {
		t.Fatalf("w = %d, want 3\n%s", q.W, FormatClusters(clusters, FirefoxBehavior()))
	}
}

func TestFirefoxBehaviorMatchesExecution(t *testing.T) {
	want := FirefoxBehavior()
	got := VerifyFirefoxBehavior()
	for name, wb := range want {
		if got[name] != wb {
			t.Errorf("%s: labelled %q, observed %q", name, wb, got[name])
		}
	}
}

// Table 1: the reproduced populations yield the paper's row values.
func TestTable1Rows(t *testing.T) {
	want := map[string]Table1Row{
		"firefox": {App: "firefox", FilesTotal: 907, EnvResources: 839, FalsePositives: 1, FalseNegatives: 23, VendorRules: 7},
		"apache":  {App: "apache", FilesTotal: 400, EnvResources: 251, FalsePositives: 133, FalseNegatives: 0, VendorRules: 2},
		"php":     {App: "php", FilesTotal: 215, EnvResources: 206, FalsePositives: 0, FalseNegatives: 0, VendorRules: 0},
		"mysql":   {App: "mysql", FilesTotal: 286, EnvResources: 250, FalsePositives: 0, FalseNegatives: 33, VendorRules: 1},
	}
	for _, p := range Table1Populations() {
		row, ruled := EvaluateTable1(p)
		if row != want[p.App] {
			t.Errorf("%s row = %+v, want %+v", p.App, row, want[p.App])
		}
		// With the vendor rules, classification must be perfect.
		if ruled.FalsePositives != 0 || ruled.FalseNegatives != 0 {
			t.Errorf("%s with rules: FP=%d (%v) FN=%d (%v)", p.App,
				ruled.FalsePositives, ruled.FalsePositive, ruled.FalseNegatives, ruled.FalseNegative)
		}
	}
}

func TestPaperDeploymentShape(t *testing.T) {
	specs := PaperDeployment(ProblemsLast)
	if len(specs) != 20 {
		t.Fatalf("clusters = %d", len(specs))
	}
	total, prev := 0, 0
	for _, c := range specs {
		total += c.Size
		if c.Problem == ProblemPrevalent {
			prev += c.Size
		}
	}
	if total != PaperMachines {
		t.Fatalf("machines = %d", total)
	}
	if prev != 15000 {
		t.Fatalf("prevalent machines = %d, want 15000 (15%%)", prev)
	}
	if ProblemMachineCount(specs) != 25000 {
		t.Fatalf("m = %d, want 25000", ProblemMachineCount(specs))
	}
}

func TestDeploymentPlacements(t *testing.T) {
	first := Deployment(1000, 10, 20, ProblemsFirst)
	if first[0].Problem == "" {
		t.Fatal("ProblemsFirst left first cluster clean")
	}
	last := Deployment(1000, 10, 20, ProblemsLast)
	if last[len(last)-1].Problem == "" {
		t.Fatal("ProblemsLast left last cluster clean")
	}
	uniform := Deployment(1000, 10, 20, ProblemsUniform)
	probIdx := []int{}
	for i, c := range uniform {
		if c.Problem != "" {
			probIdx = append(probIdx, i)
		}
	}
	if len(probIdx) != 4 { // 2 prevalent clusters at 20% + 2 non-prevalent
		t.Fatalf("uniform problems at %v", probIdx)
	}
}

func TestWithMisplaced(t *testing.T) {
	specs := PaperDeployment(ProblemsLast)
	first := WithMisplaced(specs, true)
	if len(first[0].Misplaced) != 1 {
		t.Fatalf("first-cluster misplacement: %+v", first[0])
	}
	last := WithMisplaced(specs, false)
	idx := -1
	for i, c := range last {
		if len(c.Misplaced) > 0 {
			idx = i
		}
	}
	if idx != 14 { // last clean cluster before the 5 problem clusters
		t.Fatalf("last-clean misplacement at %d", idx)
	}
	// The original is untouched.
	for _, c := range specs {
		if len(c.Misplaced) != 0 {
			t.Fatal("WithMisplaced mutated input")
		}
	}
}

// Figure 10 end-to-end on the paper scenario: the protocol relationships
// the paper reports must hold at full scale.
func TestFigure10PaperScale(t *testing.T) {
	p := simulator.DefaultParams()
	ns := simulator.NoStaging(p, PaperDeployment(ProblemsLast))
	bbest := simulator.Balanced(p, PaperDeployment(ProblemsLast))
	bworst := simulator.Balanced(p, PaperDeployment(ProblemsFirst))
	rnd := simulator.RandomStaging(p, PaperDeployment(ProblemsUniform), 42)
	fl := simulator.FrontLoading(p, PaperDeployment(ProblemsLast))

	// Overhead: m for NoStaging, p for Balanced/Random, p+Cp for
	// FrontLoading.
	if ns.Overhead != 25000 {
		t.Fatalf("NoStaging overhead = %d, want 25000 (m)", ns.Overhead)
	}
	if bbest.Overhead != 3 || bworst.Overhead != 3 || rnd.Overhead != 3 {
		t.Fatalf("Balanced/Random overhead = %d/%d/%d, want 3 (p)",
			bbest.Overhead, bworst.Overhead, rnd.Overhead)
	}
	if fl.Overhead != 5 {
		t.Fatalf("FrontLoading overhead = %d, want 5 (p + Cp)", fl.Overhead)
	}

	// NoStaging: 75% of clusters pass at download+test time.
	if got := ns.FractionByTime(p.RoundTrip()); got != 0.75 {
		t.Fatalf("NoStaging fraction at t=15: %v", got)
	}
	// FrontLoading completes all clusters before Balanced worst-case.
	if fl.Makespan >= bworst.Makespan {
		t.Fatalf("FrontLoading makespan %v >= Balanced worst %v", fl.Makespan, bworst.Makespan)
	}
	// Balanced best reaches half the fleet long before FrontLoading starts.
	if bbest.FractionByTime(1000) < 0.5 || fl.FractionByTime(1500) != 0 {
		t.Fatalf("early fractions: balanced=%v frontloading=%v",
			bbest.FractionByTime(1000), fl.FractionByTime(1500))
	}
}

func clusterIndex(clusters []*cluster.Cluster) map[string]int {
	out := make(map[string]int)
	for i, c := range clusters {
		for _, m := range c.Machines {
			out[m] = i
		}
	}
	return out
}
