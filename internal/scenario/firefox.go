package scenario

import (
	"strings"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/machine"
	"repro/internal/parser"
)

// FirefoxProblemLegacyPrefs labels the Firefox 2.0 upgrade problem: two
// preference files carried over from 1.0.x cause erratic behaviour
// (paper ref [11]).
const FirefoxProblemLegacyPrefs = "firefox-legacy-prefs"

// Preference file contents. Machines migrated from 1.0.4 carry legacy
// entries (the "1.0" markers the Firefox model keys on) plus a leftover
// migration artifact; fresh profiles do not. Every variant also contains
// user-specific noise (timestamps, window coordinates) that differs per
// machine and must be discarded by the vendor's parser.
const (
	ffPrefsFresh = "browser.startup.homepage = about:home\n" +
		"javascript.enabled = true\njava.enabled = true\n" +
		"last_window_x = %X%\nlast_session_time = %T%\n"
	ffPrefsFreshNoJava = "browser.startup.homepage = about:home\n" +
		"javascript.enabled = false\njava.enabled = false\n" +
		"last_window_x = %X%\nlast_session_time = %T%\n"
	ffPrefsFrom10 = "browser.startup.homepage = about:home\n" +
		"javascript.enabled = true\njava.enabled = true\n" +
		"profile.migrated_from = 1.0.4\nextensions.lastAppVersion = 1.0.4\n" +
		"last_window_x = %X%\nlast_session_time = %T%\n"
	ffPrefsFrom10NoJava = "browser.startup.homepage = about:home\n" +
		"javascript.enabled = false\njava.enabled = false\n" +
		"profile.migrated_from = 1.0.4\nextensions.lastAppVersion = 1.0.4\n" +
		"last_window_x = %X%\nlast_session_time = %T%\n"

	ffLocalstoreFresh  = "window.state = default\ntoolbar.layout = standard\n"
	ffLocalstoreFrom10 = "window.state = carried-over-1.0\ntoolbar.layout = legacy-1.0\n"
)

// FirefoxMachineSpec describes one Table 3 configuration.
type FirefoxMachineSpec struct {
	Name     string
	From10   bool // profile upgraded from 1.0.4
	NoJava   bool // Java and JavaScript disabled
	Noise    string
	Behavior string
}

// FirefoxTable3 returns the six machine configurations of Table 3. All run
// Firefox 1.5.0.7 before the 2.0 upgrade; the three from10 machines
// exhibit the legacy-preferences problem.
func FirefoxTable3() []FirefoxMachineSpec {
	return []FirefoxMachineSpec{
		{Name: "firefox15-fresh", Noise: "101"},
		{Name: "firefox15-fresh-2", Noise: "257"},
		{Name: "firefox15-fresh-nojava", NoJava: true, Noise: "390"},
		{Name: "firefox15-from10", From10: true, Noise: "148", Behavior: FirefoxProblemLegacyPrefs},
		{Name: "firefox15-from10-2", From10: true, Noise: "512", Behavior: FirefoxProblemLegacyPrefs},
		{Name: "firefox15-from10-nojava", From10: true, NoJava: true, Noise: "777", Behavior: FirefoxProblemLegacyPrefs},
	}
}

// BuildFirefoxMachine constructs the simulated machine for one spec.
func BuildFirefoxMachine(spec FirefoxMachineSpec) *machine.Machine {
	m := machine.New(spec.Name)
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(&machine.File{Path: "/lib/libc.so", Type: machine.TypeSharedLib,
		Data: []byte("libc 2.4 ubt-build"), Version: "2.4"})
	m.WriteFile(&machine.File{Path: apps.FirefoxExec, Type: machine.TypeExecutable,
		Data: []byte("firefox-bin 1.5.0.7"), Version: "1.5.0.7"})
	m.WriteFile(&machine.File{Path: "/usr/lib/firefox/libxul.so", Type: machine.TypeSharedLib,
		Data: []byte("libxul 1.5.0.7"), Version: "1.5.0.7"})
	m.InstallPackage(machine.PackageRef{Name: "firefox", Version: "1.5.0.7"},
		[]string{apps.FirefoxExec, "/usr/lib/firefox/libxul.so"})

	prefs := ffPrefsFresh
	localstore := ffLocalstoreFresh
	switch {
	case spec.From10 && spec.NoJava:
		prefs = ffPrefsFrom10NoJava
		localstore = ffLocalstoreFrom10
	case spec.From10:
		prefs = ffPrefsFrom10
		localstore = ffLocalstoreFrom10
	case spec.NoJava:
		prefs = ffPrefsFreshNoJava
	}
	prefs = injectNoise(prefs, spec.Noise)
	m.WriteFile(&machine.File{Path: apps.FirefoxPrefs, Type: machine.TypeConfig, Data: []byte(prefs)})
	m.WriteFile(&machine.File{Path: apps.FirefoxLocalstore, Type: machine.TypeConfig, Data: []byte(localstore)})
	if spec.From10 {
		// Leftover migration artifact from the 1.0.4 -> 1.5 upgrade.
		m.WriteFile(&machine.File{Path: "/home/user/.mozilla/firefox/prefs-1.0.bak",
			Type: machine.TypeConfig, Data: []byte("backup of 1.0 preferences")})
	}
	return m
}

// injectNoise substitutes per-machine user-specific values (window
// coordinates, timestamps) into a preference template.
func injectNoise(prefs, noise string) string {
	prefs = strings.ReplaceAll(prefs, "%X%", noise)
	return strings.ReplaceAll(prefs, "%T%", noise+noise)
}

// FirefoxVendorReference returns the vendor's reference machine: a fresh
// 1.5.0.7 profile.
func FirefoxVendorReference() *machine.Machine {
	return BuildFirefoxMachine(FirefoxMachineSpec{Name: "vendor-reference", Noise: "0"})
}

// FirefoxResourceRefs lists Firefox's environmental resources for the
// clustering experiments.
func FirefoxResourceRefs() []string {
	return []string{
		"/lib/libc.so",
		apps.FirefoxExec,
		"/usr/lib/firefox/libxul.so",
		apps.FirefoxPrefs,
		apps.FirefoxLocalstore,
		"/home/user/.mozilla/firefox/prefs-1.0.bak",
	}
}

// FirefoxFullRegistry is the Figure 8 setup: vendor parsers for the
// preference files, configured to discard the user-specific noise
// (timestamps and window coordinates) that would otherwise pollute items.
func FirefoxFullRegistry() *parser.Registry {
	reg := parser.MirageRegistry().Clone()
	prefParser := parser.ConfigParser{IgnoreKeys: []string{"last_window_x", "last_session_time"}}
	reg.RegisterPath(apps.FirefoxPrefs, prefParser)
	reg.RegisterPath(apps.FirefoxLocalstore, prefParser)
	reg.RegisterPath("/home/user/.mozilla/firefox/prefs-1.0.bak", prefParser)
	return reg
}

// FirefoxMirageRegistry is the Figure 9 setup: Mirage parsers only; the
// preference files fall back to content fingerprinting, where the noise is
// indistinguishable from relevant settings.
func FirefoxMirageRegistry() *parser.Registry {
	return parser.MirageRegistry().Clone()
}

// FirefoxBehavior returns the ground-truth behaviour for the 2.0 upgrade.
func FirefoxBehavior() cluster.Behavior {
	b := make(cluster.Behavior)
	for _, spec := range FirefoxTable3() {
		b[spec.Name] = spec.Behavior
	}
	return b
}

// FirefoxFingerprints fingerprints the Table 3 machines against the vendor
// reference with the given registry.
func FirefoxFingerprints(reg *parser.Registry) []cluster.MachineFingerprint {
	fp := parser.NewFingerprinter(reg)
	refs := FirefoxResourceRefs()
	vendorSet := fp.Fingerprint(FirefoxVendorReference(), refs)
	var out []cluster.MachineFingerprint
	for _, spec := range FirefoxTable3() {
		m := BuildFirefoxMachine(spec)
		out = append(out, cluster.NewMachineFingerprint(m.Name, fp.Fingerprint(m, refs), vendorSet, m.AppSetKey()))
	}
	return out
}

// VerifyFirefoxBehavior applies the 2.0 upgrade to each Table 3 machine
// via the app model and reports observed behaviour ("" = output unchanged,
// FirefoxProblemLegacyPrefs = outputs diverge), grounding the labels.
func VerifyFirefoxBehavior() cluster.Behavior {
	out := make(cluster.Behavior)
	urls := []string{"http://example.org", "http://news.example.com"}
	for _, spec := range FirefoxTable3() {
		m := BuildFirefoxMachine(spec)
		before := (apps.Firefox{}).Run(m, urls)
		m.WriteFile(&machine.File{Path: apps.FirefoxExec, Type: machine.TypeExecutable,
			Data: []byte("firefox-bin 2.0"), Version: "2.0"})
		m.WriteFile(&machine.File{Path: "/usr/lib/firefox/libxul.so", Type: machine.TypeSharedLib,
			Data: []byte("libxul 2.0"), Version: "2.0"})
		after := (apps.Firefox{}).Run(m, urls)

		behavior := ""
		if after.ExitStatus() != "ok" {
			behavior = FirefoxProblemLegacyPrefs
		} else {
			bo, ao := before.Outputs(), after.Outputs()
			for i := range bo {
				if i < len(ao) && string(bo[i].Data) != string(ao[i].Data) {
					behavior = FirefoxProblemLegacyPrefs
					break
				}
			}
		}
		out[spec.Name] = behavior
	}
	return out
}
