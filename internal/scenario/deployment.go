package scenario

import (
	"fmt"

	"repro/internal/simulator"
	"repro/internal/staging"
)

// Deployment scenario of §4.3.1: 100,000 machines in 20 equal clusters,
// one representative per cluster; download/test/fix times of 5/10/500; one
// prevalent problem affecting 15% of machines (three clusters) and two
// non-prevalent problems in one cluster each.
const (
	PaperMachines     = 100_000
	PaperClusters     = 20
	PaperPrevalentPct = 15
)

// Problem labels of the paper scenario.
const (
	ProblemPrevalent = "prevalent"
	ProblemNonPrev1  = "nonprevalent-1"
	ProblemNonPrev2  = "nonprevalent-2"
)

// Placement positions the problem clusters within the Balanced deployment
// order (ascending distance).
type Placement int

const (
	// ProblemsLast puts the problem clusters farthest from the vendor —
	// the best case for Balanced (problems discovered as late as
	// possible) and the natural case for FrontLoading's ordering.
	ProblemsLast Placement = iota
	// ProblemsFirst puts them nearest — Balanced's worst case.
	ProblemsFirst
	// ProblemsUniform spreads them evenly across the order — the
	// RandomStaging evaluation case.
	ProblemsUniform
)

// PaperDeployment builds the §4.3 cluster specs.
func PaperDeployment(placement Placement) []simulator.ClusterSpec {
	return Deployment(PaperMachines, PaperClusters, PaperPrevalentPct, placement)
}

// Deployment builds a parameterized version of the scenario: total
// machines in nClusters equal clusters; the prevalent problem covers
// prevalentPct percent of machines (rounded to whole clusters, at least
// one); two non-prevalent problems affect one cluster each.
func Deployment(machines, nClusters, prevalentPct int, placement Placement) []simulator.ClusterSpec {
	if nClusters < 5 {
		panic("scenario: need at least 5 clusters for 3 problem groups")
	}
	size := machines / nClusters
	prevClusters := (machines*prevalentPct + 99) / (100 * size)
	if prevClusters < 1 {
		prevClusters = 1
	}
	if prevClusters > nClusters-2 {
		prevClusters = nClusters - 2
	}

	specs := make([]simulator.ClusterSpec, nClusters)
	for i := range specs {
		specs[i] = simulator.ClusterSpec{
			Name:     fmt.Sprintf("cluster-%02d", i),
			Size:     size,
			Reps:     1,
			Distance: i + 1,
		}
	}

	problems := make([]string, 0, prevClusters+2)
	for i := 0; i < prevClusters; i++ {
		problems = append(problems, ProblemPrevalent)
	}
	problems = append(problems, ProblemNonPrev1, ProblemNonPrev2)

	switch placement {
	case ProblemsFirst:
		for i, p := range problems {
			specs[i].Problem = p
		}
	case ProblemsUniform:
		stride := nClusters / len(problems)
		for i, p := range problems {
			specs[i*stride].Problem = p
		}
	default: // ProblemsLast
		for i, p := range problems {
			specs[nClusters-1-i].Problem = p
		}
	}
	return specs
}

// WithMisplaced returns a copy of specs with one misplaced problematic
// machine (a new, distinct problem) injected into the first or last clean
// cluster of the Balanced order — the Figure 11 setup.
func WithMisplaced(specs []simulator.ClusterSpec, inFirstCluster bool) []simulator.ClusterSpec {
	out := make([]simulator.ClusterSpec, len(specs))
	copy(out, specs)
	idx := -1
	if inFirstCluster {
		for i := range out {
			if out[i].Problem == "" {
				idx = i
				break
			}
		}
	} else {
		for i := len(out) - 1; i >= 0; i-- {
			if out[i].Problem == "" {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		panic("scenario: no clean cluster to misplace into")
	}
	out[idx].Misplaced = append(append([]string(nil), out[idx].Misplaced...), "misplaced-problem")
	return out
}

// DeploymentPlan builds the staged wave schedule for the scenario's
// clusters under the given policy — the plan both the simulator and the
// live controller execute. seed matters only for PolicyRandomStaging.
func DeploymentPlan(policy staging.Policy, specs []simulator.ClusterSpec, seed uint64) *staging.Plan {
	return simulator.PlanFor(policy, specs, seed)
}

// ProblemMachineCount returns m, the total number of problematic machines.
func ProblemMachineCount(specs []simulator.ClusterSpec) int {
	m := 0
	for _, c := range specs {
		if c.Problem != "" {
			m += c.Size
		}
		m += len(c.Misplaced)
	}
	return m
}
