package scenario

import (
	"fmt"

	"repro/internal/machine"
)

// LargeFleet generates n machines for fleet-scale tests by cycling through
// the Table 2 configuration variants and perturbing each instance with
// machine-local noise that a correct pipeline must ignore:
//
//   - a distinct hostname file (user-specific data, excluded from the
//     resource list);
//   - my.cnf comment variations (discarded by the config parser);
//   - unrelated data files (never identified as environmental resources).
//
// Machines generated from the same variant must therefore land in the same
// cluster, so the expected cluster structure of a LargeFleet equals that of
// Table 2 itself.
func LargeFleet(n int) []*machine.Machine {
	specs := MySQLTable2()
	out := make([]*machine.Machine, n)
	for i := 0; i < n; i++ {
		spec := specs[i%len(specs)]
		spec.Name = fmt.Sprintf("%s-n%04d", spec.Name, i)
		m := BuildMySQLMachine(spec)

		// Machine-local noise.
		m.WriteFile(&machine.File{
			Path: "/etc/hostname", Type: machine.TypeText,
			Data: []byte(spec.Name),
		})
		m.WriteFile(&machine.File{
			Path: fmt.Sprintf("/home/user/notes-%d.txt", i), Type: machine.TypeData,
			Data: []byte(fmt.Sprintf("scratch file %d", i)),
		})
		if spec.EtcCnf != "" && i%3 == 0 {
			// Append a locally added comment; the config parser must make
			// this invisible to clustering.
			m.MutateFile("/etc/mysql/my.cnf", func(f *machine.File) {
				f.Data = append(f.Data, []byte(fmt.Sprintf("# local note on machine %d\n", i))...)
			})
		}
		out[i] = m
	}
	return out
}

// FleetBehavior returns the expected behaviour for a LargeFleet(n) under
// the MySQL 4->5 upgrade, derived from the underlying variant of each
// machine.
func FleetBehavior(fleet []*machine.Machine) map[string]string {
	byVariant := make(map[string]string)
	for _, spec := range MySQLTable2() {
		byVariant[spec.Name] = spec.Behavior
	}
	out := make(map[string]string, len(fleet))
	for _, m := range fleet {
		// Strip the -nXXXX suffix to recover the variant name.
		name := m.Name
		if len(name) > 6 && name[len(name)-6] == '-' && name[len(name)-5] == 'n' {
			name = name[:len(name)-6]
		}
		out[m.Name] = byVariant[name]
	}
	return out
}
