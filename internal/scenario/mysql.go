// Package scenario reconstructs the paper's evaluation setups: the MySQL
// and Firefox machine configurations of Tables 2 and 3 (driving Figures
// 6-9), the four application trace populations behind Table 1, and the
// 100,000-machine deployment scenario of §4.3 (Figures 10 and 11).
//
// The real evaluation used Fedora Core 5 and Ubuntu 6.06 installations;
// these builders produce simulated machines whose item-level differences
// match the ones the paper's clustering saw (distribution builds of libc
// and mysqld, presence and contents of my.cnf files, Firefox preference
// files carried over from 1.0.x).
package scenario

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/machine"
	"repro/internal/parser"
)

// MySQLProblemPHP and MySQLProblemMyCnf label the two upgrade problems of
// the MySQL experiment.
const (
	MySQLProblemPHP   = "php-broken-dependency"
	MySQLProblemMyCnf = "mycnf-legacy-config"
)

// etcMyCnf is the system configuration file variants; comments differ but
// semantics only change for the confdirective variants.
const (
	etcMyCnfBase = "# The MySQL database server configuration file.\n" +
		"[mysqld]\nport = 3306\ndatadir = /var/lib/mysql\nkey_buffer = 16M\n" +
		"[client]\nsocket = /var/run/mysqld/mysqld.sock\n"
	etcMyCnfCommentAdded = "# The MySQL database server configuration file.\n" +
		"# Edited by the local administrator on a rainy Tuesday.\n" +
		"[mysqld]\nport = 3306\ndatadir = /var/lib/mysql\nkey_buffer = 16M\n" +
		"[client]\nsocket = /var/run/mysqld/mysqld.sock\n"
	etcMyCnfCommentDeleted = "[mysqld]\nport = 3306\ndatadir = /var/lib/mysql\nkey_buffer = 16M\n" +
		"[client]\nsocket = /var/run/mysqld/mysqld.sock\n"
	etcMyCnfDirectiveAdded = "# The MySQL database server configuration file.\n" +
		"[mysqld]\nport = 3306\ndatadir = /var/lib/mysql\nkey_buffer = 16M\nmax_connections = 200\n" +
		"[client]\nsocket = /var/run/mysqld/mysqld.sock\n"
	etcMyCnfDirectiveDeleted = "# The MySQL database server configuration file.\n" +
		"[mysqld]\nport = 3306\ndatadir = /var/lib/mysql\n" +
		"[client]\nsocket = /var/run/mysqld/mysqld.sock\n"
	userMyCnf = "[client]\nuser = admin\nold-passwords = 1\n"

	// Distinct fc5 content: Fedora's my.cnf ships by default and is
	// formatted differently.
	fc5MyCnf = "# Fedora Core MySQL configuration\n" +
		"[mysqld]\nport = 3306\ndatadir = /var/lib/mysql\nkey_buffer = 16M\n" +
		"[client]\nsocket = /var/run/mysqld/mysqld.sock\n"
	fc5MyCnfComments = "# Fedora Core MySQL configuration (locally annotated)\n" +
		"[mysqld]\nport = 3306\ndatadir = /var/lib/mysql\nkey_buffer = 16M\n" +
		"[client]\nsocket = /var/run/mysqld/mysqld.sock\n"
)

// MySQLMachineSpec describes one Table 2 configuration.
type MySQLMachineSpec struct {
	Name     string
	Distro   string // "fc5" or "ubt"
	LibcUpg  bool   // upgraded libc build
	PHP4     bool   // PHP 4.4.6 installed (compiled with MySQL support)
	Apache   bool   // Apache 1.3.9 installed (with PHP support)
	EtcCnf   string // contents of /etc/mysql/my.cnf ("" for absent)
	UserCnf  bool   // $HOME/.my.cnf present
	Behavior string // problem under the MySQL 4->5 upgrade ("" for none)
}

// MySQLTable2 returns the 21 machine configurations of Table 2.
func MySQLTable2() []MySQLMachineSpec {
	specs := []MySQLMachineSpec{
		{Name: "fc5-ms4", Distro: "fc5", EtcCnf: fc5MyCnf},
		{Name: "fc5-ms4-php4", Distro: "fc5", EtcCnf: fc5MyCnf, PHP4: true, Behavior: MySQLProblemPHP},
		{Name: "fc5-ms4-php4-ap139", Distro: "fc5", EtcCnf: fc5MyCnf, PHP4: true, Apache: true, Behavior: MySQLProblemPHP},
		{Name: "fc5-ms4-php4-comments", Distro: "fc5", EtcCnf: fc5MyCnfComments, PHP4: true, Behavior: MySQLProblemPHP},
		{Name: "ubt-ms4", Distro: "ubt"},
		{Name: "ubt-ms4-2", Distro: "ubt"},
		{Name: "ubt-ms4-php4", Distro: "ubt", PHP4: true, Behavior: MySQLProblemPHP},
		{Name: "ubt-ms4-php4-ap139", Distro: "ubt", PHP4: true, Apache: true, Behavior: MySQLProblemPHP},
	}
	// The eight Ubuntu configuration-file variants, with and without the
	// libc upgrade.
	for _, libcUpg := range []bool{false, true} {
		prefix := "ubt-ms4"
		if libcUpg {
			prefix = "ubt-ms4-libc-upg"
			specs = append(specs, MySQLMachineSpec{Name: prefix, Distro: "ubt", LibcUpg: true})
		}
		specs = append(specs,
			MySQLMachineSpec{Name: prefix + "-withconfig", Distro: "ubt", LibcUpg: libcUpg, EtcCnf: etcMyCnfBase},
			MySQLMachineSpec{Name: prefix + "-userconfig", Distro: "ubt", LibcUpg: libcUpg, UserCnf: true, Behavior: MySQLProblemMyCnf},
			MySQLMachineSpec{Name: prefix + "-confdirective-added", Distro: "ubt", LibcUpg: libcUpg, EtcCnf: etcMyCnfDirectiveAdded},
			MySQLMachineSpec{Name: prefix + "-confdirective-deleted", Distro: "ubt", LibcUpg: libcUpg, EtcCnf: etcMyCnfDirectiveDeleted},
			MySQLMachineSpec{Name: prefix + "-comment-added", Distro: "ubt", LibcUpg: libcUpg, EtcCnf: etcMyCnfCommentAdded},
			MySQLMachineSpec{Name: prefix + "-comment-deleted", Distro: "ubt", LibcUpg: libcUpg, EtcCnf: etcMyCnfCommentDeleted},
		)
	}
	return specs
}

// BuildMySQLMachine constructs the simulated machine for one spec. All
// machines run MySQL 4.1.22, as in Table 2.
func BuildMySQLMachine(spec MySQLMachineSpec) *machine.Machine {
	m := machine.New(spec.Name)
	m.SetEnv("HOME", "/home/user")

	libcVersion, libcBuild := "2.4", "ubt-build"
	if spec.Distro == "fc5" {
		libcBuild = "fc5-build"
	}
	if spec.LibcUpg {
		libcVersion, libcBuild = "2.5", "ubt-build"
	}
	m.WriteFile(&machine.File{Path: "/lib/libc.so", Type: machine.TypeSharedLib,
		Data: []byte("libc " + libcVersion + " " + libcBuild), Version: libcVersion})

	mysqldBuild := "mysqld 4.1.22 " + spec.Distro
	m.WriteFile(&machine.File{Path: apps.MySQLExec, Type: machine.TypeExecutable,
		Data: []byte(mysqldBuild), Version: "4.1.22"})
	m.WriteFile(&machine.File{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib,
		Data: []byte("libmysqlclient 4.1 " + spec.Distro), Version: "4.1"})
	m.WriteFile(&machine.File{Path: "/usr/share/mysql/errmsg.txt", Type: machine.TypeText,
		Data: []byte("error messages 4.1")})
	m.WriteFile(&machine.File{Path: "/var/lib/mysql/users.frm", Type: machine.TypeBinary,
		Data: []byte("table data")})
	m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"},
		[]string{apps.MySQLExec, apps.LibMySQLPath, "/usr/share/mysql/errmsg.txt"})

	if spec.EtcCnf != "" {
		m.WriteFile(&machine.File{Path: "/etc/mysql/my.cnf", Type: machine.TypeConfig, Data: []byte(spec.EtcCnf)})
	}
	if spec.UserCnf {
		m.WriteFile(&machine.File{Path: "/home/user/.my.cnf", Type: machine.TypeConfig, Data: []byte(userMyCnf)})
	}
	if spec.PHP4 {
		m.WriteFile(&machine.File{Path: apps.PHPExec, Type: machine.TypeExecutable,
			Data: []byte("php 4.4.6 " + spec.Distro), Version: "4.4.6"})
		m.InstallPackage(machine.PackageRef{Name: "php", Version: "4.4.6"}, []string{apps.PHPExec})
	}
	if spec.Apache {
		m.WriteFile(&machine.File{Path: apps.ApacheExec, Type: machine.TypeExecutable,
			Data: []byte("httpd 1.3.9 " + spec.Distro), Version: "1.3.9"})
		m.InstallPackage(machine.PackageRef{Name: "apache", Version: "1.3.9"}, []string{apps.ApacheExec})
	}
	return m
}

// MySQLVendorReference returns the vendor's reference machine for the
// MySQL experiment: a plain Ubuntu 6.06 install, like ubt-ms4.
func MySQLVendorReference() *machine.Machine {
	m := BuildMySQLMachine(MySQLMachineSpec{Name: "vendor-reference", Distro: "ubt"})
	return m
}

// MySQLResourceRefs is the environmental resource reference list for the
// MySQL clustering experiments: the union over machines of MySQL's
// environment (identification would produce these per machine; the union
// keeps the experiment self-contained).
func MySQLResourceRefs() []string {
	return []string{
		"/lib/libc.so",
		apps.MySQLExec,
		apps.LibMySQLPath,
		"/usr/share/mysql/errmsg.txt",
		"/etc/mysql/my.cnf",
		"/home/user/.my.cnf",
		apps.PHPExec,
		apps.ApacheExec,
	}
}

// MySQLFullRegistry returns the parser registry with application-specific
// parsers for all of MySQL's environmental resources (the Figure 6 setup).
func MySQLFullRegistry() *parser.Registry {
	reg := parser.MirageRegistry().Clone()
	reg.RegisterPath("/etc/mysql/my.cnf", parser.ConfigParser{})
	reg.RegisterPath("/home/user/.my.cnf", parser.ConfigParser{})
	reg.RegisterGlob("/usr/share/mysql/*", parser.TextParser{})
	return reg
}

// MySQLMirageRegistry returns only the Mirage-supplied parsers (the Figure
// 7 setup): executables and shared libraries are parsed; the my.cnf files
// fall back to Rabin content fingerprinting.
func MySQLMirageRegistry() *parser.Registry {
	return parser.MirageRegistry().Clone()
}

// MySQLBehavior returns the ground-truth behaviour map for the MySQL
// 4->5 upgrade over the Table 2 machines.
func MySQLBehavior() cluster.Behavior {
	b := make(cluster.Behavior)
	for _, spec := range MySQLTable2() {
		b[spec.Name] = spec.Behavior
	}
	return b
}

// MySQLFingerprints fingerprints all Table 2 machines against the vendor
// reference using the given registry, ready for cluster.Run.
func MySQLFingerprints(reg *parser.Registry) []cluster.MachineFingerprint {
	fp := parser.NewFingerprinter(reg)
	refs := MySQLResourceRefs()
	vendorSet := fp.Fingerprint(MySQLVendorReference(), refs)
	var out []cluster.MachineFingerprint
	for _, spec := range MySQLTable2() {
		m := BuildMySQLMachine(spec)
		out = append(out, cluster.NewMachineFingerprint(m.Name, fp.Fingerprint(m, refs), vendorSet, m.AppSetKey()))
	}
	return out
}

// MachinesByProblem lists machine names exhibiting each problem, for
// reporting.
func MachinesByProblem(b cluster.Behavior) map[string][]string {
	out := make(map[string][]string)
	for name, prob := range b {
		if prob != "" {
			out[prob] = append(out[prob], name)
		}
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}

// VerifyMySQLBehavior runs the actual MySQL 4->5 upgrade against every
// Table 2 machine (via the app models) and returns the observed behaviour,
// which must match MySQLBehavior. It grounds the clustering experiments in
// executable behaviour rather than hand-written labels.
func VerifyMySQLBehavior() cluster.Behavior {
	out := make(cluster.Behavior)
	for _, spec := range MySQLTable2() {
		m := BuildMySQLMachine(spec)
		// Apply the upgrade the way the package manager would: new server
		// binary and new client library.
		m.WriteFile(&machine.File{Path: apps.MySQLExec, Type: machine.TypeExecutable,
			Data: []byte("mysqld 5.0.22"), Version: "5.0.22"})
		m.WriteFile(&machine.File{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib,
			Data: []byte("libmysqlclient 5.0"), Version: "5.0"})

		behavior := ""
		if tr := (apps.MySQL{}).Run(m, []string{"SELECT 1"}); tr.ExitStatus() == "crash" {
			behavior = MySQLProblemMyCnf
		}
		if _, ok := m.Package("php"); ok && behavior == "" {
			if tr := (apps.PHP{}).Run(m, nil); tr.ExitStatus() == "crash" {
				behavior = MySQLProblemPHP
			}
		}
		out[spec.Name] = behavior
	}
	return out
}

// FormatClusters renders clusters with problem annotations, mirroring the
// presentation of Figures 6-9.
func FormatClusters(clusters []*cluster.Cluster, behavior cluster.Behavior) string {
	var sb strings.Builder
	for _, c := range clusters {
		sb.WriteString("cluster ")
		sb.WriteString(strconv.Itoa(c.ID))
		sb.WriteString(" (distance ")
		sb.WriteString(strconv.Itoa(c.Distance))
		sb.WriteString("):\n")
		for _, m := range c.Machines {
			sb.WriteString("  ")
			sb.WriteString(m)
			if p := behavior[m]; p != "" {
				sb.WriteString("  [" + p + "]")
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
