package survey

import (
	"math"
	"strings"
	"testing"
)

func TestFiftyRespondents(t *testing.T) {
	ds := Load()
	if len(ds.Respondents) != 50 {
		t.Fatalf("respondents = %d", len(ds.Respondents))
	}
	ids := make(map[int]bool)
	for _, r := range ds.Respondents {
		if ids[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		ids[r.ID] = true
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Load(), Load()
	for i := range a.Respondents {
		ra, rb := a.Respondents[i], b.Respondents[i]
		if ra.Frequency != rb.Frequency || ra.FailureRatePct != rb.FailureRatePct ||
			ra.Experience != rb.Experience {
			t.Fatalf("respondent %d differs across loads", i)
		}
	}
}

func TestDemographics(t *testing.T) {
	ds := Load()
	if got := ds.Pct(func(r Respondent) bool { return r.Experience.MoreThanFiveYears() }); got != 82 {
		t.Fatalf("experience >5y = %v%%, want 82", got)
	}
	if got := ds.Pct(func(r Respondent) bool { return r.MachinesOver20 }); got != 78 {
		t.Fatalf("machines >20 = %v%%, want 78", got)
	}
	unix, win, mac := 0, 0, 0
	for _, r := range ds.Respondents {
		if r.UNIX {
			unix++
		}
		if r.Windows {
			win++
		}
		if r.MacOS {
			mac++
		}
	}
	if unix != 48 || win != 29 || mac != 12 {
		t.Fatalf("OS counts = %d/%d/%d, want 48/29/12", unix, win, mac)
	}
}

func TestFigure1Marginals(t *testing.T) {
	ds := Load()
	// 90% upgrade monthly or more often.
	if got := ds.Pct(func(r Respondent) bool { return r.Frequency.AtLeastMonthly() }); got != 90 {
		t.Fatalf("at least monthly = %v%%, want 90", got)
	}
	fig := ds.Figure1()
	total := 0
	for f := FreqMoreThanWeekly; f <= FreqLessThanYearly; f++ {
		for _, n := range fig[f] {
			total += n
		}
	}
	if total != 50 {
		t.Fatalf("figure 1 total = %d", total)
	}
	// Experienced administrators appear across frequency buckets.
	if fig[FreqMoreThanWeekly][ExpOver10] == 0 || fig[FreqMoreThanWeekly][Exp5to10] == 0 {
		t.Fatal("experienced admins missing from the most frequent bucket")
	}
}

func TestFigure2Marginals(t *testing.T) {
	ds := Load()
	if got := ds.Pct(func(r Respondent) bool { return r.Refrains }); got != 70 {
		t.Fatalf("refrains = %v%%, want 70", got)
	}
	if got := ds.Pct(func(r Respondent) bool { return r.TestingStrategy }); got != 70 {
		t.Fatalf("testing strategy = %v%%, want 70", got)
	}
	fig := ds.Figure2()
	if fig[true][true]+fig[true][false] != 35 {
		t.Fatalf("refrainers = %d", fig[true][true]+fig[true][false])
	}
	if fig[true][true]+fig[false][true] != 35 {
		t.Fatalf("testers = %d", fig[true][true]+fig[false][true])
	}
	// Both survey findings hold simultaneously: most refrainers DO have a
	// testing strategy (they distrust upgrades anyway).
	if fig[true][true] <= fig[true][false] {
		t.Fatalf("refrainers with strategy %d <= without %d", fig[true][true], fig[true][false])
	}
}

func TestFigure3Marginals(t *testing.T) {
	ds := Load()
	fig := ds.Figure3()
	if got := fig[5] + fig[10]; got != 33 { // 66%
		t.Fatalf("5-10%% respondents = %d, want 33", got)
	}
	if mean := ds.MeanFailureRate(); math.Abs(mean-8.6) > 0.1 {
		t.Fatalf("mean failure rate = %v, want ~8.6", mean)
	}
	if med := ds.MedianFailureRate(); med != 5 {
		t.Fatalf("median failure rate = %d, want 5", med)
	}
	total := 0
	for _, n := range fig {
		total += n
	}
	if total != 50 {
		t.Fatalf("figure 3 total = %d", total)
	}
}

func TestReasonRanks(t *testing.T) {
	ds := Load()
	ranks := ds.AvgReasonRank()
	check := func(r Reason, want, tol float64) {
		if math.Abs(ranks[r]-want) > tol {
			t.Errorf("%v avg rank = %.2f, want %.1f±%.1f", r, ranks[r], want, tol)
		}
	}
	check(ReasonSecurity, 1.6, 0.001)
	check(ReasonBugFix, 2.2, 0.001)
	check(ReasonUserRequest, 3.3, 0.001)
	check(ReasonNewFeature, 3.5, 0.001)
	// Ordering is what the paper stresses: security first, features last.
	if !(ranks[ReasonSecurity] < ranks[ReasonBugFix] &&
		ranks[ReasonBugFix] < ranks[ReasonUserRequest] &&
		ranks[ReasonUserRequest] < ranks[ReasonNewFeature]) {
		t.Fatalf("reason ordering wrong: %v", ranks)
	}
}

func TestCauseRanks(t *testing.T) {
	ds := Load()
	ranks := ds.AvgCauseRank()
	// The paper's exact averages; no single cause dominates.
	want := map[Cause]float64{
		CauseBrokenDependency:  2.5,
		CauseRemovedBehavior:   2.5,
		CauseBuggyUpgrade:      2.6,
		CauseLegacyConfig:      3.1,
		CauseImproperPackaging: 3.2,
	}
	for c, w := range want {
		if math.Abs(ranks[c]-w) > 0.001 {
			t.Errorf("%v avg rank = %.2f, want %.1f", c, ranks[c], w)
		}
	}
	// Ratings stay within the survey's 1..5 scale.
	for _, r := range ds.Respondents {
		for _, rank := range r.CauseRank {
			if rank < 1 || rank > 5 {
				t.Fatalf("respondent %d has out-of-scale rating %v", r.ID, r.CauseRank)
			}
		}
	}
}

func TestOtherAggregates(t *testing.T) {
	ds := Load()
	if got := ds.Pct(func(r Respondent) bool { return r.PassedTesting }); got != 48 {
		t.Fatalf("passed-testing problems = %v%%, want 48", got)
	}
	if got := ds.Pct(func(r Respondent) bool { return r.Catastrophic }); got != 18 {
		t.Fatalf("catastrophic = %v%%, want 18", got)
	}
	if got := ds.Pct(func(r Respondent) bool { return r.ReportsProblems }); got != 50 {
		t.Fatalf("reports problems = %v%%, want 50", got)
	}
}

func TestRenderers(t *testing.T) {
	ds := Load()
	if s := ds.RenderFigure1(); !strings.Contains(s, "Once a month") {
		t.Fatalf("figure 1 render:\n%s", s)
	}
	if s := ds.RenderFigure2(); !strings.Contains(s, "refrain to install") {
		t.Fatalf("figure 2 render:\n%s", s)
	}
	if s := ds.RenderFigure3(); !strings.Contains(s, "median 5%") {
		t.Fatalf("figure 3 render:\n%s", s)
	}
}

func TestEnumStrings(t *testing.T) {
	if FreqMonthly.String() != "Once a month" || Exp5to10.String() != "5-10" {
		t.Fatal("enum strings wrong")
	}
	if ReasonSecurity.String() == "" || CauseBuggyUpgrade.String() == "" {
		t.Fatal("empty enum strings")
	}
}
