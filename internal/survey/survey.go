// Package survey encodes the 50-administrator upgrade survey of paper §2
// and regenerates its figures. The original per-respondent data was never
// published (the survey PDF link is long dead); this package reconstructs
// a respondent-level dataset whose marginal distributions reproduce every
// aggregate the paper reports:
//
//   - 50 respondents; 82% with more than five years of experience; 78%
//     managing more than 20 machines; 48 administer UNIX-like systems,
//     29 Windows, 12 Mac OS (multiple selections allowed);
//   - Figure 1: 90% upgrade at least monthly;
//   - reasons for upgrades ranked: security 1.6, bug fix 2.2, user
//     request 3.3, new feature 3.5 (average rank, 1 = most important);
//   - Figure 2: 70% refrain from installing upgrades even though 70%
//     have a testing strategy;
//   - Figure 3: 66% estimate a 5-10% upgrade failure rate; the average
//     estimate is 8.6% and the median 5%;
//   - 48% experienced problems that passed initial testing; 18% report
//     catastrophic failures; only 50% consistently report problems;
//   - causes ranked: broken dependencies 2.5, removed behaviour 2.5,
//     buggy upgrades 2.6, legacy configurations 3.1, improper
//     packaging 3.2.
package survey

import (
	"fmt"
	"sort"
	"strings"
)

// Experience buckets (years of administration experience).
type Experience int

const (
	Exp0to2 Experience = iota
	Exp2to5
	Exp5to10
	ExpOver10
)

var experienceNames = [...]string{"0-2", "2-5", "5-10", "more than 10"}

func (e Experience) String() string { return experienceNames[e] }

// MoreThanFiveYears reports whether the bucket exceeds five years.
func (e Experience) MoreThanFiveYears() bool { return e >= Exp5to10 }

// Frequency buckets of Figure 1, most frequent first.
type Frequency int

const (
	FreqMoreThanWeekly Frequency = iota
	FreqWeekly
	FreqBiweekly
	FreqMonthly
	FreqQuarterly
	FreqSemester
	FreqYearly
	FreqLessThanYearly
)

var frequencyNames = [...]string{
	"More than once a week", "Once a week", "Once every couple of weeks",
	"Once a month", "Once per quarter", "Once per semester", "Once a year",
	"Not even once a year",
}

func (f Frequency) String() string { return frequencyNames[f] }

// AtLeastMonthly reports whether the bucket is monthly or more frequent.
func (f Frequency) AtLeastMonthly() bool { return f <= FreqMonthly }

// Respondent is one survey answer sheet.
type Respondent struct {
	ID              int
	Experience      Experience
	MachinesOver20  bool
	UNIX            bool
	Windows         bool
	MacOS           bool
	Frequency       Frequency
	Refrains        bool // refrains from installing upgrades
	TestingStrategy bool
	FailureRatePct  int  // perceived % of upgrades with problems
	PassedTesting   bool // experienced problems that passed initial testing
	Catastrophic    bool // experienced catastrophic upgrade failures
	ReportsProblems bool // consistently reports problems to the vendor

	// Rankings, 1 = most important.
	ReasonRank map[Reason]int
	CauseRank  map[Cause]int
}

// Reason for performing upgrades.
type Reason int

const (
	ReasonSecurity Reason = iota
	ReasonBugFix
	ReasonUserRequest
	ReasonNewFeature
)

var reasonNames = [...]string{"security patch", "bug fix", "user request", "new feature"}

func (r Reason) String() string { return reasonNames[r] }

// Cause of failed upgrades.
type Cause int

const (
	CauseBrokenDependency Cause = iota
	CauseRemovedBehavior
	CauseBuggyUpgrade
	CauseLegacyConfig
	CauseImproperPackaging
)

var causeNames = [...]string{
	"broken dependency", "removed behavior", "buggy upgrade",
	"legacy configuration", "improper packaging",
}

func (c Cause) String() string { return causeNames[c] }

// Dataset is the reconstructed survey.
type Dataset struct {
	Respondents []Respondent
}

// frequencyPlan assigns Figure 1's histogram: 45/50 upgrade at least
// monthly (90%).
var frequencyPlan = map[Frequency]int{
	FreqMoreThanWeekly: 16,
	FreqWeekly:         11,
	FreqBiweekly:       8,
	FreqMonthly:        10,
	FreqQuarterly:      2,
	FreqSemester:       2,
	FreqYearly:         1,
	FreqLessThanYearly: 0,
}

// experiencePlan: 41/50 (82%) above five years.
var experiencePlan = map[Experience]int{
	Exp0to2:   4,
	Exp2to5:   5,
	Exp5to10:  21,
	ExpOver10: 20,
}

// failurePlan reproduces Figure 3: 33/50 (66%) in the 5-10% buckets,
// mean 8.56 (the paper's 8.6), median 5.
var failurePlan = map[int]int{
	1: 8, 5: 22, 10: 11, 20: 6, 25: 2, 30: 1,
	40: 0, 50: 0, 60: 0, 80: 0, 90: 0, 100: 0,
}

// FailureBuckets are Figure 3's x axis.
var FailureBuckets = []int{1, 5, 10, 20, 25, 30, 40, 50, 60, 80, 90, 100}

// Load builds the reconstructed dataset. It is deterministic.
func Load() *Dataset {
	ds := &Dataset{}

	// Expand the marginal plans into per-respondent assignments, pairing
	// them round-robin so cross-tabulations stay plausible (experienced
	// administrators appear in every frequency bucket, as in Figure 1).
	var freqs []Frequency
	for f := FreqMoreThanWeekly; f <= FreqLessThanYearly; f++ {
		for i := 0; i < frequencyPlan[f]; i++ {
			freqs = append(freqs, f)
		}
	}
	var exps []Experience
	for e := Exp0to2; e <= ExpOver10; e++ {
		for i := 0; i < experiencePlan[e]; i++ {
			exps = append(exps, e)
		}
	}
	var rates []int
	for _, b := range FailureBuckets {
		for i := 0; i < failurePlan[b]; i++ {
			rates = append(rates, b)
		}
	}
	sort.Ints(rates)

	for i := 0; i < 50; i++ {
		r := Respondent{
			ID: i + 1,
			// Interleave experience across frequency buckets.
			Experience:      exps[(i*17)%len(exps)],
			Frequency:       freqs[i%len(freqs)],
			FailureRatePct:  rates[(i*7)%len(rates)],
			MachinesOver20:  i%50 < 39, // 78%
			UNIX:            i%50 < 48, // 48 respondents
			Windows:         (i*3)%50 < 29,
			MacOS:           (i*7)%50 < 12,
			Refrains:        i%10 < 7,      // 70%
			PassedTesting:   (i*3)%50 < 24, // 48%
			Catastrophic:    (i*11)%50 < 9, // 18%
			ReportsProblems: i%2 == 0,      // 50%
		}
		// 70% have a testing strategy, correlated so that 27 of the 35
		// refraining administrators have one (Figure 2's stacking: most of
		// the administrators who refrain do so despite having a strategy).
		if r.Refrains {
			r.TestingStrategy = !refrainersWithoutStrategy[i]
		} else {
			r.TestingStrategy = nonRefrainersWithStrategy[i]
		}
		r.ReasonRank = reasonRanks(i)
		r.CauseRank = causeRanks(i)
		ds.Respondents = append(ds.Respondents, r)
	}
	return ds
}

// Figure 2 stacking. Respondents with i%10 in 0..6 refrain (35 of 50);
// eight of them lack a testing strategy, and eight non-refrainers have one,
// keeping both marginals at 70%.
var refrainersWithoutStrategy = map[int]bool{
	6: true, 16: true, 26: true, 36: true, 46: true,
	3: true, 13: true, 23: true,
}

var nonRefrainersWithStrategy = map[int]bool{
	7: true, 17: true, 27: true, 37: true, 47: true,
	8: true, 18: true, 28: true,
}

// rankPool expands a bucket plan (rank -> count, 50 total) into a slice.
func rankPool(plan map[int]int) []int {
	var out []int
	for rank := 1; rank <= 5; rank++ {
		for i := 0; i < plan[rank]; i++ {
			out = append(out, rank)
		}
	}
	return out
}

// Rank pools with exact sums matching the paper's averages. The survey
// allowed ties and an "other" option, so per-respondent ranks across
// categories need not form a permutation; each category's ranks are drawn
// from its own pool.
var (
	// security 1.6, bug fix 2.2, user request 3.3, new feature 3.5.
	poolSecurity = rankPool(map[int]int{1: 25, 2: 20, 3: 5})        // sum 80
	poolBugFix   = rankPool(map[int]int{1: 10, 2: 20, 3: 20})       // sum 110
	poolUserReq  = rankPool(map[int]int{2: 15, 3: 10, 4: 20, 5: 5}) // sum 165
	poolFeature  = rankPool(map[int]int{2: 15, 3: 5, 4: 20, 5: 10}) // sum 175
	// broken 2.5, removed 2.5, buggy 2.6, legacy 3.1, packaging 3.2.
	poolBroken    = rankPool(map[int]int{2: 25, 3: 25})               // sum 125
	poolRemoved   = rankPool(map[int]int{1: 10, 2: 15, 3: 15, 4: 10}) // sum 125
	poolBuggy     = rankPool(map[int]int{1: 5, 2: 20, 3: 15, 4: 10})  // sum 130
	poolLegacy    = rankPool(map[int]int{2: 10, 3: 25, 4: 15})        // sum 155
	poolPackaging = rankPool(map[int]int{2: 10, 3: 20, 4: 20})        // sum 160
)

// reasonRanks draws respondent i's reason ratings from the pools, with
// per-category offsets so the joint distribution varies across respondents.
func reasonRanks(i int) map[Reason]int {
	return map[Reason]int{
		ReasonSecurity:    poolSecurity[i],
		ReasonBugFix:      poolBugFix[(i*3)%50],
		ReasonUserRequest: poolUserReq[(i*7)%50],
		ReasonNewFeature:  poolFeature[(i*9)%50],
	}
}

// causeRanks draws respondent i's cause ratings from the pools.
func causeRanks(i int) map[Cause]int {
	return map[Cause]int{
		CauseBrokenDependency:  poolBroken[i],
		CauseRemovedBehavior:   poolRemoved[(i*3)%50],
		CauseBuggyUpgrade:      poolBuggy[(i*7)%50],
		CauseLegacyConfig:      poolLegacy[(i*9)%50],
		CauseImproperPackaging: poolPackaging[(i*11)%50],
	}
}

// Figure1 returns the upgrade-frequency histogram broken down by
// experience bucket, as charted.
func (ds *Dataset) Figure1() map[Frequency]map[Experience]int {
	out := make(map[Frequency]map[Experience]int)
	for f := FreqMoreThanWeekly; f <= FreqLessThanYearly; f++ {
		out[f] = make(map[Experience]int)
	}
	for _, r := range ds.Respondents {
		out[r.Frequency][r.Experience]++
	}
	return out
}

// Figure2 returns the reluctance-vs-testing-strategy cross table: counts
// of respondents by (refrains, has testing strategy).
func (ds *Dataset) Figure2() map[bool]map[bool]int {
	out := map[bool]map[bool]int{true: {}, false: {}}
	for _, r := range ds.Respondents {
		out[r.Refrains][r.TestingStrategy]++
	}
	return out
}

// Figure3 returns the perceived-failure-rate histogram over FailureBuckets.
func (ds *Dataset) Figure3() map[int]int {
	out := make(map[int]int)
	for _, r := range ds.Respondents {
		out[r.FailureRatePct]++
	}
	return out
}

// MeanFailureRate returns the average perceived failure rate.
func (ds *Dataset) MeanFailureRate() float64 {
	sum := 0
	for _, r := range ds.Respondents {
		sum += r.FailureRatePct
	}
	return float64(sum) / float64(len(ds.Respondents))
}

// MedianFailureRate returns the median perceived failure rate.
func (ds *Dataset) MedianFailureRate() int {
	rates := make([]int, len(ds.Respondents))
	for i, r := range ds.Respondents {
		rates[i] = r.FailureRatePct
	}
	sort.Ints(rates)
	return rates[(len(rates)-1)/2]
}

// AvgReasonRank returns the average rank per upgrade reason.
func (ds *Dataset) AvgReasonRank() map[Reason]float64 {
	sums := make(map[Reason]int)
	for _, r := range ds.Respondents {
		for reason, rank := range r.ReasonRank {
			sums[reason] += rank
		}
	}
	out := make(map[Reason]float64)
	for reason, sum := range sums {
		out[reason] = float64(sum) / float64(len(ds.Respondents))
	}
	return out
}

// AvgCauseRank returns the average rank per failure cause.
func (ds *Dataset) AvgCauseRank() map[Cause]float64 {
	sums := make(map[Cause]int)
	for _, r := range ds.Respondents {
		for cause, rank := range r.CauseRank {
			sums[cause] += rank
		}
	}
	out := make(map[Cause]float64)
	for cause, sum := range sums {
		out[cause] = float64(sum) / float64(len(ds.Respondents))
	}
	return out
}

// Pct returns the share of respondents satisfying pred, in percent.
func (ds *Dataset) Pct(pred func(Respondent) bool) float64 {
	n := 0
	for _, r := range ds.Respondents {
		if pred(r) {
			n++
		}
	}
	return 100 * float64(n) / float64(len(ds.Respondents))
}

// RenderFigure1 renders Figure 1 as an ASCII table.
func (ds *Dataset) RenderFigure1() string {
	var sb strings.Builder
	fig := ds.Figure1()
	fmt.Fprintf(&sb, "%-28s %5s %5s %6s %5s  total\n", "Upgrade frequency", "0-2", "2-5", "5-10", ">10")
	for f := FreqMoreThanWeekly; f <= FreqLessThanYearly; f++ {
		row := fig[f]
		total := row[Exp0to2] + row[Exp2to5] + row[Exp5to10] + row[ExpOver10]
		fmt.Fprintf(&sb, "%-28s %5d %5d %6d %5d  %5d\n",
			f, row[Exp0to2], row[Exp2to5], row[Exp5to10], row[ExpOver10], total)
	}
	return sb.String()
}

// RenderFigure2 renders Figure 2 as an ASCII table.
func (ds *Dataset) RenderFigure2() string {
	fig := ds.Figure2()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %-18s %-18s\n", "", "testing strategy", "no strategy")
	fmt.Fprintf(&sb, "%-20s %18d %18d\n", "refrain to install", fig[true][true], fig[true][false])
	fmt.Fprintf(&sb, "%-20s %18d %18d\n", "does not refrain", fig[false][true], fig[false][false])
	return sb.String()
}

// RenderFigure3 renders Figure 3 as an ASCII histogram.
func (ds *Dataset) RenderFigure3() string {
	fig := ds.Figure3()
	var sb strings.Builder
	sb.WriteString("% failures  respondents\n")
	for _, b := range FailureBuckets {
		fmt.Fprintf(&sb, "%9d%%  %2d %s\n", b, fig[b], strings.Repeat("#", fig[b]))
	}
	fmt.Fprintf(&sb, "mean %.1f%%, median %d%%\n", ds.MeanFailureRate(), ds.MedianFailureRate())
	return sb.String()
}
