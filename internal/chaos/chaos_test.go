package chaos

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/benchjson"
	"repro/internal/staging"
	"repro/internal/transport"
)

// stormPlan is the acceptance-grade fault schedule: seeded drop, delay
// and corruption rates plus one scheduled agent crash, bounded so the
// storm subsides and the rollout can finish.
func stormPlan(crashAgent string) transport.FaultPlan {
	return transport.FaultPlan{
		Seed:      7,
		Drop:      0.04,
		Delay:     0.12,
		Corrupt:   0.06,
		Reset:     0.04,
		DelayBy:   time.Millisecond,
		MaxFaults: 30,
		Crashes:   []transport.CrashSpec{{Agent: crashAgent, AfterCalls: 4}},
	}
}

// TestChaosConvergeUnderFaults is the acceptance run on the curable
// fleet: a 3-cluster rollout under seeded drop+delay+corrupt+reset
// chaos with one scheduled agent crash, canary-gated, fix armed,
// rollback armed. It must end in exactly one of the journal's two
// terminal states with zero members stranded — on both transports.
func TestChaosConvergeUnderFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		tcp  bool
	}{{"pipe", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), Options{
				Fleet:  ConvergeFleet(2),
				TCP:    tc.tcp,
				Faults: stormPlan("php-0"),
				Gate: staging.GatePolicy{
					Enabled: true, BaselineFailureRate: 0,
					MaxExcessRate: 0.1, MinSamples: 3,
				},
				Fix:          true,
				AutoRollback: true,
				Journal:      filepath.Join(t.TempDir(), "journal.jsonl"),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Clusters != 3 {
				t.Fatalf("clusters = %d, want 3", res.Clusters)
			}
			if res.Terminal != TerminalComplete && res.Terminal != TerminalRolledBack {
				t.Fatalf("terminal = %q, want %q or %q", res.Terminal, TerminalComplete, TerminalRolledBack)
			}
			if len(res.Stranded) != 0 {
				t.Fatalf("stranded members: %v", res.Stranded)
			}
			if res.FaultsInjected == 0 {
				t.Fatal("the storm never fired — fault plan not armed")
			}
			// With the fix armed this fleet should in fact converge; a
			// rollback here would mean chaos quarantined the debug loop.
			if res.Terminal == TerminalComplete && res.Outcome.Abandoned {
				t.Fatal("journal sealed complete but outcome is abandoned")
			}
		})
	}
}

// TestChaosRollbackUnderFaults is the acceptance run on the incurable
// fleet: the legacy-config machine fails mid-fleet after representatives
// have integrated, no fix exists, and the armed rollback must unwind
// every integrated member back to the baseline — under the same storm,
// on both transports.
func TestChaosRollbackUnderFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		tcp  bool
	}{{"pipe", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), Options{
				Fleet:        RollbackFleet(2),
				TCP:          tc.tcp,
				Faults:       stormPlan("plain-0"),
				Fix:          false,
				AutoRollback: true,
				Journal:      filepath.Join(t.TempDir(), "journal.jsonl"),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Clusters != 3 {
				t.Fatalf("clusters = %d, want 3", res.Clusters)
			}
			if res.Terminal != TerminalRolledBack {
				t.Fatalf("terminal = %q, want %q", res.Terminal, TerminalRolledBack)
			}
			if len(res.Stranded) != 0 {
				t.Fatalf("stranded members: %v", res.Stranded)
			}
			if !res.Outcome.RolledBack || res.Outcome.Rollback == nil {
				t.Fatalf("outcome lacks rollback: %+v", res.Outcome)
			}
			if len(res.Outcome.Rollback.Reverted) == 0 {
				t.Fatal("rollback reverted nobody — the failure surfaced before any integration")
			}
			// Every reachable machine is verifiably back on the baseline.
			for _, m := range res.Machines {
				if st := res.Outcome.Nodes[m.Name]; st != nil && st.Quarantined {
					continue
				}
				if ref, _ := m.Package("mysql"); ref.Version != BaselineVersion {
					t.Fatalf("%s at %s after rollback", m.Name, ref.Version)
				}
			}
		})
	}
}

// TestChaosFaultFreeBaseline pins the harness itself: with a zero fault
// plan the curable fleet converges and nothing is ever injected.
func TestChaosFaultFreeBaseline(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Fleet:        ConvergeFleet(1),
		Fix:          true,
		AutoRollback: true,
		Journal:      filepath.Join(t.TempDir(), "journal.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminal != TerminalComplete {
		t.Fatalf("terminal = %q, want %q", res.Terminal, TerminalComplete)
	}
	if res.FaultsInjected != 0 {
		t.Fatalf("injected %d faults from a zero plan", res.FaultsInjected)
	}
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded members: %v", res.Stranded)
	}
}

// BenchmarkChaos times one full chaos rollout (pipe transport, curable
// 3-cluster fleet, storm plan) per iteration.
func BenchmarkChaos(b *testing.B) {
	var last *Result
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), Options{
			Fleet:  ConvergeFleet(2),
			Faults: stormPlan("php-0"),
			Gate: staging.GatePolicy{
				Enabled: true, BaselineFailureRate: 0,
				MaxExcessRate: 0.1, MinSamples: 3,
			},
			Fix:          true,
			AutoRollback: true,
			Journal:      filepath.Join(b.TempDir(), "journal.jsonl"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Stranded) != 0 {
			b.Fatalf("stranded members: %v", res.Stranded)
		}
		last = res
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(last.FaultsInjected), "faults/run")
	if _, err := benchjson.WriteEnv("MIRAGE_BENCH_CHAOS_JSON", []benchjson.Result{{
		Name: "BenchmarkChaos", N: len(last.Machines),
		Labels: map[string]string{"terminal": last.Terminal},
		Metrics: map[string]float64{
			"clusters":        float64(last.Clusters),
			"faults_injected": float64(last.FaultsInjected),
			"stranded":        float64(len(last.Stranded)),
			"ms_per_run":      float64(elapsed.Milliseconds()) / float64(b.N),
		},
	}}); err != nil {
		b.Fatal(err)
	}
}
