// Package chaos is the end-to-end robustness harness: it stands up a
// small clustered fleet of real simulated machines behind real transport
// agents (TCP or in-process pipes), arms a seeded transport.FaultPlan,
// and drives a journaled staged rollout through rollout.Engine — canary
// gate, Fixer debug loop, automatic rollback and all. A chaos run must
// end in one of the journal's terminal states with zero members
// stranded, and because the fault plan is seeded, a failing run replays
// exactly.
//
// The harness exists so any scenario can be rerun under adversarial
// channel conditions without bespoke wiring: tests and CI call Run with
// a fleet profile and a FaultPlan and assert on the Result.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/rollout"
	"repro/internal/scenario"
	"repro/internal/staging"
	"repro/internal/transport"
)

// Terminal states a chaos run can end in, read back from the journal —
// never from in-memory state, because the journal is what survives a
// vendor crash.
const (
	// TerminalComplete: the journal is sealed with RecComplete — every
	// non-quarantined member converged on the (possibly corrected) new
	// version.
	TerminalComplete = "complete"
	// TerminalRolledBack: the journal is sealed with rollback_complete —
	// every previously-integrated, reachable member was verified back on
	// the baseline.
	TerminalRolledBack = "rolled_back"
	// TerminalAbandoned: the vendor gave up and no rollback was armed.
	// Acceptance runs arm AutoRollback, so this state appearing there is
	// a bug, not an outcome.
	TerminalAbandoned = "abandoned"
)

// Options configures one chaos run.
type Options struct {
	// Fleet is the machine population (see ConvergeFleet / RollbackFleet
	// for canned 3-cluster profiles).
	Fleet []scenario.MySQLMachineSpec
	// TCP runs every agent over a real 127.0.0.1 socket with reconnect;
	// false injects agents as net.Pipe pairs (same protocol, zero
	// descriptors).
	TCP bool
	// Faults is the seeded chaos schedule, armed on the vendor server
	// after enrollment (identification and clustering run clean — the
	// model is a fleet that degrades after sign-up, not one that can
	// never enroll).
	Faults transport.FaultPlan
	// Policy is the staging policy (default balanced).
	Policy deploy.Policy
	// Gate is the statistical canary gate (zero value: classic binary
	// gating).
	Gate staging.GatePolicy
	// Fix arms the vendor's debug loop with the php4-compat corrected
	// build; without it a validation failure exhausts debugging and the
	// upgrade is abandoned.
	Fix bool
	// AutoRollback arms journaled automatic rollback to the baseline.
	AutoRollback bool
	// Journal is the journal file path (required — a chaos run's verdict
	// is read from it).
	Journal string
	// Retries/Backoff tune the controller's transient-retry loop under
	// chaos (defaults: 8 retries, 2ms initial backoff). Retries must
	// outlast the fault budget's worst consecutive run or a healthy
	// member gets quarantined for weather.
	Retries int
	Backoff time.Duration
}

// Result is what a chaos run is judged on.
type Result struct {
	// Terminal is the journal's final state: TerminalComplete,
	// TerminalRolledBack or TerminalAbandoned.
	Terminal string
	// Outcome is the deployment outcome (Rollback details included when
	// the fleet rolled back).
	Outcome *deploy.Outcome
	// Clusters is how many clusters enrollment produced.
	Clusters int
	// FaultsInjected counts the faults the plan actually fired.
	FaultsInjected int64
	// Stranded lists machines (with their observed version) left on
	// neither the baseline nor the version the outcome says they run —
	// always empty for a correct run.
	Stranded []string
	// Machines is the fleet, post-run, for further assertions.
	Machines []*machine.Machine
}

// BaselineVersion and UpgradeVersion are the fleet's version-N and
// version-N+1 package versions.
const (
	BaselineVersion = "4.1.22"
	UpgradeVersion  = "5.0.22"
)

// Baseline returns the version-N artifact a rollback restores: the
// MySQL 4.1.22 the whole fleet runs before the experiment. Its chunks
// are exactly what the agents' self-seeded caches already hold.
func Baseline() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-" + BaselineVersion,
		Pkg: &pkgmgr.Package{Name: "mysql", Version: BaselineVersion, Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable,
				Data: []byte("mysqld " + BaselineVersion), Version: BaselineVersion},
			{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib,
				Data: []byte("libmysqlclient 4.1"), Version: "4.1"},
		}},
		Replaces: UpgradeVersion,
	}
}

// Upgrade returns the MySQL 4->5 artifact under test — the one whose
// client library genuinely breaks PHP 4 dependents.
func Upgrade() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-" + UpgradeVersion,
		Pkg: &pkgmgr.Package{Name: "mysql", Version: UpgradeVersion, Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable,
				Data: []byte("mysqld " + UpgradeVersion), Version: UpgradeVersion},
			{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib,
				Data: []byte("libmysqlclient 5.0"), Version: "5.0"},
		}},
		Replaces: BaselineVersion,
	}
}

// Fixed returns the corrected build the Fixer releases: same server,
// client library rebuilt with php4 compatibility.
func Fixed() *pkgmgr.Upgrade {
	up := Upgrade()
	up.ID = "mysql-" + UpgradeVersion + "b"
	up.Pkg.Files[1] = &machine.File{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib,
		Data: []byte("libmysqlclient 5.0 php4-compat"), Version: "5.0"}
	return up
}

// Rebuild maps journaled upgrade IDs back to artifacts — the harness's
// release store, for crash-resume and rollback.
func Rebuild(id string) (*pkgmgr.Upgrade, bool) {
	switch id {
	case Baseline().ID:
		return Baseline(), true
	case Upgrade().ID:
		return Upgrade(), true
	case Fixed().ID:
		return Fixed(), true
	}
	return nil, false
}

// ConvergeFleet is a 3-cluster profile whose failures the Fixer can
// cure: plain Ubuntu, Ubuntu+php4, and Fedora+php4+apache machines (per
// of each). The php4 clusters genuinely fail the raw upgrade and pass
// the corrected build, so with Fix armed the run converges on N+1.
func ConvergeFleet(per int) []scenario.MySQLMachineSpec {
	var specs []scenario.MySQLMachineSpec
	for i := 0; i < per; i++ {
		specs = append(specs,
			scenario.MySQLMachineSpec{Name: fmt.Sprintf("plain-%d", i), Distro: "ubt"},
			scenario.MySQLMachineSpec{Name: fmt.Sprintf("php-%d", i), Distro: "ubt",
				PHP4: true, Behavior: scenario.MySQLProblemPHP},
			scenario.MySQLMachineSpec{Name: fmt.Sprintf("web-%d", i), Distro: "fc5",
				PHP4: true, Apache: true, Behavior: scenario.MySQLProblemPHP},
		)
	}
	return specs
}

// RollbackFleet is a 3-cluster profile whose failure surfaces only
// after representatives have integrated: plain Ubuntu, plain Fedora and
// Ubuntu+apache machines all pass, but one Ubuntu machine carries a
// legacy ~/.my.cnf that crashes MySQL 5. It shares the plain-Ubuntu
// cluster (one config item of distance) and is never its
// representative, so the vendor discovers the problem mid-fleet — with
// no fix available, an armed rollback must unwind the integrated
// members.
func RollbackFleet(per int) []scenario.MySQLMachineSpec {
	var specs []scenario.MySQLMachineSpec
	for i := 0; i < per; i++ {
		specs = append(specs,
			scenario.MySQLMachineSpec{Name: fmt.Sprintf("plain-%d", i), Distro: "ubt"},
			scenario.MySQLMachineSpec{Name: fmt.Sprintf("fedora-%d", i), Distro: "fc5",
				EtcCnf: "# Fedora Core MySQL configuration\n[mysqld]\nport = 3306\ndatadir = /var/lib/mysql\n"},
			scenario.MySQLMachineSpec{Name: fmt.Sprintf("web-%d", i), Distro: "ubt", Apache: true},
		)
	}
	// Named to sort after its cluster-mates: cluster member lists are
	// alphabetical and representatives are taken from the front, so this
	// machine is guaranteed to be a non-representative.
	specs = append(specs, scenario.MySQLMachineSpec{Name: "plain-legacy-cnf", Distro: "ubt",
		UserCnf: true, Behavior: scenario.MySQLProblemMyCnf})
	return specs
}

// Run executes one chaos rollout and reads its verdict back from the
// journal. The fleet enrolls clean (register, identify, record,
// cluster), then the fault plan is armed and the journaled deployment
// runs to a terminal state.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if opts.Journal == "" {
		return nil, errors.New("chaos: Options.Journal is required")
	}
	if len(opts.Fleet) == 0 {
		opts.Fleet = ConvergeFleet(2)
	}
	policy := opts.Policy // zero value is PolicyBalanced

	machines := make([]*machine.Machine, len(opts.Fleet))
	for i, sp := range opts.Fleet {
		machines[i] = scenario.BuildMySQLMachine(sp)
	}

	srv, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	defer wg.Wait()      // after the conns die, collect the agent goroutines
	defer srv.Close()    // tears down every registered conn, ending sessions
	defer close(stop)    // stops reconnect loops from coming back
	for _, m := range machines {
		a := transport.NewAgent(m)
		wg.Add(1)
		if opts.TCP {
			go func() {
				defer wg.Done()
				a.RunWithReconnect(srv.Addr(), transport.ReconnectConfig{ //nolint:errcheck
					BaseDelay: 2 * time.Millisecond, Stop: stop,
				})
			}()
		} else {
			go func() {
				defer wg.Done()
				servePipes(srv, a, stop)
			}()
		}
	}
	if got := srv.WaitForAgents(len(machines), 10*time.Second); got != len(machines) {
		return nil, fmt.Errorf("chaos: only %d/%d agents registered", got, len(machines))
	}

	if err := enroll(ctx, srv, machines); err != nil {
		return nil, err
	}
	refs := scenario.MySQLResourceRefs()
	regCfg := transport.MirageRegistryConfig()
	reg, err := transport.BuildRegistry(regCfg)
	if err != nil {
		return nil, err
	}
	vendorItems := parser.NewFingerprinter(reg).Fingerprint(scenario.MySQLVendorReference(), refs)
	rc, err := srv.ClusterRemote(ctx, "mysql", refs, regCfg, vendorItems, cluster.Config{Diameter: 3}, 1)
	if err != nil {
		return nil, err
	}

	// Enrollment is done — the storm begins.
	srv.Faults = transport.NewFaultInjector(opts.Faults)

	fixed := Fixed()
	var fixer deploy.Fixer
	if opts.Fix {
		fixer = func(up *pkgmgr.Upgrade, fails []*report.Report) (*pkgmgr.Upgrade, bool) {
			return fixed, true
		}
	} else {
		fixer = func(up *pkgmgr.Upgrade, fails []*report.Report) (*pkgmgr.Upgrade, bool) {
			return nil, false
		}
	}
	ctl := deploy.NewController(report.New(), fixer)
	ctl.Transfer = srv.TransferSnapshot
	ctl.Gate = opts.Gate
	ctl.RollbackMode = srv.SetRollbackMode
	ctl.GatedMembers = srv.MarkPeerEligible
	ctl.TransientRetries = opts.Retries
	if ctl.TransientRetries == 0 {
		ctl.TransientRetries = 8
	}
	ctl.RetryBackoff = opts.Backoff
	if ctl.RetryBackoff <= 0 {
		ctl.RetryBackoff = 2 * time.Millisecond
	}

	eng := &rollout.Engine{
		Controller:   ctl,
		Path:         opts.Journal,
		Baseline:     Baseline(),
		AutoRollback: opts.AutoRollback,
		Rebuild:      Rebuild,
	}
	out, err := eng.Deploy(ctx, policy, Upgrade(), rc.Deploy)
	if err != nil {
		return nil, fmt.Errorf("chaos: rollout: %w", err)
	}

	term, err := TerminalOf(opts.Journal)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Terminal:       term,
		Outcome:        out,
		Clusters:       len(rc.Clusters),
		FaultsInjected: srv.Faults.Injected(),
		Machines:       machines,
	}
	res.Stranded = stranded(machines, out, Baseline().ID)
	return res, nil
}

// enroll identifies and records baseline traces for every app on every
// machine — the clean sign-up phase before faults are armed.
func enroll(ctx context.Context, srv *transport.Server, machines []*machine.Machine) error {
	inputs := map[string][][]string{
		"mysql":  {{"SELECT 1"}},
		"php":    {nil},
		"apache": {nil},
	}
	for _, m := range machines {
		for _, app := range []string{"mysql", "php", "apache"} {
			if app != "mysql" {
				if _, ok := m.Package(app); !ok {
					continue
				}
			}
			if _, err := srv.Identify(ctx, m.Name, app, inputs[app]); err != nil {
				return fmt.Errorf("chaos: identify %s/%s: %w", m.Name, app, err)
			}
			if _, err := srv.Record(ctx, m.Name, app, inputs[app][0]); err != nil {
				return fmt.Errorf("chaos: record %s/%s: %w", m.Name, app, err)
			}
		}
	}
	return nil
}

// servePipes is the pipe-transport agent lifecycle: inject a net.Pipe
// session into the server, serve it until it dies (faults kill
// sessions), and re-pipe — the in-process twin of RunWithReconnect.
func servePipes(srv *transport.Server, a *transport.Agent, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		client, srvEnd := net.Pipe()
		if err := srv.ServeConn(srvEnd); err != nil {
			client.Close()
			return
		}
		a.ServeConn(client) //nolint:errcheck — session end, not failure
		select {
		case <-stop:
			return
		case <-time.After(2 * time.Millisecond): // pace the re-pipe like a redial
		}
	}
}

// TerminalOf reads the journal and names its terminal state ("" if the
// journal just stops — a crash, not a terminal).
func TerminalOf(path string) (string, error) {
	records, err := rollout.Load(path)
	if err != nil {
		return "", err
	}
	term := ""
	for _, r := range records {
		switch r.Type {
		case rollout.RecComplete:
			term = TerminalComplete
		case rollout.RecRollbackDone:
			term = TerminalRolledBack
		case rollout.RecAbandoned:
			if term == "" {
				term = TerminalAbandoned
			}
		}
	}
	return term, nil
}

// stranded returns the machines whose installed MySQL disagrees with
// what the outcome says they run, or whose applications no longer work
// at the version they were left on. Quarantined members are exempt —
// the guarantee is "never stranded silently", and quarantine is loud
// and journaled.
func stranded(machines []*machine.Machine, out *deploy.Outcome, baselineID string) []string {
	var bad []string
	for _, m := range machines {
		var st *deploy.NodeStatus
		if out != nil {
			st = out.Nodes[m.Name]
		}
		if st != nil && st.Quarantined {
			continue
		}
		ref, _ := m.Package("mysql")
		want := BaselineVersion
		if st != nil && st.UpgradeID != "" && st.UpgradeID != baselineID {
			want = UpgradeVersion
		}
		ok := ref.Version == want
		if ok {
			if tr := (apps.MySQL{}).Run(m, []string{"SELECT 1"}); tr.ExitStatus() != "ok" {
				ok = false
			}
		}
		if ok {
			if _, has := m.Package("php"); has {
				if tr := (apps.PHP{}).Run(m, nil); tr.ExitStatus() != "ok" {
					ok = false
				}
			}
		}
		if !ok {
			bad = append(bad, m.Name+"@"+ref.Version)
		}
	}
	sort.Strings(bad)
	return bad
}
