// Package trace models the system-call traces Mirage collects by
// instrumenting process creation, read, write, file-descriptor and
// socket-related system calls, plus getenv() interception in libc
// (paper §3.2.3, "Identifying environmental resources", and §3.3,
// "Tracing subsystem").
//
// On a real deployment these events come from ptrace/LD_PRELOAD
// interposition; in this reproduction the application models in
// internal/apps emit the same event streams when executed against a
// simulated machine. All downstream consumers — the identification
// heuristic in internal/envid and the validation subsystem in
// internal/vmtest — operate only on these logs, so they are agnostic to
// whether the trace came from real instrumentation or the simulator.
//
// Not to be confused with internal/telemetry, the control plane's
// operational observability layer (latency histograms and per-rollout
// span traces). This package records what an upgrade does to a user
// machine; telemetry records what the deployment system itself does.
package trace

import "fmt"

// Op enumerates the instrumented operations.
type Op int

const (
	OpExec    Op = iota // process creation (execve)
	OpOpen              // file open, with access mode
	OpRead              // file read
	OpWrite             // file write, payload recorded
	OpGetenv            // environment variable lookup
	OpSocket            // socket creation
	OpNetSend           // network write, payload recorded
	OpNetRecv           // network read
	OpExit              // process exit, status recorded
)

var opNames = [...]string{"exec", "open", "read", "write", "getenv", "socket", "netsend", "netrecv", "exit"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Mode is the access mode of an open.
type Mode int

const (
	ModeRead Mode = iota
	ModeWrite
	ModeReadWrite
)

func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "ro"
	case ModeWrite:
		return "wo"
	default:
		return "rw"
	}
}

// Event is one instrumented operation.
type Event struct {
	Op   Op
	Path string // file and exec operations
	Mode Mode   // open operations
	Env  string // getenv: variable name
	Data []byte // write/netsend payload; getenv result; exit status
}

// Trace is the event log of one application execution.
type Trace struct {
	App    string   // application name
	Args   []string // process arguments, recorded at exec
	Events []Event
}

// New returns an empty trace for one run of app.
func New(app string, args ...string) *Trace {
	return &Trace{App: app, Args: args, Events: []Event{{Op: OpExec, Path: app}}}
}

// Append adds an event.
func (t *Trace) Append(e Event) { t.Events = append(t.Events, e) }

// Open records a file open.
func (t *Trace) Open(path string, mode Mode) {
	t.Append(Event{Op: OpOpen, Path: path, Mode: mode})
}

// Read records a file read.
func (t *Trace) Read(path string) { t.Append(Event{Op: OpRead, Path: path}) }

// Write records a file write with its payload.
func (t *Trace) Write(path string, data []byte) {
	t.Append(Event{Op: OpWrite, Path: path, Data: append([]byte(nil), data...)})
}

// Getenv records an environment lookup and its result.
func (t *Trace) Getenv(name, value string) {
	t.Append(Event{Op: OpGetenv, Env: name, Data: []byte(value)})
}

// NetSend records a network write with its payload.
func (t *Trace) NetSend(data []byte) {
	t.Append(Event{Op: OpNetSend, Data: append([]byte(nil), data...)})
}

// Exit records process termination with a status string ("ok", "crash", ...).
func (t *Trace) Exit(status string) {
	t.Append(Event{Op: OpExit, Data: []byte(status)})
}

// AccessSequence returns the paths of file operations in event order,
// including repeats. This is the sequence the heuristic's first part
// compares across traces to find the initialization phase.
func (t *Trace) AccessSequence() []string {
	var seq []string
	for _, e := range t.Events {
		if e.Op == OpOpen {
			seq = append(seq, e.Path)
		}
	}
	return seq
}

// FirstAccessOrder returns each accessed path once, in order of first open.
func (t *Trace) FirstAccessOrder() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range t.Events {
		if e.Op == OpOpen && !seen[e.Path] {
			seen[e.Path] = true
			out = append(out, e.Path)
		}
	}
	return out
}

// ReadOnlyPaths returns the paths that were opened in this trace and never
// opened for writing.
func (t *Trace) ReadOnlyPaths() map[string]bool {
	ro := make(map[string]bool)
	for _, e := range t.Events {
		if e.Op != OpOpen {
			continue
		}
		if e.Mode == ModeRead {
			if _, dirty := ro[e.Path]; !dirty {
				ro[e.Path] = true
			}
		} else {
			ro[e.Path] = false
		}
	}
	out := make(map[string]bool)
	for p, isRO := range ro {
		if isRO {
			out[p] = true
		}
	}
	return out
}

// AccessedPaths returns the set of all opened paths.
func (t *Trace) AccessedPaths() map[string]bool {
	out := make(map[string]bool)
	for _, e := range t.Events {
		if e.Op == OpOpen {
			out[e.Path] = true
		}
	}
	return out
}

// EnvVars returns the names of all environment variables read.
func (t *Trace) EnvVars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range t.Events {
		if e.Op == OpGetenv && !seen[e.Env] {
			seen[e.Env] = true
			out = append(out, e.Env)
		}
	}
	return out
}

// Outputs returns the observable outputs of the run — file writes, network
// sends and the exit event — in order. The validation subsystem compares
// these between the pre-upgrade and post-upgrade runs.
func (t *Trace) Outputs() []Event {
	var out []Event
	for _, e := range t.Events {
		switch e.Op {
		case OpWrite, OpNetSend, OpExit:
			out = append(out, e)
		}
	}
	return out
}

// ExitStatus returns the recorded exit status, or "missing" if the trace
// has no exit event (the process was killed or crashed before exit).
func (t *Trace) ExitStatus() string {
	for i := len(t.Events) - 1; i >= 0; i-- {
		if t.Events[i].Op == OpExit {
			return string(t.Events[i].Data)
		}
	}
	return "missing"
}

// CommonPrefix returns the longest common prefix of the access sequences of
// all traces: the paper's heuristic part (1), which identifies the
// single-threaded initialization phase during which applications load
// libraries, configuration files and environment variables.
func CommonPrefix(traces []*Trace) []string {
	if len(traces) == 0 {
		return nil
	}
	prefix := traces[0].AccessSequence()
	for _, t := range traces[1:] {
		seq := t.AccessSequence()
		n := 0
		for n < len(prefix) && n < len(seq) && prefix[n] == seq[n] {
			n++
		}
		prefix = prefix[:n]
	}
	return prefix
}
