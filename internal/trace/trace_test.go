package trace

import (
	"reflect"
	"testing"
)

func TestNewRecordsExec(t *testing.T) {
	tr := New("mysqld", "--port=3306")
	if len(tr.Events) != 1 || tr.Events[0].Op != OpExec || tr.Events[0].Path != "mysqld" {
		t.Fatalf("events = %+v", tr.Events)
	}
	if tr.Args[0] != "--port=3306" {
		t.Fatalf("args = %v", tr.Args)
	}
}

func TestAccessSequenceIncludesRepeats(t *testing.T) {
	tr := New("app")
	tr.Open("/a", ModeRead)
	tr.Open("/b", ModeRead)
	tr.Open("/a", ModeRead)
	want := []string{"/a", "/b", "/a"}
	if got := tr.AccessSequence(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AccessSequence = %v", got)
	}
}

func TestFirstAccessOrder(t *testing.T) {
	tr := New("app")
	tr.Open("/b", ModeRead)
	tr.Open("/a", ModeRead)
	tr.Open("/b", ModeWrite)
	want := []string{"/b", "/a"}
	if got := tr.FirstAccessOrder(); !reflect.DeepEqual(got, want) {
		t.Fatalf("FirstAccessOrder = %v", got)
	}
}

func TestReadOnlyPaths(t *testing.T) {
	tr := New("app")
	tr.Open("/lib/libc.so", ModeRead)
	tr.Open("/var/log/app.log", ModeWrite)
	tr.Open("/etc/conf", ModeRead)
	tr.Open("/etc/conf", ModeReadWrite) // later rw open disqualifies
	tr.Open("/data", ModeRead)
	tr.Open("/data", ModeRead)

	ro := tr.ReadOnlyPaths()
	if !ro["/lib/libc.so"] || !ro["/data"] {
		t.Fatalf("read-only set missing entries: %v", ro)
	}
	if ro["/var/log/app.log"] || ro["/etc/conf"] {
		t.Fatalf("read-only set has written files: %v", ro)
	}
}

func TestReadOnlyDisqualificationBeforeReadOpen(t *testing.T) {
	tr := New("app")
	tr.Open("/f", ModeWrite)
	tr.Open("/f", ModeRead)
	if tr.ReadOnlyPaths()["/f"] {
		t.Fatal("write-then-read file classified read-only")
	}
}

func TestEnvVars(t *testing.T) {
	tr := New("app")
	tr.Getenv("HOME", "/root")
	tr.Getenv("PATH", "/bin")
	tr.Getenv("HOME", "/root")
	if got := tr.EnvVars(); !reflect.DeepEqual(got, []string{"HOME", "PATH"}) {
		t.Fatalf("EnvVars = %v", got)
	}
}

func TestOutputsAndExitStatus(t *testing.T) {
	tr := New("app")
	tr.Open("/out", ModeWrite)
	tr.Write("/out", []byte("result"))
	tr.NetSend([]byte("GET /"))
	tr.Read("/in")
	tr.Exit("ok")

	outs := tr.Outputs()
	if len(outs) != 3 {
		t.Fatalf("Outputs = %d events, want 3", len(outs))
	}
	if outs[0].Op != OpWrite || string(outs[0].Data) != "result" {
		t.Fatalf("first output = %+v", outs[0])
	}
	if tr.ExitStatus() != "ok" {
		t.Fatalf("ExitStatus = %q", tr.ExitStatus())
	}
	if New("x").ExitStatus() != "missing" {
		t.Fatal("missing exit not reported")
	}
}

func TestWriteCopiesPayload(t *testing.T) {
	tr := New("app")
	buf := []byte("abc")
	tr.Write("/f", buf)
	buf[0] = 'X'
	if string(tr.Events[1].Data) != "abc" {
		t.Fatal("Write aliases caller buffer")
	}
}

func TestCommonPrefix(t *testing.T) {
	t1 := New("app")
	for _, p := range []string{"/lib/libc.so", "/etc/conf", "/data/a"} {
		t1.Open(p, ModeRead)
	}
	t2 := New("app")
	for _, p := range []string{"/lib/libc.so", "/etc/conf", "/data/b"} {
		t2.Open(p, ModeRead)
	}
	got := CommonPrefix([]*Trace{t1, t2})
	if !reflect.DeepEqual(got, []string{"/lib/libc.so", "/etc/conf"}) {
		t.Fatalf("CommonPrefix = %v", got)
	}
}

func TestCommonPrefixEdgeCases(t *testing.T) {
	if CommonPrefix(nil) != nil {
		t.Fatal("CommonPrefix(nil) != nil")
	}
	t1 := New("app")
	t1.Open("/a", ModeRead)
	if got := CommonPrefix([]*Trace{t1}); !reflect.DeepEqual(got, []string{"/a"}) {
		t.Fatalf("single-trace prefix = %v", got)
	}
	t2 := New("app")
	t2.Open("/b", ModeRead)
	if got := CommonPrefix([]*Trace{t1, t2}); len(got) != 0 {
		t.Fatalf("disjoint prefix = %v", got)
	}
}

func TestOpAndModeStrings(t *testing.T) {
	if OpOpen.String() != "open" || OpExit.String() != "exit" {
		t.Fatal("Op strings wrong")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op empty string")
	}
	if ModeRead.String() != "ro" || ModeWrite.String() != "wo" || ModeReadWrite.String() != "rw" {
		t.Fatal("Mode strings wrong")
	}
}
