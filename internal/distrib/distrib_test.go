package distrib

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
)

// payload returns deterministic pseudo-random data that chunks into many
// content-defined pieces.
func payload(seed byte, n int) []byte {
	data := make([]byte, n)
	x := uint32(seed) + 1
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 16)
	}
	return data
}

func upgrade(id string, files ...*machine.File) *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: id,
		Pkg: &pkgmgr.Package{
			Name: "app", Version: "2.0", Files: files,
			Dependencies: []pkgmgr.Dependency{{Name: "libc", MinVersion: "2.4"}},
		},
		Replaces:   "1.0",
		Migrations: []pkgmgr.FileEdit{{Path: "/etc/app.conf", Append: []byte("migrated\n")}},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	store := NewStore()
	up := upgrade("app-2.0",
		&machine.File{Path: "/bin/app", Type: machine.TypeExecutable, Version: "2.0", Data: payload(1, 100_000)},
		&machine.File{Path: "/lib/libapp.so", Type: machine.TypeSharedLib, Version: "2", Data: payload(2, 30_000)},
		&machine.File{Path: "/etc/empty", Type: machine.TypeConfig, Data: nil},
	)
	man := store.Manifest(up)
	if man.ID != up.ID || man.Name != "app" || man.Replaces != "1.0" {
		t.Fatalf("manifest metadata = %+v", man)
	}
	if got := man.PayloadBytes(); got != 130_000 {
		t.Fatalf("payload bytes = %d, want 130000", got)
	}
	if store.Manifest(up) != man {
		t.Fatal("manifest not cached per upgrade ID")
	}

	cache := NewCache()
	missing := cache.Missing(man)
	if len(missing) == 0 {
		t.Fatal("cold cache missing nothing")
	}
	chunks, err := store.Chunks(missing)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range chunks {
		if err := cache.Add(ch.Hash, ch.Data); err != nil {
			t.Fatal(err)
		}
	}
	if rest := cache.Missing(man); len(rest) != 0 {
		t.Fatalf("still missing %d chunks after full fetch", len(rest))
	}
	back, err := cache.Assemble(man)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != up.ID || back.Pkg.Version != "2.0" || back.Replaces != "1.0" {
		t.Fatalf("assembled = %+v", back)
	}
	if len(back.Pkg.Dependencies) != 1 || len(back.Migrations) != 1 {
		t.Fatal("deps/migrations lost in manifest round-trip")
	}
	if len(back.Pkg.Files) != 3 {
		t.Fatalf("files = %d", len(back.Pkg.Files))
	}
	for i, f := range back.Pkg.Files {
		orig := up.Pkg.Files[i]
		if f.Path != orig.Path || f.Type != orig.Type || f.Version != orig.Version || !bytes.Equal(f.Data, orig.Data) {
			t.Fatalf("file %s did not survive the round-trip", orig.Path)
		}
	}
}

// TestManifestNotStaleUnderReusedID: manifests are cached by content
// signature, so an upgrade whose bytes changed under the same ID (a
// careless Fixer) re-chunks instead of distributing the old content.
func TestManifestNotStaleUnderReusedID(t *testing.T) {
	store := NewStore()
	mk := func(data []byte) *pkgmgr.Upgrade {
		return upgrade("app-2.0",
			&machine.File{Path: "/bin/app", Type: machine.TypeExecutable, Version: "2.0", Data: data})
	}
	first := store.Manifest(mk(payload(8, 50_000)))
	v2 := payload(9, 50_000)
	second := store.Manifest(mk(v2))
	if second == first {
		t.Fatal("changed content under a reused ID served the stale manifest")
	}
	cache := NewCache()
	chunks, err := store.Chunks(cache.Missing(second))
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range chunks {
		if err := cache.Add(ch.Hash, ch.Data); err != nil {
			t.Fatal(err)
		}
	}
	back, err := cache.Assemble(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Pkg.Files[0].Data, v2) {
		t.Fatal("assembled content is not the new version")
	}
	// Identical content still shares the cached manifest.
	if store.Manifest(mk(v2)) != second {
		t.Fatal("identical content re-chunked")
	}
}

func TestCacheRejectsCorruptChunk(t *testing.T) {
	cache := NewCache()
	data := payload(3, 1000)
	addr := fingerprint.HashBytes(data)
	if err := cache.Add(addr, append([]byte("x"), data...)); err == nil {
		t.Fatal("corrupt chunk accepted")
	}
	if err := cache.Add(addr, data); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleNamesMissingChunk(t *testing.T) {
	store := NewStore()
	man := store.Manifest(upgrade("app-2.0",
		&machine.File{Path: "/bin/app", Type: machine.TypeExecutable, Data: payload(4, 50_000)}))
	if _, err := NewCache().Assemble(man); err == nil {
		t.Fatal("assembled from empty cache")
	}
}

func TestStoreRejectsUnknownAddress(t *testing.T) {
	if _, err := NewStore().Chunks([]uint64{42}); err == nil {
		t.Fatal("store handed out a chunk it never made")
	}
}

// TestSeededCacheMakesVersionDelta is the CDC property the distribution
// layer exists for: seed the cache with version N, and a manifest for
// version N+1 (a small edit of N) misses only the chunks the edit touched.
func TestSeededCacheMakesVersionDelta(t *testing.T) {
	v1 := payload(5, 256*1024)
	v2 := append([]byte(nil), v1...)
	copy(v2[128*1024:], []byte("this small edit replaces a few bytes in the middle"))

	store := NewStore()
	man := store.Manifest(upgrade("app-2.0",
		&machine.File{Path: "/bin/app", Type: machine.TypeExecutable, Version: "2.0", Data: v2}))

	cache := NewCache()
	m := machine.New("seeded")
	m.WriteFile(&machine.File{Path: "/bin/app", Type: machine.TypeExecutable, Version: "1.0", Data: v1})
	cache.SeedMachine(m)

	missing := cache.Missing(man)
	var missBytes int
	for _, f := range man.Files {
		for _, ref := range f.Chunks {
			for _, a := range missing {
				if ref.Hash == a {
					missBytes += ref.Size
				}
			}
		}
	}
	if missBytes == 0 {
		t.Fatal("edit transferred nothing — delta test is vacuous")
	}
	// The edit touches a handful of chunks; the bulk of the 256 KiB file
	// must already be seeded. Allow a generous factor for boundary drift.
	if missBytes > len(v2)/4 {
		t.Fatalf("delta = %d bytes of %d — CDC dedup not working", missBytes, len(v2))
	}

	chunks, err := store.Chunks(missing)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range chunks {
		if err := cache.Add(ch.Hash, ch.Data); err != nil {
			t.Fatal(err)
		}
	}
	back, err := cache.Assemble(man)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Pkg.Files[0].Data, v2) {
		t.Fatal("assembled v2 differs from original")
	}
}

func TestConcurrentStoreAndCache(t *testing.T) {
	store := NewStore()
	cache := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			up := upgrade(fmt.Sprintf("app-%d", g),
				&machine.File{Path: fmt.Sprintf("/bin/app%d", g), Type: machine.TypeExecutable, Data: payload(byte(g), 64*1024)})
			man := store.Manifest(up)
			chunks, err := store.Chunks(cache.Missing(man))
			if err != nil {
				t.Error(err)
				return
			}
			for _, ch := range chunks {
				if err := cache.Add(ch.Hash, ch.Data); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := cache.Assemble(man); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheChunksServesWhatItHolds pins the peer-serving primitive: only
// held addresses come back, in request order, and the miss is silent —
// "what I have" is the peer protocol, the requester's fallback handles
// the rest.
func TestCacheChunksServesWhatItHolds(t *testing.T) {
	cache := NewCache()
	a := payload(1, 2000)
	b := payload(2, 2000)
	addrA, addrB := fingerprint.HashBytes(a), fingerprint.HashBytes(b)
	if err := cache.Add(addrA, a); err != nil {
		t.Fatal(err)
	}
	if err := cache.Add(addrB, b); err != nil {
		t.Fatal(err)
	}
	got := cache.Chunks([]uint64{addrB, 999, addrA})
	if len(got) != 2 || got[0].Hash != addrB || got[1].Hash != addrA {
		t.Fatalf("Chunks = %+v, want [B, A] with the unknown address skipped", got)
	}
	if !bytes.Equal(got[0].Data, b) || !bytes.Equal(got[1].Data, a) {
		t.Fatal("served chunk bytes differ from what was added")
	}
	if out := cache.Chunks(nil); len(out) != 0 {
		t.Fatalf("empty request served %d chunks", len(out))
	}
}
