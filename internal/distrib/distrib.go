// Package distrib is Mirage's content-addressed distribution layer: the
// machinery that moves upgrade bytes to a fleet without ever shipping the
// same content twice.
//
// The vendor side is a Store. It cuts each upgrade file into
// content-defined chunks (the same LBFS-style chunker the fingerprinting
// subsystem uses) and keeps them under their content address — the strong
// HashBytes digest of the chunk contents. What travels in an upgrade push
// is then only a Manifest: the upgrade metadata plus, per file, the
// ordered chunk address list. Manifests are a few hundred bytes where the
// inline payload was the whole package.
//
// The agent side is a Cache, keyed by the same addresses. Before
// resolving a manifest the agent seeds the cache by chunking its
// currently installed files, so the chunks an upgrade shares with the
// previous version — usually almost all of them — are already present
// and a version N→N+1 push degenerates to a true CDC delta. Only the
// addresses the cache misses are fetched, as raw chunk bytes, and the
// original files are reassembled locally before being handed to the
// ordinary package-manager path.
//
// Both ends are safe for concurrent use: one store serves every agent
// connection of a vendor, and one cache may be shared by several agents
// (machines on one LAN segment, in the paper's deployment picture).
package distrib

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
)

// ChunkRef names one chunk of a file: its content address and size.
type ChunkRef struct {
	Hash uint64 `json:"h"`
	Size int    `json:"n"`
}

// FileManifest describes one upgrade file as an ordered chunk list in
// place of inline data.
type FileManifest struct {
	Path    string     `json:"path"`
	Type    int        `json:"type"`
	Version string     `json:"version,omitempty"`
	Chunks  []ChunkRef `json:"chunks,omitempty"`
}

// Manifest is the content-addressed form of a pkgmgr.Upgrade: all the
// metadata, none of the bytes.
type Manifest struct {
	ID         string              `json:"id"`
	Name       string              `json:"name"`
	Version    string              `json:"version"`
	Replaces   string              `json:"replaces,omitempty"`
	Urgent     bool                `json:"urgent,omitempty"`
	Files      []FileManifest      `json:"files"`
	Deps       []pkgmgr.Dependency `json:"deps,omitempty"`
	Migrations []pkgmgr.FileEdit   `json:"migrations,omitempty"`
}

// ChunkCount returns the number of chunk references across all files
// (duplicates counted once each time they appear).
func (m *Manifest) ChunkCount() int {
	n := 0
	for _, f := range m.Files {
		n += len(f.Chunks)
	}
	return n
}

// PayloadBytes returns the total file bytes the manifest describes — what
// an inline push would have to carry.
func (m *Manifest) PayloadBytes() int64 {
	var n int64
	for _, f := range m.Files {
		for _, c := range f.Chunks {
			n += int64(c.Size)
		}
	}
	return n
}

// Chunk is one addressed chunk with its bytes — the unit a fetch moves.
type Chunk struct {
	Hash uint64 `json:"h"`
	Data []byte `json:"data"`
}

// Store is the vendor-side chunk store: upgrades go in, manifests and
// chunks come out.
type Store struct {
	mu        sync.Mutex
	chunker   *fingerprint.Chunker
	chunks    map[uint64][]byte
	bytes     int64
	manifests map[uint64]*Manifest // by upgrade content signature
}

// NewStore returns an empty store using the default LBFS chunking
// parameters.
func NewStore() *Store {
	return &Store{
		chunker:   fingerprint.NewChunker(0, 0, 0),
		chunks:    make(map[uint64][]byte),
		manifests: make(map[uint64]*Manifest),
	}
}

// upgradeSignature digests everything a manifest is derived from —
// metadata, migrations, and full file contents. Manifests are cached
// under this signature rather than the upgrade ID, so an upgrade whose
// bytes changed under a reused ID (a careless Fixer, say) re-chunks
// instead of silently distributing the stale content. One whole-content
// hash pass per push is cheap next to chunking, which stays amortized.
func upgradeSignature(up *pkgmgr.Upgrade) uint64 {
	hashBool := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	parts := []uint64{
		fingerprint.HashString(up.ID),
		fingerprint.HashString(up.Pkg.Name),
		fingerprint.HashString(up.Pkg.Version),
		fingerprint.HashString(up.Replaces),
		hashBool(up.Urgent),
	}
	for _, d := range up.Pkg.Dependencies {
		parts = append(parts, fingerprint.HashString(d.Name), fingerprint.HashString(d.MinVersion))
	}
	for _, e := range up.Migrations {
		parts = append(parts, fingerprint.HashString(e.Path),
			fingerprint.HashBytes(e.SetData), fingerprint.HashBytes(e.Append), hashBool(e.Remove))
	}
	for _, f := range up.Pkg.Files {
		parts = append(parts, fingerprint.HashString(f.Path), uint64(f.Type),
			fingerprint.HashString(f.Version), fingerprint.HashBytes(f.Data))
	}
	return fingerprint.CombineHashes(parts...)
}

// put records one chunk. Callers hold s.mu.
func (s *Store) put(addr uint64, data []byte) {
	if _, ok := s.chunks[addr]; ok {
		return
	}
	s.chunks[addr] = append([]byte(nil), data...)
	s.bytes += int64(len(data))
}

// Manifest cuts the upgrade's files into addressed chunks, stores every
// chunk, and returns the manifest. Results are cached by content
// signature, so pushing one upgrade to a thousand machines chunks it
// once — and a changed upgrade is never served a stale manifest, even
// under a reused ID.
func (s *Store) Manifest(up *pkgmgr.Upgrade) *Manifest {
	sig := upgradeSignature(up)
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.manifests[sig]; ok {
		return m
	}
	m := &Manifest{
		ID: up.ID, Name: up.Pkg.Name, Version: up.Pkg.Version,
		Replaces: up.Replaces, Urgent: up.Urgent,
		Deps:       append([]pkgmgr.Dependency(nil), up.Pkg.Dependencies...),
		Migrations: append([]pkgmgr.FileEdit(nil), up.Migrations...),
	}
	for _, f := range up.Pkg.Files {
		fm := FileManifest{Path: f.Path, Type: int(f.Type), Version: f.Version}
		for _, ch := range s.chunker.SplitAddressed(f.Data) {
			s.put(ch.Address, f.Data[ch.Offset:ch.Offset+ch.Length])
			fm.Chunks = append(fm.Chunks, ChunkRef{Hash: ch.Address, Size: ch.Length})
		}
		m.Files = append(m.Files, fm)
	}
	s.manifests[sig] = m
	return m
}

// Chunks returns the stored chunks for the given addresses, in request
// order. An unknown address is an error: the store only hands out content
// it has chunked itself, so a miss means the requester holds a manifest
// this store never produced.
func (s *Store) Chunks(addrs []uint64) ([]Chunk, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Chunk, 0, len(addrs))
	for _, a := range addrs {
		data, ok := s.chunks[a]
		if !ok {
			return nil, fmt.Errorf("distrib: no chunk %s in store", fingerprint.FormatHash(a))
		}
		out = append(out, Chunk{Hash: a, Data: data})
	}
	return out, nil
}

// Len returns the number of distinct chunks stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chunks)
}

// Bytes returns the total distinct chunk bytes stored.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// CacheStats summarises one cache's history.
type CacheStats struct {
	Chunks int   // distinct chunks held
	Bytes  int64 // distinct chunk bytes held
	Hits   int64 // manifest chunk lookups satisfied locally
	Misses int64 // manifest chunk lookups that had to be fetched
}

// Cache is the agent-side chunk cache. It persists across RPCs for the
// lifetime of the agent, which is exactly what makes integrate-after-test
// and staged-wave pushes free: the chunks fetched for the first operation
// satisfy every later one.
type Cache struct {
	mu      sync.Mutex
	chunker *fingerprint.Chunker
	chunks  map[uint64][]byte
	bytes   int64
	// seededFiles remembers whole-file digests already chunked into the
	// cache, so two machines sharing a cache seed identical files once.
	seededFiles map[uint64]bool
	// seededPaths remembers per-machine file identities already seeded,
	// so re-seeding before every RPC skips even the whole-file hash pass
	// for files that look unchanged.
	seededPaths map[seedKey]bool
	hits, miss  int64
}

// seedKey identifies a machine file cheaply — without reading its data.
// A mutation that preserves path, version and size slips past this memo,
// which only costs extra chunk fetches later (seeding is an optimization;
// assembly correctness never depends on it).
type seedKey struct {
	machine, path, version string
	size                   int
}

// NewCache returns an empty cache using the default chunking parameters
// (they must match the store's for seeded chunks to share addresses).
func NewCache() *Cache {
	return &Cache{
		chunker:     fingerprint.NewChunker(0, 0, 0),
		chunks:      make(map[uint64][]byte),
		seededFiles: make(map[uint64]bool),
		seededPaths: make(map[seedKey]bool),
	}
}

// SeedFile chunks one file's current contents into the cache. Seeding is
// what turns a version upgrade into a delta: every chunk the new version
// shares with the installed one is a hit before any byte moves.
func (c *Cache) SeedFile(data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := fingerprint.HashBytes(data)
	if c.seededFiles[key] {
		return
	}
	for _, ch := range c.chunker.SplitAddressed(data) {
		c.add(ch.Address, data[ch.Offset:ch.Offset+ch.Length])
	}
	c.seededFiles[key] = true
}

// SeedMachine seeds the cache from every file on the machine. It is
// called before each manifest resolution, so it memoizes aggressively:
// a file whose (path, version, size) was seeded before is skipped
// without touching its data, and a changed file whose whole-content
// digest is already known skips re-chunking.
func (c *Cache) SeedMachine(m *machine.Machine) {
	for _, f := range m.Files() {
		k := seedKey{machine: m.Name, path: f.Path, version: f.Version, size: len(f.Data)}
		c.mu.Lock()
		done := c.seededPaths[k]
		if !done {
			c.seededPaths[k] = true
		}
		c.mu.Unlock()
		if !done {
			c.SeedFile(f.Data)
		}
	}
}

// add records one chunk. Callers hold c.mu.
func (c *Cache) add(addr uint64, data []byte) {
	if _, ok := c.chunks[addr]; ok {
		return
	}
	c.chunks[addr] = append([]byte(nil), data...)
	c.bytes += int64(len(data))
}

// Add inserts a fetched chunk after verifying its content address; a
// mismatch means corruption (or a wrong chunk) and is rejected.
func (c *Cache) Add(addr uint64, data []byte) error {
	if got := fingerprint.HashBytes(data); got != addr {
		return fmt.Errorf("distrib: chunk %s content hashes to %s",
			fingerprint.FormatHash(addr), fingerprint.FormatHash(got))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(addr, data)
	return nil
}

// Missing returns the manifest's chunk addresses not present in the
// cache, deduplicated, in ascending order, and updates the hit/miss
// counters. An empty result means Assemble will succeed without a fetch.
func (c *Cache) Missing(m *Manifest) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	need := make(map[uint64]bool)
	for _, f := range m.Files {
		for _, ref := range f.Chunks {
			if _, ok := c.chunks[ref.Hash]; ok {
				c.hits++
			} else {
				c.miss++
				need[ref.Hash] = true
			}
		}
	}
	out := make([]uint64, 0, len(need))
	for a := range need {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Chunks returns the cached chunks among addrs, in request order,
// silently skipping addresses the cache does not hold — the serving
// primitive of the peer tier, where "give me what you have" is the
// protocol and the requester falls back to the vendor for the rest.
// The returned Data slices alias the cache's internal storage: stored
// chunks are immutable (add-only map, every insert copies), so they are
// safe to read concurrently but must never be modified.
func (c *Cache) Chunks(addrs []uint64) []Chunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Chunk, 0, len(addrs))
	for _, a := range addrs {
		if data, ok := c.chunks[a]; ok {
			out = append(out, Chunk{Hash: a, Data: data})
		}
	}
	return out
}

// Assemble reconstructs the full upgrade from cached chunks. Every chunk
// the manifest references must be present (fetch the Missing set first);
// an absent chunk is an error naming its address.
func (c *Cache) Assemble(m *Manifest) (*pkgmgr.Upgrade, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pkg := &pkgmgr.Package{
		Name: m.Name, Version: m.Version,
		Dependencies: append([]pkgmgr.Dependency(nil), m.Deps...),
	}
	for _, fm := range m.Files {
		size := 0
		for _, ref := range fm.Chunks {
			size += ref.Size
		}
		data := make([]byte, 0, size)
		for _, ref := range fm.Chunks {
			chunk, ok := c.chunks[ref.Hash]
			if !ok {
				return nil, fmt.Errorf("distrib: assembling %s: chunk %s not cached",
					fm.Path, fingerprint.FormatHash(ref.Hash))
			}
			data = append(data, chunk...)
		}
		pkg.Files = append(pkg.Files, &machine.File{
			Path: fm.Path, Type: machine.FileType(fm.Type), Version: fm.Version, Data: data,
		})
	}
	return &pkgmgr.Upgrade{
		ID: m.ID, Pkg: pkg, Replaces: m.Replaces, Urgent: m.Urgent,
		Migrations: append([]pkgmgr.FileEdit(nil), m.Migrations...),
	}, nil
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Chunks: len(c.chunks), Bytes: c.bytes, Hits: c.hits, Misses: c.miss}
}
