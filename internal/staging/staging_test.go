package staging

import (
	"reflect"
	"strings"
	"testing"
)

func refs3() []ClusterRef {
	// Deliberately unsorted, with a distance tie broken by name.
	return []ClusterRef{
		{Name: "far", Distance: 9},
		{Name: "mid-b", Distance: 5},
		{Name: "near", Distance: 1},
		{Name: "mid-a", Distance: 5},
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		PolicyBalanced:      "Balanced",
		PolicyFrontLoading:  "FrontLoading",
		PolicyNoStaging:     "NoStaging",
		PolicyRandomStaging: "RandomStaging",
		PolicyAdaptive:      "Adaptive",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatalf("unknown policy = %q", Policy(9).String())
	}
	if len(Policies()) != len(want) {
		t.Fatalf("Policies() lists %d policies", len(Policies()))
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]Policy{
		"balanced": PolicyBalanced, "frontloading": PolicyFrontLoading,
		"nostaging": PolicyNoStaging, "random": PolicyRandomStaging,
		"adaptive": PolicyAdaptive,
	} {
		got, ok := ParsePolicy(name)
		if !ok || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParsePolicy("bogus"); ok {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
}

func TestOrderByDistance(t *testing.T) {
	asc := OrderByDistance(refs3(), false)
	wantAsc := []string{"near", "mid-a", "mid-b", "far"}
	for i, c := range asc {
		if c.Name != wantAsc[i] {
			t.Fatalf("ascending order = %v", asc)
		}
	}
	desc := OrderByDistance(refs3(), true)
	if desc[0].Name != "far" || desc[len(desc)-1].Name != "near" {
		t.Fatalf("descending order = %v", desc)
	}
	// Ties keep name order in both directions, for determinism.
	if desc[1].Name != "mid-a" || desc[2].Name != "mid-b" {
		t.Fatalf("tie-break order = %v", desc)
	}
	// Input untouched.
	if in := refs3(); in[0].Name != "far" {
		t.Fatal("OrderByDistance mutated its input")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a := Shuffle(refs3(), 7)
	b := Shuffle(refs3(), 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different permutations")
	}
	// Seed zero maps to a fixed non-zero state, not the identity.
	z1, z2 := Shuffle(refs3(), 0), Shuffle(refs3(), 0)
	if !reflect.DeepEqual(z1, z2) {
		t.Fatal("seed 0 not deterministic")
	}
	in := refs3()
	Shuffle(in, 7)
	if in[0].Name != "far" {
		t.Fatal("Shuffle mutated its input")
	}
}

// planShape flattens a plan for table-driven comparison: one string per
// stage, gate and retry mode included.
func planShape(p *Plan) []string {
	var out []string
	for _, st := range p.Stages {
		var waves []string
		for _, w := range st.Waves {
			waves = append(waves, w.String())
		}
		line := st.Gate.String()
		if st.RetryAll {
			line += "+retryall"
		}
		out = append(out, line+": "+strings.Join(waves, " "))
	}
	return out
}

func TestBuildPlanShapes(t *testing.T) {
	cases := []struct {
		policy Policy
		want   []string
	}{
		{PolicyBalanced, []string{
			"converged: near/reps",
			"converged: near/others",
			"converged: mid-a/reps",
			"converged: mid-a/others",
			"converged: mid-b/reps",
			"converged: mid-b/others",
			"converged: far/reps",
			"converged: far/others",
		}},
		{PolicyAdaptive, []string{
			"converged: near/reps",
			"elastic: near/others",
			"converged: mid-a/reps",
			"elastic: mid-a/others",
			"converged: mid-b/reps",
			"elastic: mid-b/others",
			"converged: far/reps",
			"elastic: far/others",
		}},
		{PolicyNoStaging, []string{
			"converged: near/all mid-a/all mid-b/all far/all",
		}},
		{PolicyFrontLoading, []string{
			"converged+retryall: far/reps mid-a/reps mid-b/reps near/reps",
			"converged: far/others",
			"converged: mid-a/others",
			"converged: mid-b/others",
			"converged: near/others",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.policy.String(), func(t *testing.T) {
			got := planShape(BuildPlan(tc.policy, refs3(), 0))
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("plan shape:\n got %q\nwant %q", got, tc.want)
			}
		})
	}
}

func TestBuildPlanRandomIsShuffledBalanced(t *testing.T) {
	p := BuildPlan(PolicyRandomStaging, refs3(), 7)
	if len(p.Stages) != 8 {
		t.Fatalf("stages = %d", len(p.Stages))
	}
	order := Shuffle(OrderByDistance(refs3(), false), 7)
	for i, c := range order {
		if got := p.Stages[2*i].Waves[0].Cluster; got != c.Name {
			t.Fatalf("stage %d cluster = %s, want %s", 2*i, got, c.Name)
		}
		if p.Stages[2*i].Waves[0].Group != GroupReps || p.Stages[2*i+1].Waves[0].Group != GroupOthers {
			t.Fatal("reps must gate others per cluster")
		}
	}
	// Same seed, same plan — byte-identical description.
	if BuildPlan(PolicyRandomStaging, refs3(), 7).Describe() != p.Describe() {
		t.Fatal("RandomStaging plan not deterministic per seed")
	}
}

func TestBuildPlanEmptyFleet(t *testing.T) {
	for _, pol := range Policies() {
		p := BuildPlan(pol, nil, 0)
		if len(p.Stages) != 0 {
			t.Fatalf("%s: empty fleet produced %d stages", pol, len(p.Stages))
		}
		// An empty plan executes as a no-op.
		Execute(p, failExecutor{t})
	}
}

type failExecutor struct{ t *testing.T }

func (f failExecutor) RunStage(Stage, func()) { f.t.Fatal("stage run on empty plan") }

func TestPlanWavesFlatten(t *testing.T) {
	p := BuildPlan(PolicyBalanced, refs3(), 0)
	waves := p.Waves()
	if len(waves) != 8 || waves[0] != (Wave{Cluster: "near", Group: GroupReps}) {
		t.Fatalf("waves = %v", waves)
	}
}

func TestDescribeCanonical(t *testing.T) {
	d := BuildPlan(PolicyFrontLoading, refs3(), 0).Describe()
	if !strings.HasPrefix(d, "policy=FrontLoading stages=5\n") {
		t.Fatalf("describe header: %q", d)
	}
	if !strings.Contains(d, "retry=all") || !strings.Contains(d, "far/others") {
		t.Fatalf("describe body: %q", d)
	}
}

// scriptedExecutor records stage execution order and releases gates
// synchronously until told to stall.
type scriptedExecutor struct {
	ran     []string
	stallAt int // stage index that never releases its gate (-1: none)
}

func (e *scriptedExecutor) RunStage(st Stage, done func()) {
	e.ran = append(e.ran, st.Waves[0].String())
	if len(e.ran)-1 == e.stallAt {
		return
	}
	done()
}

func TestExecuteRunsStagesInOrder(t *testing.T) {
	p := BuildPlan(PolicyBalanced, refs3(), 0)
	ex := &scriptedExecutor{stallAt: -1}
	Execute(p, ex)
	if len(ex.ran) != len(p.Stages) {
		t.Fatalf("ran %d of %d stages", len(ex.ran), len(p.Stages))
	}
	if ex.ran[0] != "near/reps" || ex.ran[len(ex.ran)-1] != "far/others" {
		t.Fatalf("order = %v", ex.ran)
	}
}

func TestExecuteHaltsOnUnreleasedGate(t *testing.T) {
	p := BuildPlan(PolicyBalanced, refs3(), 0)
	ex := &scriptedExecutor{stallAt: 2}
	Execute(p, ex)
	if len(ex.ran) != 3 {
		t.Fatalf("ran %d stages after stall, want 3", len(ex.ran))
	}
}

type doubleDoneExecutor struct{}

func (doubleDoneExecutor) RunStage(st Stage, done func()) {
	done()
	done()
}

func TestExecutePanicsOnDoubleRelease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double gate release did not panic")
		}
	}()
	Execute(BuildPlan(PolicyNoStaging, refs3(), 0), doubleDoneExecutor{})
}
