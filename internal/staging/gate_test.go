package staging

import "testing"

func TestGatePolicyEvaluate(t *testing.T) {
	p := GatePolicy{Enabled: true, BaselineFailureRate: 0.1, MaxExcessRate: 0.1, MinSamples: 10}
	cases := []struct {
		samples, failures int
		want              GateVerdict
	}{
		{0, 0, GateNeedMore},          // nothing observed
		{9, 9, GateNeedMore},          // below MinSamples even if all fail
		{10, 0, GatePass},             // clean at the sample floor
		{10, 2, GatePass},             // exactly at threshold (0.2) passes
		{10, 3, GateFail},             // beyond baseline+excess
		{100, 20, GatePass},           // 20% == threshold
		{100, 21, GateFail},           // 21% > threshold
		{1000, 199, GatePass},         // large-sample tolerance
		{1000, 201, GateFail},         // large-sample violation
	}
	for _, c := range cases {
		if got := p.Evaluate(c.samples, c.failures); got != c.want {
			t.Errorf("Evaluate(%d, %d) = %v, want %v", c.samples, c.failures, got, c.want)
		}
	}
	if got := p.Threshold(); got != 0.2 {
		t.Errorf("Threshold = %v", got)
	}
}

func TestGatePolicyDisabledZeroValue(t *testing.T) {
	var p GatePolicy
	if p.Enabled {
		t.Fatal("zero value must be disabled (classic binary gating)")
	}
	// A disabled gate still evaluates sanely if asked.
	if got := p.Evaluate(1, 1); got != GateFail {
		t.Errorf("disabled zero-tolerance gate: Evaluate(1,1) = %v", got)
	}
	if got := p.Evaluate(1, 0); got != GatePass {
		t.Errorf("disabled zero-tolerance gate: Evaluate(1,0) = %v", got)
	}
}

func TestGateVerdictString(t *testing.T) {
	for v, want := range map[GateVerdict]string{
		GateNeedMore: "need-more-samples",
		GatePass:     "pass",
		GateFail:     "fail",
	} {
		if got := v.String(); got != want {
			t.Errorf("verdict %d = %q, want %q", v, got, want)
		}
	}
	if got := (GatePolicy{}).String(); got != "gate: classic" {
		t.Errorf("disabled policy String = %q", got)
	}
}
