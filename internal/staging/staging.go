// Package staging owns the semantics of Mirage's staged deployment
// protocols (paper §4.3) in exactly one place. A Policy plus the cluster
// topology yields a Plan — an ordered sequence of stages, each a set of
// waves over {cluster, representatives-vs-others} groups — and an
// Executor runs the plan's stages in order.
//
// Two executors exist: the event-driven simulator (internal/simulator)
// schedules waves on its discrete-event engine to predict latency and
// overhead at scale, and the live deployment controller (internal/deploy)
// runs the same waves over real nodes with a bounded worker pool. Both
// consume the identical Plan — the classic plan-versus-mechanism split —
// so for the four §4.3 policies a simulated rollout and a live rollout of
// the same fleet provably follow the same schedule. PolicyAdaptive's
// promotion is runtime-conditional, and its timing is executor-specific:
// the simulator runs promoted waves in the background of its event
// timeline, while the live controller batches them into one merged
// parallel wave at the end of the plan (see the policy's documentation).
package staging

import (
	"fmt"
	"sort"
)

// Policy selects the staged deployment protocol.
type Policy int

const (
	// PolicyBalanced deploys cluster by cluster, nearest cluster first,
	// representatives before non-representatives (paper §4.3, "Balanced").
	PolicyBalanced Policy = iota
	// PolicyFrontLoading tests all representatives in parallel and debugs
	// everything up front, then deploys non-representatives farthest
	// cluster first (paper §4.3, "FrontLoading").
	PolicyFrontLoading
	// PolicyNoStaging deploys to every node at once; for urgent upgrades.
	PolicyNoStaging
	// PolicyRandomStaging is Balanced with a randomized cluster order; the
	// paper uses it to isolate the benefit of staging from that of
	// distance-based ordering. Deterministically seeded.
	PolicyRandomStaging
	// PolicyAdaptive is Balanced with early promotion: when a cluster's
	// representatives converge without a single failure, its
	// non-representatives are promoted past the barrier — their wave no
	// longer gates the next cluster. Only the unified plan/executor model
	// expresses this cheaply; it existed in neither of the two previous
	// per-subsystem protocol implementations.
	PolicyAdaptive
)

func (p Policy) String() string {
	switch p {
	case PolicyBalanced:
		return "Balanced"
	case PolicyFrontLoading:
		return "FrontLoading"
	case PolicyNoStaging:
		return "NoStaging"
	case PolicyRandomStaging:
		return "RandomStaging"
	case PolicyAdaptive:
		return "Adaptive"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists every policy the planner understands, in declaration
// order.
func Policies() []Policy {
	return []Policy{PolicyBalanced, PolicyFrontLoading, PolicyNoStaging, PolicyRandomStaging, PolicyAdaptive}
}

// ParsePolicy resolves the command-line name of a policy. It is the one
// vocabulary shared by every tool: balanced, frontloading, nostaging,
// random and adaptive.
func ParsePolicy(s string) (Policy, bool) {
	switch s {
	case "balanced":
		return PolicyBalanced, true
	case "frontloading":
		return PolicyFrontLoading, true
	case "nostaging":
		return PolicyNoStaging, true
	case "random":
		return PolicyRandomStaging, true
	case "adaptive":
		return PolicyAdaptive, true
	default:
		return PolicyBalanced, false
	}
}

// ClusterRef identifies one cluster of deployment to the planner: its
// name and its distance to the vendor's installation. The planner needs
// nothing else — membership, offline machines and retry timing are
// mechanism, owned by the executors.
type ClusterRef struct {
	Name     string
	Distance int
}

// OrderByDistance returns the clusters sorted by ascending (or
// descending) distance to the vendor, ties broken by name for
// determinism. This is the single ordering used by every protocol; the
// simulator and the live controller previously each kept a private copy.
func OrderByDistance(clusters []ClusterRef, descending bool) []ClusterRef {
	out := append([]ClusterRef(nil), clusters...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			if descending {
				return out[i].Distance > out[j].Distance
			}
			return out[i].Distance < out[j].Distance
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Shuffle returns a deterministic Fisher-Yates permutation of the
// clusters, driven by an xorshift generator so results are stable across
// runs and platforms. Seed zero selects a fixed non-zero state.
func Shuffle(clusters []ClusterRef, seed uint64) []ClusterRef {
	out := append([]ClusterRef(nil), clusters...)
	state := seed
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := len(out) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}
