package staging_test

// Cross-check: the event-driven simulator and the live deployment
// controller must execute byte-identical wave schedules for the same
// fleet — the acceptance property of the unified staging engine. Both
// executors obtain their plan from staging.BuildPlan over refs derived
// from their own cluster representations; these tests pin that the two
// derivations can never drift apart, and that an executed deployment
// actually follows the plan's cluster order.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/simulator"
	"repro/internal/staging"
)

// fleet returns the same topology in both vocabularies: simulator specs
// and deploy clusters (2 representatives, 3 others each).
func fleet(n int) ([]simulator.ClusterSpec, []*deploy.Cluster) {
	specs := make([]simulator.ClusterSpec, n)
	clusters := make([]*deploy.Cluster, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cluster-%02d", i)
		// Distances deliberately include a tie (clusters 1 and 2) so the
		// name tie-break is exercised on both sides.
		dist := i + 1
		if i == 2 {
			dist = 2
		}
		specs[i] = simulator.ClusterSpec{Name: name, Size: 5, Reps: 2, Distance: dist}
		c := &deploy.Cluster{ID: name, Distance: dist}
		for r := 0; r < 2; r++ {
			c.Representatives = append(c.Representatives, &stubNode{name: fmt.Sprintf("%s-rep%d", name, r)})
		}
		for o := 0; o < 3; o++ {
			c.Others = append(c.Others, &stubNode{name: fmt.Sprintf("%s-n%d", name, o)})
		}
		clusters[i] = c
	}
	return specs, clusters
}

type stubNode struct{ name string }

func (s *stubNode) Name() string { return s.name }
func (s *stubNode) TestUpgrade(_ context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	return &report.Report{UpgradeID: up.ID, Machine: s.name, Success: true}, nil
}
func (s *stubNode) Integrate(context.Context, *pkgmgr.Upgrade) error { return nil }

func TestPlansByteIdenticalAcrossExecutors(t *testing.T) {
	specs, clusters := fleet(6)
	for _, policy := range staging.Policies() {
		for _, seed := range []uint64{0, 7, 42} {
			ctl := deploy.NewController(report.New(), nil)
			ctl.Seed = seed
			simPlan := simulator.PlanFor(policy, specs, seed).Describe()
			livePlan := ctl.PlanFor(policy, clusters).Describe()
			if simPlan != livePlan {
				t.Fatalf("%s seed=%d: plans diverge\nsimulator:\n%s\ndeploy:\n%s",
					policy, seed, simPlan, livePlan)
			}
		}
	}
}

// TestDeployFollowsPlanOrder executes a real (stubbed) deployment and
// asserts the URR deposit order walks the plan's waves exactly.
// PolicyAdaptive is deliberately absent: its promoted waves run at the
// end of the plan in the live controller (executor-specific timing,
// pinned by internal/deploy's adaptive tests), so only its plan bytes —
// covered above — are required to match.
func TestDeployFollowsPlanOrder(t *testing.T) {
	for _, policy := range []staging.Policy{
		staging.PolicyBalanced, staging.PolicyFrontLoading,
		staging.PolicyNoStaging, staging.PolicyRandomStaging,
	} {
		_, clusters := fleet(4)
		urr := report.New()
		ctl := deploy.NewController(urr, nil)
		ctl.Seed = 42
		plan := ctl.PlanFor(policy, clusters)
		up := &pkgmgr.Upgrade{ID: "v1", Pkg: &pkgmgr.Package{Name: "app", Version: "v1"}}
		if _, err := ctl.Deploy(context.Background(), policy, up, clusters); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		// Collapse consecutive reports into (cluster, count) runs... the
		// plan's wave sequence must appear in deposit order. Waves of a
		// multi-wave stage run merged, so compare at stage granularity.
		reports := urr.ForUpgrade("v1")
		ri := 0
		for si, st := range plan.Stages {
			want := 0
			members := make(map[string]int)
			for _, w := range st.Waves {
				n := 0
				switch w.Group {
				case staging.GroupReps:
					n = 2
				case staging.GroupOthers:
					n = 3
				default:
					n = 5
				}
				members[w.Cluster] += n
				want += n
			}
			for i := 0; i < want; i++ {
				if ri >= len(reports) {
					t.Fatalf("%s: ran out of reports in stage %d", policy, si)
				}
				c := reports[ri].Cluster
				if members[c] == 0 {
					t.Fatalf("%s: stage %d saw report from %s, not in stage waves", policy, si, c)
				}
				members[c]--
				ri++
			}
		}
		if ri != len(reports) {
			t.Fatalf("%s: %d reports beyond the plan", policy, len(reports)-ri)
		}
	}
}

// TestSimulatorCompletionMatchesPlanOrder runs the simulator over a clean
// fleet and asserts clusters complete in exactly the plan's cluster
// order for the sequential policies.
func TestSimulatorCompletionMatchesPlanOrder(t *testing.T) {
	specs, _ := fleet(6)
	for _, policy := range []staging.Policy{staging.PolicyBalanced, staging.PolicyRandomStaging} {
		res := simulator.Run(simulator.DefaultParams(), policy, specs, 42)
		plan := simulator.PlanFor(policy, specs, 42)
		var prev float64
		for _, st := range plan.Stages {
			for _, w := range st.Waves {
				if w.Group != staging.GroupOthers {
					continue
				}
				at, ok := res.Latency[w.Cluster]
				if !ok {
					t.Fatalf("%s: cluster %s never completed", policy, w.Cluster)
				}
				if at < prev {
					t.Fatalf("%s: %s completed at %v, before predecessor at %v — executed order diverges from plan",
						policy, w.Cluster, at, prev)
				}
				prev = at
			}
		}
	}
}
