package staging

import "fmt"

// GateVerdict is a canary gate's decision over the samples seen so far.
type GateVerdict int

const (
	// GateNeedMore: the gate has fewer than MinSamples verdicts and may
	// not decide yet — the controller tops up with another validation
	// round before promoting or failing the wave.
	GateNeedMore GateVerdict = iota
	// GatePass: the observed failure rate is within the tolerated excess
	// over baseline; the wave promotes.
	GatePass
	// GateFail: the failure rate exceeds the threshold; the wave fails
	// (fix loop, then abandonment and — if armed — rollback).
	GateFail
)

func (v GateVerdict) String() string {
	switch v {
	case GateNeedMore:
		return "need-more-samples"
	case GatePass:
		return "pass"
	case GateFail:
		return "fail"
	}
	return fmt.Sprintf("GateVerdict(%d)", int(v))
}

// GatePolicy is the statistical canary gate of a staged rollout: instead
// of the paper's binary representative pass/fail, each stage's
// representative outcomes are compared against an expected baseline
// failure rate with an explicit tolerance and a minimum sample count.
// The zero value is disabled — exactly the classic binary behaviour.
//
// Semantics per stage: validations accumulate as samples. Until
// MinSamples verdicts exist the gate returns GateNeedMore and the
// controller re-validates the stage's members for more evidence. Once
// decided, failures/samples > BaselineFailureRate+MaxExcessRate fails the
// gate; anything within tolerance passes — and members whose own
// validation failed within a passing gate are simply not integrated (they
// stay on version N), which is what keeps a tolerated failure from ever
// stranding a machine on a half-trusted version.
type GatePolicy struct {
	// Enabled arms the canary gate; false means classic binary gating.
	Enabled bool
	// BaselineFailureRate is the failure rate the fleet exhibits on the
	// known-good version (from prior rollouts or canary history).
	BaselineFailureRate float64
	// MaxExcessRate is the tolerated excess over baseline before the
	// gate fails. 0 with a 0 baseline demands perfection.
	MaxExcessRate float64
	// MinSamples is the minimum validation verdicts before the gate may
	// decide (default 1).
	MinSamples int
}

// Threshold returns the failure rate above which the gate fails.
func (g GatePolicy) Threshold() float64 { return g.BaselineFailureRate + g.MaxExcessRate }

// Evaluate decides the gate over samples validation verdicts of which
// failures failed.
func (g GatePolicy) Evaluate(samples, failures int) GateVerdict {
	min := g.MinSamples
	if min <= 0 {
		min = 1
	}
	if samples < min {
		return GateNeedMore
	}
	if float64(failures)/float64(samples) > g.Threshold() {
		return GateFail
	}
	return GatePass
}

func (g GatePolicy) String() string {
	if !g.Enabled {
		return "gate: classic"
	}
	return fmt.Sprintf("gate: baseline=%.3f excess=%.3f min-samples=%d",
		g.BaselineFailureRate, g.MaxExcessRate, g.MinSamples)
}
