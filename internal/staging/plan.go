package staging

import (
	"fmt"
	"strings"
)

// Group selects which members of a cluster a wave covers.
type Group int

const (
	// GroupReps covers the cluster's representatives.
	GroupReps Group = iota
	// GroupOthers covers the cluster's non-representatives.
	GroupOthers
	// GroupAll covers every machine of the cluster (NoStaging treats the
	// whole population as representatives).
	GroupAll
)

func (g Group) String() string {
	switch g {
	case GroupReps:
		return "reps"
	case GroupOthers:
		return "others"
	case GroupAll:
		return "all"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// Gate controls when a stage releases the plan to its successor.
type Gate int

const (
	// GateConverged releases the next stage only once every wave of this
	// stage has converged: all members passed (after any number of
	// test-debug-retry rounds) and the stage's barriers are satisfied.
	GateConverged Gate = iota
	// GateElastic may release the next stage as soon as the waves have
	// been launched, provided their clusters have seen zero failures so
	// far (PolicyAdaptive's early promotion). Clusters with failures fall
	// back to GateConverged semantics.
	GateElastic
)

func (g Gate) String() string {
	if g == GateElastic {
		return "elastic"
	}
	return "converged"
}

// Wave is one unit of deployment work: notify a group of one cluster,
// let it download and test, and converge on failures via the vendor's
// debugging loop.
type Wave struct {
	Cluster string
	Group   Group
}

func (w Wave) String() string { return w.Cluster + "/" + w.Group.String() }

// Stage is a set of waves that run concurrently, followed by a barrier
// whose strength the Gate selects.
type Stage struct {
	Waves []Wave
	Gate  Gate
	// RetryAll makes every member of every wave re-test on each debugging
	// round, not just the previously failing members — FrontLoading's
	// phase 1, where all representatives are re-notified after the vendor
	// has corrected every reported problem.
	RetryAll bool
}

// Promote reports whether a wave of this stage may be released past the
// stage's barrier: the stage is elastic, the wave covers
// non-representatives, and its cluster is in the clean set (zero failures
// observed so far). This predicate IS PolicyAdaptive's promotion rule —
// both executors consult it, so the rule cannot drift between them.
func (st Stage) Promote(w Wave, clean map[string]bool) bool {
	return st.Gate == GateElastic && w.Group == GroupOthers && clean[w.Cluster]
}

// Plan is the complete schedule of a staged deployment: stages execute
// strictly in order, waves within a stage run concurrently.
type Plan struct {
	Policy Policy
	Seed   uint64
	Stages []Stage
}

// BuildPlan computes the wave schedule for policy over the clusters.
// seed drives PolicyRandomStaging's deterministic shuffle and is ignored
// by the other policies.
func BuildPlan(policy Policy, clusters []ClusterRef, seed uint64) *Plan {
	p := &Plan{Policy: policy, Seed: seed}
	asc := OrderByDistance(clusters, false)
	switch policy {
	case PolicyNoStaging:
		// Everyone at once: a single stage holding one whole-cluster wave
		// per cluster, nearest first within the stage for determinism.
		waves := make([]Wave, len(asc))
		for i, c := range asc {
			waves[i] = Wave{Cluster: c.Name, Group: GroupAll}
		}
		if len(waves) > 0 {
			p.Stages = []Stage{{Waves: waves}}
		}
	case PolicyFrontLoading:
		// Phase 1: all representatives concurrently, re-notified in full
		// each debugging round. Phase 2: non-representatives one cluster
		// at a time, most dissimilar first.
		desc := OrderByDistance(clusters, true)
		reps := make([]Wave, len(desc))
		for i, c := range desc {
			reps[i] = Wave{Cluster: c.Name, Group: GroupReps}
		}
		if len(reps) > 0 {
			p.Stages = append(p.Stages, Stage{Waves: reps, RetryAll: true})
		}
		for _, c := range desc {
			p.Stages = append(p.Stages, Stage{Waves: []Wave{{Cluster: c.Name, Group: GroupOthers}}})
		}
	case PolicyRandomStaging:
		p.Stages = stagedStages(Shuffle(asc, seed), GateConverged)
	case PolicyAdaptive:
		p.Stages = stagedStages(asc, GateElastic)
	default: // PolicyBalanced
		p.Stages = stagedStages(asc, GateConverged)
	}
	return p
}

// stagedStages is the Balanced-family schedule: cluster by cluster in the
// given order, a representative wave gating a non-representative wave.
// othersGate selects whether the non-representative wave is a hard
// barrier (Balanced, RandomStaging) or may be promoted past when its
// cluster is failure-free (Adaptive).
func stagedStages(order []ClusterRef, othersGate Gate) []Stage {
	stages := make([]Stage, 0, 2*len(order))
	for _, c := range order {
		stages = append(stages,
			Stage{Waves: []Wave{{Cluster: c.Name, Group: GroupReps}}},
			Stage{Waves: []Wave{{Cluster: c.Name, Group: GroupOthers}}, Gate: othersGate},
		)
	}
	return stages
}

// Waves returns the plan's waves flattened in schedule order.
func (p *Plan) Waves() []Wave {
	var out []Wave
	for _, st := range p.Stages {
		out = append(out, st.Waves...)
	}
	return out
}

// Describe renders the plan in a canonical text form, one stage per
// line. Two plans describe identically if and only if they schedule the
// same waves in the same order with the same barriers — the property the
// simulator/deploy cross-check asserts byte-for-byte.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s stages=%d\n", p.Policy, len(p.Stages))
	for i, st := range p.Stages {
		fmt.Fprintf(&b, "stage %d gate=%s", i, st.Gate)
		if st.RetryAll {
			b.WriteString(" retry=all")
		}
		b.WriteString(":")
		for _, w := range st.Waves {
			b.WriteString(" ")
			b.WriteString(w.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Executor runs the waves of one stage. Implementations launch every
// wave of the stage (concurrently where the mechanism supports it),
// converge on failures per the stage's retry mode, and invoke done
// exactly once when the stage's gate releases. An executor that stops
// early — a vendor abandoning the upgrade, a node error — simply does
// not invoke done, and the plan halts.
type Executor interface {
	RunStage(st Stage, done func())
}

// Execute drives the plan's stages through the executor in order. It
// supports both synchronous executors (done called before RunStage
// returns) and event-driven ones (done called from a scheduled event).
func Execute(p *Plan, ex Executor) {
	var step func(i int)
	step = func(i int) {
		if i >= len(p.Stages) {
			return
		}
		released := false
		ex.RunStage(p.Stages[i], func() {
			if released {
				panic("staging: stage " + fmt.Sprint(i) + " released its gate twice")
			}
			released = true
			step(i + 1)
		})
	}
	step(0)
}
