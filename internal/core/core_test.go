package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/report"
)

func lib(path, version, marker string) *machine.File {
	return &machine.File{Path: path, Type: machine.TypeSharedLib,
		Data: []byte(path + " " + version + " " + marker), Version: version}
}

func exe(path, version string) *machine.File {
	return &machine.File{Path: path, Type: machine.TypeExecutable,
		Data: []byte(path + " " + version), Version: version}
}

func cfg(path, data string) *machine.File {
	return &machine.File{Path: path, Type: machine.TypeConfig, Data: []byte(data)}
}

// buildReference builds a vendor reference machine: mysql 4.1.22, no PHP,
// no user config.
func buildReference() *machine.Machine {
	m := machine.New("vendor-reference")
	m.SetEnv("HOME", "/root")
	m.WriteFile(lib("/lib/libc.so", "2.4", ""))
	m.WriteFile(exe(apps.MySQLExec, "4.1.22"))
	m.WriteFile(lib(apps.LibMySQLPath, "4.1", ""))
	m.WriteFile(cfg("/etc/mysql/my.cnf", "[mysqld]\nport=3306\n"))
	m.WriteFile(&machine.File{Path: "/usr/share/mysql/errmsg.txt", Type: machine.TypeText, Data: []byte("errors")})
	m.WriteFile(&machine.File{Path: "/var/lib/mysql/users.frm", Type: machine.TypeBinary, Data: []byte("table")})
	m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"},
		[]string{apps.MySQLExec, apps.LibMySQLPath, "/etc/mysql/my.cnf"})
	return m
}

// userMachineVariant builds a user machine derived from the reference.
// kind: "plain", "php4" (PHP problem on MySQL upgrade) or "userconfig"
// (my.cnf problem).
func userMachineVariant(name, kind string) *machine.Machine {
	m := buildReference()
	m.Name = name
	m.SetEnv("HOME", "/home/user")
	switch kind {
	case "php4":
		m.WriteFile(exe(apps.PHPExec, "4.4.6"))
		m.InstallPackage(machine.PackageRef{Name: "php", Version: "4.4.6"}, []string{apps.PHPExec})
	case "userconfig":
		m.WriteFile(cfg("/home/user/.my.cnf", "[client]\nlegacy=1\n"))
	}
	return m
}

// mysql5Upgrade returns the problematic upgrade: new server plus a client
// library without the php4 compatibility symbols.
func mysql5Upgrade() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-5.0.22",
		Pkg: &pkgmgr.Package{
			Name: "mysql", Version: "5.0.22",
			Files: []*machine.File{
				exe(apps.MySQLExec, "5.0.22"),
				lib(apps.LibMySQLPath, "5.0", ""),
				cfg("/etc/mysql/my.cnf", "[mysqld]\nport=3306\n"),
			},
		},
		Replaces: "4.1.22",
	}
}

// mysql5Fixed is the corrected upgrade the vendor produces after debugging:
// the client library keeps the old symbols and a migration rewrites legacy
// user configuration files.
func mysql5Fixed() *pkgmgr.Upgrade {
	up := mysql5Upgrade()
	up.ID = "mysql-5.0.22b"
	up.Pkg.Files[1] = lib(apps.LibMySQLPath, "5.0", "php4-compat")
	up.Migrations = []pkgmgr.FileEdit{
		{Path: "/home/user/.my.cnf", Append: []byte("# migrated-for-5\n")},
	}
	return up
}

func setupVendorAndFleet(t *testing.T) (*Vendor, *Fleet) {
	t.Helper()
	v := NewVendor(buildReference())
	v.Repo.Add(mysql5Upgrade().Pkg)
	// The vendor provides a parser for MySQL's configuration files and the
	// one rule Table 1 requires (include the /var database directory).
	v.Registry.RegisterPath("/etc/mysql/my.cnf", parser.ConfigParser{})
	v.Registry.RegisterGlob("/home/*/.my.cnf", parser.ConfigParser{})
	v.IdentifyResources(apps.MySQL{}, [][]string{{"SELECT 1"}, {"SELECT 2"}})

	fleet := NewFleet(v,
		userMachineVariant("u-plain-1", "plain"),
		userMachineVariant("u-plain-2", "plain"),
		userMachineVariant("u-php4-1", "php4"),
		userMachineVariant("u-php4-2", "php4"),
		userMachineVariant("u-usercfg-1", "userconfig"),
	)
	for _, u := range fleet.Machines {
		u.IdentifyLocal(apps.MySQL{}, [][]string{{"SELECT 1"}, {"SELECT 2"}})
		u.RecordBaseline(apps.MySQL{}, []string{"SELECT 1"})
		if _, ok := u.M.Package("php"); ok {
			u.IdentifyLocal(apps.PHP{}, [][]string{nil, nil})
			u.RecordBaseline(apps.PHP{}, nil)
		}
	}
	return v, fleet
}

func TestIdentifyResourcesOnReference(t *testing.T) {
	v := NewVendor(buildReference())
	res := v.IdentifyResources(apps.MySQL{}, [][]string{{"SELECT 1"}, {"SELECT 2"}})
	joined := strings.Join(res.Resources, " ")
	for _, want := range []string{"/lib/libc.so", apps.MySQLExec, "/etc/mysql/my.cnf", "env:HOME"} {
		if !strings.Contains(joined, want) {
			t.Errorf("resources missing %q: %v", want, res.Resources)
		}
	}
	// The database directory is excluded by default (/var).
	if strings.Contains(joined, "/var/lib/mysql") {
		t.Errorf("database directory classified: %v", res.Resources)
	}
	if v.Resources["mysql"] == nil {
		t.Fatal("resources not cached")
	}
}

func TestClusterFleetSeparatesBehaviours(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The php4 pair and the usercfg machine must not share clusters with
	// plain machines: their environments differ (installed app set /
	// user config file).
	byMachine := make(map[string]int)
	for i, c := range cl.Clusters {
		for _, m := range c.Machines {
			byMachine[m] = i
		}
	}
	if byMachine["u-php4-1"] != byMachine["u-php4-2"] {
		t.Fatal("identical php4 machines split")
	}
	if byMachine["u-plain-1"] != byMachine["u-plain-2"] {
		t.Fatal("identical plain machines split")
	}
	if byMachine["u-php4-1"] == byMachine["u-plain-1"] {
		t.Fatal("php4 machines clustered with plain machines")
	}
	if byMachine["u-usercfg-1"] == byMachine["u-plain-1"] {
		t.Fatal("userconfig machine clustered with plain machines")
	}
	// Ground-truth soundness for the MySQL 5 upgrade.
	behavior := cluster.Behavior{
		"u-plain-1": "", "u-plain-2": "",
		"u-php4-1": "php-crash", "u-php4-2": "php-crash",
		"u-usercfg-1": "mycnf-crash",
	}
	q := cluster.Evaluate(cl.Clusters, behavior)
	if !q.Sound() {
		t.Fatalf("clustering not sound: %+v", q)
	}
}

func TestStagedDeploymentEndToEnd(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}

	fixCount := 0
	fix := func(up *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		fixCount++
		if fixCount > 2 {
			return nil, false
		}
		fixed := mysql5Fixed()
		v.Repo.Add(fixed.Pkg)
		return fixed, true
	}

	out, err := v.StageDeployment(context.Background(), deploy.PolicyBalanced, mysql5Upgrade(), cl, fix)
	if err != nil {
		t.Fatal(err)
	}
	if out.Abandoned {
		t.Fatalf("deployment abandoned; URR failures: %v", v.URR.GroupFailures("mysql-5.0.22"))
	}
	if got := out.Integrated(); got != len(fleet.Machines) {
		t.Fatalf("integrated = %d, want %d", got, len(fleet.Machines))
	}
	// Staging must keep overhead at the number of distinct problems hit by
	// representatives (php crash and my.cnf crash: at most one rep each).
	if out.Overhead > 2 {
		t.Fatalf("overhead = %d, want <= 2", out.Overhead)
	}
	// Every machine now runs some 5.0.22 variant in production.
	for _, u := range fleet.Machines {
		ref, _ := u.M.Package("mysql")
		if ref.Version != "5.0.22" {
			t.Fatalf("%s runs mysql %s", u.Name(), ref.Version)
		}
	}
	// And the applications actually work post-upgrade.
	for _, u := range fleet.Machines {
		if tr := (apps.MySQL{}).Run(u.M, []string{"SELECT 1"}); tr.ExitStatus() != "ok" {
			t.Fatalf("%s: mysql broken after deployment: %s", u.Name(), tr.ExitStatus())
		}
		if _, ok := u.M.Package("php"); ok {
			if tr := (apps.PHP{}).Run(u.M, nil); tr.ExitStatus() != "ok" {
				t.Fatalf("%s: php broken after deployment", u.Name())
			}
		}
	}
}

func TestStagedDeploymentProtectsNonRepresentatives(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fix := func(up *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		fixed := mysql5Fixed()
		v.Repo.Add(fixed.Pkg)
		return fixed, true
	}
	out, err := v.StageDeployment(context.Background(), deploy.PolicyBalanced, mysql5Upgrade(), cl, fix)
	if err != nil {
		t.Fatal(err)
	}
	// u-php4-2 is the non-representative of the php4 cluster: it must
	// never have tested the faulty original upgrade.
	for _, r := range v.URR.ForUpgrade("mysql-5.0.22") {
		if r.Machine == "u-php4-2" && !r.Success {
			t.Fatal("non-representative tested the faulty upgrade")
		}
	}
	_ = out
}

func TestReproduceFromReportImage(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	u := fleet.Lookup("u-php4-1")
	rep, err := u.TestUpgrade(context.Background(), mysql5Upgrade())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Success {
		t.Fatal("php4 machine passed faulty upgrade")
	}
	v.URR.Deposit(rep)
	tr, err := v.Reproduce(rep)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ExitStatus() != "crash" {
		t.Fatalf("reproduction did not crash: %s", tr.ExitStatus())
	}
}

func TestReproduceErrors(t *testing.T) {
	v := NewVendor(buildReference())
	if _, err := v.Reproduce(&report.Report{}); err == nil {
		t.Fatal("no error for image-less report")
	}
}

func TestClusterFleetUnknownApp(t *testing.T) {
	v := NewVendor(buildReference())
	fleet := NewFleet(v, userMachineVariant("u", "plain"))
	if _, err := v.ClusterFleet(context.Background(), fleet, "unknown", cluster.Config{Diameter: 3}, 1); err == nil {
		t.Fatal("no error for unidentified application")
	}
}

func TestFleetLookup(t *testing.T) {
	v := NewVendor(buildReference())
	fleet := NewFleet(v, userMachineVariant("a", "plain"))
	if fleet.Lookup("a") == nil || fleet.Lookup("b") != nil {
		t.Fatal("Lookup broken")
	}
}

func TestRepsPerCluster(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cluster.Config{Diameter: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range cl.Deploy {
		if dc.Size() >= 2 && len(dc.Representatives) != 2 {
			t.Fatalf("cluster %s has %d reps", dc.ID, len(dc.Representatives))
		}
		if dc.Size() == 1 && len(dc.Representatives) != 1 {
			t.Fatalf("singleton cluster %s has %d reps", dc.ID, len(dc.Representatives))
		}
	}
}
