package core

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/rollout"
)

// TestJournaledStageDeployment exercises the core-level wiring of the
// durable rollout engine: a Vendor with JournalPath set journals the full
// deployment, and a second Vendor resuming a completed journal performs
// no work at all.
func TestJournaledStageDeployment(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	path := filepath.Join(t.TempDir(), "deploy.journal")
	v.JournalPath = path

	cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fix := func(up *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		return mysql5Fixed(), true
	}
	out, err := v.StageDeployment(context.Background(), deploy.PolicyBalanced, mysql5Upgrade(), cl, fix)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != len(fleet.Machines) || out.Abandoned {
		t.Fatalf("outcome = %+v", out)
	}

	recs, err := rollout.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 || recs[0].Type != rollout.RecPlan || recs[len(recs)-1].Type != rollout.RecComplete {
		t.Fatalf("journal shape wrong: %d records, head %s, tail %s",
			len(recs), recs[0].Type, recs[len(recs)-1].Type)
	}

	// Resuming the sealed journal is refused — the rollout completed; the
	// operator is told so instead of silently re-running it.
	v2 := NewVendor(buildReference())
	v2.Resources = v.Resources
	v2.Registry = v.Registry
	v2.JournalPath = path
	v2.ResumeJournal = true
	v2.RebuildUpgrade = func(id string) (*pkgmgr.Upgrade, bool) {
		if id == mysql5Fixed().ID {
			return mysql5Fixed(), true
		}
		return nil, false
	}
	before := len(recs)
	if _, err := v2.StageDeployment(context.Background(), deploy.PolicyBalanced, mysql5Upgrade(), cl, fix); err == nil ||
		!strings.Contains(err.Error(), "sealed") {
		t.Fatalf("resume of a sealed journal = %v, want sealed-journal refusal", err)
	}
	// The sealed journal is untouched.
	recs, err = rollout.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != before {
		t.Fatalf("refused resume still appended records: %d -> %d", before, len(recs))
	}
}
