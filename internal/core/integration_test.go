package core

import (
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/scenario"
)

// Firefox end-to-end: build the Table 3 fleet from the scenario package,
// record browsing baselines, cluster with the vendor preference parsers,
// deploy the 2.0 upgrade. The staged deployment must catch the silent
// mis-rendering on migrated profiles via output comparison (no crash is
// involved) and converge after the vendor ships a fixed upgrade bundling a
// preference migration.
func setupFirefox(t *testing.T) (*Vendor, *Fleet) {
	t.Helper()
	v := NewVendor(scenario.FirefoxVendorReference())
	prefParser := parser.ConfigParser{IgnoreKeys: []string{"last_window_x", "last_session_time"}}
	v.Registry.RegisterPath(apps.FirefoxPrefs, prefParser)
	v.Registry.RegisterPath(apps.FirefoxLocalstore, prefParser)
	v.Registry.RegisterPath("/home/user/.mozilla/firefox/prefs-1.0.bak", prefParser)
	v.IdentifyResources(apps.Firefox{}, [][]string{
		{"http://example.org"}, {"http://news.example.com"},
	})

	var machines []*machine.Machine
	for _, spec := range scenario.FirefoxTable3() {
		machines = append(machines, scenario.BuildFirefoxMachine(spec))
	}
	fleet := NewFleet(v, machines...)
	for _, u := range fleet.Machines {
		u.IdentifyLocal(apps.Firefox{}, [][]string{{"http://example.org"}, {"http://news.example.com"}})
		u.RecordBaseline(apps.Firefox{}, []string{"http://example.org"})
	}
	return v, fleet
}

func firefox2Upgrade(fixed bool) *pkgmgr.Upgrade {
	up := &pkgmgr.Upgrade{
		ID: "firefox-2.0",
		Pkg: &pkgmgr.Package{Name: "firefox", Version: "2.0", Files: []*machine.File{
			{Path: apps.FirefoxExec, Type: machine.TypeExecutable, Data: []byte("firefox-bin 2.0"), Version: "2.0"},
			{Path: "/usr/lib/firefox/libxul.so", Type: machine.TypeSharedLib, Data: []byte("libxul 2.0"), Version: "2.0"},
		}},
		Replaces: "1.5.0.7",
	}
	if fixed {
		up.ID = "firefox-2.0.0.1"
		// The corrected upgrade regenerates the carried-over preference
		// files, removing the legacy 1.0 entries.
		up.Migrations = []pkgmgr.FileEdit{
			{Path: apps.FirefoxPrefs, SetData: []byte("browser.startup.homepage = about:home\nregenerated = 2.0\n")},
			{Path: apps.FirefoxLocalstore, SetData: []byte("window.state = default\nregenerated = 2.0\n")},
			{Path: "/home/user/.mozilla/firefox/prefs-1.0.bak", Remove: true},
		}
	}
	return up
}

func TestFirefoxFleetClusteringSound(t *testing.T) {
	v, fleet := setupFirefox(t)
	cl, err := v.ClusterFleet(context.Background(), fleet, "firefox", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := cluster.Evaluate(cl.Clusters, scenario.FirefoxBehavior())
	if !q.Sound() {
		t.Fatalf("fleet clustering not sound: %+v", q)
	}
}

func TestFirefoxSilentMisbehaviorCaughtByReplay(t *testing.T) {
	v, fleet := setupFirefox(t)
	bad := fleet.Lookup("firefox15-from10")
	rep, err := bad.TestUpgrade(context.Background(), firefox2Upgrade(false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Success {
		t.Fatal("replay comparison missed the silent mis-rendering")
	}
	// No crash was involved: the failure must be an output divergence.
	for _, reason := range rep.Reasons {
		if reason == "" {
			t.Fatal("empty failure reason")
		}
	}
	good := fleet.Lookup("firefox15-fresh")
	rep2, err := good.TestUpgrade(context.Background(), firefox2Upgrade(false))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Success {
		t.Fatalf("fresh profile failed: %+v", rep2)
	}
	_ = v
}

func TestFirefoxStagedDeploymentWithMigration(t *testing.T) {
	v, fleet := setupFirefox(t)
	cl, err := v.ClusterFleet(context.Background(), fleet, "firefox", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fix := func(up *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		fixed := firefox2Upgrade(true)
		v.Repo.Add(fixed.Pkg)
		return fixed, true
	}
	v.Repo.Add(firefox2Upgrade(false).Pkg)
	out, err := v.StageDeployment(context.Background(), deploy.PolicyFrontLoading, firefox2Upgrade(false), cl, fix)
	if err != nil {
		t.Fatal(err)
	}
	if out.Abandoned {
		t.Fatalf("abandoned; failures: %+v", v.URR.GroupFailures("firefox-2.0"))
	}
	if out.Integrated() != 6 {
		t.Fatalf("integrated = %d", out.Integrated())
	}
	// Every machine renders correctly on 2.0 now: the migration removed
	// the legacy preferences.
	for _, u := range fleet.Machines {
		tr := (apps.Firefox{}).Run(u.M, []string{"http://example.org"})
		if got := string(tr.Outputs()[0].Data); got != "render(http://example.org)" {
			t.Fatalf("%s renders %q after deployment", u.Name(), got)
		}
	}
	// FrontLoading phase 1 sees every representative: overhead counts only
	// the representative(s) of problem clusters.
	if out.Overhead == 0 || out.Overhead > 2 {
		t.Fatalf("overhead = %d", out.Overhead)
	}
}

func TestUrgentUpgradeBypassesStagingAtCoreLevel(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	up := mysql5Fixed()
	up.Urgent = true
	v.Repo.Add(up.Pkg)
	out, err := v.StageDeployment(context.Background(), deploy.PolicyBalanced, up, cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Policy != deploy.PolicyNoStaging {
		t.Fatalf("urgent upgrade used %v", out.Policy)
	}
	if out.Integrated() != len(fleet.Machines) {
		t.Fatalf("integrated = %d", out.Integrated())
	}
}

func TestAbandonedDeploymentLeavesProductionIntact(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Vendor cannot fix anything.
	out, err := v.StageDeployment(context.Background(), deploy.PolicyBalanced, mysql5Upgrade(), cl,
		func(*pkgmgr.Upgrade, []*report.Report) (*pkgmgr.Upgrade, bool) { return nil, false })
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned {
		t.Fatal("not abandoned")
	}
	// Machines whose cluster never passed keep running 4.1.22 untouched —
	// validation happened only in sandboxes.
	for _, u := range fleet.Machines {
		st := out.Nodes[u.Name()]
		ref, _ := u.M.Package("mysql")
		if st.UpgradeID == "" && ref.Version != "4.1.22" {
			t.Fatalf("%s modified despite never passing validation: %s", u.Name(), ref.Version)
		}
		if tr := (apps.MySQL{}).Run(u.M, []string{"SELECT 1"}); tr.ExitStatus() != "ok" {
			t.Fatalf("%s broken after abandoned deployment", u.Name())
		}
	}
}

func TestNotifyFinalConvergesVersions(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fix := func(up *pkgmgr.Upgrade, failures []*report.Report) (*pkgmgr.Upgrade, bool) {
		fixed := mysql5Fixed()
		v.Repo.Add(fixed.Pkg)
		return fixed, true
	}
	out, err := v.StageDeployment(context.Background(), deploy.PolicyBalanced, mysql5Upgrade(), cl, fix)
	if err != nil {
		t.Fatal(err)
	}
	if out.Abandoned {
		t.Fatal("abandoned")
	}
	// Every node converged on the SAME final upgrade ID, including the
	// ones that integrated the original version before the fix existed.
	for name, st := range out.Nodes {
		if st.UpgradeID != out.FinalID {
			t.Fatalf("%s finished on %q, final is %q", name, st.UpgradeID, out.FinalID)
		}
	}
}

func TestURRGroupsFailuresAcrossFleet(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	// Everyone tests the faulty upgrade directly (no staging): the URR
	// must collapse the failures into exactly two failure modes.
	for _, u := range fleet.Machines {
		rep, err := u.TestUpgrade(context.Background(), mysql5Upgrade())
		if err != nil {
			t.Fatal(err)
		}
		rep.Cluster = "all"
		v.URR.Deposit(rep)
	}
	groups := v.URR.GroupFailures("mysql-5.0.22")
	if len(groups) != 2 {
		t.Fatalf("failure modes = %d, want 2 (php crash, my.cnf crash)", len(groups))
	}
	// Each group's representative report reproduces.
	for _, g := range groups {
		tr, err := v.Reproduce(g.Representative)
		if err != nil {
			t.Fatal(err)
		}
		if tr.ExitStatus() != "crash" {
			t.Fatalf("group %q did not reproduce", g.Signature)
		}
	}
}
