package core

import (
	"context"
	"testing"

	"repro/internal/cluster"
)

// Tests for the profile-pipeline integration: the fleet name index and
// the parallelism-independence of ClusterFleet.

func TestFleetLookupTracksAppends(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	if u := fleet.Lookup("u-php4-1"); u == nil || u.Name() != "u-php4-1" {
		t.Fatalf("Lookup(u-php4-1) = %v", u)
	}
	if fleet.Lookup("nobody") != nil {
		t.Fatal("Lookup invented a machine")
	}
	// Appending to Machines directly must be visible to Lookup: the index
	// is rebuilt when the machine count changes.
	fleet.Machines = append(fleet.Machines, NewUserMachine(v, userMachineVariant("u-late", "plain")))
	if u := fleet.Lookup("u-late"); u == nil || u.Name() != "u-late" {
		t.Fatalf("Lookup(u-late) after append = %v", u)
	}
	// Renaming a machine in place (count unchanged) must be visible too:
	// the old name no longer resolves, the new one does.
	fleet.Machines[0].M.Name = "u-renamed"
	if u := fleet.Lookup("u-renamed"); u == nil || u != fleet.Machines[0] {
		t.Fatalf("Lookup(u-renamed) = %v", u)
	}
	if fleet.Lookup("u-plain-1") != nil {
		t.Fatal("Lookup still resolves the pre-rename name")
	}
}

func TestClusterFleetIdenticalAtAnyProfileParallelism(t *testing.T) {
	v, fleet := setupVendorAndFleet(t)
	var want *Clustering
	for _, par := range []int{1, 2, 16} {
		v.ProfileParallelism = par
		cl, err := v.ClusterFleet(context.Background(), fleet, "mysql", cluster.Config{Diameter: 3}, 2)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if want == nil {
			want = cl
			continue
		}
		if len(cl.Clusters) != len(want.Clusters) || len(cl.Deploy) != len(want.Deploy) {
			t.Fatalf("parallelism %d: shape %d/%d, want %d/%d",
				par, len(cl.Clusters), len(cl.Deploy), len(want.Clusters), len(want.Deploy))
		}
		for i := range cl.Clusters {
			a, b := cl.Clusters[i], want.Clusters[i]
			if a.ID != b.ID || a.Distance != b.Distance || a.String() != b.String() {
				t.Fatalf("parallelism %d: cluster %d = %s, want %s", par, i, a, b)
			}
		}
		for i := range cl.Deploy {
			a, b := cl.Deploy[i], want.Deploy[i]
			if a.ID != b.ID || len(a.Representatives) != len(b.Representatives) || len(a.Others) != len(b.Others) {
				t.Fatalf("parallelism %d: deploy cluster %d differs", par, i)
			}
			for j := range a.Representatives {
				if a.Representatives[j].Name() != b.Representatives[j].Name() {
					t.Fatalf("parallelism %d: rep %d of %s = %s, want %s",
						par, j, a.ID, a.Representatives[j].Name(), b.Representatives[j].Name())
				}
			}
		}
	}
}
