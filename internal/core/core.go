// Package core is Mirage's top-level API: it wires the deployment,
// user-machine testing and reporting subsystems into the integrated
// upgrade development cycle of the paper (Figure 4).
//
// A Vendor owns the reference machine, the package repository, the parser
// registry and the Upgrade Report Repository. UserMachine wraps one
// managed machine with its trace store and validator and implements
// deploy.Node. A Fleet is the set of user machines; Vendor.ClusterFleet
// fingerprints every machine, diffs against the reference, runs the
// two-phase clustering algorithm, and produces the clusters of deployment
// that Vendor.StageDeployment then drives with a chosen protocol.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/envid"
	"repro/internal/machine"
	"repro/internal/orchestrator"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/resource"
	"repro/internal/staging"
	"repro/internal/trace"
	"repro/internal/vmtest"
)

// Vendor is the upgrade producer: reference environment, package
// repository, parsers, resource identification and the report repository.
type Vendor struct {
	Reference  *machine.Machine
	Repo       *pkgmgr.Repository
	Registry   *parser.Registry
	Identifier *envid.Identifier
	URR        *report.URR

	// Resources caches the identified environmental resource references
	// per application name.
	Resources map[string][]string

	// ProfileParallelism bounds how many machines ClusterFleet profiles
	// concurrently (0 means profile.DefaultParallelism, 1 means serial).
	// The clustering result is identical at any setting.
	ProfileParallelism int

	// Transfer, when set, is installed on the deployment controller so
	// StageDeployment records the rollout's wire traffic in the Outcome.
	// Local in-process fleets move no bytes; a vendor driving a networked
	// fleet plugs in transport.Server.TransferSnapshot here.
	Transfer func() deploy.TransferStats

	// JournalPath, when set, makes StageDeployment a durable rollout: it
	// routes through the rollout engine, journaling every state
	// transition to this file. ResumeJournal resumes the rollout the file
	// records (hash-checked against the freshly built plan) instead of
	// starting over, and RebuildUpgrade — the vendor's release store —
	// maps journaled upgrade IDs back to artifacts when the interrupted
	// run had already released fixes.
	JournalPath    string
	ResumeJournal  bool
	RebuildUpgrade func(upgradeID string) (*pkgmgr.Upgrade, bool)
}

// NewVendor returns a vendor around the given reference machine, with the
// Mirage-supplied parser registry and an empty repository and URR.
func NewVendor(reference *machine.Machine) *Vendor {
	return &Vendor{
		Reference:  reference,
		Repo:       pkgmgr.NewRepository(),
		Registry:   parser.MirageRegistry().Clone(),
		Identifier: &envid.Identifier{},
		URR:        report.New(),
		Resources:  make(map[string][]string),
	}
}

// IdentifyResources traces the application on the reference machine under
// each workload and runs the identification heuristic (plus any vendor
// rules installed on v.Identifier). The result is cached and used for
// fleet fingerprinting and dependence tracking.
func (v *Vendor) IdentifyResources(app apps.App, workloads [][]string) *envid.Result {
	traces := make([]*trace.Trace, 0, len(workloads))
	for _, w := range workloads {
		traces = append(traces, app.Run(v.Reference, w))
	}
	res := v.Identifier.Identify(v.Reference, traces, app.Name())
	v.Resources[app.Name()] = res.Resources
	return res
}

// ReferenceFingerprint produces the vendor's item list for the identified
// resources of app — the list sent to every user machine for comparison.
func (v *Vendor) ReferenceFingerprint(app string) *resource.Set {
	fp := parser.NewFingerprinter(v.Registry)
	return fp.Fingerprint(v.Reference, v.Resources[app])
}

// UserMachine is one managed machine: production state, trace store,
// validator. It implements deploy.Node.
//
// Identification runs on user machines as well as at the vendor (the paper
// instruments both): vendor-identified resources miss files whose location
// is machine-dependent, such as configuration under $HOME, and miss
// applications only the user has installed. Local results are kept per
// application and merged with the vendor's for fingerprinting and
// dependence tracking.
type UserMachine struct {
	M     *machine.Machine
	Store *vmtest.Store

	vendor *Vendor
	local  map[string][]string // locally identified resources per app
}

// NewUserMachine wraps m as a Mirage-managed machine of vendor v.
func NewUserMachine(v *Vendor, m *machine.Machine) *UserMachine {
	return &UserMachine{M: m, Store: vmtest.NewStore(), vendor: v, local: make(map[string][]string)}
}

// Name implements deploy.Node.
func (u *UserMachine) Name() string { return u.M.Name }

// RecordBaseline traces one run of the application on the production
// machine, storing it for later upgrade validation.
func (u *UserMachine) RecordBaseline(app apps.App, inputs []string) vmtest.Recording {
	return u.Store.Record(app, u.M, inputs)
}

// IdentifyLocal runs the identification heuristic on this machine's own
// traces of app, using the vendor's rule set, and caches the result.
func (u *UserMachine) IdentifyLocal(app apps.App, workloads [][]string) *envid.Result {
	traces := make([]*trace.Trace, 0, len(workloads))
	for _, w := range workloads {
		traces = append(traces, app.Run(u.M, w))
	}
	res := u.vendor.Identifier.Identify(u.M, traces, app.Name())
	u.local[app.Name()] = res.Resources
	return res
}

// resourcesFor merges the vendor-identified and locally identified
// resource references for app, deduplicated and sorted.
func (u *UserMachine) resourcesFor(app string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, refs := range [][]string{u.vendor.Resources[app], u.local[app]} {
		for _, r := range refs {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Strings(out)
	return out
}

// allResources returns the dependence map for this machine: every
// application known to the vendor or identified locally, with its merged
// resource references.
func (u *UserMachine) allResources() map[string][]string {
	names := make(map[string]bool)
	for a := range u.vendor.Resources {
		names[a] = true
	}
	for a := range u.local {
		names[a] = true
	}
	out := make(map[string][]string, len(names))
	for a := range names {
		out[a] = u.resourcesFor(a)
	}
	return out
}

// Fingerprint computes this machine's item set over the merged vendor and
// local resource references for app.
func (u *UserMachine) Fingerprint(app string) *resource.Set {
	fp := parser.NewFingerprinter(u.vendor.Registry)
	return fp.Fingerprint(u.M, u.resourcesFor(app))
}

// Profile implements profile.Source: the machine's diff profile against
// the vendor reference set for app, computed in-process. Safe to call
// concurrently across different machines (profile.Collect does), since it
// only reads the vendor's registry and resource caches.
func (u *UserMachine) Profile(_ context.Context, app string, vendor *resource.Set) (profile.Machine, error) {
	return profile.New(u.Name(), u.Fingerprint(app), vendor, u.M.AppSetKey()), nil
}

// TestUpgrade implements deploy.Node: validate the upgrade in an isolated
// snapshot, returning the report (with a report image attached on failure).
// Local validation is all in-process, so the context is only honoured
// between operations, not within one.
func (u *UserMachine) TestUpgrade(_ context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	val := vmtest.NewValidator(u.M, u.vendor.Repo, u.Store)
	val.ResourcesByApp = u.allResources()
	rep, err := val.Validate(up)
	if err != nil {
		return nil, err
	}
	out := &report.Report{
		UpgradeID: up.ID,
		Machine:   u.M.Name,
		Success:   rep.OK(),
	}
	for _, verdict := range rep.Verdicts {
		if !verdict.OK {
			out.FailedApps = append(out.FailedApps, verdict.App)
			out.Reasons = append(out.Reasons, verdict.Reason)
		}
	}
	if !out.Success {
		out.Image = report.CaptureImage(rep.Sandbox)
	}
	return out, nil
}

// Integrate implements deploy.Node: apply the upgrade to the production
// system (validation already succeeded in the sandbox).
func (u *UserMachine) Integrate(_ context.Context, up *pkgmgr.Upgrade) error {
	mgr := pkgmgr.NewManager(u.M, u.vendor.Repo)
	_, err := mgr.Apply(up)
	return err
}

// Fleet is the set of machines Mirage manages for a vendor.
type Fleet struct {
	Machines []*UserMachine

	// mu guards the name index: Lookup may be called concurrently (the
	// old linear scan was read-only; the index is not).
	mu sync.Mutex
	// byName indexes Machines for Lookup; indexed records the machine
	// count at build time. The index is rebuilt whenever the count
	// changed, a hit's name no longer matches (rename), or the name is
	// absent (append, rename, miss) — so hits are O(1) and a miss costs
	// one rebuild, the price of the old linear scan. The one mutation a
	// rebuild-on-miss cannot see: an entry of Machines swapped for a
	// different machine of the same name keeps resolving to the removed
	// machine until some other rebuild happens.
	byName  map[string]*UserMachine
	indexed int
}

// NewFleet wraps raw machines into user machines of vendor v.
func NewFleet(v *Vendor, machines ...*machine.Machine) *Fleet {
	f := &Fleet{}
	for _, m := range machines {
		f.Machines = append(f.Machines, NewUserMachine(v, m))
	}
	return f
}

// Lookup returns the user machine with the given name, or nil.
func (f *Fleet) Lookup(name string) *UserMachine {
	f.mu.Lock()
	defer f.mu.Unlock()
	u := f.byName[name]
	if f.indexed != len(f.Machines) || u == nil || u.M.Name != name {
		f.byName = make(map[string]*UserMachine, len(f.Machines))
		for _, m := range f.Machines {
			f.byName[m.M.Name] = m
		}
		f.indexed = len(f.Machines)
		u = f.byName[name]
	}
	return u
}

// Clustering is the result of clustering a fleet for one application.
type Clustering struct {
	App      string
	Clusters []*cluster.Cluster
	// Deploy is the same clustering expressed as clusters of deployment
	// with representatives chosen (RepsPerCluster machines per cluster).
	Deploy []*deploy.Cluster
}

// ClusterFleet profiles every machine of the fleet against the vendor
// reference for app — concurrently, on the shared profile pipeline — runs
// the two-phase clustering algorithm with cfg, and selects repsPerCluster
// representatives per cluster (at least one). The remote clustering path
// (transport.Server.ClusterRemote) routes through the identical
// Collect → cluster.Run → Assemble pipeline, so local and networked
// fleets with the same fingerprints produce the same clusters.
func (v *Vendor) ClusterFleet(ctx context.Context, f *Fleet, app string, cfg cluster.Config, repsPerCluster int) (*Clustering, error) {
	if _, ok := v.Resources[app]; !ok {
		return nil, fmt.Errorf("core: no identified resources for application %q", app)
	}
	vendorSet := v.ReferenceFingerprint(app)

	sources := make([]profile.Source, len(f.Machines))
	for i, u := range f.Machines {
		sources[i] = u
	}
	profiles, err := profile.Collect(ctx, sources, app, vendorSet, v.ProfileParallelism)
	if err != nil {
		return nil, err
	}
	clusters := cluster.Run(cfg, profile.Fingerprints(profiles))

	dcs, err := profile.Assemble(clusters, repsPerCluster, func(name string) deploy.Node {
		if u := f.Lookup(name); u != nil {
			return u
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Clustering{App: app, Clusters: clusters, Deploy: dcs}, nil
}

// DeploymentSpec builds the orchestrator spec StageDeployment and
// StartDeployment submit: the vendor's URR, transfer counters, journal
// configuration and release store, over the clustering's clusters of
// deployment.
func (v *Vendor) DeploymentSpec(policy deploy.Policy, up *pkgmgr.Upgrade, cl *Clustering, fix deploy.Fixer) orchestrator.Spec {
	return orchestrator.Spec{
		Policy:   policy,
		Upgrade:  up,
		Clusters: cl.Deploy,
		Fix:      fix,
		URR:      v.URR,
		Journal:  v.JournalPath,
		Resume:   v.ResumeJournal,
		Rebuild:  v.RebuildUpgrade,
		Configure: func(ctl *deploy.Controller) {
			ctl.Transfer = v.Transfer
		},
	}
}

// StartDeployment launches the upgrade across the clustered fleet as a
// rollout on orch and returns its handle — the cancellable, observable,
// pausable form of StageDeployment. Multiple deployments may run
// concurrently on one orchestrator, each with its own journal.
func (v *Vendor) StartDeployment(ctx context.Context, orch *orchestrator.Orchestrator, policy deploy.Policy, up *pkgmgr.Upgrade, cl *Clustering, fix deploy.Fixer) (*orchestrator.Handle, error) {
	return orch.Start(ctx, v.DeploymentSpec(policy, up, cl, fix))
}

// StageDeployment runs the upgrade across the clustered fleet under the
// given policy, debugging failures with fix. The wave schedule comes from
// the shared staging planner, so it is exactly the schedule the simulator
// predicts for this fleet; within each wave, nodes validate the upgrade
// concurrently on the controller's worker pool.
//
// StageDeployment is the synchronous convenience form: it submits the
// rollout to a private orchestrator and waits for the handle — one code
// path whether a deployment is driven by a blocking call or by the
// control-plane API. Cancelling ctx aborts the rollout (journaled as
// abandoned) and returns the partial outcome with ctx's error.
func (v *Vendor) StageDeployment(ctx context.Context, policy deploy.Policy, up *pkgmgr.Upgrade, cl *Clustering, fix deploy.Fixer) (*deploy.Outcome, error) {
	h, err := v.StartDeployment(ctx, orchestrator.New(""), policy, up, cl, fix)
	if err != nil {
		return nil, err
	}
	// The rollout's own context is ctx: Wait on Background so a cancelled
	// deployment still hands back its partial outcome instead of a bare
	// ctx.Err().
	return h.Wait(context.Background())
}

// DeploymentPlan returns the wave schedule StageDeployment would execute
// for the clustering — useful for dry-run inspection and for
// cross-checking a live rollout against its simulation. StageDeployment
// constructs its controller with the default shuffle seed, so the plan
// here is built with the same seed to keep the preview exact.
func (v *Vendor) DeploymentPlan(policy deploy.Policy, cl *Clustering) *staging.Plan {
	return staging.BuildPlan(policy, deploy.Refs(cl.Deploy), 0)
}

// Reproduce materializes the report image of a failed report into a local
// machine and re-runs the failed application on it, returning the trace —
// the vendor-side debugging loop the reporting subsystem enables.
func (v *Vendor) Reproduce(r *report.Report) (*trace.Trace, error) {
	if r.Image == nil {
		return nil, fmt.Errorf("core: report %d has no image", r.ID)
	}
	if len(r.FailedApps) == 0 {
		return nil, fmt.Errorf("core: report %d has no failed applications", r.ID)
	}
	model := apps.Lookup(r.FailedApps[0])
	if model == nil {
		return nil, fmt.Errorf("core: no model for application %q", r.FailedApps[0])
	}
	m := r.Image.Materialize()
	return model.Run(m, nil), nil
}
