package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/resource"
)

// Property test for the multiplicity-aware QT phase: on randomized fleets
// with heavy machine duplication, the weighted (deduplicated) clustering
// must equal the naive clustering over raw machines, cluster for cluster.

// duplicatedFleet builds n machines drawn from a small pool of distinct
// profiles, so duplication is heavy and phase 2 gets real work: several
// parsed-diff groups, several content variants per group at mixed
// distances, and a couple of app sets.
func duplicatedFleet(rng *rand.Rand, n int) []MachineFingerprint {
	type distinct struct {
		parsed  *resource.Set
		content *resource.Set
		appSet  string
	}
	nParsed := 1 + rng.Intn(3)
	nContent := 2 + rng.Intn(5)
	nApps := 1 + rng.Intn(2)
	var pool []distinct
	for p := 0; p < nParsed; p++ {
		parsed := resource.NewSet(0)
		for k := 0; k <= p; k++ {
			parsed.Add(resource.Item{Key: fmt.Sprintf("cfg.opt%d", k), Hash: uint64(100 + k), Kind: resource.Parsed})
		}
		for c := 0; c < nContent; c++ {
			content := resource.NewSet(0)
			// Overlapping item ranges give a spread of pairwise
			// Manhattan distances, including ties.
			lo, hi := rng.Intn(4), 0
			hi = lo + 1 + rng.Intn(5)
			for k := lo; k < hi; k++ {
				content.Add(resource.Item{Key: fmt.Sprintf("blob.chunk%d", k), Hash: uint64(k), Kind: resource.Content})
			}
			for a := 0; a < nApps; a++ {
				pool = append(pool, distinct{parsed, content, fmt.Sprintf("apps%d", a)})
			}
		}
	}
	ms := make([]MachineFingerprint, n)
	for i := range ms {
		d := pool[rng.Intn(len(pool))]
		ms[i] = MachineFingerprint{
			Name:        fmt.Sprintf("m%04d", i),
			ParsedDiff:  d.parsed,
			ContentDiff: d.content,
			AppSet:      d.appSet,
		}
	}
	return ms
}

func clustersEqual(t *testing.T, seed int64, got, want []*Cluster) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("seed %d: %d clusters, naive %d", seed, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.Distance != w.Distance {
			t.Fatalf("seed %d cluster %d: id/distance %d/%d, naive %d/%d",
				seed, i, g.ID, g.Distance, w.ID, w.Distance)
		}
		if len(g.Machines) != len(w.Machines) {
			t.Fatalf("seed %d cluster %d: members %v, naive %v", seed, i, g.Machines, w.Machines)
		}
		for j := range g.Machines {
			if g.Machines[j] != w.Machines[j] {
				t.Fatalf("seed %d cluster %d: members %v, naive %v", seed, i, g.Machines, w.Machines)
			}
		}
		if !g.Label.Equal(w.Label) {
			t.Fatalf("seed %d cluster %d: labels differ", seed, i)
		}
	}
}

func TestWeightedQTEqualsNaiveOnDuplicatedFleets(t *testing.T) {
	for seed := int64(0); seed < 18; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ms := duplicatedFleet(rng, 40+rng.Intn(120))
		for _, diameter := range []int{0, 2, 5} {
			weighted := Run(Config{Diameter: diameter}, ms)
			naive := Run(Config{Diameter: diameter, NaiveQT: true}, ms)
			clustersEqual(t, seed, weighted, naive)
		}
	}
}

// The collapse must also be exact when duplication is total (one distinct
// profile) and when absent (all profiles distinct).
func TestWeightedQTDegenerateFleets(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ms := duplicatedFleet(rng, 50)
	uniform := make([]MachineFingerprint, len(ms))
	for i := range uniform {
		uniform[i] = ms[0]
		uniform[i].Name = fmt.Sprintf("u%04d", i)
	}
	clustersEqual(t, 99,
		Run(Config{Diameter: 3}, uniform),
		Run(Config{Diameter: 3, NaiveQT: true}, uniform))
	if got := Run(Config{Diameter: 3}, uniform); len(got) != 1 || got[0].Size() != len(uniform) {
		t.Fatalf("uniform fleet clustered into %v", got)
	}

	var all []MachineFingerprint
	for i := 0; i < 30; i++ {
		content := resource.NewSet(0)
		content.Add(resource.Item{Key: fmt.Sprintf("only%d", i), Hash: uint64(i), Kind: resource.Content})
		all = append(all, MachineFingerprint{
			Name:        fmt.Sprintf("d%04d", i),
			ParsedDiff:  resource.NewSet(0),
			ContentDiff: content,
			AppSet:      "apps",
		})
	}
	clustersEqual(t, -1,
		Run(Config{Diameter: 2}, all),
		Run(Config{Diameter: 2, NaiveQT: true}, all))
}
