package cluster

import (
	"testing"

	"repro/internal/resource"
)

func snapshotFixture(t *testing.T) *Snapshot {
	t.Helper()
	machines := []MachineFingerprint{
		fp("m1", nil, nil),
		fp("m2", nil, nil),
		fp("m3", pset("libc.2.5"), nil),
	}
	return BuildSnapshot(Config{Diameter: 3}, machines)
}

func TestSnapshotMatchesRun(t *testing.T) {
	s := snapshotFixture(t)
	if len(s.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(s.Clusters))
	}
}

func TestUpdateMovesMachineAfterEnvironmentChange(t *testing.T) {
	s := snapshotFixture(t)
	// m2 upgrades libc: it must leave {m1,m2} and join m3's cluster.
	c := s.Update(fp("m2", pset("libc.2.5"), nil))
	if c == nil {
		t.Fatal("Update returned nil cluster")
	}
	if len(c.Machines) != 2 || c.Machines[0] != "m2" || c.Machines[1] != "m3" {
		t.Fatalf("m2's new cluster = %v", c.Machines)
	}
	if got := s.clusterOf("m1"); got == nil || len(got.Machines) != 1 {
		t.Fatalf("m1's cluster after move = %+v", got)
	}
}

func TestUpdateCreatesSingleton(t *testing.T) {
	s := snapshotFixture(t)
	c := s.Update(fp("m4", pset("php.5"), nil))
	if len(c.Machines) != 1 || c.Machines[0] != "m4" {
		t.Fatalf("new machine cluster = %v", c.Machines)
	}
	if len(s.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(s.Clusters))
	}
}

func TestUpdateRespectsDiameter(t *testing.T) {
	machines := []MachineFingerprint{
		fp("m1", nil, cset("a")),
	}
	s := BuildSnapshot(Config{Diameter: 1}, machines)
	// Distance between {a} and {b} is 2 > 1: must not join.
	c := s.Update(fp("m2", nil, cset("b")))
	if len(c.Machines) != 1 {
		t.Fatalf("diameter violated: %v", c.Machines)
	}
}

func TestUpdateRespectsAppSet(t *testing.T) {
	s := snapshotFixture(t)
	m := fp("m4", nil, nil)
	m.AppSet = "app,php"
	c := s.Update(m)
	if len(c.Machines) != 1 {
		t.Fatalf("app-set split violated: %v", c.Machines)
	}
}

func TestRemoveMachine(t *testing.T) {
	s := snapshotFixture(t)
	s.Remove("m3")
	if len(s.Clusters) != 1 {
		t.Fatalf("clusters after remove = %d", len(s.Clusters))
	}
	if s.clusterOf("m3") != nil {
		t.Fatal("removed machine still clustered")
	}
	if _, ok := s.Fingerprints["m3"]; ok {
		t.Fatal("fingerprint not forgotten")
	}
}

func TestUpdateIdempotentForUnchangedMachine(t *testing.T) {
	s := snapshotFixture(t)
	before := len(s.Clusters)
	c := s.Update(fp("m1", nil, nil))
	if len(s.Clusters) != before {
		t.Fatalf("cluster count changed: %d -> %d", before, len(s.Clusters))
	}
	if len(c.Machines) != 2 {
		t.Fatalf("m1 lost its peer: %v", c.Machines)
	}
}

func TestIncrementalInvariantsMatchRun(t *testing.T) {
	// Build incrementally from scratch and verify the Run invariants:
	// identical parsed diffs and app sets within clusters, diameter bound.
	s := BuildSnapshot(Config{Diameter: 2}, nil)
	adds := []MachineFingerprint{
		fp("a", nil, cset("x")),
		fp("b", nil, cset("x")),
		fp("c", nil, cset("y")),
		fp("d", pset("p"), nil),
		fp("e", pset("p"), nil),
	}
	for _, m := range adds {
		s.Update(m)
	}
	total := 0
	for _, c := range s.Clusters {
		total += len(c.Machines)
		for i := 0; i < len(c.Machines); i++ {
			for j := i + 1; j < len(c.Machines); j++ {
				a := s.Fingerprints[c.Machines[i]]
				b := s.Fingerprints[c.Machines[j]]
				if !a.ParsedDiff.Equal(b.ParsedDiff) {
					t.Fatalf("cluster %v mixes parsed diffs", c.Machines)
				}
				if a.AppSet != b.AppSet {
					t.Fatalf("cluster %v mixes app sets", c.Machines)
				}
				if d := resource.ManhattanDistance(a.ContentDiff, b.ContentDiff); d > 2 {
					t.Fatalf("cluster %v violates diameter: %d", c.Machines, d)
				}
			}
		}
	}
	if total != len(adds) {
		t.Fatalf("machines clustered = %d, want %d", total, len(adds))
	}
}

func TestRefreshReassignsIDs(t *testing.T) {
	s := snapshotFixture(t)
	s.Update(fp("m4", pset("php.5"), nil))
	for i, c := range s.Clusters {
		if c.ID != i {
			t.Fatalf("cluster %d has ID %d", i, c.ID)
		}
	}
	// Distances ascending.
	for i := 1; i < len(s.Clusters); i++ {
		if s.Clusters[i-1].Distance > s.Clusters[i].Distance {
			t.Fatal("clusters not sorted by distance")
		}
	}
}
