package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/resource"
)

// Fleet-scale property test: generate random machine populations and check
// the structural invariants Run guarantees, independent of the inputs:
//
//  1. the output is a partition of the input machines;
//  2. all members of a cluster have identical parsed diffs;
//  3. all members of a cluster share an application set;
//  4. the pairwise content (Manhattan) distance within a cluster never
//     exceeds the diameter;
//  5. the output is deterministic under input permutation.
func TestRunInvariantsRandomFleets(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(60)
		diameter := rng.Intn(5)
		machines := randomFleet(rng, n)

		clusters := Run(Config{Diameter: diameter}, machines)
		fps := make(map[string]MachineFingerprint, n)
		for _, m := range machines {
			fps[m.Name] = m
		}

		// (1) partition
		seen := make(map[string]bool)
		total := 0
		for _, c := range clusters {
			total += len(c.Machines)
			for _, name := range c.Machines {
				if seen[name] {
					t.Fatalf("trial %d: machine %s in two clusters", trial, name)
				}
				seen[name] = true
			}
		}
		if total != n {
			t.Fatalf("trial %d: clustered %d of %d machines", trial, total, n)
		}

		for _, c := range clusters {
			for i := 0; i < len(c.Machines); i++ {
				a := fps[c.Machines[i]]
				for j := i + 1; j < len(c.Machines); j++ {
					b := fps[c.Machines[j]]
					// (2) identical parsed diffs
					if !a.ParsedDiff.Equal(b.ParsedDiff) {
						t.Fatalf("trial %d: cluster %v mixes parsed diffs", trial, c.Machines)
					}
					// (3) same app set
					if a.AppSet != b.AppSet {
						t.Fatalf("trial %d: cluster %v mixes app sets", trial, c.Machines)
					}
					// (4) diameter bound
					if d := resource.ManhattanDistance(a.ContentDiff, b.ContentDiff); d > diameter {
						t.Fatalf("trial %d: cluster %v violates diameter %d (distance %d)",
							trial, c.Machines, diameter, d)
					}
				}
			}
		}

		// (5) permutation determinism
		shuffled := append([]MachineFingerprint(nil), machines...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		again := Run(Config{Diameter: diameter}, shuffled)
		if len(again) != len(clusters) {
			t.Fatalf("trial %d: cluster count differs after shuffle: %d vs %d",
				trial, len(again), len(clusters))
		}
		for i := range clusters {
			if keyOf(clusters[i].Machines) != keyOf(again[i].Machines) {
				t.Fatalf("trial %d: cluster %d differs after shuffle", trial, i)
			}
		}
	}
}

// randomFleet builds n machines drawing parsed/content diffs and app sets
// from small pools, so collisions (and therefore merges) actually happen.
func randomFleet(rng *rand.Rand, n int) []MachineFingerprint {
	parsedPool := []*resource.Set{
		pset(), pset("libc.2.5"), pset("libc.2.5", "php.4"), pset("mysqld.5"),
	}
	appPool := []string{"mysql", "mysql,php", "mysql,apache"}
	out := make([]MachineFingerprint, n)
	for i := range out {
		var content []string
		for c := 0; c < rng.Intn(4); c++ {
			content = append(content, fmt.Sprintf("chunk-%d", rng.Intn(6)))
		}
		out[i] = MachineFingerprint{
			Name:        fmt.Sprintf("m%03d", i),
			ParsedDiff:  parsedPool[rng.Intn(len(parsedPool))],
			ContentDiff: cset(content...),
			AppSet:      appPool[rng.Intn(len(appPool))],
		}
	}
	return out
}

// The incremental snapshot must uphold the same invariants through a long
// random churn sequence of updates and removals.
func TestIncrementalInvariantsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := BuildSnapshot(Config{Diameter: 2}, randomFleet(rng, 20))
	for step := 0; step < 150; step++ {
		if rng.Intn(5) == 0 && len(s.Fingerprints) > 3 {
			// remove a random machine
			for name := range s.Fingerprints {
				s.Remove(name)
				break
			}
			continue
		}
		m := randomFleet(rng, 1)[0]
		m.Name = fmt.Sprintf("m%03d", rng.Intn(30))
		s.Update(m)
	}

	total := 0
	for _, c := range s.Clusters {
		total += len(c.Machines)
		for i := 0; i < len(c.Machines); i++ {
			a := s.Fingerprints[c.Machines[i]]
			for j := i + 1; j < len(c.Machines); j++ {
				b := s.Fingerprints[c.Machines[j]]
				if !a.ParsedDiff.Equal(b.ParsedDiff) || a.AppSet != b.AppSet {
					t.Fatalf("churn: cluster %v violates uniformity", c.Machines)
				}
				if d := resource.ManhattanDistance(a.ContentDiff, b.ContentDiff); d > 2 {
					t.Fatalf("churn: cluster %v violates diameter (%d)", c.Machines, d)
				}
			}
		}
	}
	if total != len(s.Fingerprints) {
		t.Fatalf("churn: %d clustered, %d tracked", total, len(s.Fingerprints))
	}
}
