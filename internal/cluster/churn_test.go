package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/resource"
)

// Property test for Snapshot.Update under randomized churn: after any
// sequence of add/change/remove events the snapshot must still honor every
// invariant Run guarantees — identical parsed diffs and uniform app sets
// within a cluster, content diameter bounded, no empty clusters, IDs equal
// to position with distances ascending, and every live machine in exactly
// one cluster. The drain at the end exercises the emptied-cluster /
// ID-reassignment path all the way to zero.

var (
	churnParsedPool = [][]string{
		nil,
		{"libc.2.5"},
		{"libc.2.5", "php.5"},
		{"ssl.1"},
	}
	churnContentPool = []string{"a", "b", "c", "d", "e"}
	churnAppSets     = []string{"app", "app,extra"}
)

func randomFingerprint(rng *rand.Rand, name string) MachineFingerprint {
	var content []string
	for _, k := range churnContentPool {
		if rng.Intn(2) == 0 {
			content = append(content, k)
		}
	}
	m := fp(name, pset(churnParsedPool[rng.Intn(len(churnParsedPool))]...), cset(content...))
	m.AppSet = churnAppSets[rng.Intn(len(churnAppSets))]
	return m
}

func pickAlive(rng *rand.Rand, alive map[string]bool) string {
	if len(alive) == 0 {
		return ""
	}
	names := make([]string, 0, len(alive))
	for name := range alive {
		names = append(names, name)
	}
	sort.Strings(names)
	return names[rng.Intn(len(names))]
}

func checkSnapshotInvariants(t *testing.T, s *Snapshot, alive map[string]bool) {
	t.Helper()
	seen := make(map[string]bool, len(alive))
	for i, c := range s.Clusters {
		if c.ID != i {
			t.Fatalf("cluster at position %d has ID %d", i, c.ID)
		}
		if len(c.Machines) == 0 {
			t.Fatal("empty cluster survived refresh")
		}
		if i > 0 && s.Clusters[i-1].Distance > c.Distance {
			t.Fatalf("clusters not sorted by distance at %d", i)
		}
		if !sort.StringsAreSorted(c.Machines) {
			t.Fatalf("cluster %d members not sorted: %v", i, c.Machines)
		}
		for _, name := range c.Machines {
			if seen[name] {
				t.Fatalf("machine %s appears in two clusters", name)
			}
			seen[name] = true
			if !alive[name] {
				t.Fatalf("ghost member %s still clustered", name)
			}
		}
		for a := 0; a < len(c.Machines); a++ {
			for b := a + 1; b < len(c.Machines); b++ {
				ma := s.Fingerprints[c.Machines[a]]
				mb := s.Fingerprints[c.Machines[b]]
				if !ma.ParsedDiff.Equal(mb.ParsedDiff) {
					t.Fatalf("cluster %v mixes parsed diffs", c.Machines)
				}
				if ma.AppSet != mb.AppSet {
					t.Fatalf("cluster %v mixes app sets", c.Machines)
				}
				if d := resource.ManhattanDistance(ma.ContentDiff, mb.ContentDiff); d > s.Config.Diameter {
					t.Fatalf("cluster %v violates diameter: %d > %d", c.Machines, d, s.Config.Diameter)
				}
			}
		}
	}
	for name := range alive {
		if !seen[name] {
			t.Fatalf("machine %s lost from the clustering", name)
		}
	}
}

func TestSnapshotUpdateRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := Config{Diameter: 2}

	machines := make([]MachineFingerprint, 0, 40)
	alive := make(map[string]bool)
	for i := 0; i < 40; i++ {
		m := randomFingerprint(rng, fmt.Sprintf("seed%02d", i))
		machines = append(machines, m)
		alive[m.Name] = true
	}
	s := BuildSnapshot(cfg, machines)
	checkSnapshotInvariants(t, s, alive)

	const events = 150
	for ev := 0; ev < events; ev++ {
		switch op := rng.Intn(10); {
		case op < 4: // environment change on an existing machine
			if name := pickAlive(rng, alive); name != "" {
				s.Update(randomFingerprint(rng, name))
			}
		case op < 7: // new machine joins the fleet
			name := fmt.Sprintf("new%03d", ev)
			s.Update(randomFingerprint(rng, name))
			alive[name] = true
		default: // machine decommissioned
			if name := pickAlive(rng, alive); name != "" {
				s.Remove(name)
				delete(alive, name)
			}
		}
		checkSnapshotInvariants(t, s, alive)
	}

	// Drain the fleet entirely: every removal must reassign IDs and the
	// final state must be zero clusters with zero fingerprints.
	for len(alive) > 0 {
		name := pickAlive(rng, alive)
		s.Remove(name)
		delete(alive, name)
		checkSnapshotInvariants(t, s, alive)
	}
	if len(s.Clusters) != 0 || len(s.Fingerprints) != 0 {
		t.Fatalf("drained snapshot not empty: %d clusters, %d fingerprints",
			len(s.Clusters), len(s.Fingerprints))
	}
}
