package cluster

import (
	"testing"

	"repro/internal/resource"
)

func ownSet(keys ...string) *resource.Set {
	s := resource.NewSet(len(keys))
	for _, k := range keys {
		s.Add(resource.Item{Key: k, Hash: 1, Kind: resource.Parsed})
	}
	return s
}

func TestLocalSignatureGrouping(t *testing.T) {
	vendor := ownSet("libc.2.4", "mysqld.4.1")

	sigs := []LocalSignature{
		ComputeLocalSignature("m1", ownSet("libc.2.4", "mysqld.4.1"), vendor, "mysql"),
		ComputeLocalSignature("m2", ownSet("libc.2.4", "mysqld.4.1"), vendor, "mysql"),
		ComputeLocalSignature("m3", ownSet("libc.2.5", "mysqld.4.1"), vendor, "mysql"),
		ComputeLocalSignature("m4", ownSet("libc.2.4", "mysqld.4.1"), vendor, "mysql,php"),
	}
	clusters := GroupBySignature(sigs)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(clusters))
	}
	// m1 and m2 share a signature; m3 differs in items; m4 in app set.
	found := false
	for _, c := range clusters {
		if c.Size() == 2 {
			found = true
			if c.Machines[0] != "m1" || c.Machines[1] != "m2" {
				t.Fatalf("pair cluster = %v", c.Machines)
			}
		}
	}
	if !found {
		t.Fatal("identical machines did not share a signature cluster")
	}
}

func TestLocalSignatureMatchesFullClustering(t *testing.T) {
	// The privacy protocol must produce the same original clusters as
	// phase 1 of the full algorithm (for parser-covered fleets).
	vendor := ownSet("a", "b")
	machines := []MachineFingerprint{
		fp("m1", ownSet("a", "b").Diff(vendor).OfKind(resource.Parsed), nil),
		fp("m2", ownSet("a", "b").Diff(vendor).OfKind(resource.Parsed), nil),
		fp("m3", ownSet("a", "b", "c").Diff(vendor).OfKind(resource.Parsed), nil),
	}
	full := Run(Config{Diameter: 3}, machines)

	var sigs []LocalSignature
	for _, name := range []string{"m1", "m2", "m3"} {
		own := ownSet("a", "b")
		if name == "m3" {
			own = ownSet("a", "b", "c")
		}
		sigs = append(sigs, ComputeLocalSignature(name, own, vendor, "app"))
	}
	anon := GroupBySignature(sigs)

	if len(anon) != len(full) {
		t.Fatalf("anonymous clusters = %d, full clusters = %d", len(anon), len(full))
	}
	// Same partitions (compare as sets of member lists).
	fullParts := make(map[string]bool)
	for _, c := range full {
		fullParts[keyOf(c.Machines)] = true
	}
	for _, c := range anon {
		if !fullParts[keyOf(c.Machines)] {
			t.Fatalf("anonymous cluster %v not in full clustering", c.Machines)
		}
	}
}

func keyOf(names []string) string {
	out := ""
	for _, n := range names {
		out += n + ","
	}
	return out
}

func TestSignatureRevealsNoItems(t *testing.T) {
	// The wire artifact is a single uint64 plus the app set: verify the
	// signature changes with the diff but carries no item text.
	vendor := ownSet("secret-path-1")
	a := ComputeLocalSignature("m", ownSet("secret-path-1"), vendor, "app")
	b := ComputeLocalSignature("m", ownSet("secret-path-2"), vendor, "app")
	if a.Diff == b.Diff {
		t.Fatal("different environments share a signature")
	}
}

func TestAdvertisementMatching(t *testing.T) {
	vendor := ownSet("a")
	sig := ComputeLocalSignature("m", ownSet("a", "b"), vendor, "mysql")
	ad := Advertisement{UpgradeID: "up", DiffSignature: sig.Diff, AppSet: "mysql"}
	if !sig.Matches(ad) {
		t.Fatal("machine does not recognise its own advertisement")
	}
	if sig.Matches(Advertisement{UpgradeID: "up", DiffSignature: sig.Diff + 1, AppSet: "mysql"}) {
		t.Fatal("machine matched a foreign cluster advertisement")
	}
	if sig.Matches(Advertisement{UpgradeID: "up", DiffSignature: sig.Diff, AppSet: "mysql,php"}) {
		t.Fatal("machine matched a foreign app-set advertisement")
	}
}

func TestGroupBySignatureDeterministic(t *testing.T) {
	vendor := ownSet("x")
	sigs := []LocalSignature{
		ComputeLocalSignature("m2", ownSet("x", "y"), vendor, "a"),
		ComputeLocalSignature("m1", ownSet("x", "y"), vendor, "a"),
		ComputeLocalSignature("m3", ownSet("x"), vendor, "a"),
	}
	a := GroupBySignature(sigs)
	b := GroupBySignature([]LocalSignature{sigs[2], sigs[0], sigs[1]})
	if len(a) != len(b) {
		t.Fatal("non-deterministic group count")
	}
	for i := range a {
		if keyOf(a[i].Machines) != keyOf(b[i].Machines) {
			t.Fatalf("order differs at %d", i)
		}
	}
}
