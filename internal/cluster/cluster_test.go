package cluster

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/resource"
)

// pset builds a parsed-item set from item names.
func pset(keys ...string) *resource.Set {
	s := resource.NewSet(len(keys))
	for _, k := range keys {
		s.Add(resource.Item{Key: k, Hash: 1, Kind: resource.Parsed})
	}
	return s
}

// cset builds a content-item set from item names.
func cset(keys ...string) *resource.Set {
	s := resource.NewSet(len(keys))
	for _, k := range keys {
		s.Add(resource.Item{Key: k, Hash: 2, Kind: resource.Content})
	}
	return s
}

func fp(name string, parsed, content *resource.Set) MachineFingerprint {
	if parsed == nil {
		parsed = resource.NewSet(0)
	}
	if content == nil {
		content = resource.NewSet(0)
	}
	return MachineFingerprint{Name: name, ParsedDiff: parsed, ContentDiff: content, AppSet: "app"}
}

func clusterOf(t *testing.T, clusters []*Cluster, machine string) *Cluster {
	t.Helper()
	for _, c := range clusters {
		for _, m := range c.Machines {
			if m == machine {
				return c
			}
		}
	}
	t.Fatalf("machine %s not in any cluster", machine)
	return nil
}

func TestPhase1ExactGrouping(t *testing.T) {
	ms := []MachineFingerprint{
		fp("a1", pset("libc.2.4"), nil),
		fp("a2", pset("libc.2.4"), nil),
		fp("b1", pset("libc.2.5"), nil),
		fp("c1", nil, nil), // identical to vendor
	}
	clusters := Run(Config{Diameter: 3}, ms)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3: %v", len(clusters), clusters)
	}
	if clusterOf(t, clusters, "a1") != clusterOf(t, clusters, "a2") {
		t.Fatal("identical parsed diffs split")
	}
	if clusterOf(t, clusters, "a1") == clusterOf(t, clusters, "b1") {
		t.Fatal("different parsed diffs merged")
	}
	// The vendor-identical machine must be nearest (distance 0, first).
	if clusters[0].Machines[0] != "c1" || clusters[0].Distance != 0 {
		t.Fatalf("first cluster = %v distance %d", clusters[0].Machines, clusters[0].Distance)
	}
}

func TestPhase2DiameterMerges(t *testing.T) {
	// Content diffs of size <= diameter merge; larger diffs split.
	ms := []MachineFingerprint{
		fp("m1", nil, cset("chunkA")),
		fp("m2", nil, cset("chunkB")),               // distance(m1,m2) = 2
		fp("m3", nil, cset("c1", "c2", "c3", "c4")), // far from both
	}
	clusters := Run(Config{Diameter: 3}, ms)
	if clusterOf(t, clusters, "m1") != clusterOf(t, clusters, "m2") {
		t.Fatal("machines within diameter not merged")
	}
	if clusterOf(t, clusters, "m1") == clusterOf(t, clusters, "m3") {
		t.Fatal("distant machine merged")
	}
}

func TestPhase2DiameterZeroSeparates(t *testing.T) {
	ms := []MachineFingerprint{
		fp("m1", nil, cset("chunkA")),
		fp("m2", nil, cset("chunkB")),
		fp("m3", nil, cset("chunkA")),
	}
	clusters := Run(Config{Diameter: 0}, ms)
	if clusterOf(t, clusters, "m1") == clusterOf(t, clusters, "m2") {
		t.Fatal("diameter 0 merged differing machines")
	}
	if clusterOf(t, clusters, "m1") != clusterOf(t, clusters, "m3") {
		t.Fatal("diameter 0 split identical machines")
	}
}

func TestPhase2OnlyWithinOriginalClusters(t *testing.T) {
	// Machines with different parsed diffs must not merge even with
	// identical content diffs.
	ms := []MachineFingerprint{
		fp("m1", pset("php.4"), cset("x")),
		fp("m2", pset("php.5"), cset("x")),
	}
	clusters := Run(Config{Diameter: 10}, ms)
	if len(clusters) != 2 {
		t.Fatalf("phase 2 crossed original-cluster boundary: %v", clusters)
	}
}

func TestAppSetSplit(t *testing.T) {
	a := fp("m1", nil, nil)
	b := fp("m2", nil, nil)
	b.AppSet = "app,php"
	clusters := Run(Config{Diameter: 3}, []MachineFingerprint{a, b})
	if len(clusters) != 2 {
		t.Fatalf("app-set split did not occur: %v", clusters)
	}
	clusters = Run(Config{Diameter: 3, DisableAppSetSplit: true}, []MachineFingerprint{a, b})
	if len(clusters) != 1 {
		t.Fatalf("app-set split not disableable: %v", clusters)
	}
}

func TestDiscardPrefixesMergeClusters(t *testing.T) {
	// The vendor decides my.cnf differences are irrelevant for this
	// upgrade: machines differing only under that prefix merge.
	ms := []MachineFingerprint{
		fp("m1", pset("my.cnf.mysqld.port"), nil),
		fp("m2", pset("my.cnf.client.socket"), nil),
		fp("m3", nil, nil),
		fp("m4", pset("libc.2.5"), nil),
	}
	clusters := Run(Config{Diameter: 3, DiscardPrefixes: []string{"my.cnf"}}, ms)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2: %v", len(clusters), clusters)
	}
	if clusterOf(t, clusters, "m1") != clusterOf(t, clusters, "m3") {
		t.Fatal("discarded prefix did not merge machines")
	}
	if clusterOf(t, clusters, "m4") == clusterOf(t, clusters, "m3") {
		t.Fatal("unrelated diff merged")
	}
}

func TestDeterminism(t *testing.T) {
	ms := []MachineFingerprint{
		fp("m3", nil, cset("a", "b")),
		fp("m1", nil, cset("a")),
		fp("m2", nil, cset("b")),
		fp("m4", pset("x"), cset("c")),
	}
	rev := []MachineFingerprint{ms[3], ms[2], ms[1], ms[0]}
	a := Run(Config{Diameter: 2}, ms)
	b := Run(Config{Diameter: 2}, rev)
	if len(a) != len(b) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if strings.Join(a[i].Machines, ",") != strings.Join(b[i].Machines, ",") {
			t.Fatalf("cluster %d differs: %v vs %v", i, a[i].Machines, b[i].Machines)
		}
	}
}

func TestClusterLabelUnionAndDistance(t *testing.T) {
	ms := []MachineFingerprint{
		fp("m1", pset("libc.2.5"), cset("x")),
		fp("m2", pset("libc.2.5"), cset("x")),
	}
	clusters := Run(Config{Diameter: 3}, ms)
	if len(clusters) != 1 {
		t.Fatalf("want 1 cluster, got %d", len(clusters))
	}
	c := clusters[0]
	if c.Label.Len() != 2 {
		t.Fatalf("label = %v", c.Label.Items())
	}
	if c.Distance != 2 {
		t.Fatalf("distance = %d, want 2", c.Distance)
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
	if !strings.Contains(c.String(), "m1") {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestEmptyInput(t *testing.T) {
	if got := Run(Config{Diameter: 3}, nil); len(got) != 0 {
		t.Fatalf("clusters from no machines: %v", got)
	}
}

func TestSingleMachine(t *testing.T) {
	clusters := Run(Config{Diameter: 3}, []MachineFingerprint{fp("solo", nil, nil)})
	if len(clusters) != 1 || clusters[0].Machines[0] != "solo" {
		t.Fatalf("clusters = %v", clusters)
	}
}

func TestQualityIdealSoundImperfect(t *testing.T) {
	behavior := Behavior{"good1": "", "good2": "ok", "bad1": "php-crash", "bad2": "php-crash"}

	ideal := []*Cluster{
		{Machines: []string{"good1", "good2"}},
		{Machines: []string{"bad1", "bad2"}},
	}
	q := Evaluate(ideal, behavior)
	if !q.Ideal() || !q.Sound() || q.C != 0 || q.W != 0 {
		t.Fatalf("ideal quality = %+v", q)
	}

	sound := []*Cluster{
		{Machines: []string{"good1"}},
		{Machines: []string{"good2"}},
		{Machines: []string{"bad1", "bad2"}},
	}
	q = Evaluate(sound, behavior)
	if q.Ideal() || !q.Sound() || q.C != 1 || q.W != 0 {
		t.Fatalf("sound quality = %+v", q)
	}

	imperfect := []*Cluster{
		{Machines: []string{"good1", "good2", "bad1"}},
		{Machines: []string{"bad2"}},
	}
	q = Evaluate(imperfect, behavior)
	if q.Sound() || q.W != 1 || q.Misplaced[0] != "bad1" {
		t.Fatalf("imperfect quality = %+v", q)
	}
}

func TestQualityTieBreaksTowardCorrect(t *testing.T) {
	behavior := Behavior{"g": "", "b": "prob"}
	q := Evaluate([]*Cluster{{Machines: []string{"g", "b"}}}, behavior)
	if q.W != 1 || q.Misplaced[0] != "b" {
		t.Fatalf("tie quality = %+v", q)
	}
}

func TestQualityProblemCount(t *testing.T) {
	behavior := Behavior{"a": "p1", "b": "p2", "c": "", "d": "p1"}
	q := Evaluate(nil, behavior)
	if q.Problems != 2 {
		t.Fatalf("problems = %d", q.Problems)
	}
}

// Property: every machine lands in exactly one cluster, and identical
// fingerprints always land together when the diameter permits.
func TestRunPartitionProperty(t *testing.T) {
	f := func(names []string) bool {
		seen := make(map[string]bool)
		var ms []MachineFingerprint
		for i, n := range names {
			if n == "" || seen[n] {
				continue
			}
			seen[n] = true
			// Derive a small deterministic fingerprint from the name.
			var parsed, content []string
			if len(n)%2 == 0 {
				parsed = append(parsed, "p."+string(n[0]))
			}
			if len(n)%3 == 0 {
				content = append(content, "c."+string(n[len(n)-1]))
			}
			_ = i
			ms = append(ms, fp(n, pset(parsed...), cset(content...)))
		}
		clusters := Run(Config{Diameter: 2}, ms)
		count := 0
		placed := make(map[string]bool)
		for _, c := range clusters {
			count += len(c.Machines)
			for _, m := range c.Machines {
				if placed[m] {
					return false
				}
				placed[m] = true
			}
		}
		return count == len(ms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
