package cluster

import (
	"sort"

	"repro/internal/resource"
)

// Incremental reclustering (the future work item of §3.2.3: "we plan to
// develop an efficient incremental reclustering approach, since a relevant
// change in a machine's environment can change that machine's cluster").
//
// A full Run over N machines costs O(N²) in the QT phase. When one
// machine's environment changes, Update re-places it: into an existing
// cluster when its parsed diff matches and the diameter bound still holds,
// or into a fresh singleton otherwise. Only the affected clusters are
// touched; the rest of the clustering — and therefore any deployment state
// keyed on it — is preserved.
//
// Update works on the same weighted structure the full run does: a
// signature-keyed index over clusters (phase1's exact parsed grouping) and,
// per cluster, the distinct weighted content profiles of its members
// (collapse's multiplicity folding). Placing a changed machine therefore
// costs O(candidate clusters × distinct profiles), not O(fleet), which is
// what makes live-fleet drift folding viable at 10k+ machines.
//
// The result is guaranteed to respect the same invariants as Run (parsed
// diffs identical within a cluster, content diameter bounded, app sets
// uniform), though it may be less aggressively merged than a fresh Run —
// the usual trade-off of incremental maintenance.

// Snapshot is a reclusterable clustering: the clusters plus the
// fingerprints that produced them. Mutate it only through Update and
// Remove; editing Clusters or Fingerprints directly desynchronizes the
// incremental index.
type Snapshot struct {
	Config       Config
	Fingerprints map[string]MachineFingerprint
	Clusters     []*Cluster

	// Incremental index, built lazily on first use and maintained in
	// place afterwards. bySig mirrors phase1's signature-keyed exact
	// grouping (collisions resolved by Equal, as there); meta carries
	// each cluster's exemplar parsed diff, app set, cached member total,
	// and collapse-style distinct weighted content profiles; memberOf
	// makes removal and lookup O(1).
	bySig    map[uint64][]*Cluster
	meta     map[*Cluster]*clusterMeta
	memberOf map[string]*Cluster
}

// clusterMeta is the weighted-QT view of one cluster: every member shares
// the exemplar parsed diff (and app set, unless splitting is disabled), and
// the members collapse into distinct content profiles with multiplicities.
type clusterMeta struct {
	parsed   *resource.Set
	appSet   string
	total    int // sum of ParsedDiff.Len()+ContentDiff.Len() over members
	profiles []*weightedProfile
}

// weightedProfile is one distinct content diff within a cluster and the
// number of members carrying it.
type weightedProfile struct {
	sig     uint64
	content *resource.Set
	weight  int
}

func sigOf(set *resource.Set) uint64 {
	if set == nil {
		return 0
	}
	return set.Signature()
}

func setsEqual(a, b *resource.Set) bool {
	if a == nil || b == nil {
		return a.Len() == b.Len()
	}
	return a.Equal(b)
}

// NewSnapshot captures the result of a Run for later incremental updates.
func NewSnapshot(cfg Config, machines []MachineFingerprint, clusters []*Cluster) *Snapshot {
	s := &Snapshot{Config: cfg, Fingerprints: make(map[string]MachineFingerprint, len(machines))}
	for _, m := range machines {
		s.Fingerprints[m.Name] = m
	}
	s.Clusters = clusters
	return s
}

// BuildSnapshot runs the full algorithm and captures the result.
func BuildSnapshot(cfg Config, machines []MachineFingerprint) *Snapshot {
	return NewSnapshot(cfg, machines, Run(cfg, machines))
}

// ensureIndex builds the incremental index from the public fields. It runs
// once per snapshot (including snapshots decoded from JSON or built by
// hand, whose index fields are nil) and is maintained in place afterwards.
func (s *Snapshot) ensureIndex() {
	if s.memberOf != nil {
		return
	}
	if s.Fingerprints == nil {
		s.Fingerprints = make(map[string]MachineFingerprint)
	}
	s.bySig = make(map[uint64][]*Cluster, len(s.Clusters))
	s.meta = make(map[*Cluster]*clusterMeta, len(s.Clusters))
	s.memberOf = make(map[string]*Cluster, len(s.Fingerprints))
	for _, c := range s.Clusters {
		cm := &clusterMeta{}
		for i, name := range c.Machines {
			mf := s.Fingerprints[name]
			if i == 0 {
				cm.parsed = mf.ParsedDiff
				cm.appSet = mf.AppSet
			}
			cm.add(mf)
			s.memberOf[name] = c
		}
		s.meta[c] = cm
		if len(c.Machines) > 0 {
			sig := sigOf(cm.parsed)
			s.bySig[sig] = append(s.bySig[sig], c)
		}
	}
}

// add folds one member into the meta's weighted profiles and cached total.
func (cm *clusterMeta) add(mf MachineFingerprint) {
	cm.total += mf.ParsedDiff.Len() + mf.ContentDiff.Len()
	sig := sigOf(mf.ContentDiff)
	for _, p := range cm.profiles {
		if p.sig == sig && setsEqual(p.content, mf.ContentDiff) {
			p.weight++
			return
		}
	}
	cm.profiles = append(cm.profiles, &weightedProfile{sig: sig, content: mf.ContentDiff, weight: 1})
}

// drop removes one member's contribution from the meta.
func (cm *clusterMeta) drop(mf MachineFingerprint) {
	cm.total -= mf.ParsedDiff.Len() + mf.ContentDiff.Len()
	sig := sigOf(mf.ContentDiff)
	for i, p := range cm.profiles {
		if p.sig == sig && setsEqual(p.content, mf.ContentDiff) {
			p.weight--
			if p.weight == 0 {
				cm.profiles = append(cm.profiles[:i], cm.profiles[i+1:]...)
			}
			return
		}
	}
}

// Update re-places a machine whose environment changed (or adds a new
// machine). It returns the cluster the machine now belongs to. The
// snapshot's cluster list is updated in place; emptied clusters are
// dropped and IDs reassigned to keep the deterministic order invariant.
func (s *Snapshot) Update(m MachineFingerprint) *Cluster {
	s.ensureIndex()
	if _, ok := s.Fingerprints[m.Name]; ok {
		s.remove(m.Name)
	}
	s.Fingerprints[m.Name] = m

	target := s.findHome(m)
	if target == nil {
		target = &Cluster{Label: resource.NewSet(0)}
		s.Clusters = append(s.Clusters, target)
		cm := &clusterMeta{parsed: m.ParsedDiff, appSet: m.AppSet}
		s.meta[target] = cm
		sig := sigOf(m.ParsedDiff)
		s.bySig[sig] = append(s.bySig[sig], target)
	}
	target.Machines = append(target.Machines, m.Name)
	sort.Strings(target.Machines)
	target.Label.AddAll(m.ParsedDiff)
	target.Label.AddAll(m.ContentDiff)
	s.meta[target].add(m)
	s.memberOf[m.Name] = target
	s.refresh()
	return target
}

// Remove drops a machine from the clustering entirely (decommissioned).
func (s *Snapshot) Remove(name string) {
	s.ensureIndex()
	s.remove(name)
	delete(s.Fingerprints, name)
	s.refresh()
}

func (s *Snapshot) remove(name string) {
	c := s.memberOf[name]
	if c == nil {
		return
	}
	delete(s.memberOf, name)
	for i, member := range c.Machines {
		if member == name {
			c.Machines = append(c.Machines[:i], c.Machines[i+1:]...)
			break
		}
	}
	s.meta[c].drop(s.Fingerprints[name])
}

// findHome returns an existing cluster the machine may join: identical
// parsed diff and app set on every member, and content distance within the
// diameter to every member. Candidates come from the parsed-signature
// index, and the diameter check runs against each candidate's distinct
// content profiles — equivalent to checking every member, since members
// with equal content diffs have equal distances.
func (s *Snapshot) findHome(m MachineFingerprint) *Cluster {
	sig := sigOf(m.ParsedDiff)
	for _, c := range s.bySig[sig] {
		if len(c.Machines) == 0 {
			continue
		}
		cm := s.meta[c]
		if !setsEqual(cm.parsed, m.ParsedDiff) {
			continue // signature collision
		}
		if !s.Config.DisableAppSetSplit && cm.appSet != m.AppSet {
			continue
		}
		fits := true
		for _, p := range cm.profiles {
			if resource.ManhattanDistance(p.content, m.ContentDiff) > s.Config.Diameter {
				fits = false
				break
			}
		}
		if fits {
			return c
		}
	}
	return nil
}

func contentDistance(a, b MachineFingerprint) int {
	return resource.ManhattanDistance(a.ContentDiff, b.ContentDiff)
}

// refresh drops empty clusters, recomputes distances from the cached
// per-cluster totals and reassigns IDs in the same deterministic order Run
// uses.
func (s *Snapshot) refresh() {
	kept := s.Clusters[:0]
	for _, c := range s.Clusters {
		if len(c.Machines) == 0 {
			s.dropCluster(c)
			continue
		}
		c.Distance = s.meta[c].total / len(c.Machines)
		kept = append(kept, c)
	}
	s.Clusters = kept
	sort.Slice(s.Clusters, func(i, j int) bool {
		if s.Clusters[i].Distance != s.Clusters[j].Distance {
			return s.Clusters[i].Distance < s.Clusters[j].Distance
		}
		return s.Clusters[i].Machines[0] < s.Clusters[j].Machines[0]
	})
	for i, c := range s.Clusters {
		c.ID = i
	}
}

// dropCluster removes an emptied cluster from the index.
func (s *Snapshot) dropCluster(c *Cluster) {
	cm := s.meta[c]
	delete(s.meta, c)
	if cm == nil {
		return
	}
	sig := sigOf(cm.parsed)
	list := s.bySig[sig]
	for i, cand := range list {
		if cand == c {
			s.bySig[sig] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(s.bySig[sig]) == 0 {
		delete(s.bySig, sig)
	}
}

// clusterOf returns the cluster containing name, or nil.
func (s *Snapshot) clusterOf(name string) *Cluster {
	s.ensureIndex()
	return s.memberOf[name]
}

// ClusterOf returns the cluster currently containing the named machine, or
// nil if the machine is not clustered. The returned pointer is stable
// across Update and Remove calls until the cluster empties, so callers can
// use pointer identity to detect a machine changing clusters.
func (s *Snapshot) ClusterOf(name string) *Cluster {
	return s.clusterOf(name)
}
