package cluster

import (
	"sort"

	"repro/internal/resource"
)

// Incremental reclustering (the future work item of §3.2.3: "we plan to
// develop an efficient incremental reclustering approach, since a relevant
// change in a machine's environment can change that machine's cluster").
//
// A full Run over N machines costs O(N²) in the QT phase. When one
// machine's environment changes, Incremental updates the clustering by
// removing the machine from its old cluster and re-placing it: into an
// existing cluster when its parsed diff matches and the diameter bound
// still holds against every member, or into a fresh singleton otherwise.
// Only the affected clusters are touched; the rest of the clustering — and
// therefore any deployment state keyed on it — is preserved.
//
// The result is guaranteed to respect the same invariants as Run (parsed
// diffs identical within a cluster, content diameter bounded, app sets
// uniform), though it may be less aggressively merged than a fresh Run —
// the usual trade-off of incremental maintenance.

// Snapshot is a reclusterable clustering: the clusters plus the
// fingerprints that produced them.
type Snapshot struct {
	Config       Config
	Fingerprints map[string]MachineFingerprint
	Clusters     []*Cluster
}

// NewSnapshot captures the result of a Run for later incremental updates.
func NewSnapshot(cfg Config, machines []MachineFingerprint, clusters []*Cluster) *Snapshot {
	s := &Snapshot{Config: cfg, Fingerprints: make(map[string]MachineFingerprint, len(machines))}
	for _, m := range machines {
		s.Fingerprints[m.Name] = m
	}
	s.Clusters = clusters
	return s
}

// BuildSnapshot runs the full algorithm and captures the result.
func BuildSnapshot(cfg Config, machines []MachineFingerprint) *Snapshot {
	return NewSnapshot(cfg, machines, Run(cfg, machines))
}

// Update re-places a machine whose environment changed (or adds a new
// machine). It returns the cluster the machine now belongs to. The
// snapshot's cluster list is updated in place; emptied clusters are
// dropped and IDs reassigned to keep the deterministic order invariant.
func (s *Snapshot) Update(m MachineFingerprint) *Cluster {
	if _, ok := s.Fingerprints[m.Name]; ok {
		s.remove(m.Name)
	}
	s.Fingerprints[m.Name] = m

	target := s.findHome(m)
	if target == nil {
		target = &Cluster{Label: resource.NewSet(0)}
		s.Clusters = append(s.Clusters, target)
	}
	target.Machines = append(target.Machines, m.Name)
	sort.Strings(target.Machines)
	target.Label.AddAll(m.ParsedDiff)
	target.Label.AddAll(m.ContentDiff)
	s.refresh()
	return s.clusterOf(m.Name)
}

// Remove drops a machine from the clustering entirely (decommissioned).
func (s *Snapshot) Remove(name string) {
	s.remove(name)
	delete(s.Fingerprints, name)
	s.refresh()
}

func (s *Snapshot) remove(name string) {
	for _, c := range s.Clusters {
		for i, member := range c.Machines {
			if member == name {
				c.Machines = append(c.Machines[:i], c.Machines[i+1:]...)
				return
			}
		}
	}
}

// findHome returns an existing cluster the machine may join: identical
// parsed diff and app set on every member, and content distance within the
// diameter to every member.
func (s *Snapshot) findHome(m MachineFingerprint) *Cluster {
	for _, c := range s.Clusters {
		if len(c.Machines) == 0 {
			continue
		}
		fits := true
		for _, member := range c.Machines {
			mf := s.Fingerprints[member]
			if !mf.ParsedDiff.Equal(m.ParsedDiff) ||
				(!s.Config.DisableAppSetSplit && mf.AppSet != m.AppSet) ||
				contentDistance(mf, m) > s.Config.Diameter {
				fits = false
				break
			}
		}
		if fits {
			return c
		}
	}
	return nil
}

func contentDistance(a, b MachineFingerprint) int {
	d := 0
	for _, it := range a.ContentDiff.Items() {
		if !b.ContentDiff.Contains(it) {
			d++
		}
	}
	for _, it := range b.ContentDiff.Items() {
		if !a.ContentDiff.Contains(it) {
			d++
		}
	}
	return d
}

// refresh drops empty clusters, recomputes distances and reassigns IDs in
// the same deterministic order Run uses.
func (s *Snapshot) refresh() {
	kept := s.Clusters[:0]
	for _, c := range s.Clusters {
		if len(c.Machines) == 0 {
			continue
		}
		total := 0
		for _, name := range c.Machines {
			mf := s.Fingerprints[name]
			total += mf.ParsedDiff.Len() + mf.ContentDiff.Len()
		}
		c.Distance = total / len(c.Machines)
		kept = append(kept, c)
	}
	s.Clusters = kept
	sort.Slice(s.Clusters, func(i, j int) bool {
		if s.Clusters[i].Distance != s.Clusters[j].Distance {
			return s.Clusters[i].Distance < s.Clusters[j].Distance
		}
		return s.Clusters[i].Machines[0] < s.Clusters[j].Machines[0]
	})
	for i, c := range s.Clusters {
		c.ID = i
	}
}

// clusterOf returns the cluster containing name, or nil.
func (s *Snapshot) clusterOf(name string) *Cluster {
	for _, c := range s.Clusters {
		for _, m := range c.Machines {
			if m == name {
				return c
			}
		}
	}
	return nil
}
