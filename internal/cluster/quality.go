package cluster

// Quality metrics for a clustering relative to a particular upgrade and a
// set of problems (paper §4.2): C counts unnecessarily created clusters and
// w counts wrongly-placed machines (machines that behave differently from
// the rest of their cluster).
//
// With p distinct problems, an ideal clustering has exactly p+1 clusters
// (one per problem plus one for all correct machines), C = 0 and w = 0. A
// sound clustering has C >= 0 and w = 0: multiple clusters may share a
// behaviour, but no cluster mixes behaviours. An imperfect clustering has
// w > 0.

// Behavior maps machine name to its behaviour under the upgrade: "" (or
// "ok") for correct behaviour, any other string naming the problem the
// machine exhibits.
type Behavior map[string]string

// Quality summarises a clustering against ground-truth behaviour.
type Quality struct {
	Clusters  int // total clusters produced
	Problems  int // distinct problems in the behaviour map
	C         int // unnecessary clusters: Clusters - (Problems + 1)
	W         int // wrongly-placed machines
	Misplaced []string
}

// Ideal reports whether the clustering is ideal (C = 0 and w = 0).
func (q Quality) Ideal() bool { return q.C == 0 && q.W == 0 }

// Sound reports whether the clustering is sound (w = 0).
func (q Quality) Sound() bool { return q.W == 0 }

func normBehavior(b string) string {
	if b == "ok" {
		return ""
	}
	return b
}

// Evaluate computes the quality of clusters against behaviour. A machine is
// wrongly placed if its behaviour differs from the dominant behaviour of
// its cluster; per cluster, the dominant behaviour is the most common one
// (ties broken toward correct behaviour, then lexicographically), so w
// counts the minority members.
func Evaluate(clusters []*Cluster, behavior Behavior) Quality {
	q := Quality{Clusters: len(clusters)}

	problems := make(map[string]bool)
	for _, b := range behavior {
		if nb := normBehavior(b); nb != "" {
			problems[nb] = true
		}
	}
	q.Problems = len(problems)
	q.C = q.Clusters - (q.Problems + 1)

	for _, c := range clusters {
		counts := make(map[string]int)
		for _, m := range c.Machines {
			counts[normBehavior(behavior[m])]++
		}
		dominant, best := "", -1
		for b, n := range counts {
			if n > best || (n == best && better(b, dominant)) {
				dominant, best = b, n
			}
		}
		for _, m := range c.Machines {
			if normBehavior(behavior[m]) != dominant {
				q.W++
				q.Misplaced = append(q.Misplaced, m)
			}
		}
	}
	return q
}

// better is the deterministic tie-break for dominant behaviour: correct
// behaviour beats problems; otherwise lexicographic order.
func better(a, b string) bool {
	if a == "" {
		return true
	}
	if b == "" {
		return false
	}
	return a < b
}
