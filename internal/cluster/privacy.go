package cluster

import (
	"sort"

	"repro/internal/resource"
)

// Privacy-preserving clustering (paper §3.5, "Deployment"): storing every
// machine's item list at the vendor would let an attacker locate targets
// of a known vulnerability. Instead, each machine can determine its
// cluster locally from the comparison with the vendor's reference
// fingerprint and communicate only a single cryptographic hash of its
// differing items. The vendor then works purely with anonymous signature
// counts: it publicly advertises the cluster (signature) currently being
// tested and uses per-cluster machine counts to decide when to advance.
//
// This mechanism covers the "original", parser-aided phase of the
// algorithm: machines with identical parsed diffs share a signature by
// construction. Content-fingerprinted resources need pairwise distances
// and therefore cannot be clustered blind; deployments wanting the privacy
// mode provide parsers for all resources (which §4.2 recommends anyway).

// LocalSignature is what a machine reveals to the vendor: one hash over
// its parsed item diff, plus its application-set key (needed for the final
// app-set split, and not sensitive: it is a deployment-granularity label).
type LocalSignature struct {
	Machine string
	Diff    uint64
	AppSet  string
}

// ComputeLocalSignature runs on the user machine: diff own items against
// the vendor's reference list and hash the result. No item ever leaves
// the machine.
func ComputeLocalSignature(machineName string, own, vendor *resource.Set, appSet string) LocalSignature {
	diff := own.Diff(vendor).OfKind(resource.Parsed)
	return LocalSignature{Machine: machineName, Diff: diff.Signature(), AppSet: appSet}
}

// AnonymousCluster is a cluster the vendor sees only as a signature pair
// and a member count (plus the member names it needs for notification —
// in a deployment with an anonymizing network even these would be absent,
// replaced by machines recognising their own advertised signature).
type AnonymousCluster struct {
	DiffSignature uint64
	AppSet        string
	Machines      []string
}

// Size returns the number of machines behind the signature.
func (c *AnonymousCluster) Size() int { return len(c.Machines) }

// GroupBySignature is the vendor-side half of the privacy protocol: group
// the received signatures. Machines sharing (diff hash, app set) form one
// cluster of deployment. Output is deterministic: clusters sorted by
// signature then app set, members sorted by name.
func GroupBySignature(sigs []LocalSignature) []*AnonymousCluster {
	type key struct {
		diff   uint64
		appSet string
	}
	groups := make(map[key]*AnonymousCluster)
	for _, s := range sigs {
		k := key{s.Diff, s.AppSet}
		g, ok := groups[k]
		if !ok {
			g = &AnonymousCluster{DiffSignature: s.Diff, AppSet: s.AppSet}
			groups[k] = g
		}
		g.Machines = append(g.Machines, s.Machine)
	}
	out := make([]*AnonymousCluster, 0, len(groups))
	for _, g := range groups {
		sort.Strings(g.Machines)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DiffSignature != out[j].DiffSignature {
			return out[i].DiffSignature < out[j].DiffSignature
		}
		return out[i].AppSet < out[j].AppSet
	})
	return out
}

// Advertisement is what the vendor publishes during staged deployment:
// the signature of the cluster currently being tested. A machine checks
// membership locally; nothing about other machines is revealed.
type Advertisement struct {
	UpgradeID     string
	DiffSignature uint64
	AppSet        string
}

// Matches lets a machine decide, locally, whether an advertisement
// addresses its cluster.
func (s LocalSignature) Matches(ad Advertisement) bool {
	return s.Diff == ad.DiffSignature && s.AppSet == ad.AppSet
}
