// Package cluster implements Mirage's machine clustering algorithm
// (paper §3.2.3, "Clustering algorithm").
//
// The algorithm runs in two phases. Phase 1 considers only resources with
// parsers: machines are assigned to the same "original cluster" if and only
// if their sets of parsed items that differ from the vendor are identical.
// Phase 2 subdivides each original cluster using the content-fingerprinted
// resources, with a deterministic diameter-bounded variation of the QT
// (Quality Threshold) clustering algorithm [Heyer et al. 1999] under the
// Manhattan distance (number of differing content items). Finally, clusters
// containing machines with different application sets are split.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/resource"
)

// MachineFingerprint is the clustering input for one machine: the diffs of
// its item sets against the vendor reference, split by kind, plus the
// machine's installed application set.
type MachineFingerprint struct {
	Name        string
	ParsedDiff  *resource.Set // parsed items differing from the vendor
	ContentDiff *resource.Set // content items differing from the vendor
	AppSet      string        // canonical installed-application key
}

// NewMachineFingerprint computes a MachineFingerprint from full item sets.
func NewMachineFingerprint(name string, own, vendor *resource.Set, appSet string) MachineFingerprint {
	diff := own.Diff(vendor)
	return MachineFingerprint{
		Name:        name,
		ParsedDiff:  diff.OfKind(resource.Parsed),
		ContentDiff: diff.OfKind(resource.Content),
		AppSet:      appSet,
	}
}

// Cluster is one cluster of deployment.
type Cluster struct {
	// ID is a stable identifier derived from position in the deterministic
	// output order.
	ID int
	// Machines are the member machine names, sorted.
	Machines []string
	// Label is the union of the members' differing items — the paper's
	// "final clusters are labeled with their set of differing items".
	Label *resource.Set
	// Distance is the distance between the vendor and the cluster: the
	// number of differing items, averaged over members and rounded down.
	// Intuitively, a more dissimilar machine is more likely to break.
	Distance int
}

func (c *Cluster) String() string {
	return fmt.Sprintf("cluster%d{%s}", c.ID, strings.Join(c.Machines, ","))
}

// Size returns the number of member machines.
func (c *Cluster) Size() int { return len(c.Machines) }

// Config controls the clustering run.
type Config struct {
	// Diameter is the QT diameter bound d for phase 2: the maximum
	// pairwise Manhattan distance allowed inside one cluster.
	Diameter int
	// DiscardPrefixes lists hierarchical item-key prefixes the vendor
	// deems irrelevant for this upgrade; matching parsed items are removed
	// from every machine's diff before phase 1, merging clusters that
	// differ only in those items (§3.2.3, "Discussion").
	DiscardPrefixes []string
	// SplitByAppSet enables the final split of clusters whose machines
	// have different application sets with overlapping resources. It
	// defaults to true in Run; set DisableAppSetSplit to turn it off.
	DisableAppSetSplit bool
	// NaiveQT disables the multiplicity-aware collapse of identical
	// machine profiles before phase 2, running the QT variation over raw
	// machines instead of weighted distinct profiles. The two paths
	// produce identical clusterings (the weighted path is an exact
	// optimization, asserted by the equivalence property test); the naive
	// path is kept as the reference implementation for cross-checking and
	// as the pre-refactor baseline in benchmarks.
	NaiveQT bool
}

// Run clusters the machines deterministically and returns clusters sorted
// by ascending distance to the vendor, then by first machine name.
func Run(cfg Config, machines []MachineFingerprint) []*Cluster {
	ms := append([]MachineFingerprint(nil), machines...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })

	// Vendor discard directives.
	if len(cfg.DiscardPrefixes) > 0 {
		for i := range ms {
			pd := ms[i].ParsedDiff
			for _, prefix := range cfg.DiscardPrefixes {
				pd = pd.WithoutPrefix(prefix)
			}
			ms[i].ParsedDiff = pd
		}
	}

	// Phase 1: original clusters = identical parsed diffs.
	originals := phase1(ms)

	// Phase 2: QT diameter clustering inside each original cluster. The
	// default path collapses machines with identical (content, app-set)
	// profiles — parsed diffs are already identical within an original
	// cluster — into one weighted candidate each, so the cubic QT phase
	// scales with distinct profiles rather than fleet size.
	qt := qtCluster
	if cfg.NaiveQT {
		qt = qtClusterNaive
	}
	var groups [][]MachineFingerprint
	for _, orig := range originals {
		groups = append(groups, qt(orig, cfg.Diameter)...)
	}

	// Final split by application set.
	if !cfg.DisableAppSetSplit {
		var split [][]MachineFingerprint
		for _, g := range groups {
			split = append(split, splitByAppSet(g)...)
		}
		groups = split
	}

	clusters := make([]*Cluster, 0, len(groups))
	for _, g := range groups {
		c := &Cluster{Label: resource.NewSet(0)}
		for _, m := range g {
			c.Machines = append(c.Machines, m.Name)
			c.Label.AddAll(m.ParsedDiff)
			c.Label.AddAll(m.ContentDiff)
			c.Distance += m.ParsedDiff.Len() + m.ContentDiff.Len()
		}
		sort.Strings(c.Machines)
		c.Distance /= len(g)
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].Distance != clusters[j].Distance {
			return clusters[i].Distance < clusters[j].Distance
		}
		return clusters[i].Machines[0] < clusters[j].Machines[0]
	})
	for i, c := range clusters {
		c.ID = i
	}
	return clusters
}

// phase1 groups machines by identical parsed diffs. Groups are emitted in
// order of their first member's name, members already name-sorted.
// Placement is one signature-keyed map lookup per machine; each signature
// keeps a collision bucket scanned with exact set equality, so a hash
// collision degrades performance, never correctness.
func phase1(ms []MachineFingerprint) [][]MachineFingerprint {
	type group struct {
		first *resource.Set
		mems  []MachineFingerprint
	}
	bySig := make(map[uint64][]*group, len(ms))
	var groups []*group
	for _, m := range ms {
		sig := m.ParsedDiff.Signature()
		var g *group
		for _, cand := range bySig[sig] {
			if cand.first.Equal(m.ParsedDiff) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{first: m.ParsedDiff}
			bySig[sig] = append(bySig[sig], g)
			groups = append(groups, g)
		}
		g.mems = append(g.mems, m)
	}
	out := make([][]MachineFingerprint, len(groups))
	for i, g := range groups {
		out[i] = g.mems
	}
	return out
}

// qtCandidate is one distinct content profile within an original cluster:
// every machine whose (content diff, app set) pair is identical, collapsed
// into a single weighted QT candidate. members keeps input (name) order.
type qtCandidate struct {
	content *resource.Set
	appSet  string
	weight  int
	members []MachineFingerprint
}

// collapse groups the machines of one original cluster by identical
// (content diff, app set) profile, emitting candidates in order of first
// appearance (= min member name, since ms is name-sorted). Like phase1 it
// is signature-keyed with an exact-equality collision bucket.
func collapse(ms []MachineFingerprint) []*qtCandidate {
	type candKey struct {
		sig    uint64
		appSet string
	}
	byKey := make(map[candKey][]*qtCandidate, len(ms))
	var cands []*qtCandidate
	for _, m := range ms {
		key := candKey{m.ContentDiff.Signature(), m.AppSet}
		var c *qtCandidate
		for _, b := range byKey[key] {
			if b.content.Equal(m.ContentDiff) {
				c = b
				break
			}
		}
		if c == nil {
			c = &qtCandidate{content: m.ContentDiff, appSet: m.AppSet}
			byKey[key] = append(byKey[key], c)
			cands = append(cands, c)
		}
		c.weight++
		c.members = append(c.members, m)
	}
	return cands
}

// qtCluster subdivides one original cluster with the multiplicity-aware
// diameter-bounded QT variation. Machines with identical profiles are
// collapsed into one weighted candidate first, so the cubic greedy search
// runs over distinct profiles only; candidate sizes, growth sums and
// average-distance tie-breaks are all weighted by multiplicity, which
// makes the result exactly the clustering qtClusterNaive computes over
// the raw machines (duplicates are at distance zero from their original,
// so naive greedy growth always absorbs a member's duplicates before any
// strictly more distant machine, and a duplicate of a member can never
// violate the diameter bound).
func qtCluster(ms []MachineFingerprint, diameter int) [][]MachineFingerprint {
	if len(ms) <= 1 {
		if len(ms) == 0 {
			return nil
		}
		return [][]MachineFingerprint{ms}
	}

	cands := collapse(ms)

	// Pairwise distances between distinct profiles.
	dist := make([][]int, len(cands))
	for i := range cands {
		dist[i] = make([]int, len(cands))
		for j := range cands {
			if j < i {
				dist[i][j] = dist[j][i]
			} else if j > i {
				dist[i][j] = resource.ManhattanDistance(cands[i].content, cands[j].content)
			}
		}
	}

	remaining := make([]int, len(cands))
	for i := range remaining {
		remaining[i] = i
	}

	var result [][]MachineFingerprint
	for len(remaining) > 0 {
		best := growFromWeighted(remaining[0], remaining, dist, cands, diameter)
		bestW, bestAvg := weightOf(best, cands), avgDistWeighted(best, dist, cands)
		for _, seed := range remaining[1:] {
			cand := growFromWeighted(seed, remaining, dist, cands, diameter)
			w, avg := weightOf(cand, cands), avgDistWeighted(cand, dist, cands)
			if w > bestW || (w == bestW && avg < bestAvg) {
				best, bestW, bestAvg = cand, w, avg
			}
		}
		members := make([]MachineFingerprint, 0, bestW)
		inBest := make(map[int]bool, len(best))
		for _, idx := range best {
			inBest[idx] = true
			members = append(members, cands[idx].members...)
		}
		sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
		result = append(result, members)

		var next []int
		for _, idx := range remaining {
			if !inBest[idx] {
				next = append(next, idx)
			}
		}
		remaining = next
	}
	return result
}

// growFromWeighted mirrors growFrom over distinct candidates: distance
// sums weight each member by its multiplicity, reproducing the sums naive
// greedy growth sees once a member's duplicates have all joined.
func growFromWeighted(seed int, remaining []int, dist [][]int, cands []*qtCandidate, diameter int) []int {
	cluster := []int{seed}
	in := map[int]bool{seed: true}
	for {
		bestIdx, bestSum := -1, 0
		for _, cand := range remaining {
			if in[cand] {
				continue
			}
			ok, sum := true, 0
			for _, member := range cluster {
				d := dist[cand][member]
				if d > diameter {
					ok = false
					break
				}
				sum += cands[member].weight * d
			}
			if !ok {
				continue
			}
			if bestIdx == -1 || sum < bestSum {
				bestIdx, bestSum = cand, sum
			}
		}
		if bestIdx == -1 {
			return cluster
		}
		cluster = append(cluster, bestIdx)
		in[bestIdx] = true
	}
}

// weightOf is the machine count of a candidate cluster.
func weightOf(cluster []int, cands []*qtCandidate) int {
	w := 0
	for _, idx := range cluster {
		w += cands[idx].weight
	}
	return w
}

// avgDistWeighted is the average pairwise machine distance of a candidate
// cluster: pairs inside one collapsed candidate are at distance zero but
// still count toward the pair total, so the value equals avgDist over the
// expanded machines exactly.
func avgDistWeighted(cluster []int, dist [][]int, cands []*qtCandidate) float64 {
	w := weightOf(cluster, cands)
	if w < 2 {
		return 0
	}
	sum := 0
	for i := 0; i < len(cluster); i++ {
		for j := i + 1; j < len(cluster); j++ {
			sum += cands[cluster[i]].weight * cands[cluster[j]].weight * dist[cluster[i]][cluster[j]]
		}
	}
	return float64(sum) / float64(w*(w-1)/2)
}

// qtClusterNaive subdivides one original cluster with the diameter-bounded
// QT variation over raw machines: repeatedly grow a candidate cluster
// around every remaining machine by greedily adding the machine that
// minimizes the average pairwise distance while keeping the diameter
// within d; keep the largest candidate; remove its members; repeat.
// Deterministic: candidates are seeded and grown in name order, ties
// broken by name. Reference implementation for qtCluster (Config.NaiveQT).
func qtClusterNaive(ms []MachineFingerprint, diameter int) [][]MachineFingerprint {
	if len(ms) <= 1 {
		if len(ms) == 0 {
			return nil
		}
		return [][]MachineFingerprint{ms}
	}

	// Precompute pairwise distances.
	dist := make([][]int, len(ms))
	for i := range ms {
		dist[i] = make([]int, len(ms))
		for j := range ms {
			if j < i {
				dist[i][j] = dist[j][i]
			} else if j > i {
				dist[i][j] = resource.ManhattanDistance(ms[i].ContentDiff, ms[j].ContentDiff)
			}
		}
	}

	remaining := make([]int, len(ms))
	for i := range remaining {
		remaining[i] = i
	}

	var result [][]MachineFingerprint
	for len(remaining) > 0 {
		best := growFrom(remaining[0], remaining, dist, diameter)
		for _, seed := range remaining[1:] {
			cand := growFrom(seed, remaining, dist, diameter)
			if len(cand) > len(best) ||
				(len(cand) == len(best) && avgDist(cand, dist) < avgDist(best, dist)) {
				best = cand
			}
		}
		members := make([]MachineFingerprint, 0, len(best))
		inBest := make(map[int]bool, len(best))
		for _, idx := range best {
			inBest[idx] = true
			members = append(members, ms[idx])
		}
		sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
		result = append(result, members)

		var next []int
		for _, idx := range remaining {
			if !inBest[idx] {
				next = append(next, idx)
			}
		}
		remaining = next
	}
	return result
}

// growFrom grows a candidate cluster from seed, greedily adding whichever
// remaining machine keeps the diameter within bound and minimizes the sum
// of distances to current members (ties broken by index order, which is
// name order).
func growFrom(seed int, remaining []int, dist [][]int, diameter int) []int {
	cluster := []int{seed}
	in := map[int]bool{seed: true}
	for {
		bestIdx, bestSum := -1, 0
		for _, cand := range remaining {
			if in[cand] {
				continue
			}
			ok, sum := true, 0
			for _, member := range cluster {
				d := dist[cand][member]
				if d > diameter {
					ok = false
					break
				}
				sum += d
			}
			if !ok {
				continue
			}
			if bestIdx == -1 || sum < bestSum {
				bestIdx, bestSum = cand, sum
			}
		}
		if bestIdx == -1 {
			return cluster
		}
		cluster = append(cluster, bestIdx)
		in[bestIdx] = true
	}
}

func avgDist(cluster []int, dist [][]int) float64 {
	if len(cluster) < 2 {
		return 0
	}
	sum, n := 0, 0
	for i := 0; i < len(cluster); i++ {
		for j := i + 1; j < len(cluster); j++ {
			sum += dist[cluster[i]][cluster[j]]
			n++
		}
	}
	return float64(sum) / float64(n)
}

// splitByAppSet partitions a group by application-set key, preserving name
// order, emitting partitions in order of first appearance.
func splitByAppSet(g []MachineFingerprint) [][]MachineFingerprint {
	index := make(map[string]int)
	var out [][]MachineFingerprint
	for _, m := range g {
		i, ok := index[m.AppSet]
		if !ok {
			i = len(out)
			index[m.AppSet] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], m)
	}
	return out
}
