// Package envid implements Mirage's identification of environmental
// resources (paper §3.2.3): the four-part heuristic that separates an
// application's environment (libraries, executables, configuration files,
// environment variables) from its data files, combined with the regular
// expression-based vendor rule API that corrects the heuristic's
// misclassifications.
//
// The four heuristic parts:
//
//  1. every file accessed in the longest common prefix of the access
//     sequences of all traces (the single-threaded initialization phase);
//  2. every file opened read-only in all execution traces, provided it is
//     opened in every execution;
//  3. every file of certain vendor-specified types (such as libraries)
//     accessed in any single trace;
//  4. every file named in the package of the application to be upgraded.
//
// Environment variables observed via getenv() are always environmental.
// By default files under /tmp and /var are excluded; vendor rules can
// override any classification in either direction.
package envid

import (
	"regexp"
	"sort"

	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/trace"
)

// Action says whether a rule includes or excludes matched files.
type Action int

const (
	Include Action = iota
	Exclude
)

func (a Action) String() string {
	if a == Include {
		return "include"
	}
	return "exclude"
}

// Rule is one vendor-provided classification directive. A rule matches a
// file if its path matches Pattern (when non-nil) or its type is listed in
// Types. Rules are applied in order after the heuristic and the default
// excludes, so later rules win.
type Rule struct {
	Action  Action
	Pattern *regexp.Regexp
	Types   []machine.FileType
}

// IncludePattern builds an include rule from a path regexp. It panics on an
// invalid expression; rules are vendor-authored constants.
func IncludePattern(expr string) Rule {
	return Rule{Action: Include, Pattern: regexp.MustCompile(expr)}
}

// ExcludePattern builds an exclude rule from a path regexp.
func ExcludePattern(expr string) Rule {
	return Rule{Action: Exclude, Pattern: regexp.MustCompile(expr)}
}

// IncludeTypes builds an include rule matching file types, the form the
// Firefox evaluation needed for extension, theme and font files loaded
// after initialization.
func IncludeTypes(types ...machine.FileType) Rule {
	return Rule{Action: Include, Types: types}
}

func (r Rule) matches(f *machine.File) bool {
	if r.Pattern != nil && r.Pattern.MatchString(f.Path) {
		return true
	}
	for _, t := range r.Types {
		if f.Type == t {
			return true
		}
	}
	return false
}

// DefaultExcludes are the system-wide directories excluded before vendor
// rules run, as in the paper ("By default, we exclude some system-wide
// directories, such as /tmp and /var").
var DefaultExcludes = []*regexp.Regexp{
	regexp.MustCompile(`^/tmp(/|$)`),
	regexp.MustCompile(`^/var(/|$)`),
}

// HeuristicTypes are the file types part (3) of the heuristic treats as
// environmental whenever accessed, even once: libraries are the canonical
// example in the paper.
var HeuristicTypes = []machine.FileType{machine.TypeSharedLib}

// Identifier runs the heuristic plus a vendor rule list.
type Identifier struct {
	// Rules are the vendor directives, applied in order.
	Rules []Rule
	// Types overrides HeuristicTypes when non-nil.
	Types []machine.FileType
}

// Result reports the classification of every file the application touched.
type Result struct {
	// Resources are the identified environmental resource references:
	// sorted file paths followed by env:NAME references.
	Resources []string
	// FilesSeen is every distinct file accessed in the traces, sorted.
	FilesSeen []string
	// byPart records which heuristic part(s) first claimed each path,
	// for diagnostics.
	byPart map[string]string
}

// Why reports which mechanism classified path as environmental
// ("init-prefix", "read-only", "type", "package", "rule"), or "" if it was
// not classified.
func (r *Result) Why(path string) string { return r.byPart[path] }

// Identify classifies the environmental resources of the application
// pkgName on machine m, given one or more execution traces.
func (id *Identifier) Identify(m *machine.Machine, traces []*trace.Trace, pkgName string) *Result {
	res := &Result{byPart: make(map[string]string)}
	if len(traces) == 0 {
		return res
	}

	claim := func(path, why string) {
		if _, ok := res.byPart[path]; !ok {
			res.byPart[path] = why
		}
	}
	env := make(map[string]bool)

	// Part 1: initialization phase = longest common prefix of access
	// sequences across all traces.
	for _, p := range trace.CommonPrefix(traces) {
		env[p] = true
		claim(p, "init-prefix")
	}

	// Part 2: files opened read-only in all traces, and opened in every
	// execution.
	roInAll := traces[0].ReadOnlyPaths()
	openedInAll := traces[0].AccessedPaths()
	for _, t := range traces[1:] {
		ro := t.ReadOnlyPaths()
		opened := t.AccessedPaths()
		for p := range roInAll {
			if !ro[p] {
				delete(roInAll, p)
			}
		}
		for p := range openedInAll {
			if !opened[p] {
				delete(openedInAll, p)
			}
		}
	}
	for p := range roInAll {
		if openedInAll[p] {
			env[p] = true
			claim(p, "read-only")
		}
	}

	// Part 3: files of designated types accessed in any single trace;
	// these also rescue read-only files not opened in every execution.
	types := id.Types
	if types == nil {
		types = HeuristicTypes
	}
	isEnvType := func(p string) bool {
		f := m.ReadFile(p)
		if f == nil {
			return false
		}
		for _, t := range types {
			if f.Type == t {
				return true
			}
		}
		return false
	}
	seen := make(map[string]bool)
	for _, t := range traces {
		for p := range t.AccessedPaths() {
			seen[p] = true
			if isEnvType(p) {
				env[p] = true
				claim(p, "type")
			}
		}
	}

	// Part 4: files named in the application's package.
	for _, p := range m.PackageFiles(pkgName) {
		env[p] = true
		claim(p, "package")
	}

	// Default excludes.
	for p := range env {
		for _, re := range DefaultExcludes {
			if re.MatchString(p) {
				delete(env, p)
				delete(res.byPart, p)
				break
			}
		}
	}

	// Vendor rules, in order. Includes draw candidates from the files seen
	// in traces plus the package file list; excludes remove.
	candidates := make(map[string]bool, len(seen))
	for p := range seen {
		candidates[p] = true
	}
	for _, p := range m.PackageFiles(pkgName) {
		candidates[p] = true
	}
	for _, rule := range id.Rules {
		for p := range candidates {
			f := m.ReadFile(p)
			if f == nil {
				f = &machine.File{Path: p}
			}
			if !rule.matches(f) {
				continue
			}
			if rule.Action == Include {
				env[p] = true
				res.byPart[p] = "rule"
			} else {
				delete(env, p)
				delete(res.byPart, p)
			}
		}
	}

	// Collect results: files sorted, then env vars sorted.
	for p := range env {
		res.Resources = append(res.Resources, p)
	}
	sort.Strings(res.Resources)
	envVars := make(map[string]bool)
	for _, t := range traces {
		for _, name := range t.EnvVars() {
			envVars[name] = true
		}
	}
	var names []string
	for n := range envVars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		res.Resources = append(res.Resources, parser.EnvPrefix+n)
	}

	for p := range seen {
		res.FilesSeen = append(res.FilesSeen, p)
	}
	sort.Strings(res.FilesSeen)
	return res
}

// Evaluation compares a heuristic run against ground truth, producing the
// quantities of Table 1.
type Evaluation struct {
	FilesTotal     int      // files accessed in the traces
	EnvResources   int      // ground-truth environmental resources
	FalsePositives int      // files flagged that are not environmental
	FalseNegatives int      // environmental resources the heuristic missed
	FalsePositive  []string // the misclassified paths, sorted
	FalseNegative  []string
}

// Evaluate compares result (restricted to file resources) against the
// ground-truth set of environmental file paths.
func Evaluate(result *Result, truth map[string]bool) Evaluation {
	ev := Evaluation{FilesTotal: len(result.FilesSeen), EnvResources: len(truth)}
	flagged := make(map[string]bool)
	for _, r := range result.Resources {
		if len(r) >= len(parser.EnvPrefix) && r[:len(parser.EnvPrefix)] == parser.EnvPrefix {
			continue
		}
		flagged[r] = true
		if !truth[r] {
			ev.FalsePositives++
			ev.FalsePositive = append(ev.FalsePositive, r)
		}
	}
	for p := range truth {
		if !flagged[p] {
			ev.FalseNegatives++
			ev.FalseNegative = append(ev.FalseNegative, p)
		}
	}
	sort.Strings(ev.FalsePositive)
	sort.Strings(ev.FalseNegative)
	return ev
}
