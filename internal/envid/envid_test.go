package envid

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// buildMachine creates a machine resembling a small server install.
func buildMachine() *machine.Machine {
	m := machine.New("m")
	files := []struct {
		path string
		typ  machine.FileType
	}{
		{"/lib/libc.so", machine.TypeSharedLib},
		{"/lib/libssl.so", machine.TypeSharedLib},
		{"/usr/bin/appd", machine.TypeExecutable},
		{"/etc/app/app.conf", machine.TypeConfig},
		{"/var/lib/app/db.frm", machine.TypeBinary},
		{"/var/log/app.log", machine.TypeLog},
		{"/srv/data/records.csv", machine.TypeData},
		{"/srv/data/other.csv", machine.TypeData},
		{"/usr/share/app/plugin.so", machine.TypeSharedLib},
	}
	for _, f := range files {
		m.WriteFile(&machine.File{Path: f.path, Type: f.typ, Data: []byte(f.path)})
	}
	m.InstallPackage(machine.PackageRef{Name: "app", Version: "1.0"},
		[]string{"/usr/bin/appd", "/etc/app/app.conf"})
	return m
}

// runTrace simulates one execution: init phase (libc, binary, conf), then a
// data file that differs per run, the log (written), and sometimes a
// late-loaded plugin.
func runTrace(datafile string, loadPlugin bool) *trace.Trace {
	tr := trace.New("appd")
	tr.Open("/lib/libc.so", trace.ModeRead)
	tr.Open("/usr/bin/appd", trace.ModeRead)
	tr.Open("/etc/app/app.conf", trace.ModeRead)
	tr.Getenv("APP_HOME", "/usr/share/app")
	tr.Open(datafile, trace.ModeRead)
	tr.Open("/var/log/app.log", trace.ModeWrite)
	if loadPlugin {
		tr.Open("/usr/share/app/plugin.so", trace.ModeRead)
	}
	tr.Exit("ok")
	return tr
}

func TestHeuristicParts(t *testing.T) {
	m := buildMachine()
	traces := []*trace.Trace{
		runTrace("/srv/data/records.csv", false),
		runTrace("/srv/data/other.csv", true),
	}
	res := (&Identifier{}).Identify(m, traces, "app")

	wantEnv := []string{
		"/etc/app/app.conf",        // init prefix + package
		"/lib/libc.so",             // init prefix + type
		"/usr/bin/appd",            // init prefix + package
		"/usr/share/app/plugin.so", // type (shared lib), accessed once
		"env:APP_HOME",
	}
	if !reflect.DeepEqual(res.Resources, wantEnv) {
		t.Fatalf("Resources = %v, want %v", res.Resources, wantEnv)
	}

	// The data files must NOT be environmental: each is read-only but not
	// opened in every execution.
	for _, r := range res.Resources {
		if r == "/srv/data/records.csv" || r == "/srv/data/other.csv" {
			t.Fatalf("data file classified as environmental: %s", r)
		}
	}
	// The log is written and under /var: excluded twice over.
	if res.Why("/var/log/app.log") != "" {
		t.Fatal("log classified as environmental")
	}
}

func TestWhyAttribution(t *testing.T) {
	m := buildMachine()
	traces := []*trace.Trace{runTrace("/srv/data/records.csv", true)}
	res := (&Identifier{}).Identify(m, traces, "app")
	if res.Why("/lib/libc.so") != "init-prefix" {
		t.Fatalf("Why(libc) = %q", res.Why("/lib/libc.so"))
	}
	if res.Why("/nonexistent") != "" {
		t.Fatal("Why invents classifications")
	}
}

func TestReadOnlyInEveryExecution(t *testing.T) {
	// A file read-only in every trace IS environmental even outside the
	// init prefix (late binding) — heuristic part 2.
	m := buildMachine()
	tr1 := runTrace("/srv/data/records.csv", false)
	tr1.Open("/etc/app/extra.keys", trace.ModeRead)
	tr2 := runTrace("/srv/data/other.csv", false)
	tr2.Open("/etc/app/extra.keys", trace.ModeRead)
	m.WriteFile(&machine.File{Path: "/etc/app/extra.keys", Type: machine.TypeData})

	res := (&Identifier{}).Identify(m, []*trace.Trace{tr1, tr2}, "app")
	if res.Why("/etc/app/extra.keys") != "read-only" {
		t.Fatalf("late-bound read-only file not classified: %q", res.Why("/etc/app/extra.keys"))
	}
}

func TestDefaultExcludesVar(t *testing.T) {
	// The mysql database directory problem from Table 1: files under /var
	// holding configuration are wrongly excluded by default...
	m := buildMachine()
	tr := runTrace("/srv/data/records.csv", false)
	tr.Open("/var/lib/app/db.frm", trace.ModeRead)
	tr2 := runTrace("/srv/data/other.csv", false)
	tr2.Open("/var/lib/app/db.frm", trace.ModeRead)

	id := &Identifier{}
	res := id.Identify(m, []*trace.Trace{tr, tr2}, "app")
	if res.Why("/var/lib/app/db.frm") != "" {
		t.Fatal("/var file not excluded by default")
	}

	// ...and one vendor include rule fixes it.
	id.Rules = []Rule{IncludePattern(`^/var/lib/app/`)}
	res = id.Identify(m, []*trace.Trace{tr, tr2}, "app")
	if res.Why("/var/lib/app/db.frm") != "rule" {
		t.Fatal("include rule did not rescue /var file")
	}
}

func TestExcludeRule(t *testing.T) {
	// The Apache problem from Table 1: HTML files read in every run are
	// flagged; an exclude rule fixes the misclassification.
	m := buildMachine()
	m.WriteFile(&machine.File{Path: "/srv/www/index.html", Type: machine.TypeData})
	tr1 := runTrace("/srv/data/records.csv", false)
	tr1.Open("/srv/www/index.html", trace.ModeRead)
	tr2 := runTrace("/srv/data/other.csv", false)
	tr2.Open("/srv/www/index.html", trace.ModeRead)

	id := &Identifier{}
	res := id.Identify(m, []*trace.Trace{tr1, tr2}, "app")
	if res.Why("/srv/www/index.html") == "" {
		t.Fatal("expected false positive on HTML file")
	}
	id.Rules = []Rule{ExcludePattern(`^/srv/www/`)}
	res = id.Identify(m, []*trace.Trace{tr1, tr2}, "app")
	if res.Why("/srv/www/index.html") != "" {
		t.Fatal("exclude rule ineffective")
	}
}

func TestIncludeTypesRule(t *testing.T) {
	// The Firefox problem: font/theme files loaded late, not read in every
	// run. An IncludeTypes rule classifies them.
	m := buildMachine()
	m.WriteFile(&machine.File{Path: "/usr/share/fonts/a.ttf", Type: machine.TypeBinary})
	tr1 := runTrace("/srv/data/records.csv", false)
	tr1.Open("/usr/share/fonts/a.ttf", trace.ModeRead)
	tr2 := runTrace("/srv/data/other.csv", false)

	id := &Identifier{Rules: []Rule{IncludeTypes(machine.TypeBinary)}}
	res := id.Identify(m, []*trace.Trace{tr1, tr2}, "app")
	if res.Why("/usr/share/fonts/a.ttf") != "rule" {
		t.Fatal("type include rule did not classify font")
	}
}

func TestRuleOrderLaterWins(t *testing.T) {
	m := buildMachine()
	tr := runTrace("/srv/data/records.csv", false)
	id := &Identifier{Rules: []Rule{
		ExcludePattern(`^/etc/app/`),
		IncludePattern(`^/etc/app/app\.conf$`),
	}}
	res := id.Identify(m, []*trace.Trace{tr}, "app")
	if res.Why("/etc/app/app.conf") != "rule" {
		t.Fatal("later include did not override earlier exclude")
	}
}

func TestEmptyTraces(t *testing.T) {
	res := (&Identifier{}).Identify(buildMachine(), nil, "app")
	if len(res.Resources) != 0 {
		t.Fatalf("resources from no traces: %v", res.Resources)
	}
}

func TestEvaluate(t *testing.T) {
	m := buildMachine()
	traces := []*trace.Trace{
		runTrace("/srv/data/records.csv", false),
		runTrace("/srv/data/other.csv", true),
	}
	res := (&Identifier{}).Identify(m, traces, "app")
	truth := map[string]bool{
		"/etc/app/app.conf":        true,
		"/lib/libc.so":             true,
		"/usr/bin/appd":            true,
		"/usr/share/app/plugin.so": true,
		"/var/lib/app/db.frm":      true, // missed: default /var exclusion
	}
	ev := Evaluate(res, truth)
	if ev.FalsePositives != 0 {
		t.Fatalf("FP = %d (%v)", ev.FalsePositives, ev.FalsePositive)
	}
	if ev.FalseNegatives != 1 || ev.FalseNegative[0] != "/var/lib/app/db.frm" {
		t.Fatalf("FN = %d (%v)", ev.FalseNegatives, ev.FalseNegative)
	}
	if ev.EnvResources != 5 {
		t.Fatalf("EnvResources = %d", ev.EnvResources)
	}
	if ev.FilesTotal == 0 {
		t.Fatal("FilesTotal not counted")
	}
}

func TestActionString(t *testing.T) {
	if Include.String() != "include" || Exclude.String() != "exclude" {
		t.Fatal("Action strings wrong")
	}
}
