// Package logx standardises structured logging across the mirage
// binaries. Every cmd/ main registers the shared -log-level and
// -log-format flags and installs the slog default they describe; the
// flags default from MIRAGE_LOG_LEVEL / MIRAGE_LOG_FORMAT (the usual
// service idiom: environment sets the fleet-wide default, a flag
// overrides it per process). Installing the default also reroutes the
// stdlib log package through the same handler, so third-party code
// still writing log.Printf lands in the structured stream.
package logx

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
)

// Options holds the values of the shared logging flags.
type Options struct {
	// Level is the minimum level emitted: debug, info, warn or error.
	Level string
	// Format is the handler encoding: text or json.
	Format string
}

// envOr reads an environment default for a flag.
func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// Flags registers -log-level and -log-format on fs (flag.CommandLine in
// every mirage binary) and returns the options they fill.
func Flags(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.StringVar(&o.Level, "log-level", envOr("MIRAGE_LOG_LEVEL", "info"),
		"minimum log level: debug, info, warn or error (default from MIRAGE_LOG_LEVEL)")
	fs.StringVar(&o.Format, "log-format", envOr("MIRAGE_LOG_FORMAT", "text"),
		"log encoding: text or json (default from MIRAGE_LOG_FORMAT)")
	return o
}

// parseLevel maps a level name to its slog level, defaulting unknown
// names to info with an error so main can decide to reject them.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("logx: unknown log level %q (want debug, info, warn or error)", s)
}

// Setup builds the logger the options describe, installs it as the
// process-wide slog default (which also captures the stdlib log
// package), and returns it. Unknown level or format names are an error;
// callers treat that as a usage mistake.
func (o *Options) Setup() (*slog.Logger, error) {
	lvl, err := parseLevel(o.Level)
	if err != nil {
		return nil, err
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(o.Format) {
	case "", "text":
		h = slog.NewTextHandler(os.Stderr, hopts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, hopts)
	default:
		return nil, fmt.Errorf("logx: unknown log format %q (want text or json)", o.Format)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}
