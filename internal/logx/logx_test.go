package logx

import (
	"flag"
	"log/slog"
	"testing"
)

func TestFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := Flags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.Level != "info" || o.Format != "text" {
		t.Fatalf("defaults = %q/%q, want info/text", o.Level, o.Format)
	}
}

func TestFlagsEnvDefault(t *testing.T) {
	t.Setenv("MIRAGE_LOG_LEVEL", "debug")
	t.Setenv("MIRAGE_LOG_FORMAT", "json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := Flags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.Level != "debug" || o.Format != "json" {
		t.Fatalf("env defaults = %q/%q, want debug/json", o.Level, o.Format)
	}
	// A flag still overrides the environment.
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	o2 := Flags(fs2)
	if err := fs2.Parse([]string{"-log-level=warn"}); err != nil {
		t.Fatal(err)
	}
	if o2.Level != "warn" {
		t.Fatalf("flag override = %q, want warn", o2.Level)
	}
}

func TestParseLevel(t *testing.T) {
	for name, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := parseLevel(name)
		if err != nil || got != want {
			t.Errorf("parseLevel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parseLevel("verbose"); err == nil {
		t.Fatal("parseLevel accepted an unknown level")
	}
}

func TestSetupRejectsUnknownFormat(t *testing.T) {
	o := &Options{Level: "info", Format: "xml"}
	if _, err := o.Setup(); err == nil {
		t.Fatal("Setup accepted an unknown format")
	}
}
