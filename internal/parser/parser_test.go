package parser

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/resource"
)

func mkfile(p string, t machine.FileType, data string) *machine.File {
	return &machine.File{Path: p, Type: t, Data: []byte(data)}
}

func TestExecutableParserSingleItem(t *testing.T) {
	f := mkfile("/usr/bin/mysqld", machine.TypeExecutable, "ELF binary payload")
	items := ExecutableParser{}.Parse(f)
	if len(items) != 1 {
		t.Fatalf("got %d items, want 1", len(items))
	}
	if items[0].Key != "/usr/bin/mysqld" || items[0].Kind != resource.Parsed {
		t.Fatalf("item = %+v", items[0])
	}
	f2 := mkfile("/usr/bin/mysqld", machine.TypeExecutable, "different payload")
	if (ExecutableParser{}).Parse(f2)[0].Hash == items[0].Hash {
		t.Fatal("different content, same hash")
	}
}

func TestSharedLibParserEmbedsVersion(t *testing.T) {
	f := mkfile("/lib/libc.so", machine.TypeSharedLib, "libc code")
	f.Version = "2.4"
	items := SharedLibParser{}.Parse(f)
	if len(items) != 1 || items[0].Key != "/lib/libc.so.2.4" {
		t.Fatalf("items = %+v", items)
	}
	// The vendor can discard the hash suffix but keep the version by
	// matching the key prefix — verify the key structure supports that.
	if !items[0].Prefix("/lib/libc.so.2.4") {
		t.Fatal("version prefix not matchable")
	}
	f.Version = ""
	if got := (SharedLibParser{}).Parse(f)[0].Key; got != "/lib/libc.so.unversioned" {
		t.Fatalf("unversioned key = %q", got)
	}
}

func TestTextParserPerLine(t *testing.T) {
	f := mkfile("/srv/www/index.php", machine.TypeText, "<?php\necho 'hi';\n\n?>")
	items := TextParser{}.Parse(f)
	if len(items) != 3 { // empty line skipped
		t.Fatalf("got %d items, want 3", len(items))
	}
	if items[0].Key != "/srv/www/index.php.line1" {
		t.Fatalf("key = %q", items[0].Key)
	}
	// A one-line edit changes exactly one item.
	f2 := mkfile("/srv/www/index.php", machine.TypeText, "<?php\necho 'bye';\n\n?>")
	items2 := TextParser{}.Parse(f2)
	diff := 0
	for i := range items {
		if items[i] != items2[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("one-line edit changed %d items, want 1", diff)
	}
}

const sampleCnf = `# MySQL configuration
[mysqld]
port = 3306
datadir = /var/lib/mysql
; another comment style
[client]
socket = /tmp/mysql.sock
`

func TestConfigParserSectionsAndKeys(t *testing.T) {
	f := mkfile("/etc/mysql/my.cnf", machine.TypeConfig, sampleCnf)
	items := ConfigParser{}.Parse(f)
	keys := make(map[string]bool)
	for _, it := range items {
		keys[it.Key] = true
	}
	for _, want := range []string{
		"/etc/mysql/my.cnf.mysqld.port",
		"/etc/mysql/my.cnf.mysqld.datadir",
		"/etc/mysql/my.cnf.client.socket",
	} {
		if !keys[want] {
			t.Errorf("missing item key %q (have %v)", want, keys)
		}
	}
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
}

func TestConfigParserIgnoresComments(t *testing.T) {
	// Machines that differ only in comments must produce identical items —
	// this is what makes parser-aided clustering sound for the
	// comment-added/comment-deleted machines of Table 2.
	withComments := mkfile("/etc/my.cnf", machine.TypeConfig, sampleCnf)
	stripped := mkfile("/etc/my.cnf", machine.TypeConfig,
		"[mysqld]\nport = 3306\ndatadir = /var/lib/mysql\n[client]\nsocket = /tmp/mysql.sock\n")
	a := ConfigParser{}.Parse(withComments)
	b := ConfigParser{}.Parse(stripped)
	as, bs := resource.NewSet(0), resource.NewSet(0)
	for _, it := range a {
		as.Add(it)
	}
	for _, it := range b {
		bs.Add(it)
	}
	if !as.Equal(bs) {
		t.Fatal("comment-only difference produced differing item sets")
	}
}

func TestConfigParserValueChangeChangesItem(t *testing.T) {
	a := ConfigParser{}.Parse(mkfile("/etc/my.cnf", machine.TypeConfig, "[mysqld]\nport = 3306\n"))
	b := ConfigParser{}.Parse(mkfile("/etc/my.cnf", machine.TypeConfig, "[mysqld]\nport = 3307\n"))
	if a[0].Key != b[0].Key {
		t.Fatal("same key expected")
	}
	if a[0].Hash == b[0].Hash {
		t.Fatal("value change did not change hash")
	}
}

func TestConfigParserIgnoreKeys(t *testing.T) {
	p := ConfigParser{IgnoreKeys: []string{"last_window_x", "Timestamp"}}
	f := mkfile("/prefs.js", machine.TypeConfig,
		"last_window_x = 1024\ntimestamp = 99\njavascript.enabled = true\n")
	items := p.Parse(f)
	if len(items) != 1 || !strings.Contains(items[0].Key, "javascript.enabled") {
		t.Fatalf("items = %+v", items)
	}
}

func TestConfigParserColonSeparator(t *testing.T) {
	items := ConfigParser{}.Parse(mkfile("/etc/app.conf", machine.TypeConfig, "key: value\n"))
	if len(items) != 1 || items[0].Key != "/etc/app.conf.global.key" {
		t.Fatalf("items = %+v", items)
	}
}

func TestBinaryParserParsedChunks(t *testing.T) {
	data := strings.Repeat("font glyph data ", 1000)
	items := NewBinaryParser().Parse(mkfile("/fonts/a.ttf", machine.TypeBinary, data))
	if len(items) == 0 {
		t.Fatal("no items")
	}
	for _, it := range items {
		if it.Kind != resource.Parsed {
			t.Fatalf("binary parser produced %v item", it.Kind)
		}
	}
}

func TestContentFingerprintKind(t *testing.T) {
	fp := NewFingerprinter(NewRegistry())
	data := strings.Repeat("opaque ", 2000)
	items := ContentFingerprint(fp.chunker, mkfile("/blob", machine.TypeData, data))
	if len(items) == 0 {
		t.Fatal("no items")
	}
	for _, it := range items {
		if it.Kind != resource.Content {
			t.Fatalf("content fingerprint produced %v item", it.Kind)
		}
		if it.Key != "/blob" {
			t.Fatalf("content key = %q", it.Key)
		}
	}
}

func TestRegistryPrecedence(t *testing.T) {
	r := NewRegistry()
	r.RegisterType(machine.TypeConfig, TextParser{})
	r.RegisterGlob("/etc/mysql/*", ConfigParser{})
	r.RegisterPath("/etc/mysql/my.cnf", ExecutableParser{})

	f := mkfile("/etc/mysql/my.cnf", machine.TypeConfig, "x")
	if got := r.Lookup(f).Name(); got != "executable" {
		t.Fatalf("exact path lookup = %q, want executable", got)
	}
	f2 := mkfile("/etc/mysql/other.cnf", machine.TypeConfig, "x")
	if got := r.Lookup(f2).Name(); got != "config" {
		t.Fatalf("glob lookup = %q, want config", got)
	}
	f3 := mkfile("/home/u/.conf", machine.TypeConfig, "x")
	if got := r.Lookup(f3).Name(); got != "text" {
		t.Fatalf("type lookup = %q, want text", got)
	}
	f4 := mkfile("/blob", machine.TypeData, "x")
	if r.Lookup(f4) != nil {
		t.Fatal("unmatched file got a parser")
	}
}

func TestRegistryBadGlobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().RegisterGlob("[", TextParser{})
}

func TestMirageRegistryCoverage(t *testing.T) {
	r := MirageRegistry()
	if r.Lookup(mkfile("/bin/x", machine.TypeExecutable, "")) == nil {
		t.Fatal("no executable parser")
	}
	if r.Lookup(mkfile("/lib/libc.so", machine.TypeSharedLib, "")) == nil {
		t.Fatal("no sharedlib parser")
	}
	if r.Lookup(mkfile("/etc/host.conf", machine.TypeConfig, "")) == nil {
		t.Fatal("no system-wide config parser")
	}
	// Application config in a subdirectory is NOT covered by Mirage-
	// supplied parsers — this gap drives Figures 7 and 9.
	if r.Lookup(mkfile("/etc/mysql/my.cnf", machine.TypeConfig, "")) != nil {
		t.Fatal("application config unexpectedly covered")
	}
}

func TestRegistryClone(t *testing.T) {
	base := MirageRegistry()
	c := base.Clone()
	c.RegisterPath("/etc/mysql/my.cnf", ConfigParser{})
	if base.Lookup(mkfile("/etc/mysql/my.cnf", machine.TypeConfig, "")) != nil {
		t.Fatal("Clone shares state with original")
	}
	if c.Lookup(mkfile("/etc/mysql/my.cnf", machine.TypeConfig, "")) == nil {
		t.Fatal("Clone lost registration")
	}
}

func TestFingerprintMachine(t *testing.T) {
	m := machine.New("m")
	m.WriteFile(mkfile("/bin/app", machine.TypeExecutable, "binary"))
	m.WriteFile(mkfile("/etc/app/app.cnf", machine.TypeConfig, "[s]\nk=v\n"))
	m.SetEnv("APP_HOME", "/opt/app")

	fp := NewFingerprinter(MirageRegistry())
	set := fp.Fingerprint(m, []string{"/bin/app", "/etc/app/app.cnf", "env:APP_HOME", "/missing"})
	if set.Len() == 0 {
		t.Fatal("empty fingerprint")
	}
	// /bin/app -> 1 parsed; app.cnf -> content items; env -> 1 parsed.
	parsed := set.OfKind(resource.Parsed)
	content := set.OfKind(resource.Content)
	if parsed.Len() != 2 {
		t.Fatalf("parsed items = %d, want 2 (%v)", parsed.Len(), parsed.Items())
	}
	if content.Len() == 0 {
		t.Fatal("config without vendor parser should be content-fingerprinted")
	}
}

func TestFingerprintEnvUnset(t *testing.T) {
	m := machine.New("m")
	fp := NewFingerprinter(MirageRegistry())
	set := fp.Fingerprint(m, []string{"env:MISSING"})
	if set.Len() != 0 {
		t.Fatalf("unset env produced %d items", set.Len())
	}
}

func TestFingerprintDiffDetectsUpgradeRelevantChange(t *testing.T) {
	vendorMachine := machine.New("vendor")
	vendorMachine.WriteFile(mkfile("/lib/libmysql.so", machine.TypeSharedLib, "v4 code"))
	user := machine.New("user")
	user.WriteFile(mkfile("/lib/libmysql.so", machine.TypeSharedLib, "v5 code"))

	fp := NewFingerprinter(MirageRegistry())
	refs := []string{"/lib/libmysql.so"}
	d := fp.Fingerprint(user, refs).Diff(fp.Fingerprint(vendorMachine, refs))
	if d.Len() != 2 {
		t.Fatalf("diff = %d items, want 2 (user's and vendor's versions)", d.Len())
	}
}

func TestFingerprintAll(t *testing.T) {
	m := machine.New("m")
	m.WriteFile(mkfile("/bin/a", machine.TypeExecutable, "a"))
	m.SetEnv("X", "1")
	set := NewFingerprinter(MirageRegistry()).FingerprintAll(m)
	if set.Len() != 2 {
		t.Fatalf("FingerprintAll = %d items, want 2", set.Len())
	}
}
