package parser

import (
	"path"
	"sort"

	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/resource"
)

// Registry maps environmental resources to parsers. Mirage supplies parsers
// for common types (executables, shared libraries); the vendor registers
// application-specific parsers for paths it understands (configuration
// files, preference stores). Resources matched by neither fall back to
// content-based Rabin fingerprinting.
type Registry struct {
	byType map[machine.FileType]Parser
	byPath map[string]Parser // exact path -> parser
	byGlob []globRule        // pattern (path.Match) -> parser, in registration order
}

type globRule struct {
	pattern string
	parser  Parser
}

// NewRegistry returns an empty registry with no parsers at all (pure
// content fingerprinting). Most callers want MirageRegistry.
func NewRegistry() *Registry {
	return &Registry{
		byType: make(map[machine.FileType]Parser),
		byPath: make(map[string]Parser),
	}
}

// MirageRegistry returns the registry of Mirage-supplied parsers: as in the
// paper, these "deal with executables, shared libraries, and system-wide
// configuration files" — but not with application-specific configuration,
// which needs vendor parsers (this is exactly the gap Figures 7 and 9
// evaluate).
func MirageRegistry() *Registry {
	r := NewRegistry()
	r.RegisterType(machine.TypeExecutable, ExecutableParser{})
	r.RegisterType(machine.TypeSharedLib, SharedLibParser{})
	// System-wide configuration lives directly under /etc; application
	// config in /etc subdirectories or home directories is not covered.
	r.RegisterGlob("/etc/*.conf", ConfigParser{})
	return r
}

// RegisterType installs a parser for every file of the given type.
func (r *Registry) RegisterType(t machine.FileType, p Parser) {
	r.byType[t] = p
}

// RegisterPath installs a vendor parser for one exact path. Exact paths
// take precedence over globs, which take precedence over types.
func (r *Registry) RegisterPath(filePath string, p Parser) {
	r.byPath[filePath] = p
}

// RegisterGlob installs a vendor parser for every path matching pattern
// (path.Match syntax). Earlier registrations win.
func (r *Registry) RegisterGlob(pattern string, p Parser) {
	if _, err := path.Match(pattern, "/probe"); err != nil {
		panic("parser: bad glob pattern " + pattern)
	}
	r.byGlob = append(r.byGlob, globRule{pattern, p})
}

// Lookup returns the parser for f, or nil if the file must be content-
// fingerprinted.
func (r *Registry) Lookup(f *machine.File) Parser {
	if p, ok := r.byPath[f.Path]; ok {
		return p
	}
	for _, rule := range r.byGlob {
		if ok, _ := path.Match(rule.pattern, f.Path); ok {
			return rule.parser
		}
	}
	if p, ok := r.byType[f.Type]; ok {
		return p
	}
	return nil
}

// Clone returns an independent copy of the registry, so a vendor can extend
// the Mirage defaults per application without mutating them.
func (r *Registry) Clone() *Registry {
	c := NewRegistry()
	for t, p := range r.byType {
		c.byType[t] = p
	}
	for pth, p := range r.byPath {
		c.byPath[pth] = p
	}
	c.byGlob = append([]globRule(nil), r.byGlob...)
	return c
}

// Fingerprinter turns a machine's environmental resources into an item set
// using a registry and the content fallback.
type Fingerprinter struct {
	Registry *Registry
	chunker  *fingerprint.Chunker
}

// NewFingerprinter returns a Fingerprinter over the given registry with
// default chunking parameters.
func NewFingerprinter(reg *Registry) *Fingerprinter {
	return &Fingerprinter{Registry: reg, chunker: fingerprint.NewChunker(0, 0, 0)}
}

// NewFingerprinterChunked returns a Fingerprinter with explicit chunker
// parameters; used by the chunk-size ablation bench.
func NewFingerprinterChunked(reg *Registry, avg, min, max int) *Fingerprinter {
	return &Fingerprinter{Registry: reg, chunker: fingerprint.NewChunker(avg, min, max)}
}

// Fingerprint produces the item set for the given environmental resource
// references on machine m. References are file paths or "env:NAME"
// environment-variable references. Missing resources contribute no items;
// a resource present at the vendor but absent at a user machine therefore
// surfaces naturally in the item diff.
func (fp *Fingerprinter) Fingerprint(m *machine.Machine, refs []string) *resource.Set {
	set := resource.NewSet(len(refs) * 4)
	for _, ref := range refs {
		if name, ok := cutPrefix(ref, EnvPrefix); ok {
			if val, isSet := m.Getenv(name); isSet {
				set.Add(resource.NewParsed(fingerprint.HashString(val), "env", name))
			}
			continue
		}
		f := m.ReadFile(ref)
		if f == nil {
			continue
		}
		if p := fp.Registry.Lookup(f); p != nil {
			for _, it := range p.Parse(f) {
				set.Add(it)
			}
			continue
		}
		for _, it := range ContentFingerprint(fp.chunker, f) {
			set.Add(it)
		}
	}
	return set
}

// FingerprintAll fingerprints every file on the machine plus all its
// environment variables. Used when no resource identification has been run.
func (fp *Fingerprinter) FingerprintAll(m *machine.Machine) *resource.Set {
	refs := m.Paths()
	env := m.AllEnv()
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		refs = append(refs, EnvPrefix+k)
	}
	return fp.Fingerprint(m, refs)
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}
