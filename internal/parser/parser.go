// Package parser implements Mirage's resource fingerprinting (§3.2.3):
// per-type parsers that turn an environmental resource into a hierarchical
// set of items, a registry through which vendors supply application-
// specific parsers, and the content-based Rabin fallback for resources no
// parser understands.
//
// The item formats follow the paper exactly:
//
//	Executables:      Executablename.FILE_HASH
//	Shared libraries: LibraryName.Version#.HASH
//	Text files:       Filename.Line#.LINE_HASH
//	Config files:     Filename.SectionName.KEY.HASH
//	Binary files:     Filename.CHUNK_HASH
//
// Content-based fingerprinting also produces Filename.CHUNK_HASH items but
// of Kind Content, which routes them into the second (QT) clustering phase
// instead of the exact first phase.
package parser

import (
	"fmt"
	"strings"

	"repro/internal/fingerprint"
	"repro/internal/machine"
	"repro/internal/resource"
)

// EnvPrefix marks resource references that name environment variables
// rather than files: "env:HOME" refers to $HOME. Mirage intercepts getenv()
// in libc; the simulated tracer emits the same references.
const EnvPrefix = "env:"

// Parser converts one file into fingerprint items.
type Parser interface {
	// Name identifies the parser in diagnostics.
	Name() string
	// Parse returns the items representing f. Parsers are responsible for
	// choosing item granularity and for discarding irrelevant information
	// (comments, user-specific data).
	Parse(f *machine.File) []resource.Item
}

// ExecutableParser fingerprints program binaries as a single whole-file
// hash: fine granularity is useless for executables.
type ExecutableParser struct{}

func (ExecutableParser) Name() string { return "executable" }

func (ExecutableParser) Parse(f *machine.File) []resource.Item {
	return []resource.Item{resource.NewParsed(fingerprint.HashBytes(f.Data), f.Path)}
}

// SharedLibParser fingerprints a shared library as LibraryName.Version.HASH
// so the vendor can discard the hash suffix and keep only the version when
// it deems build differences irrelevant (the libc example in §3.2.3).
type SharedLibParser struct{}

func (SharedLibParser) Name() string { return "sharedlib" }

func (SharedLibParser) Parse(f *machine.File) []resource.Item {
	version := f.Version
	if version == "" {
		version = "unversioned"
	}
	return []resource.Item{resource.NewParsed(fingerprint.HashBytes(f.Data), f.Path, version)}
}

// TextParser fingerprints a text file line by line: Filename.Line#.LINE_HASH.
type TextParser struct{}

func (TextParser) Name() string { return "text" }

func (TextParser) Parse(f *machine.File) []resource.Item {
	lines := strings.Split(string(f.Data), "\n")
	items := make([]resource.Item, 0, len(lines))
	for i, line := range lines {
		if line == "" {
			continue
		}
		items = append(items, resource.NewParsed(
			fingerprint.HashString(line), f.Path, fmt.Sprintf("line%d", i+1)))
	}
	return items
}

// ConfigParser fingerprints INI-style configuration files as
// Filename.SectionName.KEY.HASH items. It discards comments and blank
// lines — exactly the semantic filtering that makes parser-aided clustering
// sound where content fingerprinting is not: machines differing only in
// my.cnf comments produce identical item sets.
type ConfigParser struct {
	// IgnoreKeys lists configuration keys whose values are user-specific
	// noise (timestamps, window coordinates, account names) that must not
	// influence clustering. Keys are matched case-insensitively.
	IgnoreKeys []string
}

func (ConfigParser) Name() string { return "config" }

func (p ConfigParser) ignored(key string) bool {
	for _, k := range p.IgnoreKeys {
		if strings.EqualFold(k, key) {
			return true
		}
	}
	return false
}

func (p ConfigParser) Parse(f *machine.File) []resource.Item {
	section := "global"
	var items []resource.Item
	for _, raw := range strings.Split(string(f.Data), "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";"):
			continue // comments and blanks are irrelevant to behaviour
		case strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]"):
			section = strings.TrimSpace(line[1 : len(line)-1])
		default:
			key, value := line, ""
			if i := strings.IndexAny(line, "=:"); i >= 0 {
				key = strings.TrimSpace(line[:i])
				value = strings.TrimSpace(line[i+1:])
			}
			if key == "" || p.ignored(key) {
				continue
			}
			items = append(items, resource.NewParsed(
				fingerprint.HashString(value), f.Path, section, key))
		}
	}
	return items
}

// BinaryParser fingerprints opaque binary resources with content-defined
// chunks, but as Parsed items: the vendor has declared the file a known
// resource type, so its chunks participate in exact phase-1 grouping.
type BinaryParser struct {
	chunker *fingerprint.Chunker
}

// NewBinaryParser returns a BinaryParser with the default 4 KB chunking.
func NewBinaryParser() *BinaryParser {
	return &BinaryParser{chunker: fingerprint.NewChunker(0, 0, 0)}
}

func (*BinaryParser) Name() string { return "binary" }

func (p *BinaryParser) Parse(f *machine.File) []resource.Item {
	hashes := p.chunker.HashChunks(f.Data)
	items := make([]resource.Item, len(hashes))
	for i, h := range hashes {
		items[i] = resource.NewParsed(h, f.Path, fmt.Sprintf("chunk%d", i))
	}
	return items
}

// ContentFingerprint produces the parser-less fallback representation of a
// file: one Content item per Rabin chunk (Filename.CHUNK_HASH). The chunk
// index is deliberately absent from the key — the paper's content items
// identify chunks by hash alone, so reordering or shifting produces the
// minimal item difference.
func ContentFingerprint(c *fingerprint.Chunker, f *machine.File) []resource.Item {
	hashes := c.HashChunks(f.Data)
	items := make([]resource.Item, len(hashes))
	for i, h := range hashes {
		items[i] = resource.NewContent(f.Path, h)
	}
	return items
}
