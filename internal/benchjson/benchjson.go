// Package benchjson is the one schema behind every BENCH_*.json
// artifact the benchmarks emit for CI's perf-trajectory trail. Each
// benchmark used to hand-roll its own ad-hoc JSON shape; consumers now
// get a uniform array of Result entries — a name, the size parameter of
// the run, a flat numeric metrics map, and optional string labels for
// non-numeric dimensions (mode, terminal state) — regardless of which
// benchmark produced the file.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
)

// Result is one benchmark measurement: a (sub-)benchmark name, the run's
// size parameter, and its metrics.
type Result struct {
	// Name identifies the benchmark, optionally with a sub-case suffix
	// ("BenchmarkScale/registry").
	Name string `json:"name"`
	// N is the size parameter the measurement was taken at (fleet size,
	// machine count, shard count); 0 when the benchmark has none.
	N int `json:"n"`
	// Metrics holds the numeric measurements, keyed by snake_case name.
	Metrics map[string]float64 `json:"metrics"`
	// Labels holds non-numeric dimensions (mode=inline, terminal=...).
	Labels map[string]string `json:"labels,omitempty"`
}

// Write marshals the results as one indented JSON array to path.
func Write(path string, results []Result) error {
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: encoding %s: %w", path, err)
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// WriteEnv writes the results to the file named by the environment
// variable, reporting whether a file was written (false when the
// variable is unset — the benchmarks' opt-in convention).
func WriteEnv(envVar string, results []Result) (bool, error) {
	path := os.Getenv(envVar)
	if path == "" {
		return false, nil
	}
	if err := Write(path, results); err != nil {
		return true, err
	}
	return true, nil
}
