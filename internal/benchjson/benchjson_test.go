package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteAndShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	in := []Result{
		{Name: "BenchmarkX/mode", N: 100,
			Metrics: map[string]float64{"ns_per_op": 12.5},
			Labels:  map[string]string{"mode": "inline"}},
		{Name: "BenchmarkX", Metrics: map[string]float64{"reduction": 10}},
	}
	if err := Write(path, in); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []Result
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "BenchmarkX/mode" || out[0].N != 100 ||
		out[0].Metrics["ns_per_op"] != 12.5 || out[0].Labels["mode"] != "inline" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if out[1].Labels != nil {
		t.Fatalf("empty labels should be omitted, got %v", out[1].Labels)
	}
}

func TestWriteEnv(t *testing.T) {
	if wrote, err := WriteEnv("BENCHJSON_TEST_UNSET", nil); wrote || err != nil {
		t.Fatalf("unset env: wrote=%v err=%v", wrote, err)
	}
	path := filepath.Join(t.TempDir(), "out.json")
	t.Setenv("BENCHJSON_TEST_PATH", path)
	wrote, err := WriteEnv("BENCHJSON_TEST_PATH", []Result{{Name: "b"}})
	if !wrote || err != nil {
		t.Fatalf("wrote=%v err=%v", wrote, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
