package rollout

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/deploy"
)

// TestGroupCommitGateDurabilityOrder pins the write-ahead guarantee group
// commit must not weaken: when a gate record's OnEvent returns (i.e.
// before the gate releases the next stage), every record appended before
// it — including group-committed member records — is already on disk.
func TestGroupCommitGateDurabilityOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gate.journal")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// A huge window keeps the background flush out of the picture: only
	// the gate's own sync can make the member records durable.
	j.GroupWindow = time.Hour
	rec := &Recorder{J: j, Group: true}

	events := []deploy.Event{
		{Type: deploy.EventStageStarted, Stage: 0, UpgradeID: "u1"},
		{Type: deploy.EventTested, Stage: 0, Node: "m1", Cluster: "c", UpgradeID: "u1", Success: true},
		{Type: deploy.EventIntegrated, Stage: 0, Node: "m1", Cluster: "c", UpgradeID: "u1"},
		{Type: deploy.EventTested, Stage: 0, Node: "m2", Cluster: "c", UpgradeID: "u1", Success: true},
		{Type: deploy.EventIntegrated, Stage: 0, Node: "m2", Cluster: "c", UpgradeID: "u1"},
	}
	for _, ev := range events {
		if err := rec.OnEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if p := j.Pending(); p != 4 {
		// Stage start synced; the four member records should be batched.
		t.Fatalf("pending before gate = %d, want 4", p)
	}
	if err := rec.OnEvent(deploy.Event{Type: deploy.EventGatePassed, Stage: 0, UpgradeID: "u1"}); err != nil {
		t.Fatal(err)
	}
	if p := j.Pending(); p != 0 {
		t.Fatalf("pending after gate = %d, want 0 — the gate released before its records were durable", p)
	}
	// The on-disk journal must already hold every record, gate last.
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(events)+1 {
		t.Fatalf("journal holds %d records, want %d", len(recs), len(events)+1)
	}
	if last := recs[len(recs)-1]; last.Type != RecGate {
		t.Fatalf("last record = %q, want gate", last.Type)
	}
	// The whole point: far fewer fsyncs than records. Stage start + gate
	// is 2; Create-era syncs are 0.
	if got := j.Syncs(); got != 2 {
		t.Fatalf("syncs = %d, want 2 (stage start + gate)", got)
	}
}

// TestGroupCommitWindowFlush verifies a buffered record becomes durable
// on its own within the group window, without any boundary record.
func TestGroupCommitWindowFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "window.journal")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.GroupWindow = time.Millisecond
	if err := j.AppendBuffered(Record{Type: RecTested, Stage: 0, Node: "m1"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("group window never flushed the buffered record")
		}
		time.Sleep(time.Millisecond)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != RecTested {
		t.Fatalf("journal = %+v, want the one tested record", recs)
	}
}

// TestGroupCommitCloseFlushes verifies Close settles buffered records
// before closing, so a clean shutdown never loses journal tail.
func TestGroupCommitCloseFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "close.journal")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j.GroupWindow = time.Hour
	for i := 0; i < 3; i++ {
		if err := j.AppendBuffered(Record{Type: RecTested, Stage: 0, Node: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("journal holds %d records after Close, want 3", len(recs))
	}
}
