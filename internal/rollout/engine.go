package rollout

import (
	"context"
	"fmt"

	"repro/internal/deploy"
	"repro/internal/pkgmgr"
)

// Engine runs journaled deployments over a deploy.Controller: the
// durable, resumable form of Controller.Deploy. A fresh run creates the
// journal and heads it with the plan identity; a resumed run replays the
// journal into a cursor (hash-checking the rebuilt plan) so completed
// stages and already-integrated members are skipped. Either way every
// state transition is journaled before the gate it precedes releases, so
// killing the vendor at any point leaves a journal from which the rollout
// continues exactly where it stopped.
type Engine struct {
	Controller *deploy.Controller
	// Path is the journal file.
	Path string
	// Resume replays an existing journal at Path instead of truncating it.
	Resume bool
	// Rebuild, when set, maps an upgrade ID recorded in the journal back
	// to its artifact — the vendor's release store. It is consulted on
	// resume when the journal ended on a corrected version (fixes were
	// released before the crash): the resumed run must continue from that
	// version, not the original. Without Rebuild, resuming such a journal
	// requires the caller to pass the matching version directly.
	Rebuild func(upgradeID string) (*pkgmgr.Upgrade, bool)
	// Observer, when set, additionally receives every state transition
	// after its journal record is written (and, for boundary records —
	// stage start, gate, abandoned — fsynced; member records are group-
	// committed and become durable within the journal's group window at
	// the latest). Its return value is ignored: the journal is the
	// arbiter of whether the plan may continue.
	Observer deploy.Observer
}

// teeObserver journals each event first and forwards it to the secondary
// observer only once the record is durable.
type teeObserver struct {
	journal deploy.Observer
	extra   deploy.Observer
}

func (t *teeObserver) OnEvent(ev deploy.Event) error {
	if err := t.journal.OnEvent(ev); err != nil {
		return err
	}
	if t.extra != nil {
		t.extra.OnEvent(ev) //nolint:errcheck — advisory view, journal decides
	}
	return nil
}

// Deploy runs (or resumes) the upgrade across the clusters under policy,
// journaling every state transition. On success the journal is sealed
// with a completion record. Cancelling ctx aborts the rollout: the
// controller journals an abandoned record (so the journal refuses to
// resume — an abort is terminal, not a pause) and Deploy returns the
// partial outcome with an error wrapping ctx.Err().
func (e *Engine) Deploy(ctx context.Context, policy deploy.Policy, up *pkgmgr.Upgrade, clusters []*deploy.Cluster) (*deploy.Outcome, error) {
	ctl := e.Controller
	// Mirror the controller's urgent bypass so the journaled plan is the
	// plan that actually executes. The plan is built here for its hash and
	// rebuilt inside Controller.Deploy; both calls read the same policy,
	// clusters and ctl.Seed, so the controller must not be mutated while
	// Deploy runs or the journaled identity would describe a schedule that
	// never executed.
	if up.Urgent {
		policy = deploy.PolicyNoStaging
	}
	refs := deploy.Refs(clusters)
	plan := ctl.PlanFor(policy, clusters)

	var j *Journal
	if e.Resume {
		journal, records, err := Open(e.Path)
		if err != nil {
			return nil, err
		}
		cursor, err := Resume(records, plan, refs)
		if err != nil {
			journal.Close()
			return nil, err
		}
		if cursor.UpgradeID != "" && cursor.UpgradeID != up.ID {
			ok := false
			if e.Rebuild != nil {
				if u, found := e.Rebuild(cursor.UpgradeID); found {
					up, ok = u, true
				}
			}
			if !ok {
				journal.Close()
				return nil, fmt.Errorf("rollout: journal ended on upgrade %s but %s was supplied and no Rebuild hook can produce it", cursor.UpgradeID, up.ID)
			}
		}
		j = journal
		ctl.Cursor = cursor
	} else {
		journal, err := Create(e.Path)
		if err != nil {
			return nil, err
		}
		if err := journal.Append(PlanRecord(plan, refs, up.ID)); err != nil {
			journal.Close()
			return nil, err
		}
		j = journal
	}
	defer j.Close()
	ctl.Observer = &teeObserver{journal: &Recorder{J: j, Group: true}, extra: e.Observer}
	defer func() { ctl.Observer, ctl.Cursor = nil, nil }()

	out, err := ctl.Deploy(ctx, policy, up, clusters)
	if err == nil && out != nil && !out.Abandoned {
		if aerr := j.Append(Record{Type: RecComplete, Stage: -1, UpgradeID: out.FinalID}); aerr != nil {
			return out, aerr
		}
	}
	return out, err
}
