package rollout

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/telemetry"
)

// Engine runs journaled deployments over a deploy.Controller: the
// durable, resumable form of Controller.Deploy. A fresh run creates the
// journal and heads it with the plan identity; a resumed run replays the
// journal into a cursor (hash-checking the rebuilt plan) so completed
// stages and already-integrated members are skipped. Either way every
// state transition is journaled before the gate it precedes releases, so
// killing the vendor at any point leaves a journal from which the rollout
// continues exactly where it stopped.
type Engine struct {
	Controller *deploy.Controller
	// Path is the journal file.
	Path string
	// Resume replays an existing journal at Path instead of truncating it.
	Resume bool
	// Rebuild, when set, maps an upgrade ID recorded in the journal back
	// to its artifact — the vendor's release store. It is consulted on
	// resume when the journal ended on a corrected version (fixes were
	// released before the crash): the resumed run must continue from that
	// version, not the original. Without Rebuild, resuming such a journal
	// requires the caller to pass the matching version directly.
	Rebuild func(upgradeID string) (*pkgmgr.Upgrade, bool)
	// Observer, when set, additionally receives every state transition
	// after its journal record is written (and, for boundary records —
	// stage start, gate, abandoned, every rollback record — fsynced;
	// member records are group-committed and become durable within the
	// journal's group window at the latest). Its return value is ignored:
	// the journal is the arbiter of whether the plan may continue.
	Observer deploy.Observer
	// Baseline is the version-N artifact the fleet ran before this
	// rollout — what a rollback restores. The agents' self-seeded caches
	// still hold its chunks, so reverse manifests resolve nearly free.
	Baseline *pkgmgr.Upgrade
	// AutoRollback arms journaled automatic rollback: when the vendor
	// abandons the upgrade (gate failure, debugging rounds exhausted),
	// the engine drives every integrated member back to Baseline before
	// returning, journaling each revert. The journal then ends in the
	// second terminal state: rollback_complete.
	AutoRollback bool
	// Telemetry, when set, is handed to the journal so fsync latency and
	// group-commit batch sizes land in the operational histograms (nil is
	// a no-op; the controller carries its own Telemetry field).
	Telemetry *telemetry.Registry
	// OnOpen, when set, receives the live journal right before the
	// deployment starts — on resume together with the replayed records,
	// on a fresh run with nil. It is how the orchestrator appends
	// first-class records of its own (drift events) concurrently with the
	// controller's recorder: Journal serializes appends internally, and
	// replay skips record types it does not drive protocol state from.
	// The journal is only valid until Deploy returns.
	OnOpen func(j *Journal, prior []Record)
}

// teeObserver journals each event first and forwards it to the secondary
// observer only once the record is durable.
type teeObserver struct {
	journal deploy.Observer
	extra   deploy.Observer
}

func (t *teeObserver) OnEvent(ev deploy.Event) error {
	if err := t.journal.OnEvent(ev); err != nil {
		return err
	}
	if t.extra != nil {
		t.extra.OnEvent(ev) //nolint:errcheck — advisory view, journal decides
	}
	return nil
}

// Deploy runs (or resumes) the upgrade across the clusters under policy,
// journaling every state transition. On success the journal is sealed
// with a completion record. Cancelling ctx aborts the rollout: the
// controller journals an abandoned record (so the journal refuses to
// resume — an abort is terminal, not a pause) and Deploy returns the
// partial outcome with an error wrapping ctx.Err().
func (e *Engine) Deploy(ctx context.Context, policy deploy.Policy, up *pkgmgr.Upgrade, clusters []*deploy.Cluster) (*deploy.Outcome, error) {
	ctl := e.Controller
	// Mirror the controller's urgent bypass so the journaled plan is the
	// plan that actually executes. The plan is built here for its hash and
	// rebuilt inside Controller.Deploy; both calls read the same policy,
	// clusters and ctl.Seed, so the controller must not be mutated while
	// Deploy runs or the journaled identity would describe a schedule that
	// never executed.
	if up.Urgent {
		policy = deploy.PolicyNoStaging
	}
	refs := deploy.Refs(clusters)
	plan := ctl.PlanFor(policy, clusters)

	var j *Journal
	var prior []Record
	if e.Resume {
		journal, records, err := Open(e.Path)
		if err != nil {
			return nil, err
		}
		journal.Telemetry = e.Telemetry
		cursor, term, rerr := replay(records, plan, refs)
		if rerr != nil {
			journal.Close()
			return nil, rerr
		}
		rb := RollbackOf(records)
		if rb != nil && rb.Done {
			journal.Close()
			return nil, fmt.Errorf("rollout: journal is sealed — the fleet rolled back to %s; nothing to resume", rb.BaselineID)
		}
		if term != nil && term.Type == RecComplete {
			journal.Close()
			return nil, fmt.Errorf("rollout: journal is sealed — the rollout completed with %s deployed; nothing to resume", term.UpgradeID)
		}
		if term != nil { // abandoned: the only way forward is rollback
			if (rb == nil || !rb.Started) && !(e.AutoRollback && e.Baseline != nil) {
				journal.Close()
				return nil, fmt.Errorf("rollout: journal records the vendor abandoning %s after round %d; an abandoned rollout cannot resume", term.UpgradeID, term.Round)
			}
			defer journal.Close()
			return e.runRollback(ctx, journal, cursor, rb, policy, clusters)
		}
		if cursor.UpgradeID != "" && cursor.UpgradeID != up.ID {
			ok := false
			if e.Rebuild != nil {
				if u, found := e.Rebuild(cursor.UpgradeID); found {
					up, ok = u, true
				}
			}
			if !ok {
				journal.Close()
				return nil, fmt.Errorf("rollout: journal ended on upgrade %s but %s was supplied and no Rebuild hook can produce it", cursor.UpgradeID, up.ID)
			}
		}
		j = journal
		prior = records
		ctl.Cursor = cursor
	} else {
		journal, err := Create(e.Path)
		if err != nil {
			return nil, err
		}
		journal.Telemetry = e.Telemetry
		if err := journal.Append(PlanRecord(plan, refs, up.ID)); err != nil {
			journal.Close()
			return nil, err
		}
		j = journal
	}
	defer j.Close()
	if e.OnOpen != nil {
		e.OnOpen(j, prior)
	}
	ctl.Observer = &teeObserver{journal: &Recorder{J: j, Group: true}, extra: e.Observer}
	defer func() { ctl.Observer, ctl.Cursor = nil, nil }()

	out, err := ctl.Deploy(ctx, policy, up, clusters)
	if err == nil && out != nil {
		if out.Abandoned && e.AutoRollback && e.Baseline != nil {
			// The observer is still installed: every revert is journaled
			// (durably, before the next) and rollback_complete seals the
			// journal in its second terminal state.
			if _, rerr := ctl.Rollback(ctx, e.Baseline, clusters, out, nil); rerr != nil {
				return out, rerr
			}
		} else if !out.Abandoned {
			if aerr := j.Append(Record{Type: RecComplete, Stage: -1, UpgradeID: out.FinalID}); aerr != nil {
				return out, aerr
			}
		}
	}
	return out, err
}

// Rollback resumes the journal at Path and drives every member it
// records as integrated back to the baseline — the manual counterpart of
// AutoRollback, for an operator deciding after the fact that an
// abandoned (or aborted, or crashed) rollout must be undone. A rollback
// the journal records as started picks up where it stopped: members with
// a durable rolled_back record are never reverted again. It refuses a
// journal sealed by completion (deploy the old version instead) or by a
// finished rollback.
func (e *Engine) Rollback(ctx context.Context, policy deploy.Policy, clusters []*deploy.Cluster) (*deploy.Outcome, error) {
	refs := deploy.Refs(clusters)
	plan := e.Controller.PlanFor(policy, clusters)
	j, records, err := Open(e.Path)
	if err != nil {
		return nil, err
	}
	j.Telemetry = e.Telemetry
	cursor, term, err := replay(records, plan, refs)
	if err != nil {
		j.Close()
		return nil, err
	}
	if term != nil && term.Type == RecComplete {
		j.Close()
		return nil, fmt.Errorf("rollout: journal is sealed — the rollout completed with %s deployed; roll back by deploying the previous version", term.UpgradeID)
	}
	rb := RollbackOf(records)
	if rb != nil && rb.Done {
		j.Close()
		return nil, fmt.Errorf("rollout: journal already records a completed rollback to %s", rb.BaselineID)
	}
	defer j.Close()
	return e.runRollback(ctx, j, cursor, rb, policy, clusters)
}

// runRollback executes (or resumes) the rollback pass against an open
// journal, synthesizing the outcome the controller mutates from the
// replayed cursor.
func (e *Engine) runRollback(ctx context.Context, j *Journal, cursor *deploy.Cursor, rb *RollbackState, policy deploy.Policy, clusters []*deploy.Cluster) (*deploy.Outcome, error) {
	baseline, err := e.baselineFor(rb)
	if err != nil {
		return nil, err
	}
	ctl := e.Controller
	ctl.Observer = &teeObserver{journal: &Recorder{J: j, Group: true}, extra: e.Observer}
	defer func() { ctl.Observer = nil }()
	out := outcomeFrom(policy, cursor, clusters)
	var done map[string]bool
	if rb != nil {
		done = rb.Reverted
	}
	if _, err := ctl.Rollback(ctx, baseline, clusters, out, done); err != nil {
		return out, err
	}
	return out, nil
}

// baselineFor resolves the baseline artifact a rollback restores,
// insisting that a resumed rollback gets exactly the version its
// rollback_start record names (via Baseline or the Rebuild hook).
func (e *Engine) baselineFor(rb *RollbackState) (*pkgmgr.Upgrade, error) {
	b := e.Baseline
	if rb != nil && rb.Started && (b == nil || b.ID != rb.BaselineID) {
		if e.Rebuild != nil {
			if u, ok := e.Rebuild(rb.BaselineID); ok {
				return u, nil
			}
		}
		if b != nil {
			return nil, fmt.Errorf("rollout: journal rolls back to %s but baseline %s was supplied", rb.BaselineID, b.ID)
		}
		return nil, fmt.Errorf("rollout: journal rolls back to %s and neither Baseline nor Rebuild can produce it", rb.BaselineID)
	}
	if b == nil {
		return nil, fmt.Errorf("rollout: no baseline artifact to roll back to")
	}
	return b, nil
}

// outcomeFrom synthesizes the abandoned outcome a resumed rollback
// mutates, from the journal's replayed cursor.
func outcomeFrom(policy deploy.Policy, cur *deploy.Cursor, clusters []*deploy.Cluster) *deploy.Outcome {
	out := &deploy.Outcome{
		Policy: policy, FinalID: cur.FinalID, Rounds: cur.Rounds,
		Overhead: cur.Overhead, Abandoned: true,
		Nodes: make(map[string]*deploy.NodeStatus),
	}
	for _, c := range clusters {
		for _, n := range append(append([]deploy.Node(nil), c.Representatives...), c.Others...) {
			name := n.Name()
			out.Nodes[name] = &deploy.NodeStatus{
				Node: name, Cluster: c.ID,
				UpgradeID: cur.Integrated[name],
				Tests:     cur.NodeTests[name], Failures: cur.NodeFailures[name],
				Quarantined: cur.Quarantined[name],
			}
		}
	}
	for name, q := range cur.Quarantined {
		if q {
			out.Quarantined = append(out.Quarantined, name)
		}
	}
	sort.Strings(out.Quarantined)
	return out
}
