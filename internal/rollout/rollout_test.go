package rollout

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/staging"
)

// countingNode is a deploy.Node that always passes and counts test and
// integrate calls per upgrade ID.
type countingNode struct {
	name string
	mu   sync.Mutex
	test map[string]int
	ints map[string]int
}

func newCountingNode(name string) *countingNode {
	return &countingNode{name: name, test: make(map[string]int), ints: make(map[string]int)}
}

func (n *countingNode) Name() string { return n.name }

func (n *countingNode) TestUpgrade(_ context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	n.mu.Lock()
	n.test[up.ID]++
	n.mu.Unlock()
	return &report.Report{UpgradeID: up.ID, Machine: n.name, Success: true}, nil
}

func (n *countingNode) Integrate(_ context.Context, up *pkgmgr.Upgrade) error {
	n.mu.Lock()
	n.ints[up.ID]++
	n.mu.Unlock()
	return nil
}

func (n *countingNode) totals() (tests, ints int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, c := range n.test {
		tests += c
	}
	for _, c := range n.ints {
		ints += c
	}
	return
}

func testUpgrade(id string) *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{ID: id, Pkg: &pkgmgr.Package{Name: "app", Version: id}}
}

// twoClusterFleet builds near (rep + 2 others) and far (rep + 2 others).
func twoClusterFleet() ([]*deploy.Cluster, map[string]*countingNode) {
	nodes := make(map[string]*countingNode)
	mk := func(name string) *countingNode {
		n := newCountingNode(name)
		nodes[name] = n
		return n
	}
	clusters := []*deploy.Cluster{
		{ID: "near", Distance: 1,
			Representatives: []deploy.Node{mk("near-rep")},
			Others:          []deploy.Node{mk("near-1"), mk("near-2")}},
		{ID: "far", Distance: 9,
			Representatives: []deploy.Node{mk("far-rep")},
			Others:          []deploy.Node{mk("far-1"), mk("far-2")}},
	}
	return clusters, nodes
}

func TestJournalRoundTripAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rollout.journal")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, typ := range []string{RecPlan, RecStageStart, RecTested} {
		if err := j.Append(Record{Type: typ, Stage: i - 1}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-append: a torn trailing line.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"seq":4,"type":"integr`)
	f.Close()

	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Type != RecTested || recs[2].Seq != 3 {
		t.Fatalf("records = %+v", recs)
	}

	// Open truncates the torn tail so appends land on a clean boundary.
	j2, recs2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 3 {
		t.Fatalf("reopened records = %d", len(recs2))
	}
	if err := j2.Append(Record{Type: RecGate, Stage: 0}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].Seq != 4 || recs[3].Type != RecGate {
		t.Fatalf("after resume-append: %+v", recs)
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rollout.journal")
	os.WriteFile(path, []byte(`{"seq":1,"type":"plan","stage":-1}`+"\n"+
		`garbage not json`+"\n"+
		`{"seq":3,"type":"gate","stage":0}`+"\n"), 0o644)
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption accepted: %v", err)
	}
}

func TestResumeRejectsForeignPlan(t *testing.T) {
	clusters, _ := twoClusterFleet()
	refs := deploy.Refs(clusters)
	plan := staging.BuildPlan(staging.PolicyBalanced, refs, 0)
	records := []Record{PlanRecord(plan, refs, "v1")}
	records[0].Seq = 1

	// Same clusters, different policy: different schedule, must refuse.
	other := staging.BuildPlan(staging.PolicyFrontLoading, refs, 0)
	if _, err := Resume(records, other, refs); err == nil {
		t.Fatal("resumed against a different policy's plan")
	}
	// Different topology under the same policy: must refuse.
	grown := append([]staging.ClusterRef(nil), refs...)
	grown = append(grown, staging.ClusterRef{Name: "new", Distance: 4})
	if _, err := Resume(records, staging.BuildPlan(staging.PolicyBalanced, grown, 0), grown); err == nil {
		t.Fatal("resumed against a different topology")
	}
	// The matching plan resumes.
	if _, err := Resume(records, plan, refs); err != nil {
		t.Fatal(err)
	}
}

func TestResumeBuildsCursor(t *testing.T) {
	clusters, _ := twoClusterFleet()
	refs := deploy.Refs(clusters)
	plan := staging.BuildPlan(staging.PolicyBalanced, refs, 0)
	records := []Record{
		PlanRecord(plan, refs, "v1"),
		{Type: RecStageStart, Stage: 0},
		{Type: RecTested, Stage: 0, Node: "near-rep", Cluster: "near", Success: false},
		{Type: RecFix, Stage: 0, UpgradeID: "v2", PrevID: "v1", Round: 1},
		{Type: RecTested, Stage: 0, Node: "near-rep", Cluster: "near", UpgradeID: "v2", Success: true},
		{Type: RecIntegrated, Stage: 0, Node: "near-rep", Cluster: "near", UpgradeID: "v2"},
		{Type: RecGate, Stage: 0},
		{Type: RecStageStart, Stage: 1},
		{Type: RecQuarantined, Stage: 1, Node: "near-1", Cluster: "near", Reason: "agent unreachable"},
	}
	for i := range records {
		records[i].Seq = i + 1
	}
	cur, err := Resume(records, plan, refs)
	if err != nil {
		t.Fatal(err)
	}
	if cur.DoneStages != 1 || cur.Rounds != 1 || cur.UpgradeID != "v2" {
		t.Fatalf("cursor = %+v", cur)
	}
	if cur.Integrated["near-rep"] != "v2" || !cur.Quarantined["near-1"] || !cur.Unclean["near"] {
		t.Fatalf("cursor = %+v", cur)
	}
}

// crashObserver forwards events to the journal recorder until its budget
// is exhausted, then fails every append — the moment the vendor process
// "dies".
type crashObserver struct {
	inner  *Recorder
	budget int
}

func (c *crashObserver) OnEvent(ev deploy.Event) error {
	if c.budget <= 0 {
		return errors.New("vendor crashed")
	}
	c.budget--
	return c.inner.OnEvent(ev)
}

func TestInterruptedRolloutResumesWithoutRepeatingWork(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rollout.journal")
	clusters, nodes := twoClusterFleet()
	refs := deploy.Refs(clusters)
	up := testUpgrade("v1")

	// Run 1: the vendor dies seven state transitions in — after the near
	// representative's stage gated and one of the two near others
	// integrated.
	ctl1 := deploy.NewController(report.New(), nil)
	plan := ctl1.PlanFor(deploy.PolicyBalanced, clusters)
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(PlanRecord(plan, refs, up.ID)); err != nil {
		t.Fatal(err)
	}
	ctl1.Observer = &crashObserver{inner: &Recorder{J: j}, budget: 7}
	if _, err := ctl1.Deploy(context.Background(), deploy.PolicyBalanced, up, clusters); err == nil {
		t.Fatal("crashing journal did not halt the rollout")
	}
	j.Close()

	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	preIntegrated := make(map[string]bool)
	for _, r := range recs {
		if r.Type == RecIntegrated {
			preIntegrated[r.Node] = true
		}
	}
	if len(preIntegrated) == 0 || len(preIntegrated) == len(nodes) {
		t.Fatalf("crash budget left %d/%d members integrated; the test needs a mid-stage crash", len(preIntegrated), len(nodes))
	}

	// Run 2: a fresh vendor process resumes from the journal on disk.
	eng := &Engine{Controller: deploy.NewController(report.New(), nil), Path: path, Resume: true}
	out, err := eng.Deploy(context.Background(), deploy.PolicyBalanced, testUpgrade("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != len(nodes) || len(out.Quarantined) != 0 {
		t.Fatalf("resumed outcome: integrated=%d quarantined=%v", out.Integrated(), out.Quarantined)
	}

	// Members the journal records as done were not re-tested or
	// re-integrated; every member integrated exactly once overall. (A
	// member whose validation outran the dying journal — ran but was never
	// recorded — legitimately re-tests: unrecorded work is lost work.)
	for name, n := range nodes {
		tests, ints := n.totals()
		if preIntegrated[name] && (tests != 1 || ints != 1) {
			t.Fatalf("%s was journaled done but saw %d tests / %d integrations across both runs, want 1/1", name, tests, ints)
		}
		if ints != 1 {
			t.Fatalf("%s integrated %d times across both runs, want exactly 1", name, ints)
		}
	}

	// The journal agrees: one integrated record per member, sealed with a
	// completion record.
	recs, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	integrations := make(map[string]int)
	for _, r := range recs {
		if r.Type == RecIntegrated {
			integrations[r.Node]++
		}
	}
	for name := range nodes {
		if integrations[name] != 1 {
			t.Fatalf("journal records %d integrations for %s, want 1", integrations[name], name)
		}
	}
	if last := recs[len(recs)-1]; last.Type != RecComplete {
		t.Fatalf("journal not sealed: last record %+v", last)
	}
}

func TestResumeRebuildsFixedVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rollout.journal")
	node := newCountingNode("solo")
	clusters := []*deploy.Cluster{{ID: "c", Distance: 1, Representatives: []deploy.Node{node}}}
	refs := deploy.Refs(clusters)
	ctl := deploy.NewController(report.New(), nil)
	plan := ctl.PlanFor(deploy.PolicyBalanced, clusters)

	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(PlanRecord(plan, refs, "v1"))
	j.Append(Record{Type: RecStageStart, Stage: 0})
	j.Append(Record{Type: RecFix, Stage: 0, UpgradeID: "v2", PrevID: "v1", Round: 1})
	j.Close()

	// Without a release store the engine refuses: resuming with v1 would
	// regress members the journal moved to v2.
	eng := &Engine{Controller: ctl, Path: path, Resume: true}
	if _, err := eng.Deploy(context.Background(), deploy.PolicyBalanced, testUpgrade("v1"), clusters); err == nil || !strings.Contains(err.Error(), "Rebuild") {
		t.Fatalf("err = %v, want rebuild refusal", err)
	}

	// With one, the resumed rollout continues from the corrected version.
	eng.Rebuild = func(id string) (*pkgmgr.Upgrade, bool) {
		if id == "v2" {
			return testUpgrade("v2"), true
		}
		return nil, false
	}
	out, err := eng.Deploy(context.Background(), deploy.PolicyBalanced, testUpgrade("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.FinalID != "v2" || out.Rounds != 1 || node.ints["v2"] != 1 || node.ints["v1"] != 0 {
		t.Fatalf("outcome = %+v, node = %+v", out, node.ints)
	}
}

func TestResumeRefusesSealedJournal(t *testing.T) {
	clusters, _ := twoClusterFleet()
	refs := deploy.Refs(clusters)
	plan := staging.BuildPlan(staging.PolicyBalanced, refs, 0)
	records := []Record{
		PlanRecord(plan, refs, "v1"),
		{Type: RecComplete, Stage: -1, UpgradeID: "v1"},
	}
	for i := range records {
		records[i].Seq = i + 1
	}
	if _, err := Resume(records, plan, refs); err == nil || !strings.Contains(err.Error(), "sealed") {
		t.Fatalf("resumed a sealed journal: %v", err)
	}
}

func TestResumeRestoresOutcomeCounters(t *testing.T) {
	clusters, _ := twoClusterFleet()
	refs := deploy.Refs(clusters)
	plan := staging.BuildPlan(staging.PolicyBalanced, refs, 0)
	records := []Record{
		PlanRecord(plan, refs, "v1"),
		{Type: RecTested, Stage: 0, Node: "near-rep", Cluster: "near", UpgradeID: "v1", Success: false},
		{Type: RecFix, Stage: 0, UpgradeID: "v2", PrevID: "v1", Round: 1},
		{Type: RecTested, Stage: 0, Node: "near-rep", Cluster: "near", UpgradeID: "v2", Success: true},
		{Type: RecIntegrated, Stage: 0, Node: "near-rep", Cluster: "near", UpgradeID: "v2"},
	}
	for i := range records {
		records[i].Seq = i + 1
	}
	cur, err := Resume(records, plan, refs)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Overhead != 1 || cur.FinalID != "v2" {
		t.Fatalf("cursor = %+v, want overhead 1 / final v2", cur)
	}
	if cur.NodeTests["near-rep"] != 2 || cur.NodeFailures["near-rep"] != 1 {
		t.Fatalf("near-rep counters = %d/%d", cur.NodeTests["near-rep"], cur.NodeFailures["near-rep"])
	}
}

func TestResumeRefusesAbandonedJournal(t *testing.T) {
	clusters, _ := twoClusterFleet()
	refs := deploy.Refs(clusters)
	plan := staging.BuildPlan(staging.PolicyBalanced, refs, 0)
	records := []Record{
		PlanRecord(plan, refs, "v1"),
		{Type: RecAbandoned, Stage: 0, UpgradeID: "v1", Round: 10},
	}
	for i := range records {
		records[i].Seq = i + 1
	}
	if _, err := Resume(records, plan, refs); err == nil {
		t.Fatal("resumed an abandoned rollout")
	}
}
