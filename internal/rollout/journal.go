// Package rollout makes a staged deployment a durable, resumable
// artifact instead of an in-memory function call. It layers a
// write-ahead deployment journal and a resume path over the staging
// engine and the live deployment controller:
//
//   - The Journal is an append-only file of JSON records — one plan
//     identity record (policy, seed, upgrade ID, cluster refs, plan hash)
//     followed by every state transition the controller performs (stage
//     started, member tested/integrated/quarantined, fix released, gate
//     passed, abandoned, complete). Appends are crash-safe: each record
//     is one fsynced line, and Load tolerates a torn final line.
//   - Recorder bridges deploy.Observer events into journal records. A
//     record that cannot be persisted halts the plan (write-ahead
//     discipline), which is exactly what makes the journal trustworthy
//     on resume.
//   - Resume replays a journal against a freshly built plan — refusing
//     to resume if the plan hash no longer matches — and returns the
//     deploy.Cursor that lets staging.Execute skip completed stages and
//     already-integrated members.
//   - Engine wires the three around a deploy.Controller: create-or-resume
//     the journal, install recorder and cursor, run the deployment, seal
//     the journal with a completion record.
package rollout

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/staging"
	"repro/internal/telemetry"
)

// Record types, in the order a healthy journal sees them.
const (
	// RecPlan heads every journal: the identity of the plan the journal
	// describes. Resume refuses a journal whose plan hash does not match
	// the freshly built plan.
	RecPlan = "plan"
	// RecStageStart marks a plan stage beginning execution.
	RecStageStart = "stage_start"
	// RecTested records one member validation verdict.
	RecTested = "tested"
	// RecIntegrated records one member integrating an upgrade version.
	RecIntegrated = "integrated"
	// RecQuarantined records a member left behind as unreachable.
	RecQuarantined = "quarantined"
	// RecFix records the vendor releasing a corrected upgrade.
	RecFix = "fix"
	// RecGate records a stage's gate releasing the next stage.
	RecGate = "gate"
	// RecAbandoned records the vendor giving up on the upgrade.
	RecAbandoned = "abandoned"
	// RecComplete seals a journal whose rollout finished.
	RecComplete = "complete"
	// RecDrift records a live-fleet drift event folded mid-rollout: Node
	// is the machine, Cluster the cluster it left, Reason the
	// classification ("migrated", "drifted") plus destination. Drift
	// records are history, not protocol state: replay counts them into
	// the resumed rollout's drift totals but they gate nothing by
	// themselves — the drift policy re-evaluates against the live fleet.
	RecDrift = "drift"

	// Rollback records follow an abandoned record when the fleet is driven
	// back to the baseline. All four are boundary records — each is fsynced
	// before the rollback proceeds, because rollback is exactly the code
	// path where a replayed side effect (re-reverting a member) must be
	// provably unnecessary.

	// RecRollbackStart marks a rollback pass beginning; no member reverts
	// before this record is durable. UpgradeID is the baseline restored,
	// PrevID the version rolled back.
	RecRollbackStart = "rollback_start"
	// RecRolledBack records one member restored to the baseline.
	RecRolledBack = "rolled_back"
	// RecRollbackSkip records a member the rollback left behind
	// (quarantined or unreachable) with the reason.
	RecRollbackSkip = "rollback_skip"
	// RecRollbackDone seals the rollback: the journal's second terminal
	// state — converged on the new version (RecComplete) or verifiably
	// back on the baseline (RecRollbackDone).
	RecRollbackDone = "rollback_complete"
)

// Record is one line of the journal.
type Record struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`

	// Plan identity (RecPlan).
	Policy   string               `json:"policy,omitempty"`
	Seed     uint64               `json:"seed,omitempty"`
	PlanHash string               `json:"plan_hash,omitempty"`
	Clusters []staging.ClusterRef `json:"clusters,omitempty"`

	// State transitions. Stage is the plan stage index, -1 for post-plan
	// work (promoted adaptive waves, final notification).
	Stage     int    `json:"stage"`
	Node      string `json:"node,omitempty"`
	Cluster   string `json:"cluster,omitempty"`
	UpgradeID string `json:"upgrade,omitempty"`
	PrevID    string `json:"prev,omitempty"`
	Success   bool   `json:"success,omitempty"`
	Round     int    `json:"round,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// DefaultGroupWindow is the longest a buffered (group-committed) record
// waits before a background fsync makes it durable.
const DefaultGroupWindow = 5 * time.Millisecond

// Journal is an append-only deployment journal. Every Append is one
// complete JSON line followed by an fsync, so a crash leaves at worst one
// torn trailing line — which Load discards.
//
// AppendBuffered is the group-commit variant: the line is written to the
// file immediately but the fsync is deferred — to the next durable Append
// (whose fsync commits everything before it in one disk flush), or to a
// background flush after GroupWindow. A 100k-member rollout writes two
// records per member; paying one fsync per record is minutes of pure disk
// latency, while one fsync per gate plus a few-millisecond window is the
// same durability where it matters (a gate record is still synced before
// the gate releases, and everything before it rides that sync).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  int

	// GroupWindow bounds how long a buffered record may stay unsynced
	// (0 means DefaultGroupWindow). Read at first buffered append.
	GroupWindow time.Duration

	// Telemetry, when set, receives fsync latency and group-commit batch
	// size observations (nil is a no-op).
	Telemetry *telemetry.Registry

	pending int         // records written but not yet fsynced
	syncErr error       // sticky: a failed background sync poisons the journal
	timer   *time.Timer // armed while pending > 0
	syncs   atomic.Int64
}

// Create truncates (or creates) path and returns an empty journal.
func Create(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("rollout: creating journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Open opens an existing journal for appending and returns its intact
// records. A torn final line (crash mid-append) is truncated away so new
// records land on a clean boundary; the sequence counter continues after
// the last intact record.
func Open(path string) (*Journal, []Record, error) {
	recs, validLen, err := load(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("rollout: opening journal: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("rollout: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("rollout: seeking journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	if n := len(recs); n > 0 {
		j.seq = recs[n-1].Seq
	}
	return j, recs, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append assigns the record the next sequence number and persists it:
// marshal, write one line, fsync. The fsync also commits every record
// still buffered from AppendBuffered — file syncs are not selective, so a
// durable record is a group-commit barrier for free. An error means the
// record is NOT durably recorded and the caller must not act as if it
// were.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.writeLocked(rec); err != nil {
		return err
	}
	return j.syncLocked()
}

// AppendBuffered writes the record without waiting for the disk: it
// becomes durable with the next Append/Sync or when the group window
// expires. A background sync failure is sticky and surfaces on the next
// call — the caller must treat it exactly like a failed Append.
func (j *Journal) AppendBuffered(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.writeLocked(rec); err != nil {
		return err
	}
	if j.timer == nil {
		w := j.GroupWindow
		if w <= 0 {
			w = DefaultGroupWindow
		}
		j.timer = time.AfterFunc(w, j.flushWindow)
	}
	return nil
}

// Sync makes every buffered record durable now.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		if j.syncErr != nil {
			return j.syncErr
		}
		return fmt.Errorf("rollout: journal %s is closed", j.path)
	}
	return j.syncLocked()
}

// Pending returns the number of appended records not yet fsynced — zero
// whenever write-ahead discipline has been settled (after a gate, after
// Sync, after the window flush).
func (j *Journal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pending
}

// Syncs returns the number of fsyncs performed — what makes the group
// commit's batching measurable (records written vs disk flushes paid).
func (j *Journal) Syncs() int64 { return j.syncs.Load() }

// writeLocked marshals and writes one line, assigning the sequence
// number; callers hold j.mu.
func (j *Journal) writeLocked(rec Record) error {
	if j.f == nil {
		return fmt.Errorf("rollout: journal %s is closed", j.path)
	}
	if j.syncErr != nil {
		return j.syncErr
	}
	j.seq++
	rec.Seq = j.seq
	b, err := json.Marshal(rec)
	if err != nil {
		j.seq--
		return fmt.Errorf("rollout: encoding journal record: %w", err)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("rollout: appending to journal: %w", err)
	}
	j.pending++
	return nil
}

// syncLocked fsyncs the file and settles the pending count; callers hold
// j.mu.
func (j *Journal) syncLocked() error {
	batch := j.pending
	t0 := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("rollout: syncing journal: %w", err)
	}
	j.Telemetry.Histogram("mirage_journal_fsync_seconds",
		"Journal fsync latency.", "", 1e-9).With("").ObserveSince(t0)
	j.Telemetry.Histogram("mirage_journal_batch_records",
		"Journal records made durable per fsync (group-commit batch size).", "", 1).With("").Observe(int64(batch))
	j.syncs.Add(1)
	j.pending = 0
	return nil
}

// flushWindow is the group-commit timer callback: it syncs whatever is
// pending and records a failure stickily (the rollout must halt at the
// next record, not discover the loss at resume time).
func (j *Journal) flushWindow() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.timer = nil
	if j.f == nil || j.pending == 0 || j.syncErr != nil {
		return
	}
	if err := j.syncLocked(); err != nil {
		j.syncErr = err
	}
}

// Close syncs any buffered records and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	var serr error
	if j.pending > 0 && j.syncErr == nil {
		serr = j.syncLocked()
	}
	err := j.f.Close()
	j.f = nil
	if serr != nil {
		return serr
	}
	return err
}

// Load reads the journal's intact records. A torn final line — the
// signature of a crash mid-append — is silently discarded; corruption
// anywhere else, or a broken sequence, is an error (the journal cannot be
// trusted for resume).
func Load(path string) ([]Record, error) {
	recs, _, err := load(path)
	return recs, err
}

// load is Load plus the byte length of the intact prefix, which Open uses
// to truncate a torn tail before appending.
func load(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("rollout: reading journal: %w", err)
	}
	defer f.Close()

	var recs []Record
	var validLen, lastLen int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			validLen++ // a bare newline; keep offsets honest
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			// Only the final line may be torn; anything earlier is
			// corruption.
			if sc.Scan() {
				return nil, 0, fmt.Errorf("rollout: journal %s: corrupt record at line %d: %v", path, line, err)
			}
			return recs, validLen, nil
		}
		if want := len(recs) + 1; rec.Seq != want {
			return nil, 0, fmt.Errorf("rollout: journal %s: record %d has seq %d, want %d", path, line, rec.Seq, want)
		}
		recs = append(recs, rec)
		lastLen = int64(len(raw)) + 1
		validLen += lastLen
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("rollout: reading journal %s: %w", path, err)
	}
	// The trailing newline is part of a record's commit. If the file ends
	// exactly at the last record's bytes with no newline, the append was
	// torn mid-write even though the JSON happens to parse — drop it.
	if st, err := f.Stat(); err == nil && validLen > st.Size() && len(recs) > 0 {
		recs = recs[:len(recs)-1]
		validLen -= lastLen
	}
	return recs, validLen, nil
}
