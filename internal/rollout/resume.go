package rollout

import (
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/deploy"
	"repro/internal/staging"
)

// PlanHash fingerprints a plan's identity: the canonical stage/wave
// schedule (which covers policy and ordering), the cluster topology it
// was built from, and the shuffle seed. A journal may only resume a plan
// with the same hash — anything else (clusters re-formed differently,
// policy changed, fleet grew) would replay progress against the wrong
// schedule.
func PlanHash(plan *staging.Plan, refs []staging.ClusterRef) string {
	h := fnv.New64a()
	io.WriteString(h, plan.Describe())
	for _, r := range refs {
		fmt.Fprintf(h, "%s/%d;", r.Name, r.Distance)
	}
	fmt.Fprintf(h, "seed=%d", plan.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}

// PlanRecord builds the identity record that heads every journal.
func PlanRecord(plan *staging.Plan, refs []staging.ClusterRef, upgradeID string) Record {
	return Record{
		Type:      RecPlan,
		Policy:    plan.Policy.String(),
		Seed:      plan.Seed,
		UpgradeID: upgradeID,
		PlanHash:  PlanHash(plan, refs),
		Clusters:  append([]staging.ClusterRef(nil), refs...),
		Stage:     -1,
	}
}

// Recorder translates deployment state transitions into journal records;
// it is the deploy.Observer a journaled controller runs with. An append
// failure propagates back into the controller, which halts the plan —
// progress the journal cannot record must not happen.
type Recorder struct {
	J *Journal
	// Group enables group-committed appends: member-level records (tested,
	// integrated, quarantined, fix) are written immediately but fsynced in
	// batches — by the journal's group window, or by the next boundary
	// record. Boundary records (stage start, gate, abandoned) always sync,
	// and a file sync commits everything written before it, so the
	// write-ahead guarantee that matters is untouched: a gate never
	// releases before every record preceding it is durable. What group
	// commit trades away is only the crash freshness of an unsynced
	// within-stage suffix, and losing those records merely makes resume
	// redo that work — the same window a crash between RPC and fsync
	// always had.
	Group bool
}

// RecordOf translates one deployment state transition into its journal
// record form — the same vocabulary the control-plane API speaks, so a
// journal line and a streamed rollout event are the same JSON shape.
func RecordOf(ev deploy.Event) (Record, error) {
	r := Record{
		Stage:     ev.Stage,
		Node:      ev.Node,
		Cluster:   ev.Cluster,
		UpgradeID: ev.UpgradeID,
		PrevID:    ev.PrevID,
		Success:   ev.Success,
		Round:     ev.Round,
		Reason:    ev.Reason,
	}
	switch ev.Type {
	case deploy.EventStageStarted:
		r.Type = RecStageStart
	case deploy.EventTested:
		r.Type = RecTested
	case deploy.EventIntegrated:
		r.Type = RecIntegrated
	case deploy.EventQuarantined:
		r.Type = RecQuarantined
	case deploy.EventFixReleased:
		r.Type = RecFix
	case deploy.EventGatePassed:
		r.Type = RecGate
	case deploy.EventAbandoned:
		r.Type = RecAbandoned
	case deploy.EventRollbackStarted:
		r.Type = RecRollbackStart
	case deploy.EventRolledBack:
		r.Type = RecRolledBack
	case deploy.EventRollbackSkipped:
		r.Type = RecRollbackSkip
	case deploy.EventRollbackCompleted:
		r.Type = RecRollbackDone
	default:
		return Record{}, fmt.Errorf("rollout: unknown deploy event type %d", ev.Type)
	}
	return r, nil
}

// OnEvent implements deploy.Observer.
func (rec *Recorder) OnEvent(ev deploy.Event) error {
	r, err := RecordOf(ev)
	if err != nil {
		return err
	}
	if rec.Group {
		switch r.Type {
		case RecStageStart, RecGate, RecAbandoned,
			RecRollbackStart, RecRolledBack, RecRollbackSkip, RecRollbackDone:
			// Boundary records sync (committing the batch before them);
			// everything else rides a later sync or the group window.
			// Every rollback record is a boundary: a member must never
			// revert before the record of the previous revert is durable.
			return rec.J.Append(r)
		default:
			return rec.J.AppendBuffered(r)
		}
	}
	return rec.J.Append(r)
}

// Resume replays journal records against a freshly built plan for the
// same deployment and returns the cursor that lets the controller skip
// completed work: gated stages release immediately, integrated members
// are never re-tested or re-integrated, quarantined members stay
// quarantined, and the debugging round counter and current upgrade ID
// pick up where the journal ended. It refuses journals whose plan hash
// does not match the plan (the topology or policy changed), journals
// that record an abandoned rollout, and sealed journals (the rollout
// completed — rerunning it is an operator mistake worth naming).
func Resume(records []Record, plan *staging.Plan, refs []staging.ClusterRef) (*deploy.Cursor, error) {
	cur, term, err := replay(records, plan, refs)
	if err != nil {
		return nil, err
	}
	if term != nil {
		if term.Type == RecAbandoned {
			return nil, fmt.Errorf("rollout: journal records the vendor abandoning %s after round %d; an abandoned rollout cannot resume", term.UpgradeID, term.Round)
		}
		return nil, fmt.Errorf("rollout: journal is sealed — the rollout completed with %s deployed; nothing to resume", term.UpgradeID)
	}
	return cur, nil
}

// replay is the raw journal fold: head checks, then every
// state-transition record folded into a cursor, with the terminal record
// (abandoned or complete) returned instead of refused — the entry point
// for rollback resume, where "abandoned" is precisely the state being
// picked up. Rollback records fold too: a rolled-back member's current
// version is the baseline, a skipped member is quarantined.
func replay(records []Record, plan *staging.Plan, refs []staging.ClusterRef) (*deploy.Cursor, *Record, error) {
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("rollout: journal is empty; nothing to resume")
	}
	head := records[0]
	if head.Type != RecPlan {
		return nil, nil, fmt.Errorf("rollout: journal does not start with a plan record (got %q)", head.Type)
	}
	if want := PlanHash(plan, refs); head.PlanHash != want {
		return nil, nil, fmt.Errorf("rollout: journal plan hash %s does not match the rebuilt plan %s (policy %s, %d clusters) — refusing to resume against a different schedule",
			head.PlanHash, want, plan.Policy, len(refs))
	}
	cur := &deploy.Cursor{
		UpgradeID:    head.UpgradeID,
		Integrated:   make(map[string]string),
		Quarantined:  make(map[string]bool),
		Unclean:      make(map[string]bool),
		NodeTests:    make(map[string]int),
		NodeFailures: make(map[string]int),
	}
	var term *Record
	for i := range records[1:] {
		r := records[1+i]
		switch r.Type {
		case RecGate:
			// Stages gate strictly in order; count the contiguous prefix.
			if r.Stage == cur.DoneStages {
				cur.DoneStages++
			}
		case RecTested:
			cur.NodeTests[r.Node]++
			if !r.Success {
				cur.NodeFailures[r.Node]++
				cur.Overhead++
				cur.Unclean[r.Cluster] = true
			}
		case RecIntegrated:
			cur.Integrated[r.Node] = r.UpgradeID
			cur.FinalID = r.UpgradeID
		case RecQuarantined:
			cur.Quarantined[r.Node] = true
			cur.Unclean[r.Cluster] = true
		case RecFix:
			cur.Rounds = r.Round
			cur.UpgradeID = r.UpgradeID
		case RecAbandoned, RecComplete:
			term = &records[1+i]
		case RecRolledBack:
			cur.Integrated[r.Node] = r.UpgradeID
		case RecRollbackSkip:
			cur.Quarantined[r.Node] = true
		}
	}
	return cur, term, nil
}

// RollbackState is the journal's view of a rollback pass — what a resume
// must not redo.
type RollbackState struct {
	// Started: a durable rollback_start exists; the pass is resumable.
	Started bool
	// Done: the rollback_complete seal exists; the journal is terminal.
	Done bool
	// BaselineID is the version the fleet is being driven back to; PrevID
	// the version rolled back.
	BaselineID, PrevID string
	// Reverted members are verifiably on the baseline and are never
	// touched again by a resumed rollback.
	Reverted map[string]bool
	// Skipped maps left-behind members to the journaled reason.
	Skipped map[string]string
}

// RollbackOf extracts the rollback state from journal records, or nil if
// no rollback ever started.
func RollbackOf(records []Record) *RollbackState {
	var rb *RollbackState
	for _, r := range records {
		switch r.Type {
		case RecRollbackStart:
			// A resumed rollback journals a fresh start record; the members
			// already durably reverted stay reverted, so accumulate rather
			// than reset — otherwise a twice-crashed rollback would forget
			// the first attempt's facts and revert those members again.
			if rb == nil {
				rb = &RollbackState{Reverted: map[string]bool{}, Skipped: map[string]string{}}
			}
			rb.Started = true
			rb.BaselineID = r.UpgradeID
			rb.PrevID = r.PrevID
		case RecRolledBack:
			if rb != nil {
				rb.Reverted[r.Node] = true
			}
		case RecRollbackSkip:
			if rb != nil {
				rb.Skipped[r.Node] = r.Reason
			}
		case RecRollbackDone:
			if rb != nil {
				rb.Done = true
			}
		}
	}
	return rb
}
