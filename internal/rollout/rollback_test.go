package rollout

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
)

// failNode is a countingNode that fails validation of the named upgrade.
type failNode struct {
	*countingNode
	failOn string
}

func (n *failNode) TestUpgrade(ctx context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	rep, err := n.countingNode.TestUpgrade(ctx, up)
	if err == nil && up.ID == n.failOn {
		rep.Success = false
		rep.FailedApps = []string{"app"}
		rep.Reasons = []string{"crash"}
	}
	return rep, err
}

// abandoningFleet is the two-cluster fleet with the whole far cluster
// failing v1: the near cluster integrates, then the vendor (with no
// fixer) abandons.
func abandoningFleet() ([]*deploy.Cluster, map[string]*countingNode) {
	nodes := make(map[string]*countingNode)
	mk := func(name string, fail bool) deploy.Node {
		n := newCountingNode(name)
		nodes[name] = n
		if fail {
			return &failNode{countingNode: n, failOn: "v1"}
		}
		return n
	}
	clusters := []*deploy.Cluster{
		{ID: "near", Distance: 1,
			Representatives: []deploy.Node{mk("near-rep", false)},
			Others:          []deploy.Node{mk("near-1", false), mk("near-2", false)}},
		{ID: "far", Distance: 9,
			Representatives: []deploy.Node{mk("far-rep", true)},
			Others:          []deploy.Node{mk("far-1", true), mk("far-2", true)}},
	}
	return clusters, nodes
}

// TestAutoRollbackSealsJournal: an armed engine rolls the integrated
// members back when the rollout is abandoned, seals the journal with
// rollback_complete, and the sealed journal refuses both resume and a
// second rollback.
func TestAutoRollbackSealsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rollout.journal")
	clusters, nodes := abandoningFleet()
	eng := &Engine{
		Controller:   deploy.NewController(report.New(), nil),
		Path:         path,
		Baseline:     testUpgrade("v0"),
		AutoRollback: true,
	}
	out, err := eng.Deploy(context.Background(), deploy.PolicyBalanced, testUpgrade("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned || !out.RolledBack || out.Rollback == nil {
		t.Fatalf("outcome = %+v, want abandoned+rolled back", out)
	}

	records, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rb := RollbackOf(records)
	if rb == nil || !rb.Started || !rb.Done || rb.BaselineID != "v0" {
		t.Fatalf("journal rollback state = %+v", rb)
	}
	if last := records[len(records)-1]; last.Type != RecRollbackDone {
		t.Fatalf("journal tail = %s, want %s", last.Type, RecRollbackDone)
	}
	// The members that integrated v1 were each driven back to v0 exactly
	// once; the far cluster never left the baseline.
	for name, n := range nodes {
		want := 0
		if n.ints["v1"] > 0 {
			want = 1
		}
		if got := n.ints["v0"]; got != want {
			t.Fatalf("%s reverted %d times, want %d", name, got, want)
		}
	}
	if len(rb.Reverted) == 0 {
		t.Fatal("no reverts journaled")
	}

	// Sealed: resuming the journal is refused, as is rolling back again.
	resume := &Engine{Controller: eng.Controller, Path: path, Resume: true,
		Baseline: testUpgrade("v0"), AutoRollback: true}
	if _, err := resume.Deploy(context.Background(), deploy.PolicyBalanced, testUpgrade("v1"), clusters); err == nil ||
		!strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("resume of sealed journal: %v", err)
	}
	if _, err := eng.Rollback(context.Background(), deploy.PolicyBalanced, clusters); err == nil ||
		!strings.Contains(err.Error(), "completed rollback") {
		t.Fatalf("second rollback: %v", err)
	}
}

// TestRollbackCrashResumeDoesNotRevertTwice is the WAL-discipline proof:
// kill the vendor after the first member's rolled_back record is durable,
// resume from the journal, and the journaled member must not be reverted
// again — only the members whose records never landed are driven back,
// and the journal still ends in rollback_complete.
func TestRollbackCrashResumeDoesNotRevertTwice(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")

	// Phase 1: a complete abandoned+rolled-back run, for its journal.
	clusters, _ := abandoningFleet()
	eng := &Engine{
		Controller:   deploy.NewController(report.New(), nil),
		Path:         full,
		Baseline:     testUpgrade("v0"),
		AutoRollback: true,
	}
	if _, err := eng.Deploy(context.Background(), deploy.PolicyBalanced, testUpgrade("v1"), clusters); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: truncate the journal right after the FIRST
	// rolled_back record — one member's revert is durable, the rest of
	// the rollback never happened.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	cut := -1
	for i, ln := range lines {
		if strings.Contains(ln, `"type":"`+RecRolledBack+`"`) {
			cut = i
			break
		}
	}
	if cut < 0 {
		t.Fatal("no rolled_back record in the journal")
	}
	trunc := filepath.Join(dir, "crashed.journal")
	if err := os.WriteFile(trunc, []byte(strings.Join(lines[:cut+1], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	rbBefore := RollbackOf(mustLoad(t, trunc))
	if rbBefore == nil || !rbBefore.Started || rbBefore.Done || len(rbBefore.Reverted) != 1 {
		t.Fatalf("truncated journal rollback state = %+v", rbBefore)
	}
	var survivor string
	for name := range rbBefore.Reverted {
		survivor = name
	}

	// Phase 2: a fresh identical fleet (all counters zero) resumes the
	// crashed journal. The engine must finish the rollback.
	clusters2, nodes2 := abandoningFleet()
	resume := &Engine{
		Controller:   deploy.NewController(report.New(), nil),
		Path:         trunc,
		Resume:       true,
		Baseline:     testUpgrade("v0"),
		AutoRollback: true,
	}
	out, err := resume.Deploy(context.Background(), deploy.PolicyBalanced, testUpgrade("v1"), clusters2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.RolledBack || out.Rollback == nil {
		t.Fatalf("resumed outcome = %+v, want rolled back", out)
	}

	// The journaled member was never touched again; the others reverted
	// exactly once.
	if got := nodes2[survivor].ints["v0"]; got != 0 {
		t.Fatalf("journaled member %s re-reverted %d times", survivor, got)
	}
	reverted := map[string]bool{}
	for _, name := range out.Rollback.Reverted {
		reverted[name] = true
	}
	if !reverted[survivor] {
		t.Fatalf("journaled member %s missing from the resumed outcome: %v", survivor, out.Rollback.Reverted)
	}
	for _, name := range out.Rollback.Reverted {
		want := 1
		if name == survivor {
			want = 0
		}
		if got := nodes2[name].ints["v0"]; got != want {
			t.Fatalf("%s reverted %d times on resume, want %d", name, got, want)
		}
	}

	// The resumed journal is sealed: terminal state preserved end to end.
	records := mustLoad(t, trunc)
	if last := records[len(records)-1]; last.Type != RecRollbackDone {
		t.Fatalf("resumed journal tail = %s, want %s", last.Type, RecRollbackDone)
	}
	rbAfter := RollbackOf(records)
	if rbAfter == nil || !rbAfter.Done || !rbAfter.Reverted[survivor] {
		t.Fatalf("resumed journal rollback state = %+v", rbAfter)
	}
}

// TestManualRollbackAfterAbandon: without AutoRollback an abandoned
// journal refuses to resume, and Engine.Rollback is the operator's way
// to unwind it.
func TestManualRollbackAfterAbandon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rollout.journal")
	clusters, nodes := abandoningFleet()
	ctl := deploy.NewController(report.New(), nil)
	eng := &Engine{Controller: ctl, Path: path, Baseline: testUpgrade("v0")}
	out, err := eng.Deploy(context.Background(), deploy.PolicyBalanced, testUpgrade("v1"), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned || out.RolledBack {
		t.Fatalf("outcome = %+v, want abandoned without rollback", out)
	}

	resume := &Engine{Controller: ctl, Path: path, Resume: true}
	if _, err := resume.Deploy(context.Background(), deploy.PolicyBalanced, testUpgrade("v1"), clusters); err == nil ||
		!strings.Contains(err.Error(), "abandoned") {
		t.Fatalf("resume of abandoned journal: %v", err)
	}

	rout, err := eng.Rollback(context.Background(), deploy.PolicyBalanced, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if !rout.RolledBack || rout.Rollback == nil || len(rout.Rollback.Reverted) == 0 {
		t.Fatalf("manual rollback outcome = %+v", rout)
	}
	for _, name := range rout.Rollback.Reverted {
		if got := nodes[name].ints["v0"]; got != 1 {
			t.Fatalf("%s reverted %d times, want 1", name, got)
		}
	}
	if recs := mustLoad(t, path); recs[len(recs)-1].Type != RecRollbackDone {
		t.Fatalf("journal tail = %s", recs[len(recs)-1].Type)
	}
}

func mustLoad(t *testing.T, path string) []Record {
	t.Helper()
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}
