package telemetry

import (
	"sort"
	"sync"
	"time"
)

// SpanID identifies a span within one Trace; 0 is "no span".
type SpanID uint64

// Span is one timed operation in a rollout's span tree. Kinds in use:
// "rollout", "admission-wait", "stage", "wave", "gate-wait", "test",
// "integrate", "rollback", "budget-wait", "backoff", "rpc". Node names
// the fleet member the span ran against ("" for control-plane spans) and
// doubles as the span's lane in the Chrome export. Times are nanoseconds
// relative to the trace start.
type Span struct {
	ID      SpanID `json:"id"`
	Parent  SpanID `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Name    string `json:"name,omitempty"`
	Node    string `json:"node,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Bytes   int64  `json:"bytes,omitempty"`
	Err     string `json:"err,omitempty"`
	Open    bool   `json:"open,omitempty"`
}

// Trace records one rollout's spans. Completed spans land in a bounded
// ring: once max spans have completed, each new completion overwrites
// the oldest, so a 100k-member rollout keeps its most recent window
// instead of growing without bound (Dropped counts the overwritten).
// All methods are nil-safe.
type Trace struct {
	id    string
	start time.Time
	max   int

	mu      sync.Mutex
	nextID  SpanID
	open    map[SpanID]*Span
	ring    []Span
	ringPos int
	dropped int64
}

// ID returns the rollout ID the trace records.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Begin starts a span under parent (0 for a root) and returns its ID.
func (t *Trace) Begin(parent SpanID, kind, name, node string) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	t.open[id] = &Span{
		ID: id, Parent: parent, Kind: kind, Name: name, Node: node,
		StartNS: time.Since(t.start).Nanoseconds(),
	}
	return id
}

// End completes a span; err ("" when nil) is recorded on it.
func (t *Trace) End(id SpanID, err error) { t.EndBytes(id, 0, err) }

// EndBytes completes a span carrying a byte count (RPC frame bytes).
func (t *Trace) EndBytes(id SpanID, bytes int64, err error) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.open[id]
	if s == nil {
		return
	}
	delete(t.open, id)
	s.DurNS = time.Since(t.start).Nanoseconds() - s.StartNS
	s.Bytes = bytes
	if err != nil {
		s.Err = err.Error()
	}
	if len(t.ring) < t.max {
		t.ring = append(t.ring, *s)
		return
	}
	t.ring[t.ringPos] = *s
	t.ringPos = (t.ringPos + 1) % t.max
	t.dropped++
}

// TraceSnapshot is the exportable state of a trace: all retained spans
// sorted by start time (open spans included, flagged Open).
type TraceSnapshot struct {
	RolloutID string    `json:"rollout_id"`
	Start     time.Time `json:"start"`
	Dropped   int64     `json:"dropped_spans,omitempty"`
	Spans     []Span    `json:"spans"`
}

// Snapshot copies the retained spans.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, 0, len(t.ring)+len(t.open))
	spans = append(spans, t.ring...)
	now := time.Since(t.start).Nanoseconds()
	for _, s := range t.open {
		cp := *s
		cp.DurNS = now - cp.StartNS
		cp.Open = true
		spans = append(spans, cp)
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].ID < spans[j].ID
	})
	return TraceSnapshot{RolloutID: t.id, Start: t.start, Dropped: t.dropped, Spans: spans}
}

// Tracer owns the per-rollout traces a control plane retains: at most
// MaxTraces rollouts (oldest evicted) of at most MaxSpans completed
// spans each. The zero value is ready to use with the defaults; a nil
// *Tracer disables tracing entirely.
type Tracer struct {
	MaxSpans  int // completed-span ring per trace (default 16384)
	MaxTraces int // retained rollout traces (default 8)

	mu     sync.Mutex
	traces map[string]*Trace
	order  []string
}

// Start creates (or restarts) the trace for one rollout ID, evicting the
// oldest trace beyond MaxTraces.
func (tr *Tracer) Start(id string) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.traces == nil {
		tr.traces = map[string]*Trace{}
	}
	maxSpans := tr.MaxSpans
	if maxSpans <= 0 {
		maxSpans = 16384
	}
	maxTraces := tr.MaxTraces
	if maxTraces <= 0 {
		maxTraces = 8
	}
	if _, ok := tr.traces[id]; !ok {
		tr.order = append(tr.order, id)
	}
	t := &Trace{id: id, start: time.Now(), max: maxSpans, open: map[SpanID]*Span{}}
	tr.traces[id] = t
	for len(tr.order) > maxTraces {
		delete(tr.traces, tr.order[0])
		tr.order = tr.order[1:]
	}
	return t
}

// Get returns the retained trace for a rollout ID, or nil.
func (tr *Tracer) Get(id string) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.traces[id]
}
