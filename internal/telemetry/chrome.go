package telemetry

import "encoding/json"

// chromeEvent is one entry in the Chrome trace-event format ("X"
// complete events plus "M" thread-name metadata), the subset Perfetto
// and chrome://tracing load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome renders the snapshot in Chrome trace-event format. Lanes (tids)
// map to fleet members: control-plane spans (rollout, stage, wave,
// gate-wait, admission-wait) share lane 0; each node gets its own lane
// in first-seen order, so concurrent members render side by side with
// their test/integrate/budget-wait/rpc spans nested by time containment.
func (s TraceSnapshot) Chrome() ([]byte, error) {
	lanes := map[string]int{"": 0}
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "mirage rollout " + s.RolloutID},
	}, {
		Name: "thread_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "control plane"},
	}}
	for _, sp := range s.Spans {
		lane, ok := lanes[sp.Node]
		if !ok {
			lane = len(lanes)
			lanes[sp.Node] = lane
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: lane,
				Args: map[string]any{"name": sp.Node},
			})
		}
		name := sp.Kind
		if sp.Name != "" {
			name = sp.Kind + " " + sp.Name
		}
		args := map[string]any{"id": sp.ID}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		if sp.Bytes != 0 {
			args["bytes"] = sp.Bytes
		}
		if sp.Err != "" {
			args["err"] = sp.Err
		}
		if sp.Open {
			args["open"] = true
		}
		dur := float64(sp.DurNS) / 1e3
		if dur <= 0 {
			dur = 0.001 // zero-width slices vanish in Perfetto
		}
		events = append(events, chromeEvent{
			Name: name, Cat: sp.Kind, Ph: "X",
			TS: float64(sp.StartNS) / 1e3, Dur: dur,
			PID: 1, TID: lane, Args: args,
		})
	}
	return json.Marshal(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
