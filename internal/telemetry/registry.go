package telemetry

import (
	"sync"
)

// Family is one histogram family: a metric name plus one optional label
// key, with one Histogram per label value. With an empty label key the
// family is a single histogram. scale converts recorded integer values
// to the exposition unit (1e-9 renders nanosecond timings as seconds;
// 1 renders bytes and counts as themselves).
type Family struct {
	name     string
	help     string
	labelKey string
	scale    float64

	mu     sync.RWMutex
	hs     map[string]*Histogram
	single *Histogram
}

// With returns the histogram for one label value, creating it on first
// use. The empty label key ignores value and returns the family's single
// histogram. Callers on hot paths may cache the result.
func (f *Family) With(value string) *Histogram {
	if f == nil {
		return nil
	}
	if f.labelKey == "" {
		return f.single
	}
	f.mu.RLock()
	h := f.hs[value]
	f.mu.RUnlock()
	if h != nil {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h = f.hs[value]; h == nil {
		h = &Histogram{}
		f.hs[value] = h
	}
	return h
}

// Observe records v against one label value.
func (f *Family) Observe(value string, v int64) { f.With(value).Observe(v) }

// CounterFamily is the counter analogue of Family.
type CounterFamily struct {
	name     string
	help     string
	labelKey string

	mu     sync.RWMutex
	cs     map[string]*Counter
	single *Counter
}

// With returns the counter for one label value, creating it on first use.
func (f *CounterFamily) With(value string) *Counter {
	if f == nil {
		return nil
	}
	if f.labelKey == "" {
		return f.single
	}
	f.mu.RLock()
	c := f.cs[value]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.cs[value]; c == nil {
		c = &Counter{}
		f.cs[value] = c
	}
	return c
}

// Registry holds every histogram and counter family a process exposes.
// One registry is created by mirage-vendor (or a test) and threaded to
// the transport server, the orchestrator, each deployment controller and
// each rollout journal; /metrics renders it alongside the gauge/counter
// samples of orchestrator.renderMetrics. A nil *Registry disables all
// instrumentation that hangs off it.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Family
	counters map[string]*CounterFamily
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    map[string]*Family{},
		counters: map[string]*CounterFamily{},
	}
}

// Histogram returns the named histogram family, creating it on first
// use. help, labelKey and scale are fixed by the first caller; later
// calls with the same name return the existing family unchanged.
func (r *Registry) Histogram(name, help, labelKey string, scale float64) *Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.hists[name]; f != nil {
		return f
	}
	if scale == 0 {
		scale = 1
	}
	f := &Family{name: name, help: help, labelKey: labelKey, scale: scale}
	if labelKey == "" {
		f.single = &Histogram{}
	} else {
		f.hs = map[string]*Histogram{}
	}
	r.hists[name] = f
	return f
}

// Counter returns the named counter family, creating it on first use.
func (r *Registry) Counter(name, help, labelKey string) *CounterFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.counters[name]; f != nil {
		return f
	}
	f := &CounterFamily{name: name, help: help, labelKey: labelKey}
	if labelKey == "" {
		f.single = &Counter{}
	} else {
		f.cs = map[string]*Counter{}
	}
	r.counters[name] = f
	return f
}
