package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11}, {1 << 39, 39}, {1<<39 + 1, 40},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 4, 100, 1 << 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Inf != 1 {
		t.Fatalf("inf = %d, want 1", s.Inf)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 2 || s.Counts[7] != 1 {
		t.Fatalf("bucket counts: %v", s.Counts)
	}
	wantSum := int64(1 + 2 + 3 + 4 + 100 + 1<<50)
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	f := r.Histogram("x", "", "op", 1)
	f.Observe("a", 1) // all no-ops, must not panic
	f.With("a").Observe(2)
	f.With("a").Time()()
	r.Counter("y", "", "").With("").Inc()
	var tr *Tracer
	trace := tr.Start("r1")
	id := trace.Begin(0, "rollout", "r1", "")
	trace.End(id, nil)
	if snap := trace.Snapshot(); len(snap.Spans) != 0 {
		t.Fatalf("nil trace snapshot has spans: %v", snap.Spans)
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	lat := r.Histogram("mirage_rpc_latency_seconds", "RPC latency by op.", "op", 1e-9)
	lat.Observe("test", int64(2*time.Millisecond))
	lat.Observe("test", int64(5*time.Millisecond))
	lat.Observe("integrate", int64(100*time.Microsecond))
	r.Histogram("mirage_budget_wait_seconds", "Budget wait.", "", 1e-9).With("").Observe(0)
	r.Counter("mirage_transient_retries_total", "Transient retries.", "op").With("test").Add(3)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE mirage_rpc_latency_seconds histogram",
		"# TYPE mirage_budget_wait_seconds histogram",
		"# TYPE mirage_transient_retries_total counter",
		`mirage_rpc_latency_seconds_bucket{op="test",le="+Inf"} 2`,
		`mirage_rpc_latency_seconds_count{op="test"} 2`,
		`mirage_rpc_latency_seconds_count{op="integrate"} 1`,
		`mirage_budget_wait_seconds_count 1`,
		`mirage_transient_retries_total{op="test"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: 2ms lands at le=2^21ns, 5ms at 2^23 — the
	// final finite bucket of op=test must equal the full count.
	if !strings.Contains(out, `mirage_rpc_latency_seconds_bucket{op="test",le="0.008388608"} 2`) {
		t.Fatalf("cumulative bucket missing:\n%s", out)
	}
	// Deterministic across scrapes.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if out != b2.String() {
		t.Fatal("two scrapes of identical state rendered differently")
	}
}

func TestRenderLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird", "", "k").With("a\\b\"c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `weird{k="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping: got %q, want substring %q", b.String(), want)
	}
}

func TestTraceRing(t *testing.T) {
	tr := &Tracer{MaxSpans: 4, MaxTraces: 2}
	trace := tr.Start("r1")
	root := trace.Begin(0, "rollout", "r1", "")
	for i := 0; i < 10; i++ {
		id := trace.Begin(root, "rpc", "op", "node-a")
		trace.End(id, nil)
	}
	trace.End(root, nil)
	snap := trace.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(snap.Spans))
	}
	if snap.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", snap.Dropped)
	}
	// Eviction: a third trace evicts the first.
	tr.Start("r2")
	tr.Start("r3")
	if tr.Get("r1") != nil {
		t.Fatal("r1 not evicted")
	}
	if tr.Get("r3") == nil {
		t.Fatal("r3 missing")
	}
}

func TestSpanContext(t *testing.T) {
	tr := &Tracer{}
	trace := tr.Start("r1")
	root := trace.Begin(0, "rollout", "r1", "")
	ctx := NewContext(t.Context(), trace, root)

	sctx, end := StartSpan(ctx, "stage", "stage 0", "")
	_, end2 := StartSpan(sctx, "test", "m1", "m1")
	end2(nil)
	end(nil)
	trace.End(root, nil)

	snap := trace.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(snap.Spans), snap.Spans)
	}
	byKind := map[string]Span{}
	for _, s := range snap.Spans {
		byKind[s.Kind] = s
	}
	if byKind["stage"].Parent != byKind["rollout"].ID {
		t.Fatal("stage span not parented to rollout")
	}
	if byKind["test"].Parent != byKind["stage"].ID {
		t.Fatal("test span not parented to stage")
	}
	// No trace in ctx: everything is a no-op.
	_, endNil := StartSpan(t.Context(), "x", "", "")
	endNil(nil)
}

func TestChromeExport(t *testing.T) {
	tr := &Tracer{}
	trace := tr.Start("r9")
	root := trace.Begin(0, "rollout", "r9", "")
	st := trace.Begin(root, "stage", "stage 0", "")
	m := trace.Begin(st, "test", "m1", "m1")
	trace.End(m, nil)
	trace.End(st, nil)
	trace.End(root, nil)

	data, err := trace.Snapshot().Chrome()
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		`"traceEvents"`, `"ph":"M"`, `"ph":"X"`,
		`"mirage rollout r9"`, `"test m1"`, `"stage stage 0"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %q:\n%s", want, out)
		}
	}
}
