package telemetry

import "context"

type ctxKey struct{}

type ctxSpan struct {
	t  *Trace
	id SpanID
}

// NewContext returns ctx carrying a trace and the current span, so
// instrumentation downstream (deploy workers, transport RPCs) attaches
// children without any plumbing through intermediate signatures.
func NewContext(ctx context.Context, t *Trace, id SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxSpan{t, id})
}

// FromContext returns the trace and span carried by ctx (nil, 0 if none).
func FromContext(ctx context.Context) (*Trace, SpanID) {
	if v, ok := ctx.Value(ctxKey{}).(ctxSpan); ok {
		return v.t, v.id
	}
	return nil, 0
}

// StartSpan begins a child of the span carried by ctx and returns a
// derived context carrying it plus the completion function. Without a
// trace in ctx it returns ctx unchanged and a no-op, so callers
// instrument unconditionally.
func StartSpan(ctx context.Context, kind, name, node string) (context.Context, func(err error)) {
	t, parent := FromContext(ctx)
	if t == nil {
		return ctx, func(error) {}
	}
	id := t.Begin(parent, kind, name, node)
	return NewContext(ctx, t, id), func(err error) { t.End(id, err) }
}
