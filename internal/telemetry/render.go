package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// EscapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double-quote and newline. (strconv.Quote is close
// but emits Go escapes like \t that Prometheus parsers reject.)
func EscapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatBound renders a bucket's upper bound in the exposition unit.
func formatBound(bound int64, scale float64) string {
	if scale == 1 {
		return strconv.FormatInt(bound, 10)
	}
	return strconv.FormatFloat(float64(bound)*scale, 'g', -1, 64)
}

// WritePrometheus renders every family in the registry in the Prometheus
// text exposition format: histogram families as cumulative `_bucket`
// samples with `le` bounds plus `_sum` and `_count`, counter families as
// plain samples. Families render sorted by name and label values sorted
// within a family, so consecutive scrapes of the same state are
// byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	hists := make([]*Family, 0, len(r.hists))
	for _, f := range r.hists {
		hists = append(hists, f)
	}
	counters := make([]*CounterFamily, 0, len(r.counters))
	for _, f := range r.counters {
		counters = append(counters, f)
	}
	r.mu.Unlock()

	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	for _, f := range hists {
		f.write(w)
	}
	for _, f := range counters {
		f.write(w)
	}
}

func (f *Family) write(w io.Writer) {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", f.name)
	if f.labelKey == "" {
		f.writeOne(w, "", f.single.Snapshot())
		return
	}
	f.mu.RLock()
	values := make([]string, 0, len(f.hs))
	for v := range f.hs {
		values = append(values, v)
	}
	f.mu.RUnlock()
	sort.Strings(values)
	for _, v := range values {
		f.writeOne(w, v, f.With(v).Snapshot())
	}
}

// writeOne emits the cumulative bucket series for one label value.
// Empty buckets below the first and above the last observation are
// elided (legal: buckets are cumulative and +Inf always closes the
// series), keeping 40-bucket families compact on the wire.
func (f *Family) writeOne(w io.Writer, value string, s HistSnapshot) {
	lo, hi := -1, -1
	for i, c := range s.Counts {
		if c != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	labels := func(extra string) string {
		var parts []string
		if f.labelKey != "" {
			parts = append(parts, f.labelKey+`="`+EscapeLabel(value)+`"`)
		}
		if extra != "" {
			parts = append(parts, extra)
		}
		if len(parts) == 0 {
			return ""
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	cum := int64(0)
	if lo >= 0 {
		for i := lo; i <= hi; i++ {
			cum += s.Counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labels(fmt.Sprintf("le=%q", formatBound(1<<uint(i), f.scale))), cum)
		}
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labels(`le="+Inf"`), cum+s.Inf)
	if f.scale == 1 {
		fmt.Fprintf(w, "%s_sum%s %d\n", f.name, labels(""), s.Sum)
	} else {
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels(""),
			strconv.FormatFloat(float64(s.Sum)*f.scale, 'g', -1, 64))
	}
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels(""), s.Count)
}

func (f *CounterFamily) write(w io.Writer) {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(w, "# TYPE %s counter\n", f.name)
	if f.labelKey == "" {
		fmt.Fprintf(w, "%s %d\n", f.name, f.single.Value())
		return
	}
	f.mu.RLock()
	values := make([]string, 0, len(f.cs))
	for v := range f.cs {
		values = append(values, v)
	}
	f.mu.RUnlock()
	sort.Strings(values)
	for _, v := range values {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", f.name, f.labelKey, EscapeLabel(v), f.With(v).Value())
	}
}
