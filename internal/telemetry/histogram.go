// Package telemetry is Mirage's operational observability layer: an
// allocation-free atomic histogram type rendered as Prometheus histogram
// families, a bounded-ring span tracer that records each rollout as a
// span tree (exported as JSON and as Chrome trace-event format), and the
// Registry that threads both from the orchestrator and the transport
// server down through the deployment controller — one registry per
// vendor process, no per-callsite globals, zero external dependencies.
//
// Not to be confused with internal/trace, which models the paper's §3.3
// syscall traces (what an upgrade does to a user machine). This package
// measures what the deployment system itself does: where a rollout
// spends its time, and what the latency distributions of its hot paths
// look like at fleet scale.
//
// Every type in this package is nil-safe: a nil *Registry, *Family,
// *Histogram, *Tracer or *Trace turns every method into a no-op, so
// instrumented code calls unconditionally and pays nothing when
// telemetry is not wired.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// nBuckets is the number of finite power-of-two buckets. Bucket i has
// upper bound 2^i in the recorded integer unit; with nanosecond timings
// that spans 1ns .. 2^39ns (~9.2 minutes) before the +Inf bucket.
const nBuckets = 40

// bucketIndex returns the smallest i with v <= 1<<i (v > 0), i.e. the
// finite bucket an observation falls in; i >= nBuckets means +Inf.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// Histogram is an allocation-free, lock-free histogram over power-of-two
// buckets. Observations are int64 in a caller-chosen unit (nanoseconds
// for timings, bytes for sizes); the owning Family's scale converts them
// to the exposition unit at render time. All methods are safe for
// concurrent use and safe on a nil receiver.
type Histogram struct {
	counts [nBuckets]atomic.Int64
	inf    atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one observation. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if i := bucketIndex(v); i < nBuckets {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the nanoseconds elapsed since t0 — the
// allocation-free timer idiom: t0 := time.Now(); ...; h.ObserveSince(t0).
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// Time starts a timer and returns the function that stops and records
// it: defer h.Time()(). Allocates one closure; hot paths that cannot
// afford it use ObserveSince directly.
func (h *Histogram) Time() func() {
	t0 := time.Now()
	return func() { h.ObserveSince(t0) }
}

// HistSnapshot is a consistent-enough copy of a histogram's state
// (buckets are read individually; a scrape racing observations may be
// off by in-flight increments, which Prometheus semantics permit).
type HistSnapshot struct {
	Counts [nBuckets]int64 // per-bucket counts, non-cumulative
	Inf    int64
	Sum    int64
	Count  int64
}

// Snapshot copies the current counters.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Inf = h.inf.Load()
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Counter is a monotonic counter (e.g. transient-retry totals).
type Counter struct{ v atomic.Int64 }

// Add increments the counter; nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}
