package profile

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/resource"
)

// fakeSource profiles a fixed machine, optionally failing, and records
// concurrency so tests can assert the pool bound.
type fakeSource struct {
	m    Machine
	err  error
	slow chan struct{} // if non-nil, Profile blocks until closed

	active  *int32
	maxSeen *int32
}

func (f *fakeSource) Name() string { return f.m.Name }

func (f *fakeSource) Profile(_ context.Context, app string, vendor *resource.Set) (Machine, error) {
	if f.active != nil {
		n := atomic.AddInt32(f.active, 1)
		for {
			max := atomic.LoadInt32(f.maxSeen)
			if n <= max || atomic.CompareAndSwapInt32(f.maxSeen, max, n) {
				break
			}
		}
		defer atomic.AddInt32(f.active, -1)
	}
	if f.slow != nil {
		<-f.slow
	}
	if f.err != nil {
		return Machine{}, f.err
	}
	return f.m, nil
}

func set(kind resource.Kind, keys ...string) *resource.Set {
	s := resource.NewSet(len(keys))
	for i, k := range keys {
		s.Add(resource.Item{Key: k, Hash: uint64(i + 1), Kind: kind})
	}
	return s
}

func machineProfile(name string, parsed, content []string, appSet string) Machine {
	return Machine{
		Name:        name,
		ParsedDiff:  set(resource.Parsed, parsed...),
		ContentDiff: set(resource.Content, content...),
		AppSet:      appSet,
	}
}

func TestCollectDeterministicOrderAtAnyParallelism(t *testing.T) {
	var want []string
	mkSources := func() []Source {
		var srcs []Source
		for i := 0; i < 23; i++ {
			name := fmt.Sprintf("m%02d", i)
			srcs = append(srcs, &fakeSource{m: machineProfile(name, []string{"p." + name}, nil, "apps")})
		}
		return srcs
	}
	for i := 0; i < 23; i++ {
		want = append(want, fmt.Sprintf("m%02d", i))
	}
	for _, par := range []int{0, 1, 3, 64} {
		ms, err := Collect(context.Background(), mkSources(), "mysql", resource.NewSet(0), par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var got []string
		for _, m := range ms {
			got = append(got, m.Name)
		}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("parallelism %d: order = %v", par, got)
		}
	}
}

func TestCollectBoundsParallelism(t *testing.T) {
	var active, maxSeen int32
	release := make(chan struct{})
	var srcs []Source
	for i := 0; i < 16; i++ {
		srcs = append(srcs, &fakeSource{
			m:      machineProfile(fmt.Sprintf("m%02d", i), nil, nil, ""),
			slow:   release,
			active: &active, maxSeen: &maxSeen,
		})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := Collect(context.Background(), srcs, "mysql", nil, 4); err != nil {
			t.Errorf("collect: %v", err)
		}
	}()
	// Hold every Profile call blocked until the pool is saturated: all
	// four workers must park inside a source while twelve sources wait —
	// an unbounded implementation would push active past four here.
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt32(&active) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: active = %d", atomic.LoadInt32(&active))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := atomic.LoadInt32(&maxSeen); got != 4 {
		t.Fatalf("max concurrent profiles = %d, want exactly 4", got)
	}
}

func TestCollectErrorNamesFailingSource(t *testing.T) {
	srcs := []Source{
		&fakeSource{m: machineProfile("ok-1", nil, nil, "")},
		&fakeSource{m: machineProfile("bad-early", nil, nil, ""), err: errors.New("disk on fire")},
		&fakeSource{m: machineProfile("bad-late", nil, nil, ""), err: errors.New("also broken")},
	}
	// Concurrent: a failure stops the collection, so whichever failing
	// source ran first is reported — never a healthy one.
	_, err := Collect(context.Background(), srcs, "mysql", nil, 8)
	if err == nil {
		t.Fatal("collect ignored failing source")
	}
	if !strings.Contains(err.Error(), "bad-") {
		t.Fatalf("error does not name a failing source: %v", err)
	}
	if strings.Contains(err.Error(), "ok-1") {
		t.Fatalf("error blames a healthy source: %v", err)
	}
	// Serial: deterministic, the first failing source in order.
	_, err = Collect(context.Background(), srcs, "mysql", nil, 1)
	if err == nil || !strings.Contains(err.Error(), "bad-early") || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("serial error does not name first failing source: %v", err)
	}
}

func TestKeyDistinguishesProfiles(t *testing.T) {
	a := machineProfile("a", []string{"p.x"}, []string{"c.y"}, "apps1")
	b := machineProfile("b", []string{"p.x"}, []string{"c.y"}, "apps1") // same profile, other name
	c := machineProfile("c", []string{"p.x"}, []string{"c.y"}, "apps2") // app set differs
	d := machineProfile("d", []string{"p.x"}, []string{"c.z"}, "apps1") // content differs
	if a.Key() != b.Key() {
		t.Fatal("identical profiles have different keys")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() {
		t.Fatal("distinct profiles share a key")
	}
	if n := Distinct([]Machine{a, b, c, d}); n != 3 {
		t.Fatalf("Distinct = %d, want 3", n)
	}
}

type nullNode struct{ name string }

func (n *nullNode) Name() string                                        { return n.name }
func (n *nullNode) TestUpgrade(context.Context, *pkgmgr.Upgrade) (*report.Report, error) {
	return nil, nil
}
func (n *nullNode) Integrate(context.Context, *pkgmgr.Upgrade) error { return nil }

func TestAssembleSelectsRepsInNameOrder(t *testing.T) {
	clusters := []*cluster.Cluster{
		{ID: 0, Distance: 1, Machines: []string{"a", "b", "c"}},
		{ID: 1, Distance: 4, Machines: []string{"z"}},
	}
	nodes := map[string]deploy.Node{}
	for _, n := range []string{"a", "b", "c", "z"} {
		nodes[n] = &nullNode{name: n}
	}
	dcs, err := Assemble(clusters, 2, func(name string) deploy.Node { return nodes[name] })
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != 2 {
		t.Fatalf("clusters = %d", len(dcs))
	}
	if dcs[0].ID != deploy.ClusterName(0) || dcs[0].Distance != 1 {
		t.Fatalf("cluster 0 = %+v", dcs[0])
	}
	if len(dcs[0].Representatives) != 2 || dcs[0].Representatives[0].Name() != "a" ||
		dcs[0].Representatives[1].Name() != "b" {
		t.Fatalf("reps = %v", dcs[0].Representatives)
	}
	if len(dcs[0].Others) != 1 || dcs[0].Others[0].Name() != "c" {
		t.Fatalf("others = %v", dcs[0].Others)
	}
	// A singleton cluster still gets its (only) member as representative,
	// even with repsPerCluster below one.
	dcs, err = Assemble(clusters[1:], 0, func(name string) deploy.Node { return nodes[name] })
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs[0].Representatives) != 1 || len(dcs[0].Others) != 0 {
		t.Fatalf("singleton assembly = %+v", dcs[0])
	}
}

func TestAssembleRejectsUnknownMachine(t *testing.T) {
	clusters := []*cluster.Cluster{{ID: 0, Machines: []string{"ghost"}}}
	_, err := Assemble(clusters, 1, func(string) deploy.Node { return nil })
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectEmptyFleet(t *testing.T) {
	ms, err := Collect(context.Background(), nil, "mysql", nil, 4)
	if err != nil || len(ms) != 0 {
		t.Fatalf("empty fleet: %v %v", ms, err)
	}
}
