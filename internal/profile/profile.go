// Package profile is Mirage's fleet-profiling layer: it owns the pipeline
// from machine fingerprints to clusters of deployment, exactly as
// internal/staging owns the wave schedule. The front half of the paper's
// clustering subsystem (§3.2.3) — collect every machine's diff against the
// vendor reference, cluster the diffs, pick representatives — used to be
// implemented twice, serially, in internal/core (local fleets) and
// internal/transport (remote fleets). Both now route through this package:
//
//	Source (per machine)  ──Collect──►  []Machine  ──Fingerprints──►
//	cluster.Run  ──Assemble──►  []*deploy.Cluster
//
// Collect fans profile acquisition out on a bounded worker pool — for a
// remote fleet each Profile call is an RPC, so this is what turns fleet
// profiling from O(fleet) round-trip latency into O(fleet/parallelism) —
// while keeping the output order (and therefore the clustering input and
// every downstream ID) fully deterministic.
package profile

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/resource"
)

// Machine is one machine's profiling record: its name, the per-kind diffs
// of its item set against the vendor reference, the canonical installed
// application-set key, and (via Key) a stable content signature of the
// whole profile used to deduplicate identical machines.
type Machine struct {
	Name        string
	ParsedDiff  *resource.Set // parsed items differing from the vendor
	ContentDiff *resource.Set // content items differing from the vendor
	AppSet      string        // canonical installed-application key
}

// Key is the content signature of a profile: two machines with equal keys
// have (up to hash collision) identical parsed diffs, content diffs and
// application sets, and are therefore interchangeable for clustering.
type Key struct {
	Parsed  uint64
	Content uint64
	AppSet  string
}

// Key returns the profile's content signature.
func (m Machine) Key() Key {
	return Key{
		Parsed:  m.ParsedDiff.Signature(),
		Content: m.ContentDiff.Signature(),
		AppSet:  m.AppSet,
	}
}

// Fingerprint converts the profile into the clustering algorithm's input
// record.
func (m Machine) Fingerprint() cluster.MachineFingerprint {
	return cluster.MachineFingerprint{
		Name:        m.Name,
		ParsedDiff:  m.ParsedDiff,
		ContentDiff: m.ContentDiff,
		AppSet:      m.AppSet,
	}
}

// New computes a profile from a machine's full item set, the vendor
// reference set, and the application-set key. The diff-and-split rule is
// cluster.NewMachineFingerprint's, not a copy of it.
func New(name string, own, vendor *resource.Set, appSet string) Machine {
	return FromFingerprint(cluster.NewMachineFingerprint(name, own, vendor, appSet))
}

// FromFingerprint converts a clustering input record into a profile.
func FromFingerprint(fp cluster.MachineFingerprint) Machine {
	return Machine{
		Name:        fp.Name,
		ParsedDiff:  fp.ParsedDiff,
		ContentDiff: fp.ContentDiff,
		AppSet:      fp.AppSet,
	}
}

// Source yields one machine's profile against a vendor reference.
// core.UserMachine implements it by fingerprinting in-process; the
// transport server's agent handles implement it with a fingerprint RPC.
// Collect may call Profile on different sources concurrently, so
// implementations must not share mutable state across sources. The
// context carries the collection's cancellation; sources doing I/O
// should abort promptly when it is done.
type Source interface {
	// Name identifies the machine the source profiles.
	Name() string
	// Profile computes the machine's diff profile against the vendor
	// reference set for app.
	Profile(ctx context.Context, app string, vendor *resource.Set) (Machine, error)
}

// DefaultParallelism is the worker-pool size Collect uses when the caller
// passes parallelism <= 0.
const DefaultParallelism = 8

// Collect gathers one profile per source. Profile calls run concurrently
// on a pool of min(parallelism, len(sources)) workers (parallelism <= 0
// means DefaultParallelism, 1 means serial), but the returned slice is
// always in source order, so the clustering input — and every cluster ID
// derived from it — is identical at any pool size. A failure stops the
// collection: sources not yet started are skipped (at fleet scale each
// Profile call is an RPC; issuing thousands after the outcome is already
// an error would waste the whole fleet's work), and Collect reports the
// earliest-ordered failure among the sources that ran, naming the source.
// Cancelling ctx stops the collection the same way a source failure does:
// sources not yet started are skipped and Collect returns ctx.Err().
func Collect(ctx context.Context, sources []Source, app string, vendor *resource.Set, parallelism int) ([]Machine, error) {
	if parallelism <= 0 {
		parallelism = DefaultParallelism
	}
	if parallelism > len(sources) {
		parallelism = len(sources)
	}
	out := make([]Machine, len(sources))
	errs := make([]error, len(sources))
	var failed atomic.Bool
	if parallelism <= 1 {
		for i, src := range sources {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if out[i], errs[i] = src.Profile(ctx, app, vendor); errs[i] != nil {
				break
			}
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < parallelism; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if failed.Load() || ctx.Err() != nil {
						continue
					}
					out[i], errs[i] = sources[i].Profile(ctx, app, vendor)
					if errs[i] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		for i := range sources {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("profile: collecting %s from %s: %w", app, sources[i].Name(), err)
		}
	}
	return out, nil
}

// Fingerprints converts collected profiles into clustering inputs,
// preserving order.
func Fingerprints(ms []Machine) []cluster.MachineFingerprint {
	fps := make([]cluster.MachineFingerprint, len(ms))
	for i, m := range ms {
		fps[i] = m.Fingerprint()
	}
	return fps
}

// Distinct counts the distinct profiles among ms — the number of weighted
// candidates the multiplicity-aware clustering phase actually works on.
func Distinct(ms []Machine) int {
	seen := make(map[Key]bool, len(ms))
	for _, m := range ms {
		seen[m.Key()] = true
	}
	return len(seen)
}

// Assemble turns the clustering result into clusters of deployment:
// for each cluster, the first repsPerCluster members in name order become
// representatives (at least one) and the rest Others. node resolves a
// member name to its deploy.Node — a local user machine or a remote agent
// handle; Assemble fails if any clustered machine has no node. Cluster
// member lists arrive from cluster.Run already name-sorted, so assembly is
// a single ordered pass.
func Assemble(clusters []*cluster.Cluster, repsPerCluster int, node func(name string) deploy.Node) ([]*deploy.Cluster, error) {
	if repsPerCluster < 1 {
		repsPerCluster = 1
	}
	out := make([]*deploy.Cluster, 0, len(clusters))
	for _, c := range clusters {
		dc := &deploy.Cluster{
			ID:       deploy.ClusterName(c.ID),
			Distance: c.Distance,
		}
		for i, name := range c.Machines {
			n := node(name)
			if n == nil {
				return nil, fmt.Errorf("profile: clustered machine %q has no deployment node", name)
			}
			if i < repsPerCluster {
				dc.Representatives = append(dc.Representatives, n)
			} else {
				dc.Others = append(dc.Others, n)
			}
		}
		out = append(out, dc)
	}
	return out, nil
}
