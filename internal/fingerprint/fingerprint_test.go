package fingerprint

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRabinDeterministic(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, repeatedly and deterministically")
	a := Fingerprint(data)
	b := Fingerprint(data)
	if a != b {
		t.Fatalf("Fingerprint not deterministic: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("Fingerprint of non-empty data is zero")
	}
}

func TestRabinDistinguishes(t *testing.T) {
	a := Fingerprint([]byte("configuration value = 1"))
	b := Fingerprint([]byte("configuration value = 2"))
	if a == b {
		t.Fatal("single-byte change did not alter fingerprint")
	}
}

func TestRabinWindowed(t *testing.T) {
	// Once the window has fully slid past a prefix, the fingerprint must
	// depend only on the last WindowSize bytes.
	suffix := make([]byte, WindowSize)
	for i := range suffix {
		suffix[i] = byte(i * 7)
	}
	r1 := NewRabin(0)
	for _, b := range append([]byte("prefix-one-that-is-long-enough-to-matter"), suffix...) {
		r1.Roll(b)
	}
	r2 := NewRabin(0)
	for _, b := range append([]byte("a totally different and longer prefix, twice as long as the other"), suffix...) {
		r2.Roll(b)
	}
	if r1.Sum() != r2.Sum() {
		t.Fatalf("windowed fingerprint depends on bytes outside the window: %x vs %x", r1.Sum(), r2.Sum())
	}
}

func TestRabinReset(t *testing.T) {
	r := NewRabin(0)
	for _, b := range []byte("some data") {
		r.Roll(b)
	}
	r.Reset()
	if r.Sum() != 0 {
		t.Fatalf("Sum after Reset = %x, want 0", r.Sum())
	}
}

func TestDegree(t *testing.T) {
	if d := degree(DefaultPoly); d != 53 {
		t.Fatalf("degree(DefaultPoly) = %d, want 53", d)
	}
	if d := degree(0x11B); d != 8 {
		t.Fatalf("degree(0x11B) = %d, want 8", d)
	}
}

func TestChunkerCoversInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 100_000)
	rng.Read(data)
	c := NewChunker(0, 0, 0)
	chunks := c.Split(data)
	off := 0
	for i, ch := range chunks {
		if ch.Offset != off {
			t.Fatalf("chunk %d offset = %d, want %d", i, ch.Offset, off)
		}
		if ch.Length <= 0 {
			t.Fatalf("chunk %d has non-positive length %d", i, ch.Length)
		}
		if ch.Length > DefaultMaxSize {
			t.Fatalf("chunk %d length %d exceeds max %d", i, ch.Length, DefaultMaxSize)
		}
		off += ch.Length
	}
	if off != len(data) {
		t.Fatalf("chunks cover %d bytes, want %d", off, len(data))
	}
}

func TestChunkerAverageSize(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 1_000_000)
	rng.Read(data)
	c := NewChunker(0, 0, 0)
	chunks := c.Split(data)
	avg := len(data) / len(chunks)
	// With min/max clamping the realised average sits near the target.
	if avg < DefaultAvgSize/2 || avg > DefaultAvgSize*2 {
		t.Fatalf("average chunk size %d too far from target %d", avg, DefaultAvgSize)
	}
}

func TestChunkerLocality(t *testing.T) {
	// Content-defined chunking must localise the effect of an edit: chunks
	// far after a changed byte keep their hashes (offsets shift, content
	// does not). We verify that the *multiset* of chunk hashes mostly
	// survives a one-byte insertion near the start.
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 200_000)
	rng.Read(data)
	edited := append([]byte{0xAB}, data...)

	c := NewChunker(0, 0, 0)
	before := c.HashChunks(data)
	after := c.HashChunks(edited)

	count := func(hs []uint64) map[uint64]int {
		m := make(map[uint64]int, len(hs))
		for _, h := range hs {
			m[h]++
		}
		return m
	}
	bm, am := count(before), count(after)
	shared := 0
	for h, n := range bm {
		if an := am[h]; an > 0 {
			if an < n {
				shared += an
			} else {
				shared += n
			}
		}
	}
	if frac := float64(shared) / float64(len(before)); frac < 0.9 {
		t.Fatalf("only %.0f%% of chunks survive a 1-byte insertion; CDC locality broken", frac*100)
	}
}

func TestChunkerSmallInput(t *testing.T) {
	c := NewChunker(0, 0, 0)
	if got := c.Split(nil); len(got) != 0 {
		t.Fatalf("Split(nil) = %d chunks, want 0", len(got))
	}
	one := c.Split([]byte{1})
	if len(one) != 1 || one[0].Length != 1 {
		t.Fatalf("Split of 1 byte = %+v, want single 1-byte chunk", one)
	}
}

func TestChunkerPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct{ avg, min, max int }{
		{avg: 3000, min: 0, max: 0}, // not a power of two
		{avg: 4096, min: 8192, max: 16384},
		{avg: 4096, min: 512, max: 2048},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewChunker(%d,%d,%d) did not panic", tc.avg, tc.min, tc.max)
				}
			}()
			NewChunker(tc.avg, tc.min, tc.max)
		}()
	}
}

func TestHashBytesStable(t *testing.T) {
	if HashBytes([]byte("x")) != HashBytes([]byte("x")) {
		t.Fatal("HashBytes not stable")
	}
	if HashBytes([]byte("x")) == HashBytes([]byte("y")) {
		t.Fatal("HashBytes collision on trivial inputs")
	}
	if HashString("abc") != HashBytes([]byte("abc")) {
		t.Fatal("HashString disagrees with HashBytes")
	}
}

func TestFormatHashWidth(t *testing.T) {
	if got := FormatHash(0); got != "0000000000000000" {
		t.Fatalf("FormatHash(0) = %q", got)
	}
	if got := FormatHash(0xdeadbeef); len(got) != 16 {
		t.Fatalf("FormatHash length = %d, want 16", len(got))
	}
}

func TestCombineHashesOrderSensitive(t *testing.T) {
	if CombineHashes(1, 2) == CombineHashes(2, 1) {
		t.Fatal("CombineHashes is order-insensitive")
	}
	if CombineHashes() != CombineHashes() {
		t.Fatal("CombineHashes() not stable")
	}
}

// Property: chunking any input covers it exactly, and re-chunking yields
// identical results.
func TestChunkerProperties(t *testing.T) {
	c := NewChunker(0, 0, 0)
	f := func(data []byte) bool {
		a := c.Split(data)
		b := c.Split(data)
		if len(a) != len(b) {
			return false
		}
		total := 0
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			total += a[i].Length
		}
		return total == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the rolling fingerprint of data equals the one-shot fingerprint.
func TestRollingMatchesOneShot(t *testing.T) {
	f := func(data []byte) bool {
		r := NewRabin(0)
		var last uint64
		for _, b := range data {
			last = r.Roll(b)
		}
		return last == Fingerprint(data) || len(data) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIdenticalContentSameChunks(t *testing.T) {
	data := bytes.Repeat([]byte("mirage "), 4000)
	c1 := NewChunker(0, 0, 0)
	c2 := NewChunker(0, 0, 0)
	a, b := c1.HashChunks(data), c2.HashChunks(data)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d hash differs", i)
		}
	}
}

func TestSplitAddressedCoversDataWithStrongAddresses(t *testing.T) {
	data := make([]byte, 100_000)
	x := uint32(7)
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 16)
	}
	c := NewChunker(0, 0, 0)
	chunks := c.SplitAddressed(data)
	if len(chunks) < 2 {
		t.Fatalf("chunks = %d, want several", len(chunks))
	}
	offset := 0
	for i, ch := range chunks {
		if ch.Offset != offset {
			t.Fatalf("chunk %d offset = %d, want %d", i, ch.Offset, offset)
		}
		if want := HashBytes(data[ch.Offset : ch.Offset+ch.Length]); ch.Address != want {
			t.Fatalf("chunk %d address = %x, want HashBytes %x", i, ch.Address, want)
		}
		offset += ch.Length
	}
	if offset != len(data) {
		t.Fatalf("chunks cover %d of %d bytes", offset, len(data))
	}
	// Boundaries and addresses are identical to a plain Split of the same
	// data: the address is an annotation, not a different chunking.
	plain := NewChunker(0, 0, 0).Split(data)
	if len(plain) != len(chunks) {
		t.Fatalf("addressed split has %d chunks, plain %d", len(chunks), len(plain))
	}
	for i := range plain {
		if plain[i] != chunks[i].Chunk {
			t.Fatalf("chunk %d differs between Split and SplitAddressed", i)
		}
	}
}
