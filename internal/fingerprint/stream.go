package fingerprint

import (
	"bufio"
	"io"
)

// Streaming interface to the chunker: real resources can be large (the
// paper content-fingerprints arbitrary binary files), so the chunker also
// operates over an io.Reader without materializing the whole file.

// SplitReader reads r to EOF, calling emit for each content-defined chunk
// in order. The Chunk's Offset and Length refer to the stream; the chunk
// bytes themselves are not retained. SplitReader and Split produce
// identical chunkings for identical content.
func (c *Chunker) SplitReader(r io.Reader, emit func(Chunk)) error {
	br := bufio.NewReader(r)
	c.rabin.Reset()
	c.hasher.Reset()
	start, size := 0, 0
	pos := 0
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fp := c.rabin.Roll(b)
		c.hasher.Roll(b)
		pos++
		size = pos - start
		atBoundary := size >= c.min && fp&c.mask == boundaryMagic&c.mask
		if atBoundary || size >= c.max {
			emit(Chunk{Offset: start, Length: size, Hash: c.hasher.Sum()})
			start = pos
			c.rabin.Reset()
			c.hasher.Reset()
		}
	}
	if pos > start {
		emit(Chunk{Offset: start, Length: pos - start, Hash: c.hasher.Sum()})
	}
	return nil
}

// HashReader returns the ordered chunk hashes of the stream.
func (c *Chunker) HashReader(r io.Reader) ([]uint64, error) {
	var out []uint64
	err := c.SplitReader(r, func(ch Chunk) { out = append(out, ch.Hash) })
	return out, err
}
