// Package fingerprint implements Rabin fingerprinting and content-defined
// chunking, the fallback mechanism Mirage uses to produce a compact
// representation of environmental resources for which no parser exists
// (paper §3.2.3, "Resource fingerprinting").
//
// A Rabin fingerprint treats a byte string as a polynomial over GF(2) and
// reduces it modulo a fixed irreducible polynomial. Because the fingerprint
// of a sliding window can be updated incrementally in O(1) per byte, it is
// the standard primitive for content-defined chunking (CDC): a chunk
// boundary is declared wherever the windowed fingerprint matches a target
// pattern, so boundaries depend only on local content and survive
// insertions and deletions elsewhere in the file. The paper uses the LBFS
// implementation with 4 KB average chunks; this package reimplements the
// same scheme from scratch.
package fingerprint

// DefaultPoly is an irreducible polynomial of degree 53 over GF(2),
// the same degree used by LBFS. The low 53 bits hold the coefficients of
// x^52..x^0; the x^53 term is implicit.
const DefaultPoly uint64 = 0x3DA3358B4DC173

// WindowSize is the number of bytes over which the rolling fingerprint is
// computed. 48 bytes matches the LBFS window.
const WindowSize = 48

// Rabin computes Rabin fingerprints over a sliding window.
// The zero value is not usable; construct with NewRabin.
type Rabin struct {
	poly   uint64
	shift  uint // degree of poly
	window [WindowSize]byte
	pos    int
	value  uint64

	// Precomputed tables. modTable[b] is (b << degree) mod poly for every
	// byte b, used to fold the high byte of the running value. outTable[b]
	// is the contribution of byte b after it has been shifted through the
	// whole window, used to remove the oldest byte as the window slides.
	modTable [256]uint64
	outTable [256]uint64
}

// NewRabin returns a rolling Rabin fingerprinter using poly as the modulus.
// If poly is zero, DefaultPoly is used.
func NewRabin(poly uint64) *Rabin {
	if poly == 0 {
		poly = DefaultPoly
	}
	r := &Rabin{poly: poly}
	r.shift = degree(poly)
	r.buildTables()
	r.Reset()
	return r
}

// degree returns the degree of the polynomial represented by p, counting
// the implicit leading term. For DefaultPoly this is 53.
func degree(p uint64) uint {
	d := uint(0)
	for i := uint(0); i < 64; i++ {
		if p&(1<<i) != 0 {
			d = i
		}
	}
	return d
}

// polyMod reduces value modulo the polynomial p (carry-less arithmetic).
func polyMod(value, p uint64, deg uint) uint64 {
	for i := 63; i >= int(deg); i-- {
		if value&(1<<uint(i)) != 0 {
			value ^= p << (uint(i) - deg)
		}
	}
	return value
}

// polyMulMod computes (a*b) mod p in GF(2)[x].
func polyMulMod(a, b, p uint64, deg uint) uint64 {
	var res uint64
	for b != 0 {
		if b&1 != 0 {
			res ^= a
		}
		b >>= 1
		a <<= 1
		if a&(1<<deg) != 0 {
			a ^= p
		}
	}
	return res
}

func (r *Rabin) buildTables() {
	deg := r.shift
	// T = x^deg mod poly; used to reduce the byte shifted out of the top.
	// modTable[b] = (b * x^deg) mod poly.
	for b := 0; b < 256; b++ {
		r.modTable[b] = polyMod(uint64(b)<<deg, r.poly, deg)
	}
	// outTable[b] = b * x^(8*(WindowSize-1)) mod poly — the weight the
	// oldest window byte carries at the moment it is evicted, before the
	// value is shifted to admit the incoming byte.
	shiftN := uint64(1)
	for i := 0; i < 8*(WindowSize-1); i++ {
		shiftN = polyMulMod(shiftN, 2, r.poly, deg)
	}
	for b := 0; b < 256; b++ {
		r.outTable[b] = polyMulMod(uint64(b), shiftN, r.poly, deg)
	}
}

// Reset clears the window and the running fingerprint.
func (r *Rabin) Reset() {
	r.window = [WindowSize]byte{}
	r.pos = 0
	r.value = 0
}

// Roll slides the window forward by one byte and returns the updated
// fingerprint.
func (r *Rabin) Roll(b byte) uint64 {
	out := r.window[r.pos]
	r.window[r.pos] = b
	r.pos = (r.pos + 1) % WindowSize
	// Remove the outgoing byte's contribution, then append the new byte:
	// value = ((value ^ out*x^(8W)) * x^8 + b) mod poly.
	r.value ^= r.outTable[out]
	top := byte(r.value >> (r.shift - 8))
	r.value = ((r.value << 8) | uint64(b)) & ((1 << r.shift) - 1)
	r.value ^= r.modTable[top]
	return r.value
}

// Sum returns the current fingerprint value.
func (r *Rabin) Sum() uint64 { return r.value }

// Fingerprint computes the Rabin fingerprint of data in one shot using the
// default polynomial. It is the non-rolling entry point used to hash whole
// chunks.
func Fingerprint(data []byte) uint64 {
	r := NewRabin(0)
	for _, b := range data {
		r.Roll(b)
	}
	return r.Sum()
}
