package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// HashBytes returns a stable 64-bit digest of data, used wherever Mirage
// needs a whole-content hash (executable FILE_HASH, library HASH, config
// value HASH, ...). It is the first 8 bytes of SHA-256, rendered compactly.
func HashBytes(data []byte) uint64 {
	sum := sha256.Sum256(data)
	return binary.BigEndian.Uint64(sum[:8])
}

// HashString is HashBytes over the UTF-8 bytes of s.
func HashString(s string) uint64 {
	return HashBytes([]byte(s))
}

// FormatHash renders a 64-bit digest in the fixed-width hexadecimal form
// used inside item keys.
func FormatHash(h uint64) string {
	return fmt.Sprintf("%016x", h)
}

// CombineHashes folds an ordered sequence of hashes into one digest. Order
// matters: CombineHashes(a, b) != CombineHashes(b, a) in general. It is
// used to summarise multi-chunk fingerprints and to derive the single
// cryptographic cluster hash discussed in the paper's privacy extension
// (§3.5, "Deployment").
func CombineHashes(hashes ...uint64) uint64 {
	buf := make([]byte, 8*len(hashes))
	for i, h := range hashes {
		binary.BigEndian.PutUint64(buf[i*8:], h)
	}
	return HashBytes(buf)
}
