package fingerprint

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/iotest"
)

func TestSplitReaderMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, 300_000)
	rng.Read(data)

	c1 := NewChunker(0, 0, 0)
	want := c1.Split(data)

	c2 := NewChunker(0, 0, 0)
	var got []Chunk
	if err := c2.SplitReader(bytes.NewReader(data), func(ch Chunk) { got = append(got, ch) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("chunk counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestSplitReaderOneBytePerRead(t *testing.T) {
	// A reader that returns one byte at a time must produce the same
	// chunking (exercises internal buffering).
	data := bytes.Repeat([]byte("mirage staged deployment "), 2000)
	c1 := NewChunker(0, 0, 0)
	want := c1.HashChunks(data)
	c2 := NewChunker(0, 0, 0)
	got, err := c2.HashReader(iotest.OneByteReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hash %d differs", i)
		}
	}
}

func TestSplitReaderEmpty(t *testing.T) {
	c := NewChunker(0, 0, 0)
	calls := 0
	if err := c.SplitReader(bytes.NewReader(nil), func(Chunk) { calls++ }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("emit called %d times for empty input", calls)
	}
}

func TestSplitReaderPropagatesError(t *testing.T) {
	c := NewChunker(0, 0, 0)
	boom := errors.New("boom")
	err := c.SplitReader(iotest.ErrReader(boom), func(Chunk) {})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
