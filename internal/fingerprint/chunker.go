package fingerprint

// Chunking parameters. The paper uses the LBFS defaults: 4 KB average
// chunks, with minimum and maximum bounds to avoid degenerate chunkings on
// pathological inputs (long runs of identical bytes, or inputs where the
// boundary pattern never appears).
const (
	// DefaultAvgSize is the expected chunk size: a boundary is declared
	// when the low log2(DefaultAvgSize) bits of the rolling fingerprint
	// equal the magic value, which happens once every AvgSize bytes on
	// random input.
	DefaultAvgSize = 4096
	// DefaultMinSize suppresses boundaries that would create tiny chunks.
	DefaultMinSize = 512
	// DefaultMaxSize forces a boundary so no chunk exceeds this size.
	DefaultMaxSize = 16384

	// boundaryMagic is the value the masked fingerprint must equal at a
	// chunk boundary. Any fixed value works; LBFS uses mask-1.
	boundaryMagic = 0x78
)

// Chunk is one content-defined chunk of a byte stream.
type Chunk struct {
	Offset int    // byte offset of the chunk within the input
	Length int    // chunk length in bytes
	Hash   uint64 // Rabin fingerprint of the chunk contents
}

// Chunker splits byte streams into content-defined chunks.
type Chunker struct {
	avg, min, max int
	mask          uint64
	rabin         *Rabin
	hasher        *Rabin
}

// NewChunker returns a Chunker with the given average, minimum and maximum
// chunk sizes. avg must be a power of two; zero values select the defaults.
func NewChunker(avg, min, max int) *Chunker {
	if avg == 0 {
		avg = DefaultAvgSize
	}
	if min == 0 {
		min = DefaultMinSize
	}
	if max == 0 {
		max = DefaultMaxSize
	}
	if avg&(avg-1) != 0 {
		panic("fingerprint: average chunk size must be a power of two")
	}
	if min > avg || max < avg {
		panic("fingerprint: chunk size bounds must satisfy min <= avg <= max")
	}
	return &Chunker{
		avg:    avg,
		min:    min,
		max:    max,
		mask:   uint64(avg - 1),
		rabin:  NewRabin(0),
		hasher: NewRabin(0),
	}
}

// Split divides data into content-defined chunks. Every byte of data
// belongs to exactly one chunk, in order. Split is deterministic: the same
// data always produces the same chunks.
func (c *Chunker) Split(data []byte) []Chunk {
	var chunks []Chunk
	start := 0
	c.rabin.Reset()
	for i, b := range data {
		fp := c.rabin.Roll(b)
		size := i - start + 1
		atBoundary := size >= c.min && fp&c.mask == boundaryMagic&c.mask
		if atBoundary || size >= c.max {
			chunks = append(chunks, c.makeChunk(data, start, i+1))
			start = i + 1
			c.rabin.Reset()
		}
	}
	if start < len(data) {
		chunks = append(chunks, c.makeChunk(data, start, len(data)))
	}
	return chunks
}

func (c *Chunker) makeChunk(data []byte, start, end int) Chunk {
	c.hasher.Reset()
	for _, b := range data[start:end] {
		c.hasher.Roll(b)
	}
	return Chunk{Offset: start, Length: end - start, Hash: c.hasher.Sum()}
}

// AddressedChunk is a content-defined chunk plus its content address: the
// strong HashBytes digest of the chunk contents. The rolling Rabin hash is
// what *finds* boundaries (and what clustering compares); the address is
// what the distribution layer stores and transfers chunks under, where a
// weak-hash collision would silently corrupt a reassembled file.
type AddressedChunk struct {
	Chunk
	Address uint64
}

// SplitAddressed divides data into content-defined chunks and computes
// each chunk's content address. Identical content always produces the same
// (boundary, address) sequence, which is what makes addresses shareable
// across machines and across versions of a file.
func (c *Chunker) SplitAddressed(data []byte) []AddressedChunk {
	chunks := c.Split(data)
	out := make([]AddressedChunk, len(chunks))
	for i, ch := range chunks {
		out[i] = AddressedChunk{Chunk: ch, Address: HashBytes(data[ch.Offset : ch.Offset+ch.Length])}
	}
	return out
}

// HashChunks returns only the chunk hashes of data, in order. This is the
// form Mirage stores as the content-based fingerprint of a resource:
// Filename.CHUNK_HASH items, one per chunk.
func (c *Chunker) HashChunks(data []byte) []uint64 {
	chunks := c.Split(data)
	hashes := make([]uint64, len(chunks))
	for i, ch := range chunks {
		hashes[i] = ch.Hash
	}
	return hashes
}
