package orchestrator

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/rollout"
)

// waitFor polls until the probe returns true or the deadline passes.
func waitFor(t *testing.T, what string, probe func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !probe() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDriftCountingAndBudget(t *testing.T) {
	gated := &gatedNode{
		okNode:  okNode{name: "dc-c0-rep"},
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	orch := New("") // unjournaled: counting needs no disk
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  upgrade("v1"),
		Clusters: fleet("dc", 2, map[string]deploy.Node{"dc-c0-rep": gated}),
		Drift:    DriftPolicy{MaxDriftedPerCluster: 1, Action: DriftHold},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-gated.started // the rollout is live, stage 0 mid-wave

	// Machines outside the plan and harmless migrations never count.
	orch.NotifyDrift(DriftEvent{Machine: "stranger", Class: "drifted", To: "x"})
	orch.NotifyDrift(DriftEvent{Machine: "dc-c1-oth", Class: "migrated", To: "x"})
	if st := h.Status(); st.Drifted != 0 || st.DriftHold != "" {
		t.Fatalf("drifted=%d hold=%q after ignorable events", st.Drifted, st.DriftHold)
	}

	// First drifted member of the cluster: within the budget of 1.
	orch.NotifyDrift(DriftEvent{Machine: "dc-c1-oth", Class: "drifted", To: "x"})
	if st := h.Status(); st.Drifted != 1 || st.DriftHold != "" {
		t.Fatalf("drifted=%d hold=%q within budget", st.Drifted, st.DriftHold)
	}
	// The same member drifting again is not a new drifted member.
	orch.NotifyDrift(DriftEvent{Machine: "dc-c1-oth", Class: "drifted", To: "y"})
	if st := h.Status(); st.Drifted != 1 {
		t.Fatalf("drifted=%d after duplicate, want 1", st.Drifted)
	}
	// Second drifted member exceeds the budget: the policy holds.
	orch.NotifyDrift(DriftEvent{Machine: "dc-c1-rep", Class: "drifted", To: "y"})
	st := h.Status()
	if st.Drifted != 2 || st.DriftHold == "" {
		t.Fatalf("drifted=%d hold=%q, want budget trip", st.Drifted, st.DriftHold)
	}
	if m := st.Members["dc-c1-rep"]; m == nil || !m.Drifted {
		t.Fatalf("member dc-c1-rep not marked drifted: %+v", m)
	}
	if got := h.DriftedMembers(); len(got) != 2 || got[0] != "dc-c1-oth" || got[1] != "dc-c1-rep" {
		t.Fatalf("DriftedMembers() = %v", got)
	}

	gated.release <- struct{}{}
	h.ResumeRun() // operator ack
	if st := h.Status(); st.DriftHold != "" {
		t.Fatalf("hold reason %q survived the ack", st.DriftHold)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDriftHoldPausesAtStageBarrier is the acceptance scenario: a pending
// cluster's representative is invalidated mid-flight, and a rollout with
// DriftPolicy{Action: DriftHold} finishes its current stage, holds at the
// next barrier with the reason on its status, journals the drift event,
// and resumes only on operator ack.
func TestDriftHoldPausesAtStageBarrier(t *testing.T) {
	gated := &gatedNode{
		okNode:  okNode{name: "dh-c0-rep"},
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	orch := New(t.TempDir())
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  upgrade("v1"),
		Clusters: fleet("dh", 2, map[string]deploy.Node{"dh-c0-rep": gated}),
		Drift:    DriftPolicy{Action: DriftHold}, // zero budget: first drift trips
	})
	if err != nil {
		t.Fatal(err)
	}
	<-gated.started // stage 0 mid-wave; cluster dh-c1 is still pending

	orch.NotifyDrift(DriftEvent{
		Machine: "dh-c1-rep", Cluster: "cluster0", To: "cluster7",
		Class: "drifted", Version: 2,
	})
	if st := h.Status(); st.DriftHold == "" || st.Drifted != 1 {
		t.Fatalf("drifted=%d hold=%q right after the event", st.Drifted, st.DriftHold)
	}
	gated.release <- struct{}{} // stage 0 converges; the barrier holds

	waitFor(t, "drift hold at barrier", func() bool {
		return h.Status().State == StatePaused
	})
	st := h.Status()
	tested := st.Tested
	time.Sleep(20 * time.Millisecond)
	if st := h.Status(); st.Tested != tested {
		t.Fatalf("tested advanced %d -> %d while drift-held", tested, st.Tested)
	}

	// The drift event is a first-class journal record.
	recs, err := rollout.Load(st.Journal)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Type == rollout.RecDrift && r.Node == "dh-c1-rep" {
			found = true
		}
	}
	if !found {
		t.Fatal("no drift record in the journal")
	}

	h.ResumeRun()
	out, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 4 {
		t.Fatalf("integrated %d/4 after ack", out.Integrated())
	}
	if st := h.Status(); st.State != StateSucceeded || st.DriftHold != "" {
		t.Fatalf("state=%s hold=%q after completion", st.State, st.DriftHold)
	}
}

func TestDriftRecordsSurviveCrashResume(t *testing.T) {
	dir := t.TempDir()
	orch := New(dir)
	gated := &gatedNode{
		okNode:  okNode{name: "dr-c0-rep"},
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  upgrade("v1"),
		Clusters: fleet("dr", 2, map[string]deploy.Node{"dr-c0-rep": gated}),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-gated.started
	// Default journal action: the event is recorded, nothing held.
	orch.NotifyDrift(DriftEvent{
		Machine: "dr-c1-rep", Cluster: "cluster1", To: "cluster9",
		Class: "drifted", Version: 3,
	})
	gated.release <- struct{}{}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := h.Status(); st.Drifted != 1 || st.DriftHold != "" {
		t.Fatalf("drifted=%d hold=%q under journal action", st.Drifted, st.DriftHold)
	}
	full, err := rollout.Load(h.Status().Journal)
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite a truncated journal — the vendor died after the drift
	// record and the first gate — and resume it.
	cut := filepath.Join(dir, "interrupted.journal")
	j, err := rollout.Create(cut)
	if err != nil {
		t.Fatal(err)
	}
	sawDrift, sawGate := false, false
	for _, r := range full {
		keep := r
		keep.Seq = 0
		if err := j.Append(keep); err != nil {
			t.Fatal(err)
		}
		sawDrift = sawDrift || r.Type == rollout.RecDrift
		sawGate = sawGate || r.Type == rollout.RecGate
		if sawDrift && sawGate {
			break
		}
	}
	j.Close()
	if !sawDrift {
		t.Fatal("fixture: full journal holds no drift record")
	}

	h2, err := orch.Start(context.Background(), Spec{
		Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"),
		Clusters: fleet("dr", 2, nil),
		Journal:  cut, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := h2.Status()
	if st.Drifted != 1 {
		t.Fatalf("resumed rollout lost the drift count: %d", st.Drifted)
	}
	if m := st.Members["dr-c1-rep"]; m == nil || !m.Drifted {
		t.Fatalf("resumed member dr-c1-rep not drifted: %+v", m)
	}
}

func TestDriftRestageRelaunchesFromLiveFleet(t *testing.T) {
	gated := &gatedNode{
		okNode:  okNode{name: "rg-c0-rep"},
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	orch := New(t.TempDir())
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  upgrade("v1"),
		Clusters: fleet("rg", 2, map[string]deploy.Node{"rg-c0-rep": gated}),
		Drift:    DriftPolicy{Action: DriftRestage},
		Restage: func() ([]*deploy.Cluster, error) {
			return fleet("rg2", 2, nil), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-gated.started
	orch.NotifyDrift(DriftEvent{
		Machine: "rg-c1-oth", Cluster: "cluster1", To: "cluster4",
		Class: "drifted", Version: 2,
	})
	// The restage aborts this rollout (releasing the gated node via its
	// context) and relaunches against the re-staged clusters.
	waitFor(t, "restage link", func() bool {
		return h.Status().RestagedAs != ""
	})
	if st := h.Status(); st.State != StateAborted {
		t.Fatalf("original rollout state = %s, want aborted", st.State)
	}
	next, ok := orch.Get(h.Status().RestagedAs)
	if !ok {
		t.Fatalf("restaged rollout %q unknown", h.Status().RestagedAs)
	}
	out, err := next.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 4 {
		t.Fatalf("restaged rollout integrated %d/4", out.Integrated())
	}
	if _, known := next.Status().Members["rg2-c0-rep"]; !known {
		t.Fatal("restaged rollout does not run the re-staged clusters")
	}
}
