package orchestrator

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/deploy"
)

// holdFleet builds a 1-cluster fleet whose representative blocks until
// released — the way admission tests keep a slot occupied.
func holdFleet(prefix string) (*gatedNode, []*deploy.Cluster) {
	gated := &gatedNode{
		okNode:  okNode{name: prefix + "-c0-rep"},
		started: make(chan struct{}, 8),
		release: make(chan struct{}, 8),
	}
	return gated, fleet(prefix, 1, map[string]deploy.Node{prefix + "-c0-rep": gated})
}

func TestAdmissionSaturated(t *testing.T) {
	orch := New(t.TempDir())
	orch.MaxActive = 1
	orch.MaxQueued = 0
	ctx := context.Background()

	gated, clusters := holdFleet("sat")
	h1, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: clusters})
	if err != nil {
		t.Fatal(err)
	}
	<-gated.started // the slot is genuinely occupied

	if _, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v2"), Clusters: fleet("sat2", 1, nil)}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("second Start = %v, want ErrSaturated", err)
	}
	if a, q := orch.Active(), orch.Queued(); a != 1 || q != 0 {
		t.Fatalf("active/queued = %d/%d, want 1/0", a, q)
	}

	// Finish the first; the slot frees and admission opens again.
	gated.release <- struct{}{}
	gated.release <- struct{}{}
	if _, err := h1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	h3, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v3"), Clusters: fleet("sat3", 1, nil)})
	if err != nil {
		t.Fatalf("Start after slot freed: %v", err)
	}
	if _, err := h3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionQueueFIFO verifies queued rollouts drain strictly in
// arrival order as slots free up.
func TestAdmissionQueueFIFO(t *testing.T) {
	orch := New(t.TempDir())
	orch.MaxActive = 1
	orch.MaxQueued = 2
	ctx := context.Background()

	gated, clusters := holdFleet("fifo")
	h1, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: clusters})
	if err != nil {
		t.Fatal(err)
	}
	<-gated.started

	h2, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v2"), Clusters: fleet("fifo2", 1, nil)})
	if err != nil {
		t.Fatal(err)
	}
	h3, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v3"), Clusters: fleet("fifo3", 1, nil)})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range []*Handle{h2, h3} {
		if st := h.Status().State; st != StateQueued {
			t.Fatalf("queued rollout %d state = %s, want queued", i+2, st)
		}
	}
	if q := orch.Queued(); q != 2 {
		t.Fatalf("queued = %d, want 2", q)
	}
	// The queue is full: a fourth rollout bounces.
	if _, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v4"), Clusters: fleet("fifo4", 1, nil)}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("fourth Start = %v, want ErrSaturated", err)
	}

	// h2 must not run while h1 holds the slot.
	select {
	case <-h2.Done():
		t.Fatal("queued rollout finished while the slot was held")
	case <-time.After(20 * time.Millisecond):
	}

	gated.release <- struct{}{}
	gated.release <- struct{}{}
	if _, err := h1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// FIFO: h2 completes strictly before h3 is granted, because h3's
	// grant only happens when h2's slot releases.
	if _, err := h2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := h3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for i, h := range []*Handle{h1, h2, h3} {
		if st := h.Status().State; st != StateSucceeded {
			t.Fatalf("rollout %d state = %s, want succeeded", i+1, st)
		}
	}
}

// TestAdmissionAbortWhileQueued verifies a queued rollout can be aborted
// before it ever runs: it goes terminal without integrating anything and
// gives its queue position back.
func TestAdmissionAbortWhileQueued(t *testing.T) {
	orch := New(t.TempDir())
	orch.MaxActive = 1
	orch.MaxQueued = 1
	ctx := context.Background()

	gated, clusters := holdFleet("abq")
	h1, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: clusters})
	if err != nil {
		t.Fatal(err)
	}
	<-gated.started
	h2, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v2"), Clusters: fleet("abq2", 1, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if st := h2.Status().State; st != StateQueued {
		t.Fatalf("state = %s, want queued", st)
	}

	h2.Abort()
	if _, err := h2.Wait(ctx); err == nil {
		t.Fatal("aborted queued rollout waited without error")
	}
	st := h2.Status()
	if st.State != StateAborted {
		t.Fatalf("state = %s, want aborted", st.State)
	}
	if st.Integrated != 0 || st.Tested != 0 {
		t.Fatalf("aborted-while-queued rollout did work: %+v", st)
	}
	if q := orch.Queued(); q != 0 {
		t.Fatalf("queued = %d after abort, want 0", q)
	}

	// Its queue slot is reusable immediately.
	h3, err := orch.Start(ctx, Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v3"), Clusters: fleet("abq3", 1, nil)})
	if err != nil {
		t.Fatalf("Start into the freed queue slot: %v", err)
	}
	gated.release <- struct{}{}
	gated.release <- struct{}{}
	if _, err := h1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := h3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPAdmission429 drives admission control through the HTTP surface:
// POST /rollouts beyond the bound returns 429 with a Retry-After header,
// and succeeds again once the fleet drains.
func TestHTTPAdmission429(t *testing.T) {
	orch := New(t.TempDir())
	orch.MaxActive = 1
	orch.MaxQueued = 0
	gated, clusters := holdFleet("h429")
	launches := 0
	api := &API{
		Orch:       orch,
		RetryAfter: 7,
		Launch: func(req StartRequest) (Spec, error) {
			launches++
			cs := clusters
			if launches > 1 {
				cs = fleet("h429b", 1, nil)
			}
			return Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: cs}, nil
		},
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/rollouts", "application/json", strings.NewReader(`{"policy":"balanced"}`))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first POST /rollouts = %d, want 201", resp.StatusCode)
	}
	<-gated.started

	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST /rollouts = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", ra)
	}

	gated.release <- struct{}{}
	gated.release <- struct{}{}
	hs := orch.List()
	if _, err := hs[0].Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp := post(); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /rollouts after drain = %d, want 201", resp.StatusCode)
	}
}
