// Package orchestrator is Mirage's rollout control plane: it turns a
// staged deployment from a blocking function call into a first-class,
// observable, cancellable lifecycle. One Orchestrator owns any number of
// concurrent rollouts, each identified by an ID and backed by its own
// write-ahead deployment journal; a Handle exposes the lifecycle verbs —
// Status snapshots and an event stream built from the deploy.Observer
// transitions, Pause/ResumeRun (a barrier between plan stages),
// Abort (context cancellation, journaled as abandoned so the rollout can
// never half-resume), and Wait.
//
// The HTTP admin surface over this API lives in this package too
// (API/Handler, long-poll events), together with the Go client that
// cmd/mirage-ctl wraps, so the wire vocabulary — status and event JSON —
// is defined exactly once. core.Vendor.StageDeployment is a thin
// synchronous wrapper over Start+Wait, which is what keeps the one-shot
// API and the control plane from drifting apart.
package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/rollout"
	"repro/internal/staging"
	"repro/internal/telemetry"
)

// Spec describes one rollout to start.
type Spec struct {
	// Policy selects the staged deployment protocol.
	Policy deploy.Policy
	// Upgrade is the artifact to deploy.
	Upgrade *pkgmgr.Upgrade
	// Clusters are the clusters of deployment to roll over.
	Clusters []*deploy.Cluster
	// Fix is the vendor's debugging loop (nil means no fixes: the first
	// failure wave abandons the upgrade once rounds are exhausted).
	Fix deploy.Fixer
	// URR receives validation reports; a fresh repository is used if nil.
	URR *report.URR
	// Journal is the rollout's write-ahead journal file. Empty means
	// <Orchestrator.JournalDir>/<id>.journal, or — when the orchestrator
	// has no journal directory either — an unjournaled in-memory rollout.
	Journal string
	// Resume replays the existing journal instead of truncating it; the
	// rollout continues exactly where the journal ends (or Start's Wait
	// surfaces why it refuses: plan mismatch, sealed, abandoned).
	Resume bool
	// Rebuild maps journaled upgrade IDs back to artifacts on resume —
	// the vendor's release store (see rollout.Engine.Rebuild).
	Rebuild func(upgradeID string) (*pkgmgr.Upgrade, bool)
	// Configure, when set, adjusts the freshly built controller before
	// the rollout starts: worker-pool size, transfer counters, retry
	// budget, shuffle seed. It must not install Observer, Cursor,
	// StageGate or Budget — those belong to the orchestrator and the
	// engine.
	Configure func(*deploy.Controller)
	// Gate is the statistical canary gate applied to every stage (zero
	// value: classic binary representative gating).
	Gate staging.GatePolicy
	// Baseline is the version-N artifact the fleet ran before this
	// rollout — what a rollback (automatic or manual) restores.
	Baseline *pkgmgr.Upgrade
	// AutoRollback arms journaled automatic rollback to Baseline when the
	// vendor abandons the upgrade.
	AutoRollback bool
	// Drift is the rollout's tolerance for mid-flight fleet drift (zero
	// value: journal-and-continue with a zero budget — events are
	// recorded, nothing is held).
	Drift DriftPolicy
	// Restage, when set, rebuilds the clusters of deployment from the
	// live fleet view — consulted by the DriftRestage action (the vendor
	// wires it to the drift monitor's current FleetView).
	Restage func() ([]*deploy.Cluster, error)
}

// ErrSaturated is returned by Start (and mapped to HTTP 429 by the admin
// API) when the orchestrator is at its in-flight rollout bound and the
// admission queue is full — the backpressure signal that tells the caller
// to retry later rather than pile more work onto a loaded vendor.
var ErrSaturated = errors.New("orchestrator: too many rollouts in flight")

// State names a phase of the rollout lifecycle.
type State string

const (
	// StateQueued: admitted into the queue, waiting for an active-rollout
	// slot (Orchestrator.MaxActive) to free.
	StateQueued State = "queued"
	// StateRunning: the plan is executing.
	StateRunning State = "running"
	// StatePausing: a pause was requested; the rollout finishes its
	// current stage and holds at the next stage barrier.
	StatePausing State = "pausing"
	// StatePaused: the rollout is holding at a stage barrier.
	StatePaused State = "paused"
	// StateSucceeded: the plan completed and the journal is sealed.
	StateSucceeded State = "succeeded"
	// StateAbandoned: the vendor gave up debugging the upgrade.
	StateAbandoned State = "abandoned"
	// StateAborted: the rollout was cancelled (Abort or ctx); the journal
	// records it as abandoned, so it can never resume.
	StateAborted State = "aborted"
	// StateFailed: an infrastructure error halted the plan — unlike
	// abandonment this is not a verdict on the upgrade.
	StateFailed State = "failed"
	// StateRollingBack: integrated members are being driven back to the
	// baseline version (after abandonment, automatically or on request).
	StateRollingBack State = "rolling_back"
	// StateRolledBack: terminal — the rollout was abandoned and every
	// previously integrated, reachable member is verifiably back on the
	// baseline version.
	StateRolledBack State = "rolled_back"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateSucceeded, StateAbandoned, StateAborted, StateFailed, StateRolledBack:
		return true
	}
	return false
}

// MemberStatus is one member's view in a status snapshot.
type MemberStatus struct {
	Cluster     string `json:"cluster"`
	Tests       int    `json:"tests,omitempty"`
	Failures    int    `json:"failures,omitempty"`
	UpgradeID   string `json:"upgrade,omitempty"` // version integrated, "" if none
	Quarantined bool   `json:"quarantined,omitempty"`
	// Drifted marks a member whose live profile invalidated its cluster's
	// representative guarantee mid-rollout (fleetwatch classification).
	Drifted bool `json:"drifted,omitempty"`
}

// Status is a point-in-time snapshot of a rollout, built by folding the
// deploy.Observer event stream — the same records the journal holds.
type Status struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Policy string `json:"policy"`
	// UpgradeID is the version currently deploying (advances as fixes
	// ship); FinalID the last version a member actually integrated.
	UpgradeID string `json:"upgrade"`
	FinalID   string `json:"final,omitempty"`
	// Stage is the last plan stage that started (-1 before the first);
	// Stages the total stage count of the plan.
	Stage       int `json:"stage"`
	Stages      int `json:"stages"`
	GatesPassed int `json:"gates_passed"`
	Rounds      int `json:"rounds"`
	Tested      int `json:"tested"`
	Failures    int `json:"failures"`
	Integrated  int `json:"integrated"`
	Quarantined int `json:"quarantined"`
	// RolledBack counts members restored to the baseline; Baseline names
	// the version a rollback restores (set once rollback starts).
	RolledBack int    `json:"rolled_back,omitempty"`
	Baseline   string `json:"baseline,omitempty"`
	// Drifted counts members whose live profile invalidated their
	// cluster's representative mid-rollout; DriftHold explains a pause
	// the drift policy forced (cleared by ResumeRun — the operator ack);
	// RestagedAs names the rollout a DriftRestage relaunched this one as.
	Drifted    int                      `json:"drifted,omitempty"`
	DriftHold  string                   `json:"drift_hold,omitempty"`
	RestagedAs string                   `json:"restaged_as,omitempty"`
	Members    map[string]*MemberStatus `json:"members,omitempty"`
	// Transfer is the wire-traffic delta the rollout caused (set on
	// terminal snapshots when the controller has a Transfer source): total
	// vendor bytes, chunk hit/miss split, and the peer tier's share.
	Transfer *deploy.TransferStats `json:"transfer,omitempty"`
	Journal  string                `json:"journal,omitempty"`
	// Events is the count of events so far — the long-poll cursor.
	Events int    `json:"events"`
	Error  string `json:"error,omitempty"`
}

// Orchestrator runs and tracks concurrent rollouts.
type Orchestrator struct {
	// JournalDir, when non-empty, gives every rollout without an explicit
	// Spec.Journal its own journal file <JournalDir>/<id>.journal.
	JournalDir string

	// Budget is the vendor-wide worker budget (cap on concurrently
	// in-flight member RPCs across ALL rollouts). The orchestrator owns
	// it and installs it on every controller it starts, so ten concurrent
	// rollouts share one box-level bound instead of multiplying their
	// per-rollout Parallelism. Nil means unlimited.
	Budget *deploy.Budget

	// MaxActive bounds concurrently executing rollouts (0 = unlimited).
	// Starts beyond the bound queue (up to MaxQueued) in FIFO order and
	// run as slots free.
	MaxActive int
	// MaxQueued bounds rollouts waiting for an active slot; a Start that
	// fits neither bound is refused with ErrSaturated. Ignored when
	// MaxActive is 0.
	MaxQueued int

	// Telemetry, when set, is the vendor-wide registry of latency
	// histograms. The orchestrator records admission-queue wait and stage
	// barrier hold time into it and installs it on every controller and
	// journal it starts (the same registry mirage-vendor hands the
	// transport server), so GET /metrics exposes one coherent set of
	// histogram families. Nil disables histogram instrumentation.
	Telemetry *telemetry.Registry
	// Tracer, when set, records each rollout as a span tree served by
	// GET /rollouts/{id}/trace. Nil disables span tracing.
	Tracer *telemetry.Tracer

	mu       sync.Mutex
	seq      int
	rollouts map[string]*Handle
	order    []string
	active   int
	queue    []*Handle // FIFO admission queue (waiting handles)
}

// New returns an orchestrator journaling under dir ("" disables default
// journaling; individual specs may still name a journal file).
func New(dir string) *Orchestrator {
	return &Orchestrator{JournalDir: dir, rollouts: make(map[string]*Handle)}
}

// Get returns the handle of a known rollout.
func (o *Orchestrator) Get(id string) (*Handle, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.rollouts[id]
	return h, ok
}

// List returns every rollout handle in start order.
func (o *Orchestrator) List() []*Handle {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Handle, 0, len(o.order))
	for _, id := range o.order {
		out = append(out, o.rollouts[id])
	}
	return out
}

// Start launches the rollout described by spec and returns its handle.
// The rollout runs on its own goroutine until the plan completes, the
// vendor abandons, an error halts it, or ctx is cancelled (Abort cancels
// a derived context, so an operator abort never requires the caller's).
// Start itself only validates the spec; resume refusals and journal
// errors surface from Wait, like every other terminal outcome.
func (o *Orchestrator) Start(ctx context.Context, spec Spec) (*Handle, error) {
	if spec.Upgrade == nil {
		return nil, errors.New("orchestrator: spec has no upgrade")
	}
	if len(spec.Clusters) == 0 {
		return nil, errors.New("orchestrator: spec has no clusters of deployment")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	urr := spec.URR
	if urr == nil {
		urr = report.New()
	}
	ctl := deploy.NewController(urr, spec.Fix)
	if spec.Configure != nil {
		spec.Configure(ctl)
	}
	ctl.Gate = spec.Gate
	if o.Budget != nil {
		// The global worker budget overrides anything Configure set: it is
		// the orchestrator's bound, shared by every rollout it runs.
		ctl.Budget = o.Budget
	}
	// Like the budget, telemetry is the orchestrator's to install: one
	// registry across every rollout, so member-duration and budget-wait
	// families aggregate fleet-wide.
	ctl.Telemetry = o.Telemetry

	o.mu.Lock()
	o.seq++
	id := fmt.Sprintf("r%d", o.seq)
	o.mu.Unlock()

	// Resume must name its journal explicitly: every Start mints a fresh
	// ID, so the default per-ID path can never point at the interrupted
	// rollout's file — silently resuming some other journal that happens
	// to live there would be worse than refusing.
	if spec.Resume && spec.Journal == "" {
		return nil, errors.New("orchestrator: resume requires Spec.Journal to name the interrupted rollout's journal file")
	}
	journal := spec.Journal
	if journal == "" && o.JournalDir != "" {
		journal = filepath.Join(o.JournalDir, id+".journal")
	}

	// Mirror the controller's urgent bypass so the stage count describes
	// the plan that will actually execute.
	policy := spec.Policy
	if spec.Upgrade.Urgent {
		policy = deploy.PolicyNoStaging
	}
	plan := ctl.PlanFor(policy, spec.Clusters)

	rctx, cancel := context.WithCancel(ctx)
	h := &Handle{
		id:      id,
		orch:    o,
		ctl:     ctl,
		spec:    spec,
		policy:  policy,
		journal: journal,
		cancel:  cancel,
		done:    make(chan struct{}),
		changed: make(chan struct{}),
		unpause: make(chan struct{}),
		status: Status{
			ID:        id,
			State:     StateRunning,
			Policy:    plan.Policy.String(),
			UpgradeID: spec.Upgrade.ID,
			Stage:     -1,
			Stages:    len(plan.Stages),
			Members:   make(map[string]*MemberStatus),
			Journal:   journal,
		},
	}
	for _, c := range spec.Clusters {
		for _, n := range c.Representatives {
			h.status.Members[n.Name()] = &MemberStatus{Cluster: c.ID}
		}
		for _, n := range c.Others {
			h.status.Members[n.Name()] = &MemberStatus{Cluster: c.ID}
		}
	}

	o.mu.Lock()
	if o.MaxActive > 0 {
		switch {
		case o.active < o.MaxActive:
			o.active++
		case len(o.queue) < o.MaxQueued:
			h.admit = make(chan struct{})
			h.status.State = StateQueued
			o.queue = append(o.queue, h)
		default:
			o.mu.Unlock()
			cancel()
			return nil, ErrSaturated
		}
	}
	o.rollouts[id] = h
	o.order = append(o.order, id)
	o.mu.Unlock()

	go h.run(rctx, ctl, spec, journal)
	return h, nil
}

// Active returns the number of rollouts currently holding an execution
// slot (every non-terminal rollout when MaxActive is 0).
func (o *Orchestrator) Active() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.MaxActive > 0 {
		return o.active
	}
	n := 0
	for _, h := range o.rollouts {
		if !h.Status().State.Terminal() {
			n++
		}
	}
	return n
}

// Queued returns the number of rollouts waiting in the admission queue.
func (o *Orchestrator) Queued() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.queue)
}

// releaseSlot returns an execution slot and grants it to the queue head,
// preserving FIFO drain order.
func (o *Orchestrator) releaseSlot() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.active--
	for len(o.queue) > 0 && o.active < o.MaxActive {
		next := o.queue[0]
		o.queue = o.queue[1:]
		o.active++
		close(next.admit)
	}
}

// abandonQueued is called by a queued rollout that was aborted before
// being granted a slot: it removes the handle from the queue, or — when
// the grant raced the abort — gives the already-granted slot back.
func (o *Orchestrator) abandonQueued(h *Handle) {
	o.mu.Lock()
	for i, q := range o.queue {
		if q == h {
			o.queue = append(o.queue[:i], o.queue[i+1:]...)
			o.mu.Unlock()
			return
		}
	}
	o.mu.Unlock()
	// Not queued anymore: the slot was granted; return it.
	o.releaseSlot()
}

// Statuses returns a snapshot of every rollout, in start order.
func (o *Orchestrator) Statuses() []Status {
	hs := o.List()
	out := make([]Status, len(hs))
	for i, h := range hs {
		out[i] = h.Status()
	}
	return out
}

// Handle is the caller's grip on one running (or finished) rollout.
type Handle struct {
	id     string
	orch   *Orchestrator
	cancel context.CancelFunc
	done   chan struct{}
	// admit is non-nil when the rollout was queued at Start: it is closed
	// by the orchestrator when an execution slot is granted.
	admit chan struct{}
	// Retained for manual rollback of a terminal rollout: the controller
	// (idle once the rollout ends), the spec, the effective policy
	// (urgent bypass mirrored) and the journal path.
	ctl     *deploy.Controller
	spec    Spec
	policy  deploy.Policy
	journal string

	mu          sync.Mutex
	status      Status
	events      []rollout.Record
	changed     chan struct{} // closed and replaced on every append/transition
	paused      bool
	unpause     chan struct{} // closed on ResumeRun
	rollingBack bool          // a manual Rollback is in flight
	// liveJournal is the rollout's open journal while Engine.Deploy runs
	// (installed by the engine's OnOpen hook, cleared when Deploy
	// returns): where NotifyDrift appends RecDrift records.
	liveJournal *rollout.Journal
	// driftByCluster counts drifted members per cluster of deployment —
	// the quantity DriftPolicy.MaxDriftedPerCluster bounds.
	driftByCluster map[string]int
	restaging      bool // a DriftRestage is in flight
	out            *deploy.Outcome
	err            error
}

// ID identifies the rollout within its orchestrator.
func (h *Handle) ID() string { return h.id }

// run executes the rollout to completion. A queued handle first waits for
// its admission grant; aborting while queued terminates it without ever
// occupying a slot (or touching its journal).
func (h *Handle) run(ctx context.Context, ctl *deploy.Controller, spec Spec, journal string) {
	var trace *telemetry.Trace
	var root telemetry.SpanID
	var reg *telemetry.Registry
	if h.orch != nil {
		reg = h.orch.Telemetry
		trace = h.orch.Tracer.Start(h.id)
		root = trace.Begin(0, "rollout", h.id, "")
	}
	enqueued := time.Now()
	if h.admit != nil {
		wait := trace.Begin(root, "admission-wait", "", "")
		select {
		case <-h.admit:
		case <-ctx.Done():
			trace.End(wait, ctx.Err())
			trace.End(root, ctx.Err())
			h.orch.abandonQueued(h)
			h.mu.Lock()
			h.err = ctx.Err()
			h.status.State = StateAborted
			h.status.Error = h.err.Error()
			h.signalLocked()
			h.mu.Unlock()
			close(h.done)
			return
		}
		trace.End(wait, nil)
		h.mu.Lock()
		h.status.State = StateRunning
		h.signalLocked()
		h.mu.Unlock()
	}
	// Admission-queue wait: ~0 for rollouts that got a slot immediately,
	// so the family is a complete picture of Start→execution delay.
	reg.Histogram("mirage_admission_wait_seconds",
		"Time from rollout start to execution-slot grant.", "", 1e-9).
		With("").ObserveSince(enqueued)
	ctx = telemetry.NewContext(ctx, trace, root)
	releaseSlot := func() {}
	if h.orch != nil && h.orch.MaxActive > 0 {
		releaseSlot = h.orch.releaseSlot
	}
	ctl.StageGate = h.gate
	var out *deploy.Outcome
	var err error
	if journal != "" {
		eng := &rollout.Engine{
			Controller:   ctl,
			Path:         journal,
			Resume:       spec.Resume,
			Rebuild:      spec.Rebuild,
			Observer:     h,
			Baseline:     spec.Baseline,
			AutoRollback: spec.AutoRollback,
			Telemetry:    reg,
			// Capture the live journal for drift records, and fold the
			// drift history of a resumed journal back into the status
			// snapshot (counts only — the policy re-fires from live
			// events, not replayed ones).
			OnOpen: func(j *rollout.Journal, prior []rollout.Record) {
				h.mu.Lock()
				h.liveJournal = j
				h.foldPriorDriftLocked(prior)
				h.mu.Unlock()
			},
		}
		out, err = eng.Deploy(ctx, spec.Policy, spec.Upgrade, spec.Clusters)
		h.mu.Lock()
		h.liveJournal = nil
		h.mu.Unlock()
	} else {
		ctl.Observer = h
		out, err = ctl.Deploy(ctx, spec.Policy, spec.Upgrade, spec.Clusters)
		if err == nil && out != nil && out.Abandoned && spec.AutoRollback && spec.Baseline != nil {
			_, err = ctl.Rollback(ctx, spec.Baseline, spec.Clusters, out, nil)
		}
		ctl.Observer = nil
	}

	h.mu.Lock()
	h.out, h.err = out, err
	switch {
	case err == nil && (out == nil || !out.Abandoned):
		h.status.State = StateSucceeded
	case err == nil && out.RolledBack:
		h.status.State = StateRolledBack
	case err == nil:
		h.status.State = StateAbandoned
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		h.status.State = StateAborted
	default:
		h.status.State = StateFailed
	}
	if err != nil {
		h.status.Error = err.Error()
	}
	if out != nil {
		h.status.FinalID = out.FinalID
		h.status.Rounds = out.Rounds
		if out.Transfer != (deploy.TransferStats{}) {
			tr := out.Transfer
			h.status.Transfer = &tr
		}
	}
	h.signalLocked()
	h.mu.Unlock()
	trace.End(root, err)
	// The slot must be free before done closes: a caller that sees this
	// rollout terminal may immediately Start another, and admission must
	// not bounce it off a slot the finished rollout still holds.
	releaseSlot()
	close(h.done)
}

// signalLocked wakes event and status waiters; callers hold h.mu.
func (h *Handle) signalLocked() {
	close(h.changed)
	h.changed = make(chan struct{})
}

// gate implements deploy.Controller.StageGate: it holds the plan at the
// stage barrier while the rollout is paused. The hold is measured into
// the stage-barrier histogram and, when the rollout is traced, recorded
// as a gate-wait span (zero-width for barriers crossed without pausing).
func (h *Handle) gate(ctx context.Context, stage int) error {
	if h.orch != nil {
		defer h.orch.Telemetry.Histogram("mirage_stage_barrier_seconds",
			"Time rollouts spent holding at stage barriers.", "", 1e-9).
			With("").Time()()
	}
	_, end := telemetry.StartSpan(ctx, "gate-wait", fmt.Sprintf("stage %d", stage), "")
	defer func() { end(nil) }()
	for {
		h.mu.Lock()
		if !h.paused {
			if h.status.State == StatePaused || h.status.State == StatePausing {
				h.status.State = StateRunning
				h.signalLocked()
			}
			h.mu.Unlock()
			return ctx.Err()
		}
		if h.status.State != StatePaused {
			h.status.State = StatePaused
			h.signalLocked()
		}
		ch := h.unpause
		h.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Pause asks the rollout to hold at the next stage barrier (the current
// stage finishes; stages are the unit of consistency — a wave is never
// stopped halfway through its gate bookkeeping). Pausing a terminal or
// already-paused rollout is a no-op.
func (h *Handle) Pause() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.paused || h.status.State.Terminal() {
		return
	}
	h.paused = true
	h.unpause = make(chan struct{})
	if !h.status.State.Terminal() {
		h.status.State = StatePausing
		h.signalLocked()
	}
}

// ResumeRun releases a paused rollout from its stage barrier. (Named to
// leave "Resume" for journal resumption, which is a different thing: that
// revives a dead process's rollout, this unblocks a live one.)
func (h *Handle) ResumeRun() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.paused {
		return
	}
	h.paused = false
	close(h.unpause)
	// Resuming is the operator's ack of a drift hold: the budget keeps
	// counting, but this particular hold is answered.
	h.status.DriftHold = ""
	if !h.status.State.Terminal() {
		h.status.State = StateRunning
		h.signalLocked()
	}
}

// Abort cancels the rollout and blocks until its goroutine has fully
// stopped: when Abort returns, no member is being tested and none will
// be, and the journal ends with the abandoned record (unless the rollout
// had already finished). Abort of a finished rollout is a no-op.
func (h *Handle) Abort() {
	h.cancel()
	<-h.done
}

// Wait blocks until the rollout reaches a terminal state and returns its
// outcome, or returns ctx.Err() if ctx is done first (the rollout keeps
// running; Wait is an observer, not an owner).
func (h *Handle) Wait(ctx context.Context) (*deploy.Outcome, error) {
	select {
	case <-h.done:
		return h.out, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Done returns a channel closed when the rollout reaches a terminal
// state.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Status returns a point-in-time snapshot.
func (h *Handle) Status() Status {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.status
	st.Events = len(h.events)
	members := make(map[string]*MemberStatus, len(h.status.Members))
	for name, m := range h.status.Members {
		cp := *m
		members[name] = &cp
	}
	st.Members = members
	if h.status.Transfer != nil {
		tr := *h.status.Transfer
		st.Transfer = &tr
	}
	return st
}

// OnEvent implements deploy.Observer: every state transition (already
// durable in the journal, when there is one) is appended to the event log
// and folded into the status snapshot. It never fails — the in-memory
// view is advisory; the journal is the arbiter.
func (h *Handle) OnEvent(ev deploy.Event) error {
	rec, err := rollout.RecordOf(ev)
	if err != nil {
		return nil // unknown event type: ignore in the advisory view
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	rec.Seq = len(h.events) + 1
	h.events = append(h.events, rec)
	st := &h.status
	switch rec.Type {
	case rollout.RecStageStart:
		st.Stage = rec.Stage
		st.UpgradeID = rec.UpgradeID
	case rollout.RecGate:
		st.GatesPassed++
	case rollout.RecTested:
		st.Tested++
		if m := st.Members[rec.Node]; m != nil {
			m.Tests++
			if !rec.Success {
				m.Failures++
			}
		}
		if !rec.Success {
			st.Failures++
		}
	case rollout.RecIntegrated:
		st.FinalID = rec.UpgradeID
		if m := st.Members[rec.Node]; m != nil {
			if m.UpgradeID == "" {
				st.Integrated++
			}
			m.UpgradeID = rec.UpgradeID
		}
	case rollout.RecQuarantined:
		if m := st.Members[rec.Node]; m != nil && !m.Quarantined {
			m.Quarantined = true
			st.Quarantined++
		}
	case rollout.RecFix:
		st.Rounds = rec.Round
		st.UpgradeID = rec.UpgradeID
	case rollout.RecRollbackStart:
		st.Baseline = rec.UpgradeID
		if !st.State.Terminal() {
			st.State = StateRollingBack
		}
	case rollout.RecRolledBack:
		st.RolledBack++
		if m := st.Members[rec.Node]; m != nil {
			m.UpgradeID = rec.UpgradeID
		}
	case rollout.RecRollbackSkip:
		if m := st.Members[rec.Node]; m != nil && !m.Quarantined {
			m.Quarantined = true
			st.Quarantined++
		}
	}
	h.signalLocked()
	return nil
}

// Rollback drives every member this rollout integrated back to the
// baseline version — the manual counterpart of Spec.AutoRollback, for an
// operator deciding after the fact that an abandoned (or aborted, or
// failed) rollout must be undone. It requires a terminal, unsuccessful
// rollout and a Spec.Baseline artifact (or, journaled, a Rebuild hook
// able to produce it), runs synchronously, and leaves the rollout in
// StateRolledBack. A rollback the journal records as started is resumed:
// members with a durable rolled_back record are never reverted again.
func (h *Handle) Rollback(ctx context.Context) (*deploy.RollbackOutcome, error) {
	h.mu.Lock()
	st := h.status.State
	switch {
	case h.rollingBack:
		h.mu.Unlock()
		return nil, errors.New("orchestrator: rollback already in progress")
	case st == StateRolledBack:
		h.mu.Unlock()
		return nil, errors.New("orchestrator: rollout already rolled back")
	case st == StateSucceeded:
		h.mu.Unlock()
		return nil, errors.New("orchestrator: rollout succeeded; roll back by deploying the previous version")
	case !st.Terminal():
		h.mu.Unlock()
		return nil, fmt.Errorf("orchestrator: rollout is %s; abort it before rolling back", st)
	}
	if h.spec.Baseline == nil && !(h.journal != "" && h.spec.Rebuild != nil) {
		h.mu.Unlock()
		return nil, errors.New("orchestrator: rollout has no baseline artifact to roll back to")
	}
	h.rollingBack = true
	h.status.State = StateRollingBack
	h.signalLocked()
	h.mu.Unlock()

	var ro *deploy.RollbackOutcome
	var err error
	if h.journal != "" {
		eng := &rollout.Engine{
			Controller: h.ctl,
			Path:       h.journal,
			Rebuild:    h.spec.Rebuild,
			Observer:   h,
			Baseline:   h.spec.Baseline,
		}
		var out *deploy.Outcome
		out, err = eng.Rollback(ctx, h.policy, h.spec.Clusters)
		if out != nil {
			ro = out.Rollback
			h.mu.Lock()
			h.out = out
			h.mu.Unlock()
		}
	} else {
		h.mu.Lock()
		out := h.out
		h.mu.Unlock()
		if out == nil {
			err = errors.New("orchestrator: rollout produced no outcome to roll back")
		} else {
			h.ctl.Observer = h
			ro, err = h.ctl.Rollback(ctx, h.spec.Baseline, h.spec.Clusters, out, nil)
			h.ctl.Observer = nil
		}
	}

	h.mu.Lock()
	h.rollingBack = false
	if err != nil {
		h.status.State = st // restore the terminal state; retryable
		h.status.Error = err.Error()
	} else {
		h.status.State = StateRolledBack
		if out := h.out; out != nil && out.Transfer != (deploy.TransferStats{}) {
			tr := out.Transfer
			h.status.Transfer = &tr
		}
	}
	h.signalLocked()
	h.mu.Unlock()
	return ro, err
}

// EventsSince returns the events after cursor `since` (0 means from the
// beginning). When none are pending it blocks until at least one arrives,
// the rollout reaches a terminal state, or ctx is done. done reports that
// the rollout is terminal AND the returned slice exhausts the log — the
// long-poll termination condition.
func (h *Handle) EventsSince(ctx context.Context, since int) (recs []rollout.Record, done bool) {
	for {
		h.mu.Lock()
		if since < 0 {
			since = 0
		}
		if since > len(h.events) {
			// A cursor past the log (stale client, restarted vendor):
			// clamp to the tip so the poll terminates instead of waiting
			// for events that can never exist.
			since = len(h.events)
		}
		if since < len(h.events) {
			recs = append([]rollout.Record(nil), h.events[since:]...)
		}
		terminal := h.status.State.Terminal()
		total := len(h.events)
		ch := h.changed
		h.mu.Unlock()
		if len(recs) > 0 || terminal {
			return recs, terminal && since+len(recs) == total
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// Events streams the rollout's events from the beginning: the returned
// channel replays the log and then follows it live, closing once the
// rollout is terminal and the log is drained (or when ctx is done).
func (h *Handle) Events(ctx context.Context) <-chan rollout.Record {
	ch := make(chan rollout.Record)
	go func() {
		defer close(ch)
		next := 0
		for {
			recs, done := h.EventsSince(ctx, next)
			if len(recs) == 0 && !done {
				return // ctx expired
			}
			for _, r := range recs {
				select {
				case ch <- r:
				case <-ctx.Done():
					return
				}
			}
			next += len(recs)
			if done {
				return
			}
		}
	}()
	return ch
}

// Outcome returns the final outcome and error of a terminal rollout
// (nil, nil while it is still running).
func (h *Handle) Outcome() (*deploy.Outcome, error) {
	select {
	case <-h.done:
		return h.out, h.err
	default:
		return nil, nil
	}
}
