package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/rollout"
)

// okNode passes every validation; safe for concurrent use by several
// rollouts at once (the shared-fleet scenario).
type okNode struct {
	name string

	mu         sync.Mutex
	tests      int
	integrated []string
}

func (n *okNode) Name() string { return n.name }

func (n *okNode) TestUpgrade(_ context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	n.mu.Lock()
	n.tests++
	n.mu.Unlock()
	return &report.Report{UpgradeID: up.ID, Machine: n.name, Success: true}, nil
}

func (n *okNode) Integrate(_ context.Context, up *pkgmgr.Upgrade) error {
	n.mu.Lock()
	n.integrated = append(n.integrated, up.ID)
	n.mu.Unlock()
	return nil
}

// stuckNode signals that its validation started, then blocks until the
// rollout is aborted — the "mid-wave" fixture.
type stuckNode struct {
	okNode
	started chan struct{}
	once    sync.Once
}

func (n *stuckNode) TestUpgrade(ctx context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	n.once.Do(func() { close(n.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}

// gatedNode blocks each validation until the test releases it.
type gatedNode struct {
	okNode
	started chan struct{} // one send per TestUpgrade entry
	release chan struct{} // one receive per TestUpgrade exit
}

func (n *gatedNode) TestUpgrade(ctx context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	select {
	case n.started <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case <-n.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return n.okNode.TestUpgrade(ctx, up)
}

func upgrade(id string) *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{ID: id, Pkg: &pkgmgr.Package{Name: "app", Version: id}}
}

// fleet builds nclusters clusters of one representative and one other,
// wrapping the given override node in place of the named member.
func fleet(prefix string, nclusters int, override map[string]deploy.Node) []*deploy.Cluster {
	var cs []*deploy.Cluster
	node := func(name string) deploy.Node {
		if n, ok := override[name]; ok {
			return n
		}
		return &okNode{name: name}
	}
	for c := 0; c < nclusters; c++ {
		cs = append(cs, &deploy.Cluster{
			ID:              fmt.Sprintf("%s-c%d", prefix, c),
			Distance:        c + 1,
			Representatives: []deploy.Node{node(fmt.Sprintf("%s-c%d-rep", prefix, c))},
			Others:          []deploy.Node{node(fmt.Sprintf("%s-c%d-oth", prefix, c))},
		})
	}
	return cs
}

func TestLifecycleSucceeds(t *testing.T) {
	orch := New(t.TempDir())
	h, err := orch.Start(context.Background(), Spec{
		Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: fleet("one", 2, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 4 {
		t.Fatalf("integrated %d/4", out.Integrated())
	}
	st := h.Status()
	if st.State != StateSucceeded || st.Integrated != 4 || st.Tested != 4 || st.Stages != 4 {
		t.Fatalf("status = %+v", st)
	}
	// The journal exists, is sealed, and matches the event stream's view.
	recs, err := rollout.Load(st.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if last := recs[len(recs)-1]; last.Type != rollout.RecComplete {
		t.Fatalf("journal not sealed: %+v", last)
	}
	// The handle's event log is the journal minus plan header and seal.
	evs, done := h.EventsSince(context.Background(), 0)
	if !done {
		t.Fatal("EventsSince(terminal) not done")
	}
	if want := len(recs) - 2; len(evs) != want {
		t.Fatalf("events %d, journal state records %d", len(evs), want)
	}
	if _, ok := orch.Get(h.ID()); !ok {
		t.Fatalf("Get(%s) lost the rollout", h.ID())
	}
}

func TestConcurrentRolloutsOverSharedFleetConverge(t *testing.T) {
	// Two journaled rollouts run concurrently over the SAME fleet (same
	// deploy.Node values). Both must converge, each with its own journal.
	orch := New(t.TempDir())
	shared := fleet("shared", 3, nil)
	var handles []*Handle
	for i := 0; i < 2; i++ {
		h, err := orch.Start(context.Background(), Spec{
			Policy:   deploy.PolicyBalanced,
			Upgrade:  upgrade(fmt.Sprintf("v-%d", i)),
			Clusters: shared,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if got := len(orch.List()); got != 2 {
		t.Fatalf("List() = %d rollouts", got)
	}
	for i, h := range handles {
		out, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("rollout %d: %v", i, err)
		}
		if out.Integrated() != 6 {
			t.Fatalf("rollout %d integrated %d/6", i, out.Integrated())
		}
		recs, err := rollout.Load(h.Status().Journal)
		if err != nil {
			t.Fatalf("rollout %d journal: %v", i, err)
		}
		// Each journal describes only its own rollout's upgrade.
		wantID := fmt.Sprintf("v-%d", i)
		for _, r := range recs {
			if r.UpgradeID != "" && r.UpgradeID != wantID {
				t.Fatalf("rollout %d journal leaked record %+v", i, r)
			}
		}
	}
}

func TestAbortMidWavePromptAndJournaledAbandoned(t *testing.T) {
	// A rollout whose first representative hangs mid-validation. Abort
	// must return well inside the transient-retry budget, journal an
	// abandoned record, and refuse to resume.
	dir := t.TempDir()
	orch := New(dir)
	stuck := &stuckNode{okNode: okNode{name: "ab-c0-rep"}, started: make(chan struct{})}
	spec := Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  upgrade("v1"),
		Clusters: fleet("ab", 2, map[string]deploy.Node{"ab-c0-rep": stuck}),
		Configure: func(ctl *deploy.Controller) {
			// A deliberately huge backoff budget: 4 retries at 2s doubling
			// is 30s of sleep. Promptness below proves the abort never
			// waits any of it out.
			ctl.RetryBackoff = 2 * time.Second
			ctl.TransientRetries = 4
		},
	}
	h, err := orch.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-stuck.started:
	case <-time.After(5 * time.Second):
		t.Fatal("validation never started")
	}
	t0 := time.Now()
	h.Abort()
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("abort took %v, want well under the 30s retry-backoff budget", d)
	}
	st := h.Status()
	if st.State != StateAborted {
		t.Fatalf("state = %s, want aborted", st.State)
	}
	_, err = h.Wait(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}

	recs, err := rollout.Load(st.Journal)
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last.Type != rollout.RecAbandoned {
		t.Fatalf("journal tail = %+v, want abandoned", last)
	}
	for _, r := range recs {
		if r.Type == rollout.RecTested || r.Type == rollout.RecIntegrated {
			t.Fatalf("aborted-before-any-pass rollout journaled member work: %+v", r)
		}
	}

	// Resume of an aborted journal is refused.
	h2, err := orch.Start(context.Background(), Spec{
		Policy:   spec.Policy,
		Upgrade:  spec.Upgrade,
		Clusters: fleet("ab", 2, nil),
		Journal:  st.Journal,
		Resume:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(context.Background()); err == nil || h2.Status().State != StateFailed {
		t.Fatalf("resume of aborted journal: err=%v state=%s, want refusal", err, h2.Status().State)
	}
}

func TestPauseHoldsAtStageBarrier(t *testing.T) {
	gated := &gatedNode{
		okNode:  okNode{name: "pz-c0-rep"},
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	orch := New("") // unjournaled: pause/resume need no disk
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  upgrade("v1"),
		Clusters: fleet("pz", 2, map[string]deploy.Node{"pz-c0-rep": gated}),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-gated.started // stage 0 is mid-wave
	h.Pause()
	if st := h.Status(); st.State != StatePausing {
		t.Fatalf("state = %s, want pausing (current stage still runs)", st.State)
	}
	gated.release <- struct{}{} // stage 0 converges; barrier holds stage 1

	waitState := func(want State) Status {
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := h.Status()
			if st.State == want {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("state = %s, want %s", st.State, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	st := waitState(StatePaused)
	if st.Stage != 0 || st.GatesPassed != 1 {
		t.Fatalf("paused at stage=%d gates=%d, want barrier after stage 0", st.Stage, st.GatesPassed)
	}
	tested := st.Tested

	// Paused means paused: no new member tests while held.
	time.Sleep(20 * time.Millisecond)
	if st := h.Status(); st.Tested != tested {
		t.Fatalf("tested advanced %d -> %d while paused", tested, st.Tested)
	}

	h.ResumeRun()
	out, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 4 {
		t.Fatalf("integrated %d/4 after resume", out.Integrated())
	}
	if st := h.Status(); st.State != StateSucceeded {
		t.Fatalf("state = %s", st.State)
	}
}

func TestAbortWhilePaused(t *testing.T) {
	orch := New(t.TempDir())
	gated := &gatedNode{
		okNode:  okNode{name: "pa-c0-rep"},
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  upgrade("v1"),
		Clusters: fleet("pa", 2, map[string]deploy.Node{"pa-c0-rep": gated}),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-gated.started
	h.Pause()
	gated.release <- struct{}{}
	// Wait for the barrier, then abort out of the pause.
	deadline := time.Now().Add(5 * time.Second)
	for h.Status().State != StatePaused {
		if time.Now().After(deadline) {
			t.Fatalf("never paused: %s", h.Status().State)
		}
		time.Sleep(time.Millisecond)
	}
	h.Abort()
	if st := h.Status(); st.State != StateAborted {
		t.Fatalf("state = %s, want aborted", st.State)
	}
	recs, err := rollout.Load(h.Status().Journal)
	if err != nil {
		t.Fatal(err)
	}
	if last := recs[len(recs)-1]; last.Type != rollout.RecAbandoned {
		t.Fatalf("journal tail = %+v, want abandoned", last)
	}
}

func TestVendorAbandonIsNotAborted(t *testing.T) {
	// A rollout whose upgrade always fails and whose fixer gives up must
	// end abandoned (a verdict), not failed or aborted.
	bad := &failingNode{name: "fx-c0-rep"}
	orch := New(t.TempDir())
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  upgrade("v1"),
		Clusters: fleet("fx", 1, map[string]deploy.Node{"fx-c0-rep": bad}),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned {
		t.Fatal("outcome not abandoned")
	}
	if st := h.Status(); st.State != StateAbandoned {
		t.Fatalf("state = %s, want abandoned", st.State)
	}
}

type failingNode struct {
	name string
}

func (n *failingNode) Name() string { return n.name }
func (n *failingNode) TestUpgrade(_ context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	return &report.Report{UpgradeID: up.ID, Machine: n.name, Success: false,
		FailedApps: []string{"app"}, Reasons: []string{"broken"}}, nil
}
func (n *failingNode) Integrate(context.Context, *pkgmgr.Upgrade) error { return nil }

func TestResumeContinuesJournaledRollout(t *testing.T) {
	// Resume is for a rollout whose vendor process died mid-plan (an
	// abort is terminal and refuses; a pause needs no disk). Craft the
	// interrupted journal by replaying a successful rollout's records up
	// to the first gate, then resume it through Spec.Resume and assert
	// the resumed run completes without re-running journaled work.
	dir := t.TempDir()
	orch := New(dir)
	clusters := fleet("rs", 2, nil)
	h, err := orch.Start(context.Background(), Spec{
		Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: clusters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	full, err := rollout.Load(h.Status().Journal)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite a truncated journal: plan record through the first gate.
	cut := filepath.Join(dir, "interrupted.journal")
	j, err := rollout.Create(cut)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range full {
		keep := r
		keep.Seq = 0
		if err := j.Append(keep); err != nil {
			t.Fatal(err)
		}
		n++
		if r.Type == rollout.RecGate {
			break
		}
	}
	j.Close()

	h2, err := orch.Start(context.Background(), Spec{
		Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: fleet("rs", 2, nil),
		Journal: cut, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 4 {
		t.Fatalf("resumed rollout integrated %d/4", out.Integrated())
	}
	// The members the truncated journal recorded as integrated were not
	// re-tested by the resumed run.
	resumed, err := rollout.Load(cut)
	if err != nil {
		t.Fatal(err)
	}
	doneBefore := map[string]bool{}
	for _, r := range full[:n] {
		if r.Type == rollout.RecIntegrated {
			doneBefore[r.Node] = true
		}
	}
	if len(doneBefore) == 0 {
		t.Fatal("fixture: no member integrated before the cut")
	}
	for _, r := range resumed[n:] {
		if doneBefore[r.Node] && (r.Type == rollout.RecTested || r.Type == rollout.RecIntegrated) {
			t.Fatalf("resume re-ran %s on %s", r.Type, r.Node)
		}
	}
}

func TestEventsStreamFollowsLive(t *testing.T) {
	gated := &gatedNode{
		okNode:  okNode{name: "ev-c0-rep"},
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	orch := New("")
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  upgrade("v1"),
		Clusters: fleet("ev", 1, map[string]deploy.Node{"ev-c0-rep": gated}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := h.Events(context.Background())
	<-gated.started
	// First event (stage start) arrives while the rollout is mid-wave.
	select {
	case ev := <-ch:
		if ev.Type != rollout.RecStageStart {
			t.Fatalf("first event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no live event")
	}
	gated.release <- struct{}{}
	var last rollout.Record
	count := 1
	for ev := range ch {
		last = ev
		count++
	}
	if last.Type != rollout.RecGate {
		t.Fatalf("last event = %+v, want final gate", last)
	}
	if st := h.Status(); count != st.Events {
		t.Fatalf("streamed %d events, status says %d", count, st.Events)
	}
}

func TestEventsSinceClampsStaleCursor(t *testing.T) {
	// A cursor past the log (stale client, restarted vendor) must still
	// terminate a long-poll on a terminal rollout instead of spinning.
	orch := New("")
	h, err := orch.Start(context.Background(), Spec{
		Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: fleet("cl", 1, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs, done := h.EventsSince(context.Background(), 9999)
	if !done || len(recs) != 0 {
		t.Fatalf("stale cursor: recs=%d done=%v, want empty and done", len(recs), done)
	}
}

func TestStartValidation(t *testing.T) {
	orch := New("")
	if _, err := orch.Start(context.Background(), Spec{Clusters: fleet("x", 1, nil)}); err == nil {
		t.Fatal("no upgrade accepted")
	}
	if _, err := orch.Start(context.Background(), Spec{Upgrade: upgrade("v1")}); err == nil {
		t.Fatal("no clusters accepted")
	}
	if _, err := orch.Start(context.Background(), Spec{Upgrade: upgrade("v1"), Clusters: fleet("x", 1, nil), Resume: true}); err == nil {
		t.Fatal("resume without journal accepted")
	}
}
