package orchestrator

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/rollout"
)

// badNode is an okNode whose validation of one upgrade ID fails — the
// fixture that makes a no-fixer rollout abandon.
type badNode struct {
	okNode
	failOn string
}

func (n *badNode) TestUpgrade(ctx context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	rep, err := n.okNode.TestUpgrade(ctx, up)
	if err == nil && up.ID == n.failOn {
		rep.Success = false
		rep.FailedApps = []string{"app"}
		rep.Reasons = []string{"crash"}
	}
	return rep, err
}

// failingFarCluster overrides both members of cluster 1 so the far wave
// fails v1 wholesale while the near cluster integrates.
func failingFarCluster(prefix string) map[string]deploy.Node {
	over := map[string]deploy.Node{}
	for _, suffix := range []string{"rep", "oth"} {
		name := prefix + "-c1-" + suffix
		over[name] = &badNode{okNode: okNode{name: name}, failOn: "v1"}
	}
	return over
}

// TestOrchestratorAutoRollback: an armed spec takes an abandoned rollout
// to the rolled_back terminal state, with the status fold, the member
// view, and the sealed journal all agreeing.
func TestOrchestratorAutoRollback(t *testing.T) {
	orch := New(t.TempDir())
	h, err := orch.Start(context.Background(), Spec{
		Policy:       deploy.PolicyBalanced,
		Upgrade:      upgrade("v1"),
		Clusters:     fleet("ar", 2, failingFarCluster("ar")),
		Baseline:     upgrade("v0"),
		AutoRollback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Abandoned || !out.RolledBack || out.Rollback == nil {
		t.Fatalf("outcome = %+v, want abandoned+rolled back", out)
	}
	st := h.Status()
	if st.State != StateRolledBack {
		t.Fatalf("state = %s, want %s", st.State, StateRolledBack)
	}
	if st.Baseline != "v0" {
		t.Fatalf("status baseline = %q", st.Baseline)
	}
	if st.RolledBack == 0 || st.RolledBack != len(out.Rollback.Reverted) {
		t.Fatalf("status rolled_back = %d, outcome reverted %d", st.RolledBack, len(out.Rollback.Reverted))
	}
	for _, name := range out.Rollback.Reverted {
		if m := st.Members[name]; m == nil || m.UpgradeID != "v0" {
			t.Fatalf("member %s = %+v, want back on v0", name, st.Members[name])
		}
	}
	recs, err := rollout.Load(st.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if last := recs[len(recs)-1]; last.Type != rollout.RecRollbackDone {
		t.Fatalf("journal tail = %s, want %s", last.Type, rollout.RecRollbackDone)
	}
	// A second rollback of the already-unwound rollout is refused.
	if _, err := h.Rollback(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "already rolled back") {
		t.Fatalf("second rollback: %v", err)
	}
}

// TestHTTPRollback drives the manual verb end to end: an abandoned
// rollout, POST /rollouts/{id}/rollback through the Client, and the
// rolled_back terminal status — plus the refusal cases a CLI user hits.
func TestHTTPRollback(t *testing.T) {
	orch := New(t.TempDir())
	api := &API{
		Orch: orch,
		Launch: func(req StartRequest) (Spec, error) {
			return Spec{
				Policy:       deploy.PolicyBalanced,
				Upgrade:      upgrade("v1"),
				Clusters:     fleet("hr", 2, failingFarCluster("hr")),
				Baseline:     upgrade("v0"),
				AutoRollback: req.AutoRollback,
			}, nil
		},
		MaxWait: 5 * time.Second,
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	st, err := c.Start(ctx, StartRequest{})
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	if st, err = c.Wait(ctx, id, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if st.State != StateAbandoned {
		t.Fatalf("pre-rollback state = %s, want %s", st.State, StateAbandoned)
	}

	if st, err = c.Rollback(ctx, id); err != nil {
		t.Fatal(err)
	}
	if st.State != StateRolledBack || st.RolledBack == 0 || st.Baseline != "v0" {
		t.Fatalf("rollback status = %+v", st)
	}
	recs, err := rollout.Load(st.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if last := recs[len(recs)-1]; last.Type != rollout.RecRollbackDone {
		t.Fatalf("journal tail = %s, want %s", last.Type, rollout.RecRollbackDone)
	}

	// Rolling back twice is a client-visible conflict, not a panic.
	if _, err := c.Rollback(ctx, id); err == nil ||
		!strings.Contains(err.Error(), "already rolled back") {
		t.Fatalf("second rollback error = %v", err)
	}
	// Unknown rollouts 404 with a named error.
	if _, err := c.Rollback(ctx, "r999"); err == nil || !strings.Contains(err.Error(), "no rollout") {
		t.Fatalf("missing-rollout error = %v", err)
	}
}
