package orchestrator

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/rollout"
	"repro/internal/transport"
)

// The control plane over a real networked fleet: vendor transport server,
// TCP agents, journaled rollouts — pause and abort exercised mid-wave.

func tcpMachine(name string) *machine.Machine {
	m := machine.New(name)
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(&machine.File{Path: "/lib/libc.so", Type: machine.TypeSharedLib, Data: []byte("libc 2.4"), Version: "2.4"})
	m.WriteFile(&machine.File{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 4.1.22"), Version: "4.1.22"})
	m.WriteFile(&machine.File{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib, Data: []byte("libmysqlclient 4.1"), Version: "4.1"})
	m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"},
		[]string{apps.MySQLExec, apps.LibMySQLPath})
	return m
}

func tcpUpgrade() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: []byte("mysqld 5.0.22"), Version: "5.0.22"},
			{Path: apps.LibMySQLPath, Type: machine.TypeSharedLib, Data: []byte("libmysqlclient 5.0"), Version: "5.0"},
		}},
		Replaces: "4.1.22",
	}
}

// startTCPFleet launches a transport server plus one agent per name.
func startTCPFleet(t *testing.T, names ...string) (*transport.Server, map[string]*machine.Machine) {
	t.Helper()
	s, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	machines := make(map[string]*machine.Machine, len(names))
	for _, name := range names {
		m := tcpMachine(name)
		machines[name] = m
		go transport.NewAgent(m).Run(s.Addr()) //nolint:errcheck — ends with server close
	}
	if got := s.WaitForAgents(len(names), 5*time.Second); got != len(names) {
		t.Fatalf("only %d/%d agents registered", got, len(names))
	}
	return s, machines
}

// holdNode wraps a remote node: it signals when its wave reaches it and
// holds the validation until released or the rollout is cancelled; the
// delegated call still crosses the real wire.
type holdNode struct {
	inner   deploy.Node
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (n *holdNode) Name() string { return n.inner.Name() }

func (n *holdNode) TestUpgrade(ctx context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	n.once.Do(func() { close(n.started) })
	select {
	case <-n.release:
		return n.inner.TestUpgrade(ctx, up)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (n *holdNode) Integrate(ctx context.Context, up *pkgmgr.Upgrade) error {
	return n.inner.Integrate(ctx, up)
}

// tcpClusters builds n clusters of {1 rep, 1 other} over the registered
// agents named <prefix>-cK-rep / <prefix>-cK-oth.
func tcpClusters(s *transport.Server, prefix string, n int, wrap map[string]deploy.Node) []*deploy.Cluster {
	node := func(name string) deploy.Node {
		if w, ok := wrap[name]; ok {
			return w
		}
		return s.Node(name)
	}
	var cs []*deploy.Cluster
	for c := 0; c < n; c++ {
		cs = append(cs, &deploy.Cluster{
			ID:              fmt.Sprintf("c%d", c),
			Distance:        c + 1,
			Representatives: []deploy.Node{node(fmt.Sprintf("%s-c%d-rep", prefix, c))},
			Others:          []deploy.Node{node(fmt.Sprintf("%s-c%d-oth", prefix, c))},
		})
	}
	return cs
}

func tcpNames(prefix string, n int) []string {
	var names []string
	for c := 0; c < n; c++ {
		names = append(names, fmt.Sprintf("%s-c%d-rep", prefix, c), fmt.Sprintf("%s-c%d-oth", prefix, c))
	}
	return names
}

// TestAbortMidStageOverTCP aborts a 3-cluster Balanced rollout over real
// TCP exactly while stage 2 (cluster 1's representative wave) is in
// flight: the abort returns promptly, the journal ends with an abandoned
// record, nothing is journaled after the abort returns, -resume refuses
// the journal, and no member beyond stage-completed cluster 0 was ever
// tested.
func TestAbortMidStageOverTCP(t *testing.T) {
	s, machines := startTCPFleet(t, tcpNames("abt", 3)...)
	hold := &holdNode{
		inner:   s.Node("abt-c1-rep"),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	dir := t.TempDir()
	journal := filepath.Join(dir, "abt.journal")
	orch := New(dir)
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  tcpUpgrade(),
		Clusters: tcpClusters(s, "abt", 3, map[string]deploy.Node{"abt-c1-rep": hold}),
		Journal:  journal,
		Configure: func(ctl *deploy.Controller) {
			// A huge budget the abort must never wait out.
			ctl.RetryBackoff = 2 * time.Second
			ctl.TransientRetries = 4
			ctl.Transfer = s.TransferSnapshot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-hold.started:
	case <-time.After(10 * time.Second):
		t.Fatal("stage 2 never reached cluster 1's representative")
	}
	t0 := time.Now()
	h.Abort()
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("abort took %v, want well under the retry-backoff budget", d)
	}
	if st := h.Status(); st.State != StateAborted || st.Stage != 2 {
		t.Fatalf("status = state:%s stage:%d, want aborted at stage 2", st.State, st.Stage)
	}

	recs, err := rollout.Load(journal)
	if err != nil {
		t.Fatal(err)
	}
	if last := recs[len(recs)-1]; last.Type != rollout.RecAbandoned {
		t.Fatalf("journal tail = %+v, want abandoned", last)
	}
	// Nothing is appended after the abort returned.
	time.Sleep(50 * time.Millisecond)
	again, err := rollout.Load(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(recs) {
		t.Fatalf("journal grew after abort: %d -> %d records", len(recs), len(again))
	}
	// Cluster 0 completed its stages before the abort; no member beyond
	// it was ever tested, and the held representative never completed.
	tested := map[string]bool{}
	for _, r := range recs {
		if r.Type == rollout.RecTested {
			tested[r.Node] = true
		}
	}
	for name := range tested {
		if name != "abt-c0-rep" && name != "abt-c0-oth" {
			t.Fatalf("member %s tested beyond the aborted stage", name)
		}
	}
	// The real machines beyond cluster 0 still run the old version.
	for _, name := range []string{"abt-c1-rep", "abt-c1-oth", "abt-c2-rep", "abt-c2-oth"} {
		if ref, _ := machines[name].Package("mysql"); ref.Version != "4.1.22" {
			t.Fatalf("%s at %s after abort", name, ref.Version)
		}
	}

	// -resume refuses an aborted journal.
	h2, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  tcpUpgrade(),
		Clusters: tcpClusters(s, "abt", 3, nil),
		Journal:  journal,
		Resume:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(context.Background()); err == nil {
		t.Fatal("resume of aborted journal succeeded")
	} else if st := h2.Status(); st.State != StateFailed {
		t.Fatalf("resume state = %s, want failed refusal", st.State)
	}
}

// TestPauseResumeOverTCP pauses a networked rollout at a stage barrier,
// verifies no progress while paused, resumes, and converges the fleet.
func TestPauseResumeOverTCP(t *testing.T) {
	s, machines := startTCPFleet(t, tcpNames("pr", 2)...)
	hold := &holdNode{
		inner:   s.Node("pr-c0-rep"),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	orch := New(t.TempDir())
	h, err := orch.Start(context.Background(), Spec{
		Policy:   deploy.PolicyBalanced,
		Upgrade:  tcpUpgrade(),
		Clusters: tcpClusters(s, "pr", 2, map[string]deploy.Node{"pr-c0-rep": hold}),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-hold.started
	h.Pause()
	close(hold.release) // let stage 0 converge into the barrier

	deadline := time.Now().Add(10 * time.Second)
	for h.Status().State != StatePaused {
		if time.Now().After(deadline) {
			t.Fatalf("state = %s, want paused", h.Status().State)
		}
		time.Sleep(time.Millisecond)
	}
	st := h.Status()
	// Only cluster 0's representative has integrated at the barrier.
	if ref, _ := machines["pr-c0-rep"].Package("mysql"); ref.Version != "5.0.22" {
		t.Fatalf("rep at %s while paused", ref.Version)
	}
	if ref, _ := machines["pr-c0-oth"].Package("mysql"); ref.Version != "4.1.22" {
		t.Fatalf("pr-c0-oth upgraded through a paused barrier")
	}
	if st.Integrated != 1 {
		t.Fatalf("integrated = %d at the stage-0 barrier", st.Integrated)
	}

	h.ResumeRun()
	out, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != 4 {
		t.Fatalf("integrated %d/4 after resume", out.Integrated())
	}
	for name, m := range machines {
		if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
			t.Fatalf("%s at %s after resumed rollout", name, ref.Version)
		}
	}
}
