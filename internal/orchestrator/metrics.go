package orchestrator

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// Metric is one sample in Prometheus text exposition format. The control
// plane hand-writes the format (it is three lines per family) rather than
// pulling in a client library; everything the vendor exports here is a
// gauge or a monotonic counter — latency distributions live in
// telemetry.Registry, whose histogram families render after these.
type Metric struct {
	// Name is the metric family name, e.g. "mirage_registry_agents".
	Name string
	// Help is the one-line # HELP text (first sample of a family wins).
	Help string
	// Type is "gauge" or "counter" (default gauge).
	Type string
	// Labels are rendered in the given order, e.g. {{"shard","3"}}.
	Labels [][2]string
	// Value is the sample value.
	Value float64
}

// MetricsFunc contributes metrics to one GET /metrics scrape. Each call
// must return a fresh snapshot; funcs run on the request goroutine.
type MetricsFunc func() []Metric

// ownMetrics is the orchestrator's built-in contribution: rollout
// lifecycle gauges and, when a worker budget is installed, its occupancy.
func (a *API) ownMetrics() []Metric {
	ms := []Metric{
		{Name: "mirage_rollouts_active", Help: "Rollouts currently holding an execution slot.", Value: float64(a.Orch.Active())},
		{Name: "mirage_rollouts_queued", Help: "Rollouts waiting in the admission queue.", Value: float64(a.Orch.Queued())},
	}
	states := make(map[State]int)
	for _, st := range a.Orch.Statuses() {
		states[st.State]++
	}
	names := make([]string, 0, len(states))
	for s := range states {
		names = append(names, string(s))
	}
	sort.Strings(names)
	for _, s := range names {
		ms = append(ms, Metric{
			Name: "mirage_rollouts", Help: "Rollouts by lifecycle state.",
			Labels: [][2]string{{"state", s}}, Value: float64(states[State(s)]),
		})
	}
	if b := a.Orch.Budget; b != nil {
		ms = append(ms,
			Metric{Name: "mirage_worker_budget_cap", Help: "Global worker budget size (concurrent member RPCs).", Value: float64(b.Cap())},
			Metric{Name: "mirage_worker_budget_in_flight", Help: "Member RPCs currently holding a budget slot.", Value: float64(b.InFlight())},
			Metric{Name: "mirage_worker_budget_high_water", Help: "Maximum concurrently held budget slots observed.", Value: float64(b.HighWater())},
		)
	}
	return ms
}

// sampleLabels renders a sample's label block ({} elided when empty)
// with Prometheus escaping.
func sampleLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(telemetry.EscapeLabel(kv[1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// renderMetrics writes samples in Prometheus text format. Samples are
// grouped by family with HELP and TYPE rendered once each (the first
// sample carrying them wins, however the families were interleaved on
// input), and sorted by family name then label block, so consecutive
// scrapes of identical state are byte-identical regardless of the order
// MetricsFuncs produced them in.
func renderMetrics(w *strings.Builder, ms []Metric) {
	help := make(map[string]string, len(ms))
	typ := make(map[string]string, len(ms))
	type sample struct {
		name, labels string
		value        float64
	}
	samples := make([]sample, 0, len(ms))
	for _, m := range ms {
		if _, ok := help[m.Name]; !ok && m.Help != "" {
			help[m.Name] = m.Help
		}
		if _, ok := typ[m.Name]; !ok && m.Type != "" {
			typ[m.Name] = m.Type
		}
		samples = append(samples, sample{m.Name, sampleLabels(m.Labels), m.Value})
	}
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].name != samples[j].name {
			return samples[i].name < samples[j].name
		}
		return samples[i].labels < samples[j].labels
	})
	seen := make(map[string]bool, len(ms))
	for _, s := range samples {
		if !seen[s.name] {
			seen[s.name] = true
			if h := help[s.name]; h != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.name, h)
			}
			t := typ[s.name]
			if t == "" {
				t = "gauge"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.name, t)
		}
		fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, strconv.FormatFloat(s.value, 'g', -1, 64))
	}
}

func (a *API) metrics(w http.ResponseWriter, _ *http.Request) {
	ms := a.ownMetrics()
	for _, f := range a.Metrics {
		ms = append(ms, f()...)
	}
	var b strings.Builder
	renderMetrics(&b, ms)
	// Histogram families (RPC latency, member durations, budget wait,
	// fsync latency, ...) render after the scalar samples.
	a.Orch.Telemetry.WritePrometheus(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String())) //nolint:errcheck — client gone is client's problem
}

func (a *API) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"rollouts": len(a.Orch.Statuses()),
		"active":   a.Orch.Active(),
		"queued":   a.Orch.Queued(),
	})
}
