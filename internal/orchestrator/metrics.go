package orchestrator

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Metric is one sample in Prometheus text exposition format. The control
// plane hand-writes the format (it is three lines per family) rather than
// pulling in a client library; everything the vendor exports is a gauge
// or a monotonic counter, so the tiny subset below is the whole story.
type Metric struct {
	// Name is the metric family name, e.g. "mirage_registry_agents".
	Name string
	// Help is the one-line # HELP text (first sample of a family wins).
	Help string
	// Type is "gauge" or "counter" (default gauge).
	Type string
	// Labels are rendered in the given order, e.g. {{"shard","3"}}.
	Labels [][2]string
	// Value is the sample value.
	Value float64
}

// MetricsFunc contributes metrics to one GET /metrics scrape. Each call
// must return a fresh snapshot; funcs run on the request goroutine.
type MetricsFunc func() []Metric

// ownMetrics is the orchestrator's built-in contribution: rollout
// lifecycle gauges and, when a worker budget is installed, its occupancy.
func (a *API) ownMetrics() []Metric {
	ms := []Metric{
		{Name: "mirage_rollouts_active", Help: "Rollouts currently holding an execution slot.", Value: float64(a.Orch.Active())},
		{Name: "mirage_rollouts_queued", Help: "Rollouts waiting in the admission queue.", Value: float64(a.Orch.Queued())},
	}
	states := make(map[State]int)
	for _, st := range a.Orch.Statuses() {
		states[st.State]++
	}
	names := make([]string, 0, len(states))
	for s := range states {
		names = append(names, string(s))
	}
	sort.Strings(names)
	for _, s := range names {
		ms = append(ms, Metric{
			Name: "mirage_rollouts", Help: "Rollouts by lifecycle state.",
			Labels: [][2]string{{"state", s}}, Value: float64(states[State(s)]),
		})
	}
	if b := a.Orch.Budget; b != nil {
		ms = append(ms,
			Metric{Name: "mirage_worker_budget_cap", Help: "Global worker budget size (concurrent member RPCs).", Value: float64(b.Cap())},
			Metric{Name: "mirage_worker_budget_in_flight", Help: "Member RPCs currently holding a budget slot.", Value: float64(b.InFlight())},
			Metric{Name: "mirage_worker_budget_high_water", Help: "Maximum concurrently held budget slots observed.", Value: float64(b.HighWater())},
		)
	}
	return ms
}

// renderMetrics writes samples in Prometheus text format, grouping HELP
// and TYPE headers per family in first-appearance order.
func renderMetrics(w *strings.Builder, ms []Metric) {
	seen := make(map[string]bool)
	for _, m := range ms {
		if !seen[m.Name] {
			seen[m.Name] = true
			typ := m.Type
			if typ == "" {
				typ = "gauge"
			}
			if m.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, typ)
		}
		w.WriteString(m.Name)
		if len(m.Labels) > 0 {
			w.WriteByte('{')
			for i, kv := range m.Labels {
				if i > 0 {
					w.WriteByte(',')
				}
				fmt.Fprintf(w, "%s=%s", kv[0], strconv.Quote(kv[1]))
			}
			w.WriteByte('}')
		}
		fmt.Fprintf(w, " %s\n", strconv.FormatFloat(m.Value, 'g', -1, 64))
	}
}

func (a *API) metrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	renderMetrics(&b, a.ownMetrics())
	for _, f := range a.Metrics {
		renderMetrics(&b, f())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String())) //nolint:errcheck — client gone is client's problem
}

func (a *API) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"rollouts": len(a.Orch.Statuses()),
		"active":   a.Orch.Active(),
		"queued":   a.Orch.Queued(),
	})
}
