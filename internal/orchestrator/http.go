package orchestrator

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/rollout"
	"repro/internal/staging"
)

// StartRequest is the wire form of "start a rollout". The admin API
// deliberately does not accept arbitrary upgrade payloads or cluster
// topologies over HTTP: the serving vendor already owns its clustered
// fleet and release store, so a request only picks the policy (and
// whether to resume the journal of a previous life of this rollout).
type StartRequest struct {
	// Policy is the staged deployment protocol name (balanced,
	// frontloading, nostaging, random, adaptive). Empty means balanced.
	Policy string `json:"policy,omitempty"`
	// Resume replays the journal named by Journal instead of starting
	// fresh; it requires Journal (a fresh rollout ID's default path can
	// never be the interrupted rollout's file).
	Resume bool `json:"resume,omitempty"`
	// Journal overrides the journal file path.
	Journal string `json:"journal,omitempty"`
	// AutoRollback arms journaled automatic rollback to the vendor's
	// baseline artifact when the upgrade is abandoned.
	AutoRollback bool `json:"auto_rollback,omitempty"`
	// Canary gate knobs (see staging.GatePolicy); GateMinSamples > 0
	// arms the gate.
	GateBaseline   float64 `json:"gate_baseline,omitempty"`
	GateMaxExcess  float64 `json:"gate_max_excess,omitempty"`
	GateMinSamples int     `json:"gate_min_samples,omitempty"`
	// Drift policy knobs (see DriftPolicy): DriftMax is the per-cluster
	// drifted-member budget, DriftAction what tripping it does (journal,
	// hold, restage; empty means journal).
	DriftMax    int    `json:"drift_max,omitempty"`
	DriftAction string `json:"drift_action,omitempty"`
}

// GatePolicy translates the request's gate knobs into a policy (disabled
// when GateMinSamples is 0).
func (r StartRequest) GatePolicy() staging.GatePolicy {
	if r.GateMinSamples <= 0 {
		return staging.GatePolicy{}
	}
	return staging.GatePolicy{
		Enabled:             true,
		BaselineFailureRate: r.GateBaseline,
		MaxExcessRate:       r.GateMaxExcess,
		MinSamples:          r.GateMinSamples,
	}
}

// DriftPolicy translates the request's drift knobs into a policy.
func (r StartRequest) DriftPolicy() DriftPolicy {
	return DriftPolicy{
		MaxDriftedPerCluster: r.DriftMax,
		Action:               DriftAction(r.DriftAction),
	}
}

// Launcher maps an admin start request to a full rollout Spec — the hook
// through which mirage-vendor supplies its fleet, upgrade artifact,
// debugging loop and release store.
type Launcher func(req StartRequest) (Spec, error)

// EventsResponse is one long-poll page of a rollout's event stream.
type EventsResponse struct {
	Events []rollout.Record `json:"events"`
	// Next is the cursor to pass as ?since= for the following page.
	Next int `json:"next"`
	// Done means the rollout is terminal and the log is exhausted.
	Done bool `json:"done"`
}

// WaitResponse reports whether the rollout finished within the wait
// window, with its (possibly still-moving) status either way.
type WaitResponse struct {
	Done   bool   `json:"done"`
	Status Status `json:"status"`
}

// API is the HTTP admin surface over an orchestrator:
//
//	POST /rollouts                  {policy, resume?}        → Status
//	GET  /rollouts                                           → []Status
//	GET  /rollouts/{id}                                      → Status
//	GET  /rollouts/{id}/events?since=N&wait=30s  (long-poll) → EventsResponse
//	GET  /rollouts/{id}/trace[?format=chrome]                → span tree
//	POST /rollouts/{id}/pause                                → Status
//	POST /rollouts/{id}/resume                               → Status
//	POST /rollouts/{id}/abort                                → Status
//	POST /rollouts/{id}/rollback                             → Status
//	POST /rollouts/{id}/wait?timeout=30s                     → WaitResponse
//	GET  /fleet/drift                                        → live drift view
//	POST /fleet/refresh                                      → new fleet view
//
// Errors are {"error": "..."} with a 4xx/5xx status.
type API struct {
	Orch *Orchestrator
	// Launch builds the Spec for POST /rollouts. A nil Launch makes
	// starting over HTTP a 501 — list/observe/control still work.
	Launch Launcher
	// Base, when set, is the parent context of HTTP-started rollouts
	// (default context.Background(): a rollout must outlive the HTTP
	// request that started it).
	Base context.Context
	// MaxWait caps the ?wait=/?timeout= long-poll windows (default 60s).
	MaxWait time.Duration
	// RetryAfter is the Retry-After hint (in seconds) sent with a 429
	// when the rollout admission queue is full (default 1).
	RetryAfter int
	// Metrics contributes additional metric families to GET /metrics
	// beyond the orchestrator's own (see Metric); mirage-vendor wires the
	// transport registry, transfer counters and worker budget here.
	Metrics []MetricsFunc
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — off by
	// default because the admin mux may be reachable beyond localhost.
	EnablePprof bool
	// FleetDrift, when set, serves the live drift monitor's state for
	// GET /fleet/drift (mirage-vendor wires the fleetwatch monitor's
	// FleetView here). Nil makes the route a 501 — the orchestrator
	// itself stays ignorant of how the fleet is watched.
	FleetDrift func() (any, error)
	// FleetRefresh, when set, performs a full fleet re-fingerprint into a
	// fresh fleet view and returns it, for POST /fleet/refresh. Nil makes
	// the route a 501.
	FleetRefresh func() (any, error)
}

func (a *API) retryAfter() string {
	if a.RetryAfter > 0 {
		return strconv.Itoa(a.RetryAfter)
	}
	return "1"
}

// Handler returns the API's routes as an http.Handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /rollouts", a.start)
	mux.HandleFunc("GET /rollouts", a.list)
	mux.HandleFunc("GET /rollouts/{id}", a.get)
	mux.HandleFunc("GET /rollouts/{id}/events", a.events)
	mux.HandleFunc("GET /rollouts/{id}/trace", a.trace)
	mux.HandleFunc("POST /rollouts/{id}/pause", a.pause)
	mux.HandleFunc("POST /rollouts/{id}/resume", a.resume)
	mux.HandleFunc("POST /rollouts/{id}/abort", a.abort)
	mux.HandleFunc("POST /rollouts/{id}/rollback", a.rollback)
	mux.HandleFunc("POST /rollouts/{id}/wait", a.wait)
	mux.HandleFunc("GET /fleet/drift", a.fleetDrift)
	mux.HandleFunc("POST /fleet/refresh", a.fleetRefresh)
	mux.HandleFunc("GET /healthz", a.healthz)
	mux.HandleFunc("GET /metrics", a.metrics)
	if a.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck — client gone is client's problem
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (a *API) handle(w http.ResponseWriter, r *http.Request) (*Handle, bool) {
	h, ok := a.Orch.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no rollout "+r.PathValue("id")))
		return nil, false
	}
	return h, true
}

// window resolves a client-requested wait duration against MaxWait.
func (a *API) window(raw string) time.Duration {
	max := a.MaxWait
	if max <= 0 {
		max = time.Minute
	}
	if raw == "" {
		return max
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 || d > max {
		return max
	}
	return d
}

func (a *API) start(w http.ResponseWriter, r *http.Request) {
	if a.Launch == nil {
		writeError(w, http.StatusNotImplemented, errors.New("this control plane does not launch rollouts"))
		return
	}
	var req StartRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Policy != "" {
		if _, ok := staging.ParsePolicy(req.Policy); !ok {
			writeError(w, http.StatusBadRequest, errors.New("unknown policy "+strconv.Quote(req.Policy)))
			return
		}
	}
	switch DriftAction(req.DriftAction) {
	case "", DriftJournal, DriftHold, DriftRestage:
	default:
		writeError(w, http.StatusBadRequest, errors.New("unknown drift action "+strconv.Quote(req.DriftAction)))
		return
	}
	spec, err := a.Launch(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	base := a.Base
	if base == nil {
		base = context.Background()
	}
	h, err := a.Orch.Start(base, spec)
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			// Backpressure, not failure: the vendor is at its in-flight
			// rollout bound and the admission queue is full. Tell the
			// client when to come back instead of letting it pile on.
			w.Header().Set("Retry-After", a.retryAfter())
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, h.Status())
}

func (a *API) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.Orch.Statuses())
}

func (a *API) get(w http.ResponseWriter, r *http.Request) {
	if h, ok := a.handle(w, r); ok {
		writeJSON(w, http.StatusOK, h.Status())
	}
}

func (a *API) events(w http.ResponseWriter, r *http.Request) {
	h, ok := a.handle(w, r)
	if !ok {
		return
	}
	since, _ := strconv.Atoi(r.URL.Query().Get("since"))
	ctx, cancel := context.WithTimeout(r.Context(), a.window(r.URL.Query().Get("wait")))
	defer cancel()
	recs, done := h.EventsSince(ctx, since)
	writeJSON(w, http.StatusOK, EventsResponse{
		Events: recs,
		Next:   since + len(recs),
		Done:   done,
	})
}

// trace serves a rollout's span tree: the raw telemetry snapshot as
// JSON, or — with ?format=chrome — Chrome trace-event format that loads
// directly in Perfetto / chrome://tracing.
func (a *API) trace(w http.ResponseWriter, r *http.Request) {
	if _, ok := a.handle(w, r); !ok {
		return
	}
	t := a.Orch.Tracer.Get(r.PathValue("id"))
	if t == nil {
		writeError(w, http.StatusNotFound,
			errors.New("no trace for rollout "+r.PathValue("id")+" (tracer not enabled, or trace evicted)"))
		return
	}
	snap := t.Snapshot()
	if r.URL.Query().Get("format") == "chrome" {
		data, err := snap.Chrome()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data) //nolint:errcheck — client gone is client's problem
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (a *API) pause(w http.ResponseWriter, r *http.Request) {
	if h, ok := a.handle(w, r); ok {
		h.Pause()
		writeJSON(w, http.StatusOK, h.Status())
	}
}

func (a *API) resume(w http.ResponseWriter, r *http.Request) {
	if h, ok := a.handle(w, r); ok {
		h.ResumeRun()
		writeJSON(w, http.StatusOK, h.Status())
	}
}

func (a *API) abort(w http.ResponseWriter, r *http.Request) {
	if h, ok := a.handle(w, r); ok {
		h.Abort()
		writeJSON(w, http.StatusOK, h.Status())
	}
}

func (a *API) rollback(w http.ResponseWriter, r *http.Request) {
	h, ok := a.handle(w, r)
	if !ok {
		return
	}
	if _, err := h.Rollback(r.Context()); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, h.Status())
}

func (a *API) fleetDrift(w http.ResponseWriter, _ *http.Request) {
	if a.FleetDrift == nil {
		writeError(w, http.StatusNotImplemented, errors.New("this control plane does not watch its fleet"))
		return
	}
	v, err := a.FleetDrift()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (a *API) fleetRefresh(w http.ResponseWriter, _ *http.Request) {
	if a.FleetRefresh == nil {
		writeError(w, http.StatusNotImplemented, errors.New("this control plane does not watch its fleet"))
		return
	}
	v, err := a.FleetRefresh()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (a *API) wait(w http.ResponseWriter, r *http.Request) {
	h, ok := a.handle(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), a.window(r.URL.Query().Get("timeout")))
	defer cancel()
	select {
	case <-h.Done():
		writeJSON(w, http.StatusOK, WaitResponse{Done: true, Status: h.Status()})
	case <-ctx.Done():
		writeJSON(w, http.StatusOK, WaitResponse{Done: false, Status: h.Status()})
	}
}
