package orchestrator

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/rollout"
)

// Live-fleet drift and rollouts. A rollout's plan is built from a
// clustering of the fleet as it looked when the rollout started; machines
// keep changing underneath it (package installs, config edits, operator
// fixes). The fleetwatch monitor classifies each change and the vendor
// bridges rep-invalidating ones here: NotifyDrift fans a neutral
// DriftEvent to every live rollout, which journals it as a first-class
// RecDrift record, folds it into its status snapshot, and applies its
// DriftPolicy — journal-and-continue, hold at the next stage barrier, or
// abort and re-stage from the current fleet view.

// DriftAction selects what a rollout does when a cluster's drifted-member
// count exceeds the policy budget.
type DriftAction string

const (
	// DriftJournal (the default) records drift events in the journal and
	// status but never interferes with the plan.
	DriftJournal DriftAction = "journal"
	// DriftHold pauses the rollout at its next stage barrier; ResumeRun
	// (operator ack) releases it.
	DriftHold DriftAction = "hold"
	// DriftRestage aborts the rollout and relaunches it against clusters
	// rebuilt from the live fleet view (Spec.Restage). The journal of the
	// aborted attempt ends abandoned; the relaunch runs under a fresh
	// journal and ID, recorded in Status.RestagedAs.
	DriftRestage DriftAction = "restage"
)

// DriftPolicy is a rollout's tolerance for mid-flight fleet drift.
type DriftPolicy struct {
	// MaxDriftedPerCluster is the number of rep-invalidating drifted
	// members a single cluster of deployment tolerates before Action
	// fires. Zero (the default) means the first drifted member trips it.
	MaxDriftedPerCluster int
	// Action is what tripping the budget does; empty means DriftJournal.
	Action DriftAction
}

// DriftEvent is the orchestrator's neutral view of one fleet change, as
// the vendor bridges it from the drift monitor (string fields only, so
// this package needs no fleetwatch import).
type DriftEvent struct {
	// Machine is the member whose profile changed.
	Machine string
	// Cluster names the live-fleet cluster the machine left ("" if it was
	// new to the fleet).
	Cluster string
	// To names the cluster it landed in ("" if it left the fleet).
	To string
	// Class is the monitor's classification: "migrated" (harmless move)
	// or "drifted" (rep-invalidating). Stable events are never bridged.
	Class string
	// Version is the fleet view version that produced the event.
	Version uint64
}

// NotifyDrift fans a drift event to every non-terminal rollout. Each
// rollout that counts the machine among its members journals and folds
// the event; the rest ignore it.
func (o *Orchestrator) NotifyDrift(ev DriftEvent) {
	for _, h := range o.List() {
		h.NotifyDrift(ev)
	}
}

// NotifyDrift folds one fleet drift event into this rollout: appended to
// the event log, journaled as a RecDrift record (durable history that
// survives crash-resume without driving protocol state), counted into the
// status snapshot, and checked against the spec's DriftPolicy. Events for
// machines outside the rollout's plan, and non-drift classes, are
// ignored.
func (h *Handle) NotifyDrift(ev DriftEvent) {
	if ev.Class != "migrated" && ev.Class != "drifted" {
		return
	}
	h.mu.Lock()
	if h.status.State.Terminal() {
		h.mu.Unlock()
		return
	}
	m := h.status.Members[ev.Machine]
	if m == nil {
		h.mu.Unlock()
		return
	}
	reason := ev.Class
	if ev.To != "" {
		reason += " to " + ev.To
	}
	rec := rollout.Record{
		Type: rollout.RecDrift, Stage: -1,
		Node: ev.Machine, Cluster: m.Cluster, Reason: reason,
	}
	rec.Seq = len(h.events) + 1
	h.events = append(h.events, rec)
	j := h.liveJournal
	hold, restage := h.applyDriftLocked(ev.Machine, m.Cluster, ev.Class)
	h.signalLocked()
	h.mu.Unlock()
	if j != nil {
		// The journal serializes appends internally, so this is safe next
		// to the controller's recorder. A failure (including the journal
		// closing because the rollout just finished) only costs the
		// durable copy of an advisory record; the in-memory fold stands.
		j.Append(rec) //nolint:errcheck
	}
	if hold {
		h.Pause()
	}
	if restage {
		go h.restage()
	}
}

// applyDriftLocked counts one drift event and evaluates the policy;
// callers hold h.mu. Only "drifted" (rep-invalidating) events count
// toward the per-cluster budget — migrations are recorded but free.
func (h *Handle) applyDriftLocked(machine, clusterID, class string) (hold, restage bool) {
	st := &h.status
	m := st.Members[machine]
	if class != "drifted" || m == nil || m.Drifted {
		return false, false
	}
	m.Drifted = true
	st.Drifted++
	if h.driftByCluster == nil {
		h.driftByCluster = make(map[string]int)
	}
	h.driftByCluster[clusterID]++
	pol := h.spec.Drift
	if h.driftByCluster[clusterID] <= pol.MaxDriftedPerCluster {
		return false, false
	}
	switch pol.Action {
	case DriftHold:
		if !h.paused && st.DriftHold == "" {
			st.DriftHold = fmt.Sprintf(
				"cluster %s: %d drifted member(s) exceed budget %d",
				clusterID, h.driftByCluster[clusterID], pol.MaxDriftedPerCluster)
			return true, false
		}
	case DriftRestage:
		if !h.restaging && h.spec.Restage != nil {
			h.restaging = true
			return false, true
		}
	}
	return false, false
}

// foldPriorDriftLocked replays the drift records of a resumed journal
// into the status snapshot. Prior records restore the counts but never
// re-fire the policy: the drift that mattered is re-evaluated against the
// live fleet, not against history (see rollout.RecDrift).
func (h *Handle) foldPriorDriftLocked(prior []rollout.Record) {
	for _, r := range prior {
		if r.Type != rollout.RecDrift {
			continue
		}
		if m := h.status.Members[r.Node]; m != nil && !m.Drifted &&
			strings.HasPrefix(r.Reason, "drifted") {
			m.Drifted = true
			h.status.Drifted++
			if h.driftByCluster == nil {
				h.driftByCluster = make(map[string]int)
			}
			h.driftByCluster[r.Cluster]++
		}
	}
}

// restage executes the DriftRestage action: abort this rollout (its
// journal seals abandoned), rebuild the clusters of deployment from the
// live fleet view via Spec.Restage, and relaunch the same upgrade as a
// new rollout under a fresh ID and journal. There is deliberately no
// in-place plan surgery — the journaled plan identity is immutable, so a
// re-stage is honestly a new rollout, linked from the old status.
func (h *Handle) restage() {
	clusters, err := h.spec.Restage()
	if err != nil {
		h.mu.Lock()
		h.restaging = false
		h.status.Error = fmt.Sprintf("drift restage: %v", err)
		h.signalLocked()
		h.mu.Unlock()
		return
	}
	h.Abort()
	spec := h.spec
	spec.Clusters = clusters
	spec.Journal = "" // fresh default journal under the new ID
	spec.Resume = false
	next, err := h.orch.Start(context.Background(), spec)
	h.mu.Lock()
	if err != nil {
		h.status.Error = fmt.Sprintf("drift restage: %v", err)
	} else {
		h.status.RestagedAs = next.ID()
	}
	h.signalLocked()
	h.mu.Unlock()
}

// Drifted returns the names of this rollout's members currently counted
// as drifted, sorted by the order they were reported.
func (h *Handle) DriftedMembers() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	seen := make(map[string]bool)
	for _, r := range h.events {
		if r.Type != rollout.RecDrift || seen[r.Node] ||
			!strings.HasPrefix(r.Reason, "drifted") {
			continue
		}
		if m := h.status.Members[r.Node]; m != nil && m.Drifted {
			seen[r.Node] = true
			out = append(out, r.Node)
		}
	}
	return out
}
