package orchestrator

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client speaks the admin API from the other end of the wire — the
// library behind cmd/mirage-ctl, and the proof that the HTTP surface is
// complete: everything a Handle can do locally, a Client can do remotely.
type Client struct {
	// Base is the control plane's root URL, e.g. "http://127.0.0.1:7080".
	Base string
	// HTTP is the underlying client (http.DefaultClient if nil). Long
	// polls (Events, Wait) hold a request open up to the server's window,
	// so a custom client needs a generous or absent timeout.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON reply into out, converting
// {"error": ...} replies into errors.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("mirage-ctl: %s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("mirage-ctl: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Start launches a rollout and returns its initial status (the ID field
// is what every other verb takes).
func (c *Client) Start(ctx context.Context, req StartRequest) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/rollouts", req, &st)
	return st, err
}

// List returns the status of every rollout the control plane knows.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var sts []Status
	err := c.do(ctx, http.MethodGet, "/rollouts", nil, &sts)
	return sts, err
}

// Get returns one rollout's status.
func (c *Client) Get(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/rollouts/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Pause asks the rollout to hold at its next stage barrier.
func (c *Client) Pause(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/rollouts/"+url.PathEscape(id)+"/pause", nil, &st)
	return st, err
}

// Resume releases a paused rollout.
func (c *Client) Resume(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/rollouts/"+url.PathEscape(id)+"/resume", nil, &st)
	return st, err
}

// Abort cancels the rollout; the reply's status is terminal.
func (c *Client) Abort(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/rollouts/"+url.PathEscape(id)+"/abort", nil, &st)
	return st, err
}

// Rollback drives the members an abandoned (or aborted, or failed)
// rollout integrated back to the vendor's baseline version; the reply's
// status is rolled_back on success.
func (c *Client) Rollback(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/rollouts/"+url.PathEscape(id)+"/rollback", nil, &st)
	return st, err
}

// Events fetches one long-poll page of the rollout's event stream,
// holding the request open up to `wait` when the cursor is at the tip.
func (c *Client) Events(ctx context.Context, id string, since int, wait time.Duration) (EventsResponse, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.Itoa(since))
	}
	if wait > 0 {
		q.Set("wait", wait.String())
	}
	path := "/rollouts/" + url.PathEscape(id) + "/events"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var er EventsResponse
	err := c.do(ctx, http.MethodGet, path, nil, &er)
	return er, err
}

// FleetDrift returns the control plane's live drift view as raw JSON
// (the orchestrator is deliberately ignorant of the fleet-watch types;
// callers that want structure decode into fleetwatch.FleetView).
func (c *Client) FleetDrift(ctx context.Context) (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.do(ctx, http.MethodGet, "/fleet/drift", nil, &raw)
	return raw, err
}

// FleetRefresh asks the vendor for a full fleet re-fingerprint into a
// fresh fleet view, returned as raw JSON.
func (c *Client) FleetRefresh(ctx context.Context) (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.do(ctx, http.MethodPost, "/fleet/refresh", nil, &raw)
	return raw, err
}

// Wait blocks until the rollout is terminal or ctx is done, re-issuing
// bounded server-side waits (window per round trip) so no single HTTP
// request outlives the server's long-poll cap. It returns the final
// status.
func (c *Client) Wait(ctx context.Context, id string, window time.Duration) (Status, error) {
	if window <= 0 {
		window = 30 * time.Second
	}
	for {
		var wr WaitResponse
		path := "/rollouts/" + url.PathEscape(id) + "/wait?timeout=" + url.QueryEscape(window.String())
		if err := c.do(ctx, http.MethodPost, path, nil, &wr); err != nil {
			return Status{}, err
		}
		if wr.Done {
			return wr.Status, nil
		}
		if err := ctx.Err(); err != nil {
			return wr.Status, err
		}
	}
}
