package orchestrator

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/deploy"
)

func TestHealthzAndMetrics(t *testing.T) {
	orch := New(t.TempDir())
	orch.Budget = deploy.NewBudget(16)
	api := &API{
		Orch: orch,
		Launch: func(req StartRequest) (Spec, error) {
			return Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: fleet("met", 1, nil)}, nil
		},
		Metrics: []MetricsFunc{func() []Metric {
			return []Metric{
				{Name: "mirage_registry_agents", Help: "Registered agents per shard.", Type: "gauge",
					Labels: [][2]string{{"shard", "0"}}, Value: 3},
				{Name: "mirage_registry_agents",
					Labels: [][2]string{{"shard", "1"}}, Value: 4},
			}
		}},
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	h, err := orch.Start(context.Background(), Spec{
		Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: fleet("met0", 1, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	var hz struct {
		Status   string `json:"status"`
		Rollouts int    `json:"rollouts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Rollouts != 1 {
		t.Fatalf("healthz = %+v", hz)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# HELP mirage_rollouts_active",
		"# TYPE mirage_rollouts_active gauge",
		"mirage_rollouts_active 0",
		`mirage_rollouts{state="succeeded"} 1`,
		"mirage_worker_budget_cap 16",
		"mirage_worker_budget_in_flight 0",
		`mirage_registry_agents{shard="0"} 3`,
		`mirage_registry_agents{shard="1"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	// HELP/TYPE must render once per family, not once per sample.
	if n := strings.Count(text, "# HELP mirage_registry_agents"); n != 1 {
		t.Fatalf("HELP for mirage_registry_agents rendered %d times, want 1", n)
	}
}

func TestPprofGated(t *testing.T) {
	orch := New(t.TempDir())
	plain := httptest.NewServer((&API{Orch: orch}).Handler())
	t.Cleanup(plain.Close)
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without EnablePprof")
	}

	prof := httptest.NewServer((&API{Orch: orch, EnablePprof: true}).Handler())
	t.Cleanup(prof.Close)
	resp, err = http.Get(prof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ with EnablePprof = %d", resp.StatusCode)
	}
}
