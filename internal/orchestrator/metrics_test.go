package orchestrator

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/deploy"
	"repro/internal/telemetry"
)

func TestHealthzAndMetrics(t *testing.T) {
	orch := New(t.TempDir())
	orch.Budget = deploy.NewBudget(16)
	api := &API{
		Orch: orch,
		Launch: func(req StartRequest) (Spec, error) {
			return Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: fleet("met", 1, nil)}, nil
		},
		Metrics: []MetricsFunc{func() []Metric {
			return []Metric{
				{Name: "mirage_registry_agents", Help: "Registered agents per shard.", Type: "gauge",
					Labels: [][2]string{{"shard", "0"}}, Value: 3},
				{Name: "mirage_registry_agents",
					Labels: [][2]string{{"shard", "1"}}, Value: 4},
			}
		}},
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	h, err := orch.Start(context.Background(), Spec{
		Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: fleet("met0", 1, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	var hz struct {
		Status   string `json:"status"`
		Rollouts int    `json:"rollouts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Rollouts != 1 {
		t.Fatalf("healthz = %+v", hz)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# HELP mirage_rollouts_active",
		"# TYPE mirage_rollouts_active gauge",
		"mirage_rollouts_active 0",
		`mirage_rollouts{state="succeeded"} 1`,
		"mirage_worker_budget_cap 16",
		"mirage_worker_budget_in_flight 0",
		`mirage_registry_agents{shard="0"} 3`,
		`mirage_registry_agents{shard="1"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	// HELP/TYPE must render once per family, not once per sample.
	if n := strings.Count(text, "# HELP mirage_registry_agents"); n != 1 {
		t.Fatalf("HELP for mirage_registry_agents rendered %d times, want 1", n)
	}
}

// TestTraceEndpoint runs one traced rollout and exercises both trace
// exports: the JSON snapshot must carry a rollout-rooted span tree, the
// chrome format must be loadable trace-event JSON, and rollouts the
// tracer never saw must 404.
func TestTraceEndpoint(t *testing.T) {
	orch := New(t.TempDir())
	orch.Telemetry = telemetry.NewRegistry()
	orch.Tracer = &telemetry.Tracer{}
	api := &API{Orch: orch}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	h, err := orch.Start(context.Background(), Spec{
		Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: fleet("tr", 1, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/rollouts/" + h.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d", resp.StatusCode)
	}
	var snap telemetry.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.RolloutID != h.ID() || len(snap.Spans) == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	kinds := map[string]bool{}
	for _, s := range snap.Spans {
		kinds[s.Kind] = true
	}
	for _, k := range []string{"rollout", "stage", "wave", "test", "integrate"} {
		if !kinds[k] {
			t.Fatalf("trace missing %q span (kinds %v)", k, kinds)
		}
	}

	cresp, err := http.Get(ts.URL + "/rollouts/" + h.ID() + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no trace events")
	}

	nresp, err := http.Get(ts.URL + "/rollouts/" + h.ID() + "x/trace")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET trace for unknown rollout = %d, want 404", nresp.StatusCode)
	}
}

// TestRenderMetricsEscaping drives label values through the Prometheus
// escaping rules: backslash, double quote and newline must render as
// \\, \" and \n inside the label block.
func TestRenderMetricsEscaping(t *testing.T) {
	var b strings.Builder
	renderMetrics(&b, []Metric{
		{Name: "m_esc", Help: "Escaping.", Labels: [][2]string{{"v", `back\slash`}}, Value: 1},
		{Name: "m_esc", Labels: [][2]string{{"v", `quo"te`}}, Value: 2},
		{Name: "m_esc", Labels: [][2]string{{"v", "new\nline"}}, Value: 3},
	})
	text := b.String()
	for _, want := range []string{
		`m_esc{v="back\\slash"} 1`,
		`m_esc{v="quo\"te"} 2`,
		`m_esc{v="new\nline"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, "\nline\"} 3") {
		t.Fatalf("raw newline leaked into a label value:\n%s", text)
	}
}

// TestRenderMetricsGrouping interleaves two families and checks each
// family's samples render contiguously under a single HELP/TYPE header,
// with the first sample's Help/Type winning and empty Type defaulting
// to gauge.
func TestRenderMetricsGrouping(t *testing.T) {
	var b strings.Builder
	renderMetrics(&b, []Metric{
		{Name: "m_bbb", Help: "B family.", Type: "counter", Labels: [][2]string{{"k", "1"}}, Value: 1},
		{Name: "m_aaa", Help: "A family.", Value: 10},
		{Name: "m_bbb", Help: "ignored duplicate help", Labels: [][2]string{{"k", "0"}}, Value: 2},
	})
	want := "# HELP m_aaa A family.\n" +
		"# TYPE m_aaa gauge\n" +
		"m_aaa 10\n" +
		"# HELP m_bbb B family.\n" +
		"# TYPE m_bbb counter\n" +
		`m_bbb{k="0"} 2` + "\n" +
		`m_bbb{k="1"} 1` + "\n"
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestRenderMetricsDeterministic renders the same samples in shuffled
// input orders and requires byte-identical output — the property that
// makes consecutive scrapes of identical state diffable.
func TestRenderMetricsDeterministic(t *testing.T) {
	ms := []Metric{
		{Name: "m_z", Help: "Z.", Value: 1},
		{Name: "m_a", Help: "A.", Labels: [][2]string{{"s", "x"}}, Value: 2},
		{Name: "m_a", Labels: [][2]string{{"s", "b"}}, Value: 3},
		{Name: "m_k", Help: "K.", Type: "counter", Value: 4},
	}
	var first string
	for i := 0; i < len(ms); i++ {
		shuffled := append(append([]Metric{}, ms[i:]...), ms[:i]...)
		var b strings.Builder
		renderMetrics(&b, shuffled)
		if i == 0 {
			first = b.String()
			continue
		}
		if b.String() != first {
			t.Fatalf("rotation %d rendered differently:\n%s\nvs:\n%s", i, b.String(), first)
		}
	}
}

func TestPprofGated(t *testing.T) {
	orch := New(t.TempDir())
	plain := httptest.NewServer((&API{Orch: orch}).Handler())
	t.Cleanup(plain.Close)
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without EnablePprof")
	}

	prof := httptest.NewServer((&API{Orch: orch, EnablePprof: true}).Handler())
	t.Cleanup(prof.Close)
	resp, err = http.Get(prof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ with EnablePprof = %d", resp.StatusCode)
	}
}
