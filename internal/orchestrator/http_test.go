package orchestrator

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/rollout"
)

// TestHTTPRoundTrip drives the full lifecycle — start → status → pause →
// resume → wait, plus the event long-poll — through the same Client that
// cmd/mirage-ctl wraps, against the same API handler mirage-vendor -serve
// mounts.
func TestHTTPRoundTrip(t *testing.T) {
	gated := &gatedNode{
		okNode:  okNode{name: "http-c0-rep"},
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	orch := New(t.TempDir())
	api := &API{
		Orch: orch,
		Launch: func(req StartRequest) (Spec, error) {
			policy := deploy.PolicyBalanced
			return Spec{
				Policy:   policy,
				Upgrade:  upgrade("v1"),
				Clusters: fleet("http", 2, map[string]deploy.Node{"http-c0-rep": gated}),
				Journal:  req.Journal,
				Resume:   req.Resume,
			}, nil
		},
		MaxWait: 5 * time.Second,
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	// start
	st, err := c.Start(ctx, StartRequest{Policy: "balanced"})
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	if id == "" || st.Stages != 4 {
		t.Fatalf("start status = %+v", st)
	}

	// status while mid-wave
	<-gated.started
	st, err = c.Get(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning || st.Stage != 0 {
		t.Fatalf("running status = %+v", st)
	}

	// pause, then let the in-flight stage converge into the barrier
	if st, err = c.Pause(ctx, id); err != nil {
		t.Fatal(err)
	}
	if st.State != StatePausing {
		t.Fatalf("pause status = %s", st.State)
	}
	gated.release <- struct{}{}
	deadline := time.Now().Add(5 * time.Second)
	for st.State != StatePaused {
		if time.Now().After(deadline) {
			t.Fatalf("state = %s, want paused", st.State)
		}
		if st, err = c.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
	}

	// a wait that cannot finish while paused reports done=false
	short, err := c.Events(ctx, id, st.Events, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if short.Done || len(short.Events) != 0 {
		t.Fatalf("long-poll at tip while paused = %+v", short)
	}

	// resume → wait → succeeded
	if _, err = c.Resume(ctx, id); err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, id, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateSucceeded || st.Integrated != 4 {
		t.Fatalf("final status = %+v", st)
	}

	// the event log pages to done and walks the whole plan
	var all []rollout.Record
	since := 0
	for {
		page, err := c.Events(ctx, id, since, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, page.Events...)
		since = page.Next
		if page.Done {
			break
		}
	}
	gates := 0
	for _, ev := range all {
		if ev.Type == rollout.RecGate {
			gates++
		}
	}
	if gates != 4 || len(all) != st.Events {
		t.Fatalf("event log: %d records, %d gates (status says %d events)", len(all), gates, st.Events)
	}

	// list knows the rollout; unknown IDs 404 with a named error
	sts, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || sts[0].ID != id {
		t.Fatalf("list = %+v", sts)
	}
	if _, err := c.Get(ctx, "r999"); err == nil || !strings.Contains(err.Error(), "no rollout") {
		t.Fatalf("missing-rollout error = %v", err)
	}
}

// TestHTTPAbort covers the remaining verb: an HTTP abort terminates the
// rollout and reports the aborted state in the reply.
func TestHTTPAbort(t *testing.T) {
	stuck := &stuckNode{okNode: okNode{name: "ha-c0-rep"}, started: make(chan struct{})}
	orch := New(t.TempDir())
	api := &API{Orch: orch, Launch: func(StartRequest) (Spec, error) {
		return Spec{
			Policy:   deploy.PolicyBalanced,
			Upgrade:  upgrade("v1"),
			Clusters: fleet("ha", 1, map[string]deploy.Node{"ha-c0-rep": stuck}),
		}, nil
	}}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	st, err := c.Start(ctx, StartRequest{})
	if err != nil {
		t.Fatal(err)
	}
	<-stuck.started
	st, err = c.Abort(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateAborted {
		t.Fatalf("abort status = %s", st.State)
	}
	recs, err := rollout.Load(st.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if last := recs[len(recs)-1]; last.Type != rollout.RecAbandoned {
		t.Fatalf("journal tail = %+v", last)
	}
}

// TestHTTPStartValidation: bad policies and a missing launcher are typed
// client-visible errors, not panics.
func TestHTTPStartValidation(t *testing.T) {
	orch := New("")
	api := &API{Orch: orch, Launch: func(StartRequest) (Spec, error) {
		return Spec{Policy: deploy.PolicyBalanced, Upgrade: upgrade("v1"), Clusters: fleet("hv", 1, nil)}, nil
	}}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}
	if _, err := c.Start(context.Background(), StartRequest{Policy: "warp-speed"}); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("bad policy error = %v", err)
	}

	noLaunch := httptest.NewServer((&API{Orch: orch}).Handler())
	t.Cleanup(noLaunch.Close)
	c2 := &Client{Base: noLaunch.URL}
	if _, err := c2.Start(context.Background(), StartRequest{}); err == nil || !strings.Contains(err.Error(), "does not launch") {
		t.Fatalf("no-launcher error = %v", err)
	}
}
