package transport

import (
	"testing"
	"time"
)

// TestFaultInjectorDeterminism: the same plan over the same per-agent
// call sequence injects the same faults, regardless of how calls from
// different agents interleave.
func TestFaultInjectorDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, Drop: 0.1, Delay: 0.2, Corrupt: 0.1, Reset: 0.1}
	sequence := func(agents []string) map[string][]FaultKind {
		fi := NewFaultInjector(plan)
		out := map[string][]FaultKind{}
		for i := 0; i < 50; i++ {
			for _, a := range agents {
				out[a] = append(out[a], fi.Next(a, OpFetchChunks))
			}
		}
		return out
	}
	// Same agents, different interleavings: per-agent streams identical.
	first := sequence([]string{"a", "b", "c"})
	second := sequence([]string{"c", "a", "b"})
	for agent, kinds := range first {
		for i, k := range kinds {
			if second[agent][i] != k {
				t.Fatalf("agent %s call %d: %v vs %v — stream not deterministic", agent, i, k, second[agent][i])
			}
		}
	}
	// Different agents see different streams (astronomically unlikely to
	// collide over 50 draws at these rates).
	same := 0
	for i := range first["a"] {
		if first["a"][i] == first["b"][i] {
			same++
		}
	}
	if same == len(first["a"]) {
		t.Fatal("two agents drew identical fault streams")
	}
}

// TestFaultInjectorCrashSchedule: a crash fires exactly at its scheduled
// call count, exactly once, and does not consume the rate budget.
func TestFaultInjectorCrashSchedule(t *testing.T) {
	fi := NewFaultInjector(FaultPlan{
		Crashes: []CrashSpec{{Agent: "m", AfterCalls: 3}, {Agent: "m", AfterCalls: 5}},
	})
	var kinds []FaultKind
	for i := 0; i < 8; i++ {
		kinds = append(kinds, fi.Next("m", OpTest))
	}
	for i, k := range kinds {
		want := FaultNone
		if i == 2 || i == 4 { // calls 3 and 5, 1-based
			want = FaultCrash
		}
		if k != want {
			t.Fatalf("call %d = %v, want %v (all: %v)", i+1, k, want, kinds)
		}
	}
	if fi.Next("other", OpTest) != FaultNone {
		t.Fatal("crash leaked onto another agent")
	}
	if got := fi.Injected(); got != 2 {
		t.Fatalf("injected = %d, want the 2 crashes", got)
	}
}

// TestFaultInjectorBudget: MaxFaults stops rate-driven injection without
// desynchronizing the streams.
func TestFaultInjectorBudget(t *testing.T) {
	plan := FaultPlan{Seed: 7, Drop: 1.0, MaxFaults: 5}
	fi := NewFaultInjector(plan)
	fired := 0
	for i := 0; i < 100; i++ {
		if fi.Next("m", OpTest) != FaultNone {
			fired++
		}
	}
	if fired != 5 {
		t.Fatalf("fired %d faults under a budget of 5", fired)
	}
	if got := fi.Injected(); got != 5 {
		t.Fatalf("Injected = %d", got)
	}
}

// TestFaultInjectorCorruptOnlyChunks: a corrupt draw on a non-chunk op
// injects nothing (and does not burn the budget).
func TestFaultInjectorCorruptOnlyChunks(t *testing.T) {
	plan := FaultPlan{Seed: 1, Corrupt: 1.0}
	fi := NewFaultInjector(plan)
	for i := 0; i < 10; i++ {
		if got := fi.Next("m", OpTest); got != FaultNone {
			t.Fatalf("corrupt fired on %s: %v", OpTest, got)
		}
	}
	if got := fi.Injected(); got != 0 {
		t.Fatalf("injected = %d for suppressed corrupts", got)
	}
	if got := fi.Next("m", OpFetchChunks); got != FaultCorrupt {
		t.Fatalf("chunk push draw = %v, want corrupt", got)
	}
}

// TestFaultInjectorDelayDefault: DelayBy defaults to 2ms.
func TestFaultInjectorDelayDefault(t *testing.T) {
	if got := NewFaultInjector(FaultPlan{}).DelayBy(); got != 2*time.Millisecond {
		t.Fatalf("default DelayBy = %v", got)
	}
	if got := NewFaultInjector(FaultPlan{DelayBy: time.Second}).DelayBy(); got != time.Second {
		t.Fatalf("explicit DelayBy = %v", got)
	}
}
