package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/deploy"
)

// silentAgent registers over raw TCP and then never answers a request —
// the fixture for "a call is in flight and will not return on its own".
func silentAgent(t *testing.T, s *Server, name string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	bw := bufio.NewWriter(conn)
	if err := json.NewEncoder(bw).Encode(Frame{Op: OpRegister, Register: &RegisterReq{Machine: name}}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !s.WaitForAgent(name, 5*time.Second) {
		t.Fatal("silent agent never registered")
	}
	return conn
}

func TestCloseUnblocksInFlightCallWithTypedError(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	silentAgent(t, s, "mute-call")

	errc := make(chan error, 1)
	go func() { errc <- s.Ping(context.Background(), "mute-call") }()
	time.Sleep(20 * time.Millisecond) // let the call block on the reply
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("in-flight call err = %v, want ErrServerClosed", err)
		}
		if deploy.IsTransient(err) {
			t.Fatalf("ErrServerClosed classified transient: %v — a closed server must halt the plan, not quarantine the fleet", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call still blocked after Close")
	}
	// Calls after Close are refused with the same typed error.
	if err := s.Ping(context.Background(), "mute-call"); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-close call err = %v, want ErrServerClosed", err)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseUnblocksRegistryWaiters(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		n  int
		ok bool
	}
	got := make(chan result, 2)
	go func() { got <- result{n: s.WaitForAgents(99, time.Minute)} }()
	go func() { got <- result{ok: s.WaitForAgent("nobody", time.Minute)} }()
	time.Sleep(20 * time.Millisecond)
	t0 := time.Now()
	s.Close()
	for i := 0; i < 2; i++ {
		select {
		case r := <-got:
			if r.n != 0 && r.ok {
				t.Fatalf("waiter reported progress on a closed server: %+v", r)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("registry waiter still blocked after Close")
		}
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("waiters took %v to wake, want immediate", d)
	}
}

func TestCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A mix of load: two real agents, one silent agent, one connection
	// stuck mid-handshake, one in-flight call that never completes.
	mA, mB := userMachine("shut-a", false), userMachine("shut-b", false)
	go NewAgent(mA).Run(s.Addr()) //nolint:errcheck
	go NewAgent(mB).Run(s.Addr()) //nolint:errcheck
	if got := s.WaitForAgents(2, 5*time.Second); got != 2 {
		t.Fatalf("agents: %d", got)
	}
	silentAgent(t, s, "shut-mute")
	handshake, err := net.Dial("tcp", s.Addr()) // never sends its hello
	if err != nil {
		t.Fatal(err)
	}
	defer handshake.Close()
	if err := s.Ping(context.Background(), "shut-a"); err != nil {
		t.Fatal(err)
	}
	pinged := make(chan error, 1)
	go func() { pinged <- s.Ping(context.Background(), "shut-mute") }()
	time.Sleep(20 * time.Millisecond)

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-pinged; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("blocked ping err = %v", err)
	}

	// Every server-side goroutine (accept loop, registration handshakes)
	// must have exited; agent-side goroutines see their sockets close and
	// unwind too. Allow the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after Close: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCallHonoursContextCancellation(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	silentAgent(t, s, "mute-ctx")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Ping(ctx, "mute-ctx") }()
	time.Sleep(20 * time.Millisecond)
	t0 := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled call err = %v, want context.Canceled", err)
		}
		if deploy.IsTransient(err) {
			t.Fatalf("cancellation classified transient: %v", err)
		}
		if d := time.Since(t0); d > time.Second {
			t.Fatalf("cancellation took %v to unblock the call", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call still blocked")
	}

	// A context cancelled before the call starts is refused immediately.
	// (A fresh agent: the cancelled in-flight call above deliberately
	// killed its own channel.)
	silentAgent(t, s, "mute-ctx2")
	if err := s.Ping(ctx, "mute-ctx2"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled call err = %v", err)
	}
}
