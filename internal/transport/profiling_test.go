package transport

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/parser"
	"repro/internal/profile"
	"repro/internal/resource"
)

// Tests for the concurrent fleet-profiling path: fan-out determinism,
// error attribution, and the wire acknowledgment fix.

func mysqlVendorItems(t *testing.T) ([]string, RegistryConfig, *resource.Set) {
	t.Helper()
	refs := []string{"/lib/libc.so", apps.MySQLExec, apps.LibMySQLPath}
	regCfg := MirageRegistryConfig()
	reg, err := BuildRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	items := parser.NewFingerprinter(reg).Fingerprint(userMachine("vendor-ref", false), refs)
	return refs, regCfg, items
}

func TestFingerprintAllDeterministicAcrossParallelism(t *testing.T) {
	names := []string{"fp-a", "fp-b", "fp-c", "fp-d", "fp-e", "fp-f"}
	refs, regCfg, vendorItems := mysqlVendorItems(t)

	var want []string
	var wantKeys []profile.Key
	for _, par := range []int{1, 3, 16} {
		s, _ := startFleet(t,
			userMachine(names[0], false),
			userMachine(names[1], true),
			userMachine(names[2], false),
			userMachine(names[3], true),
			userMachine(names[4], false),
			userMachine(names[5], true),
		)
		s.ProfileParallelism = par
		ms, err := s.CollectProfiles(context.Background(), "mysql", refs, regCfg, vendorItems)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var got []string
		var gotKeys []profile.Key
		for _, m := range ms {
			got = append(got, m.Name)
			gotKeys = append(gotKeys, m.Key())
		}
		if want == nil {
			want, wantKeys = got, gotKeys
			if strings.Join(got, ",") != strings.Join(names, ",") {
				t.Fatalf("collection order %v, want sorted agent names %v", got, names)
			}
		} else {
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Fatalf("parallelism %d: order %v != %v", par, got, want)
			}
			for i := range gotKeys {
				if gotKeys[i] != wantKeys[i] {
					t.Fatalf("parallelism %d: profile %s differs", par, got[i])
				}
			}
		}
		s.Close()
	}
}

func TestFingerprintAllNamesFailingAgent(t *testing.T) {
	s, _ := startFleet(t,
		userMachine("healthy-1", false),
		userMachine("unlucky", false),
		userMachine("healthy-2", false),
	)
	if ac, ok := s.registry.Get("unlucky"); ok {
		ac.conn.Close()
	}
	time.Sleep(20 * time.Millisecond)

	refs, regCfg, vendorItems := mysqlVendorItems(t)
	_, err := s.FingerprintAll(context.Background(), "mysql", refs, regCfg, vendorItems)
	if err == nil {
		t.Fatal("fingerprinting a dead agent succeeded")
	}
	if !strings.Contains(err.Error(), "unlucky") {
		t.Fatalf("error does not name the failing agent: %v", err)
	}
}

func TestUnacknowledgedReplyRejected(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A half-agent that registers and then answers every request with a
	// bare frame: no Err, no OK. Before OK lost omitempty, such a reply
	// was indistinguishable from a successful empty response.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"register","register":{"machine":"shrug"}}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if got := s.WaitForAgents(1, time.Second); got != 1 {
		t.Fatalf("agents = %d", got)
	}
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
			if _, err := conn.Write([]byte(`{"id":1}` + "\n")); err != nil {
				return
			}
		}
	}()

	_, err = s.Record(context.Background(), "shrug", "mysql", nil)
	if err == nil {
		t.Fatal("unacknowledged reply accepted")
	}
	if !strings.Contains(err.Error(), "unacknowledged") || !strings.Contains(err.Error(), "shrug") {
		t.Fatalf("err = %v", err)
	}
}
