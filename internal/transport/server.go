package transport

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/resource"
)

// DefaultRPCTimeout bounds each vendor-initiated call; upgrade validation
// replays traces, so it is generous.
const DefaultRPCTimeout = 30 * time.Second

// agentConn is the vendor-side handle on one connected agent.
type agentConn struct {
	name string
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	mu     sync.Mutex // serializes RPCs on the channel
	nextID int
}

// call performs one synchronous RPC on the agent channel.
func (ac *agentConn) call(req Frame, timeout time.Duration) (Frame, error) {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	ac.nextID++
	req.ID = ac.nextID
	deadline := time.Now().Add(timeout)
	if err := ac.conn.SetDeadline(deadline); err != nil {
		return Frame{}, err
	}
	if err := ac.enc.Encode(req); err != nil {
		return Frame{}, fmt.Errorf("transport: sending %s to %s: %w", req.Op, ac.name, err)
	}
	var resp Frame
	if err := ac.dec.Decode(&resp); err != nil {
		return Frame{}, fmt.Errorf("transport: reading %s reply from %s: %w", req.Op, ac.name, err)
	}
	if resp.ID != req.ID {
		return Frame{}, fmt.Errorf("transport: reply id %d for request %d from %s", resp.ID, req.ID, ac.name)
	}
	if resp.Err != "" {
		return Frame{}, errors.New("transport: agent " + ac.name + ": " + resp.Err)
	}
	if !resp.OK {
		return Frame{}, fmt.Errorf("transport: agent %s sent unacknowledged %s reply", ac.name, req.Op)
	}
	return resp, nil
}

// Server is the vendor-side endpoint agents register with.
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	agents  map[string]*agentConn
	Timeout time.Duration

	// ProfileParallelism bounds how many agents are fingerprinted
	// concurrently during fleet profiling (0 means
	// profile.DefaultParallelism, 1 means serial). Each agent has its own
	// channel, so fan-out never interleaves frames on one connection; the
	// collected order — and therefore the clustering — is identical at
	// any setting.
	ProfileParallelism int
}

// Listen starts the vendor server on addr (use "127.0.0.1:0" in tests) and
// begins accepting agent registrations.
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &Server{ln: ln, agents: make(map[string]*agentConn), Timeout: DefaultRPCTimeout}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and closes all agent channels.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ac := range s.agents {
		ac.conn.Close()
	}
	s.agents = make(map[string]*agentConn)
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.register(conn)
	}
}

// register reads the agent's registration frame and records the channel.
func (s *Server) register(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		conn.Close()
		return
	}
	var hello Frame
	if err := dec.Decode(&hello); err != nil || hello.Op != OpRegister || hello.Register == nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	ac := &agentConn{name: hello.Register.Machine, conn: conn, enc: json.NewEncoder(conn), dec: dec}
	s.mu.Lock()
	if old, dup := s.agents[ac.name]; dup {
		old.conn.Close()
	}
	s.agents[ac.name] = ac
	s.mu.Unlock()
}

// Agents returns the names of registered agents, sorted.
func (s *Server) Agents() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.agents))
	for n := range s.agents {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WaitForAgents blocks until n agents are registered or the timeout
// elapses; it returns the registered count.
func (s *Server) WaitForAgents(n int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		if got := len(s.Agents()); got >= n || time.Now().After(deadline) {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (s *Server) agent(name string) (*agentConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ac, ok := s.agents[name]
	if !ok {
		return nil, fmt.Errorf("transport: no agent registered as %q", name)
	}
	return ac, nil
}

// Identify asks the named agent to run local resource identification.
func (s *Server) Identify(machineName, app string, workloads [][]string) ([]string, error) {
	ac, err := s.agent(machineName)
	if err != nil {
		return nil, err
	}
	resp, err := ac.call(Frame{Op: OpIdentify, Identify: &IdentifyReq{App: app, Workloads: workloads}}, s.Timeout)
	if err != nil {
		return nil, err
	}
	return resp.Resources, nil
}

// Record asks the named agent to record a baseline trace.
func (s *Server) Record(machineName, app string, inputs []string) (string, error) {
	ac, err := s.agent(machineName)
	if err != nil {
		return "", err
	}
	resp, err := ac.call(Frame{Op: OpRecord, Record: &RecordReq{App: app, Inputs: inputs}}, s.Timeout)
	if err != nil {
		return "", err
	}
	return resp.Status, nil
}

// agentSource exposes one registered agent as a profile.Source: Profile
// performs a fingerprint RPC on the agent's channel. The resource
// references and registry configuration are fixed per collection.
type agentSource struct {
	s    *Server
	name string
	refs []string
	reg  RegistryConfig
}

// Name implements profile.Source.
func (as *agentSource) Name() string { return as.name }

// Profile implements profile.Source over the wire.
func (as *agentSource) Profile(app string, vendor *resource.Set) (profile.Machine, error) {
	ac, err := as.s.agent(as.name)
	if err != nil {
		return profile.Machine{}, err
	}
	resp, err := ac.call(Frame{Op: OpFingerprint, Fingerprint: &FingerprintReq{
		App: app, Refs: as.refs, Registry: as.reg, VendorItems: ItemsToWire(vendor),
	}}, as.s.Timeout)
	if err != nil {
		return profile.Machine{}, err
	}
	diff := ItemsFromWire(resp.Diff)
	return profile.Machine{
		Name:        as.name,
		ParsedDiff:  diff.OfKind(resource.Parsed),
		ContentDiff: diff.OfKind(resource.Content),
		AppSet:      resp.AppSet,
	}, nil
}

// ProfileSources returns one profile.Source per registered agent, in
// sorted name order — the remote half of the shared profiling pipeline.
func (s *Server) ProfileSources(refs []string, reg RegistryConfig) []profile.Source {
	names := s.Agents()
	out := make([]profile.Source, len(names))
	for i, n := range names {
		out[i] = &agentSource{s: s, name: n, refs: refs, reg: reg}
	}
	return out
}

// CollectProfiles gathers every registered agent's diff profile for app.
// The per-agent fingerprint RPCs fan out concurrently on the shared
// profile pipeline (bounded by s.ProfileParallelism), with deterministic
// sorted-name output order; a failure names the failing agent.
func (s *Server) CollectProfiles(app string, refs []string, reg RegistryConfig, vendorItems *resource.Set) ([]profile.Machine, error) {
	return profile.Collect(s.ProfileSources(refs, reg), app, vendorItems, s.ProfileParallelism)
}

// FingerprintAll collects item diffs from every registered agent for app,
// as clustering inputs. See CollectProfiles for concurrency and ordering.
func (s *Server) FingerprintAll(app string, refs []string, reg RegistryConfig, vendorItems *resource.Set) ([]cluster.MachineFingerprint, error) {
	ms, err := s.CollectProfiles(app, refs, reg, vendorItems)
	if err != nil {
		return nil, err
	}
	return profile.Fingerprints(ms), nil
}

// RemoteNode exposes a registered agent as a deploy.Node, so the staged
// deployment controller drives networked machines exactly like local ones.
type RemoteNode struct {
	s    *Server
	name string
}

// Node returns the deploy.Node for a registered agent.
func (s *Server) Node(name string) *RemoteNode {
	return &RemoteNode{s: s, name: name}
}

// Name implements deploy.Node.
func (r *RemoteNode) Name() string { return r.name }

// TestUpgrade implements deploy.Node over the wire.
func (r *RemoteNode) TestUpgrade(up *pkgmgr.Upgrade) (*report.Report, error) {
	ac, err := r.s.agent(r.name)
	if err != nil {
		return nil, err
	}
	resp, err := ac.call(Frame{Op: OpTest, Test: &TestReq{Upgrade: UpgradeToWire(up)}}, r.s.Timeout)
	if err != nil {
		return nil, err
	}
	if resp.Report == nil {
		return nil, errors.New("transport: agent returned no report")
	}
	return resp.Report, nil
}

// Integrate implements deploy.Node over the wire.
func (r *RemoteNode) Integrate(up *pkgmgr.Upgrade) error {
	ac, err := r.s.agent(r.name)
	if err != nil {
		return err
	}
	_, err = ac.call(Frame{Op: OpIntegrate, Integrate: &IntegrateReq{Upgrade: UpgradeToWire(up)}}, r.s.Timeout)
	return err
}

// RemoteClustering is the result of clustering a registered fleet: the
// collected profiles, the raw clustering, and the clusters of deployment
// backed by remote nodes.
type RemoteClustering struct {
	Profiles []profile.Machine
	Clusters []*cluster.Cluster
	Deploy   []*deploy.Cluster
}

// ClusterRemote fingerprints the whole registered fleet concurrently and
// runs the clustering algorithm. It is the same Collect → cluster.Run →
// Assemble pipeline core.Vendor.ClusterFleet runs over a local fleet, so
// a local and a networked fleet with identical fingerprints cluster
// identically.
func (s *Server) ClusterRemote(app string, refs []string, reg RegistryConfig, vendorItems *resource.Set, cfg cluster.Config, repsPerCluster int) (*RemoteClustering, error) {
	ms, err := s.CollectProfiles(app, refs, reg, vendorItems)
	if err != nil {
		return nil, err
	}
	clusters := cluster.Run(cfg, profile.Fingerprints(ms))
	dcs, err := profile.Assemble(clusters, repsPerCluster, func(name string) deploy.Node {
		return s.Node(name)
	})
	if err != nil {
		return nil, err
	}
	return &RemoteClustering{Profiles: ms, Clusters: clusters, Deploy: dcs}, nil
}
