package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/distrib"
	"repro/internal/pkgmgr"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/resource"
	"repro/internal/telemetry"
)

// DefaultRPCTimeout bounds each vendor-initiated call; upgrade validation
// replays traces, so it is generous.
const DefaultRPCTimeout = 30 * time.Second

// ErrAgentGone marks an RPC that failed because the agent's control
// channel is unavailable — never registered, disconnected, or broken
// mid-call. It wraps deploy.ErrTransient: at fleet scale agents disconnect
// constantly and usually redial, so the deployment controller retries
// these per member instead of killing the rollout.
var ErrAgentGone = fmt.Errorf("agent unreachable: %w", deploy.ErrTransient)

// ErrAgentReplaced marks an RPC cut short because a new connection
// registered under the same machine name (the agent redialed; the old
// channel was closed deliberately). Also transient: retrying resolves the
// name to the fresh channel.
var ErrAgentReplaced = fmt.Errorf("agent connection replaced: %w", deploy.ErrTransient)

// ErrServerClosed marks an operation refused or cut short because the
// vendor server was shut down. Deliberately NOT transient: unlike an agent
// that dropped (and will redial), a closed server is infrastructure going
// away — retrying per member would only quarantine the whole fleet, so
// the deployment controller halts the plan instead.
var ErrServerClosed = errors.New("transport: server closed")

// Stats is a snapshot of the vendor-side transfer counters, kept per
// connection and aggregated per server. It is what makes the distribution
// layer's savings measurable instead of anecdotal.
type Stats struct {
	FramesSent     int64 // request frames written
	BytesSent      int64 // total bytes written to agent sockets
	ChunkBytesSent int64 // bytes of chunk payload the vendor itself pushed
	ChunkHits      int64 // manifest chunks the agent already held
	ChunkMisses    int64 // manifest chunks that had to be transferred

	// Peer tier counters. The vendor never sees peer traffic on its own
	// sockets; these book what agents report back after each directed
	// peer fetch, which is what lets BenchmarkSwarm assert vendor egress
	// stays ~flat while total bytes moved grows with the fleet.
	PeerBytesIn     int64 // chunk bytes this/these agent(s) pulled from peers
	PeerBytesOut    int64 // chunk bytes this/these agent(s) served to peers
	PeerChunkHits   int64 // chunks the peer tier satisfied
	VendorFallbacks int64 // chunks pushed by the vendor after peers missed them

	// Robustness counters: manifest chunks resolved while restoring
	// members to the baseline version (rollback mode, see SetRollbackMode)
	// and faults the vendor-side injector fired on this/these channel(s).
	ChunksRolledBack int64
	FaultsInjected   int64
}

// statsCounters is the mutable (atomic) form behind Stats snapshots.
type statsCounters struct {
	frames, bytes, chunkBytes, hits, misses atomic.Int64
	peerIn, peerOut, peerHits, fallbacks    atomic.Int64
	rolledBack, faults                      atomic.Int64
}

func (c *statsCounters) snapshot() Stats {
	return Stats{
		FramesSent:       c.frames.Load(),
		BytesSent:        c.bytes.Load(),
		ChunkBytesSent:   c.chunkBytes.Load(),
		ChunkHits:        c.hits.Load(),
		ChunkMisses:      c.misses.Load(),
		PeerBytesIn:      c.peerIn.Load(),
		PeerBytesOut:     c.peerOut.Load(),
		PeerChunkHits:    c.peerHits.Load(),
		VendorFallbacks:  c.fallbacks.Load(),
		ChunksRolledBack: c.rolledBack.Load(),
		FaultsInjected:   c.faults.Load(),
	}
}

// countingWriter counts every byte written to the socket into the
// connection's and the server's counters.
type countingWriter struct {
	w           io.Writer
	conn, total *statsCounters
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.conn.bytes.Add(int64(n))
	cw.total.bytes.Add(int64(n))
	return n, err
}

// agentConn is the vendor-side handle on one connected agent.
type agentConn struct {
	name string
	conn net.Conn
	srv  *Server
	// bw buffers frame writes so one frame is one buffered write burst
	// with an explicit flush, not a stream of tiny unbuffered socket
	// writes; fc is the line-based frame codec over it (and the reader),
	// which is what lets a binary chunk body ride behind a JSON header.
	bw *bufio.Writer
	fc *frameConn

	stats *statsCounters // this connection's counters
	total *statsCounters // the server-wide counters

	// replaced is set (before the socket is closed) when a new
	// registration under the same name supersedes this channel, so an
	// in-flight call surfaces ErrAgentReplaced instead of the raw JSON
	// decode error the closed socket would produce.
	replaced atomic.Bool

	mu     sync.Mutex // serializes RPCs on the channel
	nextID int
}

// fail classifies an I/O failure on the channel: the channel is dead
// either way (a timed-out call would desynchronize reply IDs), so it is
// closed and dropped from the registry, and the caller gets a typed
// error — the context's error if the caller cancelled or timed out,
// ErrServerClosed if the server was shut down, ErrAgentReplaced if a
// newer registration superseded this channel, ErrAgentGone (transient)
// otherwise.
func (ac *agentConn) fail(ctx context.Context, op string, err error) error {
	ac.conn.Close()
	ac.srv.drop(ac)
	if cerr := ctx.Err(); cerr != nil {
		// The I/O failure is the abort's own doing (the conn deadline was
		// yanked); surface the cancellation, which is not transient.
		return fmt.Errorf("transport: %s to %s: %w", op, ac.name, cerr)
	}
	if ac.srv.isClosed() {
		return fmt.Errorf("transport: %s to %s: %w", op, ac.name, ErrServerClosed)
	}
	if ac.replaced.Load() {
		return fmt.Errorf("transport: %s to %s: %w", op, ac.name, ErrAgentReplaced)
	}
	return fmt.Errorf("transport: %s to %s: %w: %v", op, ac.name, ErrAgentGone, err)
}

// call performs one synchronous RPC on the agent channel. The deadline is
// the tighter of the server timeout and the context's; cancelling ctx
// mid-call yanks the connection deadline, so a blocked read returns
// immediately and the call surfaces ctx.Err() — Server.Call-level
// cancellation, the primitive every higher layer's abort rides on.
func (ac *agentConn) call(ctx context.Context, req Frame, timeout time.Duration) (Frame, error) {
	return ac.callBody(ctx, req, nil, timeout)
}

// callBody is call with an optional binary chunk body: when body is
// non-nil, req.ChunkMeta must announce it and the raw bytes are written
// immediately after the header, inside the same buffered burst. It is
// also the telemetry choke point: every vendor→agent RPC books its
// latency and written bytes here (per-op histograms on the server's
// registry, an "rpc" span on whatever rollout trace rides ctx).
func (ac *agentConn) callBody(ctx context.Context, req Frame, body []distrib.Chunk, timeout time.Duration) (Frame, error) {
	if err := ctx.Err(); err != nil {
		return Frame{}, fmt.Errorf("transport: %s to %s: %w", req.Op, ac.name, err)
	}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	if ac.replaced.Load() {
		return Frame{}, fmt.Errorf("transport: %s to %s: %w", req.Op, ac.name, ErrAgentReplaced)
	}
	tr, parent := telemetry.FromContext(ctx)
	var span telemetry.SpanID
	if tr != nil {
		span = tr.Begin(parent, "rpc", req.Op, ac.name)
	}
	t0 := time.Now()
	bytes0 := ac.stats.bytes.Load()
	resp, err := ac.exchange(ctx, req, body, timeout)
	// ac.mu serializes RPCs on this channel, so the connection byte
	// counter's delta across the exchange is exactly this call's writes
	// (JSON header plus any binary chunk body).
	sent := ac.stats.bytes.Load() - bytes0
	lat, by := ac.srv.rpcHists()
	lat.With(req.Op).ObserveSince(t0)
	by.With(req.Op).Observe(sent)
	tr.EndBytes(span, sent, err)
	return resp, err
}

// rpcHists returns the cached RPC latency and frame-byte families
// (nil families when no registry is wired — every method no-ops).
func (s *Server) rpcHists() (*telemetry.Family, *telemetry.Family) {
	s.telemOnce.Do(func() {
		s.rpcLatency = s.Telemetry.Histogram("mirage_rpc_latency_seconds",
			"Vendor-to-agent RPC latency by op, faults and deadline waits included.", "op", 1e-9)
		s.rpcBytes = s.Telemetry.Histogram("mirage_rpc_frame_bytes",
			"Bytes written to the agent socket per RPC by op (frame header plus chunk body).", "op", 1)
	})
	return s.rpcLatency, s.rpcBytes
}

// exchange performs the locked wire exchange behind callBody.
func (ac *agentConn) exchange(ctx context.Context, req Frame, body []distrib.Chunk, timeout time.Duration) (Frame, error) {
	// Vendor-side chaos: the injector's verdict for this call. Drop and
	// crash kill the channel before the frame leaves (the agent never saw
	// the call); reset kills it after the flush (the agent acts on a
	// request the vendor never sees acknowledged); corrupt damages chunk
	// payload in a copy — content addressing rejects it downstream.
	resetAfter := false
	if fi := ac.srv.Faults; fi != nil {
		switch fi.Next(ac.name, req.Op) {
		case FaultDrop, FaultCrash:
			ac.bookFault()
			return Frame{}, ac.fail(ctx, req.Op, errFaultInjected)
		case FaultDelay:
			ac.bookFault()
			d := fi.DelayBy()
			time.Sleep(d)
			ac.srv.Telemetry.Histogram("mirage_fault_delay_seconds",
				"Injected fault delay absorbed by agent RPCs.", "", 1e-9).With("").Observe(int64(d))
		case FaultCorrupt:
			ac.bookFault()
			if body != nil {
				body = corruptChunks(body)
			} else if req.FetchChunks != nil {
				fr := *req.FetchChunks
				fr.Chunks = corruptChunks(fr.Chunks)
				req.FetchChunks = &fr
			}
		case FaultReset:
			ac.bookFault()
			resetAfter = true
		}
	}
	ac.nextID++
	req.ID = ac.nextID
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := ac.conn.SetDeadline(deadline); err != nil {
		return Frame{}, ac.fail(ctx, req.Op, err)
	}
	// A cancelled context forces the in-flight I/O to fail now rather than
	// at the deadline. The channel dies with it — acceptable: aborts are
	// rare, and a reconnecting agent redials in milliseconds. If the
	// callback has already started when the call returns, wait it out:
	// a stale deadline-yank landing after a *successful* call would
	// poison the channel's next RPC with a spurious agent-gone failure.
	yanked := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		defer close(yanked)
		ac.conn.SetDeadline(time.Unix(1, 0))
	})
	defer func() {
		if !stop() {
			<-yanked
		}
	}()
	if err := ac.fc.WriteFrame(req); err != nil {
		return Frame{}, ac.fail(ctx, "sending "+req.Op, err)
	}
	if body != nil {
		if err := ac.fc.WriteChunkBody(body); err != nil {
			return Frame{}, ac.fail(ctx, "sending "+req.Op+" body", err)
		}
	}
	if err := ac.bw.Flush(); err != nil {
		return Frame{}, ac.fail(ctx, "sending "+req.Op, err)
	}
	ac.stats.frames.Add(1)
	ac.total.frames.Add(1)
	if resetAfter {
		return Frame{}, ac.fail(ctx, req.Op, errFaultInjected)
	}
	var resp Frame
	if err := ac.fc.ReadFrame(&resp); err != nil {
		return Frame{}, ac.fail(ctx, "reading "+req.Op+" reply", err)
	}
	if resp.ID != req.ID {
		return Frame{}, ac.fail(ctx, req.Op, fmt.Errorf("reply id %d for request %d", resp.ID, req.ID))
	}
	if resp.Err != "" {
		return Frame{}, &agentError{name: ac.name, msg: resp.Err}
	}
	if !resp.OK {
		return Frame{}, fmt.Errorf("transport: agent %s sent unacknowledged %s reply", ac.name, req.Op)
	}
	return resp, nil
}

// errFaultInjected is the cause an injected drop/reset fault reports; it
// reaches callers wrapped in the usual transient classification.
var errFaultInjected = errors.New("injected fault")

// agentError is an error the agent itself reported in a reply frame. The
// control channel remains intact and usable — unlike a channel death, the
// agent is alive and answered. pushUpgrade uses the distinction to retry
// chunk pushes the agent rejected (corrupt bytes in flight): the content
// address caught the damage, and a clean re-push is cheap.
type agentError struct{ name, msg string }

func (e *agentError) Error() string { return "transport: agent " + e.name + ": " + e.msg }

// bookFault counts one injected fault on this channel and server-wide.
func (ac *agentConn) bookFault() {
	ac.stats.faults.Add(1)
	ac.total.faults.Add(1)
}

// addChunkAccounting books one manifest negotiation's hit/miss split.
func (ac *agentConn) addChunkAccounting(hits, misses int64) {
	ac.stats.hits.Add(hits)
	ac.total.hits.Add(hits)
	ac.stats.misses.Add(misses)
	ac.total.misses.Add(misses)
}

// Server is the vendor-side endpoint agents register with.
type Server struct {
	ln net.Listener

	// registry is the hash-sharded agent index: RPC dispatch, registration,
	// and the WaitForAgents/WaitForAgent waiters all go through it, so no
	// single mutex serializes a 100k-agent fleet.
	registry *Registry[*agentConn]

	mu sync.Mutex
	// pending holds connections whose registration handshake is still in
	// flight, so Close can tear them down too.
	pending map[net.Conn]bool
	// pendingSem bounds how many registration handshakes run at once: the
	// accept loop blocks when the bound is hit, which turns a registration
	// storm into natural TCP backpressure instead of an unbounded goroutine
	// and FD spike.
	pendingSem chan struct{}
	// done is closed by Close: registry waiters return immediately and
	// new operations are refused with ErrServerClosed.
	done   chan struct{}
	closed bool
	// serving tracks the accept loop and every in-flight registration
	// goroutine, so Close can wait for them instead of leaking.
	serving sync.WaitGroup

	Timeout time.Duration

	// ProfileParallelism bounds how many agents are fingerprinted
	// concurrently during fleet profiling (0 means
	// profile.DefaultParallelism, 1 means serial). Each agent has its own
	// channel, so fan-out never interleaves frames on one connection; the
	// collected order — and therefore the clustering — is identical at
	// any setting.
	ProfileParallelism int

	// InlinePayloads restores the legacy wire format: test and integrate
	// requests carry the complete upgrade (all file data, base64 inside
	// JSON) in every frame. The default is content-addressed chunked
	// distribution, where frames carry a manifest and only cache-missed
	// chunk bytes ever cross the wire.
	InlinePayloads bool

	// JSONChunks restores the legacy chunk-push encoding: OpFetchChunks
	// frames carry chunk bytes base64-encoded inside the JSON body. The
	// default is the binary chunk frame — a JSON header listing per-chunk
	// address+length followed by the raw bytes — which moves chunk
	// payload with zero encode expansion and no per-chunk allocation.
	JSONChunks bool

	// DisablePeers turns off peer hinting: every missed chunk is pushed
	// by the vendor, as before the peer tier existed. Agents that do not
	// run a peer server are simply never hinted, so this switch matters
	// only for measurement (BenchmarkSwarm's O(fleet) baseline).
	DisablePeers bool

	// Faults, when set, injects deterministic chaos on every vendor-side
	// call: drops, delays, corrupt chunk payloads, resets, and scheduled
	// agent crashes per the injector's FaultPlan. Set it before deploying;
	// production servers leave it nil.
	Faults *FaultInjector

	// OnProfileDelta, when set, receives watch-mode agents' OpProfileDelta
	// pushes. Returning resync=true asks the agent to re-send its complete
	// profile (Status "resync"); an error refuses the push. Unset, the
	// server refuses deltas — drift detection is opt-in vendor wiring
	// (mirage-vendor bridges this to a fleetwatch.Monitor). Set it before
	// serving starts.
	OnProfileDelta func(req *ProfileDeltaReq) (resync bool, err error)

	// Telemetry, when set, receives per-op RPC latency and frame-byte
	// histograms plus injected-delay accounting (nil is a no-op). RPC
	// spans additionally land in whatever rollout trace rides the call's
	// context, independent of this registry. Set it before serving
	// starts: the RPC path caches its family handles on first use.
	Telemetry *telemetry.Registry

	// telemOnce caches the RPC hot-path histogram families so each call
	// skips the registry's by-name lookup (a global mutex).
	telemOnce  sync.Once
	rpcLatency *telemetry.Family
	rpcBytes   *telemetry.Family

	// rollbackMode marks that pushes currently restore members to the
	// baseline version (Controller.Rollback is driving the fleet), so
	// resolved manifest chunks are booked as ChunksRolledBack.
	rollbackMode atomic.Bool

	// peerMu guards peers, the chunk-location index behind peer hinting.
	peerMu sync.Mutex
	peers  *peerIndex

	// dist is the vendor-side chunk store backing manifest distribution;
	// it accumulates across upgrades, so a corrected re-release shares
	// every chunk with the version it fixes.
	dist *distrib.Store

	// stats aggregates transfer counters across all agent connections,
	// surviving reconnects and replacements.
	stats statsCounters
}

// DefaultMaxPending bounds concurrent registration handshakes per accept
// loop when ListenOpts.MaxPending is zero.
const DefaultMaxPending = 1024

// ListenOpts tunes the control-plane scaling knobs fixed at listen time.
type ListenOpts struct {
	// Shards is the agent-registry shard count; <= 0 selects
	// DefaultShards (GOMAXPROCS-derived, rounded to a power of two).
	Shards int
	// MaxPending bounds in-flight registration handshakes; <= 0 selects
	// DefaultMaxPending.
	MaxPending int
}

// Listen starts the vendor server on addr (use "127.0.0.1:0" in tests) and
// begins accepting agent registrations.
func Listen(addr string) (*Server, error) {
	return ListenWith(addr, ListenOpts{})
}

// ListenWith is Listen with explicit registry sharding and handshake
// admission bounds.
func ListenWith(addr string, opts ListenOpts) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	maxPending := opts.MaxPending
	if maxPending <= 0 {
		maxPending = DefaultMaxPending
	}
	s := &Server{
		ln:         ln,
		registry:   NewRegistry[*agentConn](opts.Shards),
		pending:    make(map[net.Conn]bool),
		pendingSem: make(chan struct{}, maxPending),
		done:       make(chan struct{}),
		Timeout:    DefaultRPCTimeout,
		dist:       distrib.NewStore(),
		peers:      newPeerIndex(),
	}
	s.serving.Add(1)
	go s.acceptLoop()
	return s, nil
}

// ChunkStore returns the vendor-side chunk store.
func (s *Server) ChunkStore() *distrib.Store { return s.dist }

// Stats returns the server-wide transfer counters, aggregated across all
// agent connections past and present.
func (s *Server) Stats() Stats { return s.stats.snapshot() }

// AgentStats returns the transfer counters of the named agent's current
// connection.
func (s *Server) AgentStats(name string) (Stats, bool) {
	ac, ok := s.registry.Get(name)
	if !ok {
		return Stats{}, false
	}
	return ac.stats.snapshot(), true
}

// AgentCount returns the number of currently registered agents without
// materializing their names.
func (s *Server) AgentCount() int { return s.registry.Len() }

// ShardSizes returns the registry's per-shard agent counts — the /metrics
// feed for registry balance and size.
func (s *Server) ShardSizes() []int { return s.registry.ShardSizes() }

// TransferSnapshot exposes the server-wide counters in the deployment
// controller's vocabulary, so Controller.Transfer can record per-rollout
// deltas in the Outcome.
func (s *Server) TransferSnapshot() deploy.TransferStats {
	st := s.Stats()
	return deploy.TransferStats{
		Frames:           st.FramesSent,
		Bytes:            st.BytesSent,
		ChunkBytes:       st.ChunkBytesSent,
		ChunkHits:        st.ChunkHits,
		ChunkMisses:      st.ChunkMisses,
		PeerBytes:        st.PeerBytesOut,
		PeerHits:         st.PeerChunkHits,
		VendorFallbacks:  st.VendorFallbacks,
		ChunksRolledBack: st.ChunksRolledBack,
		FaultsInjected:   st.FaultsInjected,
	}
}

// SetRollbackMode flips rollback accounting: while on, every manifest
// chunk resolved by a push is additionally booked as ChunksRolledBack —
// the same machinery moving the fleet backwards. Controller.RollbackMode
// is the hook that drives it around a fleet rollback.
func (s *Server) SetRollbackMode(on bool) { s.rollbackMode.Store(on) }

// MarkPeerEligible clears the named agents to serve chunks to their
// peers. The deployment controller calls it as each wave's gate passes
// (Controller.GatedMembers): a gated member has validated and integrated
// the upgrade, so its chunk cache is both complete and trustworthy-fresh
// — exactly the population the staging order guarantees exists before any
// later wave asks.
func (s *Server) MarkPeerEligible(names []string) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	for _, n := range names {
		s.peers.eligible[n] = true
	}
}

// AddPeerSource registers an external peer chunk source by hand: name is
// recorded as eligible, reachable at addr, and holding the given chunk
// addresses. It is the seeding/test hook — degradation tests point it at
// fake peers that die or serve corrupt bytes, and a pre-seeded mirror can
// be injected the same way.
func (s *Server) AddPeerSource(name, addr string, addrs []uint64) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	s.peers.addrs[name] = addr
	s.peers.eligible[name] = true
	s.peers.markHeld(name, addrs)
}

// peerHintsFor returns up to MaxPeerHints peer addresses likely to hold
// some of need, best coverage first; nil when hinting is off or no
// eligible peer covers anything.
func (s *Server) peerHintsFor(requester string, need []uint64) []string {
	if s.DisablePeers {
		return nil
	}
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	return s.peers.hints(requester, need)
}

// manifestAddrs flattens a manifest to its distinct chunk addresses.
func manifestAddrs(man *WireManifest) []uint64 {
	seen := make(map[uint64]bool)
	out := make([]uint64, 0, len(man.Files))
	for _, f := range man.Files {
		for _, ref := range f.Chunks {
			if !seen[ref.Hash] {
				seen[ref.Hash] = true
				out = append(out, ref.Hash)
			}
		}
	}
	return out
}

// markPeerHeld records that name resolved man completely — every address
// in it is now in the agent's cache. This passive bookkeeping is the only
// feed the chunk-location index has (besides AddPeerSource); no RPC ever
// asks an agent what it holds.
func (s *Server) markPeerHeld(name string, man *WireManifest) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	s.peers.markHeld(name, manifestAddrs(man))
}

// creditPeerResult books one OpPeerFetch round into the transfer
// counters: the fetching agent's peer-in bytes and chunk hits, and each
// serving agent's peer-out bytes (resolved from the reported peer
// address; an unresolvable server — an AddPeerSource fake, or an agent
// that re-registered meanwhile — still counts toward the server totals).
func (s *Server) creditPeerResult(ac *agentConn, res *PeerResult) {
	if res == nil || res.Bytes == 0 {
		return
	}
	ac.stats.peerIn.Add(res.Bytes)
	ac.total.peerIn.Add(res.Bytes)
	ac.stats.peerHits.Add(int64(res.Chunks))
	ac.total.peerHits.Add(int64(res.Chunks))
	for addr, n := range res.Served {
		s.peerMu.Lock()
		name, ok := s.peers.nameByAddr(addr)
		s.peerMu.Unlock()
		if ok {
			if server, live := s.registry.Get(name); live {
				server.stats.peerOut.Add(n)
			}
		}
		s.stats.peerOut.Add(n)
	}
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down: the listener closes, every agent channel
// is torn down, registry waiters (WaitForAgents/WaitForAgent) wake
// immediately, and in-flight Calls fail with the typed ErrServerClosed
// instead of a spoofed agent-gone error. Close blocks until the accept
// loop and every registration goroutine have exited — a closed server
// leaks nothing. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	err := s.ln.Close()
	for conn := range s.pending {
		conn.Close()
	}
	s.mu.Unlock()
	// done is closed, so a registration racing this sweep re-checks after
	// publishing itself and tears its own connection down; waiters watch
	// done and wake on their own.
	for _, ac := range s.registry.Clear() {
		ac.conn.Close()
	}
	s.serving.Wait()
	return err
}

// Shutdown is Close under the name net/http made idiomatic.
func (s *Server) Shutdown() error { return s.Close() }

// isClosed reports whether Close has begun.
func (s *Server) isClosed() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

func (s *Server) acceptLoop() {
	defer s.serving.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if err := s.serveConn(conn); err != nil {
			conn.Close()
			return
		}
	}
}

// ServeConn hands the server one side of an already-established connection
// to run the normal registration handshake and agent protocol on — the
// injection point for transports the listener never sees (net.Pipe fleets
// in the scale harness, pre-dialed sockets). It obeys the same pending
// handshake bound as accepted connections and refuses with ErrServerClosed
// after Close.
func (s *Server) ServeConn(conn net.Conn) error {
	if err := s.serveConn(conn); err != nil {
		conn.Close()
		return err
	}
	return nil
}

// serveConn admits conn under the pending-handshake bound and spawns its
// registration goroutine; the caller owns conn on error.
func (s *Server) serveConn(conn net.Conn) error {
	select {
	case s.pendingSem <- struct{}{}:
	case <-s.done:
		return ErrServerClosed
	}
	// The closed check and serving.Add share s.mu with Close, so a
	// registration goroutine is either covered by Close's serving.Wait or
	// refused — never started after Wait returned.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.pendingSem
		return ErrServerClosed
	}
	s.serving.Add(1)
	s.mu.Unlock()
	go func() {
		defer func() { <-s.pendingSem }()
		s.register(conn)
	}()
	return nil
}

// register reads the agent's registration frame and records the channel.
// The handshaking connection is tracked in pending so Close tears it down
// instead of waiting out the handshake deadline.
func (s *Server) register(conn net.Conn) {
	defer s.serving.Done()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.pending[conn] = true
	s.mu.Unlock()
	unpend := func() {
		s.mu.Lock()
		delete(s.pending, conn)
		s.mu.Unlock()
	}
	fc := newFrameConn(bufio.NewReader(conn), nil)
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		unpend()
		conn.Close()
		return
	}
	var hello Frame
	if err := fc.ReadFrame(&hello); err != nil {
		unpend()
		conn.Close()
		return
	}
	if hello.Op == OpProfileDelta && hello.Delta != nil {
		// A watch-mode agent's short-lived delta push: handle, answer one
		// frame, and close — it never becomes a control channel.
		resp := Frame{ID: hello.ID}
		if h := s.OnProfileDelta; h == nil {
			resp.Err = "vendor accepts no profile deltas"
		} else if resync, err := h(hello.Delta); err != nil {
			resp.Err = err.Error()
		} else {
			resp.OK = true
			if resync {
				resp.Status = StatusResync
			}
		}
		bw := bufio.NewWriter(conn)
		fc.bw = bw
		conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if err := fc.WriteFrame(resp); err == nil {
			bw.Flush()
		}
		unpend()
		conn.Close()
		return
	}
	if hello.Op != OpRegister || hello.Register == nil {
		unpend()
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	st := &statsCounters{}
	bw := bufio.NewWriter(&countingWriter{w: conn, conn: st, total: &s.stats})
	fc.bw = bw
	ac := &agentConn{
		name: hello.Register.Machine, conn: conn, srv: s,
		bw: bw, fc: fc,
		stats: st, total: &s.stats,
	}
	if hello.Register.Peer != "" {
		s.peerMu.Lock()
		s.peers.addrs[ac.name] = hello.Register.Peer
		s.peerMu.Unlock()
	}
	s.mu.Lock()
	delete(s.pending, conn)
	if s.closed {
		// Lost the race with Close: this channel must not outlive the
		// registry Close already emptied.
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.mu.Unlock()
	if old, dup := s.registry.Put(ac.name, ac); dup {
		// Mark the superseded channel replaced BEFORE closing its socket,
		// so a racing in-flight call classifies as ErrAgentReplaced rather
		// than failing with a raw JSON decode error.
		old.replaced.Store(true)
		old.conn.Close()
	}
	if s.isClosed() {
		// Close began after the pending check: its registry sweep may have
		// run before our Put landed, so undo it ourselves.
		s.registry.RemoveIf(ac.name, func(cur *agentConn) bool { return cur == ac })
		conn.Close()
	}
}

// drop removes ac from the registry if it is still the current channel
// for its name (a replacement must not be evicted by its predecessor's
// death throes).
func (s *Server) drop(ac *agentConn) {
	s.registry.RemoveIf(ac.name, func(cur *agentConn) bool { return cur == ac })
}

// DropAgent forcibly closes the named agent's control channel and removes
// it from the registry — the vendor-side handle for administrative
// disconnection and for fault injection in churn tests. A reconnecting
// agent will simply redial and re-register under the same identity.
func (s *Server) DropAgent(name string) bool {
	ac, ok := s.registry.Remove(name)
	if !ok {
		return false
	}
	ac.conn.Close()
	return true
}

// Agents returns the names of registered agents, sorted.
func (s *Server) Agents() []string {
	return s.registry.Names()
}

// WaitForAgents blocks until n agents are registered, the timeout
// elapses, or the server is closed; it returns the registered count.
// The waiter parks on a count threshold in the sharded registry and is
// woken exactly once — by the registration that reaches n — instead of
// once per registry change.
func (s *Server) WaitForAgents(n int, timeout time.Duration) int {
	return s.registry.WaitCount(n, timeout, s.done)
}

// WaitForAgent blocks until the named agent is registered, the timeout
// elapses, or the server is closed — the natural companion to
// reconnecting agents ("wait for the machine to come back before
// proceeding"). The waiter parks on the shard owning the name; unrelated
// registrations never wake it.
func (s *Server) WaitForAgent(name string, timeout time.Duration) bool {
	return s.registry.WaitName(name, timeout, s.done)
}

func (s *Server) agent(name string) (*agentConn, error) {
	if s.isClosed() {
		return nil, fmt.Errorf("transport: no agent %q: %w", name, ErrServerClosed)
	}
	ac, ok := s.registry.Get(name)
	if !ok {
		return nil, fmt.Errorf("transport: no agent registered as %q: %w", name, ErrAgentGone)
	}
	return ac, nil
}

// Ping performs a lightweight liveness probe on the named agent's control
// channel: one tiny frame, no payload. It is how the vendor distinguishes
// "machine reachable" from "machine failing work" without spending a
// validation run.
func (s *Server) Ping(ctx context.Context, name string) error {
	ac, err := s.agent(name)
	if err != nil {
		return err
	}
	_, err = ac.call(ctx, Frame{Op: OpPing}, s.Timeout)
	return err
}

// Identify asks the named agent to run local resource identification.
func (s *Server) Identify(ctx context.Context, machineName, app string, workloads [][]string) ([]string, error) {
	ac, err := s.agent(machineName)
	if err != nil {
		return nil, err
	}
	resp, err := ac.call(ctx, Frame{Op: OpIdentify, Identify: &IdentifyReq{App: app, Workloads: workloads}}, s.Timeout)
	if err != nil {
		return nil, err
	}
	return resp.Resources, nil
}

// Record asks the named agent to record a baseline trace.
func (s *Server) Record(ctx context.Context, machineName, app string, inputs []string) (string, error) {
	ac, err := s.agent(machineName)
	if err != nil {
		return "", err
	}
	resp, err := ac.call(ctx, Frame{Op: OpRecord, Record: &RecordReq{App: app, Inputs: inputs}}, s.Timeout)
	if err != nil {
		return "", err
	}
	return resp.Status, nil
}

// fpPayload memoizes the serialized fingerprint request body shared by
// every agent of one profiling fan-out. The body — resource references,
// registry configuration, and above all the vendor item list — is
// identical across agents, so it is marshalled once per (app, vendor set)
// and the raw bytes are reused across the whole fleet instead of being
// re-serialized per connection.
type fpPayload struct {
	refs []string
	reg  RegistryConfig

	mu     sync.Mutex
	app    string
	vendor *resource.Set
	raw    json.RawMessage
}

func (p *fpPayload) rawFor(app string, vendor *resource.Set) (json.RawMessage, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.raw == nil || p.app != app || p.vendor != vendor {
		b, err := json.Marshal(&FingerprintReq{
			App: app, Refs: p.refs, Registry: p.reg, VendorItems: ItemsToWire(vendor),
		})
		if err != nil {
			return nil, fmt.Errorf("transport: encoding fingerprint request: %w", err)
		}
		p.app, p.vendor, p.raw = app, vendor, b
	}
	return p.raw, nil
}

// agentSource exposes one registered agent as a profile.Source: Profile
// performs a fingerprint RPC on the agent's channel. The resource
// references and registry configuration are fixed per collection, and the
// request body is shared with every sibling source of the same fan-out.
type agentSource struct {
	s       *Server
	name    string
	payload *fpPayload
}

// Name implements profile.Source.
func (as *agentSource) Name() string { return as.name }

// Profile implements profile.Source over the wire.
func (as *agentSource) Profile(ctx context.Context, app string, vendor *resource.Set) (profile.Machine, error) {
	ac, err := as.s.agent(as.name)
	if err != nil {
		return profile.Machine{}, err
	}
	raw, err := as.payload.rawFor(app, vendor)
	if err != nil {
		return profile.Machine{}, err
	}
	resp, err := ac.call(ctx, Frame{Op: OpFingerprint, Fingerprint: raw}, as.s.Timeout)
	if err != nil {
		return profile.Machine{}, err
	}
	diff := ItemsFromWire(resp.Diff)
	return profile.Machine{
		Name:        as.name,
		ParsedDiff:  diff.OfKind(resource.Parsed),
		ContentDiff: diff.OfKind(resource.Content),
		AppSet:      resp.AppSet,
	}, nil
}

// ProfileSources returns one profile.Source per registered agent, in
// sorted name order — the remote half of the shared profiling pipeline.
// All sources share one lazily serialized request payload.
func (s *Server) ProfileSources(refs []string, reg RegistryConfig) []profile.Source {
	payload := &fpPayload{refs: refs, reg: reg}
	names := s.Agents()
	out := make([]profile.Source, len(names))
	for i, n := range names {
		out[i] = &agentSource{s: s, name: n, payload: payload}
	}
	return out
}

// CollectProfiles gathers every registered agent's diff profile for app.
// The per-agent fingerprint RPCs fan out concurrently on the shared
// profile pipeline (bounded by s.ProfileParallelism), with deterministic
// sorted-name output order; a failure names the failing agent.
func (s *Server) CollectProfiles(ctx context.Context, app string, refs []string, reg RegistryConfig, vendorItems *resource.Set) ([]profile.Machine, error) {
	return profile.Collect(ctx, s.ProfileSources(refs, reg), app, vendorItems, s.ProfileParallelism)
}

// FingerprintAll collects item diffs from every registered agent for app,
// as clustering inputs. See CollectProfiles for concurrency and ordering.
func (s *Server) FingerprintAll(ctx context.Context, app string, refs []string, reg RegistryConfig, vendorItems *resource.Set) ([]cluster.MachineFingerprint, error) {
	ms, err := s.CollectProfiles(ctx, app, refs, reg, vendorItems)
	if err != nil {
		return nil, err
	}
	return profile.Fingerprints(ms), nil
}

// RemoteNode exposes a registered agent as a deploy.Node, so the staged
// deployment controller drives networked machines exactly like local ones.
type RemoteNode struct {
	s    *Server
	name string
}

// Node returns the deploy.Node for a registered agent.
func (s *Server) Node(name string) *RemoteNode {
	return &RemoteNode{s: s, name: name}
}

// Name implements deploy.Node.
func (r *RemoteNode) Name() string { return r.name }

// upgradeFrame builds the test/integrate request frame for the chosen
// distribution mode.
func upgradeFrame(op string, up *WireUpgrade, man *WireManifest) Frame {
	req := Frame{Op: op}
	switch op {
	case OpTest:
		req.Test = &TestReq{Upgrade: up, Manifest: man}
	case OpIntegrate:
		req.Integrate = &IntegrateReq{Upgrade: up, Manifest: man}
	}
	return req
}

// pushUpgrade performs one test or integrate RPC on the agent. In inline
// mode the complete upgrade travels in the frame. In chunked mode the
// frame carries only the manifest; if the agent reports missing chunks,
// the peer tier is tried first (a directed OpPeerFetch against hinted
// gated peers), the remainder is pushed with OpFetchChunks — a binary
// chunk frame by default, base64-in-JSON under s.JSONChunks — and the
// request is re-issued; the manifest is small, so the retry costs a few
// hundred bytes, never a payload re-send. A manifest that resolves
// completely marks its addresses held by the agent in the chunk-location
// index, feeding future peer hints.
func (s *Server) pushUpgrade(ctx context.Context, name, op string, up *pkgmgr.Upgrade) (Frame, error) {
	ac, err := s.agent(name)
	if err != nil {
		return Frame{}, err
	}
	if s.InlinePayloads {
		w := UpgradeToWire(up)
		return ac.call(ctx, upgradeFrame(op, &w, nil), s.Timeout)
	}
	man := s.dist.Manifest(up)
	first := true
	attempts := 3
	if s.Faults != nil {
		// Under injected chaos a push may be corrupted several times in a
		// row; each rejection costs one manifest re-issue (a few hundred
		// bytes), so buying headroom here is cheap.
		attempts = 8
	}
	for attempt := 0; attempt < attempts; attempt++ {
		resp, err := ac.call(ctx, upgradeFrame(op, nil, man), s.Timeout)
		if err != nil {
			return Frame{}, err
		}
		if first {
			// The first response fixes the hit/miss split for this push;
			// the post-fetch retry re-resolves the same chunks and must
			// not be double-counted. NeedChunks is deduplicated, so count
			// misses per manifest *reference*: an address the agent lacks
			// that appears twice is two missed lookups, not one miss and
			// one phantom hit.
			needed := make(map[uint64]bool, len(resp.NeedChunks))
			for _, a := range resp.NeedChunks {
				needed[a] = true
			}
			var miss int64
			for _, f := range man.Files {
				for _, ref := range f.Chunks {
					if needed[ref.Hash] {
						miss++
					}
				}
			}
			ac.addChunkAccounting(int64(man.ChunkCount())-miss, miss)
			first = false
		}
		if len(resp.NeedChunks) == 0 {
			s.markPeerHeld(name, man)
			if s.rollbackMode.Load() {
				n := int64(man.ChunkCount())
				ac.stats.rolledBack.Add(n)
				ac.total.rolledBack.Add(n)
			}
			return resp, nil
		}
		need := resp.NeedChunks
		hinted := false
		if hints := s.peerHintsFor(name, need); len(hints) > 0 {
			presp, err := ac.call(ctx, Frame{Op: OpPeerFetch,
				PeerFetch: &PeerFetchReq{Addrs: need, Peers: hints}}, s.Timeout)
			if err != nil {
				return Frame{}, err
			}
			s.creditPeerResult(ac, presp.Peer)
			need = presp.NeedChunks
			hinted = true
		}
		if len(need) == 0 {
			// The swarm served everything; re-issue the manifest request,
			// which now resolves from cache.
			continue
		}
		chunks, err := s.dist.Chunks(need)
		if err != nil {
			return Frame{}, fmt.Errorf("transport: agent %s requested %w", name, err)
		}
		var n int64
		for _, ch := range chunks {
			n += int64(len(ch.Data))
		}
		ac.stats.chunkBytes.Add(n)
		ac.total.chunkBytes.Add(n)
		if hinted {
			// These chunks were offered to the peer tier and came back:
			// vendor fallback, the swarm's miss counter.
			ac.stats.fallbacks.Add(int64(len(chunks)))
			ac.total.fallbacks.Add(int64(len(chunks)))
		}
		var perr error
		if s.JSONChunks {
			_, perr = ac.call(ctx, Frame{Op: OpFetchChunks, FetchChunks: &FetchChunksReq{Chunks: chunks}}, s.Timeout)
		} else {
			_, perr = ac.callBody(ctx, Frame{Op: OpFetchChunks, ChunkMeta: chunkMeta(chunks)}, chunks, s.Timeout)
		}
		if perr != nil {
			// An agent-reported rejection means corrupt bytes in flight
			// (the content address caught them) on an intact channel: spend
			// an attempt re-issuing the manifest, which re-pushes cleanly.
			var ae *agentError
			if errors.As(perr, &ae) {
				continue
			}
			return Frame{}, perr
		}
	}
	return Frame{}, fmt.Errorf("transport: agent %s still missing chunks after fetch", name)
}

// TestUpgrade implements deploy.Node over the wire.
func (r *RemoteNode) TestUpgrade(ctx context.Context, up *pkgmgr.Upgrade) (*report.Report, error) {
	resp, err := r.s.pushUpgrade(ctx, r.name, OpTest, up)
	if err != nil {
		return nil, err
	}
	if resp.Report == nil {
		return nil, errors.New("transport: agent returned no report")
	}
	return resp.Report, nil
}

// Integrate implements deploy.Node over the wire.
func (r *RemoteNode) Integrate(ctx context.Context, up *pkgmgr.Upgrade) error {
	_, err := r.s.pushUpgrade(ctx, r.name, OpIntegrate, up)
	return err
}

// RemoteClustering is the result of clustering a registered fleet: the
// collected profiles, the raw clustering, and the clusters of deployment
// backed by remote nodes.
type RemoteClustering struct {
	Profiles []profile.Machine
	Clusters []*cluster.Cluster
	Deploy   []*deploy.Cluster
}

// ClusterRemote fingerprints the whole registered fleet concurrently and
// runs the clustering algorithm. It is the same Collect → cluster.Run →
// Assemble pipeline core.Vendor.ClusterFleet runs over a local fleet, so
// a local and a networked fleet with identical fingerprints cluster
// identically.
func (s *Server) ClusterRemote(ctx context.Context, app string, refs []string, reg RegistryConfig, vendorItems *resource.Set, cfg cluster.Config, repsPerCluster int) (*RemoteClustering, error) {
	ms, err := s.CollectProfiles(ctx, app, refs, reg, vendorItems)
	if err != nil {
		return nil, err
	}
	clusters := cluster.Run(cfg, profile.Fingerprints(ms))
	dcs, err := profile.Assemble(clusters, repsPerCluster, func(name string) deploy.Node {
		return s.Node(name)
	})
	if err != nil {
		return nil, err
	}
	return &RemoteClustering{Profiles: ms, Clusters: clusters, Deploy: dcs}, nil
}
