package transport

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/resource"
)

// DefaultRPCTimeout bounds each vendor-initiated call; upgrade validation
// replays traces, so it is generous.
const DefaultRPCTimeout = 30 * time.Second

// agentConn is the vendor-side handle on one connected agent.
type agentConn struct {
	name string
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	mu     sync.Mutex // serializes RPCs on the channel
	nextID int
}

// call performs one synchronous RPC on the agent channel.
func (ac *agentConn) call(req Frame, timeout time.Duration) (Frame, error) {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	ac.nextID++
	req.ID = ac.nextID
	deadline := time.Now().Add(timeout)
	if err := ac.conn.SetDeadline(deadline); err != nil {
		return Frame{}, err
	}
	if err := ac.enc.Encode(req); err != nil {
		return Frame{}, fmt.Errorf("transport: sending %s to %s: %w", req.Op, ac.name, err)
	}
	var resp Frame
	if err := ac.dec.Decode(&resp); err != nil {
		return Frame{}, fmt.Errorf("transport: reading %s reply from %s: %w", req.Op, ac.name, err)
	}
	if resp.ID != req.ID {
		return Frame{}, fmt.Errorf("transport: reply id %d for request %d from %s", resp.ID, req.ID, ac.name)
	}
	if resp.Err != "" {
		return Frame{}, errors.New("transport: agent " + ac.name + ": " + resp.Err)
	}
	return resp, nil
}

// Server is the vendor-side endpoint agents register with.
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	agents  map[string]*agentConn
	Timeout time.Duration
}

// Listen starts the vendor server on addr (use "127.0.0.1:0" in tests) and
// begins accepting agent registrations.
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &Server{ln: ln, agents: make(map[string]*agentConn), Timeout: DefaultRPCTimeout}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and closes all agent channels.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ac := range s.agents {
		ac.conn.Close()
	}
	s.agents = make(map[string]*agentConn)
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.register(conn)
	}
}

// register reads the agent's registration frame and records the channel.
func (s *Server) register(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		conn.Close()
		return
	}
	var hello Frame
	if err := dec.Decode(&hello); err != nil || hello.Op != OpRegister || hello.Register == nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	ac := &agentConn{name: hello.Register.Machine, conn: conn, enc: json.NewEncoder(conn), dec: dec}
	s.mu.Lock()
	if old, dup := s.agents[ac.name]; dup {
		old.conn.Close()
	}
	s.agents[ac.name] = ac
	s.mu.Unlock()
}

// Agents returns the names of registered agents, sorted.
func (s *Server) Agents() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.agents))
	for n := range s.agents {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WaitForAgents blocks until n agents are registered or the timeout
// elapses; it returns the registered count.
func (s *Server) WaitForAgents(n int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		if got := len(s.Agents()); got >= n || time.Now().After(deadline) {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (s *Server) agent(name string) (*agentConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ac, ok := s.agents[name]
	if !ok {
		return nil, fmt.Errorf("transport: no agent registered as %q", name)
	}
	return ac, nil
}

// Identify asks the named agent to run local resource identification.
func (s *Server) Identify(machineName, app string, workloads [][]string) ([]string, error) {
	ac, err := s.agent(machineName)
	if err != nil {
		return nil, err
	}
	resp, err := ac.call(Frame{Op: OpIdentify, Identify: &IdentifyReq{App: app, Workloads: workloads}}, s.Timeout)
	if err != nil {
		return nil, err
	}
	return resp.Resources, nil
}

// Record asks the named agent to record a baseline trace.
func (s *Server) Record(machineName, app string, inputs []string) (string, error) {
	ac, err := s.agent(machineName)
	if err != nil {
		return "", err
	}
	resp, err := ac.call(Frame{Op: OpRecord, Record: &RecordReq{App: app, Inputs: inputs}}, s.Timeout)
	if err != nil {
		return "", err
	}
	return resp.Status, nil
}

// FingerprintAll collects item diffs from every registered agent for app.
func (s *Server) FingerprintAll(app string, refs []string, reg RegistryConfig, vendorItems *resource.Set) ([]cluster.MachineFingerprint, error) {
	wire := ItemsToWire(vendorItems)
	var out []cluster.MachineFingerprint
	for _, name := range s.Agents() {
		ac, err := s.agent(name)
		if err != nil {
			return nil, err
		}
		resp, err := ac.call(Frame{Op: OpFingerprint, Fingerprint: &FingerprintReq{
			App: app, Refs: refs, Registry: reg, VendorItems: wire,
		}}, s.Timeout)
		if err != nil {
			return nil, err
		}
		diff := ItemsFromWire(resp.Diff)
		out = append(out, cluster.MachineFingerprint{
			Name:        name,
			ParsedDiff:  diff.OfKind(resource.Parsed),
			ContentDiff: diff.OfKind(resource.Content),
			AppSet:      resp.AppSet,
		})
	}
	return out, nil
}

// RemoteNode exposes a registered agent as a deploy.Node, so the staged
// deployment controller drives networked machines exactly like local ones.
type RemoteNode struct {
	s    *Server
	name string
}

// Node returns the deploy.Node for a registered agent.
func (s *Server) Node(name string) *RemoteNode {
	return &RemoteNode{s: s, name: name}
}

// Name implements deploy.Node.
func (r *RemoteNode) Name() string { return r.name }

// TestUpgrade implements deploy.Node over the wire.
func (r *RemoteNode) TestUpgrade(up *pkgmgr.Upgrade) (*report.Report, error) {
	ac, err := r.s.agent(r.name)
	if err != nil {
		return nil, err
	}
	resp, err := ac.call(Frame{Op: OpTest, Test: &TestReq{Upgrade: UpgradeToWire(up)}}, r.s.Timeout)
	if err != nil {
		return nil, err
	}
	if resp.Report == nil {
		return nil, errors.New("transport: agent returned no report")
	}
	return resp.Report, nil
}

// Integrate implements deploy.Node over the wire.
func (r *RemoteNode) Integrate(up *pkgmgr.Upgrade) error {
	ac, err := r.s.agent(r.name)
	if err != nil {
		return err
	}
	_, err = ac.call(Frame{Op: OpIntegrate, Integrate: &IntegrateReq{Upgrade: UpgradeToWire(up)}}, r.s.Timeout)
	return err
}

// ClusterRemote fingerprints the whole registered fleet and runs the
// clustering algorithm, returning clusters of deployment backed by remote
// nodes plus the raw clustering for inspection.
func (s *Server) ClusterRemote(app string, refs []string, reg RegistryConfig, vendorItems *resource.Set, cfg cluster.Config, repsPerCluster int) ([]*deploy.Cluster, []*cluster.Cluster, error) {
	if repsPerCluster < 1 {
		repsPerCluster = 1
	}
	fps, err := s.FingerprintAll(app, refs, reg, vendorItems)
	if err != nil {
		return nil, nil, err
	}
	clusters := cluster.Run(cfg, fps)
	var out []*deploy.Cluster
	for _, c := range clusters {
		dc := &deploy.Cluster{ID: deploy.ClusterName(c.ID), Distance: c.Distance}
		for i, name := range c.Machines {
			if i < repsPerCluster {
				dc.Representatives = append(dc.Representatives, s.Node(name))
			} else {
				dc.Others = append(dc.Others, s.Node(name))
			}
		}
		out = append(out, dc)
	}
	return out, clusters, nil
}
