package transport

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/parser"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/resource"
)

func lib(path, version, marker string) *machine.File {
	return &machine.File{Path: path, Type: machine.TypeSharedLib,
		Data: []byte(path + " " + version + " " + marker), Version: version}
}

func exe(path, version string) *machine.File {
	return &machine.File{Path: path, Type: machine.TypeExecutable,
		Data: []byte(path + " " + version), Version: version}
}

func userMachine(name string, php4 bool) *machine.Machine {
	m := machine.New(name)
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(lib("/lib/libc.so", "2.4", ""))
	m.WriteFile(exe(apps.MySQLExec, "4.1.22"))
	m.WriteFile(lib(apps.LibMySQLPath, "4.1", ""))
	m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"},
		[]string{apps.MySQLExec, apps.LibMySQLPath})
	if php4 {
		m.WriteFile(exe(apps.PHPExec, "4.4.6"))
		m.InstallPackage(machine.PackageRef{Name: "php", Version: "4.4.6"}, []string{apps.PHPExec})
	}
	return m
}

func mysql5Wire() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-5.0.22",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			exe(apps.MySQLExec, "5.0.22"),
			lib(apps.LibMySQLPath, "5.0", ""),
		}},
		Replaces: "4.1.22",
	}
}

// startFleet launches a server and n agents, waiting for registration.
func startFleet(t *testing.T, machines ...*machine.Machine) (*Server, *sync.WaitGroup) {
	t.Helper()
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var wg sync.WaitGroup
	for _, m := range machines {
		agent := NewAgent(m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := agent.Run(s.Addr()); err != nil {
				t.Errorf("agent: %v", err)
			}
		}()
	}
	if got := s.WaitForAgents(len(machines), 5*time.Second); got != len(machines) {
		t.Fatalf("only %d/%d agents registered", got, len(machines))
	}
	return s, &wg
}

func TestWireItemsRoundTrip(t *testing.T) {
	set := resource.NewSet(0)
	set.Add(resource.Item{Key: "a.b", Hash: 42, Kind: resource.Parsed})
	set.Add(resource.Item{Key: "f", Hash: 7, Kind: resource.Content})
	back := ItemsFromWire(ItemsToWire(set))
	if !back.Equal(set) {
		t.Fatal("item wire round-trip lost data")
	}
}

func TestWireUpgradeRoundTrip(t *testing.T) {
	up := mysql5Wire()
	up.Urgent = true
	up.Pkg.Dependencies = []pkgmgr.Dependency{{Name: "libc", MinVersion: "2.4"}}
	up.Migrations = []pkgmgr.FileEdit{{Path: "/x", Append: []byte("y")}}
	back := UpgradeFromWire(UpgradeToWire(up))
	if back.ID != up.ID || back.Pkg.Version != "5.0.22" || !back.Urgent || back.Replaces != "4.1.22" {
		t.Fatalf("round trip = %+v", back)
	}
	if len(back.Pkg.Files) != 2 || back.Pkg.Files[0].Version != "5.0.22" {
		t.Fatalf("files = %+v", back.Pkg.Files)
	}
	if len(back.Pkg.Dependencies) != 1 || len(back.Migrations) != 1 {
		t.Fatal("deps/migrations lost")
	}
}

func TestBuildRegistry(t *testing.T) {
	reg, err := BuildRegistry(MirageRegistryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if reg.Lookup(&machine.File{Path: "/bin/x", Type: machine.TypeExecutable}) == nil {
		t.Fatal("executable parser missing")
	}
	if _, err := BuildRegistry(RegistryConfig{Rules: []RegistryRule{{Match: "warp", Parser: "config"}}}); err == nil {
		t.Fatal("bad match kind accepted")
	}
	if _, err := BuildRegistry(RegistryConfig{Rules: []RegistryRule{{Match: "path", Pattern: "/x", Parser: "quantum"}}}); err == nil {
		t.Fatal("bad parser name accepted")
	}
}

func TestRegisterAndRPCs(t *testing.T) {
	m := userMachine("agent-1", false)
	s, _ := startFleet(t, m)

	if got := s.Agents(); len(got) != 1 || got[0] != "agent-1" {
		t.Fatalf("Agents = %v", got)
	}

	res, err := s.Identify(context.Background(), "agent-1", "mysql", [][]string{{"SELECT 1"}, {"SELECT 2"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(res, " "), apps.MySQLExec) {
		t.Fatalf("identify resources = %v", res)
	}

	status, err := s.Record(context.Background(), "agent-1", "mysql", []string{"SELECT 1"})
	if err != nil || status != "ok" {
		t.Fatalf("record = %q %v", status, err)
	}

	if _, err := s.Identify(context.Background(), "missing", "mysql", nil); err == nil {
		t.Fatal("RPC to unregistered agent succeeded")
	}
	if _, err := s.Identify(context.Background(), "agent-1", "no-such-app", nil); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRemoteValidationAndIntegration(t *testing.T) {
	mPlain := userMachine("plain", false)
	mPHP := userMachine("php4", true)
	s, _ := startFleet(t, mPlain, mPHP)

	for _, name := range []string{"plain", "php4"} {
		if _, err := s.Identify(context.Background(), name, "mysql", [][]string{{"SELECT 1"}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Record(context.Background(), name, "mysql", []string{"SELECT 1"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Identify(context.Background(), "php4", "php", [][]string{nil}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record(context.Background(), "php4", "php", nil); err != nil {
		t.Fatal(err)
	}

	up := mysql5Wire()
	repPlain, err := s.Node("plain").TestUpgrade(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	if !repPlain.Success {
		t.Fatalf("plain machine failed: %+v", repPlain)
	}
	repPHP, err := s.Node("php4").TestUpgrade(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	if repPHP.Success {
		t.Fatal("php4 machine passed faulty upgrade over the wire")
	}
	if repPHP.Image == nil {
		t.Fatal("failure report image missing")
	}
	// The report image is a full machine state the vendor can reproduce on.
	repro := repPHP.Image.Materialize()
	if tr := (apps.PHP{}).Run(repro, nil); tr.ExitStatus() != "crash" {
		t.Fatalf("reproduction exit = %s", tr.ExitStatus())
	}

	// Integration applies to the real remote machine.
	if err := s.Node("plain").Integrate(context.Background(), up); err != nil {
		t.Fatal(err)
	}
	if ref, _ := mPlain.Package("mysql"); ref.Version != "5.0.22" {
		t.Fatalf("remote integrate: version = %s", ref.Version)
	}
}

func TestClusterRemoteAndStagedDeployment(t *testing.T) {
	machines := []*machine.Machine{
		userMachine("m-plain-1", false),
		userMachine("m-plain-2", false),
		userMachine("m-php4-1", true),
		userMachine("m-php4-2", true),
	}
	s, _ := startFleet(t, machines...)

	for _, m := range machines {
		if _, err := s.Identify(context.Background(), m.Name, "mysql", [][]string{{"SELECT 1"}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Record(context.Background(), m.Name, "mysql", []string{"SELECT 1"}); err != nil {
			t.Fatal(err)
		}
		if _, ok := m.Package("php"); ok {
			if _, err := s.Identify(context.Background(), m.Name, "php", [][]string{nil}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Record(context.Background(), m.Name, "php", nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Vendor reference: same as plain machines.
	ref := userMachine("vendor-ref", false)
	refs := []string{"/lib/libc.so", apps.MySQLExec, apps.LibMySQLPath}
	regCfg := MirageRegistryConfig()
	reg, err := BuildRegistry(regCfg)
	if err != nil {
		t.Fatal(err)
	}
	vendorItems := parser.NewFingerprinter(reg).Fingerprint(ref, refs)

	rc, err := s.ClusterRemote(context.Background(), "mysql", refs, regCfg, vendorItems, cluster.Config{Diameter: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 (plain vs php4 app sets)", len(rc.Clusters))
	}
	if len(rc.Profiles) != 4 {
		t.Fatalf("profiles = %d, want 4", len(rc.Profiles))
	}
	dcs := rc.Deploy

	urr := report.New()
	fixed := mysql5Wire()
	fixed.ID = "mysql-5.0.22b"
	fixed.Pkg.Files[1] = lib(apps.LibMySQLPath, "5.0", "php4-compat")
	ctl := deploy.NewController(urr, func(up *pkgmgr.Upgrade, fails []*report.Report) (*pkgmgr.Upgrade, bool) {
		return fixed, true
	})
	out, err := ctl.Deploy(context.Background(), deploy.PolicyBalanced, mysql5Wire(), dcs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Abandoned || out.Integrated() != 4 {
		t.Fatalf("outcome = %+v", out)
	}
	// Overhead 1: only the php4 cluster's representative saw the fault.
	if out.Overhead != 1 {
		t.Fatalf("overhead = %d, want 1", out.Overhead)
	}
	// All four real machines upgraded.
	for _, m := range machines {
		if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
			t.Fatalf("%s at %s", m.Name, ref.Version)
		}
		if tr := (apps.MySQL{}).Run(m, nil); tr.ExitStatus() != "ok" {
			t.Fatalf("%s broken after deployment", m.Name)
		}
		if _, ok := m.Package("php"); ok {
			if tr := (apps.PHP{}).Run(m, nil); tr.ExitStatus() != "ok" {
				t.Fatalf("%s php broken after deployment", m.Name)
			}
		}
	}
}

func TestDuplicateRegistrationReplaces(t *testing.T) {
	m1 := userMachine("dup", false)
	s, _ := startFleet(t, m1)
	// Second agent with the same name replaces the first channel.
	m2 := userMachine("dup", false)
	go NewAgent(m2).Run(s.Addr())
	time.Sleep(50 * time.Millisecond)
	if got := s.Agents(); len(got) != 1 {
		t.Fatalf("agents = %v", got)
	}
	if _, err := s.Identify(context.Background(), "dup", "mysql", [][]string{nil}); err != nil {
		t.Fatal(err)
	}
}
