package transport

import (
	"context"
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/deploy"
	"repro/internal/distrib"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
	"repro/internal/report"
)

// Tests for the content-addressed distribution layer: manifest pushes,
// chunk caching across RPCs, CDC version deltas, the inline fallback, and
// concurrent pushes racing on a shared cache.

// bigData returns deterministic pseudo-random bytes (content-defined
// chunking needs varied content; repeated text collapses into max-size
// chunks that a one-byte edit would shift globally).
func bigData(seed byte, n int) []byte {
	data := make([]byte, n)
	x := uint32(seed) + 99
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 16)
	}
	return data
}

func TestChunkedDeploymentUpgradesFleet(t *testing.T) {
	machines := []*machine.Machine{
		userMachine("ck-plain", false),
		userMachine("ck-php4", true),
	}
	s, _ := startFleet(t, machines...)
	for _, m := range machines {
		if _, err := s.Identify(context.Background(), m.Name, "mysql", [][]string{{"SELECT 1"}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Record(context.Background(), m.Name, "mysql", []string{"SELECT 1"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Identify(context.Background(), "ck-php4", "php", [][]string{nil}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record(context.Background(), "ck-php4", "php", nil); err != nil {
		t.Fatal(err)
	}

	urr := report.New()
	fixed := mysql5Wire()
	fixed.ID = "mysql-5.0.22b"
	fixed.Pkg.Files[1] = lib(apps.LibMySQLPath, "5.0", "php4-compat")
	ctl := deploy.NewController(urr, func(up *pkgmgr.Upgrade, fails []*report.Report) (*pkgmgr.Upgrade, bool) {
		return fixed, true
	})
	ctl.Transfer = s.TransferSnapshot
	clusters := []*deploy.Cluster{
		{ID: "c0", Distance: 1, Representatives: []deploy.Node{s.Node("ck-plain")}},
		{ID: "c1", Distance: 2, Representatives: []deploy.Node{s.Node("ck-php4")}},
	}
	out, err := ctl.Deploy(context.Background(), deploy.PolicyBalanced, mysql5Wire(), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Abandoned || out.Integrated() != 2 {
		t.Fatalf("outcome = %+v", out)
	}
	for _, m := range machines {
		if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
			t.Fatalf("%s at %s after chunked deployment", m.Name, ref.Version)
		}
		if tr := (apps.MySQL{}).Run(m, nil); tr.ExitStatus() != "ok" {
			t.Fatalf("%s broken after chunked deployment", m.Name)
		}
	}
	// Stats threaded through the controller: some chunk bytes moved, and
	// the manifest negotiation recorded hits and misses.
	if out.Transfer.ChunkBytes == 0 || out.Transfer.ChunkMisses == 0 {
		t.Fatalf("transfer stats = %+v, want chunk traffic recorded", out.Transfer)
	}
	if out.Transfer.Frames == 0 || out.Transfer.Bytes == 0 {
		t.Fatalf("transfer stats = %+v, want frame/byte accounting", out.Transfer)
	}
}

// TestIntegrateAfterTestTransfersNoChunkBytes is the headline cache
// property: the chunks fetched to *test* an upgrade fully serve its
// *integration* on the same agent — the second push moves a manifest and
// nothing else.
func TestIntegrateAfterTestTransfersNoChunkBytes(t *testing.T) {
	m := userMachine("cache-node", false)
	s, _ := startFleet(t, m)

	up := mysql5Wire()
	rep, err := s.Node("cache-node").TestUpgrade(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("test failed: %+v", rep)
	}
	after, ok := s.AgentStats("cache-node")
	if !ok {
		t.Fatal("no stats for registered agent")
	}

	if err := s.Node("cache-node").Integrate(context.Background(), up); err != nil {
		t.Fatal(err)
	}
	final, _ := s.AgentStats("cache-node")
	delta := final
	delta.ChunkBytesSent -= after.ChunkBytesSent
	delta.ChunkMisses -= after.ChunkMisses
	delta.ChunkHits -= after.ChunkHits
	if delta.ChunkBytesSent != 0 || delta.ChunkMisses != 0 {
		t.Fatalf("integrate-after-test moved %d chunk bytes (%d misses), want zero",
			delta.ChunkBytesSent, delta.ChunkMisses)
	}
	if delta.ChunkHits == 0 {
		t.Fatal("integrate resolved no chunks from cache")
	}
	if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
		t.Fatalf("machine at %s after integrate", ref.Version)
	}
}

// TestVersionUpgradeTransfersOnlyChangedChunks: the agent seeds its cache
// from installed files, so pushing version N+1 of a large file moves only
// the chunks a small edit touched — the LBFS/rsync delta property, over
// the real wire.
func TestVersionUpgradeTransfersOnlyChangedChunks(t *testing.T) {
	const size = 256 * 1024
	v1 := bigData(1, size)
	v2 := append([]byte(nil), v1...)
	copy(v2[size/2:], []byte("small edit in the middle of a quarter-megabyte binary"))

	m := machine.New("delta-node")
	m.SetEnv("HOME", "/home/user")
	m.WriteFile(&machine.File{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: v1, Version: "4.1.22"})
	m.InstallPackage(machine.PackageRef{Name: "mysql", Version: "4.1.22"}, []string{apps.MySQLExec})
	s, _ := startFleet(t, m)

	up := &pkgmgr.Upgrade{
		ID: "mysql-big-5",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: v2, Version: "5.0.22"},
		}},
		Replaces: "4.1.22",
	}
	rep, err := s.Node("delta-node").TestUpgrade(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("test failed: %+v", rep)
	}
	if err := s.Node("delta-node").Integrate(context.Background(), up); err != nil {
		t.Fatal(err)
	}

	st, _ := s.AgentStats("delta-node")
	if st.ChunkBytesSent == 0 {
		t.Fatal("delta transferred nothing — test is vacuous")
	}
	if st.ChunkBytesSent > size/4 {
		t.Fatalf("version delta moved %d of %d payload bytes — CDC dedup not working",
			st.ChunkBytesSent, size)
	}
	if f := m.ReadFile(apps.MySQLExec); f == nil || !bytes.Equal(f.Data, v2) {
		t.Fatal("reassembled file differs from the vendor's")
	}
}

// TestConcurrentPushesSharedCache races several upgrade pushes against
// one chunk cache shared by all agents of the fleet — the shared-LAN-cache
// arrangement — under the race detector.
func TestConcurrentPushesSharedCache(t *testing.T) {
	shared := distrib.NewCache()
	names := []string{"lan-a", "lan-b", "lan-c", "lan-d"}
	machines := make([]*machine.Machine, len(names))

	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i, n := range names {
		machines[i] = userMachine(n, false)
		agent := NewAgent(machines[i])
		agent.Cache = shared
		go agent.Run(s.Addr())
	}
	if got := s.WaitForAgents(len(names), 5*time.Second); got != len(names) {
		t.Fatalf("agents = %d", got)
	}

	up := mysql5Wire()
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	for i, n := range names {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			rep, err := s.Node(n).TestUpgrade(context.Background(), up)
			if err == nil && !rep.Success {
				t.Errorf("%s: test failed", n)
			}
			if err == nil {
				err = s.Node(n).Integrate(context.Background(), up)
			}
			errs[i] = err
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
	}
	for _, m := range machines {
		if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
			t.Fatalf("%s at %s", m.Name, ref.Version)
		}
	}
	// With a shared warm cache, at most the racing first pushes fetch the
	// payload; the rest ride it. Every chunk appears in the cache once.
	if cs := shared.Stats(); cs.Hits == 0 {
		t.Fatalf("shared cache saw no hits: %+v", cs)
	}
}

// TestInlineFallback keeps the legacy wire format working: full payloads
// in every frame, no chunk machinery involved.
func TestInlineFallback(t *testing.T) {
	m := userMachine("inline-node", false)
	s, _ := startFleet(t, m)
	s.InlinePayloads = true

	up := mysql5Wire()
	rep, err := s.Node("inline-node").TestUpgrade(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("inline test failed: %+v", rep)
	}
	if err := s.Node("inline-node").Integrate(context.Background(), up); err != nil {
		t.Fatal(err)
	}
	if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
		t.Fatalf("machine at %s", ref.Version)
	}
	st, _ := s.AgentStats("inline-node")
	if st.ChunkBytesSent != 0 || st.ChunkHits != 0 || st.ChunkMisses != 0 {
		t.Fatalf("inline mode used the chunk path: %+v", st)
	}
	if st.BytesSent == 0 || st.FramesSent == 0 {
		t.Fatalf("inline stats not counted: %+v", st)
	}
}
