// Peer chunk-serving tier: agents serve their content-addressed chunk
// caches to each other, so later waves of a staged rollout pull upgrade
// bytes mostly from already-upgraded peers instead of the vendor uplink.
//
// The tier rides on two properties the distribution layer already has:
// chunk addresses are strong content digests (a fetched chunk verifies
// itself, so peers need no trust), and the staging engine orders the
// fleet into waves (by the time a wave starts, the previous waves hold
// every chunk it needs). The vendor stays the coordinator — it tracks who
// holds what and hints eligible peers per fetch — but its egress drops
// from O(fleet) to O(distinct clusters): it seeds each wave's
// representatives and the swarm does the rest.

package transport

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"time"
)

// DefaultPeerTimeout bounds one whole peer conversation (dial, request,
// body). It is deliberately a fraction of DefaultRPCTimeout: an
// OpPeerFetch visiting MaxPeerHints peers must finish — including the
// vendor fallback that may follow — inside the vendor's RPC budget.
const DefaultPeerTimeout = 5 * time.Second

// MaxPeerHints caps how many peers the vendor hints per fetch; the agent
// tries them in order and only what all of them miss falls back to the
// vendor push.
const MaxPeerHints = 3

// PeerServeStats snapshots an agent's peer-serving counters.
type PeerServeStats struct {
	Requests int64 // peer_get requests answered
	Chunks   int64 // chunks served
	Bytes    int64 // chunk bytes served
}

// ServePeers starts the agent's peer chunk server on addr (use
// "127.0.0.1:0" for an ephemeral port) and returns the bound address.
// The address is advertised to the vendor in the registration frame, so
// call ServePeers before Run/RunWithReconnect. The server reads peer_get
// requests and answers each with a binary chunk frame holding whichever
// of the requested addresses the cache has — never an error for a miss;
// "what I have" is the protocol and the requester's fallback handles the
// rest.
func (a *Agent) ServePeers(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: peer listen: %w", err)
	}
	a.PeerAddr = ln.Addr().String()
	a.peerLn = ln
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go a.servePeerConn(conn)
		}
	}()
	return a.PeerAddr, nil
}

// ClosePeers stops the peer server (in-flight conversations finish on
// their own deadlines). Idempotent; a no-op if ServePeers never ran.
func (a *Agent) ClosePeers() {
	if a.peerLn != nil {
		a.peerLn.Close()
	}
}

// PeerStats snapshots the peer-serving counters.
func (a *Agent) PeerStats() PeerServeStats {
	return PeerServeStats{
		Requests: a.peerReqs.Load(),
		Chunks:   a.peerChunks.Load(),
		Bytes:    a.peerBytes.Load(),
	}
}

// servePeerConn answers peer_get requests on one accepted connection
// until the requester closes it or goes idle past the deadline.
func (a *Agent) servePeerConn(conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	fc := newFrameConn(bufio.NewReader(conn), bw)
	for {
		conn.SetDeadline(time.Now().Add(a.peerTimeout() * 4))
		var req Frame
		if err := fc.ReadFrame(&req); err != nil {
			return
		}
		if req.Op != OpPeerGet {
			fc.WriteFrame(Frame{ID: req.ID, Err: "unknown peer op " + req.Op})
			bw.Flush()
			return
		}
		chunks := a.Cache.Chunks(req.NeedChunks)
		resp := Frame{ID: req.ID, OK: true, ChunkMeta: chunkMeta(chunks)}
		if err := fc.WriteFrame(resp); err != nil {
			return
		}
		if err := fc.WriteChunkBody(chunks); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		var n int64
		for _, ch := range chunks {
			n += int64(len(ch.Data))
		}
		a.peerReqs.Add(1)
		a.peerChunks.Add(int64(len(chunks)))
		a.peerBytes.Add(n)
	}
}

func (a *Agent) peerTimeout() time.Duration {
	if a.PeerTimeout > 0 {
		return a.PeerTimeout
	}
	return DefaultPeerTimeout
}

// handlePeerFetch executes a vendor-directed peer fetch: pull the
// requested addresses from the hinted peers in order, verify every chunk
// into the cache, and report what no peer could serve plus the transfer
// accounting. A peer that fails — dead, unreachable, or serving corrupt
// bytes — is dropped and reported; its verified chunks (delivered before
// the failure) are kept, since each stands on its own digest.
func (a *Agent) handlePeerFetch(req PeerFetchReq) Frame {
	res := &PeerResult{}
	remaining := make(map[uint64]bool, len(req.Addrs))
	for _, addr := range req.Addrs {
		remaining[addr] = true
	}
	for _, peer := range req.Peers {
		if len(remaining) == 0 {
			break
		}
		want := make([]uint64, 0, len(remaining))
		for addr := range remaining {
			want = append(want, addr)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got, n, err := a.fetchFromPeer(peer, want)
		for _, addr := range got {
			delete(remaining, addr)
		}
		if n > 0 {
			if res.Served == nil {
				res.Served = make(map[string]int64)
			}
			res.Served[peer] += n
			res.Bytes += n
			res.Chunks += len(got)
		}
		if err != nil {
			res.Failed = append(res.Failed, peer)
		}
	}
	need := make([]uint64, 0, len(remaining))
	for addr := range remaining {
		need = append(need, addr)
	}
	sort.Slice(need, func(i, j int) bool { return need[i] < need[j] })
	return Frame{OK: true, NeedChunks: need, Peer: res}
}

// fetchFromPeer runs one peer conversation: dial, ask for addrs, stream
// the binary body into the cache. It returns the addresses that verified
// and the bytes that moved; err reports a dropped peer (any transport
// failure or a digest mismatch — a peer that serves one corrupt chunk is
// not trusted for the rest of its stream).
func (a *Agent) fetchFromPeer(peerAddr string, addrs []uint64) (got []uint64, n int64, err error) {
	timeout := a.peerTimeout()
	conn, err := net.DialTimeout("tcp", peerAddr, timeout)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	bw := bufio.NewWriter(conn)
	fc := newFrameConn(bufio.NewReader(conn), bw)
	if err := fc.WriteFrame(Frame{ID: 1, Op: OpPeerGet, NeedChunks: addrs}); err != nil {
		return nil, 0, err
	}
	if err := bw.Flush(); err != nil {
		return nil, 0, err
	}
	var resp Frame
	if err := fc.ReadFrame(&resp); err != nil {
		return nil, 0, err
	}
	if resp.Err != "" {
		return nil, 0, fmt.Errorf("peer %s: %s", peerAddr, resp.Err)
	}
	if !resp.OK {
		return nil, 0, fmt.Errorf("peer %s: unacknowledged reply", peerAddr)
	}
	requested := make(map[uint64]bool, len(addrs))
	for _, addr := range addrs {
		requested[addr] = true
	}
	err = fc.ReadChunkBody(resp.ChunkMeta, func(addr uint64, data []byte) error {
		if !requested[addr] {
			return fmt.Errorf("peer %s served unrequested chunk", peerAddr)
		}
		if err := a.Cache.Add(addr, data); err != nil {
			return err // digest mismatch: corrupt peer
		}
		got = append(got, addr)
		n += int64(len(data))
		return nil
	})
	return got, n, err
}

// peerIndex is the vendor-side chunk-location index: which agents hold
// which chunk addresses, which advertise a peer port, and which are
// cleared to serve (their waves gated). It is fed by transfer bookkeeping
// — a manifest that resolved marks its addresses held — so no extra RPC
// ever maintains it.
type peerIndex struct {
	addrs    map[string]string          // agent name → advertised peer address
	held     map[string]map[uint64]bool // agent name → chunk addresses known held
	eligible map[string]bool            // names cleared to serve (gated waves)
}

func newPeerIndex() *peerIndex {
	return &peerIndex{
		addrs:    make(map[string]string),
		held:     make(map[string]map[uint64]bool),
		eligible: make(map[string]bool),
	}
}

// hints returns up to MaxPeerHints peer addresses for need, best coverage
// first (ties broken by name for determinism), excluding requester.
func (pi *peerIndex) hints(requester string, need []uint64) []string {
	type cand struct {
		name  string
		addr  string
		cover int
	}
	var cands []cand
	for name := range pi.eligible {
		if name == requester {
			continue
		}
		addr := pi.addrs[name]
		if addr == "" {
			continue
		}
		held := pi.held[name]
		if len(held) == 0 {
			continue
		}
		cover := 0
		for _, a := range need {
			if held[a] {
				cover++
			}
		}
		if cover > 0 {
			cands = append(cands, cand{name, addr, cover})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cover != cands[j].cover {
			return cands[i].cover > cands[j].cover
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) > MaxPeerHints {
		cands = cands[:MaxPeerHints]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.addr
	}
	return out
}

// markHeld records that name holds every address in refs.
func (pi *peerIndex) markHeld(name string, refs []uint64) {
	set := pi.held[name]
	if set == nil {
		set = make(map[uint64]bool, len(refs))
		pi.held[name] = set
	}
	for _, a := range refs {
		set[a] = true
	}
}

// nameByAddr resolves an advertised peer address back to its agent.
func (pi *peerIndex) nameByAddr(addr string) (string, bool) {
	for name, a := range pi.addrs {
		if a == addr {
			return name, true
		}
	}
	return "", false
}
