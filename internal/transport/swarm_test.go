package transport

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
	"repro/internal/report"
)

// Tests for the peer chunk-serving tier: staged rollouts where later
// waves pull upgrade bytes from gated peers, and swarm degradation —
// peers that die mid-fetch, serve corrupt bytes, or refuse connections
// must drop cleanly to the vendor fallback without stalling the rollout.

// bigUpgrade builds an upgrade whose payload is fresh pseudo-random data,
// so no agent's seeded cache holds any of its chunks and every chunk has
// to move — the worst case the swarm exists to absorb.
func bigUpgrade(seed byte, size int) *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "mysql-swarm-5",
		Pkg: &pkgmgr.Package{Name: "mysql", Version: "5.0.22", Files: []*machine.File{
			{Path: apps.MySQLExec, Type: machine.TypeExecutable, Data: bigData(seed, size), Version: "5.0.22"},
		}},
		Replaces: "4.1.22",
	}
}

// startSwarmFleet launches a server and n peer-serving agents in one
// cluster (first machine the representative), returning the server and
// machines. Every agent runs a peer chunk server advertised at
// registration.
func startSwarmFleet(t *testing.T, n int) (*Server, []*machine.Machine, []*deploy.Cluster) {
	t.Helper()
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	machines := make([]*machine.Machine, n)
	cl := &deploy.Cluster{ID: "c0", Distance: 1}
	for i := 0; i < n; i++ {
		name := "sw-" + string(rune('a'+i))
		machines[i] = userMachine(name, false)
		agent := NewAgent(machines[i])
		if _, err := agent.ServePeers("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agent.ClosePeers)
		go agent.Run(s.Addr())
		if i == 0 {
			cl.Representatives = append(cl.Representatives, s.Node(name))
		} else {
			cl.Others = append(cl.Others, s.Node(name))
		}
	}
	if got := s.WaitForAgents(n, 5*time.Second); got != n {
		t.Fatalf("only %d/%d agents registered", got, n)
	}
	return s, machines, []*deploy.Cluster{cl}
}

// deploySwarm runs a balanced staged rollout with the peer tier wired the
// way mirage-vendor wires it: gated waves become eligible peer servers.
func deploySwarm(t *testing.T, s *Server, clusters []*deploy.Cluster, up *pkgmgr.Upgrade) *deploy.Outcome {
	t.Helper()
	ctl := deploy.NewController(report.New(), nil)
	ctl.Transfer = s.TransferSnapshot
	ctl.GatedMembers = s.MarkPeerEligible
	out, err := ctl.Deploy(context.Background(), deploy.PolicyBalanced, up, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Abandoned {
		t.Fatalf("outcome = %+v", out)
	}
	return out
}

// TestSwarmServesLaterWaves is the tier's happy path: the representative
// wave is seeded by the vendor, gates, and the remaining members pull the
// payload from it peer-to-peer; the vendor's own chunk egress stays at
// roughly one copy.
func TestSwarmServesLaterWaves(t *testing.T) {
	const fleet, size = 5, 128 * 1024
	s, machines, clusters := startSwarmFleet(t, fleet)
	up := bigUpgrade(7, size)
	out := deploySwarm(t, s, clusters, up)

	if out.Integrated() != fleet {
		t.Fatalf("integrated %d/%d", out.Integrated(), fleet)
	}
	for _, m := range machines {
		if ref, _ := m.Package("mysql"); ref.Version != "5.0.22" {
			t.Fatalf("%s at %s after swarm deployment", m.Name, ref.Version)
		}
	}
	if out.Transfer.PeerBytes == 0 || out.Transfer.PeerHits == 0 {
		t.Fatalf("transfer = %+v, want peer traffic", out.Transfer)
	}
	// The vendor pushes the payload to the representative (and any swarm
	// stragglers); the other four members ride the peer tier. Anything
	// under 3 payload copies proves the swarm carried most of the load.
	if out.Transfer.ChunkBytes > 3*size {
		t.Fatalf("vendor pushed %d chunk bytes for a %d-byte payload × %d agents — swarm not engaged",
			out.Transfer.ChunkBytes, size, fleet)
	}
	if out.Transfer.PeerBytes < size {
		t.Fatalf("peer tier served %d bytes, want at least one payload copy (%d)",
			out.Transfer.PeerBytes, size)
	}
}

// fakePeer runs a TCP server speaking just enough of the peer protocol to
// misbehave on demand: serve reads one peer_get frame and gets the
// requested addresses plus the frame connection to answer on.
func fakePeer(t *testing.T, serve func(fc *frameConn, bw *bufio.Writer, req Frame)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				bw := bufio.NewWriter(conn)
				fc := newFrameConn(bufio.NewReader(conn), bw)
				var req Frame
				if err := fc.ReadFrame(&req); err != nil {
					return
				}
				serve(fc, bw, req)
			}()
		}
	}()
	return ln.Addr().String()
}

// upgradeAddrs resolves the distinct chunk addresses of up in the
// server's store, as a fake peer's advertised holdings.
func upgradeAddrs(s *Server, up *pkgmgr.Upgrade) []uint64 {
	return manifestAddrs(s.ChunkStore().Manifest(up))
}

// TestCorruptPeerFallsBackToVendor: a hinted peer serves bytes whose
// digest does not match the requested address. The agent must reject
// every chunk, drop the peer, and let the vendor push — the rollout
// converges and the corruption is visible only as fallback accounting.
func TestCorruptPeerFallsBackToVendor(t *testing.T) {
	m := userMachine("corrupt-target", false)
	s, _ := startFleet(t, m)
	up := bigUpgrade(3, 64*1024)
	addrs := upgradeAddrs(s, up)

	evil := fakePeer(t, func(fc *frameConn, bw *bufio.Writer, req Frame) {
		chunks, err := s.dist.Chunks(req.NeedChunks)
		if err != nil {
			return
		}
		for i := range chunks {
			// Copy before corrupting: the store owns the real bytes.
			data := append([]byte(nil), chunks[i].Data...)
			data[0] ^= 0xff
			chunks[i].Data = data
		}
		fc.WriteFrame(Frame{ID: req.ID, OK: true, ChunkMeta: chunkMeta(chunks)})
		fc.WriteChunkBody(chunks)
		bw.Flush()
	})
	s.AddPeerSource("evil", evil, addrs)

	rep, err := s.Node("corrupt-target").TestUpgrade(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("test failed: %+v", rep)
	}
	st, _ := s.AgentStats("corrupt-target")
	if st.VendorFallbacks == 0 {
		t.Fatalf("stats = %+v, want vendor fallbacks after corrupt peer", st)
	}
	if st.PeerBytesIn != 0 || st.PeerChunkHits != 0 {
		t.Fatalf("stats = %+v: corrupt chunks were credited as peer traffic", st)
	}
}

// TestPeerDiesMidFetch: a hinted peer announces a chunk body and closes
// the connection partway through it. The agent must abandon the peer and
// recover via the vendor push.
func TestPeerDiesMidFetch(t *testing.T) {
	m := userMachine("dying-target", false)
	s, _ := startFleet(t, m)
	up := bigUpgrade(5, 64*1024)
	addrs := upgradeAddrs(s, up)

	dying := fakePeer(t, func(fc *frameConn, bw *bufio.Writer, req Frame) {
		chunks, err := s.dist.Chunks(req.NeedChunks)
		if err != nil {
			return
		}
		fc.WriteFrame(Frame{ID: req.ID, OK: true, ChunkMeta: chunkMeta(chunks)})
		// First chunk only, then half of the second: the body dies mid-read.
		bw.Write(chunks[0].Data)
		if len(chunks) > 1 {
			bw.Write(chunks[1].Data[:len(chunks[1].Data)/2])
		}
		bw.Flush()
		// Returning closes the connection (deferred in fakePeer).
	})
	s.AddPeerSource("dying", dying, addrs)

	rep, err := s.Node("dying-target").TestUpgrade(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("test failed: %+v", rep)
	}
	st, _ := s.AgentStats("dying-target")
	if st.VendorFallbacks == 0 {
		t.Fatalf("stats = %+v, want vendor fallbacks after dead peer", st)
	}
	// The one complete chunk that verified before the death is kept — the
	// whole point of per-chunk digests — and counted.
	if st.PeerChunkHits != 1 {
		t.Fatalf("stats = %+v, want exactly the one pre-death chunk credited", st)
	}
}

// TestUnreachablePeerFallsBack: the hinted peer's port refuses
// connections outright.
func TestUnreachablePeerFallsBack(t *testing.T) {
	m := userMachine("refused-target", false)
	s, _ := startFleet(t, m)
	up := bigUpgrade(9, 32*1024)
	addrs := upgradeAddrs(s, up)

	// Bind and immediately close a port to get a refusing address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	s.AddPeerSource("vanished", dead, addrs)

	rep, err := s.Node("refused-target").TestUpgrade(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("test failed: %+v", rep)
	}
	st, _ := s.AgentStats("refused-target")
	if st.VendorFallbacks == 0 || st.PeerBytesIn != 0 {
		t.Fatalf("stats = %+v, want pure vendor fallback", st)
	}
	if ref, _ := m.Package("mysql"); ref.Version != "4.1.22" {
		t.Fatalf("test mutated the machine: %s", ref.Version)
	}
}

// TestPeerIndexHints pins the hint policy: coverage-ranked, requester
// excluded, capped at MaxPeerHints, deterministic tie-break.
func TestPeerIndexHints(t *testing.T) {
	pi := newPeerIndex()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		pi.addrs[n] = n + ":1"
		pi.eligible[n] = true
	}
	pi.markHeld("a", []uint64{1, 2, 3})
	pi.markHeld("b", []uint64{1, 2})
	pi.markHeld("c", []uint64{1})
	pi.markHeld("d", []uint64{1})
	pi.markHeld("e", []uint64{9})

	got := pi.hints("z", []uint64{1, 2, 3})
	want := []string{"a:1", "b:1", "c:1"} // e covers nothing, d loses the tie-break cut
	if len(got) != len(want) {
		t.Fatalf("hints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hints = %v, want %v", got, want)
		}
	}
	// The requester never appears in its own hints.
	for _, h := range pi.hints("a", []uint64{1, 2, 3}) {
		if h == "a:1" {
			t.Fatal("requester hinted to itself")
		}
	}
	// Ineligible agents are invisible no matter their coverage.
	delete(pi.eligible, "a")
	for _, h := range pi.hints("z", []uint64{1, 2, 3}) {
		if h == "a:1" {
			t.Fatal("ineligible agent hinted")
		}
	}
}
