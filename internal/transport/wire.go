// Package transport makes Mirage distributed: a vendor-side TCP server, a
// user-machine agent, and a JSON wire protocol carrying fingerprint
// exchanges, upgrade pushes, validation commands and problem reports.
//
// Agents dial the vendor and keep a persistent control channel open (the
// usual arrangement for fleet management behind NAT); all subsequent RPCs
// are vendor-initiated over that channel. Remote agents appear to the
// deployment controller as deploy.Node values, so the same staged
// protocols drive local fleets and networked ones.
//
// Wire format: newline-delimited JSON frames. JSON string escaping
// guarantees no raw newline appears inside a frame.
package transport

import (
	"encoding/json"

	"repro/internal/distrib"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
	"repro/internal/report"
	"repro/internal/resource"
)

// Frame is one message on the wire. Requests carry Op and a payload field;
// responses echo ID and fill Err or a payload field.
type Frame struct {
	ID int    `json:"id"`
	Op string `json:"op,omitempty"`
	// Err is set on failed responses.
	Err string `json:"err,omitempty"`

	// Request payloads. Fingerprint is kept as raw JSON because its body
	// — the vendor item list and registry — is identical for every agent
	// of a profiling fan-out: the server serializes it once per collection
	// and reuses the bytes across the fleet.
	Register    *RegisterReq     `json:"register,omitempty"`
	Identify    *IdentifyReq     `json:"identify,omitempty"`
	Record      *RecordReq       `json:"record,omitempty"`
	Fingerprint json.RawMessage  `json:"fingerprint,omitempty"`
	Test        *TestReq         `json:"test,omitempty"`
	Integrate   *IntegrateReq    `json:"integrate,omitempty"`
	FetchChunks *FetchChunksReq  `json:"fetch_chunks,omitempty"`
	PeerFetch   *PeerFetchReq    `json:"peer_fetch,omitempty"`
	Delta       *ProfileDeltaReq `json:"delta,omitempty"`

	// ChunkMeta announces a binary chunk body: immediately after this
	// frame's newline follow the raw bytes of each listed chunk, in
	// order, ref.Size bytes each — no base64, no per-chunk framing. Used
	// by OpFetchChunks pushes (unless Server.JSONChunks restores the
	// legacy inline format) and by every OpPeerGet response.
	ChunkMeta []distrib.ChunkRef `json:"chunk_meta,omitempty"`

	// Response payloads.
	Resources []string       `json:"resources,omitempty"`
	Diff      []WireItem     `json:"diff,omitempty"`
	AppSet    string         `json:"appset,omitempty"`
	Report    *report.Report `json:"report,omitempty"`
	// NeedChunks is the agent's reply to a manifest-bearing test or
	// integrate request whose chunks are not all cached yet: the missing
	// content addresses. The vendor answers with an OpFetchChunks push and
	// then re-issues the original request, which by then resolves locally.
	NeedChunks []uint64 `json:"need_chunks,omitempty"`
	// Peer is the agent's report of an OpPeerFetch round: how much the
	// peer tier served (and which peers were dropped), so the vendor's
	// transfer counters see bytes it never itself moved.
	Peer *PeerResult `json:"peer,omitempty"`
	// OK acknowledges a successful response. Deliberately NOT omitempty:
	// with omitempty a false value serialized identically to an absent
	// one, so a handler that forgot to acknowledge was indistinguishable
	// from a malformed or truncated reply. The vendor rejects replies
	// with neither Err nor OK set.
	OK     bool   `json:"ok"`
	Status string `json:"status,omitempty"`
}

// Operation names.
const (
	OpRegister    = "register"
	OpIdentify    = "identify"
	OpRecord      = "record"
	OpFingerprint = "fingerprint"
	OpTest        = "test_upgrade"
	OpIntegrate   = "integrate"
	// OpPing is a lightweight liveness probe: no payload either way, the
	// agent just acknowledges. The vendor uses it to tell reachable
	// machines from dead ones without spending a validation run.
	OpPing = "ping"
	// OpFetchChunks delivers the chunk bytes an agent reported missing
	// from a manifest. Like every other RPC it is vendor-initiated (the
	// agent sits behind its persistent control channel), so "fetch" is
	// realized as a push of exactly the requested set.
	OpFetchChunks = "fetch_chunks"
	// OpPeerFetch asks the agent to pull the listed chunk addresses from
	// the hinted peers — members of already-gated waves the vendor knows
	// hold them — before the vendor falls back to pushing the remainder
	// itself. The reply's NeedChunks is what the peer tier could not
	// serve; its Peer payload books the bytes that moved peer-to-peer.
	OpPeerFetch = "peer_fetch"
	// OpPeerGet is the peer tier's own request, sent agent-to-agent on a
	// short-lived connection to the serving agent's peer port: "send me
	// whichever of these addresses you hold". The response is a binary
	// chunk frame (ChunkMeta header + raw bytes); content addresses make
	// the transfer self-verifying, so a peer needs no trust beyond the
	// digest check every fetched chunk already passes.
	OpPeerGet = "peer_get"
	// OpProfileDelta is a watch-mode agent's push of a profile change: the
	// items added to / removed from its diff-against-vendor since the last
	// acknowledged profile, sent on a short-lived agent-initiated
	// connection (like OpPeerGet, not over the control channel — drift
	// detection must not contend with an in-flight rollout RPC). The
	// vendor replies OK, or Status "resync" when it cannot fold the delta,
	// upon which the agent re-sends its full profile with Full set.
	OpProfileDelta = "profile_delta"
)

// StatusResync is the vendor's reply status asking a delta-pushing agent
// to re-send its complete profile.
const StatusResync = "resync"

// RegisterReq announces the machine to the vendor. It and OpProfileDelta
// are the only agent-initiated messages.
type RegisterReq struct {
	Machine string `json:"machine"`
	// Peer, when non-empty, advertises the address of the agent's peer
	// chunk server (Agent.ServePeers): the vendor may hint this agent to
	// others once its waves gate.
	Peer string `json:"peer,omitempty"`
}

// IdentifyReq asks the agent to run local resource identification for app
// over the given workloads.
type IdentifyReq struct {
	App       string     `json:"app"`
	Workloads [][]string `json:"workloads"`
}

// RecordReq asks the agent to record a baseline trace of app.
type RecordReq struct {
	App    string   `json:"app"`
	Inputs []string `json:"inputs"`
}

// FingerprintReq carries the vendor's resource references, registry
// configuration and reference item list; the agent answers with the item
// diff and its application-set key.
type FingerprintReq struct {
	App         string         `json:"app"`
	Refs        []string       `json:"refs"`
	Registry    RegistryConfig `json:"registry"`
	VendorItems []WireItem     `json:"vendor_items"`
}

// WireManifest is the content-addressed form of an upgrade: metadata plus
// per-file chunk address lists, no file data. It is the distrib manifest
// verbatim — the distribution layer owns the format.
type WireManifest = distrib.Manifest

// TestReq asks the agent to validate the upgrade in isolation. Exactly one
// of Upgrade (legacy inline payload, Server.InlinePayloads) and Manifest
// (content-addressed chunked distribution, the default) is set.
type TestReq struct {
	Upgrade  *WireUpgrade  `json:"upgrade,omitempty"`
	Manifest *WireManifest `json:"manifest,omitempty"`
}

// IntegrateReq asks the agent to apply the validated upgrade, with the
// same inline/manifest choice as TestReq.
type IntegrateReq struct {
	Upgrade  *WireUpgrade  `json:"upgrade,omitempty"`
	Manifest *WireManifest `json:"manifest,omitempty"`
}

// FetchChunksReq carries the chunk bytes for a reported missing set in
// the legacy JSON format (base64 bodies inside the frame). The default
// transport ships the same content as a binary chunk frame (ChunkMeta +
// raw bytes); Server.JSONChunks restores this form.
type FetchChunksReq struct {
	Chunks []distrib.Chunk `json:"chunks"`
}

// PeerFetchReq directs an agent to pull chunk addresses from peers, in
// hint order. The vendor pre-filters Peers to gated-wave members whose
// chunk-location index entries cover some of Addrs, so the agent tries
// them blindly and reports what remains.
type PeerFetchReq struct {
	Addrs []uint64 `json:"addrs"`
	Peers []string `json:"peers"`
}

// PeerResult books one OpPeerFetch round from the agent's side.
type PeerResult struct {
	// Chunks and Bytes total what the peer tier delivered.
	Chunks int   `json:"chunks,omitempty"`
	Bytes  int64 `json:"bytes,omitempty"`
	// Served maps peer address to the chunk bytes it served, so the
	// vendor can credit the serving agent's egress counters.
	Served map[string]int64 `json:"served,omitempty"`
	// Failed lists peers dropped mid-fetch: dead, unreachable, or
	// serving bytes whose digest did not match the requested address.
	Failed []string `json:"failed,omitempty"`
}

// ProfileDeltaReq is one watch-mode profile push. Added and Removed are
// the items that entered/left the machine's diff-against-vendor since its
// last acknowledged profile — for content resources these are CDC chunk
// digests, so an edited config file costs a handful of items, and an
// unchanged machine sends nothing at all. Sig is the signature of the
// complete post-change diff set; the vendor verifies it after folding and
// answers Status "resync" on mismatch. Full marks a complete profile
// (first contact or resync answer): Added is the whole diff, Removed is
// ignored.
type ProfileDeltaReq struct {
	Machine string     `json:"machine"`
	App     string     `json:"app"`
	AppSet  string     `json:"appset"`
	Sig     uint64     `json:"sig"`
	Added   []WireItem `json:"added,omitempty"`
	Removed []WireItem `json:"removed,omitempty"`
	Full    bool       `json:"full,omitempty"`
}

// WireItem is a serialized resource item.
type WireItem struct {
	Key  string `json:"k"`
	Hash uint64 `json:"h"`
	Kind int    `json:"t"`
}

// ItemsToWire serializes an item set.
func ItemsToWire(s *resource.Set) []WireItem {
	items := s.Items()
	out := make([]WireItem, len(items))
	for i, it := range items {
		out[i] = WireItem{Key: it.Key, Hash: it.Hash, Kind: int(it.Kind)}
	}
	return out
}

// ItemsFromWire rebuilds an item set.
func ItemsFromWire(items []WireItem) *resource.Set {
	s := resource.NewSet(len(items))
	for _, w := range items {
		s.Add(resource.Item{Key: w.Key, Hash: w.Hash, Kind: resource.Kind(w.Kind)})
	}
	return s
}

// RegistryRule is one serialized parser binding. Parsers are code shipped
// in both binaries; the wire carries only the binding of paths/globs/types
// to parser names plus parser options.
type RegistryRule struct {
	// Match is "path", "glob" or "type".
	Match   string `json:"match"`
	Pattern string `json:"pattern,omitempty"` // for path/glob
	Type    int    `json:"type,omitempty"`    // for type matches
	// Parser is "executable", "sharedlib", "text", "config" or "binary".
	Parser     string   `json:"parser"`
	IgnoreKeys []string `json:"ignore_keys,omitempty"` // config parser option
}

// RegistryConfig is the serialized parser registry.
type RegistryConfig struct {
	Rules []RegistryRule `json:"rules"`
}

// WireFile is a serialized machine file.
type WireFile struct {
	Path    string `json:"path"`
	Type    int    `json:"type"`
	Version string `json:"version,omitempty"`
	Data    []byte `json:"data"`
}

func fileToWire(f *machine.File) WireFile {
	return WireFile{Path: f.Path, Type: int(f.Type), Version: f.Version, Data: f.Data}
}

func fileFromWire(w WireFile) *machine.File {
	return &machine.File{Path: w.Path, Type: machine.FileType(w.Type), Version: w.Version,
		Data: append([]byte(nil), w.Data...)}
}

// WireUpgrade is a serialized pkgmgr.Upgrade, self-contained: the package
// files travel with it (the "download").
type WireUpgrade struct {
	ID         string            `json:"id"`
	Name       string            `json:"name"`
	Version    string            `json:"version"`
	Replaces   string            `json:"replaces,omitempty"`
	Urgent     bool              `json:"urgent,omitempty"`
	Files      []WireFile        `json:"files"`
	Deps       []WireDependency  `json:"deps,omitempty"`
	Migrations []pkgmgr.FileEdit `json:"migrations,omitempty"`
}

// WireDependency is a serialized package dependency.
type WireDependency struct {
	Name       string `json:"name"`
	MinVersion string `json:"min_version,omitempty"`
}

// UpgradeToWire serializes an upgrade.
func UpgradeToWire(up *pkgmgr.Upgrade) WireUpgrade {
	w := WireUpgrade{
		ID: up.ID, Name: up.Pkg.Name, Version: up.Pkg.Version,
		Replaces: up.Replaces, Urgent: up.Urgent, Migrations: up.Migrations,
	}
	for _, f := range up.Pkg.Files {
		w.Files = append(w.Files, fileToWire(f))
	}
	for _, d := range up.Pkg.Dependencies {
		w.Deps = append(w.Deps, WireDependency{Name: d.Name, MinVersion: d.MinVersion})
	}
	return w
}

// UpgradeFromWire rebuilds an upgrade.
func UpgradeFromWire(w WireUpgrade) *pkgmgr.Upgrade {
	pkg := &pkgmgr.Package{Name: w.Name, Version: w.Version}
	for _, f := range w.Files {
		pkg.Files = append(pkg.Files, fileFromWire(f))
	}
	for _, d := range w.Deps {
		pkg.Dependencies = append(pkg.Dependencies, pkgmgr.Dependency{Name: d.Name, MinVersion: d.MinVersion})
	}
	return &pkgmgr.Upgrade{
		ID: w.ID, Pkg: pkg, Replaces: w.Replaces, Urgent: w.Urgent, Migrations: w.Migrations,
	}
}
