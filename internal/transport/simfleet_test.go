package transport

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/machine"
	"repro/internal/pkgmgr"
	"repro/internal/report"
)

func simUpgrade() *pkgmgr.Upgrade {
	return &pkgmgr.Upgrade{
		ID: "sim-app-2.0",
		Pkg: &pkgmgr.Package{Name: "sim-app", Version: "2.0", Files: []*machine.File{
			{Path: "/usr/bin/sim-app", Type: machine.TypeExecutable,
				Data: bytes.Repeat([]byte("simulated payload "), 2048), Version: "2.0"},
		}},
		Replaces: "1.0",
	}
}

// runSimRollout drives a full staged deployment over an n-agent sim
// fleet and asserts every member integrates. The sim agents answer the
// real protocol — manifest negotiation, NeedChunks, chunk fetch — so this
// exercises the same vendor code paths as a live fleet.
func runSimRollout(t *testing.T, n int, pipe bool) *SimFleet {
	t.Helper()
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	opts := SimOptions{Prefix: "simflt"}
	if pipe {
		opts.Server = s
	} else {
		opts.Addr = s.Addr()
	}
	fleet, err := StartSimFleet(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if got := s.WaitForAgents(n, 10*time.Second); got != n {
		t.Fatalf("only %d/%d sim agents registered", got, n)
	}

	names := fleet.Names()
	per := n / 2
	var clusters []*deploy.Cluster
	for c := 0; c < 2; c++ {
		cl := &deploy.Cluster{ID: deploy.ClusterName(c), Distance: c + 1}
		for i, name := range names[c*per : (c+1)*per] {
			if i == 0 {
				cl.Representatives = append(cl.Representatives, s.Node(name))
			} else {
				cl.Others = append(cl.Others, s.Node(name))
			}
		}
		clusters = append(clusters, cl)
	}
	ctl := deploy.NewController(report.New(), nil)
	ctl.Transfer = s.TransferSnapshot
	out, err := ctl.Deploy(context.Background(), deploy.PolicyBalanced, simUpgrade(), clusters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Integrated() != n {
		t.Fatalf("integrated %d/%d (quarantined %v)", out.Integrated(), n, out.Quarantined)
	}
	if fleet.Integrated() != int64(n) {
		t.Fatalf("fleet counted %d integrations, want %d", fleet.Integrated(), n)
	}
	if fleet.Tested() == 0 {
		t.Fatal("fleet performed no validations")
	}
	// The shared cache means the payload crossed the wire once per fleet:
	// chunk traffic must be far below n copies of the payload.
	if out.Transfer.ChunkMisses == 0 {
		t.Fatal("no chunk misses — the manifest negotiation never ran")
	}
	if out.Transfer.ChunkHits == 0 {
		t.Fatal("no chunk hits — the shared cache never resolved a manifest")
	}
	return fleet
}

func TestSimFleetTCP(t *testing.T) {
	runSimRollout(t, 24, false)
}

func TestSimFleetPipe(t *testing.T) {
	runSimRollout(t, 24, true)
}

func TestSimFleetRequiresOneTransport(t *testing.T) {
	if _, err := StartSimFleet(1, SimOptions{}); err == nil {
		t.Fatal("StartSimFleet accepted options with no transport")
	}
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := StartSimFleet(1, SimOptions{Server: s, Addr: s.Addr()}); err == nil {
		t.Fatal("StartSimFleet accepted both transports at once")
	}
}
